//===- BenchCommon.h - Shared benchmark-suite helpers ---------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic benchmark suite shared by the Figure 8/9/10 harnesses:
/// the six clusters of Figure 10 (scaled ~1:40 in size for CI runtimes,
/// with cluster counts reduced proportionally), plus engine runners and
/// table formatting.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_BENCH_BENCHCOMMON_H
#define RETYPD_BENCH_BENCHCOMMON_H

#include "baseline/Baselines.h"
#include "eval/Metrics.h"
#include "frontend/Pipeline.h"
#include "synth/Synth.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace retypd::bench {

/// One cluster description (name, program count, per-program size).
struct ClusterSpec {
  const char *Name;
  unsigned Count;
  unsigned Instructions;
  // The paper's Figure 10 reference values for Retypd.
  double PaperDistance, PaperInterval, PaperConserv, PaperPtrAcc,
      PaperConst;
};

/// Figure 10's clusters, scaled ~1:40 (counts reduced to keep CI fast;
/// relative ordering of sizes preserved).
inline std::vector<ClusterSpec> figure10Clusters() {
  return {
      {"freeglut-demos", 3, 300, 0.66, 1.49, 0.97, 0.83, 1.00},
      {"coreutils", 16, 600, 0.51, 1.19, 0.98, 0.82, 0.96},
      {"vpx-d", 8, 1200, 0.63, 1.68, 0.98, 0.92, 1.00},
      {"vpx-e", 6, 2200, 0.63, 1.53, 0.96, 0.90, 1.00},
      {"sphinx2", 4, 2600, 0.42, 1.09, 0.94, 0.91, 0.99},
      {"putty", 4, 3000, 0.51, 1.05, 0.94, 0.86, 0.99},
  };
}

/// Per-engine metric rows for one cluster.
struct ClusterScores {
  std::string Name;
  size_t Programs = 0;
  size_t Instructions = 0;
  MetricSummary Retypd, Unification, Interval;
};

/// Runs all three engines over one generated program, accumulating scores.
inline void scoreProgram(const Lattice &Lat, const SynthProgram &P,
                         ClusterScores &Out) {
  Evaluator Eval(Lat);
  {
    Module M = P.M;
    Pipeline Pipe(Lat);
    TypeReport R = Pipe.run(M);
    Out.Retypd.merge(Eval.scoreRetypd(M, R, *P.Truth));
  }
  {
    Module M = P.M;
    UnificationInference U(Lat);
    BaselineResult R = U.run(M);
    Out.Unification.merge(Eval.scoreBaseline(M, R, *P.Truth));
  }
  {
    Module M = P.M;
    IntervalInference T(Lat);
    BaselineResult R = T.run(M);
    Out.Interval.merge(Eval.scoreBaseline(M, R, *P.Truth));
  }
  ++Out.Programs;
  Out.Instructions += P.M.instructionCount();
}

/// Generates and scores the whole Figure 10 suite.
inline std::vector<ClusterScores> runSuite(const Lattice &Lat,
                                           uint64_t Seed = 1) {
  std::vector<ClusterScores> All;
  SynthGenerator Gen;
  for (const ClusterSpec &Spec : figure10Clusters()) {
    ClusterScores CS;
    CS.Name = Spec.Name;
    auto Programs = Gen.generateCluster(Spec.Name, Spec.Count,
                                        Spec.Instructions, Seed++);
    for (const SynthProgram &P : Programs)
      scoreProgram(Lat, P, CS);
    All.push_back(std::move(CS));
  }
  return All;
}

/// Averages metrics over clusters (each cluster one data point — the
/// paper's clustering procedure, §6.2) or over all programs.
struct SuiteAverages {
  double Distance = 0, Interval = 0, Conserv = 0, PtrAcc = 0, Const = 0;
};

inline SuiteAverages
averageClustered(const std::vector<ClusterScores> &All,
                 MetricSummary ClusterScores::*Engine) {
  SuiteAverages A;
  for (const ClusterScores &CS : All) {
    const MetricSummary &S = CS.*Engine;
    A.Distance += S.meanDistance();
    A.Interval += S.meanInterval();
    A.Conserv += S.conservativeness();
    A.PtrAcc += S.pointerAccuracy();
    A.Const += S.constRecall();
  }
  double N = static_cast<double>(All.size());
  A.Distance /= N;
  A.Interval /= N;
  A.Conserv /= N;
  A.PtrAcc /= N;
  A.Const /= N;
  return A;
}

inline SuiteAverages
averageUnclustered(const std::vector<ClusterScores> &All,
                   MetricSummary ClusterScores::*Engine) {
  MetricSummary Total;
  for (const ClusterScores &CS : All)
    Total.merge(CS.*Engine);
  return SuiteAverages{Total.meanDistance(), Total.meanInterval(),
                       Total.conservativeness(), Total.pointerAccuracy(),
                       Total.constRecall()};
}

} // namespace retypd::bench

#endif // RETYPD_BENCH_BENCHCOMMON_H
