//===- MemHooks.cpp - operator new/delete instrumentation -------------------===//
//
// Linked only into the Figure 12 benchmark: tracks live and peak heap
// bytes through the global allocation operators. Library code never
// depends on these hooks.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cstdlib>
#include <malloc.h>
#include <new>

using retypd::MemStats;

void *operator new(size_t Size) {
  void *P = std::malloc(Size ? Size : 1);
  if (!P)
    throw std::bad_alloc();
  MemStats::noteAlloc(malloc_usable_size(P));
  return P;
}

void *operator new[](size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept {
  if (!P)
    return;
  MemStats::noteFree(malloc_usable_size(P));
  std::free(P);
}

void operator delete[](void *P) noexcept { ::operator delete(P); }

void operator delete(void *P, size_t) noexcept { ::operator delete(P); }
void operator delete[](void *P, size_t) noexcept { ::operator delete(P); }
