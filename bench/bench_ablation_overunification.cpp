//===- bench_ablation_overunification.cpp - §2.5 ablation --------------------===//
//
// The design-choice ablation behind §2.5: subtyping versus unification in
// the presence of false-positive register parameters. The suite is
// generated twice — without and with the push-ecx idiom — and both engines
// are scored. Unification degrades when spurious register parameters link
// unrelated callers; Retypd's directional constraints contain the damage.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace retypd;
using namespace retypd::bench;

int main() {
  Lattice Lat = makeDefaultLattice();
  Evaluator Eval(Lat);
  SynthGenerator Gen;

  std::printf("Ablation (§2.5): false register parameters\n\n");
  std::printf("%-28s %18s %18s\n", "configuration", "Retypd distance",
              "unification distance");

  double RetypdDelta = 0, UnifDelta = 0;
  double Prev[2] = {0, 0};
  for (bool Inject : {false, true}) {
    MetricSummary R, U;
    for (unsigned P = 0; P < 6; ++P) {
      SynthOptions O;
      O.Seed = 300 + P;
      O.TargetInstructions = 600;
      O.IncludeFalseRegParams = Inject;
      O.IncludeTypeUnsafe = false;
      SynthProgram Prog = Gen.generate("abl", O);
      {
        Module M = Prog.M;
        Pipeline Pipe(Lat);
        TypeReport Rep = Pipe.run(M);
        R.merge(Eval.scoreRetypd(M, Rep, *Prog.Truth));
      }
      {
        Module M = Prog.M;
        UnificationInference UE(Lat);
        U.merge(Eval.scoreBaseline(M, UE.run(M), *Prog.Truth));
      }
    }
    std::printf("%-28s %18.3f %18.3f\n",
                Inject ? "with push-ecx idiom" : "clean",
                R.meanDistance(), U.meanDistance());
    if (!Inject) {
      Prev[0] = R.meanDistance();
      Prev[1] = U.meanDistance();
    } else {
      RetypdDelta = R.meanDistance() - Prev[0];
      UnifDelta = U.meanDistance() - Prev[1];
    }
  }

  std::printf("\ndegradation when injected: Retypd %+0.3f, unification "
              "%+0.3f\n",
              RetypdDelta, UnifDelta);
  bool Contained = RetypdDelta <= UnifDelta + 1e-9;
  std::printf("shape check: Retypd degrades no more than unification: %s\n",
              Contained ? "yes (matches §2.5)" : "NO");
  return Contained ? 0 : 1;
}
