//===- bench_ablation_pointer.cpp - §3.3 ablation -----------------------------===//
//
// The design-choice ablation behind §3.3: splitting pointers into .load
// and .store capabilities versus a unified Ptr(T) constructor. Both Figure
// 4 programs are checked: the split derives exactly the sound value flows
// (directionally), while the unification view collapses the pointee types
// to equality — the paper's "catastrophe for subtyping".
//
// Also times saturation on growing aliased-pointer chains (the S-POINTER
// shortcut machinery) with google-benchmark.
//
//===----------------------------------------------------------------------===//

#include "core/ConstraintGraph.h"
#include "core/ConstraintParser.h"
#include "core/ShapeGraph.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace retypd;

namespace {

bool derives(const Lattice &Lat, SymbolTable &Syms, const ConstraintSet &C,
             const char *Lhs, const char *Rhs) {
  ConstraintParser P(Syms, Lat);
  auto L = P.parseDtv(Lhs);
  auto R = P.parseDtv(Rhs);
  ConstraintSet C2 = C;
  C2.addVar(*L);
  C2.addVar(*R);
  ConstraintGraph G(C2);
  G.saturate();
  GraphNodeId Ln = G.lookup(*L, Variance::Covariant);
  GraphNodeId Rn = G.lookup(*R, Variance::Covariant);
  if (Ln == ConstraintGraph::NoNode || Rn == ConstraintGraph::NoNode)
    return false;
  for (GraphNodeId N : G.oneReachableFrom(Ln))
    if (N == Rn)
      return true;
  return false;
}

/// Builds an n-deep aliased pointer chain and runs saturation.
void BM_SaturatePointerChain(benchmark::State &State) {
  Lattice Lat = makeDefaultLattice();
  unsigned Depth = static_cast<unsigned>(State.range(0));
  SymbolTable Syms;
  ConstraintParser P(Syms, Lat);
  std::string Text;
  for (unsigned I = 0; I < Depth; ++I) {
    std::string A = "p";
    A += std::to_string(I);
    std::string B = "p";
    B += std::to_string(I + 1);
    Text += A + " <= " + B + "\n";
    Text += "x";
    Text += std::to_string(I) + " <= " + A + ".store\n";
    Text += B + ".load <= y" + std::to_string(I) + "\n";
  }
  auto C = P.parse(Text);
  for (auto _ : State) {
    ConstraintGraph G(*C);
    G.saturate();
    benchmark::DoNotOptimize(G.numSaturationEdges());
  }
}
BENCHMARK(BM_SaturatePointerChain)->Arg(4)->Arg(16)->Arg(64);

} // namespace

int main(int argc, char **argv) {
  Lattice Lat = makeDefaultLattice();
  SymbolTable Syms;
  ConstraintParser P(Syms, Lat);

  std::printf("Ablation (§3.3): .load/.store split vs unified Ptr(T)\n\n");

  // Figure 4, both programs.
  auto C1 = P.parse("q <= p\nx <= p.store\nq.load <= y\n");
  auto C2 = P.parse("q <= p\nx <= q.store\np.load <= y\n");

  struct Row {
    const char *Name;
    bool Fwd, Bwd;
  };
  Row Rows[2] = {
      {"f(): *p = x; y = *q", derives(Lat, Syms, *C1, "x", "y"),
       derives(Lat, Syms, *C1, "y", "x")},
      {"g(): *q = x; y = *p", derives(Lat, Syms, *C2, "x", "y"),
       derives(Lat, Syms, *C2, "y", "x")},
  };

  std::printf("%-24s %14s %14s %22s\n", "program", "x <= y", "y <= x",
              "Ptr-unification view");
  bool AllGood = true;
  for (const Row &R : Rows) {
    // The unified-Ptr view: subtyping degenerates to equality, so the
    // pointees (and hence x and y) land in one equivalence class — flow is
    // derived in BOTH directions.
    std::printf("%-24s %14s %14s %22s\n", R.Name, R.Fwd ? "yes" : "NO",
                R.Bwd ? "yes (unsound)" : "no",
                "x = y (degenerate)");
    AllGood = AllGood && R.Fwd && !R.Bwd;
  }

  // Demonstrate the degenerate view concretely through the shape quotient
  // (unification of the same constraints).
  {
    ShapeGraph Shapes(*C2);
    ConstraintParser P2(Syms, Lat);
    bool Merged = Shapes.classOf(*P2.parseDtv("x")) ==
                  Shapes.classOf(*P2.parseDtv("y"));
    std::printf("\nunification merges x and y into one class: %s\n",
                Merged ? "yes (loses direction)" : "no");
  }

  std::printf("shape check: split derives sound flows only: %s\n\n",
              AllGood ? "yes (matches §3.3)" : "NO");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return AllGood ? 0 : 1;
}
