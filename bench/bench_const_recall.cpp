//===- bench_const_recall.cpp - §6.4: const-correctness recall ---------------===//
//
// Regenerates the §6.4 result: the fraction of source-level `const`
// pointer-parameter annotations recovered by Retypd (paper: 98%). Also
// reports the additional const annotations Retypd inferred beyond the
// ground truth (the paper notes most source code under-annotates const).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace retypd;
using namespace retypd::bench;

int main() {
  Lattice Lat = makeDefaultLattice();
  std::printf("§6.4: const recall per cluster (paper overall: 98%%)\n\n");
  std::printf("%-16s %10s %10s %10s\n", "cluster", "truth", "found",
              "recall");

  auto All = runSuite(Lat, /*Seed=*/101);
  unsigned Truth = 0, Found = 0;
  for (const ClusterScores &CS : All) {
    std::printf("%-16s %10u %10u %9.1f%%\n", CS.Name.c_str(),
                CS.Retypd.ConstTruth, CS.Retypd.ConstFound,
                100 * CS.Retypd.constRecall());
    Truth += CS.Retypd.ConstTruth;
    Found += CS.Retypd.ConstFound;
  }
  double Recall = Truth ? 100.0 * Found / Truth : 100.0;
  std::printf("\noverall: %u/%u = %.1f%%   (paper: 98%%)\n", Found, Truth,
              Recall);
  bool High = Recall >= 90.0;
  std::printf("shape check: recall >= 90%%: %s\n",
              High ? "yes (matches paper)" : "NO");
  return High ? 0 : 1;
}
