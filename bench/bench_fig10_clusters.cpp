//===- bench_fig10_clusters.cpp - Figure 10: per-cluster metrics ------------===//
//
// Regenerates Figure 10: the per-cluster metric table for Retypd (distance,
// interval, conservativeness, pointer accuracy, const recall) plus the
// clustered and unclustered overall averages.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace retypd;
using namespace retypd::bench;

int main() {
  Lattice Lat = makeDefaultLattice();
  std::printf("Figure 10: clusters in the benchmark suite (Retypd)\n\n");
  std::printf("%-16s %5s %8s %9s %9s %9s %9s %7s\n", "cluster", "count",
              "instrs", "distance", "interval", "conserv", "ptracc",
              "const");

  auto All = runSuite(Lat);
  auto Specs = figure10Clusters();

  for (size_t I = 0; I < All.size(); ++I) {
    const ClusterScores &CS = All[I];
    const MetricSummary &S = CS.Retypd;
    std::printf("%-16s %5zu %8zu %9.2f %9.2f %8.1f%% %8.1f%% %6.1f%%\n",
                CS.Name.c_str(), CS.Programs, CS.Instructions,
                S.meanDistance(), S.meanInterval(),
                100 * S.conservativeness(), 100 * S.pointerAccuracy(),
                100 * S.constRecall());
    std::printf("%-16s %5s %8s %9.2f %9.2f %8.1f%% %8.1f%% %6.1f%%\n",
                "  (paper)", "", "", Specs[I].PaperDistance,
                Specs[I].PaperInterval, 100 * Specs[I].PaperConserv,
                100 * Specs[I].PaperPtrAcc, 100 * Specs[I].PaperConst);
  }

  SuiteAverages Clustered =
      averageClustered(All, &ClusterScores::Retypd);
  SuiteAverages Unclustered =
      averageUnclustered(All, &ClusterScores::Retypd);
  std::printf("\n%-22s %9.2f %9.2f %8.1f%% %8.1f%% %6.1f%%\n",
              "Retypd, as reported", Clustered.Distance, Clustered.Interval,
              100 * Clustered.Conserv, 100 * Clustered.PtrAcc,
              100 * Clustered.Const);
  std::printf("%-22s %9.2f %9.2f %8.1f%% %8.1f%% %6.1f%%\n",
              "  (paper)", 0.54, 1.20, 95.0, 88.0, 98.0);
  std::printf("%-22s %9.2f %9.2f %8.1f%% %8.1f%% %6.1f%%\n",
              "Retypd, unclustered", Unclustered.Distance,
              Unclustered.Interval, 100 * Unclustered.Conserv,
              100 * Unclustered.PtrAcc, 100 * Unclustered.Const);
  std::printf("%-22s %9.2f %9.2f %8.1f%% %8.1f%% %6.1f%%\n", "  (paper)",
              0.53, 1.22, 97.0, 84.0, 97.0);
  return 0;
}
