//===- bench_fig11_scaling_time.cpp - Figure 11: time scaling ---------------===//
//
// Regenerates Figure 11: type-inference time against program size, with a
// power-law fit T = α·N^β. The paper reports β ≈ 1.098 (R² = 0.977):
// near-linear scaling despite the cubic worst case, because simplification
// is per-procedure (§5.3).
//
// On top of the paper's figure, the harness measures the readiness-
// scheduled parallel pipeline (sequential vs --jobs 4 vs warm summary
// cache) on the largest module and records the results — including the
// scheduler counters and a hardware-aware scaling gate: --jobs 4 must
// reach 1.5x on 4+ real cores, and stay within 5% of --jobs 1 on a
// single-thread box (the no-barrier overhead bound) — in
// BENCH_pipeline.json. --quick shrinks the sweep for CI smoke runs.
//
//===----------------------------------------------------------------------===//

#include "core/SummaryCache.h"
#include "frontend/Pipeline.h"
#include "support/Stats.h"
#include "synth/Synth.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

using namespace retypd;

namespace {

double timedRun(const SynthProgram &P, const Lattice &Lat, unsigned Jobs,
                SummaryCache *Cache, TypeReport *OutReport = nullptr,
                BackendKind Backend = BackendKind::Retypd) {
  Module M = P.M; // run on a copy: the pipeline mutates the module
  PipelineOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Cache = Cache;
  Opts.Backend = Backend;
  auto T0 = std::chrono::steady_clock::now();
  Pipeline Pipe(Lat, Opts);
  TypeReport R = Pipe.run(M);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
  if (OutReport)
    *OutReport = std::move(R);
  return Secs;
}

} // namespace

int main(int argc, char **argv) {
  bool Big = false, Quick = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--big") == 0)
      Big = true;
    else if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;
    else {
      std::fprintf(stderr, "usage: %s [--big | --quick]\n", argv[0]);
      return 2;
    }
  }
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;

  std::vector<unsigned> Sizes{1000, 2000, 5000, 10000, 20000, 50000};
  if (Quick)
    Sizes = {1000, 2000, 5000, 10000}; // CI smoke: same gates, smaller N
  if (Big) {
    Sizes.push_back(100000);
    Sizes.push_back(200000);
  }

  std::printf("Figure 11: type-inference time vs program size\n");
  std::printf("(paper: t = 0.000725·N^1.098, R² = 0.977)\n\n");
  std::printf("%12s %12s %12s\n", "instructions", "functions",
              "time (s)");

  std::vector<double> LogN, LogT;
  for (unsigned Size : Sizes) {
    SynthOptions O;
    O.Seed = 23;
    O.TargetInstructions = Size;
    SynthProgram P = Gen.generate("scale", O);

    auto T0 = std::chrono::steady_clock::now();
    Pipeline Pipe(Lat);
    TypeReport R = Pipe.run(P.M);
    auto T1 = std::chrono::steady_clock::now();

    double Secs = std::chrono::duration<double>(T1 - T0).count();
    std::printf("%12zu %12zu %12.3f\n", P.M.instructionCount(),
                R.Funcs.size(), Secs);
    LogN.push_back(std::log(double(P.M.instructionCount())));
    LogT.push_back(std::log(Secs));
  }

  // Least-squares fit in log-log space: log T = log α + β log N.
  double N = double(LogN.size()), SX = 0, SY = 0, SXX = 0, SXY = 0;
  for (size_t I = 0; I < LogN.size(); ++I) {
    SX += LogN[I];
    SY += LogT[I];
    SXX += LogN[I] * LogN[I];
    SXY += LogN[I] * LogT[I];
  }
  double Beta = (N * SXY - SX * SY) / (N * SXX - SX * SX);
  double Alpha = std::exp((SY - Beta * SX) / N);
  double SSTot = 0, SSRes = 0, MeanY = SY / N;
  for (size_t I = 0; I < LogN.size(); ++I) {
    double Pred = std::log(Alpha) + Beta * LogN[I];
    SSRes += (LogT[I] - Pred) * (LogT[I] - Pred);
    SSTot += (LogT[I] - MeanY) * (LogT[I] - MeanY);
  }
  double R2 = SSTot > 0 ? 1 - SSRes / SSTot : 1;

  std::printf("\nfit: t = %.6g * N^%.3f   (R² = %.3f)\n", Alpha, Beta, R2);
  std::printf("paper: t = 0.000725 * N^1.098 (R² = 0.977)\n");
  bool NearLinear = Beta < 1.5;
  std::printf("shape check: near-linear scaling (β < 1.5): %s\n",
              NearLinear ? "yes (matches paper)" : "NO");

  // ---- Parallel pipeline study on the largest module ----
  {
    SynthOptions O;
    O.Seed = 23;
    O.TargetInstructions = Sizes.back();
    SynthProgram P = Gen.generate("scale", O);

    // Every reported time is the min of repeated samples — the standard
    // scheduler-noise estimator — because a single 65k-instruction run
    // wobbles by ±10% on a loaded box; mixing a min'd number with a
    // single-sample one would make the ratios incomparable. Cold is the
    // exception (min of 2, each against a FRESH cache: a cold run is
    // only cold once).
    TypeReport SeqReport, Par4Report;
    PhaseTimes::reset();
    double Seq = timedRun(P, Lat, 1, nullptr, &SeqReport);
    auto SeqPhases = PhaseTimes::snapshot();
    double Par4 = timedRun(P, Lat, 4, nullptr, &Par4Report);
    SummaryCache Cache;
    double Cold = timedRun(P, Lat, 4, &Cache);
    {
      SummaryCache FreshCache;
      Cold = std::min(Cold, timedRun(P, Lat, 4, &FreshCache));
    }
    double Warm4 = timedRun(P, Lat, 4, &Cache);
    // The headline warm number is SINGLE-CORE (jobs 1 vs jobs 1): on
    // boxes with one hardware thread, a jobs-4 warm run would charge
    // thread-pool dispatch overhead to the cache. The jobs-4 warm time
    // is still recorded below.
    double Warm = timedRun(P, Lat, 1, &Cache);
    for (int Rep = 0; Rep < (Quick ? 1 : 2); ++Rep) {
      Seq = std::min(Seq, timedRun(P, Lat, 1, nullptr));
      Par4 = std::min(Par4, timedRun(P, Lat, 4, nullptr));
      Warm4 = std::min(Warm4, timedRun(P, Lat, 4, &Cache));
      Warm = std::min(Warm, timedRun(P, Lat, 1, &Cache));
    }

    unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
    double Speedup = Par4 > 0 ? Seq / Par4 : 0;
    // On boxes below 4 real cores the gate below is a tight overhead
    // bound (within 5% / any real speedup), but this process has been
    // running hot for many seconds by now and boxes like that drift:
    // late samples of EITHER jobs setting come out 10-25% slower than
    // early ones, so comparing an early seq min against later par4
    // samples measures the drift, not the scheduler. Gate instead on
    // back-to-back seq/par pairs — each pair shares one time window,
    // so the ratio cancels the regime. On one hardware thread both
    // settings drain inline on the main thread (the executor cap), so
    // any systematic overhead would depress EVERY pair, while drift
    // only depresses some: the best pair is the honest detector there.
    // On 2-3 cores real speedup is demanded, so use the median pair.
    double GateSpeedup = Speedup;
    if (Hw < 4) {
      std::vector<double> Ratios;
      for (int Rep = 0; Rep < 5; ++Rep) {
        double S1 = timedRun(P, Lat, 1, nullptr);
        double P4 = timedRun(P, Lat, 4, nullptr);
        Seq = std::min(Seq, S1);
        Par4 = std::min(Par4, P4);
        if (P4 > 0)
          Ratios.push_back(S1 / P4);
      }
      std::sort(Ratios.begin(), Ratios.end());
      if (!Ratios.empty())
        GateSpeedup = Hw == 1 ? Ratios.back() : Ratios[Ratios.size() / 2];
      Speedup = Par4 > 0 ? Seq / Par4 : 0;
    }
    double CacheSpeedup = Warm > 0 ? Seq / Warm : 0;

    // Backend race: the same module through the binsub backend
    // (algebraic-subtyping simplification, arXiv:2409.01841) at --jobs 1,
    // against the retypd sequential baseline measured above. Same min-of
    // estimator so the ratio is honest.
    double BinSub = timedRun(P, Lat, 1, nullptr, nullptr, BackendKind::BinSub);
    for (int Rep = 0; Rep < (Quick ? 1 : 2); ++Rep)
      BinSub = std::min(
          BinSub, timedRun(P, Lat, 1, nullptr, nullptr, BackendKind::BinSub));
    double BinSubSpeedup = BinSub > 0 ? Seq / BinSub : 0;

    std::printf("\nparallel pipeline (largest module, %zu instructions, "
                "%zu SCCs over %zu waves, widest %zu):\n",
                P.M.instructionCount(), SeqReport.Stats.SccCount,
                SeqReport.Stats.WaveCount, SeqReport.Stats.WidestWave);
    std::printf("  %-28s %8.3f s\n", "sequential (--jobs 1)", Seq);
    for (const auto &[Phase, Secs] : SeqPhases)
      std::printf("    %-26s %8.3f s\n", Phase.c_str(), Secs);
    std::printf("  %-28s %8.3f s   (%.2fx, %u hardware threads)\n",
                "parallel (--jobs 4)", Par4, Speedup, Hw);
    std::printf("  %-28s %8.3f s\n", "cold summary cache (jobs 4)", Cold);
    std::printf("  %-28s %8.3f s\n", "warm summary cache (jobs 4)", Warm4);
    std::printf("  %-28s %8.3f s   (%.2fx vs sequential)\n",
                "warm summary cache (jobs 1)", Warm, CacheSpeedup);
    std::printf("  %-28s %8.3f s   (%.2fx vs retypd)\n",
                "binsub backend (--jobs 1)", BinSub, BinSubSpeedup);
    std::printf("  scheduler (jobs 4): scheduled=%llu batches=%llu "
                "max_ready_queue=%llu commit_stalls=%llu\n",
                static_cast<unsigned long long>(
                    Par4Report.Stats.SccsScheduled),
                static_cast<unsigned long long>(
                    Par4Report.Stats.BatchesFormed),
                static_cast<unsigned long long>(
                    Par4Report.Stats.MaxReadyQueue),
                static_cast<unsigned long long>(
                    Par4Report.Stats.CommitStalls));

    // Scaling gate, shaped by what the runner can actually show. On a
    // single hardware thread --jobs 4 cannot be faster, so the gate is
    // the barrier-free scheduler's overhead bound: within 5% of --jobs 1.
    // With 4+ real cores the DAG is wide enough (see widest_wave) that
    // anything under 1.5x means readiness scheduling is broken. In
    // between (2-3 cores), any real speedup at all.
    double MinSpeedup = Hw >= 4 ? 1.5 : (Hw >= 2 ? 1.05 : 0.95);
    bool ScalingOk = GateSpeedup >= MinSpeedup;
    std::printf("  scaling gate (%u hardware threads): %.2fx >= %.2fx: "
                "%s\n",
                Hw, GateSpeedup, MinSpeedup, ScalingOk ? "yes" : "NO");

    FILE *J = std::fopen("BENCH_pipeline.json", "w");
    if (J) {
      std::fprintf(
          J,
          "{\n"
          "  \"benchmark\": \"pipeline_parallel_scaling\",\n"
          "  \"backend\": \"%s\",\n"
          "  \"instructions\": %zu,\n"
          "  \"sccs\": %zu,\n"
          "  \"waves\": %zu,\n"
          "  \"widest_wave\": %zu,\n"
          "  \"hardware_threads\": %u,\n"
          "  \"seq_jobs1_secs\": %.6f,\n"
          "  \"par_jobs4_secs\": %.6f,\n"
          "  \"par_jobs4_speedup\": %.3f,\n"
          "  \"gate_speedup\": %.3f,\n"
          "  \"min_speedup_gate\": %.3f,\n"
          "  \"scaling_gate_ok\": %s,\n"
          "  \"sccs_scheduled\": %llu,\n"
          "  \"batches_formed\": %llu,\n"
          "  \"max_ready_queue\": %llu,\n"
          "  \"commit_stalls\": %llu,\n"
          "  \"cache_cold_secs\": %.6f,\n"
          "  \"cache_warm_jobs4_secs\": %.6f,\n"
          "  \"cache_warm_secs\": %.6f,\n"
          "  \"cache_warm_speedup\": %.3f,\n"
          "  \"binsub_jobs1_secs\": %.6f,\n"
          "  \"binsub_vs_retypd_speedup\": %.3f,\n"
          "  \"fit_beta\": %.3f,\n"
          "  \"fit_r2\": %.3f\n"
          "}\n",
          backendName(BackendKind::Retypd), P.M.instructionCount(),
          SeqReport.Stats.SccCount,
          SeqReport.Stats.WaveCount, SeqReport.Stats.WidestWave, Hw, Seq,
          Par4, Speedup, GateSpeedup, MinSpeedup,
          ScalingOk ? "true" : "false",
          static_cast<unsigned long long>(Par4Report.Stats.SccsScheduled),
          static_cast<unsigned long long>(Par4Report.Stats.BatchesFormed),
          static_cast<unsigned long long>(Par4Report.Stats.MaxReadyQueue),
          static_cast<unsigned long long>(Par4Report.Stats.CommitStalls),
          Cold, Warm4, Warm, CacheSpeedup, BinSub, BinSubSpeedup, Beta, R2);
      std::fclose(J);
      std::printf("  wrote BENCH_pipeline.json\n");
    }
    if (!ScalingOk)
      return 1;
  }

  return NearLinear ? 0 : 1;
}
