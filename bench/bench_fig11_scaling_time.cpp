//===- bench_fig11_scaling_time.cpp - Figure 11: time scaling ---------------===//
//
// Regenerates Figure 11: type-inference time against program size, with a
// power-law fit T = α·N^β. The paper reports β ≈ 1.098 (R² = 0.977):
// near-linear scaling despite the cubic worst case, because simplification
// is per-procedure (§5.3).
//
//===----------------------------------------------------------------------===//

#include "frontend/Pipeline.h"
#include "synth/Synth.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace retypd;

int main(int argc, char **argv) {
  bool Big = argc > 1 && std::strcmp(argv[1], "--big") == 0;
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;

  std::vector<unsigned> Sizes{1000, 2000, 5000, 10000, 20000, 50000};
  if (Big) {
    Sizes.push_back(100000);
    Sizes.push_back(200000);
  }

  std::printf("Figure 11: type-inference time vs program size\n");
  std::printf("(paper: t = 0.000725·N^1.098, R² = 0.977)\n\n");
  std::printf("%12s %12s %12s\n", "instructions", "functions",
              "time (s)");

  std::vector<double> LogN, LogT;
  for (unsigned Size : Sizes) {
    SynthOptions O;
    O.Seed = 23;
    O.TargetInstructions = Size;
    SynthProgram P = Gen.generate("scale", O);

    auto T0 = std::chrono::steady_clock::now();
    Pipeline Pipe(Lat);
    TypeReport R = Pipe.run(P.M);
    auto T1 = std::chrono::steady_clock::now();

    double Secs = std::chrono::duration<double>(T1 - T0).count();
    std::printf("%12zu %12zu %12.3f\n", P.M.instructionCount(),
                R.Funcs.size(), Secs);
    LogN.push_back(std::log(double(P.M.instructionCount())));
    LogT.push_back(std::log(Secs));
  }

  // Least-squares fit in log-log space: log T = log α + β log N.
  double N = double(LogN.size()), SX = 0, SY = 0, SXX = 0, SXY = 0;
  for (size_t I = 0; I < LogN.size(); ++I) {
    SX += LogN[I];
    SY += LogT[I];
    SXX += LogN[I] * LogN[I];
    SXY += LogN[I] * LogT[I];
  }
  double Beta = (N * SXY - SX * SY) / (N * SXX - SX * SX);
  double Alpha = std::exp((SY - Beta * SX) / N);
  double SSTot = 0, SSRes = 0, MeanY = SY / N;
  for (size_t I = 0; I < LogN.size(); ++I) {
    double Pred = std::log(Alpha) + Beta * LogN[I];
    SSRes += (LogT[I] - Pred) * (LogT[I] - Pred);
    SSTot += (LogT[I] - MeanY) * (LogT[I] - MeanY);
  }
  double R2 = SSTot > 0 ? 1 - SSRes / SSTot : 1;

  std::printf("\nfit: t = %.6g * N^%.3f   (R² = %.3f)\n", Alpha, Beta, R2);
  std::printf("paper: t = 0.000725 * N^1.098 (R² = 0.977)\n");
  bool NearLinear = Beta < 1.5;
  std::printf("shape check: near-linear scaling (β < 1.5): %s\n",
              NearLinear ? "yes (matches paper)" : "NO");
  return NearLinear ? 0 : 1;
}
