//===- bench_fig12_scaling_memory.cpp - Figure 12: memory scaling -----------===//
//
// Regenerates Figure 12: peak type-inference memory against program size,
// with a power-law fit m = α·N^β. The paper reports β ≈ 0.846 — sub-linear
// growth, because per-procedure constraint sets are simplified away before
// whole-program structures accumulate.
//
//===----------------------------------------------------------------------===//

#include "frontend/Pipeline.h"
#include "support/Stats.h"
#include "synth/Synth.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace retypd;

int main(int argc, char **argv) {
  bool Big = argc > 1 && std::strcmp(argv[1], "--big") == 0;
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;

  std::vector<unsigned> Sizes{1000, 2000, 5000, 10000, 20000, 50000};
  if (Big)
    Sizes.push_back(100000);

  std::printf("Figure 12: type-inference memory vs program size\n");
  std::printf("(paper: m = 0.037·N^0.846, R² = 0.959)\n\n");
  std::printf("%12s %14s\n", "instructions", "peak MiB");

  std::vector<double> LogN, LogM;
  for (unsigned Size : Sizes) {
    SynthOptions O;
    O.Seed = 29;
    O.TargetInstructions = Size;
    SynthProgram P = Gen.generate("scale", O);

    MemStats::resetPeak();
    uint64_t Before = MemStats::LiveBytes.load();
    {
      Pipeline Pipe(Lat);
      TypeReport R = Pipe.run(P.M);
      (void)R;
    }
    uint64_t Peak = MemStats::PeakBytes.load();
    double MiB = double(Peak - Before) / (1024.0 * 1024.0);
    std::printf("%12zu %14.2f\n", P.M.instructionCount(), MiB);
    LogN.push_back(std::log(double(P.M.instructionCount())));
    LogM.push_back(std::log(std::max(MiB, 0.01)));
  }

  double N = double(LogN.size()), SX = 0, SY = 0, SXX = 0, SXY = 0;
  for (size_t I = 0; I < LogN.size(); ++I) {
    SX += LogN[I];
    SY += LogM[I];
    SXX += LogN[I] * LogN[I];
    SXY += LogN[I] * LogM[I];
  }
  double Beta = (N * SXY - SX * SY) / (N * SXX - SX * SX);
  double Alpha = std::exp((SY - Beta * SX) / N);

  std::printf("\nfit: m = %.4g * N^%.3f MiB\n", Alpha, Beta);
  std::printf("paper: m = 0.037 * N^0.846 MB\n");
  bool SubQuadratic = Beta < 1.6;
  std::printf("shape check: sub-quadratic memory growth: %s\n",
              SubQuadratic ? "yes (matches paper)" : "NO");
  return SubQuadratic ? 0 : 1;
}
