//===- bench_fig2_close_last.cpp - Figure 2 micro-benchmark ------------------===//
//
// The paper's flagship example as a micro-benchmark: prints the recovered
// type scheme and C type for close_last (they must match Figure 2), then
// times the end-to-end inference with google-benchmark.
//
//===----------------------------------------------------------------------===//

#include "frontend/Pipeline.h"
#include "mir/AsmParser.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace retypd;

namespace {

const char *CloseLastAsm = R"(
extern close
fn close_last:
  load edx, [esp+4]
  jmp check
advance:
  mov edx, eax
check:
  load eax, [edx+0]
  test eax, eax
  jnz advance
  load eax, [edx+4]
  push eax
  call close
  add esp, 4
  ret
)";

Module parseCloseLast() {
  AsmParser P;
  auto M = P.parse(CloseLastAsm);
  return M ? *M : Module();
}

void BM_InferCloseLast(benchmark::State &State) {
  Lattice Lat = makeDefaultLattice();
  Module Proto = parseCloseLast();
  for (auto _ : State) {
    Module M = Proto;
    Pipeline Pipe(Lat);
    TypeReport R = Pipe.run(M);
    benchmark::DoNotOptimize(R.Funcs.size());
  }
}
BENCHMARK(BM_InferCloseLast);

void BM_SchemeOnly(benchmark::State &State) {
  // Constraint generation + simplification without sketch solving, to show
  // where the time goes.
  Lattice Lat = makeDefaultLattice();
  Module Proto = parseCloseLast();
  PipelineOptions Opts;
  Opts.RefineParameters = false;
  for (auto _ : State) {
    Module M = Proto;
    Pipeline Pipe(Lat, Opts);
    TypeReport R = Pipe.run(M);
    benchmark::DoNotOptimize(R.Funcs.size());
  }
}
BENCHMARK(BM_SchemeOnly);

} // namespace

int main(int argc, char **argv) {
  // First print the Figure 2 reproduction itself.
  Lattice Lat = makeDefaultLattice();
  Module M = parseCloseLast();
  Pipeline Pipe(Lat);
  TypeReport R = Pipe.run(M);
  uint32_t Id = *M.findFunction("close_last");
  std::printf("Figure 2 reproduction\n---------------------\n");
  std::printf("type scheme:\n%s\n\n",
              R.typesOf(Id)->Scheme.str(*R.Syms, Lat).c_str());
  std::printf("reconstructed C type:\n%s\n%s;\n\n",
              R.Pool.structDefinitions({R.typesOf(Id)->CType}).c_str(),
              R.prototypeOf(Id, M).c_str());
  std::printf("(paper: typedef struct { Struct_0* field_0; "
              "int/*#FileDescriptor*/ field_4 } Struct_0;\n"
              "        int/*#SuccessZ*/ close_last(const Struct_0*))\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
