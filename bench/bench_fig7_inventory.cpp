//===- bench_fig7_inventory.cpp - Figure 7: the benchmark suite --------------===//
//
// Regenerates the Figure 7 role: the inventory of the benchmark suite
// (program collections with their instruction counts). The paper lists 160
// real binaries; this reproduction's corpus is synthetic with exact ground
// truth (DESIGN.md §1), so the inventory lists generated clusters and the
// standalone scaling programs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace retypd;
using namespace retypd::bench;

int main() {
  std::printf("Figure 7: benchmark inventory (synthetic corpus)\n\n");
  std::printf("%-18s %9s %14s %12s\n", "collection", "programs",
              "instructions", "functions");

  SynthGenerator Gen;
  uint64_t Seed = 1;
  size_t TotalPrograms = 0, TotalInstr = 0;
  for (const ClusterSpec &Spec : figure10Clusters()) {
    auto Programs =
        Gen.generateCluster(Spec.Name, Spec.Count, Spec.Instructions,
                            Seed++);
    size_t Instr = 0, Funcs = 0;
    for (const SynthProgram &P : Programs) {
      Instr += P.M.instructionCount();
      Funcs += P.M.Funcs.size();
    }
    std::printf("%-18s %9u %14zu %12zu\n", Spec.Name, Spec.Count, Instr,
                Funcs);
    TotalPrograms += Spec.Count;
    TotalInstr += Instr;
  }

  // Standalone scaling programs (the Figure 11/12 sweep).
  for (unsigned Size : {1000u, 10000u, 50000u}) {
    SynthOptions O;
    O.Seed = 23;
    O.TargetInstructions = Size;
    SynthProgram P = Gen.generate("scaling", O);
    std::printf("%-18s %9u %14zu %12zu\n",
                ("scaling-" + std::to_string(Size)).c_str(), 1,
                P.M.instructionCount(), P.M.Funcs.size());
    ++TotalPrograms;
    TotalInstr += P.M.instructionCount();
  }

  std::printf("\ntotal: %zu programs, %zu instructions\n", TotalPrograms,
              TotalInstr);
  std::printf("(paper: 160 binaries, 2K to 842K instructions each)\n");
  return 0;
}
