//===- bench_fig8_distance.cpp - Figure 8: distance & interval size ---------===//
//
// Regenerates Figure 8 of the paper: mean distance to the ground-truth
// type and mean interval size, for Retypd against the unification
// (SecondWrite-style) and interval (TIE-style) baselines, on the
// coreutils-like cluster, the larger-program clusters (the paper's
// SPEC-2006 role), and the whole suite.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace retypd;
using namespace retypd::bench;

int main() {
  Lattice Lat = makeDefaultLattice();
  std::printf("Figure 8: distance to source type and interval size\n");
  std::printf("(paper: Retypd 0.54/1.2, TIE* 1.15, REWARDS-c* 1.53, "
              "TIE 1.58/2.0, SecondWrite 1.70/1.7)\n\n");

  auto All = runSuite(Lat);

  auto PrintRows = [&](const char *Scope,
                       const std::vector<ClusterScores> &Set) {
    MetricSummary R, U, T;
    for (const ClusterScores &CS : Set) {
      R.merge(CS.Retypd);
      U.merge(CS.Unification);
      T.merge(CS.Interval);
    }
    std::printf("%-12s %-22s %10s %10s\n", Scope, "engine", "distance",
                "interval");
    std::printf("%-12s %-22s %10.2f %10.2f\n", "", "Retypd",
                R.meanDistance(), R.meanInterval());
    std::printf("%-12s %-22s %10.2f %10.2f\n", "",
                "TIE-proxy (interval)", T.meanDistance(),
                T.meanInterval());
    std::printf("%-12s %-22s %10.2f %10.2f\n", "",
                "SecondWrite-proxy (unif)", U.meanDistance(),
                U.meanInterval());
    std::printf("\n");
  };

  std::vector<ClusterScores> Coreutils, Spec;
  for (const ClusterScores &CS : All) {
    if (CS.Name == "coreutils")
      Coreutils.push_back(CS);
    else if (CS.Instructions / CS.Programs >= 1000)
      Spec.push_back(CS); // the big-program clusters play the SPEC role
  }

  PrintRows("coreutils", Coreutils);
  PrintRows("large", Spec);
  PrintRows("all", All);

  // The paper's qualitative claims, checked mechanically.
  MetricSummary R, U, T;
  for (const ClusterScores &CS : All) {
    R.merge(CS.Retypd);
    U.merge(CS.Unification);
    T.merge(CS.Interval);
  }
  bool DistanceWin =
      R.meanDistance() < U.meanDistance() && R.meanDistance() < T.meanDistance();
  bool IntervalWin = R.meanInterval() < T.meanInterval();
  std::printf("shape check: Retypd lowest distance: %s\n",
              DistanceWin ? "yes (matches paper)" : "NO");
  std::printf("shape check: Retypd interval < TIE-proxy interval: %s\n",
              IntervalWin ? "yes (matches paper)" : "NO");
  return DistanceWin && IntervalWin ? 0 : 1;
}
