//===- bench_fig9_conservativeness.cpp - Figure 9 --------------------------===//
//
// Regenerates Figure 9: conservativeness rate and multi-level pointer
// accuracy for Retypd and the two baselines, on the coreutils-like
// cluster, the large-program clusters, and the whole suite.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace retypd;
using namespace retypd::bench;

int main() {
  Lattice Lat = makeDefaultLattice();
  std::printf("Figure 9: conservativeness and pointer accuracy\n");
  std::printf("(paper: Retypd 95%% / 88%% overall, 98%% on coreutils; "
              "SecondWrite 96%% / 73%%; TIE 94%%)\n\n");

  auto All = runSuite(Lat);

  auto PrintRows = [&](const char *Scope,
                       const std::vector<ClusterScores> &Set) {
    MetricSummary R, U, T;
    for (const ClusterScores &CS : Set) {
      R.merge(CS.Retypd);
      U.merge(CS.Unification);
      T.merge(CS.Interval);
    }
    std::printf("%-12s %-24s %14s %14s\n", Scope, "engine", "conservative",
                "ptr accuracy");
    std::printf("%-12s %-24s %13.1f%% %13.1f%%\n", "", "Retypd",
                100 * R.conservativeness(), 100 * R.pointerAccuracy());
    std::printf("%-12s %-24s %13.1f%% %13.1f%%\n", "",
                "TIE-proxy (interval)", 100 * T.conservativeness(),
                100 * T.pointerAccuracy());
    std::printf("%-12s %-24s %13.1f%% %13.1f%%\n", "",
                "SecondWrite-proxy (unif)", 100 * U.conservativeness(),
                100 * U.pointerAccuracy());
    std::printf("\n");
  };

  std::vector<ClusterScores> Coreutils, Large;
  for (const ClusterScores &CS : All) {
    if (CS.Name == "coreutils")
      Coreutils.push_back(CS);
    else if (CS.Instructions / CS.Programs >= 1000)
      Large.push_back(CS);
  }
  PrintRows("coreutils", Coreutils);
  PrintRows("large", Large);
  PrintRows("all", All);

  MetricSummary R, U;
  for (const ClusterScores &CS : All) {
    R.merge(CS.Retypd);
    U.merge(CS.Unification);
  }
  bool ConsHigh = R.conservativeness() >= 0.90;
  bool PtrWin = R.pointerAccuracy() > U.pointerAccuracy();
  std::printf("shape check: Retypd conservativeness >= 90%%: %s\n",
              ConsHigh ? "yes (matches paper)" : "NO");
  std::printf("shape check: Retypd pointer accuracy beats unification: %s\n",
              PtrWin ? "yes (matches paper)" : "NO");
  return ConsHigh && PtrWin ? 0 : 1;
}
