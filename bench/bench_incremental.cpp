//===- bench_incremental.cpp - Incremental re-analysis study ----------------===//
//
// Measures the payoff of the AnalysisSession incremental engine: a full
// from-scratch analysis of a large synthetic module versus re-analysis
// after a single-function edit. Writes BENCH_incremental.json with wall
// times and the SCC reuse counters (the honest mechanism-level evidence:
// re-analysis must simplify strictly fewer SCCs).
//
//===----------------------------------------------------------------------===//

#include "frontend/ReportPrinter.h"
#include "frontend/Session.h"
#include "synth/Synth.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace retypd;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Applies a small body edit (tweak one immediate) to function \p FuncId.
bool tweakFunction(Module &M, uint32_t FuncId) {
  for (Instr &I : M.Funcs[FuncId].Body) {
    switch (I.Op) {
    case Opcode::MovImm:
    case Opcode::AddImm:
    case Opcode::SubImm:
    case Opcode::CmpImm:
    case Opcode::PushImm:
      I.Imm += 1;
      return true;
    default:
      break;
    }
  }
  return false;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Target = argc > 1 ? std::atoi(argv[1]) : 20000;
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;
  SynthOptions O;
  O.Seed = 37;
  O.TargetInstructions = Target;
  SynthProgram P = Gen.generate("incr", O);

  std::printf("incremental re-analysis study (%zu instructions, %zu "
              "functions)\n\n",
              P.M.instructionCount(), P.M.Funcs.size());

  AnalysisSession S(Lat, SessionOptions{});
  S.loadModule(P.M);

  double T0 = now();
  S.analyze();
  double FullSecs = now() - T0;
  PipelineStats Full = S.report()->Stats;
  ReportPrintOptions Print;

  // Edit one mid-module function and re-analyze.
  Module Edited = S.module();
  uint32_t Victim = 0;
  for (uint32_t F = Edited.Funcs.size() / 2; F < Edited.Funcs.size(); ++F)
    if (!Edited.Funcs[F].IsExternal && tweakFunction(Edited, F)) {
      Victim = F;
      break;
    }
  S.updateModule(Edited);

  T0 = now();
  S.analyze();
  double IncrSecs = now() - T0;
  PipelineStats Incr = S.report()->Stats;

  // Sanity: byte-identical to a from-scratch run over the edited module.
  AnalysisSession Fresh(Lat, SessionOptions{});
  Fresh.loadModule(Edited);
  Fresh.analyze();
  bool Identical = renderReport(*S.report(), S.module(), Lat, Print) ==
                   renderReport(*Fresh.report(), Fresh.module(), Lat, Print);

  double Speedup = IncrSecs > 0 ? FullSecs / IncrSecs : 0;
  std::printf("%-28s %10s %10s\n", "", "full", "1-fn edit");
  std::printf("%-28s %10.3f %10.3f\n", "wall time (s)", FullSecs, IncrSecs);
  std::printf("%-28s %10zu %10zu\n", "SCCs simplified",
              Full.SccsSimplified, Incr.SccsSimplified);
  std::printf("%-28s %10zu %10zu\n", "SCCs reused", Full.SccsReused,
              Incr.SccsReused);
  std::printf("%-28s %10zu %10zu\n", "SCCs solved", Full.SccsSolved,
              Incr.SccsSolved);
  std::printf("%-28s %10zu %10zu\n", "sketch solves reused",
              Full.SccsSolveReused, Incr.SccsSolveReused);
  std::printf("\nedited function: %s\n",
              Edited.Funcs[Victim].Name.c_str());
  std::printf("re-analysis speedup: %.2fx\n", Speedup);
  std::printf("byte-identical to from-scratch: %s\n",
              Identical ? "yes" : "NO (BUG)");
  std::printf("strictly fewer simplifications: %s\n",
              Incr.SccsSimplified < Full.SccsSimplified ? "yes" : "NO (BUG)");

  FILE *J = std::fopen("BENCH_incremental.json", "w");
  if (J) {
    std::fprintf(
        J,
        "{\n"
        "  \"benchmark\": \"incremental_reanalysis\",\n"
        "  \"instructions\": %zu,\n"
        "  \"functions\": %zu,\n"
        "  \"full_secs\": %.6f,\n"
        "  \"incremental_secs\": %.6f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"full_sccs_simplified\": %zu,\n"
        "  \"incremental_sccs_simplified\": %zu,\n"
        "  \"incremental_sccs_reused\": %zu,\n"
        "  \"full_sccs_solved\": %zu,\n"
        "  \"incremental_sccs_solved\": %zu,\n"
        "  \"incremental_solve_reused\": %zu,\n"
        "  \"byte_identical\": %s,\n"
        "  \"strictly_fewer_simplifications\": %s\n"
        "}\n",
        P.M.instructionCount(), P.M.Funcs.size(), FullSecs, IncrSecs,
        Speedup, Full.SccsSimplified, Incr.SccsSimplified, Incr.SccsReused,
        Full.SccsSolved, Incr.SccsSolved, Incr.SccsSolveReused,
        Identical ? "true" : "false",
        Incr.SccsSimplified < Full.SccsSimplified ? "true" : "false");
    std::fclose(J);
    std::printf("\nwrote BENCH_incremental.json\n");
  }
  return Identical && Incr.SccsSimplified < Full.SccsSimplified ? 0 : 1;
}
