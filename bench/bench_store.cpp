//===- bench_store.cpp - Artifact-store data-plane benchmark --------------===//
//
// Measures the durable artifact store (store/Store.h) against the legacy
// single-file cache persistence on one synthetic module:
//
//   append      flushToStore() of a cold run's artifacts: records/s, MB/s
//   warm (mmap) a fresh SummaryCache over the store directory — every
//               probe decodes zero-copy out of the mapped segments
//   warm (file) a fresh SummaryCache load()ing the legacy v3 file — the
//               whole file is parsed and copied into memory up front
//   compact     fold a store with ~50% dead bytes into a new generation
//
// The store-warm run is also the CI gate: this binary exits nonzero
// unless it performed ZERO ConstraintParser calls, ZERO cache misses,
// ZERO payload-byte copies (the mmap zero-copy invariant), a nonzero
// number of store hits, a nonzero number of pool-bind hits (every store
// decode resolves its names through the pool translation table — no
// per-payload string hashing), and cache.decode within a per-instruction
// budget (default 1 microsecond/instruction as a regression backstop
// with CI-runner headroom; --decode-budget
// overrides). Results go to BENCH_store.json.
//
//===----------------------------------------------------------------------===//

#include "core/SummaryCache.h"
#include "frontend/Pipeline.h"
#include "support/Stats.h"
#include "synth/Synth.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace retypd;
namespace fs = std::filesystem;

namespace {

constexpr unsigned kSamples = 3;

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

double runOnce(const SynthProgram &P, const Lattice &Lat,
               SummaryCache *Cache) {
  Module M = P.M; // run on a copy: the pipeline mutates the module
  PipelineOptions Opts;
  Opts.Jobs = 1;
  Opts.Cache = Cache;
  Clock::time_point T0 = Clock::now();
  Pipeline Pipe(Lat, Opts);
  TypeReport R = Pipe.run(M);
  (void)R;
  return secondsSince(T0);
}

} // namespace

int main(int argc, char **argv) {
  unsigned Size = 20000;
  double DecodeBudget = 0; // 0 = derive from instruction count below
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--instr") == 0 && I + 1 < argc) {
      Size = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else if (std::strcmp(argv[I], "--decode-budget") == 0 && I + 1 < argc) {
      DecodeBudget = std::strtod(argv[++I], nullptr);
    } else {
      std::fprintf(stderr, "usage: %s [--instr N] [--decode-budget SECS]\n",
                   argv[0]);
      return 2;
    }
  }
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;
  SynthOptions O;
  O.Seed = 23;
  O.TargetInstructions = Size;
  SynthProgram P = Gen.generate("store-bench", O);

  fs::path Dir = fs::temp_directory_path() / "retypd_bench_store";
  fs::path LegacyFile = fs::temp_directory_path() / "retypd_bench_store.bin";
  fs::remove_all(Dir);
  fs::remove(LegacyFile);

  std::printf("artifact-store data plane (%zu instructions, 1 thread, "
              "min of %u runs per mode)\n\n",
              P.M.instructionCount(), kSamples);

  // ---- Populate: one cold run into a memory-only cache ------------------
  SummaryCache Cold;
  double ColdWall = runOnce(P, Lat, &Cold);
  size_t Entries = Cold.size();
  size_t PayloadBytes = Cold.payloadBytes();
  std::printf("cold run           %8.3f s  (%zu entries, %zu payload "
              "bytes)\n",
              ColdWall, Entries, PayloadBytes);

  // ---- Append throughput: journal the whole artifact set ---------------
  if (!Cold.openStore(Dir.string())) {
    std::fprintf(stderr, "cannot open store %s\n", Dir.string().c_str());
    return 1;
  }
  Clock::time_point T0 = Clock::now();
  auto Appended = Cold.flushToStore();
  double AppendSecs = secondsSince(T0);
  if (!Appended || *Appended == 0) {
    std::fprintf(stderr, "flushToStore appended nothing\n");
    return 1;
  }
  double AppendRecsPerSec = static_cast<double>(*Appended) / AppendSecs;
  double AppendMbPerSec =
      static_cast<double>(PayloadBytes) / (1024.0 * 1024.0) / AppendSecs;
  std::printf("append             %8.3f s  (%zu records, %.0f rec/s, "
              "%.1f MiB/s)\n",
              AppendSecs, *Appended, AppendRecsPerSec, AppendMbPerSec);
  if (!Cold.save(LegacyFile.string())) {
    std::fprintf(stderr, "cannot save legacy file\n");
    return 1;
  }

  // ---- Warm walls: mmap store vs legacy file ---------------------------
  // Each sample models a fresh process: the wall includes attaching the
  // persistence (openStore maps segments; load parses and copies the
  // whole file into memory up front) plus the analysis itself. A fresh
  // SummaryCache per sample keeps the decoded-value memo out of the
  // measurement.
  if (DecodeBudget <= 0)
    DecodeBudget = 1.0e-6 * static_cast<double>(P.M.instructionCount());
  double StoreWarm = 0, DecodeSecs = 0;
  double LegacyWarm = 0;
  bool StoreClean = true;
  uint64_t StoreHits = 0, StoreCopies = 0, PoolBindHits = 0;
  for (unsigned I = 0; I < kSamples; ++I) {
    SummaryCache Warm;
    EventCounters::reset();
    PhaseTimes::reset();
    Clock::time_point W0 = Clock::now();
    if (!Warm.openStore(Dir.string())) {
      std::fprintf(stderr, "cannot reopen store\n");
      return 1;
    }
    double Wall = secondsSince(W0) + runOnce(P, Lat, &Warm);
    StoreWarm = I == 0 ? Wall : std::min(StoreWarm, Wall);
    double Decode = 0;
    for (const auto &[Phase, Secs] : PhaseTimes::snapshot())
      if (Phase == "cache.decode")
        Decode = Secs;
    DecodeSecs = I == 0 ? Decode : std::min(DecodeSecs, Decode);
    StoreHits = EventCounters::StoreHits.load();
    StoreCopies = EventCounters::StorePayloadCopies.load();
    PoolBindHits = EventCounters::PoolBindHits.load();
    StoreClean =
        StoreClean &&
        EventCounters::ConstraintParseCalls.load() == 0 &&
        Warm.misses() == 0 && StoreHits > 0 && StoreCopies == 0 &&
        PoolBindHits > 0;
  }
  StoreClean = StoreClean && DecodeSecs <= DecodeBudget;
  for (unsigned I = 0; I < kSamples; ++I) {
    SummaryCache Warm;
    Clock::time_point W0 = Clock::now();
    if (!Warm.load(LegacyFile.string())) {
      std::fprintf(stderr, "cannot load legacy file\n");
      return 1;
    }
    double Wall = secondsSince(W0) + runOnce(P, Lat, &Warm);
    LegacyWarm = I == 0 ? Wall : std::min(LegacyWarm, Wall);
  }
  std::printf("warm (mmap store)  %8.3f s  (%llu store hits, %llu copies)\n",
              StoreWarm, static_cast<unsigned long long>(StoreHits),
              static_cast<unsigned long long>(StoreCopies));
  std::printf("warm (legacy file) %8.3f s\n", LegacyWarm);
  std::printf("store-warm decode  %8.3f s  (budget %.3f s, %llu pool-bind "
              "hits)\n",
              DecodeSecs, DecodeBudget,
              static_cast<unsigned long long>(PoolBindHits));
  std::printf("store-warm clean (0 parses, 0 misses, hits > 0, "
              "0 payload copies, pool binds > 0, decode <= budget): %s\n",
              StoreClean ? "yes" : "NO");

  // ---- Compaction: ~half the store dead --------------------------------
  // Re-append every live payload once (copied out first — a PayloadRef
  // pins the store's reader lock, and append wants the writer lock).
  Store *S = Cold.store();
  std::vector<std::pair<Hash128, std::string>> Copies;
  for (const auto &[K, Len] : S->liveEntries()) {
    Store::PayloadRef Ref = S->lookup(K);
    if (Ref)
      Copies.emplace_back(K, std::string(Ref.view()));
  }
  for (const auto &[K, Body] : Copies)
    S->append(K, Body);
  if (!S->flush()) {
    std::fprintf(stderr, "duplicate-append flush failed\n");
    return 1;
  }
  StoreInfo Before = Store::inspect(Dir.string(), kSummaryCacheSchemaVersion);
  T0 = Clock::now();
  auto Compacted = S->compact();
  double CompactSecs = secondsSince(T0);
  if (!Compacted || Compacted->ReclaimedBytes < Before.DeadBytes) {
    std::fprintf(stderr, "compaction reclaimed less than reported dead "
                         "bytes\n");
    return 1;
  }
  std::printf("compact            %8.3f s  (%zu live records, reclaimed "
              "%zu of %zu dead bytes)\n",
              CompactSecs, Compacted->LiveRecords, Compacted->ReclaimedBytes,
              Before.DeadBytes);

  FILE *J = std::fopen("BENCH_store.json", "w");
  if (J) {
    std::fprintf(
        J,
        "{\n"
        "  \"benchmark\": \"artifact_store_data_plane\",\n"
        "  \"instructions\": %zu,\n"
        "  \"hardware_threads\": %u,\n"
        "  \"entries\": %zu,\n"
        "  \"payload_bytes\": %zu,\n"
        "  \"append_secs\": %.6f,\n"
        "  \"append_records_per_sec\": %.1f,\n"
        "  \"append_mib_per_sec\": %.3f,\n"
        "  \"warm_store_wall_secs\": %.6f,\n"
        "  \"warm_legacy_file_wall_secs\": %.6f,\n"
        "  \"warm_store_vs_legacy\": %.3f,\n"
        "  \"store_hits\": %llu,\n"
        "  \"store_payload_copies\": %llu,\n"
        "  \"pool_bind_hits\": %llu,\n"
        "  \"warm_decode_secs\": %.6f,\n"
        "  \"decode_budget_secs\": %.6f,\n"
        "  \"store_warm_clean\": %s,\n"
        "  \"compact_secs\": %.6f,\n"
        "  \"compact_reclaimed_bytes\": %zu,\n"
        "  \"dead_bytes_before_compact\": %zu\n"
        "}\n",
        P.M.instructionCount(),
        std::max(1u, std::thread::hardware_concurrency()), Entries,
        PayloadBytes, AppendSecs, AppendRecsPerSec, AppendMbPerSec,
        StoreWarm, LegacyWarm,
        StoreWarm > 0 ? LegacyWarm / StoreWarm : 0.0,
        static_cast<unsigned long long>(StoreHits),
        static_cast<unsigned long long>(StoreCopies),
        static_cast<unsigned long long>(PoolBindHits), DecodeSecs,
        DecodeBudget, StoreClean ? "true" : "false", CompactSecs,
        Compacted->ReclaimedBytes, Before.DeadBytes);
    std::fclose(J);
    std::printf("wrote BENCH_store.json\n");
  }
  fs::remove_all(Dir);
  fs::remove(LegacyFile);
  return StoreClean ? 0 : 1;
}
