//===- bench_warmpath.cpp - Warm-cache phase breakdown --------------------===//
//
// Measures the warm summary-cache path directly instead of inferring it
// from end-to-end times: one synthetic module analyzed cold (populating a
// shared cache) and then warm, with the per-phase wall-clock accumulators
// (support/Stats.h PhaseTimes) split out for each run:
//
//   pipeline.generate / simplify / solve / convert   the classic phases
//   cache.hash                                       structural key hashing
//   cache.encode / cache.decode                      binary codec work
//   parser.parse                                     ConstraintParser time
//
// plus the EventCounters (constraint parses, scheme encodes/decodes).
// The binary data plane's claims are checkable right here: warm runs must
// show parser.parse == 0 and zero ConstraintParseCalls — the old design
// re-parsed every cached scheme — and cache.hash/decode must be small
// next to the simplify time they replace. Results go to
// BENCH_warmpath.json.
//
//===----------------------------------------------------------------------===//

#include "core/SummaryCache.h"
#include "frontend/Pipeline.h"
#include "support/Stats.h"
#include "synth/Synth.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>

using namespace retypd;

namespace {

struct RunResult {
  double WallSecs = 0;
  std::map<std::string, double> Phases;
  uint64_t ParseCalls = 0;
  uint64_t Encodes = 0;
  uint64_t Decodes = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
};

RunResult timedRun(const SynthProgram &P, const Lattice &Lat,
                   SummaryCache *Cache) {
  Module M = P.M; // run on a copy: the pipeline mutates the module
  PipelineOptions Opts;
  Opts.Jobs = 1; // single-core phase attribution (no overlap double-count)
  Opts.Cache = Cache;
  PhaseTimes::reset();
  EventCounters::reset();
  uint64_t Hits0 = Cache ? Cache->hits() : 0;
  uint64_t Misses0 = Cache ? Cache->misses() : 0;
  auto T0 = std::chrono::steady_clock::now();
  Pipeline Pipe(Lat, Opts);
  TypeReport R = Pipe.run(M);
  (void)R;
  RunResult Out;
  Out.WallSecs = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
  for (const auto &[Phase, Secs] : PhaseTimes::snapshot())
    Out.Phases[Phase] = Secs;
  Out.ParseCalls =
      EventCounters::ConstraintParseCalls.load(std::memory_order_relaxed);
  Out.Encodes = EventCounters::SchemeEncodes.load(std::memory_order_relaxed);
  Out.Decodes = EventCounters::SchemeDecodes.load(std::memory_order_relaxed);
  if (Cache) {
    Out.CacheHits = Cache->hits() - Hits0;
    Out.CacheMisses = Cache->misses() - Misses0;
  }
  return Out;
}

double phase(const RunResult &R, const char *Name) {
  auto It = R.Phases.find(Name);
  return It == R.Phases.end() ? 0.0 : It->second;
}

void printRun(const char *Title, const RunResult &R) {
  std::printf("%s: %.3f s wall\n", Title, R.WallSecs);
  for (const auto &[Name, Secs] : R.Phases)
    std::printf("    %-22s %8.4f s\n", Name.c_str(), Secs);
  std::printf("    %-22s %8llu\n", "constraint parses",
              static_cast<unsigned long long>(R.ParseCalls));
  std::printf("    %-22s %8llu / %llu\n", "scheme encodes/decodes",
              static_cast<unsigned long long>(R.Encodes),
              static_cast<unsigned long long>(R.Decodes));
  std::printf("    %-22s %8llu / %llu\n", "cache hits/misses",
              static_cast<unsigned long long>(R.CacheHits),
              static_cast<unsigned long long>(R.CacheMisses));
}

void emitPhases(FILE *J, const RunResult &R, const char *Indent) {
  std::fprintf(J,
               "%s\"phase0_secs\": %.6f,\n"
               "%s\"generate_secs\": %.6f,\n"
               "%s\"simplify_secs\": %.6f,\n"
               "%s\"solveprep_secs\": %.6f,\n"
               "%s\"solve_secs\": %.6f,\n"
               "%s\"convert_secs\": %.6f,\n"
               "%s\"hash_secs\": %.6f,\n"
               "%s\"encode_secs\": %.6f,\n"
               "%s\"decode_secs\": %.6f,\n"
               "%s\"parse_secs\": %.6f,\n"
               "%s\"parse_calls\": %llu,\n"
               "%s\"scheme_encodes\": %llu,\n"
               "%s\"scheme_decodes\": %llu,\n"
               "%s\"cache_hits\": %llu,\n"
               "%s\"cache_misses\": %llu,\n"
               "%s\"wall_secs\": %.6f\n",
               Indent, phase(R, "pipeline.phase0"), Indent,
               phase(R, "pipeline.generate"), Indent,
               phase(R, "pipeline.simplify"), Indent,
               phase(R, "pipeline.solveprep"), Indent,
               phase(R, "pipeline.solve"), Indent,
               phase(R, "pipeline.convert"), Indent, phase(R, "cache.hash"),
               Indent, phase(R, "cache.encode"), Indent,
               phase(R, "cache.decode"), Indent, phase(R, "parser.parse"),
               Indent, static_cast<unsigned long long>(R.ParseCalls), Indent,
               static_cast<unsigned long long>(R.Encodes), Indent,
               static_cast<unsigned long long>(R.Decodes), Indent,
               static_cast<unsigned long long>(R.CacheHits), Indent,
               static_cast<unsigned long long>(R.CacheMisses), Indent,
               R.WallSecs);
}

} // namespace

int main(int argc, char **argv) {
  unsigned Size = 50000;
  if (argc > 1 && std::strcmp(argv[1], "--small") == 0)
    Size = 10000;
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;
  SynthOptions O;
  O.Seed = 23;
  O.TargetInstructions = Size;
  SynthProgram P = Gen.generate("warmpath", O);

  std::printf("warm-path phase breakdown (%zu instructions, 1 thread)\n\n",
              P.M.instructionCount());

  RunResult NoCache = timedRun(P, Lat, nullptr);
  printRun("no cache        ", NoCache);
  SummaryCache Cache;
  RunResult Cold = timedRun(P, Lat, &Cache);
  printRun("cold cache      ", Cold);
  RunResult Warm = timedRun(P, Lat, &Cache);
  printRun("warm cache      ", Warm);

  double Speedup = Warm.WallSecs > 0 ? NoCache.WallSecs / Warm.WallSecs : 0;
  std::printf("\nwarm speedup vs no-cache: %.2fx\n", Speedup);
  bool WarmClean = Warm.ParseCalls == 0 && Warm.CacheMisses == 0 &&
                   Warm.CacheHits > 0;
  std::printf("warm path clean (0 parses, 0 misses, hits > 0): %s\n",
              WarmClean ? "yes" : "NO");

  FILE *J = std::fopen("BENCH_warmpath.json", "w");
  if (J) {
    std::fprintf(J,
                 "{\n"
                 "  \"benchmark\": \"warmpath_phase_breakdown\",\n"
                 "  \"instructions\": %zu,\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"jobs\": 1,\n"
                 "  \"warm_speedup_vs_nocache\": %.3f,\n"
                 "  \"warm_parse_free\": %s,\n",
                 P.M.instructionCount(),
                 std::max(1u, std::thread::hardware_concurrency()), Speedup,
                 WarmClean ? "true" : "false");
    std::fprintf(J, "  \"no_cache\": {\n");
    emitPhases(J, NoCache, "    ");
    std::fprintf(J, "  },\n  \"cold\": {\n");
    emitPhases(J, Cold, "    ");
    std::fprintf(J, "  },\n  \"warm\": {\n");
    emitPhases(J, Warm, "    ");
    std::fprintf(J, "  }\n}\n");
    std::fclose(J);
    std::printf("wrote BENCH_warmpath.json\n");
  }
  return WarmClean ? 0 : 1;
}
