//===- bench_warmpath.cpp - Warm-cache phase breakdown --------------------===//
//
// Measures the warm summary-cache path directly instead of inferring it
// from end-to-end times: one synthetic module analyzed cold (populating a
// shared cache) and then warm, with the per-phase wall-clock accumulators
// (support/Stats.h PhaseTimes) split out for each run:
//
//   pipeline.generate / simplify / solve / convert   the classic phases
//   cache.hash                                       structural key hashing
//   gencache.key                                     generation-cache keys
//   cache.encode / cache.decode                      binary codec work
//   parser.parse                                     ConstraintParser time
//
// plus the EventCounters (constraint parses, scheme encodes/decodes, and
// generation-cache hits/misses). The content-addressed data plane's claims
// are checkable right here: warm runs must show parser.parse == 0, zero
// ConstraintParseCalls, zero cache misses of ANY payload kind (schemes,
// solutions, generation results), and nonzero gen-cache hits — the
// generate phase replays binary payloads instead of re-walking bodies.
//
// A fourth mode measures the STORE-warm fresh process: a brand-new
// SummaryCache attached to the artifact store written by the warm cache.
// Its gates are the v3 zero-deserialization invariants: zero payload-byte
// copies off the mmap, every store decode resolving names through the
// pool translation table (nonzero PoolBindHits), and cache.decode staying
// under a per-instruction budget (default 1 microsecond/instruction — a
// regression backstop with CI-runner headroom; the paper-target 0.5 us/instr
// is recorded in the JSON as store_decode_secs vs instructions,
// --decode-budget overrides) — the "mmapped bytes ARE the runtime
// representation" claim as a number.
//
// Results go to BENCH_warmpath.json. Exits nonzero unless both warm runs
// are clean, which is exactly what the CI bench-smoke job gates on.
//
//===----------------------------------------------------------------------===//

#include "core/SummaryCache.h"
#include "frontend/Pipeline.h"
#include "support/Stats.h"
#include "synth/Synth.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace retypd;

namespace {

constexpr unsigned kSamples = 3;

struct RunResult {
  double WallSecs = 0;
  // PhaseTimes::snapshot() is already sorted by phase name (a documented
  // contract, pinned by tests/support/StatsTest.cpp) — keep it verbatim
  // instead of re-sorting through a std::map.
  std::vector<std::pair<std::string, double>> Phases;
  CounterSnapshot Counters; ///< delta over the run
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t SccsScheduled = 0;
  uint64_t BatchesFormed = 0;
  uint64_t MaxReadyQueue = 0;
  uint64_t CommitStalls = 0;
};

RunResult timedRun(const SynthProgram &P, const Lattice &Lat,
                   SummaryCache *Cache) {
  Module M = P.M; // run on a copy: the pipeline mutates the module
  PipelineOptions Opts;
  Opts.Jobs = 1; // single-core phase attribution (no overlap double-count)
  Opts.Cache = Cache;
  PhaseTimes::reset();
  EventCounters::reset();
  const CounterSnapshot Counters0 = CounterSnapshot::take();
  uint64_t Hits0 = Cache ? Cache->hits() : 0;
  uint64_t Misses0 = Cache ? Cache->misses() : 0;
  auto T0 = std::chrono::steady_clock::now();
  Pipeline Pipe(Lat, Opts);
  TypeReport R = Pipe.run(M);
  RunResult Out;
  Out.SccsScheduled = R.Stats.SccsScheduled;
  Out.BatchesFormed = R.Stats.BatchesFormed;
  Out.MaxReadyQueue = R.Stats.MaxReadyQueue;
  Out.CommitStalls = R.Stats.CommitStalls;
  Out.WallSecs = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
  Out.Phases = PhaseTimes::snapshot();
  Out.Counters = Counters0.delta();
  if (Cache) {
    Out.CacheHits = Cache->hits() - Hits0;
    Out.CacheMisses = Cache->misses() - Misses0;
  }
  return Out;
}

double phase(const RunResult &R, const char *Name) {
  // Phases is sorted by name (snapshot() contract), so binary search.
  auto It = std::lower_bound(
      R.Phases.begin(), R.Phases.end(), Name,
      [](const std::pair<std::string, double> &E, const char *N) {
        return E.first < N;
      });
  return It != R.Phases.end() && It->first == Name ? It->second : 0.0;
}

void printRun(const char *Title, const RunResult &R) {
  std::printf("%s: %.3f s wall\n", Title, R.WallSecs);
  for (const auto &[Name, Secs] : R.Phases)
    std::printf("    %-22s %8.4f s\n", Name.c_str(), Secs);
  std::printf("    %-22s %8llu\n", "constraint parses",
              static_cast<unsigned long long>(R.Counters.ConstraintParseCalls));
  std::printf("    %-22s %8llu / %llu\n", "scheme encodes/decodes",
              static_cast<unsigned long long>(R.Counters.SchemeEncodes),
              static_cast<unsigned long long>(R.Counters.SchemeDecodes));
  std::printf("    %-22s %8llu / %llu\n", "cache hits/misses",
              static_cast<unsigned long long>(R.CacheHits),
              static_cast<unsigned long long>(R.CacheMisses));
  std::printf("    %-22s %8llu / %llu\n", "gen-cache hits/misses",
              static_cast<unsigned long long>(R.Counters.GenCacheHits),
              static_cast<unsigned long long>(R.Counters.GenCacheMisses));
}

void emitPhases(FILE *J, const RunResult &R, const char *Indent) {
  std::fprintf(J,
               "%s\"phase0_secs\": %.6f,\n"
               "%s\"generate_secs\": %.6f,\n"
               "%s\"simplify_secs\": %.6f,\n"
               "%s\"solveprep_secs\": %.6f,\n"
               "%s\"solve_secs\": %.6f,\n"
               "%s\"convert_secs\": %.6f,\n"
               "%s\"hash_secs\": %.6f,\n"
               "%s\"genkey_secs\": %.6f,\n"
               "%s\"encode_secs\": %.6f,\n"
               "%s\"decode_secs\": %.6f,\n"
               "%s\"parse_secs\": %.6f,\n"
               "%s\"parse_calls\": %llu,\n"
               "%s\"scheme_encodes\": %llu,\n"
               "%s\"scheme_decodes\": %llu,\n"
               "%s\"cache_hits\": %llu,\n"
               "%s\"cache_misses\": %llu,\n"
               "%s\"gen_cache_hits\": %llu,\n"
               "%s\"gen_cache_misses\": %llu,\n"
               "%s\"store_hits\": %llu,\n"
               "%s\"store_payload_copies\": %llu,\n"
               "%s\"pool_bind_hits\": %llu,\n"
               "%s\"verifier_checks\": %llu,\n"
               "%s\"trace_events\": %llu,\n"
               "%s\"sccs_scheduled\": %llu,\n"
               "%s\"batches_formed\": %llu,\n"
               "%s\"max_ready_queue\": %llu,\n"
               "%s\"commit_stalls\": %llu,\n"
               "%s\"wall_secs\": %.6f\n",
               Indent, phase(R, "pipeline.phase0"), Indent,
               phase(R, "pipeline.generate"), Indent,
               phase(R, "pipeline.simplify"), Indent,
               phase(R, "pipeline.solveprep"), Indent,
               phase(R, "pipeline.solve"), Indent,
               phase(R, "pipeline.convert"), Indent, phase(R, "cache.hash"),
               Indent, phase(R, "gencache.key"), Indent,
               phase(R, "cache.encode"), Indent,
               phase(R, "cache.decode"), Indent, phase(R, "parser.parse"),
               Indent,
               static_cast<unsigned long long>(R.Counters.ConstraintParseCalls),
               Indent,
               static_cast<unsigned long long>(R.Counters.SchemeEncodes),
               Indent,
               static_cast<unsigned long long>(R.Counters.SchemeDecodes),
               Indent, static_cast<unsigned long long>(R.CacheHits), Indent,
               static_cast<unsigned long long>(R.CacheMisses), Indent,
               static_cast<unsigned long long>(R.Counters.GenCacheHits), Indent,
               static_cast<unsigned long long>(R.Counters.GenCacheMisses),
               Indent, static_cast<unsigned long long>(R.Counters.StoreHits),
               Indent,
               static_cast<unsigned long long>(R.Counters.StorePayloadCopies),
               Indent, static_cast<unsigned long long>(R.Counters.PoolBindHits),
               Indent,
               static_cast<unsigned long long>(R.Counters.VerifierChecks),
               Indent, static_cast<unsigned long long>(R.Counters.TraceEvents),
               Indent, static_cast<unsigned long long>(R.SccsScheduled), Indent,
               static_cast<unsigned long long>(R.BatchesFormed), Indent,
               static_cast<unsigned long long>(R.MaxReadyQueue), Indent,
               static_cast<unsigned long long>(R.CommitStalls), Indent,
               R.WallSecs);
}

} // namespace

int main(int argc, char **argv) {
  unsigned Size = 50000;
  double DecodeBudget = 0; // 0 = derive from instruction count below
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--small") == 0) {
      Size = 10000;
    } else if (std::strcmp(argv[I], "--instr") == 0 && I + 1 < argc) {
      Size = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else if (std::strcmp(argv[I], "--decode-budget") == 0 && I + 1 < argc) {
      DecodeBudget = std::strtod(argv[++I], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--small | --instr N] [--decode-budget SECS]\n"
                   "  --small    10k instructions (alias for --instr 10000)\n"
                   "  --instr N  synthesize ~N instructions (default 50000;\n"
                   "             CI smoke uses a small N)\n"
                   "  --decode-budget SECS  fail if the store-warm run's\n"
                   "             cache.decode exceeds SECS (default:\n"
                   "             1 microsecond per instruction)\n",
                   argv[0]);
      return 2;
    }
  }
  if (Size == 0) {
    std::fprintf(stderr, "--instr requires a positive count\n");
    return 2;
  }
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;
  SynthOptions O;
  O.Seed = 23;
  O.TargetInstructions = Size;
  SynthProgram P = Gen.generate("warmpath", O);

  std::printf("warm-path phase breakdown (%zu instructions, 1 thread, "
              "min of %u runs per mode)\n\n",
              P.M.instructionCount(), kSamples);

  // Single samples flake under scheduler noise on small containers; take
  // the min-wall run of each mode (the same discipline bench_fig11 uses).
  // Counters are deterministic across samples, so any run's are honest.
  auto minRun = [](RunResult A, const RunResult &B) {
    return B.WallSecs < A.WallSecs ? B : A;
  };
  // Per-phase minima across a mode's samples: phase ratios computed
  // min-over-min are far less noise-sensitive than any single run's.
  auto minPhase = [](const std::vector<RunResult> &Runs, const char *Name) {
    double Min = 0;
    bool Have = false;
    for (const RunResult &R : Runs) {
      double V = phase(R, Name);
      if (!Have || V < Min) {
        Min = V;
        Have = true;
      }
    }
    return Min;
  };

  std::vector<RunResult> NoCacheRuns, WarmRuns;
  RunResult NoCache = timedRun(P, Lat, nullptr);
  NoCacheRuns.push_back(NoCache);
  for (unsigned I = 1; I < kSamples; ++I) {
    NoCacheRuns.push_back(timedRun(P, Lat, nullptr));
    NoCache = minRun(NoCache, NoCacheRuns.back());
  }
  printRun("no cache        ", NoCache);

  // Cold samples each need a fresh cache (a second run against a populated
  // one would be warm); the last populated cache feeds the warm runs.
  SummaryCache Cache;
  RunResult Cold = timedRun(P, Lat, &Cache);
  for (unsigned I = 1; I < kSamples; ++I) {
    Cache.clear();
    Cold = minRun(Cold, timedRun(P, Lat, &Cache));
  }
  printRun("cold cache      ", Cold);

  RunResult Warm = timedRun(P, Lat, &Cache);
  WarmRuns.push_back(Warm);
  for (unsigned I = 1; I < kSamples; ++I) {
    WarmRuns.push_back(timedRun(P, Lat, &Cache));
    Warm = minRun(Warm, WarmRuns.back());
  }
  printRun("warm cache      ", Warm);

  double Speedup = Warm.WallSecs > 0 ? NoCache.WallSecs / Warm.WallSecs : 0;
  std::printf("\nwarm speedup vs no-cache: %.2fx\n", Speedup);
  double WarmGen = minPhase(WarmRuns, "pipeline.generate");
  double GenSpeedup =
      WarmGen > 0 ? minPhase(NoCacheRuns, "pipeline.generate") / WarmGen : 0;
  std::printf("warm generate-phase speedup vs no-cache: %.2fx "
              "(per-phase min over %u samples)\n",
              GenSpeedup, kSamples);
  // The bench never sets --verify or --trace, so the verifier AND the
  // trace recorder must be provably absent from the measured path: not
  // one check and not one trace event may have been recorded. This is
  // the zero-cost-when-off contract as a gated number.
  bool WarmClean =
      Warm.Counters.ConstraintParseCalls == 0 && Warm.CacheMisses == 0 &&
      Warm.CacheHits > 0 && Warm.Counters.GenCacheMisses == 0 &&
      Warm.Counters.GenCacheHits > 0 && Warm.Counters.VerifierChecks == 0 &&
      NoCache.Counters.VerifierChecks == 0 &&
      Cold.Counters.VerifierChecks == 0 && Warm.Counters.TraceEvents == 0 &&
      NoCache.Counters.TraceEvents == 0 && Cold.Counters.TraceEvents == 0;
  std::printf("warm path clean (0 parses, 0 misses, hits > 0, "
              "0 gen misses, gen hits > 0, 0 verifier checks, "
              "0 trace events): %s\n",
              WarmClean ? "yes" : "NO");

  // ---- Store-warm: a fresh process over the mmapped artifact store -----
  // The warm cache's artifacts journal to a store; each sample attaches a
  // brand-new SummaryCache to it, modelling a fresh process whose only
  // state is the mmapped bytes.
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "retypd_bench_warmpath_store";
  fs::remove_all(Dir);
  if (!Cache.openStore(Dir.string()) || !Cache.flushToStore()) {
    std::fprintf(stderr, "cannot populate artifact store %s\n",
                 Dir.string().c_str());
    return 1;
  }
  std::vector<RunResult> StoreRuns;
  RunResult StoreWarm;
  for (unsigned I = 0; I < kSamples; ++I) {
    SummaryCache Fresh;
    if (!Fresh.openStore(Dir.string())) {
      std::fprintf(stderr, "cannot reopen artifact store\n");
      return 1;
    }
    RunResult R = timedRun(P, Lat, &Fresh);
    StoreRuns.push_back(R);
    StoreWarm = I == 0 ? R : minRun(StoreWarm, R);
  }
  printRun("store warm      ", StoreWarm);

  double StoreDecode = minPhase(StoreRuns, "cache.decode");
  if (DecodeBudget <= 0)
    DecodeBudget = 1.0e-6 * static_cast<double>(P.M.instructionCount());
  bool StoreClean = StoreWarm.Counters.ConstraintParseCalls == 0 &&
                    StoreWarm.CacheMisses == 0 &&
                    StoreWarm.Counters.GenCacheMisses == 0 &&
                    StoreWarm.Counters.StoreHits > 0 &&
                    StoreWarm.Counters.StorePayloadCopies == 0 &&
                    StoreWarm.Counters.PoolBindHits > 0 &&
                    StoreWarm.Counters.VerifierChecks == 0 &&
                    StoreWarm.Counters.TraceEvents == 0 &&
                    StoreDecode <= DecodeBudget;
  std::printf("store-warm decode: %.4f s (budget %.4f s)\n", StoreDecode,
              DecodeBudget);
  std::printf("store-warm clean (0 parses, 0 misses, store hits > 0, "
              "0 payload copies, pool-bind hits > 0, 0 trace events, "
              "decode in budget): %s\n",
              StoreClean ? "yes" : "NO");
  fs::remove_all(Dir);

  FILE *J = std::fopen("BENCH_warmpath.json", "w");
  if (J) {
    std::fprintf(J,
                 "{\n"
                 "  \"benchmark\": \"warmpath_phase_breakdown\",\n"
                 "  \"instructions\": %zu,\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"jobs\": 1,\n"
                 "  \"warm_speedup_vs_nocache\": %.3f,\n"
                 "  \"warm_generate_speedup_vs_nocache\": %.3f,\n"
                 "  \"warm_parse_free\": %s,\n"
                 "  \"store_decode_secs\": %.6f,\n"
                 "  \"decode_budget_secs\": %.6f,\n"
                 "  \"store_warm_clean\": %s,\n",
                 P.M.instructionCount(),
                 std::max(1u, std::thread::hardware_concurrency()), Speedup,
                 GenSpeedup, WarmClean ? "true" : "false", StoreDecode,
                 DecodeBudget, StoreClean ? "true" : "false");
    std::fprintf(J, "  \"no_cache\": {\n");
    emitPhases(J, NoCache, "    ");
    std::fprintf(J, "  },\n  \"cold\": {\n");
    emitPhases(J, Cold, "    ");
    std::fprintf(J, "  },\n  \"warm\": {\n");
    emitPhases(J, Warm, "    ");
    std::fprintf(J, "  },\n  \"store_warm\": {\n");
    emitPhases(J, StoreWarm, "    ");
    std::fprintf(J, "  }\n}\n");
    std::fclose(J);
    std::printf("wrote BENCH_warmpath.json\n");
  }
  return WarmClean && StoreClean ? 0 : 1;
}
