//===- const_analysis.cpp - Recovering const annotations (§6.4) ---------------===//
//
// Retypd was the first machine-code type-inference system to recover
// pointer const-ness (paper §6.4, 98% recall). The policy is a direct
// consequence of splitting pointer capabilities: a parameter at location L
// is const iff the solved constraints prove VAR F.inL.load but not
// VAR F.inL.store.
//
// This example generates a synthetic program with known const truth, runs
// the pipeline, and prints the per-parameter comparison.
//
//===----------------------------------------------------------------------===//

#include "eval/Metrics.h"
#include "frontend/Pipeline.h"
#include "synth/Synth.h"

#include <cstdio>

using namespace retypd;

int main() {
  Lattice Lat = makeDefaultLattice();
  SynthGenerator Gen;
  SynthOptions Opts;
  Opts.Seed = 2016; // the year of the paper
  Opts.TargetInstructions = 250;
  SynthProgram P = Gen.generate("const_demo", Opts);

  Pipeline Pipe(Lat);
  TypeReport R = Pipe.run(P.M);

  std::printf("%-20s %-7s %-12s %-12s %s\n", "function", "param",
              "declared", "recovered", "verdict");

  unsigned Truth = 0, Found = 0, Extra = 0;
  for (uint32_t F = 0; F < P.M.Funcs.size(); ++F) {
    auto TIt = P.Truth->Funcs.find(P.M.Funcs[F].Name);
    const FunctionTypes *FT = R.typesOf(F);
    if (TIt == P.Truth->Funcs.end() || !FT || FT->CType == NoCType)
      continue;
    const CType &Fn = R.Pool.get(FT->CType);
    for (size_t K = 0; K < TIt->second.Params.size(); ++K) {
      bool DeclaredConst = TIt->second.Params[K].IsConstPtr;
      bool RecoveredConst = K < Fn.ParamConst.size() && Fn.ParamConst[K];
      // Only pointer parameters are interesting here.
      bool TruthPtr =
          TIt->second.Params[K].Type != NoCType &&
          P.Truth->Pool.get(TIt->second.Params[K].Type).K ==
              CType::Kind::Pointer;
      if (!TruthPtr)
        continue;
      const char *Verdict =
          DeclaredConst == RecoveredConst
              ? "match"
              : (RecoveredConst ? "extra const (§6.4 note)" : "MISSED");
      std::printf("%-20s %-7zu %-12s %-12s %s\n",
                  P.M.Funcs[F].Name.c_str(), K,
                  DeclaredConst ? "const" : "mutable",
                  RecoveredConst ? "const" : "mutable", Verdict);
      Truth += DeclaredConst;
      Found += DeclaredConst && RecoveredConst;
      Extra += !DeclaredConst && RecoveredConst;
    }
  }
  std::printf("\nrecall: %u/%u declared const parameters recovered "
              "(paper: 98%%)\n",
              Found, Truth);
  std::printf("additional const annotations beyond the source: %u\n"
              "(the paper notes source code under-annotates const, so "
              "extras are often correct)\n",
              Extra);
  return 0;
}
