//===- decompiler.cpp - Stripped binary in, C header out ----------------------===//
//
// A miniature decompiler front end built on the public API:
//
//   1. assemble a multi-procedure program,
//   2. encode it to a flat *stripped* binary image (names and function
//      boundaries erased, imports kept — like a real executable),
//   3. disassemble the image back by recursive descent,
//   4. run Retypd over the recovered IR,
//   5. print a C header for everything that was discovered.
//
// This is the scenario the paper targets: no source, no symbols, no debug
// info — types from bytes.
//
//===----------------------------------------------------------------------===//

#include "frontend/Pipeline.h"
#include "loader/BinaryImage.h"
#include "mir/AsmParser.h"

#include <cstdio>

using namespace retypd;

int main() {
  const char *Asm = R"(
extern malloc
extern close
extern strlen

; struct session { int fd; char *name; }
fn session_new:
  push 8
  call malloc
  add esp, 4
  mov esi, eax
  load eax, [esp+4]       ; fd argument
  store [esi+0], eax
  load eax, [esp+8]       ; name argument
  store [esi+4], eax
  mov eax, esi
  ret

fn session_fd:
  load edx, [esp+4]
  load eax, [edx+0]
  ret

fn session_close:
  load edx, [esp+4]
  load eax, [edx+0]
  push eax
  call close
  add esp, 4
  ret

fn name_len:
  load edx, [esp+4]
  load eax, [edx+4]
  push eax
  call strlen
  add esp, 4
  ret

fn main:
  push 0
  push 3
  call session_new
  add esp, 8
  mov esi, eax            ; keep the session
  push esi
  call session_fd
  add esp, 4
  push esi
  call name_len
  add esp, 4
  push esi
  call session_close
  add esp, 4
  halt
)";

  AsmParser Parser;
  auto Source = Parser.parse(Asm);
  if (!Source) {
    std::fprintf(stderr, "parse error: %s\n", Parser.error().c_str());
    return 1;
  }
  Source->EntryFunc = *Source->findFunction("main");

  // --- Strip it. ---
  EncodedImage Img = encodeModule(*Source);
  std::printf("encoded image: %zu bytes\n", Img.Bytes.size());

  // --- Disassemble. ---
  DecodeReport Rep;
  auto Recovered = decodeImage(Img.Bytes, Rep);
  if (!Recovered) {
    std::fprintf(stderr, "decode error: %s\n", Rep.Error.c_str());
    return 1;
  }
  std::printf("disassembly: %u functions discovered, %u imports, "
              "%u bad instructions\n\n",
              Rep.FunctionsDiscovered, Rep.ImportsResolved,
              Rep.BadInstructions);

  // --- Infer types. ---
  Lattice Lat = makeDefaultLattice();
  Pipeline Pipe(Lat);
  TypeReport Report = Pipe.run(*Recovered);

  // --- Print the header. ---
  std::printf("/* recovered from the stripped image — note the names are\n"
              "   gone but the types are back */\n\n");
  std::vector<CTypeId> Roots;
  for (const auto &[F, T] : Report.Funcs)
    if (T.CType != NoCType)
      Roots.push_back(T.CType);
  std::printf("%s\n", Report.Pool.structDefinitions(Roots).c_str());
  for (const auto &[F, T] : Report.Funcs) {
    if (Recovered->Funcs[F].IsExternal)
      continue;
    std::printf("%s;\n", Report.prototypeOf(F, *Recovered).c_str());
  }
  return 0;
}
