//===- incremental_session.cpp - Embedding the resident engine ----------------===//
//
// How a decompiler (or any long-lived tool) embeds the engine: create one
// AnalysisSession per binary, analyze, query structured results, then
// patch a function and re-analyze — only the dirty SCC cone re-runs, and
// the report is byte-identical to a from-scratch analysis.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/example_incremental_session
//
//===----------------------------------------------------------------------===//

#include "frontend/Session.h"
#include "mir/AsmParser.h"

#include <cstdio>

using namespace retypd;

namespace {

const char *kProgram = R"(
extern close
fn get_fd:
  load edx, [esp+4]
  load eax, [edx+4]
  ret
fn shutdown:
  load eax, [esp+4]
  push eax
  call get_fd
  add esp, 4
  push eax
  call close
  add esp, 4
  ret
fn unrelated:
  load eax, [esp+4]
  add eax, 1
  ret
)";

void show(AnalysisSession &S, const char *Name) {
  SessionQuery<std::string> Proto = S.prototypeOf(Name);
  if (Proto)
    std::printf("  %s\n", Proto->c_str());
  else
    // The structured query distinguishes "no such function" from
    // "inference produced no type" — no more parsing "<no type>".
    std::printf("  %s: <%s>\n", Name, typeQueryStatusName(Proto.Status));
}

} // namespace

int main() {
  AnalysisSession S(makeDefaultLattice());
  std::string Err;
  if (!S.loadModuleText(kProgram, &Err)) {
    std::fprintf(stderr, "parse error: %s\n", Err.c_str());
    return 1;
  }

  S.analyze();
  std::printf("=== initial analysis ===\n");
  for (const char *Name : {"get_fd", "shutdown", "unrelated", "close"})
    show(S, Name);

  // Patch get_fd: the fd now lives at offset 8 instead of 4.
  std::printf("\n=== after patching get_fd (field moves to +8) ===\n");
  Module Patched = S.module();
  Patched.Funcs[*S.functionId("get_fd")].Body[1].Mem.Disp = 8;
  S.updateModule(std::move(Patched));
  S.analyze();
  for (const char *Name : {"get_fd", "shutdown", "unrelated"})
    show(S, Name);

  const PipelineStats &St = S.report()->Stats;
  std::printf("\nincremental run: %zu function(s) dirty, %zu SCC(s) "
              "re-simplified, %zu reused\n",
              St.FunctionsDirty, St.SccsSimplified, St.SccsReused);
  return 0;
}
