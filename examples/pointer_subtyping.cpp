//===- pointer_subtyping.cpp - §3.3: sound pointers under subtyping -----------===//
//
// A tour of the paper's most subtle design decision. With a unary Ptr(T)
// constructor, subtyping through pointers collapses to type equality; by
// splitting pointers into a covariant .load and a contravariant .store
// capability (with the S-POINTER consistency rule), both Figure 4 programs
// type-check with the correct value flow — and only the correct flow.
//
// This example works at the constraint level: it shows the constraint sets
// for both programs, asks the saturated graph which flows are derivable,
// and prints the derivation summary.
//
//===----------------------------------------------------------------------===//

#include "core/ConstraintGraph.h"
#include "core/ConstraintParser.h"

#include <cstdio>

using namespace retypd;

namespace {

bool derivable(SymbolTable &Syms, const Lattice &Lat,
               const ConstraintSet &C, const char *Lhs, const char *Rhs) {
  ConstraintParser P(Syms, Lat);
  auto L = P.parseDtv(Lhs);
  auto R = P.parseDtv(Rhs);
  ConstraintSet C2 = C;
  C2.addVar(*L);
  C2.addVar(*R);
  ConstraintGraph G(C2);
  G.saturate();
  GraphNodeId Ln = G.lookup(*L, Variance::Covariant);
  GraphNodeId Rn = G.lookup(*R, Variance::Covariant);
  if (Ln == ConstraintGraph::NoNode || Rn == ConstraintGraph::NoNode)
    return false;
  for (GraphNodeId N : G.oneReachableFrom(Ln))
    if (N == Rn)
      return true;
  return false;
}

} // namespace

int main() {
  Lattice Lat = makeDefaultLattice();
  SymbolTable Syms;
  ConstraintParser Parser(Syms, Lat);

  struct Demo {
    const char *Title;
    const char *Source;
    const char *Constraints;
  };
  Demo Demos[2] = {
      {"Figure 4, f()", "{ p = q; *p = x; y = *q; }",
       "q <= p\nx <= p.store\nq.load <= y\n"},
      {"Figure 4, g()", "{ p = q; *q = x; y = *p; }",
       "q <= p\nx <= q.store\np.load <= y\n"},
  };

  for (const Demo &D : Demos) {
    auto C = Parser.parse(D.Constraints);
    std::printf("=== %s  %s ===\nconstraints:\n%s\n", D.Title, D.Source,
                C->str(Syms, Lat).c_str());

    ConstraintGraph G(*C);
    G.saturate();
    std::printf("saturation added %zu shortcut edges "
                "(S-POINTER at work)\n",
                G.numSaturationEdges());

    bool Fwd = derivable(Syms, Lat, *C, "x", "y");
    bool Bwd = derivable(Syms, Lat, *C, "y", "x");
    std::printf("derivable: x <= y: %s   y <= x: %s\n\n",
                Fwd ? "YES (the program copies x into y)" : "no",
                Bwd ? "YES (would be unsound!)" : "no (correct)");
  }

  std::printf(
      "With a unified Ptr(T) constructor, Ptr(β) <= Ptr(α) must entail\n"
      "α = β (the paper's §3.3 'catastrophe'): both directions would be\n"
      "derivable in both programs. The load/store split keeps subtyping\n"
      "through pointers sound and directional.\n");
  return 0;
}
