//===- quickstart.cpp - The Figure 2 walkthrough ------------------------------===//
//
// The fastest way to see the library do something real: the paper's
// flagship example (Figure 2). We assemble close_last — a loop that walks
// a linked list and closes the file descriptor stored in its final cell —
// run the full inference pipeline, and print every artifact along the way:
// the recovered type scheme, the solved sketch, and the reconstructed C
// type with its recursive struct definition.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "frontend/Pipeline.h"
#include "mir/AsmParser.h"

#include <cstdio>

using namespace retypd;

int main() {
  // The machine code of Figure 2, in this project's assembly syntax. Note
  // there is no type information anywhere: just loads, stores, and a call.
  const char *Asm = R"(
extern close
fn close_last:
  load edx, [esp+4]     ; list = arg0
  jmp check
advance:
  mov edx, eax          ; list = list->next
check:
  load eax, [edx+0]     ; load list->next
  test eax, eax
  jnz advance
  load eax, [edx+4]     ; load list->handle
  push eax
  call close            ; return close(handle)
  add esp, 4
  ret
)";

  AsmParser Parser;
  auto M = Parser.parse(Asm);
  if (!M) {
    std::fprintf(stderr, "parse error: %s\n", Parser.error().c_str());
    return 1;
  }

  std::printf("=== input assembly ===\n%s\n", moduleStr(*M).c_str());

  Lattice Lat = makeDefaultLattice();
  Pipeline Pipe(Lat);
  TypeReport Report = Pipe.run(*M);

  uint32_t Id = *M->findFunction("close_last");
  const FunctionTypes *T = Report.typesOf(Id);

  std::printf("=== inferred type scheme (cf. Figure 2) ===\n%s\n\n",
              T->Scheme.str(*Report.Syms, Lat).c_str());

  std::printf("=== solved sketch (cf. Figure 5) ===\n%s\n",
              T->FuncSketch.str(Lat, 5).c_str());

  std::printf("=== reconstructed C type ===\n%s%s;\n",
              Report.Pool.structDefinitions({T->CType}).c_str(),
              Report.prototypeOf(Id, *M).c_str());

  std::printf("\nThe paper's result for comparison:\n"
              "  typedef struct { Struct_0 *field_0;\n"
              "                   int /*#FileDescriptor*/ field_4; } "
              "Struct_0;\n"
              "  int /*#SuccessZ*/ close_last(const Struct_0 *);\n");
  return 0;
}
