//===- ConcreteInterp.cpp - Concrete machine semantics ----------------------===//

#include "absint/ConcreteInterp.h"

#include <cassert>

using namespace retypd;

namespace {
constexpr uint32_t StackTop = 0x0ff00000u;
constexpr uint32_t DataBase = 0x10000000u;
} // namespace

ConcreteInterp::ConcreteInterp(const Module &Mod) : M(Mod) {
  Regs.assign(NumRegs, 0);
  setReg(Reg::Esp, StackTop);
  uint32_t Next = DataBase;
  for (const GlobalVar &G : M.Globals) {
    GlobalAddrs.push_back(Next);
    Next += std::max<uint32_t>(4, G.Size);
  }
  CurFunc = M.EntryFunc;

  // Default external models.
  setExternal("malloc", [](ConcreteInterp &CI) {
    return CI.allocate(CI.arg(0));
  });
  setExternal("free", [](ConcreteInterp &) { return 0u; });
  setExternal("close", [](ConcreteInterp &) { return 0u; });
}

void ConcreteInterp::setExternal(const std::string &Name, Handler H) {
  Externals[Name] = std::move(H);
}

uint32_t ConcreteInterp::arg(unsigned K) const {
  return load(reg(Reg::Esp) + 4 * K, 4);
}

uint32_t ConcreteInterp::allocate(uint32_t Size) {
  uint32_t Addr = HeapNext;
  HeapNext += (Size + 15u) & ~15u;
  return Addr;
}

uint32_t ConcreteInterp::load(uint32_t Addr, unsigned Size) const {
  uint32_t V = 0;
  for (unsigned I = 0; I < Size && I < 4; ++I) {
    auto It = Mem.find(Addr + I);
    uint8_t Byte = It == Mem.end() ? 0 : It->second;
    V |= uint32_t(Byte) << (8 * I);
  }
  return V;
}

void ConcreteInterp::store(uint32_t Addr, uint32_t Value, unsigned Size) {
  for (unsigned I = 0; I < Size && I < 4; ++I)
    Mem[Addr + I] = static_cast<uint8_t>(Value >> (8 * I));
}

bool ConcreteInterp::flagTaken(Cond C) const {
  switch (C) {
  case Cond::Z:
    return FlagsLhs == FlagsRhs;
  case Cond::Nz:
    return FlagsLhs != FlagsRhs;
  case Cond::Lt:
    return FlagsLhs < FlagsRhs;
  case Cond::Ge:
    return FlagsLhs >= FlagsRhs;
  case Cond::Le:
    return FlagsLhs <= FlagsRhs;
  case Cond::Gt:
    return FlagsLhs > FlagsRhs;
  }
  return false;
}

bool ConcreteInterp::step() {
  const Function &F = M.Funcs[CurFunc];
  if (CurInstr >= F.Body.size()) {
    Err = "fell off the end of " + F.Name;
    return false;
  }
  const Instr &I = F.Body[CurInstr];
  uint32_t Next = CurInstr + 1;

  auto MemAddr = [&](const MemRef &Mm) -> uint32_t {
    uint32_t Base = Mm.isGlobal() ? GlobalAddrs[Mm.GlobalSym]
                                  : reg(Mm.Base);
    return Base + static_cast<uint32_t>(Mm.Disp);
  };

  switch (I.Op) {
  case Opcode::Mov:
    setReg(I.Dst, reg(I.Src));
    break;
  case Opcode::MovImm:
    setReg(I.Dst, static_cast<uint32_t>(I.Imm));
    break;
  case Opcode::MovGlobal:
    setReg(I.Dst, GlobalAddrs[I.Target]);
    break;
  case Opcode::Load:
    setReg(I.Dst, load(MemAddr(I.Mem), I.Mem.Size));
    break;
  case Opcode::Store:
    store(MemAddr(I.Mem), reg(I.Src), I.Mem.Size);
    break;
  case Opcode::StoreImm:
    store(MemAddr(I.Mem), static_cast<uint32_t>(I.Imm), I.Mem.Size);
    break;
  case Opcode::Lea:
    setReg(I.Dst, MemAddr(I.Mem));
    break;
  case Opcode::Add:
    setReg(I.Dst, reg(I.Dst) + reg(I.Src));
    break;
  case Opcode::AddImm:
    setReg(I.Dst, reg(I.Dst) + static_cast<uint32_t>(I.Imm));
    break;
  case Opcode::Sub:
    setReg(I.Dst, reg(I.Dst) - reg(I.Src));
    break;
  case Opcode::SubImm:
    setReg(I.Dst, reg(I.Dst) - static_cast<uint32_t>(I.Imm));
    break;
  case Opcode::And:
    setReg(I.Dst, reg(I.Dst) & reg(I.Src));
    break;
  case Opcode::AndImm:
    setReg(I.Dst, reg(I.Dst) & static_cast<uint32_t>(I.Imm));
    break;
  case Opcode::Or:
    setReg(I.Dst, reg(I.Dst) | reg(I.Src));
    break;
  case Opcode::OrImm:
    setReg(I.Dst, reg(I.Dst) | static_cast<uint32_t>(I.Imm));
    break;
  case Opcode::Xor:
    setReg(I.Dst, reg(I.Dst) ^ reg(I.Src));
    break;
  case Opcode::Cmp:
    FlagsLhs = static_cast<int32_t>(reg(I.Dst));
    FlagsRhs = static_cast<int32_t>(reg(I.Src));
    break;
  case Opcode::CmpImm:
    FlagsLhs = static_cast<int32_t>(reg(I.Dst));
    FlagsRhs = I.Imm;
    break;
  case Opcode::Test:
    FlagsLhs = static_cast<int32_t>(reg(I.Dst) & reg(I.Src));
    FlagsRhs = 0;
    break;
  case Opcode::Push:
    setReg(Reg::Esp, reg(Reg::Esp) - 4);
    store(reg(Reg::Esp), reg(I.Src), 4);
    break;
  case Opcode::PushImm:
    setReg(Reg::Esp, reg(Reg::Esp) - 4);
    store(reg(Reg::Esp), static_cast<uint32_t>(I.Imm), 4);
    break;
  case Opcode::Pop:
    setReg(I.Dst, load(reg(Reg::Esp), 4));
    setReg(Reg::Esp, reg(Reg::Esp) + 4);
    break;
  case Opcode::Jmp:
    Next = I.Target;
    break;
  case Opcode::Jcc:
    if (flagTaken(I.CC))
      Next = I.Target;
    break;
  case Opcode::Call: {
    if (I.Target >= M.Funcs.size()) {
      Err = "call to bad function id";
      return false;
    }
    const Function &Callee = M.Funcs[I.Target];
    if (Callee.IsExternal) {
      auto It = Externals.find(Callee.Name);
      if (It == Externals.end()) {
        Err = "no model for external " + Callee.Name;
        return false;
      }
      setReg(Reg::Eax, It->second(*this));
      break;
    }
    // Push a return-address marker so the callee's frame matches the ABI:
    // [esp] = return address, arguments from [esp+4].
    setReg(Reg::Esp, reg(Reg::Esp) - 4);
    store(reg(Reg::Esp), 0xdeadbeefu, 4);
    CallStack.push_back({CurFunc, Next});
    CurFunc = I.Target;
    CurInstr = 0;
    return true;
  }
  case Opcode::CallInd:
    Err = "indirect call not supported by the concrete model";
    return false;
  case Opcode::Ret:
    if (CallStack.empty()) {
      Halted = true;
      return true;
    }
    setReg(Reg::Esp, reg(Reg::Esp) + 4); // pop the return address
    CurFunc = CallStack.back().first;
    CurInstr = CallStack.back().second;
    CallStack.pop_back();
    return true;
  case Opcode::Halt:
    Halted = true;
    return true;
  case Opcode::Nop:
    break;
  }
  CurInstr = Next;
  return true;
}

bool ConcreteInterp::run(uint64_t MaxSteps) {
  CurFunc = M.EntryFunc;
  CurInstr = 0;
  Halted = false;
  while (!Halted) {
    if (++Steps > MaxSteps) {
      Err = "step budget exhausted";
      return false;
    }
    if (!step())
      return false;
  }
  return true;
}
