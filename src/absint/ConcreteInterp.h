//===- ConcreteInterp.h - Concrete machine semantics ----------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete evaluator for the machine IR. In TSL terms this is the
/// concrete interpretation from which the abstract ones are derived (§4.1);
/// here it serves to *execute* synthetic binaries so tests can check that
/// idiom programs actually compute what their ground truth claims, and so
/// examples can demo end-to-end runs.
///
/// Externals are simulated by built-in models (malloc is a bump allocator,
/// close/free record their argument, memcpy copies) registered by name.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_ABSINT_CONCRETEINTERP_H
#define RETYPD_ABSINT_CONCRETEINTERP_H

#include "mir/MIR.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace retypd {

/// The concrete machine.
class ConcreteInterp {
public:
  explicit ConcreteInterp(const Module &M);

  /// Registers a model for an external function. The handler receives the
  /// machine (to read stack arguments) and returns the eax result.
  using Handler = std::function<uint32_t(ConcreteInterp &)>;
  void setExternal(const std::string &Name, Handler H);

  /// Runs from the module entry. Returns false on fault (bad memory, bad
  /// target, step budget exhausted — see error()).
  bool run(uint64_t MaxSteps = 1u << 20);

  /// Reads the k-th stack argument of the current call (for handlers).
  uint32_t arg(unsigned K) const;

  uint32_t reg(Reg R) const { return Regs[static_cast<unsigned>(R)]; }
  void setReg(Reg R, uint32_t V) { Regs[static_cast<unsigned>(R)] = V; }

  uint32_t load(uint32_t Addr, unsigned Size) const;
  void store(uint32_t Addr, uint32_t Value, unsigned Size);

  /// Address of a named global.
  uint32_t globalAddr(uint32_t GlobalId) const {
    return GlobalAddrs[GlobalId];
  }

  /// Bump-allocates \p Size bytes of heap (used by the malloc model).
  uint32_t allocate(uint32_t Size);

  uint64_t stepsExecuted() const { return Steps; }
  const std::string &error() const { return Err; }

private:
  bool step();
  bool flagTaken(Cond C) const;

  const Module &M;
  std::vector<uint32_t> Regs;
  std::unordered_map<uint32_t, uint8_t> Mem;
  std::vector<uint32_t> GlobalAddrs;
  std::unordered_map<std::string, Handler> Externals;

  // Execution position: function id + instruction index; call stack of
  // return positions.
  uint32_t CurFunc = 0;
  uint32_t CurInstr = 0;
  std::vector<std::pair<uint32_t, uint32_t>> CallStack;

  int32_t FlagsLhs = 0, FlagsRhs = 0; // last cmp/test operands
  uint32_t HeapNext = 0x20000000u;
  uint64_t Steps = 0;
  bool Halted = false;
  std::string Err;
};

} // namespace retypd

#endif // RETYPD_ABSINT_CONCRETEINTERP_H
