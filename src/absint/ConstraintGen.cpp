//===- ConstraintGen.cpp - Type-constraint generation (App. A) --------------===//

#include "absint/ConstraintGen.h"

#include "analysis/ReachingDefs.h"
#include "analysis/RegEffects.h"
#include "analysis/StackAnalysis.h"
#include "mir/Cfg.h"

#include <cassert>
#include <charconv>

using namespace retypd;

namespace {

/// Appends the decimal render of \p V without a std::to_string temporary.
void appendInt(std::string &S, int64_t V) {
  char Buf[24];
  auto Res = std::to_chars(Buf, Buf + sizeof(Buf), V);
  S.append(Buf, Res.ptr);
}

} // namespace

ConstraintGenerator::ConstraintGenerator(SymbolTable &Syms, const Lattice &Lat,
                                         const Module &M)
    : Syms(Syms), Lat(Lat), M(M), Num32(Lat.lookup("num32")) {
  // Module-level variables are interned exactly once, here: procedure
  // variables by name, globals as "g!name". Every later reference — per
  // instruction, per callsite, per worker thread — is a plain vector read.
  ProcVars.reserve(M.Funcs.size());
  for (const Function &F : M.Funcs)
    ProcVars.push_back(TypeVariable::var(Syms.intern(F.Name)));
  GlobalVars.reserve(M.Globals.size());
  std::string Name;
  for (const GlobalVar &G : M.Globals) {
    Name.assign("g!");
    Name += G.Name;
    GlobalVars.push_back(TypeVariable::var(Syms.intern(Name)));
  }
}

ConstraintSet ConstraintGenerator::instantiate(const TypeScheme &Scheme,
                                               TypeVariable CallsiteVar) {
  std::unordered_map<TypeVariable, TypeVariable> Map;
  Map[Scheme.ProcVar] = CallsiteVar;
  // Instance existentials are scoped by the (unique) callsite variable and
  // numbered by an instantiation-local counter, so the constraints produced
  // for one callsite are a pure function of (scheme, callsite variable) —
  // never of how many instantiations other procedures performed first. The
  // incremental engine relies on this to regenerate a single procedure and
  // get bit-identical constraints.
  std::string ExName = Syms.name(CallsiteVar.symbol()) + "$ex";
  const size_t PrefixLen = ExName.size();
  unsigned ExCounter = 0;
  for (TypeVariable Ex : Scheme.Existentials) {
    ExName.resize(PrefixLen);
    appendInt(ExName, ExCounter++);
    Map[Ex] = TypeVariable::var(Syms.intern(ExName));
  }

  auto Rename = [&](const DerivedTypeVariable &D) {
    auto It = Map.find(D.base());
    if (It == Map.end())
      return D;
    return DerivedTypeVariable(
        It->second, std::vector<Label>(D.labels().begin(),
                                       D.labels().end()));
  };

  ConstraintSet Out;
  for (const SubtypeConstraint &SC : Scheme.Constraints.subtypes())
    Out.addSubtype(Rename(SC.Lhs), Rename(SC.Rhs));
  for (const DerivedTypeVariable &V : Scheme.Constraints.vars())
    Out.addVar(Rename(V));
  for (const AddSubConstraint &AC : Scheme.Constraints.addSubs())
    Out.addAddSub(AddSubConstraint{AC.IsSub, Rename(AC.X), Rename(AC.Y),
                                   Rename(AC.Z)});
  return Out;
}

namespace {

/// The abstract value tracked for a register during the walk: a type
/// variable plus a constant byte offset (translation tracking, A.2).
struct AbsVal {
  TypeVariable Var;
  int32_t Off = 0;
  /// Born from `mov r, imm` or `xor r, r`: a semi-syntactic constant whose
  /// flows carry no type information (§2.1).
  bool IsConst = false;
};

} // namespace

GenResult ConstraintGenerator::generate(
    uint32_t FuncId, const std::unordered_map<uint32_t, TypeScheme> &Schemes,
    const std::set<uint32_t> &SccMates) {
  const Function &F = M.Funcs[FuncId];
  GenResult R;
  R.ProcVar = procVar(FuncId);
  R.NumParams = F.NumStackParams + F.RegParams.size();

  if (F.IsExternal || F.Body.empty())
    return R;

  Cfg G(F);
  StackAnalysis SA(F, G);
  ReachingDefs RD(F, G, SA);

  const std::string Fn = F.Name + "!";
  // Reused render buffer: the only strings built below are first-use
  // renders, and none of them leaves a temporary behind.
  std::string Scratch;
  Scratch.reserve(Fn.size() + 32);

  auto AppendLocName = [&](std::string &S, const Location &L) {
    switch (L.K) {
    case Location::Kind::Register:
      S += regName(static_cast<Reg>(L.Key));
      break;
    case Location::Kind::StackSlot:
      S += "stk";
      appendInt(S, L.Key);
      break;
    case Location::Kind::Global:
      S += "g!";
      S += M.Globals[L.Key].Name;
      break;
    }
  };

  // Interned def-site table: one TypeVariable per (location kind, reg/slot
  // key, reaching-def site), rendered and interned on first reference
  // only. Keys pack (u32 location key, u32 site) into a u64; the kind
  // selects the map.
  std::unordered_map<uint64_t, TypeVariable> DefVars[3];

  /// Type variable for a definition of \p L at site \p Def.
  auto DefVar = [&](const Location &L, uint32_t Def) -> TypeVariable {
    // Globals are module-level variables: their entry definition *is* the
    // shared global variable (flow into/out of it links procedures).
    if (L.K == Location::Kind::Global && Def == EntryDef)
      return GlobalVars[L.Key];
    auto &Table = DefVars[static_cast<unsigned>(L.K)];
    uint64_t Key =
        (static_cast<uint64_t>(static_cast<uint32_t>(L.Key)) << 32) | Def;
    auto It = Table.find(Key);
    if (It != Table.end())
      return It->second;
    Scratch.assign(Fn);
    AppendLocName(Scratch, L);
    Scratch += '@';
    if (Def == EntryDef)
      Scratch += "in";
    else
      appendInt(Scratch, Def);
    TypeVariable V = TypeVariable::var(Syms.intern(Scratch));
    Table.emplace(Key, V);
    return V;
  };

  // Procedure-local numbering: a procedure's constraints depend only on its
  // own body and its callees' schemes, never on generation order across the
  // module (the incremental engine regenerates procedures in isolation).
  unsigned LocalFresh = 0;
  auto Fresh = [&](const char *Tag) {
    Scratch.assign(Fn);
    Scratch += Tag;
    Scratch += '$';
    appendInt(Scratch, LocalFresh++);
    return TypeVariable::var(Syms.intern(Scratch));
  };

  auto Dtv = [](TypeVariable V) { return DerivedTypeVariable(V); };

  // Reads of a location: single def -> its variable; several defs -> a
  // fresh variable above all of them (Example A.2).
  DefState S;
  auto ReadLoc = [&](const Location &L) -> TypeVariable {
    auto It = S.find(L);
    if (It == S.end() || It->second.empty()) {
      // Never defined: for globals this is the shared variable; otherwise
      // a synthetic entry definition.
      return DefVar(L, EntryDef);
    }
    if (It->second.size() == 1)
      return DefVar(L, It->second[0]);
    TypeVariable T = Fresh("merge");
    for (uint32_t D : It->second)
      R.C.addSubtype(Dtv(DefVar(L, D)), Dtv(T));
    return T;
  };

  // ---- Interface bindings (locators, A.4) ----
  // Parameter k: stack params first (slot 4+4k), then register params.
  for (unsigned K = 0; K < F.NumStackParams; ++K)
    R.C.addSubtype(
        DerivedTypeVariable(R.ProcVar, {Label::in(K)}),
        Dtv(DefVar(Location::slot(4 + 4 * static_cast<int32_t>(K)),
                   EntryDef)));
  for (size_t J = 0; J < F.RegParams.size(); ++J)
    R.C.addSubtype(
        DerivedTypeVariable(R.ProcVar,
                            {Label::in(F.NumStackParams +
                                       static_cast<unsigned>(J))}),
        Dtv(DefVar(Location::reg(F.RegParams[J]), EntryDef)));

  // ---- Walk blocks in reverse post order ----
  AbsVal RegVal[NumRegs];
  bool RegKnown[NumRegs];

  for (uint32_t B : G.rpo()) {
    const BasicBlock &BB = G.blocks()[B];
    S = RD.blockIn(B);
    for (unsigned I = 0; I < NumRegs; ++I)
      RegKnown[I] = false;

    auto ReadReg = [&](Reg Rr) -> AbsVal {
      unsigned Idx = static_cast<unsigned>(Rr);
      if (!RegKnown[Idx]) {
        RegVal[Idx] = AbsVal{ReadLoc(Location::reg(Rr)), 0};
        RegKnown[Idx] = true;
      }
      return RegVal[Idx];
    };
    auto WriteReg = [&](Reg Rr, AbsVal V) {
      unsigned Idx = static_cast<unsigned>(Rr);
      RegVal[Idx] = V;
      RegKnown[Idx] = true;
    };

    for (uint32_t Idx = BB.Begin; Idx < BB.End; ++Idx) {
      const Instr &Ins = F.Body[Idx];

      // The canonical variable for a register defined here (cross-block
      // consumers read it via reaching definitions).
      auto DefRegVar = [&](Reg Rr) {
        return DefVar(Location::reg(Rr), Idx);
      };

      // Resolve a memory operand: stack slot, global, or pointer deref.
      enum class MemKind { Slot, Global, Pointer };
      Location MemLoc = Location::slot(0);
      AbsVal PtrBase;
      auto ClassifyMem = [&](const MemRef &Mem) -> MemKind {
        if (Mem.isGlobal()) {
          MemLoc = Location::global(Mem.GlobalSym);
          return MemKind::Global;
        }
        if (auto Slot = SA.slotFor(Idx, Mem)) {
          MemLoc = Location::slot(*Slot);
          return MemKind::Slot;
        }
        PtrBase = ReadReg(Mem.Base);
        return MemKind::Pointer;
      };

      switch (Ins.Op) {
      case Opcode::Mov: {
        if (Ins.Dst == Reg::Esp || Ins.Dst == Reg::Ebp)
          break; // frame plumbing
        if (Ins.Src == Reg::Esp || Ins.Src == Reg::Ebp) {
          // Taking the stack pointer into a GP register: a fresh value.
          WriteReg(Ins.Dst, AbsVal{DefRegVar(Ins.Dst), 0});
          break;
        }
        AbsVal V = ReadReg(Ins.Src);
        // Cross-block consumers see the def-site variable; constants stay
        // silent (§2.1).
        if (!V.IsConst)
          R.C.addSubtype(Dtv(V.Var), Dtv(DefRegVar(Ins.Dst)));
        WriteReg(Ins.Dst, V); // local flow keeps the offset
        break;
      }
      case Opcode::MovImm:
        // Semi-syntactic constants carry no type information (§2.1).
        WriteReg(Ins.Dst, AbsVal{DefRegVar(Ins.Dst), 0, /*IsConst=*/true});
        break;
      case Opcode::MovGlobal: {
        // Address-of a data symbol: the result is a readable/writable
        // pointer to the global's storage.
        TypeVariable P = DefRegVar(Ins.Dst);
        TypeVariable Gv = globalVar(Ins.Target);
        uint16_t Bits = static_cast<uint16_t>(
            std::min<uint32_t>(4, M.Globals[Ins.Target].Size) * 8);
        R.C.addSubtype(Dtv(Gv),
                       DerivedTypeVariable(
                           P, {Label::load(), Label::field(Bits, 0)}));
        R.C.addSubtype(DerivedTypeVariable(
                           P, {Label::store(), Label::field(Bits, 0)}),
                       Dtv(Gv));
        R.Interesting.insert(Gv);
        WriteReg(Ins.Dst, AbsVal{P, 0});
        break;
      }
      case Opcode::Load: {
        TypeVariable D = DefRegVar(Ins.Dst);
        switch (ClassifyMem(Ins.Mem)) {
        case MemKind::Slot:
        case MemKind::Global: {
          TypeVariable V = ReadLoc(MemLoc);
          R.C.addSubtype(Dtv(V), Dtv(D));
          if (MemLoc.K == Location::Kind::Global)
            R.Interesting.insert(DefVar(MemLoc, EntryDef));
          break;
        }
        case MemKind::Pointer: {
          DerivedTypeVariable Access(
              PtrBase.Var,
              {Label::load(), Label::field(Ins.Mem.Size * 8,
                                           PtrBase.Off + Ins.Mem.Disp)});
          R.C.addSubtype(Access, Dtv(D));
          break;
        }
        }
        WriteReg(Ins.Dst, AbsVal{D, 0});
        break;
      }
      case Opcode::Store:
      case Opcode::StoreImm: {
        // Stored immediates carry no type information.
        if (Ins.Op == Opcode::StoreImm) {
          if (ClassifyMem(Ins.Mem) == MemKind::Pointer) {
            // Even an immediate store establishes the store capability.
            R.C.addVar(DerivedTypeVariable(
                PtrBase.Var,
                {Label::store(), Label::field(Ins.Mem.Size * 8,
                                              PtrBase.Off + Ins.Mem.Disp)}));
          }
          break;
        }
        AbsVal V = ReadReg(Ins.Src);
        switch (ClassifyMem(Ins.Mem)) {
        case MemKind::Slot:
          if (!V.IsConst)
            R.C.addSubtype(Dtv(V.Var), Dtv(DefVar(MemLoc, Idx)));
          break;
        case MemKind::Global:
          if (!V.IsConst) {
            R.C.addSubtype(Dtv(V.Var), Dtv(DefVar(MemLoc, Idx)));
            // Also flow into the module-level variable so other procedures
            // observe it.
            R.C.addSubtype(Dtv(V.Var), Dtv(DefVar(MemLoc, EntryDef)));
          }
          R.Interesting.insert(DefVar(MemLoc, EntryDef));
          break;
        case MemKind::Pointer: {
          DerivedTypeVariable Access(
              PtrBase.Var,
              {Label::store(), Label::field(Ins.Mem.Size * 8,
                                            PtrBase.Off + Ins.Mem.Disp)});
          if (V.IsConst)
            R.C.addVar(Access); // capability only, no flow
          else
            R.C.addSubtype(Dtv(V.Var), Access);
          break;
        }
        }
        break;
      }
      case Opcode::Lea: {
        if (Ins.Dst == Reg::Esp || Ins.Dst == Reg::Ebp)
          break;
        if (Ins.Mem.isGlobal()) {
          // Like MovGlobal but with a displacement.
          TypeVariable P = DefRegVar(Ins.Dst);
          TypeVariable Gv = globalVar(Ins.Mem.GlobalSym);
          R.C.addSubtype(Dtv(Gv),
                         DerivedTypeVariable(P, {Label::load(),
                                                 Label::field(32,
                                                              Ins.Mem.Disp)}));
          R.Interesting.insert(Gv);
          WriteReg(Ins.Dst, AbsVal{P, 0});
          break;
        }
        if (Ins.Mem.Base == Reg::Esp || Ins.Mem.Base == Reg::Ebp) {
          // Address of a stack object: a fresh pointer whose pointee is
          // the slot (enables pointer-to-local idioms).
          if (auto Slot = SA.slotFor(Idx, Ins.Mem)) {
            TypeVariable P = DefRegVar(Ins.Dst);
            TypeVariable SlotVar = ReadLoc(Location::slot(*Slot));
            R.C.addSubtype(Dtv(SlotVar),
                           DerivedTypeVariable(P, {Label::load(),
                                                   Label::field(32, 0)}));
            R.C.addSubtype(DerivedTypeVariable(P, {Label::store(),
                                                   Label::field(32, 0)}),
                           Dtv(DefVar(Location::slot(*Slot), Idx)));
            WriteReg(Ins.Dst, AbsVal{P, 0});
          } else {
            WriteReg(Ins.Dst, AbsVal{DefRegVar(Ins.Dst), 0});
          }
          break;
        }
        // lea r, [r2+d]: translation of a pointer (A.2).
        AbsVal Base = ReadReg(Ins.Mem.Base);
        TypeVariable D = DefRegVar(Ins.Dst);
        WriteReg(Ins.Dst, AbsVal{Base.Var, Base.Off + Ins.Mem.Disp});
        (void)D; // cross-block consumers of a translated pointer see an
                 // unconstrained variable; see DESIGN.md §5.
        break;
      }
      case Opcode::AddImm:
      case Opcode::SubImm: {
        if (Ins.Dst == Reg::Esp || Ins.Dst == Reg::Ebp)
          break;
        // Constant translation: keep the base, slide the offset (A.2). The
        // def-site variable still participates in an additive constraint so
        // pointer/integer classification survives across blocks.
        AbsVal V = ReadReg(Ins.Dst);
        int32_t Delta = Ins.Op == Opcode::AddImm ? Ins.Imm : -Ins.Imm;
        TypeVariable ImmVar = Fresh("imm");
        R.C.addSubtype(Dtv(ImmVar), Dtv(TypeVariable::constant(*Num32)));
        R.C.addAddSub(AddSubConstraint{Ins.Op == Opcode::SubImm, Dtv(V.Var),
                                       Dtv(ImmVar),
                                       Dtv(DefRegVar(Ins.Dst))});
        WriteReg(Ins.Dst, AbsVal{V.Var, V.Off + Delta});
        break;
      }
      case Opcode::Add:
      case Opcode::Sub: {
        if (Ins.Dst == Reg::Esp || Ins.Dst == Reg::Ebp)
          break;
        AbsVal A = ReadReg(Ins.Dst);
        AbsVal Bv = ReadReg(Ins.Src);
        TypeVariable D = DefRegVar(Ins.Dst);
        R.C.addAddSub(AddSubConstraint{Ins.Op == Opcode::Sub, Dtv(A.Var),
                                       Dtv(Bv.Var), Dtv(D)});
        WriteReg(Ins.Dst, AbsVal{D, 0});
        break;
      }
      case Opcode::And:
      case Opcode::Or: {
        AbsVal A = ReadReg(Ins.Dst);
        AbsVal Bv = ReadReg(Ins.Src);
        (void)A;
        (void)Bv;
        TypeVariable D = DefRegVar(Ins.Dst);
        // Bit manipulation: integral result (A.5.2).
        R.C.addSubtype(Dtv(D), Dtv(TypeVariable::constant(*Num32)));
        WriteReg(Ins.Dst, AbsVal{D, 0});
        break;
      }
      case Opcode::AndImm:
      case Opcode::OrImm: {
        // Pointer-tag idioms (`and r, -4`, `or r, 1`) act as the identity
        // (A.5.2); other masks are integral.
        AbsVal V = ReadReg(Ins.Dst);
        bool TagIdiom = (Ins.Op == Opcode::AndImm &&
                         (Ins.Imm == -4 || Ins.Imm == -2 || Ins.Imm == -8)) ||
                        (Ins.Op == Opcode::OrImm &&
                         (Ins.Imm == 1 || Ins.Imm == 2 || Ins.Imm == 3));
        if (TagIdiom) {
          R.C.addSubtype(Dtv(V.Var), Dtv(DefRegVar(Ins.Dst)));
          WriteReg(Ins.Dst, AbsVal{V.Var, V.Off});
        } else {
          TypeVariable D = DefRegVar(Ins.Dst);
          R.C.addSubtype(Dtv(D), Dtv(TypeVariable::constant(*Num32)));
          WriteReg(Ins.Dst, AbsVal{D, 0});
        }
        break;
      }
      case Opcode::Xor: {
        if (Ins.Dst == Ins.Src) {
          // Zeroing idiom: a fresh, unconstrained value (§2.1).
          WriteReg(Ins.Dst, AbsVal{DefRegVar(Ins.Dst), 0, /*IsConst=*/true});
          break;
        }
        TypeVariable D = DefRegVar(Ins.Dst);
        R.C.addSubtype(Dtv(D), Dtv(TypeVariable::constant(*Num32)));
        WriteReg(Ins.Dst, AbsVal{D, 0});
        break;
      }
      case Opcode::Cmp:
      case Opcode::CmpImm:
      case Opcode::Test:
        // Flag-only: discard (A.5.2).
        break;
      case Opcode::Push: {
        if (Ins.Src == Reg::Esp || Ins.Src == Reg::Ebp)
          break;
        AbsVal V = ReadReg(Ins.Src);
        if (!V.IsConst)
          if (auto E = SA.espAt(Idx))
            R.C.addSubtype(Dtv(V.Var),
                           Dtv(DefVar(Location::slot(*E - 4), Idx)));
        break;
      }
      case Opcode::PushImm:
        break; // constant: no flow
      case Opcode::Pop: {
        if (Ins.Dst == Reg::Esp || Ins.Dst == Reg::Ebp)
          break;
        TypeVariable D = DefRegVar(Ins.Dst);
        if (auto E = SA.espAt(Idx)) {
          TypeVariable V = ReadLoc(Location::slot(*E));
          R.C.addSubtype(Dtv(V), Dtv(D));
        }
        WriteReg(Ins.Dst, AbsVal{D, 0});
        break;
      }
      case Opcode::Call: {
        uint32_t Callee = Ins.Target;
        if (Callee >= M.Funcs.size())
          break;
        const Function &CF = M.Funcs[Callee];

        // Choose the callee variable: same-SCC -> monomorphic; otherwise a
        // callsite-tagged instance (A.4).
        TypeVariable CalleeVar;
        if (SccMates.count(Callee)) {
          CalleeVar = procVar(Callee);
          R.Interesting.insert(CalleeVar);
        } else {
          Scratch.assign(Fn);
          Scratch += CF.Name;
          Scratch += '@';
          appendInt(Scratch, Idx);
          CalleeVar = TypeVariable::var(Syms.intern(Scratch));
          R.Callsites.push_back(CalleeVar);
          auto SchemeIt = Schemes.find(Callee);
          if (SchemeIt != Schemes.end())
            R.C.merge(instantiate(SchemeIt->second, CalleeVar));
        }

        // Actual-ins: stack arguments sit at [esp+0], [esp+4], ... at the
        // callsite.
        if (auto E = SA.espAt(Idx)) {
          for (unsigned K = 0; K < CF.NumStackParams; ++K) {
            TypeVariable Actual =
                ReadLoc(Location::slot(*E + 4 * static_cast<int32_t>(K)));
            R.C.addSubtype(Dtv(Actual),
                           DerivedTypeVariable(CalleeVar, {Label::in(K)}));
          }
        }
        // Register actual-ins (constants stay silent, §2.1).
        for (size_t J = 0; J < CF.RegParams.size(); ++J) {
          AbsVal V = ReadReg(CF.RegParams[J]);
          if (V.IsConst)
            continue;
          R.C.addSubtype(
              Dtv(V.Var),
              DerivedTypeVariable(
                  CalleeVar,
                  {Label::in(CF.NumStackParams +
                             static_cast<unsigned>(J))}));
        }
        // Return value.
        TypeVariable D = DefVar(Location::reg(Reg::Eax), Idx);
        if (CF.ReturnsValue)
          R.C.addSubtype(DerivedTypeVariable(CalleeVar, {Label::out()}),
                         Dtv(D));
        WriteReg(Reg::Eax, AbsVal{D, 0});
        break;
      }
      case Opcode::CallInd: {
        // Unknown target: the result is unconstrained.
        WriteReg(Reg::Eax,
                 AbsVal{DefVar(Location::reg(Reg::Eax), Idx), 0});
        break;
      }
      case Opcode::Ret: {
        if (F.ReturnsValue) {
          AbsVal V = ReadReg(Reg::Eax);
          R.C.addSubtype(Dtv(V.Var),
                         DerivedTypeVariable(R.ProcVar, {Label::out()}));
        }
        break;
      }
      case Opcode::Jmp:
      case Opcode::Jcc:
      case Opcode::Halt:
      case Opcode::Nop:
        break;
      }

      // Every case that defines a register refreshed the cache via
      // WriteReg; advance the reaching-definition state.
      RD.step(S, Idx);
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Generation-cache keys
//===----------------------------------------------------------------------===//

Hash128 ConstraintGenerator::genKey(
    uint32_t FuncId, const std::set<uint32_t> &SccMates,
    const Hash128 &EnvSig,
    const std::function<const Hash128 *(uint32_t)> &SchemeHashOf) const {
  const Function &F = M.Funcs[FuncId];
  Fnv128 H;
  H.update("retypd-gen-v1");
  H.sep();
  H.updateU64(EnvSig.Hi);
  H.updateU64(EnvSig.Lo);
  // SCC membership is part of the dependency set: mates are referenced
  // monomorphically and never through a scheme. Ordered member names (set
  // iteration follows module order) keep the key stable across id shifts.
  H.updateU64(SccMates.size());
  for (uint32_t Mate : SccMates) {
    H.update(M.Funcs[Mate].Name);
    H.sep();
  }
  H.update(F.Name);
  H.sep();
  H.updateByte(F.IsExternal ? 1 : 0);
  H.updateU64(F.NumStackParams);
  H.updateU64(F.RegParams.size());
  for (Reg Rr : F.RegParams)
    H.updateByte(static_cast<uint8_t>(Rr));
  H.updateByte(F.ReturnsValue ? 1 : 0);
  H.updateU64(F.Body.size());
  for (const Instr &I : F.Body) {
    // Two packed words per instruction (field layout is unambiguous, so
    // packing cannot create collisions between distinct instructions); the
    // key computation runs on every warm probe, so stream bytes matter.
    H.updateU64(static_cast<uint64_t>(static_cast<uint8_t>(I.Op)) |
                (static_cast<uint64_t>(static_cast<uint8_t>(I.Dst)) << 8) |
                (static_cast<uint64_t>(static_cast<uint8_t>(I.Src)) << 16) |
                (static_cast<uint64_t>(static_cast<uint8_t>(I.CC)) << 24) |
                (static_cast<uint64_t>(static_cast<uint32_t>(I.Imm)) << 32));
    H.updateU64(
        static_cast<uint64_t>(static_cast<uint8_t>(I.Mem.Base)) |
        (static_cast<uint64_t>(I.Mem.Size) << 8) |
        (static_cast<uint64_t>(static_cast<uint32_t>(I.Mem.Disp)) << 16));
    // References resolve to *names* (and sizes for globals) so the hash is
    // stable under id shifts from insertions elsewhere in the module.
    if (I.Mem.isGlobal() && I.Mem.GlobalSym < M.Globals.size()) {
      H.updateByte(1);
      H.update(M.Globals[I.Mem.GlobalSym].Name);
      H.sep();
      H.updateU64(M.Globals[I.Mem.GlobalSym].Size);
    } else {
      H.updateByte(0);
    }
    if (I.Op == Opcode::Call && I.Target < M.Funcs.size()) {
      // Everything generate() reads from the callee, streamed at the
      // callsite: name, SCC-mate flag, interface fields, and the scheme
      // instantiated here (absent for mates and unsummarized callees).
      const Function &CF = M.Funcs[I.Target];
      H.updateByte(1);
      H.update(CF.Name);
      H.sep();
      H.updateByte(SccMates.count(I.Target) ? 1 : 0);
      H.updateU64(CF.NumStackParams);
      H.updateU64(CF.RegParams.size());
      for (Reg Rr : CF.RegParams)
        H.updateByte(static_cast<uint8_t>(Rr));
      H.updateByte(CF.ReturnsValue ? 1 : 0);
      if (const Hash128 *SchemeHash = SchemeHashOf(I.Target)) {
        H.updateByte(1);
        H.updateU64(SchemeHash->Hi);
        H.updateU64(SchemeHash->Lo);
      } else {
        H.updateByte(0);
      }
    } else if (I.Op == Opcode::MovGlobal && I.Target < M.Globals.size()) {
      H.updateByte(2);
      H.update(M.Globals[I.Target].Name);
      H.sep();
      H.updateU64(M.Globals[I.Target].Size);
    } else {
      // Jump targets are body-local instruction indices: position is
      // identity.
      H.updateByte(0);
      H.updateU64(I.Target);
    }
  }
  return H.digest();
}

Hash128 ConstraintGenerator::envSig(const Module &M, const Lattice &Lat) {
  Fnv128 H;
  H.update("retypd-genenv-v1");
  H.sep();
  H.updateU64(M.Globals.size());
  for (const GlobalVar &G : M.Globals) {
    H.update(G.Name);
    H.sep();
    H.updateU64(G.Size);
  }
  H.updateU64(Lat.size());
  for (size_t E = 0; E < Lat.size(); ++E) {
    H.update(Lat.name(static_cast<LatticeElem>(E)));
    H.sep();
  }
  return H.digest();
}

