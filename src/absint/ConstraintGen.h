//===- ConstraintGen.h - Type-constraint generation (App. A) --*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract interpretation TYPE_A of Appendix A: walks a procedure's
/// instructions and emits subtype constraints. The parameter analysis `A`
/// is the reaching-definitions analysis (Example A.2): every read of a
/// register or stack slot resolves to the type variables of its reaching
/// definition sites, so unrelated reuses of one physical location never
/// share a type variable (§2.1).
///
/// Key behaviours, with their paper sections:
///  - value copies emit Y <= X, never unification (§2.5);
///  - loads/stores through non-stack pointers emit
///    p.load.σN@k <= v / v <= p.store.σN@k (A.3);
///  - constant pointer arithmetic is tracked as a (base, offset) pair so
///    field accesses after `add reg, imm` keep their offsets (A.2);
///  - non-constant add/sub emit three-place Add/Sub constraints (A.6);
///  - `xor r, r` and `mov r, imm` produce no flow (semi-syntactic
///    constants, §2.1); flag-only computations are discarded (A.5.2);
///  - bit-twiddling idioms `and r, -4` / `or r, 1` act as the identity
///    (pointer tag stealing, A.5.2);
///  - calls instantiate the callee's type scheme with callsite-tagged
///    fresh variables (let-polymorphism, A.4); calls to same-SCC members
///    use the callee's own variable monomorphically (§4.2).
///
/// Naming is interned-by-structure, not string-built per reference: the
/// generator precomputes module-level variables (procedure names, `g!`
/// globals) once at construction, and each generate() call keeps a
/// per-function table mapping (location kind, reg/slot key, reaching-def
/// site) to its pre-interned `TypeVariable`, so the `Fn!loc@site` /
/// `callsite$exN` / fresh-tag renders are produced exactly once per
/// (function, location, site) — never once per instruction reference.
///
/// Generation is also *content-addressable*: `genKey()` hashes the full
/// dependency set of one procedure's generated constraints — own body and
/// interface, per-callsite callee interface fields and scheme identity,
/// same-SCC membership, and the module/lattice environment signature —
/// into a 128-bit key suitable for a generation-result cache
/// (core/SummaryCache's gen payload kind).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_ABSINT_CONSTRAINTGEN_H
#define RETYPD_ABSINT_CONSTRAINTGEN_H

#include "core/ConstraintSet.h"
#include "mir/MIR.h"
#include "support/Hash128.h"

#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace retypd {

/// Constraints generated for one procedure.
struct GenResult {
  ConstraintSet C;
  TypeVariable ProcVar;
  /// Base variables that must survive simplification: globals and same-SCC
  /// callee procedure variables.
  std::unordered_set<TypeVariable> Interesting;
  /// Callsite instance variables (`F!callee@idx`) interned during the
  /// walk, in body order. A generation-cache replay re-interns exactly
  /// these, so the solve-prep symbol probe observes the same symbol-table
  /// state as a fresh generation would have produced.
  std::vector<TypeVariable> Callsites;
  /// Total parameter count (stack params first, then register params).
  unsigned NumParams = 0;
};

/// Generates constraint sets for procedures of a module.
class ConstraintGenerator {
public:
  ConstraintGenerator(SymbolTable &Syms, const Lattice &Lat, const Module &M);

  /// Generates constraints for \p FuncId. \p Schemes maps already-
  /// summarized functions to their type schemes (instantiated per callsite
  /// here); \p SccMates lists functions of the current SCC, which are
  /// referenced monomorphically.
  GenResult generate(uint32_t FuncId,
                     const std::unordered_map<uint32_t, TypeScheme> &Schemes,
                     const std::set<uint32_t> &SccMates);

  /// The procedure variable for a function (its name, interned once at
  /// construction).
  TypeVariable procVar(uint32_t FuncId) const { return ProcVars[FuncId]; }

  /// The module-level variable of a global symbol (`g!name`, interned once
  /// at construction).
  TypeVariable globalVar(uint32_t GlobalId) const {
    return GlobalVars[GlobalId];
  }

  /// Instantiates \p Scheme at a callsite: the procedure variable maps to
  /// \p CallsiteVar and every existential gets a fresh name (A.4).
  ConstraintSet instantiate(const TypeScheme &Scheme,
                            TypeVariable CallsiteVar);

  /// Signature of the generation environment shared by every function of
  /// \p M: the whole globals table (names and sizes, in id order) and the
  /// lattice identity (element names, in order). Any change to either
  /// conservatively invalidates every cached generation result.
  static Hash128 envSig(const Module &M, const Lattice &Lat);

  /// Content key of generate(FuncId, Schemes, SccMates) for the
  /// generation-result cache. One pass over the function streams its full
  /// dependency set: name, recovered interface, every instruction (call
  /// targets and global references resolved to *names* plus global sizes,
  /// so the key is stable across id shifts elsewhere in the module), and —
  /// per call instruction — the callee's interface fields, SCC-mate flag,
  /// and type scheme identity; the ordered same-SCC member names and the
  /// environment signature close the set. \p SchemeHashOf returns the
  /// structural hash of a callee's current scheme, or nullptr when it has
  /// none (SCC mates, not-yet-summarized callees). Replay from a cache
  /// keyed this way is byte-identical to a fresh generation; miss on any
  /// dependency change.
  Hash128
  genKey(uint32_t FuncId, const std::set<uint32_t> &SccMates,
         const Hash128 &EnvSig,
         const std::function<const Hash128 *(uint32_t)> &SchemeHashOf) const;

private:
  SymbolTable &Syms;
  const Lattice &Lat;
  const Module &M;
  /// Pre-interned per-module variables (see procVar / globalVar).
  std::vector<TypeVariable> ProcVars;
  std::vector<TypeVariable> GlobalVars;
  /// num32 lattice element, resolved once (A.5.2 / A.6 integral bounds).
  /// Dereferenced only when an integral opcode needs it, so lattices
  /// without num32 still analyze modules that never touch those opcodes.
  std::optional<LatticeElem> Num32;
};

} // namespace retypd

#endif // RETYPD_ABSINT_CONSTRAINTGEN_H
