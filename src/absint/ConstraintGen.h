//===- ConstraintGen.h - Type-constraint generation (App. A) --*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract interpretation TYPE_A of Appendix A: walks a procedure's
/// instructions and emits subtype constraints. The parameter analysis `A`
/// is the reaching-definitions analysis (Example A.2): every read of a
/// register or stack slot resolves to the type variables of its reaching
/// definition sites, so unrelated reuses of one physical location never
/// share a type variable (§2.1).
///
/// Key behaviours, with their paper sections:
///  - value copies emit Y <= X, never unification (§2.5);
///  - loads/stores through non-stack pointers emit
///    p.load.σN@k <= v / v <= p.store.σN@k (A.3);
///  - constant pointer arithmetic is tracked as a (base, offset) pair so
///    field accesses after `add reg, imm` keep their offsets (A.2);
///  - non-constant add/sub emit three-place Add/Sub constraints (A.6);
///  - `xor r, r` and `mov r, imm` produce no flow (semi-syntactic
///    constants, §2.1); flag-only computations are discarded (A.5.2);
///  - bit-twiddling idioms `and r, -4` / `or r, 1` act as the identity
///    (pointer tag stealing, A.5.2);
///  - calls instantiate the callee's type scheme with callsite-tagged
///    fresh variables (let-polymorphism, A.4); calls to same-SCC members
///    use the callee's own variable monomorphically (§4.2).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_ABSINT_CONSTRAINTGEN_H
#define RETYPD_ABSINT_CONSTRAINTGEN_H

#include "core/ConstraintSet.h"
#include "mir/MIR.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

namespace retypd {

/// Constraints generated for one procedure.
struct GenResult {
  ConstraintSet C;
  TypeVariable ProcVar;
  /// Base variables that must survive simplification: globals and same-SCC
  /// callee procedure variables.
  std::unordered_set<TypeVariable> Interesting;
  /// Total parameter count (stack params first, then register params).
  unsigned NumParams = 0;
};

/// Generates constraint sets for procedures of a module.
class ConstraintGenerator {
public:
  ConstraintGenerator(SymbolTable &Syms, const Lattice &Lat,
                      const Module &M)
      : Syms(Syms), Lat(Lat), M(M) {}

  /// Generates constraints for \p FuncId. \p Schemes maps already-
  /// summarized functions to their type schemes (instantiated per callsite
  /// here); \p SccMates lists functions of the current SCC, which are
  /// referenced monomorphically.
  GenResult generate(uint32_t FuncId,
                     const std::unordered_map<uint32_t, TypeScheme> &Schemes,
                     const std::set<uint32_t> &SccMates);

  /// The procedure variable for a function (its name, interned).
  TypeVariable procVar(uint32_t FuncId);

  /// The module-level variable of a global symbol.
  TypeVariable globalVar(uint32_t GlobalId);

  /// Instantiates \p Scheme at a callsite: the procedure variable maps to
  /// \p CallsiteVar and every existential gets a fresh name (A.4).
  ConstraintSet instantiate(const TypeScheme &Scheme,
                            TypeVariable CallsiteVar);

private:
  SymbolTable &Syms;
  const Lattice &Lat;
  const Module &M;
};

} // namespace retypd

#endif // RETYPD_ABSINT_CONSTRAINTGEN_H
