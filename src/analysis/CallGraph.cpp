//===- CallGraph.cpp - Call graph and SCC condensation ---------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>
#include <cassert>

using namespace retypd;

CallGraph::CallGraph(const Module &M) {
  size_t N = M.Funcs.size();
  Callees.resize(N);
  for (size_t F = 0; F < N; ++F) {
    for (const Instr &I : M.Funcs[F].Body) {
      if (I.Op != Opcode::Call)
        continue;
      if (I.Target >= N)
        continue; // dangling call from a damaged image
      if (std::find(Callees[F].begin(), Callees[F].end(), I.Target) ==
          Callees[F].end())
        Callees[F].push_back(I.Target);
    }
  }

  // Iterative Tarjan SCC.
  SccId.assign(N, 0xffffffffu);
  std::vector<uint32_t> Index(N, 0xffffffffu), Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;

  struct Frame {
    uint32_t Node;
    size_t NextChild;
  };
  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != 0xffffffffu)
      continue;
    std::vector<Frame> Frames{{Root, 0}};
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;
    while (!Frames.empty()) {
      Frame &Fr = Frames.back();
      if (Fr.NextChild < Callees[Fr.Node].size()) {
        uint32_t Child = Callees[Fr.Node][Fr.NextChild++];
        if (Index[Child] == 0xffffffffu) {
          Index[Child] = Low[Child] = NextIndex++;
          Stack.push_back(Child);
          OnStack[Child] = true;
          Frames.push_back({Child, 0});
        } else if (OnStack[Child]) {
          Low[Fr.Node] = std::min(Low[Fr.Node], Index[Child]);
        }
        continue;
      }
      // Finished this node.
      uint32_t Node = Fr.Node;
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().Node] = std::min(Low[Frames.back().Node],
                                           Low[Node]);
      if (Low[Node] == Index[Node]) {
        std::vector<uint32_t> Members;
        while (true) {
          uint32_t V = Stack.back();
          Stack.pop_back();
          OnStack[V] = false;
          SccId[V] = static_cast<uint32_t>(Sccs.size());
          Members.push_back(V);
          if (V == Node)
            break;
        }
        Sccs.push_back(std::move(Members));
      }
    }
  }

  // Tarjan emits SCCs in reverse topological order of the condensation —
  // exactly the bottom-up (callee-first) order we need.
  BottomUp.resize(Sccs.size());
  for (uint32_t S = 0; S < Sccs.size(); ++S)
    BottomUp[S] = S;

  // Condensation DAG edges (deduplicated, self-loops dropped).
  SccSuccs.resize(Sccs.size());
  for (uint32_t S = 0; S < Sccs.size(); ++S) {
    for (uint32_t F : Sccs[S])
      for (uint32_t Callee : Callees[F]) {
        uint32_t T = SccId[Callee];
        if (T == S)
          continue;
        if (std::find(SccSuccs[S].begin(), SccSuccs[S].end(), T) ==
            SccSuccs[S].end())
          SccSuccs[S].push_back(T);
      }
  }

  // Wave index = longest callee chain below the SCC. Walking bottom-up
  // guarantees every callee SCC is assigned before its callers.
  std::vector<uint32_t> Depth(Sccs.size(), 0);
  uint32_t MaxDepth = 0;
  for (uint32_t S : BottomUp) {
    uint32_t D = 0;
    for (uint32_t T : SccSuccs[S])
      D = std::max(D, Depth[T] + 1);
    Depth[S] = D;
    MaxDepth = std::max(MaxDepth, D);
  }
  Waves.assign(Sccs.empty() ? 0 : MaxDepth + 1, {});
  for (uint32_t S : BottomUp)
    Waves[Depth[S]].push_back(S);

  // Reverse condensation edges, deduplicated by construction (SccSuccs
  // already is). Built in ascending SCC order so the adjacency — and with
  // it the order newly-ready SCCs enter the scheduler — is deterministic.
  SccPreds.resize(Sccs.size());
  for (uint32_t S = 0; S < Sccs.size(); ++S)
    for (uint32_t T : SccSuccs[S])
      SccPreds[T].push_back(S);

  // Commit sequences for the readiness scheduler: the wave concatenations,
  // which are topological orders of the condensation in both directions
  // and match the historical wave-by-wave commit order byte for byte.
  BottomUpSeq.reserve(Sccs.size());
  for (const std::vector<uint32_t> &W : Waves)
    BottomUpSeq.insert(BottomUpSeq.end(), W.begin(), W.end());
  TopDownSeq.reserve(Sccs.size());
  for (auto It = Waves.rbegin(); It != Waves.rend(); ++It)
    TopDownSeq.insert(TopDownSeq.end(), It->begin(), It->end());
}
