//===- CallGraph.h - Call graph and SCC condensation ----------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module call graph and its Tarjan SCC condensation. Type-scheme
/// inference walks the SCCs bottom-up (callees before callers, Algorithm
/// F.1); sketch solving walks them top-down (Algorithm F.2).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_ANALYSIS_CALLGRAPH_H
#define RETYPD_ANALYSIS_CALLGRAPH_H

#include "mir/MIR.h"

#include <vector>

namespace retypd {

/// Call graph with SCC condensation.
class CallGraph {
public:
  explicit CallGraph(const Module &M);

  /// Direct callees of a function (deduplicated).
  const std::vector<uint32_t> &callees(uint32_t Func) const {
    return Callees[Func];
  }

  /// SCC id of a function.
  uint32_t sccOf(uint32_t Func) const { return SccId[Func]; }

  /// Members of each SCC.
  const std::vector<std::vector<uint32_t>> &sccs() const { return Sccs; }

  /// SCC ids in bottom-up order (callees before callers). For a top-down
  /// traversal use topDownWaves() — the wave grouping is the one ordering
  /// contract the pipeline depends on.
  const std::vector<uint32_t> &bottomUp() const { return BottomUp; }

  /// Deduplicated SCC-level callee edges (condensation DAG successors).
  const std::vector<uint32_t> &sccCallees(uint32_t Scc) const {
    return SccSuccs[Scc];
  }

  /// Deduplicated SCC-level caller edges (condensation DAG predecessors —
  /// the reverse of sccCallees). The top-down scheduler counts these as
  /// its dependencies; the bottom-up scheduler notifies them on commit.
  const std::vector<uint32_t> &sccCallers(uint32_t Scc) const {
    return SccPreds[Scc];
  }

  /// Every SCC id, in concatenated bottom-up wave order. This is the
  /// phase-1 commit sequence: a topological order of the condensation
  /// (callees strictly before callers) that is identical for every --jobs
  /// value, and byte-compatible with the historical wave-by-wave commit
  /// order the golden corpus was recorded under.
  const std::vector<uint32_t> &bottomUpOrder() const { return BottomUpSeq; }

  /// Every SCC id, in concatenated top-down wave order (the reverse wave
  /// concatenation, NOT the element-wise reverse of bottomUpOrder). This
  /// is the phase-2 commit sequence: callers strictly before callees, and
  /// exactly the order in which callsite sketches have always been pushed
  /// into the refinement accumulators — sketch joins are order-sensitive,
  /// so this sequence is part of the byte-identity contract.
  const std::vector<uint32_t> &topDownOrder() const { return TopDownSeq; }

  /// The bottom-up wavefront: Waves[0] holds the leaf SCCs (no callees
  /// outside themselves), Waves[k] the SCCs whose deepest callee chain has
  /// length k. Every SCC in a wave depends only on strictly earlier waves,
  /// so the members of one wave can be summarized concurrently. Within a
  /// wave, SCC ids appear in bottom-up order, which makes wave-by-wave
  /// sequential processing a topological order identical for every --jobs
  /// setting.
  const std::vector<std::vector<uint32_t>> &bottomUpWaves() const {
    return Waves;
  }

  /// The same waves reversed (for the top-down sketch-solving phase):
  /// callers always appear in a strictly earlier wave than their callees.
  std::vector<std::vector<uint32_t>> topDownWaves() const {
    std::vector<std::vector<uint32_t>> Rev(Waves.rbegin(), Waves.rend());
    return Rev;
  }

private:
  std::vector<std::vector<uint32_t>> Callees;
  std::vector<uint32_t> SccId;
  std::vector<std::vector<uint32_t>> Sccs;
  std::vector<uint32_t> BottomUp;
  std::vector<std::vector<uint32_t>> SccSuccs;
  std::vector<std::vector<uint32_t>> SccPreds;
  std::vector<std::vector<uint32_t>> Waves;
  std::vector<uint32_t> BottomUpSeq;
  std::vector<uint32_t> TopDownSeq;
};

} // namespace retypd

#endif // RETYPD_ANALYSIS_CALLGRAPH_H
