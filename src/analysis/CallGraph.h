//===- CallGraph.h - Call graph and SCC condensation ----------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module call graph and its Tarjan SCC condensation. Type-scheme
/// inference walks the SCCs bottom-up (callees before callers, Algorithm
/// F.1); sketch solving walks them top-down (Algorithm F.2).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_ANALYSIS_CALLGRAPH_H
#define RETYPD_ANALYSIS_CALLGRAPH_H

#include "mir/MIR.h"

#include <vector>

namespace retypd {

/// Call graph with SCC condensation.
class CallGraph {
public:
  explicit CallGraph(const Module &M);

  /// Direct callees of a function (deduplicated).
  const std::vector<uint32_t> &callees(uint32_t Func) const {
    return Callees[Func];
  }

  /// SCC id of a function.
  uint32_t sccOf(uint32_t Func) const { return SccId[Func]; }

  /// Members of each SCC.
  const std::vector<std::vector<uint32_t>> &sccs() const { return Sccs; }

  /// SCC ids in bottom-up order (callees before callers).
  const std::vector<uint32_t> &bottomUp() const { return BottomUp; }

  /// SCC ids in top-down order (callers before callees).
  std::vector<uint32_t> topDown() const {
    return std::vector<uint32_t>(BottomUp.rbegin(), BottomUp.rend());
  }

private:
  std::vector<std::vector<uint32_t>> Callees;
  std::vector<uint32_t> SccId;
  std::vector<std::vector<uint32_t>> Sccs;
  std::vector<uint32_t> BottomUp;
};

} // namespace retypd

#endif // RETYPD_ANALYSIS_CALLGRAPH_H
