//===- InterfaceRecovery.cpp - Formal-in/out discovery ----------------------===//

#include "analysis/InterfaceRecovery.h"

#include "analysis/Liveness.h"
#include "analysis/ReachingDefs.h"
#include "analysis/RegEffects.h"
#include "analysis/StackAnalysis.h"
#include "mir/Cfg.h"

#include <algorithm>

using namespace retypd;

namespace {

void recoverOne(Function &F) {
  Cfg G(F);
  StackAnalysis SA(F, G);

  // Stack parameters: reads of entry-relative slots above the return
  // address. Parameter i lives at slot 4 + 4i.
  unsigned MaxParam = 0;
  bool AnyParam = false;
  for (uint32_t I = 0; I < F.Body.size(); ++I) {
    const Instr &Ins = F.Body[I];
    if (Ins.Op != Opcode::Load && Ins.Op != Opcode::Lea)
      continue;
    auto Slot = SA.slotFor(I, Ins.Mem);
    if (!Slot || *Slot < 4)
      continue;
    AnyParam = true;
    MaxParam = std::max(MaxParam, static_cast<unsigned>((*Slot - 4) / 4));
  }
  F.NumStackParams = AnyParam ? MaxParam + 1 : 0;

  // Register parameters: registers live into the entry block, minus the
  // stack plumbing registers.
  Liveness LV(F, G);
  F.RegParams.clear();
  auto Live = LV.liveAtEntry();
  for (unsigned R = 0; R < NumRegs; ++R) {
    Reg Rr = static_cast<Reg>(R);
    if (Rr == Reg::Esp || Rr == Reg::Ebp || Rr == Reg::Eax)
      continue; // eax is handled below as the return channel
    if (Live[R])
      F.RegParams.push_back(Rr);
  }
  // eax read before written is also a register parameter.
  if (Live[static_cast<unsigned>(Reg::Eax)]) {
    // Distinguish a genuine read from the implicit `ret` use: scan for an
    // explicit use of eax before any def along the entry block.
    bool Defined = false, Read = false;
    for (const Instr &Ins : F.Body) {
      for (Reg U : regUses(Ins))
        if (U == Reg::Eax && !Defined && Ins.Op != Opcode::Ret)
          Read = true;
      if (defines(Ins, Reg::Eax))
        Defined = true;
      if (Defined || Read)
        break;
    }
    if (Read)
      F.RegParams.push_back(Reg::Eax);
  }

  // Return value: some ret is reached by a non-entry definition of eax.
  ReachingDefs RD(F, G, SA);
  F.ReturnsValue = false;
  for (size_t B = 0; B < G.size(); ++B) {
    const BasicBlock &BB = G.blocks()[B];
    DefState S = RD.blockIn(static_cast<uint32_t>(B));
    for (uint32_t I = BB.Begin; I < BB.End; ++I) {
      if (F.Body[I].Op == Opcode::Ret) {
        auto It = S.find(Location::reg(Reg::Eax));
        if (It != S.end())
          for (uint32_t D : It->second)
            if (D != EntryDef)
              F.ReturnsValue = true;
      }
      RD.step(S, I);
    }
  }
}

} // namespace

void retypd::recoverInterfaces(Module &M) {
  for (Function &F : M.Funcs)
    if (!F.IsExternal && !F.Body.empty())
      recoverOne(F);
}
