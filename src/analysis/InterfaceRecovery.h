//===- InterfaceRecovery.h - Formal-in/out discovery ----------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recovers each procedure's interface — the "locators" of Appendix A.4:
/// how many stack parameters it reads, which registers it consumes without
/// defining (undeclared register parameters, including the occasional false
/// positive that §2.5 warns about), and whether it produces a value in eax.
/// In the paper this information comes from CodeSurfer's earlier analysis
/// phases; here it is recovered from the IR directly.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_ANALYSIS_INTERFACERECOVERY_H
#define RETYPD_ANALYSIS_INTERFACERECOVERY_H

#include "mir/MIR.h"

namespace retypd {

/// Fills NumStackParams / RegParams / ReturnsValue on every non-external
/// function of \p M. External functions are expected to be described by
/// known-function summaries instead (frontend/KnownFunctions).
void recoverInterfaces(Module &M);

} // namespace retypd

#endif // RETYPD_ANALYSIS_INTERFACERECOVERY_H
