//===- Liveness.cpp - Backward register liveness ---------------------------===//

#include "analysis/Liveness.h"

#include "analysis/RegEffects.h"

#include <deque>

using namespace retypd;

Liveness::Liveness(const Function &F, const Cfg &G) {
  size_t NB = G.size();
  LiveIn.assign(NB, {});
  LiveOut.assign(NB, {});

  // Per-block USE (read before written) and DEF (written) sets.
  std::vector<RegSet> Use(NB), Def(NB);
  for (size_t B = 0; B < NB; ++B) {
    const BasicBlock &BB = G.blocks()[B];
    for (uint32_t I = BB.Begin; I < BB.End; ++I) {
      const Instr &Ins = F.Body[I];
      for (Reg R : regUses(Ins)) {
        unsigned Idx = static_cast<unsigned>(R);
        if (!Def[B][Idx])
          Use[B][Idx] = true;
      }
      // ret uses eax by convention, but only if a value was produced: the
      // regUses model includes it, which is conservative in the right
      // direction for register-parameter discovery.
      for (Reg R : regDefs(Ins))
        Def[B][static_cast<unsigned>(R)] = true;
    }
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Iterate blocks in reverse order for faster convergence.
    for (size_t B = NB; B-- > 0;) {
      RegSet Out;
      for (uint32_t S : G.blocks()[B].Succs)
        Out |= LiveIn[S];
      RegSet In = Use[B] | (Out & ~Def[B]);
      if (In != LiveIn[B] || Out != LiveOut[B]) {
        LiveIn[B] = In;
        LiveOut[B] = Out;
        Changed = true;
      }
    }
  }
}
