//===- Liveness.h - Backward register liveness ----------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward may-liveness over registers. Used by interface recovery
/// to find undeclared register parameters: a register that is live into the
/// function entry is read before being written, which on optimized binaries
/// indicates (sometimes spuriously — §2.5) a register argument.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_ANALYSIS_LIVENESS_H
#define RETYPD_ANALYSIS_LIVENESS_H

#include "mir/Cfg.h"

#include <bitset>
#include <vector>

namespace retypd {

/// Register liveness per basic block.
class Liveness {
public:
  using RegSet = std::bitset<NumRegs>;

  Liveness(const Function &F, const Cfg &G);

  RegSet liveInto(uint32_t Block) const { return LiveIn[Block]; }

  /// Registers live into the function entry (potential register params).
  RegSet liveAtEntry() const { return LiveIn[0]; }

private:
  std::vector<RegSet> LiveIn, LiveOut;
};

} // namespace retypd

#endif // RETYPD_ANALYSIS_LIVENESS_H
