//===- ReachingDefs.cpp - Register & stack-slot reaching defs --------------===//

#include "analysis/ReachingDefs.h"

#include "analysis/RegEffects.h"

#include <algorithm>
#include <deque>

using namespace retypd;

std::vector<Location> ReachingDefs::locationsDefined(uint32_t InstrIdx) const {
  const Instr &I = F.Body[InstrIdx];
  std::vector<Location> Locs;
  for (Reg R : regDefs(I))
    if (R != Reg::Esp)
      Locs.push_back(Location::reg(R));
  switch (I.Op) {
  case Opcode::Store:
  case Opcode::StoreImm:
    if (I.Mem.isGlobal()) {
      Locs.push_back(Location::global(I.Mem.GlobalSym));
    } else if (auto Slot = SA.slotFor(InstrIdx, I.Mem)) {
      Locs.push_back(Location::slot(*Slot));
    }
    break;
  case Opcode::Push:
  case Opcode::PushImm:
    // push writes the slot just below the current esp.
    if (auto E = SA.espAt(InstrIdx))
      Locs.push_back(Location::slot(*E - 4));
    break;
  case Opcode::Pop:
    // The register def is already included via regDefs.
    break;
  default:
    break;
  }
  return Locs;
}

void ReachingDefs::step(DefState &S, uint32_t InstrIdx) const {
  for (const Location &L : locationsDefined(InstrIdx))
    S[L] = {InstrIdx};
}

ReachingDefs::ReachingDefs(const Function &Fn, const Cfg &G,
                           const StackAnalysis &SAIn)
    : F(Fn), SA(SAIn) {
  BlockIn.resize(G.size());

  // Entry state: every register and every parameter-ish slot is defined at
  // entry. Slots are added lazily on first read instead; registers here.
  DefState Entry;
  for (unsigned R = 0; R < NumRegs; ++R)
    Entry[Location::reg(static_cast<Reg>(R))] = {EntryDef};
  BlockIn[0] = std::move(Entry);

  auto MergeInto = [](DefState &Into, const DefState &From) {
    bool Changed = false;
    for (const auto &[Loc, Defs] : From) {
      auto &Tgt = Into[Loc];
      for (uint32_t D : Defs)
        if (std::find(Tgt.begin(), Tgt.end(), D) == Tgt.end()) {
          Tgt.push_back(D);
          Changed = true;
        }
    }
    return Changed;
  };

  std::deque<uint32_t> Work{0};
  std::vector<bool> Reached(G.size(), false);
  Reached[0] = true;
  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    DefState S = BlockIn[B];
    const BasicBlock &BB = G.blocks()[B];
    for (uint32_t I = BB.Begin; I < BB.End; ++I)
      step(S, I);
    for (uint32_t Succ : BB.Succs) {
      bool Changed = false;
      if (!Reached[Succ]) {
        Reached[Succ] = true;
        BlockIn[Succ] = S;
        Changed = true;
      } else {
        Changed = MergeInto(BlockIn[Succ], S);
      }
      if (Changed)
        Work.push_back(Succ);
    }
  }
  // Sort def lists for determinism.
  for (DefState &S : BlockIn)
    for (auto &[Loc, Defs] : S)
      std::sort(Defs.begin(), Defs.end());
}
