//===- ReachingDefs.h - Register & stack-slot reaching defs ---*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow-sensitive reaching definitions for registers and entry-relative
/// stack slots. This is the analysis `A` that parameterizes the constraint
/// generator in Appendix A (Example A.2): the type variable chosen for a
/// register read is tagged with the reaching definition site, so that
/// unrelated reuses of one physical location get unrelated type variables
/// (§2.1: stack-slot reuse must not conflate types).
///
/// Locations are registers (eax..edi) and stack slots (entry-relative
/// offsets resolved by StackAnalysis). A definition site is an instruction
/// index; the sentinel EntryDef marks values live-in at function entry
/// (parameters, undeclared register arguments).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_ANALYSIS_REACHINGDEFS_H
#define RETYPD_ANALYSIS_REACHINGDEFS_H

#include "analysis/StackAnalysis.h"
#include "mir/Cfg.h"

#include <map>
#include <vector>

namespace retypd {

/// An abstract storage location within one function.
struct Location {
  enum class Kind : uint8_t { Register, StackSlot, Global } K;
  int32_t Key; ///< register id, slot offset, or global symbol id

  static Location reg(Reg R) {
    return {Kind::Register, static_cast<int32_t>(R)};
  }
  static Location slot(int32_t Offset) { return {Kind::StackSlot, Offset}; }
  static Location global(uint32_t Sym) {
    return {Kind::Global, static_cast<int32_t>(Sym)};
  }

  friend bool operator<(const Location &A, const Location &B) {
    if (A.K != B.K)
      return A.K < B.K;
    return A.Key < B.Key;
  }
  friend bool operator==(const Location &A, const Location &B) {
    return A.K == B.K && A.Key == B.Key;
  }
};

/// The reaching-definition state at one program point: for each location,
/// the set of definition sites (instruction indices; EntryDef for live-in).
using DefState = std::map<Location, std::vector<uint32_t>>;

constexpr uint32_t EntryDef = 0xffffffffu;

/// Computes block-entry states; clients replay instructions within a block
/// with step().
class ReachingDefs {
public:
  ReachingDefs(const Function &F, const Cfg &G, const StackAnalysis &SA);

  /// The state at the entry of block \p B.
  const DefState &blockIn(uint32_t B) const { return BlockIn[B]; }

  /// Advances \p S over instruction \p InstrIdx.
  void step(DefState &S, uint32_t InstrIdx) const;

  /// The locations written by an instruction (registers, plus the stack
  /// slot for stack stores and push).
  std::vector<Location> locationsDefined(uint32_t InstrIdx) const;

private:
  const Function &F;
  const StackAnalysis &SA;
  std::vector<DefState> BlockIn;
};

} // namespace retypd

#endif // RETYPD_ANALYSIS_REACHINGDEFS_H
