//===- RegEffects.cpp - Per-instruction register uses/defs -----------------===//

#include "analysis/RegEffects.h"

#include <algorithm>

using namespace retypd;

std::vector<Reg> retypd::regUses(const Instr &I) {
  std::vector<Reg> Uses;
  auto Add = [&](Reg R) {
    if (R != Reg::None)
      Uses.push_back(R);
  };
  switch (I.Op) {
  case Opcode::Mov:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Cmp:
  case Opcode::Test:
    Add(I.Src);
    if (I.Op != Opcode::Mov)
      Add(I.Dst);
    break;
  case Opcode::Xor:
    // xor r, r zeroes r without reading it (semi-syntactic constant, §2.1).
    if (I.Src != I.Dst)
      Add(I.Src), Add(I.Dst);
    break;
  case Opcode::AddImm:
  case Opcode::SubImm:
  case Opcode::AndImm:
  case Opcode::OrImm:
  case Opcode::CmpImm:
    Add(I.Dst);
    break;
  case Opcode::Load:
  case Opcode::Lea:
    if (!I.Mem.isGlobal())
      Add(I.Mem.Base);
    break;
  case Opcode::Store:
    Add(I.Src);
    if (!I.Mem.isGlobal())
      Add(I.Mem.Base);
    break;
  case Opcode::StoreImm:
    if (!I.Mem.isGlobal())
      Add(I.Mem.Base);
    break;
  case Opcode::Push:
    Add(I.Src);
    break;
  case Opcode::CallInd:
    Add(I.Src);
    break;
  case Opcode::Ret:
    // By convention the return value travels in eax; treating ret as a use
    // keeps the value live.
    Uses.push_back(Reg::Eax);
    break;
  default:
    break;
  }
  // esp/ebp frame plumbing is handled by the stack analysis, not as data.
  Uses.erase(std::remove_if(Uses.begin(), Uses.end(),
                            [](Reg R) { return R == Reg::Esp; }),
             Uses.end());
  return Uses;
}

std::vector<Reg> retypd::regDefs(const Instr &I) {
  switch (I.Op) {
  case Opcode::Mov:
  case Opcode::MovImm:
  case Opcode::MovGlobal:
  case Opcode::Load:
  case Opcode::Lea:
  case Opcode::Add:
  case Opcode::AddImm:
  case Opcode::Sub:
  case Opcode::SubImm:
  case Opcode::And:
  case Opcode::AndImm:
  case Opcode::Or:
  case Opcode::OrImm:
  case Opcode::Xor:
  case Opcode::Pop:
    return {I.Dst};
  case Opcode::Call:
  case Opcode::CallInd:
    return {Reg::Eax}; // the return value
  default:
    return {};
  }
}

bool retypd::defines(const Instr &I, Reg R) {
  for (Reg D : regDefs(I))
    if (D == R)
      return true;
  return false;
}
