//===- RegEffects.h - Per-instruction register uses/defs ------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared use/def model of the instruction set, consumed by reaching
/// definitions, liveness, interface recovery, and constraint generation.
///
/// Calling convention (cdecl-like): arguments on the stack, return value in
/// eax, all other registers preserved by callees. A call therefore defines
/// eax; undeclared register arguments (the §2.5 hazard) show up as
/// registers that are live into a function without a prior definition.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_ANALYSIS_REGEFFECTS_H
#define RETYPD_ANALYSIS_REGEFFECTS_H

#include "mir/MIR.h"

#include <vector>

namespace retypd {

/// Registers read by \p I (excluding the implicit esp of push/pop/call).
std::vector<Reg> regUses(const Instr &I);

/// Registers written by \p I (excluding esp adjustments).
std::vector<Reg> regDefs(const Instr &I);

/// True if \p I writes \p R.
bool defines(const Instr &I, Reg R);

} // namespace retypd

#endif // RETYPD_ANALYSIS_REGEFFECTS_H
