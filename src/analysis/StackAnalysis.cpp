//===- StackAnalysis.cpp - esp/ebp affine offset tracking ------------------===//

#include "analysis/StackAnalysis.h"

#include "analysis/RegEffects.h"

#include <deque>

using namespace retypd;

namespace {

struct State {
  std::optional<int32_t> Esp, Ebp;
  bool Reached = false;
};

State merge(const State &A, const State &B) {
  State Out;
  Out.Reached = true;
  if (A.Esp && B.Esp && *A.Esp == *B.Esp)
    Out.Esp = A.Esp;
  if (A.Ebp && B.Ebp && *A.Ebp == *B.Ebp)
    Out.Ebp = A.Ebp;
  return Out;
}

bool sameState(const State &A, const State &B) {
  return A.Reached == B.Reached && A.Esp == B.Esp && A.Ebp == B.Ebp;
}

} // namespace

StackAnalysis::StackAnalysis(const Function &F, const Cfg &G) {
  size_t N = F.Body.size();
  EspIn.assign(N, std::nullopt);
  EbpIn.assign(N, std::nullopt);
  if (N == 0)
    return;

  std::vector<State> BlockIn(G.size());
  BlockIn[0].Reached = true;
  BlockIn[0].Esp = 0;

  auto Transfer = [&](State S, const Instr &I) -> State {
    auto Bump = [&](int32_t D) {
      if (S.Esp)
        S.Esp = *S.Esp + D;
    };
    switch (I.Op) {
    case Opcode::Push:
    case Opcode::PushImm:
      Bump(-4);
      break;
    case Opcode::Pop:
      if (I.Dst == Reg::Esp)
        S.Esp = std::nullopt;
      else
        Bump(4);
      if (I.Dst == Reg::Ebp)
        S.Ebp = std::nullopt; // popped value is not tracked
      break;
    case Opcode::AddImm:
      if (I.Dst == Reg::Esp)
        Bump(I.Imm);
      else if (I.Dst == Reg::Ebp) {
        if (S.Ebp)
          S.Ebp = *S.Ebp + I.Imm;
      }
      break;
    case Opcode::SubImm:
      if (I.Dst == Reg::Esp)
        Bump(-I.Imm);
      else if (I.Dst == Reg::Ebp) {
        if (S.Ebp)
          S.Ebp = *S.Ebp - I.Imm;
      }
      break;
    case Opcode::Mov:
      if (I.Dst == Reg::Ebp)
        S.Ebp = I.Src == Reg::Esp ? S.Esp : std::nullopt;
      else if (I.Dst == Reg::Esp)
        S.Esp = I.Src == Reg::Ebp ? S.Ebp : std::nullopt;
      break;
    case Opcode::Lea:
      if (I.Dst == Reg::Esp) {
        if (!I.Mem.isGlobal() && I.Mem.Base == Reg::Esp && S.Esp)
          S.Esp = *S.Esp + I.Mem.Disp;
        else if (!I.Mem.isGlobal() && I.Mem.Base == Reg::Ebp && S.Ebp)
          S.Esp = *S.Ebp + I.Mem.Disp;
        else
          S.Esp = std::nullopt;
      } else if (I.Dst == Reg::Ebp) {
        if (!I.Mem.isGlobal() && I.Mem.Base == Reg::Esp && S.Esp)
          S.Ebp = *S.Esp + I.Mem.Disp;
        else
          S.Ebp = std::nullopt;
      }
      break;
    default:
      // Other writes to esp/ebp lose tracking.
      if (defines(I, Reg::Esp))
        S.Esp = std::nullopt;
      if (defines(I, Reg::Ebp))
        S.Ebp = std::nullopt;
      break;
    }
    // A call pushes and pops the return address; cdecl callees do not
    // adjust the caller's esp beyond that, so esp is unchanged.
    return S;
  };

  // Worklist over blocks.
  std::deque<uint32_t> Work{0};
  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    State S = BlockIn[B];
    if (!S.Reached)
      continue;
    const BasicBlock &BB = G.blocks()[B];
    for (uint32_t I = BB.Begin; I < BB.End; ++I) {
      EspIn[I] = S.Esp;
      EbpIn[I] = S.Ebp;
      if (F.Body[I].Op == Opcode::Ret && (!S.Esp || *S.Esp != 0))
        Balanced = false;
      S = Transfer(S, F.Body[I]);
    }
    for (uint32_t Succ : BB.Succs) {
      State Merged =
          BlockIn[Succ].Reached ? merge(BlockIn[Succ], S) : S;
      Merged.Reached = true;
      if (!sameState(Merged, BlockIn[Succ])) {
        BlockIn[Succ] = Merged;
        Work.push_back(Succ);
      }
    }
  }
}

std::optional<int32_t> StackAnalysis::slotFor(uint32_t InstrIdx,
                                              const MemRef &Mem) const {
  if (Mem.isGlobal())
    return std::nullopt;
  if (Mem.Base == Reg::Esp) {
    if (auto E = EspIn[InstrIdx])
      return *E + Mem.Disp;
    return std::nullopt;
  }
  if (Mem.Base == Reg::Ebp) {
    if (auto E = EbpIn[InstrIdx])
      return *E + Mem.Disp;
    return std::nullopt;
  }
  return std::nullopt;
}
