//===- StackAnalysis.h - esp/ebp affine offset tracking -------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks the affine relation between esp/ebp and the entry stack pointer
/// (the "affine relations between the stack and frame pointers" analysis
/// the paper's evaluation enables, §6.1). The result maps each memory
/// access of the form [esp+d] or [ebp+d] to an entry-relative stack slot:
///
///   slot  0           the return address
///   slot  4, 8, ...   stack parameters
///   slot -4, -8, ...  locals
///
/// This is the minimal points-to knowledge Retypd requires: "no points-to
/// analysis beyond the simpler problem of tracking the stack pointer"
/// (§2.7).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_ANALYSIS_STACKANALYSIS_H
#define RETYPD_ANALYSIS_STACKANALYSIS_H

#include "mir/Cfg.h"
#include "mir/MIR.h"

#include <optional>
#include <vector>

namespace retypd {

/// Per-instruction esp/ebp deltas (value of reg minus entry esp, at the
/// *start* of the instruction). nullopt = not a statically known offset.
class StackAnalysis {
public:
  StackAnalysis(const Function &F, const Cfg &G);

  std::optional<int32_t> espAt(uint32_t InstrIdx) const {
    return EspIn[InstrIdx];
  }
  std::optional<int32_t> ebpAt(uint32_t InstrIdx) const {
    return EbpIn[InstrIdx];
  }

  /// Resolves a [reg+disp] access at \p InstrIdx to an entry-relative slot
  /// offset, if the base register's offset is known.
  std::optional<int32_t> slotFor(uint32_t InstrIdx, const MemRef &Mem) const;

  /// True when the analysis found a consistent esp offset at every ret.
  bool balanced() const { return Balanced; }

private:
  std::vector<std::optional<int32_t>> EspIn, EbpIn;
  bool Balanced = true;
};

} // namespace retypd

#endif // RETYPD_ANALYSIS_STACKANALYSIS_H
