//===- Baselines.cpp - Unification & interval baselines ---------------------===//

#include "baseline/Baselines.h"

#include "absint/ConstraintGen.h"
#include "analysis/InterfaceRecovery.h"
#include "core/ShapeGraph.h"
#include "frontend/KnownFunctions.h"

#include <algorithm>
#include <set>

using namespace retypd;

namespace {

/// Generates the whole-module constraint pool with *monomorphic* linking:
/// every function is in one "SCC", so callsites share callee variables
/// directly (no scheme instantiation, no polymorphism).
ConstraintSet monomorphicConstraints(Module &M, SymbolTable &Syms,
                                     const Lattice &Lat) {
  recoverInterfaces(M);
  std::unordered_map<uint32_t, TypeScheme> Schemes;
  registerKnownFunctions(M, Syms, Lat, Schemes);

  ConstraintGenerator Gen(Syms, Lat, M);
  std::set<uint32_t> All;
  for (uint32_t F = 0; F < M.Funcs.size(); ++F)
    All.insert(F);

  ConstraintSet C;
  for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
    if (M.Funcs[F].IsExternal)
      continue;
    GenResult R = Gen.generate(F, Schemes, All);
    C.merge(R.C);
  }
  // Monomorphic known-function summaries: instantiate each scheme exactly
  // once, on the callee's own variable.
  for (const auto &[FId, Scheme] : Schemes)
    C.merge(Gen.instantiate(Scheme, Gen.procVar(FId)));
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// UnificationInference
//===----------------------------------------------------------------------===//

BaselineResult UnificationInference::run(Module &M) {
  BaselineResult Out;
  Out.Syms = std::make_shared<SymbolTable>();
  SymbolTable &Syms = *Out.Syms;

  ConstraintSet C = monomorphicConstraints(M, Syms, Lat);

  // Unification: the Steensgaard quotient *is* the solution. Every subtype
  // edge became an equality.
  ShapeGraph Shapes(C);

  // Collect the constants inhabiting each class. Under unification all
  // members are equal, so multiple distinct constants are a conflict.
  std::map<uint32_t, std::vector<LatticeElem>> ClassConsts;
  for (const auto &[Dtv, Raw] : Shapes.nodes()) {
    if (!Dtv.base().isConstant() || !Dtv.isBaseOnly())
      continue;
    uint32_t Cls = Shapes.canonical(Raw);
    auto &V = ClassConsts[Cls];
    LatticeElem E = Dtv.base().latticeElem();
    if (std::find(V.begin(), V.end(), E) == V.end())
      V.push_back(E);
  }

  // Convert a class to a C type (memoized; recursion-safe).
  std::map<uint32_t, CTypeId> Done;
  std::set<uint32_t> InProgress;
  unsigned StructCounter = 0;

  auto Slot = [&](uint32_t Cls) {
    BaselineSlot S;
    if (Cls == ShapeGraph::NoClass)
      return S;
    auto It = ClassConsts.find(Cls);
    if (It != ClassConsts.end() && !It->second.empty()) {
      // Unification folds every bound into one point.
      LatticeElem E = It->second[0];
      for (LatticeElem O : It->second)
        E = Lat.join(E, O);
      S.Lower = S.Upper = E;
    }
    S.Pointer = Shapes.isPointerClass(Cls);
    return S;
  };

  auto Convert = [&](auto &&Self, uint32_t Cls) -> CTypeId {
    if (Cls == ShapeGraph::NoClass)
      return Out.Pool.unknownType();
    Cls = Shapes.canonical(Cls);
    auto DoneIt = Done.find(Cls);
    if (DoneIt != Done.end())
      return DoneIt->second;
    if (!InProgress.insert(Cls).second) {
      // Recursive structure: a named shell.
      CType Shell;
      Shell.K = CType::Kind::Struct;
      Shell.Name = "UStruct_" + std::to_string(StructCounter++);
      CTypeId Id = Out.Pool.make(std::move(Shell));
      Done[Cls] = Id;
      return Id;
    }

    CTypeId Result;
    const auto &Kids = Shapes.childrenOf(Cls);
    auto LoadIt = Kids.find(Label::load());
    auto StoreIt = Kids.find(Label::store());
    if (LoadIt != Kids.end() || StoreIt != Kids.end()) {
      uint32_t P = Shapes.canonical(
          LoadIt != Kids.end() ? LoadIt->second : StoreIt->second);
      // Pointee: fields of the pointed-to class.
      std::vector<std::pair<int32_t, uint32_t>> Fields;
      for (const auto &[L, Child] : Shapes.childrenOf(P))
        if (L.isField())
          Fields.push_back({L.offset(), Shapes.canonical(Child)});
      std::sort(Fields.begin(), Fields.end());
      CTypeId Pointee;
      if (Fields.empty()) {
        Pointee = Out.Pool.unknownType();
      } else if (Fields.size() == 1 && Fields[0].first == 0) {
        Pointee = Self(Self, Fields[0].second);
      } else {
        CType St;
        St.K = CType::Kind::Struct;
        St.Name = "UStruct_" + std::to_string(StructCounter++);
        CTypeId StId = Out.Pool.make(std::move(St));
        Done[Cls] = StId; // provisional, refined below
        std::vector<CType::Field> Built;
        for (auto &[Off, ChildCls] : Fields)
          Built.push_back(CType::Field{Off, Self(Self, ChildCls)});
        Out.Pool.get(StId).Fields = std::move(Built);
        Pointee = StId;
      }
      Result = Out.Pool.pointerTo(Pointee);
    } else {
      BaselineSlot S = Slot(Cls);
      if (S.Lower != Lattice::Bottom && S.Lower != Lattice::Top &&
          !Lat.isTag(S.Lower)) {
        const std::string &Name = Lat.name(S.Lower);
        if (Name == "int" || Name == "num32")
          Result = Out.Pool.intType(32, true);
        else if (Name == "uint")
          Result = Out.Pool.intType(32, false);
        else if (Name == "str") {
          CType Ch;
          Ch.K = CType::Kind::Int;
          Ch.Bits = 8;
          Ch.Name = "char";
          Result = Out.Pool.pointerTo(Out.Pool.make(std::move(Ch)));
        } else
          Result = Out.Pool.typedefType(Name, 32);
      } else if (S.Lower != Lattice::Bottom && Lat.isTag(S.Lower)) {
        CType T;
        T.K = CType::Kind::Int;
        T.Bits = 32;
        T.Name = Lat.name(S.Lower);
        Result = Out.Pool.make(std::move(T));
      } else {
        Result = Out.Pool.unknownType();
      }
    }
    InProgress.erase(Cls);
    Done[Cls] = Result;
    return Result;
  };

  ConstraintGenerator Gen(Syms, Lat, M);
  for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
    if (M.Funcs[F].IsExternal)
      continue;
    BaselineFunc BF;
    TypeVariable PV = Gen.procVar(F);
    unsigned NumParams = M.Funcs[F].NumStackParams +
                         static_cast<unsigned>(M.Funcs[F].RegParams.size());
    for (unsigned K = 0; K < NumParams; ++K) {
      uint32_t Cls =
          Shapes.classOf(DerivedTypeVariable(PV, {Label::in(K)}));
      BaselineSlot S = Slot(Cls);
      S.Type = Convert(Convert, Cls);
      BF.Params.push_back(S);
    }
    BF.HasRet = M.Funcs[F].ReturnsValue;
    if (BF.HasRet) {
      uint32_t Cls = Shapes.classOf(DerivedTypeVariable(PV, {Label::out()}));
      BF.Ret = Slot(Cls);
      BF.Ret.Type = Convert(Convert, Cls);
    }
    Out.Funcs.emplace(F, std::move(BF));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// IntervalInference
//===----------------------------------------------------------------------===//

BaselineResult IntervalInference::run(Module &M) {
  BaselineResult Out;
  Out.Syms = std::make_shared<SymbolTable>();
  SymbolTable &Syms = *Out.Syms;

  ConstraintSet C = monomorphicConstraints(M, Syms, Lat);

  // Bounds per *mentioned* DTV — no derived capabilities, no recursion:
  // TIE's flat treatment.
  std::map<DerivedTypeVariable, std::pair<LatticeElem, LatticeElem>> Bounds;
  auto BoundsOf = [&](const DerivedTypeVariable &D)
      -> std::pair<LatticeElem, LatticeElem> & {
    auto It = Bounds.find(D);
    if (It == Bounds.end())
      It = Bounds
               .emplace(D, std::make_pair(Lattice::Bottom, Lattice::Top))
               .first;
    return It->second;
  };

  bool Changed = true;
  unsigned Rounds = 0;
  while (Changed && Rounds++ < 4 * Lat.height()) {
    Changed = false;
    for (const SubtypeConstraint &SC : C.subtypes()) {
      LatticeElem LhsConst =
          SC.Lhs.base().isConstant() && SC.Lhs.isBaseOnly()
              ? SC.Lhs.base().latticeElem()
              : Lattice::Top;
      LatticeElem RhsConst =
          SC.Rhs.base().isConstant() && SC.Rhs.isBaseOnly()
              ? SC.Rhs.base().latticeElem()
              : Lattice::Bottom;

      if (SC.Lhs.base().isConstant() && SC.Rhs.base().isConstant())
        continue;
      if (SC.Lhs.base().isConstant()) {
        auto &B = BoundsOf(SC.Rhs);
        LatticeElem NewLower = Lat.join(B.first, LhsConst == Lattice::Top
                                                     ? Lattice::Bottom
                                                     : LhsConst);
        if (NewLower != B.first) {
          B.first = NewLower;
          Changed = true;
        }
        continue;
      }
      if (SC.Rhs.base().isConstant()) {
        auto &B = BoundsOf(SC.Lhs);
        LatticeElem NewUpper = Lat.meet(B.second, RhsConst == Lattice::Bottom
                                                      ? Lattice::Top
                                                      : RhsConst);
        if (NewUpper != B.second) {
          B.second = NewUpper;
          Changed = true;
        }
        continue;
      }
      auto &L = BoundsOf(SC.Lhs);
      auto &R = BoundsOf(SC.Rhs);
      LatticeElem NewLower = Lat.join(R.first, L.first);
      LatticeElem NewUpper = Lat.meet(L.second, R.second);
      if (NewLower != R.first) {
        R.first = NewLower;
        Changed = true;
      }
      if (NewUpper != L.second) {
        L.second = NewUpper;
        Changed = true;
      }
    }
  }

  // Pointer capabilities: only direct mentions (flat model).
  std::set<TypeVariable> PointerVars;
  std::map<TypeVariable, DerivedTypeVariable> PointeeOf;
  for (const DerivedTypeVariable &D : C.mentionedDtvs()) {
    if (D.size() < 1)
      continue;
    for (size_t I = 0; I < D.size(); ++I) {
      Label L = D.labels()[I];
      if (L.isLoad() || L.isStore()) {
        DerivedTypeVariable Base = D.prefix(I);
        if (Base.isBaseOnly()) {
          PointerVars.insert(Base.base());
          if (I + 2 == D.size())
            PointeeOf.emplace(Base.base(), D);
        }
      }
    }
  }

  auto SlotFor = [&](const DerivedTypeVariable &D) {
    BaselineSlot S;
    auto It = Bounds.find(D);
    if (It != Bounds.end()) {
      S.Lower = It->second.first;
      S.Upper = It->second.second;
    }
    return S;
  };

  // TIE's display policy: prefer the upper bound when informative, else
  // the lower bound.
  auto TypeFor = [&](BaselineSlot &S, bool IsPointerVar,
                     const DerivedTypeVariable *Pointee) {
    if (IsPointerVar) {
      S.Pointer = true;
      CTypeId Inner = Out.Pool.unknownType();
      if (Pointee) {
        BaselineSlot PS = SlotFor(*Pointee);
        LatticeElem Pick = PS.Upper != Lattice::Top ? PS.Upper : PS.Lower;
        if (Pick != Lattice::Top && Pick != Lattice::Bottom) {
          if (Lat.isTag(Pick)) {
            CType T;
            T.K = CType::Kind::Int;
            T.Bits = 32;
            T.Name = Lat.name(Pick);
            Inner = Out.Pool.make(std::move(T));
          } else if (Lat.name(Pick) == "int" || Lat.name(Pick) == "num32") {
            Inner = Out.Pool.intType(32, true);
          } else {
            Inner = Out.Pool.typedefType(Lat.name(Pick), 32);
          }
        }
      }
      S.Type = Out.Pool.pointerTo(Inner);
      return;
    }
    LatticeElem Pick = S.Upper != Lattice::Top ? S.Upper : S.Lower;
    if (Pick == Lattice::Top || Pick == Lattice::Bottom) {
      S.Type = Out.Pool.unknownType();
    } else if (Lat.isTag(Pick)) {
      CType T;
      T.K = CType::Kind::Int;
      T.Bits = 32;
      T.Name = Lat.name(Pick);
      S.Type = Out.Pool.make(std::move(T));
    } else if (Lat.name(Pick) == "int" || Lat.name(Pick) == "num32") {
      S.Type = Out.Pool.intType(32, true);
    } else if (Lat.name(Pick) == "uint") {
      S.Type = Out.Pool.intType(32, false);
    } else if (Lat.name(Pick) == "str") {
      CType Ch;
      Ch.K = CType::Kind::Int;
      Ch.Bits = 8;
      Ch.Name = "char";
      S.Type = Out.Pool.pointerTo(Out.Pool.make(std::move(Ch)));
    } else {
      S.Type = Out.Pool.typedefType(Lat.name(Pick), 32);
    }
  };

  // One shared quotient for flat pointer detection (built once).
  ShapeGraph Shapes(C);
  ConstraintGenerator Gen(Syms, Lat, M);
  for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
    if (M.Funcs[F].IsExternal)
      continue;
    BaselineFunc BF;
    TypeVariable PV = Gen.procVar(F);
    unsigned NumParams = M.Funcs[F].NumStackParams +
                         static_cast<unsigned>(M.Funcs[F].RegParams.size());
    for (unsigned K = 0; K < NumParams; ++K) {
      DerivedTypeVariable D(PV, {Label::in(K)});
      BaselineSlot S = SlotFor(D);
      uint32_t Cls = Shapes.classOf(D);
      bool IsPtr = Cls != ShapeGraph::NoClass && Shapes.isPointerClass(Cls);
      TypeFor(S, IsPtr, nullptr);
      BF.Params.push_back(S);
    }
    BF.HasRet = M.Funcs[F].ReturnsValue;
    if (BF.HasRet) {
      DerivedTypeVariable D(PV, {Label::out()});
      BF.Ret = SlotFor(D);
      uint32_t Cls = Shapes.classOf(D);
      bool IsPtr =
          Cls != ShapeGraph::NoClass && Shapes.isPointerClass(Cls);
      TypeFor(BF.Ret, IsPtr, nullptr);
    }
    Out.Funcs.emplace(F, std::move(BF));
  }
  return Out;
}
