//===- Baselines.h - Unification & interval baselines ---------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two comparison algorithms from the paper's evaluation (§6.5):
///
///  - UnificationInference: a SecondWrite-style engine. The same constraint
///    front end, but subtyping degenerates to unification (the (T,≡) model
///    of §3.5's note) and calls are monomorphic: every callsite shares the
///    callee's variables. This reproduces the over-unification failure
///    modes of §2.5: one bad link poisons whole equivalence classes.
///
///  - IntervalInference: a TIE-style engine. Subtype edges propagate upper
///    and lower bounds over the scalar lattice, with single-level pointer
///    structure, but no polymorphism and no recursive types.
///
/// Both are deliberately faithful to the *published designs* of the
/// comparison systems, not to their closed implementations (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_BASELINE_BASELINES_H
#define RETYPD_BASELINE_BASELINES_H

#include "ctypes/CType.h"
#include "lattice/Lattice.h"
#include "mir/MIR.h"
#include "support/SymbolTable.h"

#include <map>
#include <memory>
#include <vector>

namespace retypd {

/// Per-slot inference output shared by both baselines (and adapted from
/// Retypd's sketches by the evaluation harness).
struct BaselineSlot {
  CTypeId Type = NoCType;
  LatticeElem Lower = Lattice::Bottom;
  LatticeElem Upper = Lattice::Top;
  bool Pointer = false;
  bool IsConst = false;
};

/// Per-function baseline results.
struct BaselineFunc {
  std::vector<BaselineSlot> Params;
  BaselineSlot Ret;
  bool HasRet = false;
};

/// Whole-module baseline results.
struct BaselineResult {
  std::shared_ptr<SymbolTable> Syms;
  CTypePool Pool;
  std::map<uint32_t, BaselineFunc> Funcs;
};

/// SecondWrite-style unification inference.
class UnificationInference {
public:
  explicit UnificationInference(const Lattice &Lat) : Lat(Lat) {}
  BaselineResult run(Module &M);

private:
  const Lattice &Lat;
};

/// TIE-style upper/lower-bound inference.
class IntervalInference {
public:
  explicit IntervalInference(const Lattice &Lat) : Lat(Lat) {}
  BaselineResult run(Module &M);

private:
  const Lattice &Lat;
};

} // namespace retypd

#endif // RETYPD_BASELINE_BASELINES_H
