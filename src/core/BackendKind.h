//===- BackendKind.h - Solver backend identity ----------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend identity enum, split out of core/SolverBackend.h so the
/// data-plane layers (codec, summary cache, store inspection) can tag and
/// key artifacts by backend without depending on the solver headers.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_BACKENDKIND_H
#define RETYPD_CORE_BACKENDKIND_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace retypd {

/// Which solver backend produced (or should produce) an artifact. The
/// numeric values are stable: they participate in cache keys and in the
/// payload tag byte (bit 4), so reordering them would silently invalidate
/// every persisted store.
enum class BackendKind : uint8_t {
  Retypd = 0, ///< saturation + proof trimming (the paper's algorithm)
  BinSub = 1, ///< algebraic subtyping (bisubstitution + polarity)
};

/// Stable lowercase name, as spelled on the CLI (`--backend=<name>`).
const char *backendName(BackendKind K);

/// Parses a CLI/spec spelling. Returns nullopt on unknown names — callers
/// own the did-you-mean/exit-code policy.
std::optional<BackendKind> parseBackendKind(std::string_view Name);

/// All valid spellings, for suggestion lists.
inline constexpr const char *kBackendNames[] = {"retypd", "binsub"};

} // namespace retypd

#endif // RETYPD_CORE_BACKENDKIND_H
