//===- BinSub.cpp - Algebraic-subtyping backend (BinSub) ------------------===//

#include "core/BinSub.h"

#include "core/ShapeGraph.h"

#include "support/Trace.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace retypd;

//===----------------------------------------------------------------------===//
// Phase 1: bisubstitution-based simplification
//===----------------------------------------------------------------------===//

namespace {

/// Decomposition budget: derived constraints beyond this multiple of the
/// input (plus a flat allowance for tiny sets) are not generated. Capping
/// loses precision, never soundness — an underived constraint weakens the
/// scheme the same way retypd's proof trimming drops unused paths.
constexpr size_t kDecomposeSlack = 64;
constexpr size_t kDecomposeFactor = 4;

} // namespace

TypeScheme BinSubBackend::simplify(
    const ConstraintSet &C, TypeVariable ProcVar,
    const std::unordered_set<TypeVariable> &Interesting) const {
  trace::TraceSpan Span("binsub.simplify", "backend");
  if (Span.active()) {
    Span.Args.Backend = "binsub";
    Span.Args.Constraints = static_cast<int64_t>(C.size());
  }
  auto IsInteresting = [&](TypeVariable V) {
    return V.isConstant() || V == ProcVar || Interesting.count(V) != 0;
  };

  // ---- Capability census ------------------------------------------------
  // ext(d): the labels d is known to carry, from every mentioned DTV and
  // all of its prefixes. This is the "shape" information decomposition
  // consults; it is prefix-closed by construction.
  std::unordered_map<DerivedTypeVariable, std::vector<Label>> Ext;
  size_t MaxWord = 0;
  auto NoteDtv = [&](const DerivedTypeVariable &D) {
    MaxWord = std::max(MaxWord, D.size());
    for (size_t I = 0; I < D.size(); ++I) {
      std::vector<Label> &Ls = Ext[D.prefix(I)];
      Label L = D.labels()[I];
      if (std::find(Ls.begin(), Ls.end(), L) == Ls.end())
        Ls.push_back(L);
    }
  };
  for (const DerivedTypeVariable &D : C.mentionedDtvs())
    NoteDtv(D);

  // ---- Polarity-directed decomposition -----------------------------------
  // Worklist over subtype constraints in canonical input order; each
  // `a <= b` spawns `a.l <= b.l` for covariant l and `b.l <= a.l` for
  // contravariant l, for every label either side is known to carry. This
  // is S-FIELD⊕/S-FIELD⊖ run forward over atomic bounds — no transducer.
  std::vector<SubtypeConstraint> Subs(C.subtypes().begin(),
                                      C.subtypes().end());
  std::unordered_set<SubtypeConstraint> Seen(Subs.begin(), Subs.end());
  const size_t Budget = Subs.size() * kDecomposeFactor + kDecomposeSlack;
  for (size_t I = 0; I < Subs.size(); ++I) {
    if (Subs.size() >= Budget)
      break;
    // Copy: Subs grows below and would invalidate a reference.
    const SubtypeConstraint SC = Subs[I];
    if (SC.Lhs.base().isConstant() || SC.Rhs.base().isConstant())
      continue; // lattice constants carry no capabilities
    if (SC.Lhs.size() >= MaxWord || SC.Rhs.size() >= MaxWord)
      continue; // never derive words longer than any the program mentions
    std::vector<Label> Ls;
    for (const DerivedTypeVariable *D : {&SC.Lhs, &SC.Rhs}) {
      auto It = Ext.find(*D);
      if (It == Ext.end())
        continue;
      for (Label L : It->second)
        if (std::find(Ls.begin(), Ls.end(), L) == Ls.end())
          Ls.push_back(L);
    }
    std::sort(Ls.begin(), Ls.end());
    for (Label L : Ls) {
      SubtypeConstraint Derived =
          L.variance() == Variance::Covariant
              ? SubtypeConstraint{SC.Lhs.extended(L), SC.Rhs.extended(L)}
              : SubtypeConstraint{SC.Rhs.extended(L), SC.Lhs.extended(L)};
      if (Derived.Lhs == Derived.Rhs || !Seen.insert(Derived).second)
        continue;
      NoteDtv(Derived.Lhs);
      NoteDtv(Derived.Rhs);
      Subs.push_back(std::move(Derived));
      if (Subs.size() >= Budget)
        break;
    }
  }

  // Variables used in additive constraints cannot be eliminated.
  std::unordered_set<TypeVariable> Protected;
  for (const AddSubConstraint &AC : C.addSubs())
    for (const DerivedTypeVariable *D : {&AC.X, &AC.Y, &AC.Z})
      Protected.insert(D->base());

  // ---- Bisubstitution elimination ----------------------------------------
  // An uninteresting variable with only bare occurrences is eliminated by
  // substituting its lower bounds into its upper bounds. Victim order is
  // first occurrence in the (deterministic) constraint list.
  for (unsigned Iter = 0; Iter < Opts.MaxTidyIterations; ++Iter) {
    std::unordered_map<TypeVariable, unsigned> Extended;
    std::unordered_map<TypeVariable, unsigned> AsLhs, AsRhs;
    std::vector<TypeVariable> Order;
    std::unordered_set<TypeVariable> Noted;
    for (const SubtypeConstraint &SC : Subs) {
      for (const DerivedTypeVariable *D : {&SC.Lhs, &SC.Rhs}) {
        TypeVariable B = D->base();
        if (IsInteresting(B))
          continue;
        if (Noted.insert(B).second)
          Order.push_back(B);
        if (!D->isBaseOnly())
          ++Extended[B];
      }
      if (SC.Lhs.isBaseOnly())
        ++AsLhs[SC.Lhs.base()];
      if (SC.Rhs.isBaseOnly())
        ++AsRhs[SC.Rhs.base()];
    }

    TypeVariable Victim;
    for (TypeVariable V : Order) {
      if (Protected.count(V) || Extended.count(V))
        continue;
      size_t In = AsRhs.count(V) ? AsRhs[V] : 0;
      size_t Niche = AsLhs.count(V) ? AsLhs[V] : 0;
      if (In * Niche <= In + Niche + Opts.BloatSlack) {
        Victim = V;
        break;
      }
    }
    if (!Victim.isValid())
      break;

    std::vector<SubtypeConstraint> Next;
    std::vector<DerivedTypeVariable> Ins, Outs;
    for (const SubtypeConstraint &SC : Subs) {
      bool IsIn = SC.Rhs.isBaseOnly() && SC.Rhs.base() == Victim;
      bool IsOut = SC.Lhs.isBaseOnly() && SC.Lhs.base() == Victim;
      if (IsIn && IsOut)
        continue; // v <= v
      if (IsIn)
        Ins.push_back(SC.Lhs);
      else if (IsOut)
        Outs.push_back(SC.Rhs);
      else
        Next.push_back(SC);
    }
    for (const DerivedTypeVariable &A : Ins)
      for (const DerivedTypeVariable &B : Outs)
        if (A != B)
          Next.push_back(SubtypeConstraint{A, B});
    Subs = std::move(Next);
  }

  // ---- Interesting-connectivity prune ------------------------------------
  // Surviving uninteresting variables that never (transitively, through
  // shared constraints) relate to an interesting base contribute nothing
  // to the scheme's interface; drop the constraints that only mention
  // them. This plays the role of retypd's source/sink co-reachability.
  {
    std::unordered_set<TypeVariable> Marked;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const SubtypeConstraint &SC : Subs) {
        TypeVariable L = SC.Lhs.base(), R = SC.Rhs.base();
        bool LOk = IsInteresting(L) || Marked.count(L);
        bool ROk = IsInteresting(R) || Marked.count(R);
        if (LOk && !ROk && Marked.insert(R).second)
          Changed = true;
        if (ROk && !LOk && Marked.insert(L).second)
          Changed = true;
      }
    }
    for (const AddSubConstraint &AC : C.addSubs())
      for (const DerivedTypeVariable *D : {&AC.X, &AC.Y, &AC.Z})
        Marked.insert(D->base());
    std::vector<SubtypeConstraint> Kept;
    Kept.reserve(Subs.size());
    for (const SubtypeConstraint &SC : Subs) {
      TypeVariable L = SC.Lhs.base(), R = SC.Rhs.base();
      if ((IsInteresting(L) || Marked.count(L)) &&
          (IsInteresting(R) || Marked.count(R)))
        Kept.push_back(SC);
    }
    Subs = std::move(Kept);
  }

  // ---- Existential renaming ----------------------------------------------
  // Same convention as the retypd backend: fresh names are scoped by the
  // procedure and numbered by a call-local counter, so a scheme's text
  // depends only on its input constraint set.
  const std::string FreshPrefix = "τ$" + Syms.name(ProcVar.symbol()) + "$";
  unsigned FreshCounter = 0;
  std::unordered_map<TypeVariable, TypeVariable> Renamed;
  std::vector<TypeVariable> Existentials;
  auto Rename = [&](const DerivedTypeVariable &D) {
    if (IsInteresting(D.base()))
      return D;
    auto It = Renamed.find(D.base());
    if (It == Renamed.end()) {
      TypeVariable Fresh = TypeVariable::var(
          Syms.intern(FreshPrefix + std::to_string(FreshCounter++)));
      It = Renamed.emplace(D.base(), Fresh).first;
      Existentials.push_back(Fresh);
    }
    return DerivedTypeVariable(It->second,
                               std::vector<Label>(D.labels().begin(),
                                                  D.labels().end()));
  };

  ConstraintSet Out;
  for (const SubtypeConstraint &SC : Subs) {
    DerivedTypeVariable A = Rename(SC.Lhs), B = Rename(SC.Rhs);
    if (A != B)
      Out.addSubtype(std::move(A), std::move(B));
  }
  // Keep capability declarations rooted at the procedure variable: the
  // explicit ones, plus every proc-rooted DTV the constraints mention.
  for (const DerivedTypeVariable &V : C.vars())
    if (V.base() == ProcVar)
      Out.addVar(V);
  for (const SubtypeConstraint &SC : C.subtypes())
    for (const DerivedTypeVariable *D : {&SC.Lhs, &SC.Rhs})
      if (D->base() == ProcVar)
        Out.addVar(*D);
  for (const AddSubConstraint &AC : C.addSubs())
    Out.addAddSub(AddSubConstraint{AC.IsSub, Rename(AC.X), Rename(AC.Y),
                                   Rename(AC.Z)});

  TypeScheme Scheme;
  Scheme.ProcVar = ProcVar;
  Scheme.Existentials = std::move(Existentials);
  Scheme.Constraints = std::move(Out);
  return Scheme;
}

//===----------------------------------------------------------------------===//
// Phase 2: shape-local sketch solving
//===----------------------------------------------------------------------===//

namespace {

/// Per-shape-class decoration, mirroring the retypd solver's ClassInfo so
/// sketch extraction renders identically when the bounds agree.
struct ClassInfo {
  LatticeElem Lower = Lattice::Bottom;
  LatticeElem Upper = Lattice::Top;
  bool HasLower = false;
  bool HasUpper = false;
  bool PointerLike = false;
  bool IntegerLike = false;
  std::vector<LatticeElem> UpperList;
};

} // namespace

SketchSolution BinSubBackend::solve(const ConstraintSet &C,
                                    std::span<const TypeVariable> Wanted) const {
  trace::TraceSpan Span("binsub.solve", "backend");
  if (Span.active()) {
    Span.Args.Backend = "binsub";
    Span.Args.Constraints = static_cast<int64_t>(C.size());
  }
  ShapeGraph Shapes(C);

  // ---- Lattice bounds, attached class-locally ----------------------------
  // The Steensgaard quotient has already identified the two sides of every
  // variable-variable constraint, so transitive bound flow is subsumed by
  // class membership: a constant bound lands on the (shared) class of the
  // variable it constrains. No saturated-graph path queries.
  std::unordered_map<uint32_t, ClassInfo> Info;
  for (const SubtypeConstraint &SC : C.subtypes()) {
    bool LConst = SC.Lhs.base().isConstant() && SC.Lhs.isBaseOnly();
    bool RConst = SC.Rhs.base().isConstant() && SC.Rhs.isBaseOnly();
    if (LConst == RConst)
      continue; // var <= var: handled by the quotient; κ <= κ: inert
    if (LConst) {
      uint32_t Cls = Shapes.classOf(SC.Rhs);
      if (Cls == ShapeGraph::NoClass)
        continue;
      LatticeElem K = SC.Lhs.base().latticeElem();
      ClassInfo &CI = Info[Cls];
      CI.Lower = CI.HasLower ? Lat.join(CI.Lower, K) : K;
      CI.HasLower = true;
    } else {
      uint32_t Cls = Shapes.classOf(SC.Lhs);
      if (Cls == ShapeGraph::NoClass)
        continue;
      LatticeElem K = SC.Rhs.base().latticeElem();
      ClassInfo &CI = Info[Cls];
      CI.Upper = CI.HasUpper ? Lat.meet(CI.Upper, K) : K;
      CI.HasUpper = true;
      if (std::find(CI.UpperList.begin(), CI.UpperList.end(), K) ==
          CI.UpperList.end())
        CI.UpperList.push_back(K);
    }
  }

  // ---- Pointer/integer classification (Figure 13) ------------------------
  auto ClassOfDtv = [&](const DerivedTypeVariable &D) {
    return Shapes.classOf(D);
  };
  for (const auto &Entry : Shapes.nodes()) {
    uint32_t Cls = Shapes.canonical(Entry.second);
    if (Shapes.isPointerClass(Cls))
      Info[Cls].PointerLike = true;
  }
  for (auto &[Cls, CI] : Info) {
    if (CI.HasLower && CI.Lower != Lattice::Bottom && Lat.isNumeric(CI.Lower))
      CI.IntegerLike = true;
    if (CI.HasUpper && CI.Upper != Lattice::Top && Lat.isNumeric(CI.Upper))
      CI.IntegerLike = true;
  }
  bool Changed = true;
  auto Mark = [&](uint32_t Cls, bool Ptr, bool Int) {
    if (Cls == ShapeGraph::NoClass)
      return;
    ClassInfo &CI = Info[Cls];
    if (Ptr && !CI.PointerLike) {
      CI.PointerLike = true;
      Changed = true;
    }
    if (Int && !CI.IntegerLike) {
      CI.IntegerLike = true;
      Changed = true;
    }
  };
  auto IsPtr = [&](uint32_t Cls) {
    return Cls != ShapeGraph::NoClass && Info.count(Cls) &&
           Info[Cls].PointerLike;
  };
  auto IsInt = [&](uint32_t Cls) {
    return Cls != ShapeGraph::NoClass && Info.count(Cls) &&
           Info[Cls].IntegerLike;
  };
  while (Changed) {
    Changed = false;
    for (const AddSubConstraint &AC : C.addSubs()) {
      uint32_t X = ClassOfDtv(AC.X), Y = ClassOfDtv(AC.Y),
               Z = ClassOfDtv(AC.Z);
      if (!AC.IsSub) {
        if (IsInt(X) && IsInt(Y))
          Mark(Z, false, true);
        if (IsPtr(X)) {
          Mark(Z, true, false);
          Mark(Y, false, true);
        }
        if (IsPtr(Y)) {
          Mark(Z, true, false);
          Mark(X, false, true);
        }
        if (IsInt(Z)) {
          Mark(X, false, true);
          Mark(Y, false, true);
        }
        if (IsPtr(Z) && IsInt(X))
          Mark(Y, true, false);
        if (IsPtr(Z) && IsInt(Y))
          Mark(X, true, false);
      } else {
        if (IsInt(X) && IsInt(Y))
          Mark(Z, false, true);
        if (IsPtr(X) && IsInt(Y))
          Mark(Z, true, false);
        if (IsPtr(X) && IsPtr(Y))
          Mark(Z, false, true);
        if (IsPtr(Z)) {
          Mark(X, true, false);
          Mark(Y, false, true);
        }
        if (IsInt(Z) && IsPtr(X))
          Mark(Y, true, false);
      }
    }
  }
  for (const AddSubConstraint &AC : C.addSubs()) {
    uint32_t X = ClassOfDtv(AC.X), Y = ClassOfDtv(AC.Y), Z = ClassOfDtv(AC.Z);
    if (!IsPtr(X) && !IsPtr(Y) && !IsPtr(Z)) {
      Mark(X, false, true);
      Mark(Y, false, true);
      Mark(Z, false, true);
    }
  }
  if (auto Num32 = Lat.lookup("num32")) {
    for (auto &[Cls, CI] : Info) {
      if (CI.IntegerLike && !CI.PointerLike && !CI.HasUpper) {
        CI.Upper = *Num32;
        CI.HasUpper = true;
      }
    }
  }

  // ---- Sketch extraction (same rendering as the retypd solver) -----------
  SketchSolution Solution;
  for (TypeVariable V : Wanted) {
    uint32_t Root = Shapes.classOf(DerivedTypeVariable(V));
    Sketch S;
    if (Root == ShapeGraph::NoClass) {
      Solution.Sketches.emplace(V, std::move(S));
      continue;
    }
    std::map<std::pair<uint32_t, Variance>, uint32_t> States;
    std::deque<std::pair<uint32_t, Variance>> Work;
    auto Decorate = [&](uint32_t SketchNode, uint32_t Cls, Variance Var) {
      Sketch::Node &N = S.node(SketchNode);
      auto It = Info.find(Cls);
      if (It == Info.end()) {
        N.Mark = Lattice::Top;
        return;
      }
      const ClassInfo &CI = It->second;
      if (Var == Variance::Covariant)
        N.Mark = CI.HasLower ? CI.Lower
                             : (CI.HasUpper ? CI.Upper : Lattice::Top);
      else
        N.Mark = CI.HasUpper ? CI.Upper
                             : (CI.HasLower ? CI.Lower : Lattice::Top);
      if (CI.HasLower)
        N.Lower = CI.Lower;
      if (CI.HasUpper)
        N.Upper = CI.Upper;
      N.PointerLike = CI.PointerLike;
      N.IntegerLike = CI.IntegerLike;
      if (CI.HasUpper && CI.Upper == Lattice::Bottom &&
          CI.UpperList.size() > 1) {
        for (LatticeElem E : CI.UpperList) {
          bool Minimal = true;
          for (LatticeElem F : CI.UpperList)
            if (F != E && Lat.leq(F, E))
              Minimal = false;
          if (Minimal)
            N.Conflicts.push_back(E);
        }
      }
    };

    auto RootKey = std::make_pair(Root, Variance::Covariant);
    States[RootKey] = S.root();
    Decorate(S.root(), Root, Variance::Covariant);
    Work.push_back(RootKey);
    while (!Work.empty()) {
      auto [Cls, Var] = Work.front();
      Work.pop_front();
      uint32_t From = States[{Cls, Var}];
      for (const auto &[L, RawChild] : Shapes.childrenOf(Cls)) {
        uint32_t Child = Shapes.canonical(RawChild);
        Variance CV = compose(Var, L.variance());
        auto Key = std::make_pair(Child, CV);
        auto It = States.find(Key);
        if (It == States.end()) {
          uint32_t Id = S.addNode();
          Decorate(Id, Child, CV);
          It = States.emplace(Key, Id).first;
          Work.push_back(Key);
        }
        S.addEdge(From, L, It->second);
      }
    }
    Solution.Sketches.emplace(V, std::move(S));
  }
  return Solution;
}
