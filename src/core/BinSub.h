//===- BinSub.h - Algebraic-subtyping backend (BinSub) --------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A second `SolverBackend` implementing the BinSub recasting of retypd
/// (arXiv:2409.01841): machine-code type inference as algebraic subtyping.
/// Where the retypd backend saturates a transducer graph (Algorithm D.2)
/// and trims it against the elementary-proof discipline, BinSub works
/// directly on atomic subtyping bounds:
///
///  - **Polarity-directed decomposition**: a constraint `a <= b` is
///    decomposed along the capability labels the two sides are known to
///    carry — covariant labels descend in the same orientation
///    (`a.l <= b.l`), contravariant labels flip (`b.l <= a.l`). This
///    replaces the S-FIELD⊕/S-FIELD⊖ closure that saturation performs
///    through forget/recall edge pairs.
///  - **Bisubstitution-based elimination**: an uninteresting variable that
///    only ever occurs bare is eliminated by substituting its lower
///    bounds into its upper bounds (every `a <= v`, `v <= b` pair becomes
///    `a <= b`), the finite-state analogue of Dolan-style bisubstitution.
///    Variables that occur under labels survive as existentials with the
///    same deterministic `τ$proc$N` naming the retypd backend uses.
///  - **Shape-local bound propagation** (phase 2): sketches take their
///    structure from the Steensgaard shape quotient (Theorem 3.1, shared
///    with retypd — BinSub keeps the same shape theory) and their lattice
///    decorations from type constants attached directly to shape classes,
///    with the Figure-13 ADD/SUB pointer/integer fixpoint on top. No
///    saturated-graph path queries are run.
///
/// Both entry points are pure functions of their inputs and deterministic
/// (fresh names derive from the procedure name and a call-local counter),
/// so BinSub artifacts cache, replay, and parallelize exactly like retypd
/// ones — under backend-tagged keys.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_BINSUB_H
#define RETYPD_CORE_BINSUB_H

#include "core/SolverBackend.h"

namespace retypd {

/// BinSub-style algebraic-subtyping backend.
class BinSubBackend : public SolverBackend {
public:
  BinSubBackend(SymbolTable &Syms, const Lattice &Lat,
                SimplifyOptions Opts = SimplifyOptions())
      : Syms(Syms), Lat(Lat), Opts(Opts) {}

  BackendKind kind() const override { return BackendKind::BinSub; }

  TypeScheme
  simplify(const ConstraintSet &C, TypeVariable ProcVar,
           const std::unordered_set<TypeVariable> &Interesting) const override;

  SketchSolution solve(const ConstraintSet &C,
                       std::span<const TypeVariable> Wanted) const override;

private:
  SymbolTable &Syms;
  const Lattice &Lat;
  SimplifyOptions Opts;
};

} // namespace retypd

#endif // RETYPD_CORE_BINSUB_H
