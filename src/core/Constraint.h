//===- Constraint.h - Subtype and additive constraints --------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constraints of the type system (paper Definition 3.3 and Appendix A.6):
///
///   X <= Y          subtype constraint between derived type variables
///   var X           existence of a derived type variable (a capability)
///   Add(X, Y; Z)    Z = X + Y, used to propagate pointer/integer facts
///   Sub(X, Y; Z)    Z = X - Y
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_CONSTRAINT_H
#define RETYPD_CORE_CONSTRAINT_H

#include "core/DerivedTypeVariable.h"

#include <string>

namespace retypd {

/// X <= Y between derived type variables.
struct SubtypeConstraint {
  DerivedTypeVariable Lhs;
  DerivedTypeVariable Rhs;

  std::string str(const SymbolTable &Syms, const Lattice &Lat) const;

  friend bool operator==(const SubtypeConstraint &A,
                         const SubtypeConstraint &B) {
    return A.Lhs == B.Lhs && A.Rhs == B.Rhs;
  }
  friend bool operator<(const SubtypeConstraint &A,
                        const SubtypeConstraint &B) {
    if (A.Lhs != B.Lhs)
      return A.Lhs < B.Lhs;
    return A.Rhs < B.Rhs;
  }
};

/// Add(X, Y; Z) or Sub(X, Y; Z) — the three-place additive constraints of
/// Appendix A.2/A.6, used to conditionally propagate pointerness.
struct AddSubConstraint {
  bool IsSub = false;
  DerivedTypeVariable X, Y, Z; // Z is the result.

  std::string str(const SymbolTable &Syms, const Lattice &Lat) const;

  friend bool operator==(const AddSubConstraint &A,
                         const AddSubConstraint &B) {
    return A.IsSub == B.IsSub && A.X == B.X && A.Y == B.Y && A.Z == B.Z;
  }
};

} // namespace retypd

template <> struct std::hash<retypd::SubtypeConstraint> {
  size_t operator()(const retypd::SubtypeConstraint &C) const noexcept {
    return C.Lhs.hashValue() * 2654435761u ^ C.Rhs.hashValue();
  }
};

#endif // RETYPD_CORE_CONSTRAINT_H
