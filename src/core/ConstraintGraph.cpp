//===- ConstraintGraph.cpp - Pushdown-system encoding of C ----------------===//

#include "core/ConstraintGraph.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace retypd;

static inline uint64_t nodeKey(DtvId Dtv, Variance Tag) {
  return (static_cast<uint64_t>(Dtv) << 1) |
         (Tag == Variance::Contravariant ? 1 : 0);
}

uint32_t ConstraintGraph::internLabel(Label L) {
  auto [It, Inserted] =
      LabelIdx.try_emplace(L.raw(), static_cast<uint32_t>(LabelAt.size()));
  if (Inserted)
    LabelAt.push_back(L);
  return It->second;
}

GraphNodeId ConstraintGraph::lookup(const DerivedTypeVariable &Dtv,
                                    Variance Tag) const {
  DtvId Id = Dtvs.find(Dtv);
  if (Id == DtvInterner::NoDtv)
    return NoNode;
  auto It = NodeIndex.find(nodeKey(Id, Tag));
  return It == NodeIndex.end() ? NoNode : It->second;
}

GraphNodeId ConstraintGraph::getOrCreateNode(const DerivedTypeVariable &Dtv,
                                             Variance Tag) {
  DtvId Interned = Dtvs.intern(Dtv);
  auto [It, Inserted] =
      NodeIndex.try_emplace(nodeKey(Interned, Tag), 0);
  if (!Inserted)
    return It->second;

  GraphNodeId Id = static_cast<GraphNodeId>(Nodes.size());
  It->second = Id;
  Nodes.push_back(GraphNode{Dtv, Tag});
  NodeDtv.push_back(Interned);
  Out.emplace_back();
  EdgeKeys.emplace_back();

  // Recursively ensure the prefix chain exists and connect it with
  // recall/forget edges. Stripping the last label ℓ composes the tag with
  // ⟨ℓ⟩ (see file header).
  if (!Dtv.isBaseOnly()) {
    Label Last = Dtv.lastLabel();
    Variance ParentTag = compose(Tag, Last.variance());
    GraphNodeId Parent = getOrCreateNode(Dtv.parent(), ParentTag);
    addEdge(Parent, Id, EdgeKind::Recall, Last);
    addEdge(Id, Parent, EdgeKind::Forget, Last);
  }
  return Id;
}

bool ConstraintGraph::addEdge(GraphNodeId From, GraphNodeId To, EdgeKind Kind,
                              Label L) {
  uint64_t Key = (static_cast<uint64_t>(To) << 32) |
                 (static_cast<uint64_t>(internLabel(L)) << 2) |
                 static_cast<uint64_t>(Kind);
  if (!EdgeKeys[From].insert(Key).second)
    return false;
  Out[From].push_back(GraphEdge{To, Kind, L});
  return true;
}

ConstraintGraph::ConstraintGraph(const ConstraintSet &C) {
  for (const SubtypeConstraint &SC : C.subtypes()) {
    GraphNodeId LhsCo = getOrCreateNode(SC.Lhs, Variance::Covariant);
    GraphNodeId RhsCo = getOrCreateNode(SC.Rhs, Variance::Covariant);
    GraphNodeId LhsContra = getOrCreateNode(SC.Lhs, Variance::Contravariant);
    GraphNodeId RhsContra = getOrCreateNode(SC.Rhs, Variance::Contravariant);
    addEdge(LhsCo, RhsCo, EdgeKind::One, Label());
    addEdge(RhsContra, LhsContra, EdgeKind::One, Label());
  }
  // Capability declarations create nodes (and their prefix chains) so that
  // recall/forget edges exist even without subtype constraints on them.
  for (const DerivedTypeVariable &V : C.vars()) {
    getOrCreateNode(V, Variance::Covariant);
    getOrCreateNode(V, Variance::Contravariant);
  }
}

void ConstraintGraph::saturate() {
  if (Saturated)
    return;
  Saturated = true;

  const size_t N = Nodes.size();

  // Reaching-forget sets: R[n] holds (ℓ, z) if there is a path
  // z --forget ℓ--> m --1*--> n. Entries pack as (labelIdx<<32) | z.
  std::vector<std::unordered_set<uint64_t>> R(N);
  auto pack = [](uint32_t LabelIdx, GraphNodeId Z) {
    return (static_cast<uint64_t>(LabelIdx) << 32) | Z;
  };

  const uint32_t LoadIdx = internLabel(Label::load());
  const uint32_t StoreIdx = internLabel(Label::store());

  // Covariant/contravariant twin of each node (no nodes are created during
  // saturation, so this is stable).
  std::vector<GraphNodeId> Twin(N, NoNode);
  for (GraphNodeId Node = 0; Node < N; ++Node) {
    Variance Other = Nodes[Node].Tag == Variance::Covariant
                         ? Variance::Contravariant
                         : Variance::Covariant;
    auto It = NodeIndex.find(nodeKey(NodeDtv[Node], Other));
    if (It != NodeIndex.end())
      Twin[Node] = It->second;
  }

  // Worklist of nodes whose R set gained entries (or that gained a new
  // outgoing 1-edge) since they were last expanded.
  std::deque<GraphNodeId> Work;
  std::vector<bool> InWork(N, false);
  auto push = [&](GraphNodeId Node) {
    if (!InWork[Node]) {
      InWork[Node] = true;
      Work.push_back(Node);
    }
  };

  // Seed from forget edges.
  for (GraphNodeId Node = 0; Node < N; ++Node)
    for (const GraphEdge &E : Out[Node])
      if (E.Kind == EdgeKind::Forget)
        if (R[E.To].insert(pack(internLabel(E.L), Node)).second)
          push(E.To);

  while (!Work.empty()) {
    GraphNodeId Node = Work.front();
    Work.pop_front();
    InWork[Node] = false;
    if (R[Node].empty())
      continue;

    // Lazy S-POINTER: a pending .store at a contravariant node becomes a
    // pending .load at its covariant twin, and vice versa.
    if (Nodes[Node].Tag == Variance::Contravariant &&
        Twin[Node] != NoNode) {
      GraphNodeId T = Twin[Node];
      // Collect first: inserting into R[T] while iterating R[Node] is fine
      // (different sets) unless T == Node, which cannot happen.
      for (uint64_t Entry : std::vector<uint64_t>(R[Node].begin(),
                                                  R[Node].end())) {
        uint32_t L = static_cast<uint32_t>(Entry >> 32);
        GraphNodeId Z = static_cast<GraphNodeId>(Entry);
        if (L == StoreIdx) {
          if (R[T].insert(pack(LoadIdx, Z)).second)
            push(T);
        } else if (L == LoadIdx) {
          if (R[T].insert(pack(StoreIdx, Z)).second)
            push(T);
        }
      }
    }

    // Snapshot because the consume step below can add 1-edges out of this
    // very node (when Entry.second == Node), growing Out[Node].
    std::vector<uint64_t> Entries(R[Node].begin(), R[Node].end());
    const size_t NumEdges = Out[Node].size();
    for (size_t EI = 0; EI < NumEdges; ++EI) {
      const GraphEdge E = Out[Node][EI];
      switch (E.Kind) {
      case EdgeKind::One:
        // Propagate along 1-edges.
        for (uint64_t Entry : Entries)
          if (R[E.To].insert(Entry).second)
            push(E.To);
        break;
      case EdgeKind::Recall: {
        // Consume: a pending forget met by a matching recall yields a
        // shortcut 1-edge from the forget's origin to the recall's target.
        uint32_t WantIdx = internLabel(E.L);
        for (uint64_t Entry : Entries) {
          if (static_cast<uint32_t>(Entry >> 32) != WantIdx)
            continue;
          GraphNodeId Z = static_cast<GraphNodeId>(Entry);
          if (addEdge(Z, E.To, EdgeKind::One, Label())) {
            ++SaturationEdges;
            // The new 1-edge must carry Z's pending forgets onward.
            if (!R[Z].empty())
              push(Z);
          }
        }
        break;
      }
      case EdgeKind::Forget:
        break;
      }
    }
  }
}

std::vector<GraphNodeId>
ConstraintGraph::oneReachableFrom(GraphNodeId From) const {
  std::vector<GraphNodeId> Result;
  std::vector<bool> Seen(Nodes.size(), false);
  std::deque<GraphNodeId> Work{From};
  Seen[From] = true;
  while (!Work.empty()) {
    GraphNodeId N = Work.front();
    Work.pop_front();
    Result.push_back(N);
    for (const GraphEdge &E : Out[N]) {
      if (E.Kind != EdgeKind::One || Seen[E.To])
        continue;
      Seen[E.To] = true;
      Work.push_back(E.To);
    }
  }
  return Result;
}

std::string ConstraintGraph::str(const SymbolTable &Syms,
                                 const Lattice &Lat) const {
  std::string S;
  for (GraphNodeId N = 0; N < Nodes.size(); ++N) {
    for (const GraphEdge &E : Out[N]) {
      S += Nodes[N].Dtv.str(Syms, Lat);
      S += Nodes[N].Tag == Variance::Covariant ? ".+" : ".-";
      switch (E.Kind) {
      case EdgeKind::One:
        S += " --1--> ";
        break;
      case EdgeKind::Recall:
        S += " --recall " + E.L.str() + "--> ";
        break;
      case EdgeKind::Forget:
        S += " --forget " + E.L.str() + "--> ";
        break;
      }
      S += Nodes[E.To].Dtv.str(Syms, Lat);
      S += Nodes[E.To].Tag == Variance::Covariant ? ".+" : ".-";
      S += '\n';
    }
  }
  return S;
}
