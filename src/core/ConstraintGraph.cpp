//===- ConstraintGraph.cpp - Pushdown-system encoding of C ----------------===//

#include "core/ConstraintGraph.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace retypd;

static size_t hashNode(const DerivedTypeVariable &Dtv, Variance Tag) {
  return Dtv.hashValue() * 2 + (Tag == Variance::Contravariant ? 1 : 0);
}

GraphNodeId ConstraintGraph::lookup(const DerivedTypeVariable &Dtv,
                                    Variance Tag) const {
  auto It = Index.find(hashNode(Dtv, Tag));
  if (It == Index.end())
    return NoNode;
  for (GraphNodeId Id : It->second)
    if (Nodes[Id].Tag == Tag && Nodes[Id].Dtv == Dtv)
      return Id;
  return NoNode;
}

GraphNodeId ConstraintGraph::getOrCreateNode(const DerivedTypeVariable &Dtv,
                                             Variance Tag) {
  GraphNodeId Existing = lookup(Dtv, Tag);
  if (Existing != NoNode)
    return Existing;

  GraphNodeId Id = static_cast<GraphNodeId>(Nodes.size());
  Nodes.push_back(GraphNode{Dtv, Tag});
  Out.emplace_back();
  Index[hashNode(Dtv, Tag)].push_back(Id);

  // Recursively ensure the prefix chain exists and connect it with
  // recall/forget edges. Stripping the last label ℓ composes the tag with
  // ⟨ℓ⟩ (see file header).
  if (!Dtv.isBaseOnly()) {
    Label Last = Dtv.lastLabel();
    Variance ParentTag = compose(Tag, Last.variance());
    GraphNodeId Parent = getOrCreateNode(Dtv.parent(), ParentTag);
    addEdge(Parent, Id, EdgeKind::Recall, Last);
    addEdge(Id, Parent, EdgeKind::Forget, Last);
  }
  return Id;
}

bool ConstraintGraph::addEdge(GraphNodeId From, GraphNodeId To, EdgeKind Kind,
                              Label L) {
  auto Key = std::make_tuple(From, To, static_cast<uint8_t>(Kind), L.raw());
  if (!EdgeSet.insert(Key).second)
    return false;
  Out[From].push_back(GraphEdge{To, Kind, L});
  return true;
}

ConstraintGraph::ConstraintGraph(const ConstraintSet &C) {
  for (const SubtypeConstraint &SC : C.subtypes()) {
    GraphNodeId LhsCo = getOrCreateNode(SC.Lhs, Variance::Covariant);
    GraphNodeId RhsCo = getOrCreateNode(SC.Rhs, Variance::Covariant);
    GraphNodeId LhsContra = getOrCreateNode(SC.Lhs, Variance::Contravariant);
    GraphNodeId RhsContra = getOrCreateNode(SC.Rhs, Variance::Contravariant);
    addEdge(LhsCo, RhsCo, EdgeKind::One, Label());
    addEdge(RhsContra, LhsContra, EdgeKind::One, Label());
  }
  // Capability declarations create nodes (and their prefix chains) so that
  // recall/forget edges exist even without subtype constraints on them.
  for (const DerivedTypeVariable &V : C.vars()) {
    getOrCreateNode(V, Variance::Covariant);
    getOrCreateNode(V, Variance::Contravariant);
  }
}

void ConstraintGraph::saturate() {
  if (Saturated)
    return;
  Saturated = true;

  // Reaching-forget sets: R[n] holds (ℓ, z) if there is a path
  // z --forget ℓ--> m --1*--> n.
  std::vector<std::set<std::pair<uint64_t, GraphNodeId>>> R(Nodes.size());

  // Label decoding helper for the lazy S-POINTER clause.
  const uint64_t LoadRaw = Label::load().raw();
  const uint64_t StoreRaw = Label::store().raw();

  // Seed from forget edges.
  for (GraphNodeId N = 0; N < Nodes.size(); ++N)
    for (const GraphEdge &E : Out[N])
      if (E.Kind == EdgeKind::Forget)
        R[E.To].insert({E.L.raw(), N});

  bool Changed = true;
  while (Changed) {
    Changed = false;

    // Propagate along 1-edges.
    for (GraphNodeId N = 0; N < Nodes.size(); ++N) {
      if (R[N].empty())
        continue;
      for (const GraphEdge &E : Out[N]) {
        if (E.Kind != EdgeKind::One)
          continue;
        for (const auto &Entry : R[N])
          if (R[E.To].insert(Entry).second)
            Changed = true;
      }
    }

    // Lazy S-POINTER: a pending .store at a contravariant node becomes a
    // pending .load at its covariant twin, and vice versa.
    for (GraphNodeId N = 0; N < Nodes.size(); ++N) {
      if (Nodes[N].Tag != Variance::Contravariant || R[N].empty())
        continue;
      GraphNodeId Twin = lookup(Nodes[N].Dtv, Variance::Covariant);
      if (Twin == NoNode)
        continue;
      for (const auto &Entry : R[N]) {
        if (Entry.first == StoreRaw) {
          if (R[Twin].insert({LoadRaw, Entry.second}).second)
            Changed = true;
        } else if (Entry.first == LoadRaw) {
          if (R[Twin].insert({StoreRaw, Entry.second}).second)
            Changed = true;
        }
      }
    }

    // Consume: a pending forget met by a matching recall yields a shortcut
    // 1-edge from the forget's origin to the recall's target.
    for (GraphNodeId N = 0; N < Nodes.size(); ++N) {
      if (R[N].empty())
        continue;
      for (const GraphEdge &E : Out[N]) {
        if (E.Kind != EdgeKind::Recall)
          continue;
        for (const auto &Entry : R[N]) {
          if (Entry.first != E.L.raw())
            continue;
          if (addEdge(Entry.second, E.To, EdgeKind::One, Label())) {
            ++SaturationEdges;
            Changed = true;
          }
        }
      }
    }
  }
}

std::vector<GraphNodeId>
ConstraintGraph::oneReachableFrom(GraphNodeId From) const {
  std::vector<GraphNodeId> Result;
  std::vector<bool> Seen(Nodes.size(), false);
  std::deque<GraphNodeId> Work{From};
  Seen[From] = true;
  while (!Work.empty()) {
    GraphNodeId N = Work.front();
    Work.pop_front();
    Result.push_back(N);
    for (const GraphEdge &E : Out[N]) {
      if (E.Kind != EdgeKind::One || Seen[E.To])
        continue;
      Seen[E.To] = true;
      Work.push_back(E.To);
    }
  }
  return Result;
}

std::string ConstraintGraph::str(const SymbolTable &Syms,
                                 const Lattice &Lat) const {
  std::string S;
  for (GraphNodeId N = 0; N < Nodes.size(); ++N) {
    for (const GraphEdge &E : Out[N]) {
      S += Nodes[N].Dtv.str(Syms, Lat);
      S += Nodes[N].Tag == Variance::Covariant ? ".+" : ".-";
      switch (E.Kind) {
      case EdgeKind::One:
        S += " --1--> ";
        break;
      case EdgeKind::Recall:
        S += " --recall " + E.L.str() + "--> ";
        break;
      case EdgeKind::Forget:
        S += " --forget " + E.L.str() + "--> ";
        break;
      }
      S += Nodes[E.To].Dtv.str(Syms, Lat);
      S += Nodes[E.To].Tag == Variance::Covariant ? ".+" : ".-";
      S += '\n';
    }
  }
  return S;
}
