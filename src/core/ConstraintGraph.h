//===- ConstraintGraph.h - Pushdown-system encoding of C ------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph encoding of a constraint set, following Appendix D of the paper.
/// Nodes are (derived type variable, variance tag) pairs; edges are:
///
///   - 1-edges (`One`): for each constraint A <= B, an edge (A,⊕) → (B,⊕)
///     and the mirror edge (B,⊖) → (A,⊖).
///   - `Recall ℓ` edges (x.w, t·⟨ℓ⟩) → (x.w.ℓ, t): traversing one spells a
///     label of the left-hand side of a derivable constraint.
///   - `Forget ℓ` edges (x.w.ℓ, t) → (x.w, t·⟨ℓ⟩): traversing one spells a
///     label of the right-hand side.
///
/// A path from (X,s) to (Y,e) whose recall labels spell u (in order) and
/// whose forget labels spell v (in reverse), with every recall preceding
/// every forget, witnesses the derivable constraint
///
///     X.u <= Y.v     when s·⟨u⟩ = ⊕,   or
///     Y.v <= X.u     when s·⟨u⟩ = ⊖.
///
/// saturate() implements Algorithm D.2: it adds 1-edge shortcuts for every
/// matched forget-then-recall pattern so that the canonical recall*-forget*
/// paths lose no derivations, maintaining reaching-forget sets R(n). The
/// S-POINTER rule (x.store <= x.load for every derived type variable) has
/// infinitely many instances, so it is applied lazily during saturation:
/// a pending `.store` at a contravariant node (v,⊖) transfers to a pending
/// `.load` at the covariant twin (v,⊕), and symmetrically. See the worked
/// Figure 4 / Figure 14 checks in tests/core/SaturationTest.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_CONSTRAINTGRAPH_H
#define RETYPD_CORE_CONSTRAINTGRAPH_H

#include "core/ConstraintSet.h"
#include "support/Interner.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace retypd {

/// Dense id of a graph node.
using GraphNodeId = uint32_t;

/// One node: a derived type variable with a variance tag.
struct GraphNode {
  DerivedTypeVariable Dtv;
  Variance Tag = Variance::Covariant;
};

/// Kind of a graph edge.
enum class EdgeKind : uint8_t {
  One,    ///< ε / subtype edge
  Recall, ///< spell a label onto the LHS word
  Forget  ///< spell a label onto the RHS word
};

/// One outgoing edge.
struct GraphEdge {
  GraphNodeId To = 0;
  EdgeKind Kind = EdgeKind::One;
  Label L; // valid for Recall/Forget
};

/// The saturated constraint graph for one constraint set.
class ConstraintGraph {
public:
  /// Builds the graph (nodes, 1-edges, recall/forget edges) from \p C.
  /// Additive constraints are ignored here; they are handled by the shape
  /// solver.
  explicit ConstraintGraph(const ConstraintSet &C);

  /// Runs Algorithm D.2 until fixpoint. Idempotent.
  void saturate();

  /// Returns the node id for (dtv, tag), or NoNode if absent.
  static constexpr GraphNodeId NoNode = 0xffffffffu;
  GraphNodeId lookup(const DerivedTypeVariable &Dtv, Variance Tag) const;

  size_t numNodes() const { return Nodes.size(); }
  const GraphNode &node(GraphNodeId Id) const { return Nodes[Id]; }
  const std::vector<GraphEdge> &edgesFrom(GraphNodeId Id) const {
    return Out[Id];
  }

  /// All nodes (n,⊕) 1-reachable from (From,⊕); includes From itself.
  /// Used for the lattice-bound queries of Algorithm F.2.
  std::vector<GraphNodeId> oneReachableFrom(GraphNodeId From) const;

  /// Number of 1-edges added by saturation (for tests and stats).
  size_t numSaturationEdges() const { return SaturationEdges; }

  /// Renders the graph for debugging.
  std::string str(const SymbolTable &Syms, const Lattice &Lat) const;

private:
  GraphNodeId getOrCreateNode(const DerivedTypeVariable &Dtv, Variance Tag);
  bool addEdge(GraphNodeId From, GraphNodeId To, EdgeKind Kind, Label L);
  uint32_t internLabel(Label L);

  std::vector<GraphNode> Nodes;
  std::vector<std::vector<GraphEdge>> Out;

  // Node identity runs through the arena-backed DTV interner: a node key is
  // the dense interned id composed with the variance bit, so lookups and
  // the saturation hot loop compare single integers instead of re-hashing
  // whole label words.
  DtvInterner Dtvs;
  std::unordered_map<uint64_t, GraphNodeId> NodeIndex; // (DtvId<<1)|tag
  std::vector<DtvId> NodeDtv;                          // per node

  // Labels seen on edges, interned to small dense indices so saturation
  // state packs into single u64 entries.
  std::unordered_map<uint64_t, uint32_t> LabelIdx; // raw -> dense
  std::vector<Label> LabelAt;

  // Per-node edge dedup: (To<<32) | (labelIdx<<2) | kind, all packed.
  std::vector<std::unordered_set<uint64_t>> EdgeKeys;

  size_t SaturationEdges = 0;
  bool Saturated = false;
};

} // namespace retypd

#endif // RETYPD_CORE_CONSTRAINTGRAPH_H
