//===- ConstraintParser.cpp - Textual constraint syntax ------------------===//

#include "core/ConstraintParser.h"

#include "support/Stats.h"

#include <atomic>
#include <cctype>
#include <charconv>

using namespace retypd;

namespace {

/// Minimal cursor over a string_view.
class Cursor {
public:
  explicit Cursor(std::string_view S) : S(S) {}

  void skipSpace() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= S.size();
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consume(std::string_view Tok) {
    skipSpace();
    if (S.substr(Pos, Tok.size()) == Tok) {
      Pos += Tok.size();
      return true;
    }
    return false;
  }

  /// Reads an identifier: [A-Za-z0-9_#$@:!-]+ (no dots — dots separate
  /// labels). Bytes with the high bit set are accepted so UTF-8 names —
  /// notably the τ$... existentials of serialized schemes — round-trip.
  std::string_view ident() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < S.size()) {
      char C = S[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '#' || C == '$' || C == '@' || C == ':' || C == '-' ||
          C == '!' || static_cast<unsigned char>(C) >= 0x80)
        ++Pos;
      else
        break;
    }
    return S.substr(Start, Pos - Start);
  }

  std::string_view rest() const { return S.substr(Pos); }

private:
  std::string_view S;
  size_t Pos = 0;
};

bool parseInt(std::string_view S, int64_t &Out) {
  if (S.empty())
    return false;
  auto [Ptr, Ec] = std::from_chars(S.data(), S.data() + S.size(), Out);
  return Ec == std::errc() && Ptr == S.data() + S.size();
}

/// Parses one label token (without the leading dot), e.g. "load", "in0",
/// "s32@4".
bool parseLabel(std::string_view Tok, Label &Out) {
  if (Tok == "load") {
    Out = Label::load();
    return true;
  }
  if (Tok == "store") {
    Out = Label::store();
    return true;
  }
  if (Tok.starts_with("in")) {
    int64_t Idx = 0;
    if (!parseInt(Tok.substr(2), Idx) || Idx < 0)
      return false;
    Out = Label::in(static_cast<uint32_t>(Idx));
    return true;
  }
  if (Tok == "out") {
    Out = Label::out();
    return true;
  }
  if (Tok.starts_with("out")) {
    int64_t Idx = 0;
    if (!parseInt(Tok.substr(3), Idx) || Idx < 0)
      return false;
    Out = Label::out(static_cast<uint32_t>(Idx));
    return true;
  }
  if (Tok.size() > 1 && (Tok[0] == 's' || Tok[0] == 'u')) {
    size_t At = Tok.find('@');
    if (At == std::string_view::npos)
      return false;
    int64_t Bits = 0, Off = 0;
    if (!parseInt(Tok.substr(1, At - 1), Bits) ||
        !parseInt(Tok.substr(At + 1), Off) || Bits <= 0 || Bits > 0xffff)
      return false;
    Out = Label::field(static_cast<uint16_t>(Bits),
                       static_cast<int32_t>(Off));
    return true;
  }
  return false;
}

} // namespace

std::optional<DerivedTypeVariable>
ConstraintParser::parseDtv(std::string_view Text) {
  Cursor C(Text);
  std::string_view BaseName = C.ident();
  if (BaseName.empty()) {
    Err = "expected a type variable, found '" + std::string(C.rest()) + "'";
    return std::nullopt;
  }

  TypeVariable Base;
  if (auto E = Lat.lookup(BaseName)) {
    Base = TypeVariable::constant(*E);
  } else if (BaseName[0] == '#') {
    Err = "unknown semantic tag '" + std::string(BaseName) + "'";
    return std::nullopt;
  } else {
    Base = TypeVariable::var(Syms.intern(BaseName));
  }

  std::vector<Label> Word;
  while (C.consume('.')) {
    std::string_view Tok = C.ident();
    Label L;
    if (!parseLabel(Tok, L)) {
      Err = "bad field label '." + std::string(Tok) + "'";
      return std::nullopt;
    }
    Word.push_back(L);
  }
  if (!C.atEnd()) {
    Err = "trailing junk after type variable: '" + std::string(C.rest()) +
          "'";
    return std::nullopt;
  }
  return DerivedTypeVariable(Base, std::move(Word));
}

bool ConstraintParser::fail(unsigned LineNo, const std::string &Msg) {
  Err = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

bool ConstraintParser::parseLine(std::string_view Line, unsigned LineNo,
                                 ConstraintSet &Out) {
  // Strip comments. A ';' only starts a comment outside parentheses, since
  // additive constraints use it as a separator: add(a, b; c).
  int Depth = 0;
  for (size_t I = 0; I < Line.size(); ++I) {
    if (Line[I] == '(')
      ++Depth;
    else if (Line[I] == ')')
      --Depth;
    else if (Line[I] == ';' && Depth == 0) {
      Line = Line.substr(0, I);
      break;
    }
  }
  size_t Slashes = Line.find("//");
  if (Slashes != std::string_view::npos)
    Line = Line.substr(0, Slashes);

  // Trim.
  while (!Line.empty() &&
         std::isspace(static_cast<unsigned char>(Line.front())))
    Line.remove_prefix(1);
  while (!Line.empty() &&
         std::isspace(static_cast<unsigned char>(Line.back())))
    Line.remove_suffix(1);
  if (Line.empty())
    return true;

  // var X
  if (Line.starts_with("var ")) {
    auto V = parseDtv(Line.substr(4));
    if (!V)
      return fail(LineNo, Err);
    Out.addVar(std::move(*V));
    return true;
  }

  // add(a, b; c) / sub(a, b; c)
  if (Line.starts_with("add(") || Line.starts_with("sub(")) {
    bool IsSub = Line.starts_with("sub(");
    if (!Line.ends_with(")"))
      return fail(LineNo, "expected ')' at end of additive constraint");
    std::string_view Body = Line.substr(4, Line.size() - 5);
    size_t Comma = Body.find(',');
    size_t SemiSep = Body.find(';');
    if (Comma == std::string_view::npos || SemiSep == std::string_view::npos ||
        SemiSep < Comma)
      return fail(LineNo, "expected add(x, y; z)");
    auto X = parseDtv(Body.substr(0, Comma));
    if (!X)
      return fail(LineNo, Err);
    auto Y = parseDtv(Body.substr(Comma + 1, SemiSep - Comma - 1));
    if (!Y)
      return fail(LineNo, Err);
    auto Z = parseDtv(Body.substr(SemiSep + 1));
    if (!Z)
      return fail(LineNo, Err);
    Out.addAddSub(AddSubConstraint{IsSub, std::move(*X), std::move(*Y),
                                   std::move(*Z)});
    return true;
  }

  // X <= Y
  size_t Arrow = Line.find("<=");
  if (Arrow == std::string_view::npos)
    return fail(LineNo, "expected '<=' in '" + std::string(Line) + "'");
  auto L = parseDtv(Line.substr(0, Arrow));
  if (!L)
    return fail(LineNo, Err);
  auto R = parseDtv(Line.substr(Arrow + 2));
  if (!R)
    return fail(LineNo, Err);
  Out.addSubtype(std::move(*L), std::move(*R));
  return true;
}

std::optional<ConstraintSet> ConstraintParser::parse(std::string_view Text) {
  // Counted so tests can prove the warm cache path never parses text
  // (scheme replay goes through the binary codec instead).
  EventCounters::ConstraintParseCalls.fetch_add(1, std::memory_order_relaxed);
  ScopedPhaseTimer Timer("parser.parse");
  ConstraintSet Out;
  unsigned LineNo = 1;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    std::string_view Line =
        End == std::string_view::npos
            ? Text.substr(Pos)
            : Text.substr(Pos, End - Pos);
    if (!parseLine(Line, LineNo, Out))
      return std::nullopt;
    if (End == std::string_view::npos)
      break;
    Pos = End + 1;
    ++LineNo;
  }
  return Out;
}
