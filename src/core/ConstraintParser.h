//===- ConstraintParser.h - Textual constraint syntax ---------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual constraint syntax used by tests and examples:
///
///   x.load.s32@0 <= y       subtype constraint
///   var p.in0.store         capability declaration
///   add(a, b; c)            additive constraint
///   sub(a, b; c)
///
/// Labels: `load`, `store`, `inN`, `out` / `outN`, `sBITS@OFFSET`.
/// A base name resolves to a lattice constant when the lattice knows it
/// (e.g. `int`, `#FileDescriptor`); otherwise it is interned as a variable.
/// `#`-prefixed names must exist in the lattice. Comments start with `;` or
/// `//` and run to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_CONSTRAINTPARSER_H
#define RETYPD_CORE_CONSTRAINTPARSER_H

#include "core/ConstraintSet.h"

#include <optional>
#include <string>
#include <string_view>

namespace retypd {

/// Parses constraints; reports the first error with line information.
class ConstraintParser {
public:
  ConstraintParser(SymbolTable &Syms, const Lattice &Lat)
      : Syms(Syms), Lat(Lat) {}

  /// Parses a single derived type variable like "F.in0.load.s32@4".
  std::optional<DerivedTypeVariable> parseDtv(std::string_view Text);

  /// Parses a whole constraint set, one constraint per line.
  std::optional<ConstraintSet> parse(std::string_view Text);

  /// Human-readable description of the last error.
  const std::string &error() const { return Err; }

private:
  bool parseLine(std::string_view Line, unsigned LineNo, ConstraintSet &Out);
  bool fail(unsigned LineNo, const std::string &Msg);

  SymbolTable &Syms;
  const Lattice &Lat;
  std::string Err;
};

} // namespace retypd

#endif // RETYPD_CORE_CONSTRAINTPARSER_H
