//===- ConstraintSet.cpp - Finite collections of constraints -------------===//

#include "core/ConstraintSet.h"

#include <algorithm>

using namespace retypd;

std::string DerivedTypeVariable::str(const SymbolTable &Syms,
                                     const Lattice &Lat) const {
  std::string S;
  if (!Base.isValid())
    S = "<invalid>";
  else if (Base.isConstant())
    S = Lat.name(Base.latticeElem());
  else
    S = Syms.name(Base.symbol());
  S += wordStr(Word);
  return S;
}

std::string SubtypeConstraint::str(const SymbolTable &Syms,
                                   const Lattice &Lat) const {
  return Lhs.str(Syms, Lat) + " <= " + Rhs.str(Syms, Lat);
}

std::string AddSubConstraint::str(const SymbolTable &Syms,
                                  const Lattice &Lat) const {
  return std::string(IsSub ? "sub(" : "add(") + X.str(Syms, Lat) + ", " +
         Y.str(Syms, Lat) + "; " + Z.str(Syms, Lat) + ")";
}

bool ConstraintSet::addSubtype(DerivedTypeVariable Lhs,
                               DerivedTypeVariable Rhs) {
  SubtypeConstraint C{std::move(Lhs), std::move(Rhs)};
  if (!SubIndex.insert(C).second)
    return false;
  Subs.push_back(std::move(C));
  return true;
}

bool ConstraintSet::addVar(DerivedTypeVariable V) {
  if (!VarIndex.insert(V).second)
    return false;
  Vars.push_back(std::move(V));
  return true;
}

void ConstraintSet::addAddSub(AddSubConstraint C) {
  AddSubs.push_back(std::move(C));
}

void ConstraintSet::merge(const ConstraintSet &Other) {
  for (const SubtypeConstraint &C : Other.Subs)
    addSubtype(C.Lhs, C.Rhs);
  for (const DerivedTypeVariable &V : Other.Vars)
    addVar(V);
  for (const AddSubConstraint &C : Other.AddSubs)
    addAddSub(C);
}

std::vector<DerivedTypeVariable> ConstraintSet::mentionedDtvs() const {
  std::vector<DerivedTypeVariable> Out;
  std::unordered_set<DerivedTypeVariable> Seen;
  auto Note = [&](const DerivedTypeVariable &V) {
    if (Seen.insert(V).second)
      Out.push_back(V);
  };
  for (const SubtypeConstraint &C : Subs) {
    Note(C.Lhs);
    Note(C.Rhs);
  }
  for (const DerivedTypeVariable &V : Vars)
    Note(V);
  for (const AddSubConstraint &C : AddSubs) {
    Note(C.X);
    Note(C.Y);
    Note(C.Z);
  }
  return Out;
}

std::string ConstraintSet::str(const SymbolTable &Syms,
                               const Lattice &Lat) const {
  std::vector<std::string> Lines;
  for (const SubtypeConstraint &C : Subs)
    Lines.push_back(C.str(Syms, Lat));
  for (const DerivedTypeVariable &V : Vars)
    Lines.push_back("var " + V.str(Syms, Lat));
  for (const AddSubConstraint &C : AddSubs)
    Lines.push_back(C.str(Syms, Lat));
  std::sort(Lines.begin(), Lines.end());
  std::string S;
  for (const std::string &L : Lines) {
    S += L;
    S += '\n';
  }
  return S;
}

ConstraintSet ConstraintSet::canonicalized(const SymbolTable &Syms,
                                           const Lattice &Lat,
                                           std::string *CanonText) const {
  // Decorate-sort-undecorate: render each item once, not once per sort
  // comparison — this runs per SCC on the sequential generation path.
  auto SortByStr = [&](const auto &Items, const char *Prefix,
                       std::vector<std::string> *AllLines) {
    using T = typename std::decay_t<decltype(Items)>::value_type;
    std::vector<std::pair<std::string, const T *>> Keyed;
    Keyed.reserve(Items.size());
    for (const T &I : Items) {
      Keyed.push_back({I.str(Syms, Lat), &I});
      if (AllLines)
        AllLines->push_back(Prefix + Keyed.back().first);
    }
    std::stable_sort(Keyed.begin(), Keyed.end(),
                     [](const auto &A, const auto &B) {
                       return A.first < B.first;
                     });
    std::vector<const T *> Sorted;
    Sorted.reserve(Keyed.size());
    for (const auto &K : Keyed)
      Sorted.push_back(K.second);
    return Sorted;
  };
  // str() sorts every line of every kind together; rebuild that exact
  // text from the renders the per-kind sorts already produced.
  std::vector<std::string> Lines;
  std::vector<std::string> *AllLines = CanonText ? &Lines : nullptr;
  ConstraintSet Canon;
  for (const SubtypeConstraint *C : SortByStr(Subs, "", AllLines))
    Canon.addSubtype(C->Lhs, C->Rhs);
  for (const DerivedTypeVariable *V : SortByStr(Vars, "var ", AllLines))
    Canon.addVar(*V);
  for (const AddSubConstraint *C : SortByStr(AddSubs, "", AllLines))
    Canon.addAddSub(*C);
  if (CanonText) {
    std::sort(Lines.begin(), Lines.end());
    CanonText->clear();
    for (const std::string &L : Lines) {
      *CanonText += L;
      *CanonText += '\n';
    }
  }
  return Canon;
}

std::string TypeScheme::str(const SymbolTable &Syms,
                            const Lattice &Lat) const {
  std::string S = "forall ";
  S += Syms.name(ProcVar.symbol());
  if (!Existentials.empty()) {
    S += ". exists";
    for (TypeVariable V : Existentials) {
      S += ' ';
      S += Syms.name(V.symbol());
    }
  }
  S += ". {\n";
  std::string Body = Constraints.str(Syms, Lat);
  // Indent the body two spaces.
  size_t Pos = 0;
  while (Pos < Body.size()) {
    size_t End = Body.find('\n', Pos);
    S += "  ";
    if (End == std::string::npos) {
      S += Body.substr(Pos);
      S += '\n';
      break;
    }
    S += Body.substr(Pos, End - Pos + 1);
    Pos = End + 1;
  }
  S += "}";
  return S;
}
