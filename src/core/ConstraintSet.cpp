//===- ConstraintSet.cpp - Finite collections of constraints -------------===//

#include "core/ConstraintSet.h"

#include <algorithm>

using namespace retypd;

std::string DerivedTypeVariable::str(const SymbolTable &Syms,
                                     const Lattice &Lat) const {
  std::string S;
  if (!Base.isValid())
    S = "<invalid>";
  else if (Base.isConstant())
    S = Lat.name(Base.latticeElem());
  else
    S = Syms.name(Base.symbol());
  S += wordStr(Word);
  return S;
}

std::string SubtypeConstraint::str(const SymbolTable &Syms,
                                   const Lattice &Lat) const {
  return Lhs.str(Syms, Lat) + " <= " + Rhs.str(Syms, Lat);
}

std::string AddSubConstraint::str(const SymbolTable &Syms,
                                  const Lattice &Lat) const {
  return std::string(IsSub ? "sub(" : "add(") + X.str(Syms, Lat) + ", " +
         Y.str(Syms, Lat) + "; " + Z.str(Syms, Lat) + ")";
}

bool ConstraintSet::addSubtype(DerivedTypeVariable Lhs,
                               DerivedTypeVariable Rhs) {
  SubtypeConstraint C{std::move(Lhs), std::move(Rhs)};
  if (!SubIndex.insert(C).second)
    return false;
  Subs.push_back(std::move(C));
  return true;
}

bool ConstraintSet::addVar(DerivedTypeVariable V) {
  if (!VarIndex.insert(V).second)
    return false;
  Vars.push_back(std::move(V));
  return true;
}

void ConstraintSet::addAddSub(AddSubConstraint C) {
  AddSubs.push_back(std::move(C));
}

void ConstraintSet::merge(const ConstraintSet &Other) {
  for (const SubtypeConstraint &C : Other.Subs)
    addSubtype(C.Lhs, C.Rhs);
  for (const DerivedTypeVariable &V : Other.Vars)
    addVar(V);
  for (const AddSubConstraint &C : Other.AddSubs)
    addAddSub(C);
}

std::vector<DerivedTypeVariable> ConstraintSet::mentionedDtvs() const {
  std::vector<DerivedTypeVariable> Out;
  std::unordered_set<DerivedTypeVariable> Seen;
  auto Note = [&](const DerivedTypeVariable &V) {
    if (Seen.insert(V).second)
      Out.push_back(V);
  };
  for (const SubtypeConstraint &C : Subs) {
    Note(C.Lhs);
    Note(C.Rhs);
  }
  for (const DerivedTypeVariable &V : Vars)
    Note(V);
  for (const AddSubConstraint &C : AddSubs) {
    Note(C.X);
    Note(C.Y);
    Note(C.Z);
  }
  return Out;
}

std::string ConstraintSet::str(const SymbolTable &Syms,
                               const Lattice &Lat) const {
  std::vector<std::string> Lines;
  for (const SubtypeConstraint &C : Subs)
    Lines.push_back(C.str(Syms, Lat));
  for (const DerivedTypeVariable &V : Vars)
    Lines.push_back("var " + V.str(Syms, Lat));
  for (const AddSubConstraint &C : AddSubs)
    Lines.push_back(C.str(Syms, Lat));
  std::sort(Lines.begin(), Lines.end());
  std::string S;
  for (const std::string &L : Lines) {
    S += L;
    S += '\n';
  }
  return S;
}

namespace {

/// Decorated sort key for one derived type variable: the base resolves to
/// a name reference once, labels compare by their packed u64. Purely
/// structural — no symbol ids, no rendered text.
struct DtvKey {
  const std::string *Name; ///< base name (lattice name for constants)
  uint8_t Rank;            ///< 0 invalid, 1 constant, 2 variable
  std::span<const Label> Word;
};

DtvKey dtvKey(const DerivedTypeVariable &V, const SymbolTable &Syms,
              const Lattice &Lat) {
  static const std::string Empty;
  TypeVariable B = V.base();
  if (B.isConstant())
    return {&Lat.name(B.latticeElem()), 1, V.labels()};
  if (B.isVar())
    return {&Syms.name(B.symbol()), 2, V.labels()};
  return {&Empty, 0, V.labels()};
}

int cmp(const DtvKey &A, const DtvKey &B) {
  if (int C = A.Name->compare(*B.Name))
    return C < 0 ? -1 : 1;
  if (A.Rank != B.Rank)
    return A.Rank < B.Rank ? -1 : 1;
  size_t N = std::min(A.Word.size(), B.Word.size());
  for (size_t I = 0; I < N; ++I)
    if (A.Word[I] != B.Word[I])
      return A.Word[I] < B.Word[I] ? -1 : 1;
  if (A.Word.size() != B.Word.size())
    return A.Word.size() < B.Word.size() ? -1 : 1;
  return 0;
}

/// Decorate-sort-undecorate over one constraint kind. \p KeysOf lists the
/// DtvKeys of one item in comparison order. Items already in canonical
/// order (the overwhelmingly common case on re-canonicalization and
/// hashing of canonicalized sets) are detected in O(n) and skip the sort.
template <typename T, typename KeysOfFn>
std::vector<const T *> sortStructurally(const std::vector<T> &Items,
                                        KeysOfFn KeysOf) {
  struct Keyed {
    const T *Item;
    // Up to three DTVs per constraint (AddSub); unused slots stay Rank 0
    // with empty names and words, which compare equal.
    DtvKey K[3];
    uint8_t Extra; ///< kind-local tie-break (AddSub's IsSub flag)
  };
  std::vector<Keyed> KeyedItems;
  KeyedItems.reserve(Items.size());
  for (const T &I : Items) {
    Keyed K;
    K.Item = &I;
    K.Extra = KeysOf(I, K.K);
    KeyedItems.push_back(std::move(K));
  }
  auto Less = [](const Keyed &A, const Keyed &B) {
    if (A.Extra != B.Extra)
      return A.Extra < B.Extra;
    for (int I = 0; I < 3; ++I)
      if (int C = cmp(A.K[I], B.K[I]))
        return C < 0;
    return false;
  };
  if (!std::is_sorted(KeyedItems.begin(), KeyedItems.end(), Less))
    std::stable_sort(KeyedItems.begin(), KeyedItems.end(), Less);
  std::vector<const T *> Sorted;
  Sorted.reserve(KeyedItems.size());
  for (const Keyed &K : KeyedItems)
    Sorted.push_back(K.Item);
  return Sorted;
}

} // namespace

ConstraintSet::CanonicalView
ConstraintSet::canonicalView(const SymbolTable &Syms,
                             const Lattice &Lat) const {
  static const std::string Empty;
  DtvKey None{&Empty, 0, {}};
  CanonicalView View;
  View.Subs = sortStructurally(Subs, [&](const SubtypeConstraint &C,
                                         DtvKey *K) {
    K[0] = dtvKey(C.Lhs, Syms, Lat);
    K[1] = dtvKey(C.Rhs, Syms, Lat);
    K[2] = None;
    return uint8_t(0);
  });
  View.Vars =
      sortStructurally(Vars, [&](const DerivedTypeVariable &V, DtvKey *K) {
        K[0] = dtvKey(V, Syms, Lat);
        K[1] = K[2] = None;
        return uint8_t(0);
      });
  View.AddSubs = sortStructurally(AddSubs, [&](const AddSubConstraint &C,
                                               DtvKey *K) {
    K[0] = dtvKey(C.X, Syms, Lat);
    K[1] = dtvKey(C.Y, Syms, Lat);
    K[2] = dtvKey(C.Z, Syms, Lat);
    return uint8_t(C.IsSub ? 1 : 0);
  });
  return View;
}

namespace {

/// Rebuilds \p Items in the order given by \p Sorted (pointers into
/// Items). No-op when the order is already canonical; otherwise a single
/// pass of moves.
template <typename T>
void applyOrder(std::vector<T> &Items, const std::vector<const T *> &Sorted) {
  bool InOrder = true;
  for (size_t I = 0; I < Sorted.size(); ++I)
    if (Sorted[I] != &Items[I]) {
      InOrder = false;
      break;
    }
  if (InOrder)
    return;
  std::vector<T> Reordered;
  Reordered.reserve(Items.size());
  for (const T *P : Sorted)
    Reordered.push_back(std::move(*const_cast<T *>(P)));
  Items = std::move(Reordered);
}

} // namespace

void ConstraintSet::canonicalize(const SymbolTable &Syms, const Lattice &Lat) {
  CanonicalView View = canonicalView(Syms, Lat);
  applyOrder(Subs, View.Subs);
  applyOrder(Vars, View.Vars);
  applyOrder(AddSubs, View.AddSubs);
}

ConstraintSet ConstraintSet::canonicalized(const SymbolTable &Syms,
                                           const Lattice &Lat) const {
  ConstraintSet Canon = *this;
  Canon.canonicalize(Syms, Lat);
  return Canon;
}

std::string TypeScheme::str(const SymbolTable &Syms,
                            const Lattice &Lat) const {
  std::string S = "forall ";
  S += Syms.name(ProcVar.symbol());
  if (!Existentials.empty()) {
    S += ". exists";
    for (TypeVariable V : Existentials) {
      S += ' ';
      S += Syms.name(V.symbol());
    }
  }
  S += ". {\n";
  std::string Body = Constraints.str(Syms, Lat);
  // Indent the body two spaces.
  size_t Pos = 0;
  while (Pos < Body.size()) {
    size_t End = Body.find('\n', Pos);
    S += "  ";
    if (End == std::string::npos) {
      S += Body.substr(Pos);
      S += '\n';
      break;
    }
    S += Body.substr(Pos, End - Pos + 1);
    Pos = End + 1;
  }
  S += "}";
  return S;
}
