//===- ConstraintSet.h - Finite collections of constraints ----*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A constraint set over a set of base type variables (paper Definition
/// 3.3): deduplicated subtype constraints, explicit capability (var)
/// declarations, and additive constraints.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_CONSTRAINTSET_H
#define RETYPD_CORE_CONSTRAINTSET_H

#include "core/Constraint.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace retypd {

/// An order-preserving, deduplicating collection of constraints.
class ConstraintSet {
public:
  /// Adds X <= Y; returns false if it was already present.
  bool addSubtype(DerivedTypeVariable Lhs, DerivedTypeVariable Rhs);

  /// Declares existence of a derived type variable (var X).
  bool addVar(DerivedTypeVariable V);

  /// Adds an additive constraint.
  void addAddSub(AddSubConstraint C);

  /// Payload-decode fast path: appends WITHOUT maintaining the dedup
  /// indexes (no per-constraint hashing). Only for materializing a payload
  /// that is a faithful encoding of an already-deduplicated set — the
  /// binary codec's decoders. A set built this way serves every read path
  /// (solving, canonical views, hashing, rendering), but must not be the
  /// target of further addSubtype/addVar/merge calls: the empty indexes
  /// would silently stop deduplicating.
  void appendSubtypeTrusted(DerivedTypeVariable Lhs,
                            DerivedTypeVariable Rhs) {
    Subs.push_back(SubtypeConstraint{std::move(Lhs), std::move(Rhs)});
  }
  void appendVarTrusted(DerivedTypeVariable V) {
    Vars.push_back(std::move(V));
  }

  /// Pre-sizes the constraint vectors (decoders know exact counts).
  void reserve(size_t NumSubs, size_t NumVars, size_t NumAddSubs) {
    Subs.reserve(NumSubs);
    Vars.reserve(NumVars);
    AddSubs.reserve(NumAddSubs);
  }

  const std::vector<SubtypeConstraint> &subtypes() const { return Subs; }
  const std::vector<DerivedTypeVariable> &vars() const { return Vars; }
  const std::vector<AddSubConstraint> &addSubs() const { return AddSubs; }

  bool empty() const {
    return Subs.empty() && Vars.empty() && AddSubs.empty();
  }
  size_t size() const { return Subs.size() + Vars.size() + AddSubs.size(); }

  /// Merges all constraints of \p Other into this set.
  void merge(const ConstraintSet &Other);

  /// Returns every derived type variable mentioned anywhere in the set
  /// (including both sides of subtype constraints and var declarations, but
  /// not their prefixes).
  std::vector<DerivedTypeVariable> mentionedDtvs() const;

  /// Renders one constraint per line (sorted for determinism).
  std::string str(const SymbolTable &Syms, const Lattice &Lat) const;

  /// The canonical (per-kind sorted) traversal order of this set, as
  /// pointers into its storage. The order is *structural*: derived type
  /// variables compare by base name, base kind, then packed label words —
  /// never by symbol id (ids differ across symbol tables and between
  /// fresh and incremental runs) and never by rendered text (rendering is
  /// exactly the string churn the binary data plane removes). Shared by
  /// canonicalized() and the structural hashes of core/SchemeCodec.h, so
  /// a set's canonical order, its 128-bit content key, and its binary
  /// encoding all agree.
  struct CanonicalView {
    std::vector<const SubtypeConstraint *> Subs;
    std::vector<const DerivedTypeVariable *> Vars;
    std::vector<const AddSubConstraint *> AddSubs;
  };
  CanonicalView canonicalView(const SymbolTable &Syms,
                              const Lattice &Lat) const;

  /// Reorders this set in place into canonical structural order (see
  /// canonicalView). A pure permutation: the dedup indexes are
  /// content-based and stay valid, nothing is re-hashed or copied.
  /// Canonicalization makes summary-cache round trips and fresh
  /// simplification results bit-identical, constraint order included: the
  /// binary codec preserves order verbatim, and a canonicalized set
  /// re-canonicalizes to itself.
  void canonicalize(const SymbolTable &Syms, const Lattice &Lat);

  /// Copying variant of canonicalize() for callers that need to keep the
  /// original order.
  ConstraintSet canonicalized(const SymbolTable &Syms,
                              const Lattice &Lat) const;

private:
  std::vector<SubtypeConstraint> Subs;
  std::vector<DerivedTypeVariable> Vars;
  std::vector<AddSubConstraint> AddSubs;
  std::unordered_set<SubtypeConstraint> SubIndex;
  std::unordered_set<DerivedTypeVariable> VarIndex;
};

/// ∀ quantified type scheme for a procedure (Definition 3.4):
/// `forall <vars>. C => <proc var>`. Existential internal variables (the τ
/// of Figure 2) appear in \c Existentials.
struct TypeScheme {
  TypeVariable ProcVar;
  std::vector<TypeVariable> Existentials;
  ConstraintSet Constraints;

  std::string str(const SymbolTable &Syms, const Lattice &Lat) const;
};

} // namespace retypd

#endif // RETYPD_CORE_CONSTRAINTSET_H
