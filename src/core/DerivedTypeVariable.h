//===- DerivedTypeVariable.h - αw: variable + label word ------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A derived type variable is an expression αw with α a base type variable
/// and w ∈ Σ* a word of field labels (paper Definition 3.1). For example
/// `F.in0.load.s32@4` denotes the 32-bit field at offset 4 of the memory
/// pointed to by F's first input.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_DERIVEDTYPEVARIABLE_H
#define RETYPD_CORE_DERIVEDTYPEVARIABLE_H

#include "core/Label.h"
#include "core/TypeVariable.h"

#include <span>
#include <string>
#include <vector>

namespace retypd {

/// αw — a base variable plus a (possibly empty) word of field labels.
class DerivedTypeVariable {
public:
  DerivedTypeVariable() = default;
  explicit DerivedTypeVariable(TypeVariable Base) : Base(Base) {}
  DerivedTypeVariable(TypeVariable Base, std::vector<Label> Word)
      : Base(Base), Word(std::move(Word)) {}

  TypeVariable base() const { return Base; }
  std::span<const Label> labels() const { return Word; }
  size_t size() const { return Word.size(); }
  bool isBaseOnly() const { return Word.empty(); }

  /// Variance of the whole access word (Definition 3.2).
  Variance variance() const { return wordVariance(Word); }

  /// Returns this DTV extended by one more label (α.w.ℓ).
  DerivedTypeVariable extended(Label L) const {
    std::vector<Label> W = Word;
    W.push_back(L);
    return DerivedTypeVariable(Base, std::move(W));
  }

  /// Returns the prefix of length \p Len.
  DerivedTypeVariable prefix(size_t Len) const {
    assert(Len <= Word.size() && "prefix longer than word");
    return DerivedTypeVariable(
        Base, std::vector<Label>(Word.begin(), Word.begin() + Len));
  }

  /// The immediate prefix (drops the last label). Requires !isBaseOnly().
  DerivedTypeVariable parent() const {
    assert(!Word.empty() && "base-only DTV has no parent");
    return prefix(Word.size() - 1);
  }

  Label lastLabel() const {
    assert(!Word.empty() && "base-only DTV has no labels");
    return Word.back();
  }

  /// Renders e.g. "F.in0.load.s32@4" (or "#SuccessZ" for constants).
  std::string str(const SymbolTable &Syms, const Lattice &Lat) const;

  friend bool operator==(const DerivedTypeVariable &A,
                         const DerivedTypeVariable &B) {
    return A.Base == B.Base && A.Word == B.Word;
  }
  friend bool operator!=(const DerivedTypeVariable &A,
                         const DerivedTypeVariable &B) {
    return !(A == B);
  }
  friend bool operator<(const DerivedTypeVariable &A,
                        const DerivedTypeVariable &B) {
    if (A.Base != B.Base)
      return A.Base < B.Base;
    return A.Word < B.Word;
  }

  size_t hashValue() const {
    size_t H = std::hash<TypeVariable>()(Base);
    for (Label L : Word)
      H = H * 1000003u + std::hash<Label>()(L);
    return H;
  }

private:
  TypeVariable Base;
  std::vector<Label> Word;
};

} // namespace retypd

template <> struct std::hash<retypd::DerivedTypeVariable> {
  size_t operator()(const retypd::DerivedTypeVariable &V) const noexcept {
    return V.hashValue();
  }
};

#endif // RETYPD_CORE_DERIVEDTYPEVARIABLE_H
