//===- Label.cpp - Field labels (type capabilities) -----------------------===//

#include "core/Label.h"

using namespace retypd;

std::string Label::str() const {
  switch (kind()) {
  case Kind::In:
    return ".in" + std::to_string(index());
  case Kind::Out:
    return index() == 0 ? ".out" : ".out" + std::to_string(index());
  case Kind::Load:
    return ".load";
  case Kind::Store:
    return ".store";
  case Kind::Field:
    return ".s" + std::to_string(bits()) + "@" + std::to_string(offset());
  }
  return ".<invalid>";
}

Variance retypd::wordVariance(std::span<const Label> Word) {
  Variance V = Variance::Covariant;
  for (Label L : Word)
    V = compose(V, L.variance());
  return V;
}

std::string retypd::wordStr(std::span<const Label> Word) {
  std::string S;
  for (Label L : Word)
    S += L.str();
  return S;
}
