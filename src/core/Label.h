//===- Label.h - Field labels (type capabilities) -------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Field labels from the alphabet Σ (paper Table 1):
///
///   .in_i      ⊖  function input in location i
///   .out_i     ⊕  function output in location i
///   .load      ⊕  readable pointer
///   .store     ⊖  writable pointer
///   .σN@k      ⊕  N-bit field at offset k
///
/// A label packs into a single uint64 for cheap comparison and hashing. The
/// alphabet is unbounded (any N, k, i), matching the paper's requirement
/// that Σ need not be finite.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_LABEL_H
#define RETYPD_CORE_LABEL_H

#include "core/Variance.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

namespace retypd {

/// One field label from Σ.
class Label {
public:
  enum class Kind : uint8_t {
    In = 0,   ///< .in_i   (contravariant)
    Out = 1,  ///< .out_i  (covariant)
    Load = 2, ///< .load   (covariant)
    Store = 3,///< .store  (contravariant)
    Field = 4 ///< .σN@k   (covariant)
  };

  Label() : Raw(0) {}

  static Label in(uint32_t Index) { return Label(Kind::In, 0, Index); }
  static Label out(uint32_t Index = 0) { return Label(Kind::Out, 0, Index); }
  static Label load() { return Label(Kind::Load, 0, 0); }
  static Label store() { return Label(Kind::Store, 0, 0); }
  /// An N-bit field at byte offset k ("σN@k").
  static Label field(uint16_t Bits, int32_t Offset) {
    return Label(Kind::Field, Bits, static_cast<uint32_t>(Offset));
  }

  Kind kind() const { return static_cast<Kind>(Raw >> 48); }
  bool isIn() const { return kind() == Kind::In; }
  bool isOut() const { return kind() == Kind::Out; }
  bool isLoad() const { return kind() == Kind::Load; }
  bool isStore() const { return kind() == Kind::Store; }
  bool isField() const { return kind() == Kind::Field; }

  /// For In/Out labels: the location index.
  uint32_t index() const {
    assert((isIn() || isOut()) && "index() on non-in/out label");
    return static_cast<uint32_t>(Raw & 0xffffffffu);
  }

  /// For Field labels: the width in bits.
  uint16_t bits() const {
    assert(isField() && "bits() on non-field label");
    return static_cast<uint16_t>((Raw >> 32) & 0xffff);
  }

  /// For Field labels: the byte offset.
  int32_t offset() const {
    assert(isField() && "offset() on non-field label");
    return static_cast<int32_t>(Raw & 0xffffffffu);
  }

  /// Variance per Table 1: In and Store are contravariant.
  Variance variance() const {
    Kind K = kind();
    return (K == Kind::In || K == Kind::Store) ? Variance::Contravariant
                                               : Variance::Covariant;
  }

  /// Renders e.g. ".load", ".in0", ".s32@4".
  std::string str() const;

  friend bool operator==(Label A, Label B) { return A.Raw == B.Raw; }
  friend bool operator!=(Label A, Label B) { return A.Raw != B.Raw; }
  friend bool operator<(Label A, Label B) { return A.Raw < B.Raw; }

  uint64_t raw() const { return Raw; }

  /// Rebuilds a label from raw() — for codec round-trips only. Callers
  /// must validate the kind bits (see core/SchemeCodec.cpp) before trusting
  /// the result.
  static Label fromRaw(uint64_t R) {
    Label L;
    L.Raw = R;
    return L;
  }

private:
  Label(Kind K, uint32_t A, uint32_t B)
      : Raw((static_cast<uint64_t>(K) << 48) |
            (static_cast<uint64_t>(A & 0xffff) << 32) | B) {}

  // Layout: [63..48] kind, [47..32] small operand (field bits),
  //         [31..0] wide operand (in/out index or field offset).
  uint64_t Raw;
};

/// Variance of a word of labels: the sign-monoid product (Definition 3.2).
Variance wordVariance(std::span<const Label> Word);

/// Renders a word as ".load.s32@0".
std::string wordStr(std::span<const Label> Word);

} // namespace retypd

template <> struct std::hash<retypd::Label> {
  size_t operator()(retypd::Label L) const noexcept {
    return std::hash<uint64_t>()(L.raw());
  }
};

#endif // RETYPD_CORE_LABEL_H
