//===- SchemeCodec.cpp - Binary type-scheme codec + structural hash -------===//

#include "core/SchemeCodec.h"

#include "core/ConstraintParser.h"
#include "support/Endian.h"
#include "support/Stats.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

using namespace retypd;

//===----------------------------------------------------------------------===//
// Payload geometry
//===----------------------------------------------------------------------===//
//
// Every payload kind shares a 12-byte header and a name section:
//
//   off 0   u8   kind tag (version in low bits: 0x03 scheme, 0x43 gen
//                result, 0x83 sketch bundle)
//   off 1   u8   name mode: 0 = inline, 1 = pool
//   off 2   u16  zero padding
//   off 4   u32  name count
//   off 8   u32  body offset
//
//   INLINE names: u32 off[nameCount+1] (relative to the blob, off[0]=0,
//   nondecreasing), then the blob itself; bodyOff points just past it.
//   POOL names: u32 poolId[nameCount]; bodyOff = 12 + 4*nameCount.
//
// Bodies reference names only by dense index, so the two modes differ in
// the name section alone — transcodeNamesToPool swaps the section and
// copies the body verbatim. All multi-byte fields are little-endian and
// read through support/Endian.h (mmapped payloads sit at arbitrary byte
// offsets inside a segment; no in-place field is assumed aligned).
// Section sizes are fully determined by the header and the body's leading
// count words, and validation requires them to tile the payload length
// exactly — truncation and trailing garbage are both structural errors.

namespace {

constexpr uint8_t kSchemeTag = static_cast<uint8_t>(kSchemePayloadVersion);
constexpr uint8_t kGenResultTag = 0x40 | kSchemePayloadVersion;
constexpr uint8_t kSketchBundleTag = 0x80 | kSchemePayloadVersion;

/// Tag with the payload-kind bits only — the backend marker (bit 4) is
/// orthogonal to the layout, so validation and decoding mask it off.
/// Generation results are encoded before any backend runs and never carry
/// the bit; their validator/decoders compare the raw tag.
uint8_t baseTag(uint8_t Tag) { return Tag & ~kPayloadBackendBit; }

uint8_t backendTag(uint8_t Kind, BackendKind Backend) {
  return Backend == BackendKind::Retypd
             ? Kind
             : static_cast<uint8_t>(Kind | kPayloadBackendBit);
}

constexpr uint8_t kNameModeInline = 0;
constexpr uint8_t kNameModePool = 1;
constexpr size_t kHeaderBytes = 12;

/// Header + name-section geometry. parseLayout validates the geometry
/// (offsets within bounds); name *contents* are validated separately.
struct Layout {
  uint8_t Tag = 0;
  uint8_t Mode = 0;
  uint32_t NameCount = 0;
  size_t NameTable = kHeaderBytes; ///< off[] (inline) or poolId[] (pool)
  size_t Blob = 0;                 ///< inline only: start of the name blob
  size_t BodyOff = 0;
};

bool parseLayout(std::string_view P, Layout &L) {
  if (P.size() < kHeaderBytes)
    return false;
  const char *D = P.data();
  L.Tag = static_cast<uint8_t>(D[0]);
  L.Mode = static_cast<uint8_t>(D[1]);
  if (L.Mode > kNameModePool || loadLE16(D + 2) != 0)
    return false;
  L.NameCount = loadLE32(D + 4);
  L.BodyOff = loadLE32(D + 8);
  uint64_t N = L.NameCount;
  if (L.Mode == kNameModePool) {
    uint64_t Want = kHeaderBytes + 4 * N;
    if (L.BodyOff != Want || Want > P.size())
      return false;
  } else {
    uint64_t TabEnd = kHeaderBytes + 4 * (N + 1);
    if (TabEnd > P.size() || L.BodyOff > P.size() || L.BodyOff < TabEnd)
      return false;
    L.Blob = static_cast<size_t>(TabEnd);
  }
  return true;
}

/// Validates name-section contents: inline offset-table shape, or pool ids
/// within the store's pool.
bool validateNames(std::string_view P, const Layout &L, uint64_t PoolSize) {
  const char *D = P.data();
  if (L.Mode == kNameModePool) {
    for (uint32_t I = 0; I < L.NameCount; ++I)
      if (loadLE32(D + L.NameTable + 4 * size_t(I)) >= PoolSize)
        return false;
    return true;
  }
  uint64_t BlobLen = L.BodyOff - L.Blob;
  if (loadLE32(D + L.NameTable) != 0)
    return false;
  uint32_t Prev = 0;
  for (uint32_t I = 1; I <= L.NameCount; ++I) {
    uint32_t V = loadLE32(D + L.NameTable + 4 * size_t(I));
    if (V < Prev)
      return false;
    Prev = V;
  }
  return Prev == BlobLen;
}

/// A label raw value is trusted only if repacking its fields reproduces it
/// exactly — this rejects both out-of-range kinds and stray bits that the
/// factories can never produce.
bool validLabelRaw(uint64_t Raw) {
  uint64_t Kind = Raw >> 48;
  if (Kind > static_cast<uint64_t>(Label::Kind::Field))
    return false;
  Label L = Label::fromRaw(Raw);
  switch (L.kind()) {
  case Label::Kind::In:
    return Label::in(static_cast<uint32_t>(Raw & 0xffffffffu)).raw() == Raw;
  case Label::Kind::Out:
    return Label::out(static_cast<uint32_t>(Raw & 0xffffffffu)).raw() == Raw;
  case Label::Kind::Load:
    return Label::load().raw() == Raw;
  case Label::Kind::Store:
    return Label::store().raw() == Raw;
  case Label::Kind::Field:
    return Label::field(static_cast<uint16_t>((Raw >> 32) & 0xffff),
                        static_cast<int32_t>(Raw & 0xffffffffu))
               .raw() == Raw;
  }
  return false;
}

/// Geometry of a DTV table (shared by scheme and gen bodies): a columnar
/// (rank u8, nameIdx u32, labelStart u32 prefix sums, labelRaw u64) block.
struct DtvGeom {
  size_t Rank = 0, NameIx = 0, LStart = 0, LRaw = 0;
  uint64_t Total = 0; ///< labelStart[Count] — total label words
  uint64_t End = 0;   ///< first byte past the label array
};

/// Computes DTV-table geometry starting at \p Off. Returns false if even
/// the labelStart array would run past the payload (Total unreadable).
bool dtvGeom(std::string_view P, uint64_t Off, uint32_t Count, DtvGeom &G) {
  G.Rank = static_cast<size_t>(Off);
  uint64_t NameIx = Off + Count;
  uint64_t LStart = NameIx + 4 * uint64_t(Count);
  uint64_t LStartEnd = LStart + 4 * (uint64_t(Count) + 1);
  if (LStartEnd > P.size())
    return false;
  G.NameIx = static_cast<size_t>(NameIx);
  G.LStart = static_cast<size_t>(LStart);
  G.LRaw = static_cast<size_t>(LStartEnd);
  G.Total = loadLE32(P.data() + LStart + 4 * size_t(Count));
  G.End = LStartEnd + 8 * G.Total;
  return true;
}

/// Per-element validation of a DTV table whose geometry checked out.
bool validateDtvTable(std::string_view P, const DtvGeom &G, uint32_t Count,
                      uint32_t NameCount) {
  const char *D = P.data();
  uint32_t Prev = 0;
  if (loadLE32(D + G.LStart) != 0)
    return false;
  for (uint32_t I = 0; I < Count; ++I) {
    uint8_t Rank = static_cast<uint8_t>(D[G.Rank + I]);
    uint32_t Ix = loadLE32(D + G.NameIx + 4 * size_t(I));
    if (Rank > 2 || (Rank == 0 ? Ix != 0 : Ix >= NameCount))
      return false;
    uint32_t V = loadLE32(D + G.LStart + 4 * size_t(I) + 4);
    if (V < Prev)
      return false;
    Prev = V;
  }
  for (uint64_t J = 0; J < G.Total; ++J)
    if (!validLabelRaw(loadLE64(D + G.LRaw + 8 * size_t(J))))
      return false;
  return true;
}

/// Validates a u32 index array: \p Count entries at \p Off, each < Limit.
bool validateIndexArray(std::string_view P, size_t Off, uint64_t Count,
                        uint32_t Limit) {
  for (uint64_t I = 0; I < Count; ++I)
    if (loadLE32(P.data() + Off + 4 * size_t(I)) >= Limit)
      return false;
  return true;
}

bool validateScheme(std::string_view P, const Layout &L) {
  if (uint64_t(L.BodyOff) + 24 > P.size())
    return false;
  const char *D = P.data();
  uint64_t B = L.BodyOff;
  uint32_t DtvCount = loadLE32(D + B), SubCount = loadLE32(D + B + 4),
           VarCount = loadLE32(D + B + 8), AddSubCount = loadLE32(D + B + 12),
           ExistCount = loadLE32(D + B + 16), ProcIdx = loadLE32(D + B + 20);
  DtvGeom G;
  if (!dtvGeom(P, B + 24, DtvCount, G))
    return false;
  uint64_t Exist = G.End;
  uint64_t Subs = Exist + 4 * uint64_t(ExistCount);
  uint64_t Vars = Subs + 8 * uint64_t(SubCount);
  uint64_t Adds = Vars + 4 * uint64_t(VarCount);
  uint64_t End = Adds + 16 * uint64_t(AddSubCount);
  if (End != P.size())
    return false;
  if (ProcIdx >= L.NameCount)
    return false;
  if (!validateDtvTable(P, G, DtvCount, L.NameCount))
    return false;
  if (!validateIndexArray(P, size_t(Exist), ExistCount, L.NameCount) ||
      !validateIndexArray(P, size_t(Subs), 2 * uint64_t(SubCount), DtvCount) ||
      !validateIndexArray(P, size_t(Vars), VarCount, DtvCount))
    return false;
  for (uint32_t I = 0; I < AddSubCount; ++I) {
    size_t A = size_t(Adds) + 16 * size_t(I);
    if (loadLE32(D + A) > 1 || loadLE32(D + A + 4) >= DtvCount ||
        loadLE32(D + A + 8) >= DtvCount || loadLE32(D + A + 12) >= DtvCount)
      return false;
  }
  return true;
}

bool validateGenResult(std::string_view P, const Layout &L) {
  if (uint64_t(L.BodyOff) + 40 > P.size())
    return false;
  const char *D = P.data();
  uint64_t B = L.BodyOff;
  uint32_t IntCount = loadLE32(D + B + 16), CallCount = loadLE32(D + B + 20),
           DtvCount = loadLE32(D + B + 24), SubCount = loadLE32(D + B + 28),
           VarCount = loadLE32(D + B + 32), AddSubCount = loadLE32(D + B + 36);
  uint64_t Int = B + 40;
  uint64_t Call = Int + 4 * uint64_t(IntCount);
  uint64_t Dtv = Call + 4 * uint64_t(CallCount);
  DtvGeom G;
  if (!dtvGeom(P, Dtv, DtvCount, G))
    return false;
  uint64_t Subs = G.End;
  uint64_t Vars = Subs + 8 * uint64_t(SubCount);
  uint64_t Adds = Vars + 4 * uint64_t(VarCount);
  uint64_t End = Adds + 16 * uint64_t(AddSubCount);
  if (End != P.size())
    return false;
  if (!validateIndexArray(P, size_t(Int), IntCount, L.NameCount) ||
      !validateIndexArray(P, size_t(Call), CallCount, L.NameCount))
    return false;
  if (!validateDtvTable(P, G, DtvCount, L.NameCount))
    return false;
  if (!validateIndexArray(P, size_t(Subs), 2 * uint64_t(SubCount), DtvCount) ||
      !validateIndexArray(P, size_t(Vars), VarCount, DtvCount))
    return false;
  for (uint32_t I = 0; I < AddSubCount; ++I) {
    size_t A = size_t(Adds) + 16 * size_t(I);
    if (loadLE32(D + A) > 1 || loadLE32(D + A + 4) >= DtvCount ||
        loadLE32(D + A + 8) >= DtvCount || loadLE32(D + A + 12) >= DtvCount)
      return false;
  }
  return true;
}

/// Columnar bundle-body offsets, derived from the four leading counts.
struct BundleGeom {
  uint32_t EntryCount = 0, NodeCount = 0, ConflictCount = 0, ChildCount = 0;
  size_t EntryVar = 0, EntryNodeStart = 0, Mark = 0, Lower = 0, Upper = 0,
         Flags = 0, ConflictStart = 0, ChildStart = 0, Conflicts = 0,
         ChildLabel = 0, ChildTo = 0;
  uint64_t End = 0;
};

bool bundleGeom(std::string_view P, uint64_t B, BundleGeom &G) {
  if (B + 16 > P.size())
    return false;
  const char *D = P.data();
  G.EntryCount = loadLE32(D + B);
  G.NodeCount = loadLE32(D + B + 4);
  G.ConflictCount = loadLE32(D + B + 8);
  G.ChildCount = loadLE32(D + B + 12);
  uint64_t Off = B + 16;
  auto Take = [&Off](uint64_t Bytes) {
    uint64_t At = Off;
    Off += Bytes;
    return At;
  };
  uint64_t EC = G.EntryCount, NC = G.NodeCount;
  G.EntryVar = static_cast<size_t>(Take(4 * EC));
  G.EntryNodeStart = static_cast<size_t>(Take(4 * (EC + 1)));
  G.Mark = static_cast<size_t>(Take(4 * NC));
  G.Lower = static_cast<size_t>(Take(4 * NC));
  G.Upper = static_cast<size_t>(Take(4 * NC));
  G.Flags = static_cast<size_t>(Take(NC));
  G.ConflictStart = static_cast<size_t>(Take(4 * (NC + 1)));
  G.ChildStart = static_cast<size_t>(Take(4 * (NC + 1)));
  G.Conflicts = static_cast<size_t>(Take(4 * uint64_t(G.ConflictCount)));
  G.ChildLabel = static_cast<size_t>(Take(8 * uint64_t(G.ChildCount)));
  G.ChildTo = static_cast<size_t>(Take(4 * uint64_t(G.ChildCount)));
  G.End = Off;
  return G.End == P.size();
}

/// Validates a u32 prefix-sum array: Count+1 entries at \p Off, starting
/// at 0, nondecreasing (or strictly increasing), ending at \p Want.
bool validatePrefixSums(std::string_view P, size_t Off, uint32_t Count,
                        uint32_t Want, bool Strict) {
  const char *D = P.data();
  if (loadLE32(D + Off) != 0)
    return false;
  uint32_t Prev = 0;
  for (uint32_t I = 1; I <= Count; ++I) {
    uint32_t V = loadLE32(D + Off + 4 * size_t(I));
    if (Strict ? V <= Prev : V < Prev)
      return false;
    Prev = V;
  }
  return Prev == Want;
}

bool validateSketchBundle(std::string_view P, const Layout &L) {
  BundleGeom G;
  if (!bundleGeom(P, L.BodyOff, G))
    return false;
  const char *D = P.data();
  if (!validateIndexArray(P, G.EntryVar, G.EntryCount, L.NameCount))
    return false;
  // Every entry owns at least one node (its root) — strictly increasing.
  if (!validatePrefixSums(P, G.EntryNodeStart, G.EntryCount, G.NodeCount,
                          /*Strict=*/true))
    return false;
  if (!validateIndexArray(P, G.Mark, G.NodeCount, L.NameCount) ||
      !validateIndexArray(P, G.Lower, G.NodeCount, L.NameCount) ||
      !validateIndexArray(P, G.Upper, G.NodeCount, L.NameCount))
    return false;
  for (uint32_t I = 0; I < G.NodeCount; ++I)
    if (static_cast<uint8_t>(D[G.Flags + I]) > 3)
      return false;
  if (!validatePrefixSums(P, G.ConflictStart, G.NodeCount, G.ConflictCount,
                          /*Strict=*/false) ||
      !validatePrefixSums(P, G.ChildStart, G.NodeCount, G.ChildCount,
                          /*Strict=*/false))
    return false;
  if (!validateIndexArray(P, G.Conflicts, G.ConflictCount, L.NameCount))
    return false;
  for (uint32_t I = 0; I < G.ChildCount; ++I)
    if (!validLabelRaw(loadLE64(D + G.ChildLabel + 8 * size_t(I))))
      return false;
  // Child targets are node ids local to their entry's sketch.
  for (uint32_t E = 0; E < G.EntryCount; ++E) {
    uint32_t N0 = loadLE32(D + G.EntryNodeStart + 4 * size_t(E));
    uint32_t N1 = loadLE32(D + G.EntryNodeStart + 4 * size_t(E) + 4);
    uint32_t EntryNodes = N1 - N0;
    uint32_t C0 = loadLE32(D + G.ChildStart + 4 * size_t(N0));
    uint32_t C1 = loadLE32(D + G.ChildStart + 4 * size_t(N1));
    for (uint32_t C = C0; C < C1; ++C)
      if (loadLE32(D + G.ChildTo + 4 * size_t(C)) >= EntryNodes)
        return false;
  }
  return true;
}

} // namespace

bool retypd::validatePayload(std::string_view Payload, uint64_t PoolSize) {
  Layout L;
  if (!parseLayout(Payload, L) || !validateNames(Payload, L, PoolSize))
    return false;
  switch (baseTag(L.Tag)) {
  case kSchemeTag:
    return validateScheme(Payload, L);
  case kGenResultTag:
    // Gen results precede the solver; a backend-marked gen tag is corrupt.
    return L.Tag == kGenResultTag && validateGenResult(Payload, L);
  case kSketchBundleTag:
    return validateSketchBundle(Payload, L);
  default:
    return false;
  }
}

const char *retypd::payloadKindName(uint8_t Tag) {
  switch (baseTag(Tag)) {
  case kSchemeTag:
    return "scheme";
  case kGenResultTag:
    return "gen";
  case kSketchBundleTag:
    return "sketches";
  default:
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Name resolution (shared by the trusted decoders)
//===----------------------------------------------------------------------===//

namespace {

/// Resolves payload name indices to interned symbols / lattice elements.
/// Inline mode interns each distinct name once (lazily, like the v2
/// decoder); pool mode is two array loads through the store's translation
/// table — no string hashing at all.
class NameCtx {
public:
  NameCtx(std::string_view P, const Layout &L, SymbolTable &Syms,
          const Lattice &Lat, const PoolBindingView *Pool)
      : P(P), L(L), Syms(Syms), Lat(Lat), Pool(Pool) {
    if (L.Mode == kNameModeInline) {
      SymCache.assign(L.NameCount, kUnset);
      LatCache.assign(L.NameCount, 0);
      LatResolved.assign(L.NameCount, 0);
    }
  }

  /// False when a pool-mode payload arrives without a binding.
  bool ok() const { return L.Mode == kNameModeInline || Pool != nullptr; }

  std::string_view view(uint32_t I) const {
    size_t A = loadLE32(P.data() + L.NameTable + 4 * size_t(I));
    size_t B = loadLE32(P.data() + L.NameTable + 4 * size_t(I) + 4);
    return P.substr(L.Blob + A, B - A);
  }

  bool sym(uint32_t I, SymbolId &Out) {
    if (L.Mode == kNameModePool) {
      uint32_t Id = loadLE32(P.data() + L.NameTable + 4 * size_t(I));
      if (Id >= Pool->Size)
        return false;
      Out = Pool->SymIds[Id];
      return true;
    }
    SymbolId &C = SymCache[I];
    if (C == kUnset)
      C = Syms.intern(view(I));
    Out = C;
    return true;
  }

  bool lat(uint32_t I, LatticeElem &Out) {
    if (L.Mode == kNameModePool) {
      uint32_t Id = loadLE32(P.data() + L.NameTable + 4 * size_t(I));
      if (Id >= Pool->Size || Pool->LatElems[Id] == 0)
        return false;
      Out = Pool->LatElems[Id] - 1;
      return true;
    }
    if (!LatResolved[I]) {
      auto E = Lat.lookup(view(I));
      LatCache[I] = E ? *E + 1 : 0;
      LatResolved[I] = 1;
    }
    if (LatCache[I] == 0)
      return false;
    Out = LatCache[I] - 1;
    return true;
  }

private:
  static constexpr SymbolId kUnset = static_cast<SymbolId>(-1);
  std::string_view P;
  const Layout &L;
  SymbolTable &Syms;
  const Lattice &Lat;
  const PoolBindingView *Pool;
  std::vector<SymbolId> SymCache;
  std::vector<uint32_t> LatCache;
  std::vector<char> LatResolved;
};

/// Materializes the DTV array of a validated scheme/gen body.
bool decodeDtvs(std::string_view P, const DtvGeom &G, uint32_t Count,
                NameCtx &N, std::vector<DerivedTypeVariable> &Out) {
  const char *D = P.data();
  Out.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint8_t Rank = static_cast<uint8_t>(D[G.Rank + I]);
    TypeVariable Base;
    if (Rank == 1) {
      LatticeElem E;
      if (!N.lat(loadLE32(D + G.NameIx + 4 * size_t(I)), E))
        return false;
      Base = TypeVariable::constant(E);
    } else if (Rank == 2) {
      SymbolId S;
      if (!N.sym(loadLE32(D + G.NameIx + 4 * size_t(I)), S))
        return false;
      Base = TypeVariable::var(S);
    }
    uint32_t A = loadLE32(D + G.LStart + 4 * size_t(I));
    uint32_t B = loadLE32(D + G.LStart + 4 * size_t(I) + 4);
    std::vector<Label> Word;
    Word.reserve(B - A);
    for (uint32_t J = A; J < B; ++J)
      Word.push_back(Label::fromRaw(loadLE64(D + G.LRaw + 8 * size_t(J))));
    Out.emplace_back(Base, std::move(Word));
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

namespace {

/// Payload-local interner: names and DTVs become dense indices in
/// first-use order.
class Encoder {
public:
  Encoder(const SymbolTable &Syms, const Lattice &Lat)
      : Syms(Syms), Lat(Lat) {}

  uint32_t nameIdx(const std::string &Name) {
    auto [It, Inserted] = NameIds.try_emplace(Name, Names.size());
    if (Inserted)
      Names.push_back(&It->first);
    return static_cast<uint32_t>(It->second);
  }

  uint32_t dtvIdx(const DerivedTypeVariable &V) {
    auto [It, Inserted] = DtvIds.try_emplace(V, Dtvs.size());
    if (Inserted)
      Dtvs.push_back(&It->first);
    return static_cast<uint32_t>(It->second);
  }

  /// Resolves a DTV base to (rank, name index). Rank 0 (invalid) carries
  /// no name — its index field encodes as 0.
  std::pair<uint8_t, uint32_t> baseOf(const DerivedTypeVariable &V) {
    TypeVariable B = V.base();
    if (B.isConstant())
      return {1, nameIdx(Lat.name(B.latticeElem()))};
    if (B.isVar())
      return {2, nameIdx(Syms.name(B.symbol()))};
    return {0, 0};
  }

  const std::vector<const std::string *> &names() const { return Names; }
  const std::vector<const DerivedTypeVariable *> &dtvs() const {
    return Dtvs;
  }

private:
  const SymbolTable &Syms;
  const Lattice &Lat;
  std::vector<const std::string *> Names;
  std::unordered_map<std::string, uint64_t> NameIds;
  std::vector<const DerivedTypeVariable *> Dtvs;
  std::unordered_map<DerivedTypeVariable, uint64_t> DtvIds;
};

/// Assembles header + inline name section + body into the final payload.
std::string assembleInline(uint8_t Tag,
                           const std::vector<const std::string *> &Names,
                           std::string_view Body) {
  uint64_t BlobLen = 0;
  for (const std::string *N : Names)
    BlobLen += N->size();
  uint64_t BodyOff = kHeaderBytes + 4 * (uint64_t(Names.size()) + 1) + BlobLen;
  std::string Out;
  Out.reserve(static_cast<size_t>(BodyOff) + Body.size());
  Out.push_back(static_cast<char>(Tag));
  Out.push_back(static_cast<char>(kNameModeInline));
  Out.push_back(0);
  Out.push_back(0);
  appendLE32(Out, static_cast<uint32_t>(Names.size()));
  appendLE32(Out, static_cast<uint32_t>(BodyOff));
  uint32_t Off = 0;
  for (const std::string *N : Names) {
    appendLE32(Out, Off);
    Off += static_cast<uint32_t>(N->size());
  }
  appendLE32(Out, Off);
  for (const std::string *N : Names)
    Out.append(*N);
  Out.append(Body);
  return Out;
}

/// Serializes a columnar DTV table (the encoder's DTV list, in id order).
void encodeDtvTable(std::string &Body, Encoder &Enc) {
  const auto &Dtvs = Enc.dtvs();
  std::string NameIx, LStart, LRaw;
  uint32_t Labels = 0;
  for (const DerivedTypeVariable *V : Dtvs) {
    auto [Rank, Idx] = Enc.baseOf(*V);
    Body.push_back(static_cast<char>(Rank));
    appendLE32(NameIx, Idx);
    appendLE32(LStart, Labels);
    Labels += static_cast<uint32_t>(V->size());
    for (Label L : V->labels())
      appendLE64(LRaw, L.raw());
  }
  appendLE32(LStart, Labels);
  Body += NameIx;
  Body += LStart;
  Body += LRaw;
}

/// Serializes the constraint index arrays (subs, vars, addsubs).
void encodeConstraintArrays(std::string &Body, Encoder &Enc,
                            const ConstraintSet &C) {
  for (const SubtypeConstraint &SC : C.subtypes()) {
    appendLE32(Body, Enc.dtvIdx(SC.Lhs));
    appendLE32(Body, Enc.dtvIdx(SC.Rhs));
  }
  for (const DerivedTypeVariable &V : C.vars())
    appendLE32(Body, Enc.dtvIdx(V));
  for (const AddSubConstraint &AC : C.addSubs()) {
    appendLE32(Body, AC.IsSub ? 1 : 0);
    appendLE32(Body, Enc.dtvIdx(AC.X));
    appendLE32(Body, Enc.dtvIdx(AC.Y));
    appendLE32(Body, Enc.dtvIdx(AC.Z));
  }
}

/// Assigns DTV ids (and the names their bases pull in) in constraint
/// order, so identical sets encode to identical bytes.
void noteDtvs(Encoder &Enc, const ConstraintSet &C) {
  for (const SubtypeConstraint &SC : C.subtypes()) {
    Enc.dtvIdx(SC.Lhs);
    Enc.dtvIdx(SC.Rhs);
  }
  for (const DerivedTypeVariable &V : C.vars())
    Enc.dtvIdx(V);
  for (const AddSubConstraint &AC : C.addSubs()) {
    Enc.dtvIdx(AC.X);
    Enc.dtvIdx(AC.Y);
    Enc.dtvIdx(AC.Z);
  }
}

} // namespace

std::string retypd::encodeScheme(const TypeScheme &Scheme,
                                 const SymbolTable &Syms, const Lattice &Lat,
                                 BackendKind Backend) {
  EventCounters::SchemeEncodes.fetch_add(1, std::memory_order_relaxed);
  Encoder Enc(Syms, Lat);
  const ConstraintSet &C = Scheme.Constraints;
  noteDtvs(Enc, C);

  std::string Body;
  appendLE32(Body, static_cast<uint32_t>(Enc.dtvs().size()));
  appendLE32(Body, static_cast<uint32_t>(C.subtypes().size()));
  appendLE32(Body, static_cast<uint32_t>(C.vars().size()));
  appendLE32(Body, static_cast<uint32_t>(C.addSubs().size()));
  appendLE32(Body, static_cast<uint32_t>(Scheme.Existentials.size()));
  encodeDtvTable(Body, Enc);
  // Proc/existential names are assigned after the DTV bases, matching the
  // id-assignment order of the v2 codec; the proc index lives in the
  // fixed count block, so patch it in after assignment.
  uint32_t ProcIdx = Enc.nameIdx(Syms.name(Scheme.ProcVar.symbol()));
  std::string Tail;
  for (TypeVariable V : Scheme.Existentials)
    appendLE32(Tail, Enc.nameIdx(Syms.name(V.symbol())));
  encodeConstraintArrays(Tail, Enc, C);

  std::string Full;
  Full.reserve(Body.size() + Tail.size() + 4);
  Full.append(Body, 0, 20);
  appendLE32(Full, ProcIdx);
  Full.append(Body, 20, Body.size() - 20);
  Full += Tail;
  return assembleInline(backendTag(kSchemeTag, Backend), Enc.names(), Full);
}

namespace {

std::optional<TypeScheme> decodeSchemeImpl(std::string_view P,
                                           SymbolTable &Syms,
                                           const Lattice &Lat,
                                           const PoolBindingView *Pool) {
  Layout L;
  if (!parseLayout(P, L) || baseTag(L.Tag) != kSchemeTag)
    return std::nullopt;
  NameCtx N(P, L, Syms, Lat, Pool);
  if (!N.ok())
    return std::nullopt;
  const char *D = P.data();
  size_t B = L.BodyOff;
  uint32_t DtvCount = loadLE32(D + B), SubCount = loadLE32(D + B + 4),
           VarCount = loadLE32(D + B + 8), AddSubCount = loadLE32(D + B + 12),
           ExistCount = loadLE32(D + B + 16), ProcIdx = loadLE32(D + B + 20);
  DtvGeom G;
  if (!dtvGeom(P, B + 24, DtvCount, G))
    return std::nullopt;
  std::vector<DerivedTypeVariable> Dtvs;
  if (!decodeDtvs(P, G, DtvCount, N, Dtvs))
    return std::nullopt;

  TypeScheme Scheme;
  SymbolId ProcSym;
  if (!N.sym(ProcIdx, ProcSym))
    return std::nullopt;
  Scheme.ProcVar = TypeVariable::var(ProcSym);
  size_t Exist = static_cast<size_t>(G.End);
  for (uint32_t I = 0; I < ExistCount; ++I) {
    SymbolId S;
    if (!N.sym(loadLE32(D + Exist + 4 * size_t(I)), S))
      return std::nullopt;
    Scheme.Existentials.push_back(TypeVariable::var(S));
  }
  size_t Subs = Exist + 4 * size_t(ExistCount);
  for (uint32_t I = 0; I < SubCount; ++I) {
    uint32_t Lh = loadLE32(D + Subs + 8 * size_t(I));
    uint32_t Rh = loadLE32(D + Subs + 8 * size_t(I) + 4);
    Scheme.Constraints.addSubtype(Dtvs[Lh], Dtvs[Rh]);
  }
  size_t Vars = Subs + 8 * size_t(SubCount);
  for (uint32_t I = 0; I < VarCount; ++I)
    Scheme.Constraints.addVar(Dtvs[loadLE32(D + Vars + 4 * size_t(I))]);
  size_t Adds = Vars + 4 * size_t(VarCount);
  for (uint32_t I = 0; I < AddSubCount; ++I) {
    size_t A = Adds + 16 * size_t(I);
    AddSubConstraint AC;
    AC.IsSub = loadLE32(D + A) != 0;
    AC.X = Dtvs[loadLE32(D + A + 4)];
    AC.Y = Dtvs[loadLE32(D + A + 8)];
    AC.Z = Dtvs[loadLE32(D + A + 12)];
    Scheme.Constraints.addAddSub(AC);
  }
  return Scheme;
}

} // namespace

std::optional<TypeScheme> retypd::decodeScheme(std::string_view Payload,
                                               SymbolTable &Syms,
                                               const Lattice &Lat) {
  EventCounters::SchemeDecodes.fetch_add(1, std::memory_order_relaxed);
  if (!validatePayload(Payload, 0))
    return std::nullopt;
  return decodeSchemeImpl(Payload, Syms, Lat, nullptr);
}

std::optional<TypeScheme>
retypd::decodeSchemeTrusted(std::string_view Payload, SymbolTable &Syms,
                            const Lattice &Lat, const PoolBindingView *Pool) {
  EventCounters::SchemeDecodes.fetch_add(1, std::memory_order_relaxed);
  return decodeSchemeImpl(Payload, Syms, Lat, Pool);
}

//===----------------------------------------------------------------------===//
// Generation-result payloads (cached ConstraintGen output)
//===----------------------------------------------------------------------===//

std::string retypd::encodeGenResult(const ConstraintSet &C,
                                    const Hash128 &SetHash,
                                    const std::vector<TypeVariable>
                                        &Interesting,
                                    const std::vector<TypeVariable> &Callsites,
                                    const SymbolTable &Syms,
                                    const Lattice &Lat) {
  EventCounters::SchemeEncodes.fetch_add(1, std::memory_order_relaxed);
  Encoder Enc(Syms, Lat);
  noteDtvs(Enc, C);

  std::string Body;
  appendLE64(Body, SetHash.Hi);
  appendLE64(Body, SetHash.Lo);
  appendLE32(Body, static_cast<uint32_t>(Interesting.size()));
  appendLE32(Body, static_cast<uint32_t>(Callsites.size()));
  appendLE32(Body, static_cast<uint32_t>(Enc.dtvs().size()));
  appendLE32(Body, static_cast<uint32_t>(C.subtypes().size()));
  appendLE32(Body, static_cast<uint32_t>(C.vars().size()));
  appendLE32(Body, static_cast<uint32_t>(C.addSubs().size()));

  // The interesting/callsite arrays precede the DTV table, but their
  // names must be ASSIGNED after the DTV bases to keep the v2 codec's
  // deterministic id order — build the DTV table into a side buffer
  // first, then emit the arrays, then splice.
  std::string DtvTable;
  encodeDtvTable(DtvTable, Enc);

  // Interesting is an unordered set at the producer: sort by name so
  // identical generation results encode to identical payload bytes.
  std::vector<const std::string *> InterestingNames;
  InterestingNames.reserve(Interesting.size());
  for (TypeVariable V : Interesting)
    InterestingNames.push_back(&Syms.name(V.symbol()));
  std::sort(InterestingNames.begin(), InterestingNames.end(),
            [](const std::string *A, const std::string *B) { return *A < *B; });
  for (const std::string *N : InterestingNames)
    appendLE32(Body, Enc.nameIdx(*N));
  for (TypeVariable V : Callsites)
    appendLE32(Body, Enc.nameIdx(Syms.name(V.symbol())));

  Body += DtvTable;
  encodeConstraintArrays(Body, Enc, C);
  return assembleInline(kGenResultTag, Enc.names(), Body);
}

namespace {

/// Shared geometry walk for the full and meta gen decoders.
struct GenGeom {
  uint32_t IntCount, CallCount, DtvCount, SubCount, VarCount, AddSubCount;
  size_t Int, Call;
  DtvGeom Dtv;
  Hash128 SetHash;
};

bool genGeom(std::string_view P, const Layout &L, GenGeom &G) {
  const char *D = P.data();
  size_t B = L.BodyOff;
  G.SetHash.Hi = loadLE64(D + B);
  G.SetHash.Lo = loadLE64(D + B + 8);
  G.IntCount = loadLE32(D + B + 16);
  G.CallCount = loadLE32(D + B + 20);
  G.DtvCount = loadLE32(D + B + 24);
  G.SubCount = loadLE32(D + B + 28);
  G.VarCount = loadLE32(D + B + 32);
  G.AddSubCount = loadLE32(D + B + 36);
  G.Int = B + 40;
  G.Call = G.Int + 4 * size_t(G.IntCount);
  return dtvGeom(P, G.Call + 4 * size_t(G.CallCount), G.DtvCount, G.Dtv);
}

bool decodeVarList(std::string_view P, size_t Off, uint32_t Count, NameCtx &N,
                   std::vector<TypeVariable> &Out) {
  Out.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    SymbolId S;
    if (!N.sym(loadLE32(P.data() + Off + 4 * size_t(I)), S))
      return false;
    Out.push_back(TypeVariable::var(S));
  }
  return true;
}

std::optional<DecodedGenResult>
decodeGenResultImpl(std::string_view P, SymbolTable &Syms, const Lattice &Lat,
                    const PoolBindingView *Pool) {
  Layout L;
  if (!parseLayout(P, L) || L.Tag != kGenResultTag)
    return std::nullopt;
  NameCtx N(P, L, Syms, Lat, Pool);
  if (!N.ok())
    return std::nullopt;
  GenGeom G;
  if (!genGeom(P, L, G))
    return std::nullopt;

  DecodedGenResult Out;
  Out.SetHash = G.SetHash;
  if (!decodeVarList(P, G.Int, G.IntCount, N, Out.Interesting) ||
      !decodeVarList(P, G.Call, G.CallCount, N, Out.Callsites))
    return std::nullopt;

  std::vector<DerivedTypeVariable> Dtvs;
  if (!decodeDtvs(P, G.Dtv, G.DtvCount, N, Dtvs))
    return std::nullopt;

  // The payload encodes an already-deduplicated set, so the trusted
  // appends skip the dedup-index hashing entirely — this is the hot loop
  // of a warm run's generate phase.
  const char *D = P.data();
  size_t Subs = static_cast<size_t>(G.Dtv.End);
  Out.C.reserve(G.SubCount, G.VarCount, G.AddSubCount);
  for (uint32_t I = 0; I < G.SubCount; ++I) {
    uint32_t Lh = loadLE32(D + Subs + 8 * size_t(I));
    uint32_t Rh = loadLE32(D + Subs + 8 * size_t(I) + 4);
    Out.C.appendSubtypeTrusted(Dtvs[Lh], Dtvs[Rh]);
  }
  size_t Vars = Subs + 8 * size_t(G.SubCount);
  for (uint32_t I = 0; I < G.VarCount; ++I)
    Out.C.appendVarTrusted(Dtvs[loadLE32(D + Vars + 4 * size_t(I))]);
  size_t Adds = Vars + 4 * size_t(G.VarCount);
  for (uint32_t I = 0; I < G.AddSubCount; ++I) {
    size_t A = Adds + 16 * size_t(I);
    AddSubConstraint AC;
    AC.IsSub = loadLE32(D + A) != 0;
    AC.X = Dtvs[loadLE32(D + A + 4)];
    AC.Y = Dtvs[loadLE32(D + A + 8)];
    AC.Z = Dtvs[loadLE32(D + A + 12)];
    Out.C.addAddSub(AC);
  }
  return Out;
}

} // namespace

std::optional<DecodedGenResult>
retypd::decodeGenResult(std::string_view Payload, SymbolTable &Syms,
                        const Lattice &Lat) {
  EventCounters::SchemeDecodes.fetch_add(1, std::memory_order_relaxed);
  if (!validatePayload(Payload, 0))
    return std::nullopt;
  return decodeGenResultImpl(Payload, Syms, Lat, nullptr);
}

std::optional<DecodedGenResult>
retypd::decodeGenResultTrusted(std::string_view Payload, SymbolTable &Syms,
                               const Lattice &Lat,
                               const PoolBindingView *Pool) {
  EventCounters::SchemeDecodes.fetch_add(1, std::memory_order_relaxed);
  return decodeGenResultImpl(Payload, Syms, Lat, Pool);
}

std::optional<GenResultMeta>
retypd::decodeGenResultMetaTrusted(std::string_view Payload, SymbolTable &Syms,
                                   const Lattice &Lat,
                                   const PoolBindingView *Pool) {
  EventCounters::SchemeDecodes.fetch_add(1, std::memory_order_relaxed);
  Layout L;
  if (!parseLayout(Payload, L) || L.Tag != kGenResultTag)
    return std::nullopt;
  NameCtx N(Payload, L, Syms, Lat, Pool);
  if (!N.ok())
    return std::nullopt;
  const char *D = Payload.data();
  size_t B = L.BodyOff;
  GenResultMeta Out;
  Out.SetHash.Hi = loadLE64(D + B);
  Out.SetHash.Lo = loadLE64(D + B + 8);
  uint32_t IntCount = loadLE32(D + B + 16), CallCount = loadLE32(D + B + 20);
  Out.ConstraintCount = uint64_t(loadLE32(D + B + 28)) +
                        loadLE32(D + B + 32) + loadLE32(D + B + 36);
  size_t Int = B + 40;
  size_t Call = Int + 4 * size_t(IntCount);
  if (!decodeVarList(Payload, Int, IntCount, N, Out.Interesting) ||
      !decodeVarList(Payload, Call, CallCount, N, Out.Callsites))
    return std::nullopt;
  return Out;
}

//===----------------------------------------------------------------------===//
// Sketch bundles (cached solver solutions)
//===----------------------------------------------------------------------===//

std::string retypd::encodeSketchBundle(
    const std::vector<std::pair<TypeVariable, const Sketch *>> &Entries,
    const SymbolTable &Syms, const Lattice &Lat, BackendKind Backend) {
  EventCounters::SchemeEncodes.fetch_add(1, std::memory_order_relaxed);
  std::vector<const std::string *> Names;
  std::unordered_map<std::string, uint64_t> NameIds;
  auto nameIdx = [&](const std::string &N) -> uint32_t {
    auto [It, Inserted] = NameIds.try_emplace(N, Names.size());
    if (Inserted)
      Names.push_back(&It->first);
    return static_cast<uint32_t>(It->second);
  };

  // Column buffers: one walk over the entries fills them all, assigning
  // names in deterministic first-use order.
  std::string EntryVar, EntryNodeStart, Mark, Lower, Upper, Flags,
      ConflictStart, ChildStart, Conflicts, ChildLabel, ChildTo;
  uint32_t Nodes = 0, NConflicts = 0, NChildren = 0;
  for (const auto &[Var, Sk] : Entries) {
    appendLE32(EntryVar, nameIdx(Syms.name(Var.symbol())));
    appendLE32(EntryNodeStart, Nodes);
    Nodes += Sk->size();
    for (uint32_t N = 0; N < Sk->size(); ++N) {
      const Sketch::Node &Node = Sk->node(N);
      appendLE32(Mark, nameIdx(Lat.name(Node.Mark)));
      appendLE32(Lower, nameIdx(Lat.name(Node.Lower)));
      appendLE32(Upper, nameIdx(Lat.name(Node.Upper)));
      Flags.push_back(static_cast<char>((Node.PointerLike ? 1 : 0) |
                                        (Node.IntegerLike ? 2 : 0)));
      appendLE32(ConflictStart, NConflicts);
      NConflicts += static_cast<uint32_t>(Node.Conflicts.size());
      for (LatticeElem E : Node.Conflicts)
        appendLE32(Conflicts, nameIdx(Lat.name(E)));
      appendLE32(ChildStart, NChildren);
      NChildren += static_cast<uint32_t>(Node.Children.size());
      for (const auto &[L, To] : Node.Children) {
        appendLE64(ChildLabel, L.raw());
        appendLE32(ChildTo, To);
      }
    }
  }
  appendLE32(EntryNodeStart, Nodes);
  appendLE32(ConflictStart, NConflicts);
  appendLE32(ChildStart, NChildren);

  std::string Body;
  appendLE32(Body, static_cast<uint32_t>(Entries.size()));
  appendLE32(Body, Nodes);
  appendLE32(Body, NConflicts);
  appendLE32(Body, NChildren);
  Body += EntryVar;
  Body += EntryNodeStart;
  Body += Mark;
  Body += Lower;
  Body += Upper;
  Body += Flags;
  Body += ConflictStart;
  Body += ChildStart;
  Body += Conflicts;
  Body += ChildLabel;
  Body += ChildTo;
  return assembleInline(backendTag(kSketchBundleTag, Backend), Names, Body);
}

namespace {

std::optional<std::vector<SketchBinding>>
decodeSketchBundleImpl(std::string_view P, SymbolTable &Syms,
                       const Lattice &Lat, const PoolBindingView *Pool) {
  Layout L;
  if (!parseLayout(P, L) || baseTag(L.Tag) != kSketchBundleTag)
    return std::nullopt;
  NameCtx N(P, L, Syms, Lat, Pool);
  if (!N.ok())
    return std::nullopt;
  BundleGeom G;
  if (!bundleGeom(P, L.BodyOff, G))
    return std::nullopt;
  const char *D = P.data();

  std::vector<SketchBinding> Out;
  Out.reserve(G.EntryCount);
  for (uint32_t E = 0; E < G.EntryCount; ++E) {
    SymbolId VarSym;
    if (!N.sym(loadLE32(D + G.EntryVar + 4 * size_t(E)), VarSym))
      return std::nullopt;
    uint32_t N0 = loadLE32(D + G.EntryNodeStart + 4 * size_t(E));
    uint32_t N1 = loadLE32(D + G.EntryNodeStart + 4 * size_t(E) + 4);
    Sketch Sk;
    for (uint32_t NI = N0; NI < N1; ++NI) {
      uint32_t Id = NI == N0 ? Sk.root() : Sk.addNode();
      Sketch::Node &Node = Sk.node(Id);
      LatticeElem Mark, Lower, Upper;
      if (!N.lat(loadLE32(D + G.Mark + 4 * size_t(NI)), Mark) ||
          !N.lat(loadLE32(D + G.Lower + 4 * size_t(NI)), Lower) ||
          !N.lat(loadLE32(D + G.Upper + 4 * size_t(NI)), Upper))
        return std::nullopt;
      Node.Mark = Mark;
      Node.Lower = Lower;
      Node.Upper = Upper;
      uint8_t F = static_cast<uint8_t>(D[G.Flags + NI]);
      Node.PointerLike = (F & 1) != 0;
      Node.IntegerLike = (F & 2) != 0;
      uint32_t C0 = loadLE32(D + G.ConflictStart + 4 * size_t(NI));
      uint32_t C1 = loadLE32(D + G.ConflictStart + 4 * size_t(NI) + 4);
      Node.Conflicts.reserve(C1 - C0);
      for (uint32_t C = C0; C < C1; ++C) {
        LatticeElem El;
        if (!N.lat(loadLE32(D + G.Conflicts + 4 * size_t(C)), El))
          return std::nullopt;
        Node.Conflicts.push_back(El);
      }
      uint32_t K0 = loadLE32(D + G.ChildStart + 4 * size_t(NI));
      uint32_t K1 = loadLE32(D + G.ChildStart + 4 * size_t(NI) + 4);
      for (uint32_t K = K0; K < K1; ++K) {
        Label Lb = Label::fromRaw(loadLE64(D + G.ChildLabel + 8 * size_t(K)));
        Node.Children[Lb] = loadLE32(D + G.ChildTo + 4 * size_t(K));
      }
    }
    Out.emplace_back(TypeVariable::var(VarSym), std::move(Sk));
  }
  return Out;
}

} // namespace

std::optional<std::vector<SketchBinding>>
retypd::decodeSketchBundle(std::string_view Payload, SymbolTable &Syms,
                           const Lattice &Lat) {
  EventCounters::SchemeDecodes.fetch_add(1, std::memory_order_relaxed);
  if (!validatePayload(Payload, 0))
    return std::nullopt;
  return decodeSketchBundleImpl(Payload, Syms, Lat, nullptr);
}

std::optional<std::vector<SketchBinding>>
retypd::decodeSketchBundleTrusted(std::string_view Payload, SymbolTable &Syms,
                                  const Lattice &Lat,
                                  const PoolBindingView *Pool) {
  EventCounters::SchemeDecodes.fetch_add(1, std::memory_order_relaxed);
  return decodeSketchBundleImpl(Payload, Syms, Lat, Pool);
}

//===----------------------------------------------------------------------===//
// Inline -> pool transcoding
//===----------------------------------------------------------------------===//

std::optional<std::string> retypd::transcodeNamesToPool(
    std::string_view Payload,
    const std::function<uint32_t(std::string_view)> &PoolIdFor) {
  Layout L;
  if (!parseLayout(Payload, L) || L.Mode != kNameModeInline ||
      !validatePayload(Payload, 0))
    return std::nullopt;
  const char *D = Payload.data();
  uint64_t NewBodyOff = kHeaderBytes + 4 * uint64_t(L.NameCount);
  std::string Out;
  Out.reserve(static_cast<size_t>(NewBodyOff) +
              (Payload.size() - L.BodyOff));
  Out.push_back(static_cast<char>(L.Tag));
  Out.push_back(static_cast<char>(kNameModePool));
  Out.push_back(0);
  Out.push_back(0);
  appendLE32(Out, L.NameCount);
  appendLE32(Out, static_cast<uint32_t>(NewBodyOff));
  for (uint32_t I = 0; I < L.NameCount; ++I) {
    size_t A = loadLE32(D + L.NameTable + 4 * size_t(I));
    size_t B = loadLE32(D + L.NameTable + 4 * size_t(I) + 4);
    appendLE32(Out, PoolIdFor(Payload.substr(L.Blob + A, B - A)));
  }
  Out.append(Payload.substr(L.BodyOff));
  return Out;
}

//===----------------------------------------------------------------------===//
// Structural hashing
//===----------------------------------------------------------------------===//

namespace {

void hashDtv(Fnv128 &H, const DerivedTypeVariable &V, const SymbolTable &Syms,
             const Lattice &Lat) {
  TypeVariable B = V.base();
  if (B.isConstant()) {
    H.updateByte(1);
    H.update(Lat.name(B.latticeElem()));
  } else if (B.isVar()) {
    H.updateByte(2);
    H.update(Syms.name(B.symbol()));
  } else {
    H.updateByte(0);
  }
  H.sep();
  H.updateU64(V.size());
  for (Label L : V.labels())
    H.updateU64(L.raw());
}

/// Streams one canonical view. Both hash entry points funnel here so the
/// presorted and sorting variants can never diverge.
void hashView(Fnv128 &H, const ConstraintSet::CanonicalView &View,
              const SymbolTable &Syms, const Lattice &Lat) {
  H.updateU64(View.Subs.size());
  for (const SubtypeConstraint *S : View.Subs) {
    H.updateByte('S');
    hashDtv(H, S->Lhs, Syms, Lat);
    hashDtv(H, S->Rhs, Syms, Lat);
  }
  H.updateU64(View.Vars.size());
  for (const DerivedTypeVariable *V : View.Vars) {
    H.updateByte('V');
    hashDtv(H, *V, Syms, Lat);
  }
  H.updateU64(View.AddSubs.size());
  for (const AddSubConstraint *A : View.AddSubs) {
    H.updateByte(A->IsSub ? 's' : 'a');
    hashDtv(H, A->X, Syms, Lat);
    hashDtv(H, A->Y, Syms, Lat);
    hashDtv(H, A->Z, Syms, Lat);
  }
}

/// The stored order as a view — only valid as a *canonical* view when the
/// caller guarantees the set was canonicalized.
ConstraintSet::CanonicalView storedOrderView(const ConstraintSet &C) {
  ConstraintSet::CanonicalView V;
  V.Subs.reserve(C.subtypes().size());
  for (const SubtypeConstraint &S : C.subtypes())
    V.Subs.push_back(&S);
  V.Vars.reserve(C.vars().size());
  for (const DerivedTypeVariable &D : C.vars())
    V.Vars.push_back(&D);
  V.AddSubs.reserve(C.addSubs().size());
  for (const AddSubConstraint &A : C.addSubs())
    V.AddSubs.push_back(&A);
  return V;
}

} // namespace

void retypd::hashConstraintSet(Fnv128 &H, const ConstraintSet &C,
                               const SymbolTable &Syms, const Lattice &Lat) {
  hashView(H, C.canonicalView(Syms, Lat), Syms, Lat);
}

Hash128 retypd::constraintSetHash(const ConstraintSet &C,
                                  const SymbolTable &Syms,
                                  const Lattice &Lat) {
  Fnv128 H;
  H.update("retypd-cset-v1");
  H.sep();
  hashConstraintSet(H, C, Syms, Lat);
  return H.digest();
}

Hash128 retypd::canonicalSetHash(const ConstraintSet &C,
                                 const SymbolTable &Syms,
                                 const Lattice &Lat) {
  Fnv128 H;
  H.update("retypd-cset-v1");
  H.sep();
  hashView(H, storedOrderView(C), Syms, Lat);
  return H.digest();
}

Hash128 retypd::schemeStructuralHash(const TypeScheme &Scheme,
                                     const SymbolTable &Syms,
                                     const Lattice &Lat) {
  Fnv128 H;
  H.update("retypd-scheme-v1");
  H.sep();
  H.update(Syms.name(Scheme.ProcVar.symbol()));
  H.sep();
  H.updateU64(Scheme.Existentials.size());
  for (TypeVariable V : Scheme.Existentials) {
    H.update(Syms.name(V.symbol()));
    H.sep();
  }
  hashConstraintSet(H, Scheme.Constraints, Syms, Lat);
  return H.digest();
}

//===----------------------------------------------------------------------===//
// Legacy text serialization (reference format; tests only)
//===----------------------------------------------------------------------===//

std::string retypd::serializeSchemeText(const TypeScheme &Scheme,
                                        const SymbolTable &Syms,
                                        const Lattice &Lat) {
  std::string S = "proc " + Syms.name(Scheme.ProcVar.symbol()) + "\n";
  S += "existentials";
  for (TypeVariable V : Scheme.Existentials) {
    S += ' ';
    S += Syms.name(V.symbol());
  }
  S += '\n';
  S += Scheme.Constraints.str(Syms, Lat);
  return S;
}

std::optional<TypeScheme> retypd::parseSchemeText(const std::string &Text,
                                                  SymbolTable &Syms,
                                                  const Lattice &Lat) {
  std::istringstream In(Text);
  std::string Line;
  TypeScheme Scheme;
  if (!std::getline(In, Line) || Line.rfind("proc ", 0) != 0)
    return std::nullopt;
  Scheme.ProcVar = TypeVariable::var(Syms.intern(Line.substr(5)));
  if (!std::getline(In, Line) || Line.rfind("existentials", 0) != 0)
    return std::nullopt;
  {
    std::istringstream Ex(Line.substr(12));
    std::string Name;
    while (Ex >> Name)
      Scheme.Existentials.push_back(TypeVariable::var(Syms.intern(Name)));
  }
  std::string Rest((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  ConstraintParser Parser(Syms, Lat);
  auto C = Parser.parse(Rest);
  if (!C)
    return std::nullopt;
  Scheme.Constraints = std::move(*C);
  return Scheme;
}
