//===- SchemeCodec.cpp - Binary type-scheme codec + structural hash -------===//

#include "core/SchemeCodec.h"

#include "core/ConstraintParser.h"
#include "support/Stats.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

using namespace retypd;

//===----------------------------------------------------------------------===//
// Payload primitives
//===----------------------------------------------------------------------===//

namespace {

/// LEB128 writer.
void putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

/// Bounds-checked reader over a payload.
class Reader {
public:
  explicit Reader(std::string_view Data) : Data(Data) {}

  bool u8(uint8_t &Out) {
    if (Pos >= Data.size())
      return false;
    Out = static_cast<uint8_t>(Data[Pos++]);
    return true;
  }

  bool varint(uint64_t &Out) {
    Out = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Pos >= Data.size())
        return false;
      uint8_t B = static_cast<uint8_t>(Data[Pos++]);
      // The 10th byte only has room for bit 0: any higher payload bit
      // would be silently shifted away, so it marks corruption.
      if (Shift == 63 && (B & 0x7e))
        return false;
      Out |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return true;
    }
    return false; // over-long encoding
  }

  bool bytes(size_t N, std::string_view &Out) {
    if (N > Data.size() - Pos)
      return false;
    Out = Data.substr(Pos, N);
    Pos += N;
    return true;
  }

  size_t remaining() const { return Data.size() - Pos; }
  bool atEnd() const { return Pos == Data.size(); }

private:
  std::string_view Data;
  size_t Pos = 0;
};

/// A label raw value is trusted only if repacking its fields reproduces it
/// exactly — this rejects both out-of-range kinds and stray bits that the
/// factories can never produce.
bool validLabelRaw(uint64_t Raw) {
  uint64_t Kind = Raw >> 48;
  if (Kind > static_cast<uint64_t>(Label::Kind::Field))
    return false;
  Label L = Label::fromRaw(Raw);
  switch (L.kind()) {
  case Label::Kind::In:
    return Label::in(static_cast<uint32_t>(Raw & 0xffffffffu)).raw() == Raw;
  case Label::Kind::Out:
    return Label::out(static_cast<uint32_t>(Raw & 0xffffffffu)).raw() == Raw;
  case Label::Kind::Load:
    return Label::load().raw() == Raw;
  case Label::Kind::Store:
    return Label::store().raw() == Raw;
  case Label::Kind::Field:
    return Label::field(static_cast<uint16_t>((Raw >> 32) & 0xffff),
                        static_cast<int32_t>(Raw & 0xffffffffu))
               .raw() == Raw;
  }
  return false;
}

/// Payload-local interner: names and DTVs become dense indices in
/// first-use order.
class Encoder {
public:
  Encoder(const SymbolTable &Syms, const Lattice &Lat)
      : Syms(Syms), Lat(Lat) {}

  uint64_t nameIdx(const std::string &Name) {
    auto [It, Inserted] = NameIds.try_emplace(Name, Names.size());
    if (Inserted)
      Names.push_back(&Name);
    return It->second;
  }

  uint64_t dtvIdx(const DerivedTypeVariable &V) {
    auto [It, Inserted] = DtvIds.try_emplace(V, Dtvs.size());
    if (Inserted)
      Dtvs.push_back(&It->first);
    return It->second;
  }

  /// Resolves a DTV base to (rank, name index). Rank 0 (invalid) carries
  /// no name.
  std::pair<uint8_t, uint64_t> baseOf(const DerivedTypeVariable &V) {
    TypeVariable B = V.base();
    if (B.isConstant())
      return {1, nameIdx(Lat.name(B.latticeElem()))};
    if (B.isVar())
      return {2, nameIdx(Syms.name(B.symbol()))};
    return {0, 0};
  }

  const std::vector<const std::string *> &names() const { return Names; }
  const std::vector<const DerivedTypeVariable *> &dtvs() const {
    return Dtvs;
  }

private:
  const SymbolTable &Syms;
  const Lattice &Lat;
  std::vector<const std::string *> Names;
  std::unordered_map<std::string, uint64_t> NameIds;
  std::vector<const DerivedTypeVariable *> Dtvs;
  std::unordered_map<DerivedTypeVariable, uint64_t> DtvIds;
};

} // namespace

//===----------------------------------------------------------------------===//
// encodeScheme / decodeScheme
//===----------------------------------------------------------------------===//

// Payload layout (schema kSchemePayloadVersion, all integers LEB128):
//   u8     payload version
//   n      name count;  n × (len, bytes)
//   d      DTV count;   d × (u8 rank, [nameIdx unless rank 0],
//                            wordLen, wordLen × labelRaw)
//   procNameIdx
//   e      existential count; e × nameIdx
//   s      subtype count;     s × (lhsDtv, rhsDtv)
//   v      var count;         v × dtvIdx
//   a      addsub count;      a × (u8 isSub, xDtv, yDtv, zDtv)
// Trailing bytes after the last field are corruption, not slack.
std::string retypd::encodeScheme(const TypeScheme &Scheme,
                                 const SymbolTable &Syms, const Lattice &Lat) {
  EventCounters::SchemeEncodes.fetch_add(1, std::memory_order_relaxed);
  Encoder Enc(Syms, Lat);

  // First pass: assign DTV/name ids in a deterministic traversal order
  // (DTVs before the names their bases pull in, then proc/existential
  // names) so identical schemes encode to identical bytes.
  struct EncodedDtv {
    uint8_t Rank;
    uint64_t NameIdx;
    const DerivedTypeVariable *V;
  };
  auto NoteDtv = [&](const DerivedTypeVariable &V) { Enc.dtvIdx(V); };
  for (const SubtypeConstraint &C : Scheme.Constraints.subtypes()) {
    NoteDtv(C.Lhs);
    NoteDtv(C.Rhs);
  }
  for (const DerivedTypeVariable &V : Scheme.Constraints.vars())
    NoteDtv(V);
  for (const AddSubConstraint &C : Scheme.Constraints.addSubs()) {
    NoteDtv(C.X);
    NoteDtv(C.Y);
    NoteDtv(C.Z);
  }
  std::vector<EncodedDtv> Dtvs;
  Dtvs.reserve(Enc.dtvs().size());
  for (const DerivedTypeVariable *V : Enc.dtvs()) {
    auto [Rank, Idx] = Enc.baseOf(*V);
    Dtvs.push_back({Rank, Idx, V});
  }
  uint64_t ProcIdx = Enc.nameIdx(Syms.name(Scheme.ProcVar.symbol()));
  std::vector<uint64_t> ExistIdx;
  ExistIdx.reserve(Scheme.Existentials.size());
  for (TypeVariable V : Scheme.Existentials)
    ExistIdx.push_back(Enc.nameIdx(Syms.name(V.symbol())));

  // Second pass: serialize.
  std::string Out;
  Out.push_back(static_cast<char>(kSchemePayloadVersion));
  putVarint(Out, Enc.names().size());
  for (const std::string *N : Enc.names()) {
    putVarint(Out, N->size());
    Out.append(*N);
  }
  putVarint(Out, Dtvs.size());
  for (const EncodedDtv &D : Dtvs) {
    Out.push_back(static_cast<char>(D.Rank));
    if (D.Rank != 0)
      putVarint(Out, D.NameIdx);
    putVarint(Out, D.V->size());
    for (Label L : D.V->labels())
      putVarint(Out, L.raw());
  }
  putVarint(Out, ProcIdx);
  putVarint(Out, ExistIdx.size());
  for (uint64_t I : ExistIdx)
    putVarint(Out, I);
  putVarint(Out, Scheme.Constraints.subtypes().size());
  for (const SubtypeConstraint &C : Scheme.Constraints.subtypes()) {
    putVarint(Out, Enc.dtvIdx(C.Lhs));
    putVarint(Out, Enc.dtvIdx(C.Rhs));
  }
  putVarint(Out, Scheme.Constraints.vars().size());
  for (const DerivedTypeVariable &V : Scheme.Constraints.vars())
    putVarint(Out, Enc.dtvIdx(V));
  putVarint(Out, Scheme.Constraints.addSubs().size());
  for (const AddSubConstraint &C : Scheme.Constraints.addSubs()) {
    Out.push_back(C.IsSub ? 1 : 0);
    putVarint(Out, Enc.dtvIdx(C.X));
    putVarint(Out, Enc.dtvIdx(C.Y));
    putVarint(Out, Enc.dtvIdx(C.Z));
  }
  return Out;
}

std::optional<TypeScheme> retypd::decodeScheme(std::string_view Payload,
                                               SymbolTable &Syms,
                                               const Lattice &Lat) {
  EventCounters::SchemeDecodes.fetch_add(1, std::memory_order_relaxed);
  Reader R(Payload);
  uint8_t Version = 0;
  if (!R.u8(Version) || Version != kSchemePayloadVersion)
    return std::nullopt;

  // Name table: intern each distinct name exactly once.
  uint64_t NameCount = 0;
  if (!R.varint(NameCount) || NameCount > R.remaining())
    return std::nullopt;
  std::vector<std::string_view> Names(static_cast<size_t>(NameCount));
  for (std::string_view &N : Names) {
    uint64_t Len = 0;
    if (!R.varint(Len) || !R.bytes(static_cast<size_t>(Len), N))
      return std::nullopt;
  }

  // DTV table. Bases resolve through the name table; lattice constants
  // must name a real element.
  uint64_t DtvCount = 0;
  if (!R.varint(DtvCount) || DtvCount > R.remaining())
    return std::nullopt;
  std::vector<SymbolId> InternedNames(Names.size(),
                                      static_cast<SymbolId>(-1));
  auto internName = [&](uint64_t Idx) -> std::optional<SymbolId> {
    if (Idx >= Names.size())
      return std::nullopt;
    SymbolId &Cached = InternedNames[static_cast<size_t>(Idx)];
    if (Cached == static_cast<SymbolId>(-1))
      Cached = Syms.intern(Names[static_cast<size_t>(Idx)]);
    return Cached;
  };
  std::vector<DerivedTypeVariable> Dtvs;
  Dtvs.reserve(static_cast<size_t>(DtvCount));
  for (uint64_t I = 0; I < DtvCount; ++I) {
    uint8_t Rank = 0;
    if (!R.u8(Rank) || Rank > 2)
      return std::nullopt;
    TypeVariable Base;
    if (Rank != 0) {
      uint64_t NameIdx = 0;
      if (!R.varint(NameIdx) || NameIdx >= Names.size())
        return std::nullopt;
      if (Rank == 1) {
        auto Elem = Lat.lookup(Names[static_cast<size_t>(NameIdx)]);
        if (!Elem)
          return std::nullopt;
        Base = TypeVariable::constant(*Elem);
      } else {
        auto Sym = internName(NameIdx);
        if (!Sym)
          return std::nullopt;
        Base = TypeVariable::var(*Sym);
      }
    }
    uint64_t WordLen = 0;
    if (!R.varint(WordLen) || WordLen > R.remaining())
      return std::nullopt;
    std::vector<Label> Word;
    Word.reserve(static_cast<size_t>(WordLen));
    for (uint64_t J = 0; J < WordLen; ++J) {
      uint64_t Raw = 0;
      if (!R.varint(Raw) || !validLabelRaw(Raw))
        return std::nullopt;
      Word.push_back(Label::fromRaw(Raw));
    }
    Dtvs.emplace_back(Base, std::move(Word));
  }
  auto dtvAt = [&](uint64_t Idx) -> const DerivedTypeVariable * {
    return Idx < Dtvs.size() ? &Dtvs[static_cast<size_t>(Idx)] : nullptr;
  };

  TypeScheme Scheme;
  uint64_t ProcIdx = 0;
  if (!R.varint(ProcIdx))
    return std::nullopt;
  auto ProcSym = internName(ProcIdx);
  if (!ProcSym)
    return std::nullopt;
  Scheme.ProcVar = TypeVariable::var(*ProcSym);

  uint64_t ExistCount = 0;
  if (!R.varint(ExistCount) || ExistCount > R.remaining() + 1)
    return std::nullopt;
  for (uint64_t I = 0; I < ExistCount; ++I) {
    uint64_t Idx = 0;
    if (!R.varint(Idx))
      return std::nullopt;
    auto Sym = internName(Idx);
    if (!Sym)
      return std::nullopt;
    Scheme.Existentials.push_back(TypeVariable::var(*Sym));
  }

  uint64_t SubCount = 0;
  if (!R.varint(SubCount) || SubCount > R.remaining() + 1)
    return std::nullopt;
  for (uint64_t I = 0; I < SubCount; ++I) {
    uint64_t L = 0, Rr = 0;
    if (!R.varint(L) || !R.varint(Rr))
      return std::nullopt;
    const DerivedTypeVariable *Lhs = dtvAt(L), *Rhs = dtvAt(Rr);
    if (!Lhs || !Rhs)
      return std::nullopt;
    Scheme.Constraints.addSubtype(*Lhs, *Rhs);
  }
  uint64_t VarCount = 0;
  if (!R.varint(VarCount) || VarCount > R.remaining() + 1)
    return std::nullopt;
  for (uint64_t I = 0; I < VarCount; ++I) {
    uint64_t Idx = 0;
    if (!R.varint(Idx))
      return std::nullopt;
    const DerivedTypeVariable *V = dtvAt(Idx);
    if (!V)
      return std::nullopt;
    Scheme.Constraints.addVar(*V);
  }
  uint64_t AddSubCount = 0;
  if (!R.varint(AddSubCount) || AddSubCount > R.remaining() + 1)
    return std::nullopt;
  for (uint64_t I = 0; I < AddSubCount; ++I) {
    uint8_t IsSub = 0;
    uint64_t X = 0, Y = 0, Z = 0;
    if (!R.u8(IsSub) || IsSub > 1 || !R.varint(X) || !R.varint(Y) ||
        !R.varint(Z))
      return std::nullopt;
    const DerivedTypeVariable *Xp = dtvAt(X), *Yp = dtvAt(Y), *Zp = dtvAt(Z);
    if (!Xp || !Yp || !Zp)
      return std::nullopt;
    AddSubConstraint C;
    C.IsSub = IsSub != 0;
    C.X = *Xp;
    C.Y = *Yp;
    C.Z = *Zp;
    Scheme.Constraints.addAddSub(C);
  }
  if (!R.atEnd())
    return std::nullopt; // trailing garbage
  return Scheme;
}

//===----------------------------------------------------------------------===//
// Generation-result payloads (cached ConstraintGen output)
//===----------------------------------------------------------------------===//

namespace {

/// First payload byte of a generation-result payload. Scheme payloads
/// start with the plain version byte and sketch bundles with 0x80|version;
/// 0x40|version keeps all three kinds mutually unmistakable.
constexpr uint8_t kGenResultTag = 0x40 | kSchemePayloadVersion;

} // namespace

// Gen payload layout (all integers LEB128):
//   u8     tag (0x40 | payload version)
//   n      name count;  n × (len, bytes)
//   d      DTV count;   d × (u8 rank, [nameIdx unless rank 0],
//                            wordLen, wordLen × labelRaw)
//   setHashHi, setHashLo
//   i      interesting count; i × nameIdx   (sorted by name)
//   k      callsite count;    k × nameIdx   (generation order)
//   s/v/a  constraints exactly as in scheme payloads, order verbatim
// Trailing bytes after the last field are corruption, not slack.
std::string retypd::encodeGenResult(const ConstraintSet &C,
                                    const Hash128 &SetHash,
                                    const std::vector<TypeVariable>
                                        &Interesting,
                                    const std::vector<TypeVariable> &Callsites,
                                    const SymbolTable &Syms,
                                    const Lattice &Lat) {
  EventCounters::SchemeEncodes.fetch_add(1, std::memory_order_relaxed);
  Encoder Enc(Syms, Lat);

  // Deterministic id assignment: DTVs (and the names their bases pull in)
  // in constraint order, then the proc / interesting / callsite names.
  auto NoteDtv = [&](const DerivedTypeVariable &V) { Enc.dtvIdx(V); };
  for (const SubtypeConstraint &SC : C.subtypes()) {
    NoteDtv(SC.Lhs);
    NoteDtv(SC.Rhs);
  }
  for (const DerivedTypeVariable &V : C.vars())
    NoteDtv(V);
  for (const AddSubConstraint &AC : C.addSubs()) {
    NoteDtv(AC.X);
    NoteDtv(AC.Y);
    NoteDtv(AC.Z);
  }
  std::vector<std::pair<uint8_t, uint64_t>> Dtvs;
  Dtvs.reserve(Enc.dtvs().size());
  std::vector<const DerivedTypeVariable *> DtvPtrs(Enc.dtvs());
  for (const DerivedTypeVariable *V : DtvPtrs)
    Dtvs.push_back(Enc.baseOf(*V));
  // Interesting is an unordered set at the producer: sort by name so
  // identical generation results encode to identical payload bytes.
  std::vector<const std::string *> InterestingNames;
  InterestingNames.reserve(Interesting.size());
  for (TypeVariable V : Interesting)
    InterestingNames.push_back(&Syms.name(V.symbol()));
  std::sort(InterestingNames.begin(), InterestingNames.end(),
            [](const std::string *A, const std::string *B) { return *A < *B; });
  std::vector<uint64_t> InterestingIdx;
  InterestingIdx.reserve(InterestingNames.size());
  for (const std::string *N : InterestingNames)
    InterestingIdx.push_back(Enc.nameIdx(*N));
  std::vector<uint64_t> CallsiteIdx;
  CallsiteIdx.reserve(Callsites.size());
  for (TypeVariable V : Callsites)
    CallsiteIdx.push_back(Enc.nameIdx(Syms.name(V.symbol())));

  std::string Out;
  Out.push_back(static_cast<char>(kGenResultTag));
  putVarint(Out, Enc.names().size());
  for (const std::string *N : Enc.names()) {
    putVarint(Out, N->size());
    Out.append(*N);
  }
  putVarint(Out, Dtvs.size());
  for (size_t I = 0; I < Dtvs.size(); ++I) {
    Out.push_back(static_cast<char>(Dtvs[I].first));
    if (Dtvs[I].first != 0)
      putVarint(Out, Dtvs[I].second);
    putVarint(Out, DtvPtrs[I]->size());
    for (Label L : DtvPtrs[I]->labels())
      putVarint(Out, L.raw());
  }
  putVarint(Out, SetHash.Hi);
  putVarint(Out, SetHash.Lo);
  putVarint(Out, InterestingIdx.size());
  for (uint64_t I : InterestingIdx)
    putVarint(Out, I);
  putVarint(Out, CallsiteIdx.size());
  for (uint64_t I : CallsiteIdx)
    putVarint(Out, I);
  putVarint(Out, C.subtypes().size());
  for (const SubtypeConstraint &SC : C.subtypes()) {
    putVarint(Out, Enc.dtvIdx(SC.Lhs));
    putVarint(Out, Enc.dtvIdx(SC.Rhs));
  }
  putVarint(Out, C.vars().size());
  for (const DerivedTypeVariable &V : C.vars())
    putVarint(Out, Enc.dtvIdx(V));
  putVarint(Out, C.addSubs().size());
  for (const AddSubConstraint &AC : C.addSubs()) {
    Out.push_back(AC.IsSub ? 1 : 0);
    putVarint(Out, Enc.dtvIdx(AC.X));
    putVarint(Out, Enc.dtvIdx(AC.Y));
    putVarint(Out, Enc.dtvIdx(AC.Z));
  }
  return Out;
}

std::optional<DecodedGenResult>
retypd::decodeGenResult(std::string_view Payload, SymbolTable &Syms,
                        const Lattice &Lat) {
  EventCounters::SchemeDecodes.fetch_add(1, std::memory_order_relaxed);
  Reader R(Payload);
  uint8_t Tag = 0;
  if (!R.u8(Tag) || Tag != kGenResultTag)
    return std::nullopt;

  uint64_t NameCount = 0;
  if (!R.varint(NameCount) || NameCount > R.remaining())
    return std::nullopt;
  std::vector<std::string_view> Names(static_cast<size_t>(NameCount));
  for (std::string_view &N : Names) {
    uint64_t Len = 0;
    if (!R.varint(Len) || !R.bytes(static_cast<size_t>(Len), N))
      return std::nullopt;
  }
  std::vector<SymbolId> InternedNames(Names.size(),
                                      static_cast<SymbolId>(-1));
  auto internName = [&](uint64_t Idx) -> std::optional<SymbolId> {
    if (Idx >= Names.size())
      return std::nullopt;
    SymbolId &Cached = InternedNames[static_cast<size_t>(Idx)];
    if (Cached == static_cast<SymbolId>(-1))
      Cached = Syms.intern(Names[static_cast<size_t>(Idx)]);
    return Cached;
  };

  uint64_t DtvCount = 0;
  if (!R.varint(DtvCount) || DtvCount > R.remaining())
    return std::nullopt;
  std::vector<DerivedTypeVariable> Dtvs;
  Dtvs.reserve(static_cast<size_t>(DtvCount));
  for (uint64_t I = 0; I < DtvCount; ++I) {
    uint8_t Rank = 0;
    if (!R.u8(Rank) || Rank > 2)
      return std::nullopt;
    TypeVariable Base;
    if (Rank != 0) {
      uint64_t NameIdx = 0;
      if (!R.varint(NameIdx) || NameIdx >= Names.size())
        return std::nullopt;
      if (Rank == 1) {
        auto Elem = Lat.lookup(Names[static_cast<size_t>(NameIdx)]);
        if (!Elem)
          return std::nullopt;
        Base = TypeVariable::constant(*Elem);
      } else {
        auto Sym = internName(NameIdx);
        if (!Sym)
          return std::nullopt;
        Base = TypeVariable::var(*Sym);
      }
    }
    uint64_t WordLen = 0;
    if (!R.varint(WordLen) || WordLen > R.remaining())
      return std::nullopt;
    std::vector<Label> Word;
    Word.reserve(static_cast<size_t>(WordLen));
    for (uint64_t J = 0; J < WordLen; ++J) {
      uint64_t Raw = 0;
      if (!R.varint(Raw) || !validLabelRaw(Raw))
        return std::nullopt;
      Word.push_back(Label::fromRaw(Raw));
    }
    Dtvs.emplace_back(Base, std::move(Word));
  }
  auto dtvAt = [&](uint64_t Idx) -> const DerivedTypeVariable * {
    return Idx < Dtvs.size() ? &Dtvs[static_cast<size_t>(Idx)] : nullptr;
  };

  DecodedGenResult Out;
  if (!R.varint(Out.SetHash.Hi) || !R.varint(Out.SetHash.Lo))
    return std::nullopt;

  auto readVarList = [&](std::vector<TypeVariable> &Vars) -> bool {
    uint64_t Count = 0;
    if (!R.varint(Count) || Count > R.remaining() + 1)
      return false;
    Vars.reserve(static_cast<size_t>(Count));
    for (uint64_t I = 0; I < Count; ++I) {
      uint64_t Idx = 0;
      if (!R.varint(Idx))
        return false;
      auto Sym = internName(Idx);
      if (!Sym)
        return false;
      Vars.push_back(TypeVariable::var(*Sym));
    }
    return true;
  };
  if (!readVarList(Out.Interesting) || !readVarList(Out.Callsites))
    return std::nullopt;

  // The payload encodes an already-deduplicated set, so the trusted
  // appends skip the dedup-index hashing entirely — this is the hot loop
  // of a warm run's generate phase.
  uint64_t SubCount = 0;
  if (!R.varint(SubCount) || SubCount > R.remaining() + 1)
    return std::nullopt;
  Out.C.reserve(static_cast<size_t>(SubCount), 0, 0);
  for (uint64_t I = 0; I < SubCount; ++I) {
    uint64_t L = 0, Rr = 0;
    if (!R.varint(L) || !R.varint(Rr))
      return std::nullopt;
    const DerivedTypeVariable *Lhs = dtvAt(L), *Rhs = dtvAt(Rr);
    if (!Lhs || !Rhs)
      return std::nullopt;
    Out.C.appendSubtypeTrusted(*Lhs, *Rhs);
  }
  uint64_t VarCount = 0;
  if (!R.varint(VarCount) || VarCount > R.remaining() + 1)
    return std::nullopt;
  Out.C.reserve(0, static_cast<size_t>(VarCount), 0);
  for (uint64_t I = 0; I < VarCount; ++I) {
    uint64_t Idx = 0;
    if (!R.varint(Idx))
      return std::nullopt;
    const DerivedTypeVariable *V = dtvAt(Idx);
    if (!V)
      return std::nullopt;
    Out.C.appendVarTrusted(*V);
  }
  uint64_t AddSubCount = 0;
  if (!R.varint(AddSubCount) || AddSubCount > R.remaining() + 1)
    return std::nullopt;
  Out.C.reserve(0, 0, static_cast<size_t>(AddSubCount));
  for (uint64_t I = 0; I < AddSubCount; ++I) {
    uint8_t IsSub = 0;
    uint64_t X = 0, Y = 0, Z = 0;
    if (!R.u8(IsSub) || IsSub > 1 || !R.varint(X) || !R.varint(Y) ||
        !R.varint(Z))
      return std::nullopt;
    const DerivedTypeVariable *Xp = dtvAt(X), *Yp = dtvAt(Y), *Zp = dtvAt(Z);
    if (!Xp || !Yp || !Zp)
      return std::nullopt;
    AddSubConstraint AC;
    AC.IsSub = IsSub != 0;
    AC.X = *Xp;
    AC.Y = *Yp;
    AC.Z = *Zp;
    Out.C.addAddSub(AC);
  }
  if (!R.atEnd())
    return std::nullopt; // trailing garbage
  return Out;
}

//===----------------------------------------------------------------------===//
// Sketch bundles (cached solver solutions)
//===----------------------------------------------------------------------===//

namespace {

/// First payload byte of a sketch bundle: the payload version with the top
/// bit set, so scheme payloads (plain version byte) and bundles can never
/// be confused for one another.
constexpr uint8_t kSketchBundleTag = 0x80 | kSchemePayloadVersion;

} // namespace

// Bundle layout (all integers LEB128):
//   u8     tag (0x80 | payload version)
//   n      name count; n × (len, bytes)   — variable AND lattice names
//   e      entry count; e × (varNameIdx, sketch)
//   sketch: nodeCount; nodeCount × (markIdx, lowerIdx, upperIdx, u8 flags,
//           conflictCount × elemIdx, childCount × (labelRaw, nodeId))
std::string retypd::encodeSketchBundle(
    const std::vector<std::pair<TypeVariable, const Sketch *>> &Entries,
    const SymbolTable &Syms, const Lattice &Lat) {
  EventCounters::SchemeEncodes.fetch_add(1, std::memory_order_relaxed);
  std::vector<const std::string *> Names;
  std::unordered_map<std::string, uint64_t> NameIds;
  auto nameIdx = [&](const std::string &N) {
    auto [It, Inserted] = NameIds.try_emplace(N, Names.size());
    if (Inserted)
      Names.push_back(&It->first);
    return It->second;
  };

  // Pass 1: pool names in deterministic first-use order.
  std::string Body;
  putVarint(Body, Entries.size());
  for (const auto &[Var, Sk] : Entries) {
    putVarint(Body, nameIdx(Syms.name(Var.symbol())));
    putVarint(Body, Sk->size());
    for (uint32_t N = 0; N < Sk->size(); ++N) {
      const Sketch::Node &Node = Sk->node(N);
      putVarint(Body, nameIdx(Lat.name(Node.Mark)));
      putVarint(Body, nameIdx(Lat.name(Node.Lower)));
      putVarint(Body, nameIdx(Lat.name(Node.Upper)));
      Body.push_back(static_cast<char>((Node.PointerLike ? 1 : 0) |
                                       (Node.IntegerLike ? 2 : 0)));
      putVarint(Body, Node.Conflicts.size());
      for (LatticeElem E : Node.Conflicts)
        putVarint(Body, nameIdx(Lat.name(E)));
      putVarint(Body, Node.Children.size());
      for (const auto &[L, To] : Node.Children) {
        putVarint(Body, L.raw());
        putVarint(Body, To);
      }
    }
  }

  std::string Out;
  Out.push_back(static_cast<char>(kSketchBundleTag));
  putVarint(Out, Names.size());
  for (const std::string *N : Names) {
    putVarint(Out, N->size());
    Out.append(*N);
  }
  Out += Body;
  return Out;
}

std::optional<std::vector<SketchBinding>>
retypd::decodeSketchBundle(std::string_view Payload, SymbolTable &Syms,
                           const Lattice &Lat) {
  EventCounters::SchemeDecodes.fetch_add(1, std::memory_order_relaxed);
  Reader R(Payload);
  uint8_t Tag = 0;
  if (!R.u8(Tag) || Tag != kSketchBundleTag)
    return std::nullopt;
  uint64_t NameCount = 0;
  if (!R.varint(NameCount) || NameCount > R.remaining())
    return std::nullopt;
  std::vector<std::string_view> Names(static_cast<size_t>(NameCount));
  for (std::string_view &N : Names) {
    uint64_t Len = 0;
    if (!R.varint(Len) || !R.bytes(static_cast<size_t>(Len), N))
      return std::nullopt;
  }
  // Lattice elements resolve by name; unknown names are corruption
  // relative to this session's lattice.
  std::vector<std::optional<LatticeElem>> ElemCache(Names.size());
  std::vector<char> ElemResolved(Names.size(), 0);
  auto elemAt = [&](uint64_t Idx) -> std::optional<LatticeElem> {
    if (Idx >= Names.size())
      return std::nullopt;
    if (!ElemResolved[static_cast<size_t>(Idx)]) {
      ElemCache[static_cast<size_t>(Idx)] =
          Lat.lookup(Names[static_cast<size_t>(Idx)]);
      ElemResolved[static_cast<size_t>(Idx)] = 1;
    }
    return ElemCache[static_cast<size_t>(Idx)];
  };

  uint64_t EntryCount = 0;
  if (!R.varint(EntryCount) || EntryCount > R.remaining() + 1)
    return std::nullopt;
  std::vector<SketchBinding> Out;
  Out.reserve(static_cast<size_t>(EntryCount));
  for (uint64_t I = 0; I < EntryCount; ++I) {
    uint64_t VarIdx = 0, NodeCount = 0;
    if (!R.varint(VarIdx) || VarIdx >= Names.size() || !R.varint(NodeCount) ||
        NodeCount == 0 || NodeCount > R.remaining() + 1)
      return std::nullopt;
    TypeVariable Var = TypeVariable::var(
        Syms.intern(Names[static_cast<size_t>(VarIdx)]));
    Sketch Sk;
    for (uint64_t N = 0; N < NodeCount; ++N) {
      uint32_t Id = N == 0 ? Sk.root() : Sk.addNode();
      Sketch::Node &Node = Sk.node(Id);
      uint64_t MarkIdx = 0, LowerIdx = 0, UpperIdx = 0;
      uint8_t Flags = 0;
      if (!R.varint(MarkIdx) || !R.varint(LowerIdx) || !R.varint(UpperIdx) ||
          !R.u8(Flags) || Flags > 3)
        return std::nullopt;
      auto Mark = elemAt(MarkIdx), Lower = elemAt(LowerIdx),
           Upper = elemAt(UpperIdx);
      if (!Mark || !Lower || !Upper)
        return std::nullopt;
      Node.Mark = *Mark;
      Node.Lower = *Lower;
      Node.Upper = *Upper;
      Node.PointerLike = (Flags & 1) != 0;
      Node.IntegerLike = (Flags & 2) != 0;
      uint64_t ConflictCount = 0;
      if (!R.varint(ConflictCount) || ConflictCount > R.remaining())
        return std::nullopt;
      for (uint64_t C = 0; C < ConflictCount; ++C) {
        uint64_t EIdx = 0;
        if (!R.varint(EIdx))
          return std::nullopt;
        auto E = elemAt(EIdx);
        if (!E)
          return std::nullopt;
        Node.Conflicts.push_back(*E);
      }
      uint64_t ChildCount = 0;
      if (!R.varint(ChildCount) || ChildCount > R.remaining())
        return std::nullopt;
      for (uint64_t C = 0; C < ChildCount; ++C) {
        uint64_t Raw = 0, To = 0;
        if (!R.varint(Raw) || !validLabelRaw(Raw) || !R.varint(To) ||
            To >= NodeCount)
          return std::nullopt;
        Node.Children[Label::fromRaw(Raw)] = static_cast<uint32_t>(To);
      }
    }
    Out.emplace_back(Var, std::move(Sk));
  }
  if (!R.atEnd())
    return std::nullopt;
  return Out;
}

//===----------------------------------------------------------------------===//
// Structural hashing
//===----------------------------------------------------------------------===//

namespace {

void hashDtv(Fnv128 &H, const DerivedTypeVariable &V, const SymbolTable &Syms,
             const Lattice &Lat) {
  TypeVariable B = V.base();
  if (B.isConstant()) {
    H.updateByte(1);
    H.update(Lat.name(B.latticeElem()));
  } else if (B.isVar()) {
    H.updateByte(2);
    H.update(Syms.name(B.symbol()));
  } else {
    H.updateByte(0);
  }
  H.sep();
  H.updateU64(V.size());
  for (Label L : V.labels())
    H.updateU64(L.raw());
}

} // namespace

namespace {

/// Streams one canonical view. Both hash entry points funnel here so the
/// presorted and sorting variants can never diverge.
void hashView(Fnv128 &H, const ConstraintSet::CanonicalView &View,
              const SymbolTable &Syms, const Lattice &Lat) {
  H.updateU64(View.Subs.size());
  for (const SubtypeConstraint *S : View.Subs) {
    H.updateByte('S');
    hashDtv(H, S->Lhs, Syms, Lat);
    hashDtv(H, S->Rhs, Syms, Lat);
  }
  H.updateU64(View.Vars.size());
  for (const DerivedTypeVariable *V : View.Vars) {
    H.updateByte('V');
    hashDtv(H, *V, Syms, Lat);
  }
  H.updateU64(View.AddSubs.size());
  for (const AddSubConstraint *A : View.AddSubs) {
    H.updateByte(A->IsSub ? 's' : 'a');
    hashDtv(H, A->X, Syms, Lat);
    hashDtv(H, A->Y, Syms, Lat);
    hashDtv(H, A->Z, Syms, Lat);
  }
}

/// The stored order as a view — only valid as a *canonical* view when the
/// caller guarantees the set was canonicalized.
ConstraintSet::CanonicalView storedOrderView(const ConstraintSet &C) {
  ConstraintSet::CanonicalView V;
  V.Subs.reserve(C.subtypes().size());
  for (const SubtypeConstraint &S : C.subtypes())
    V.Subs.push_back(&S);
  V.Vars.reserve(C.vars().size());
  for (const DerivedTypeVariable &D : C.vars())
    V.Vars.push_back(&D);
  V.AddSubs.reserve(C.addSubs().size());
  for (const AddSubConstraint &A : C.addSubs())
    V.AddSubs.push_back(&A);
  return V;
}

} // namespace

void retypd::hashConstraintSet(Fnv128 &H, const ConstraintSet &C,
                               const SymbolTable &Syms, const Lattice &Lat) {
  hashView(H, C.canonicalView(Syms, Lat), Syms, Lat);
}

Hash128 retypd::constraintSetHash(const ConstraintSet &C,
                                  const SymbolTable &Syms,
                                  const Lattice &Lat) {
  Fnv128 H;
  H.update("retypd-cset-v1");
  H.sep();
  hashConstraintSet(H, C, Syms, Lat);
  return H.digest();
}

Hash128 retypd::canonicalSetHash(const ConstraintSet &C,
                                 const SymbolTable &Syms,
                                 const Lattice &Lat) {
  Fnv128 H;
  H.update("retypd-cset-v1");
  H.sep();
  hashView(H, storedOrderView(C), Syms, Lat);
  return H.digest();
}

Hash128 retypd::schemeStructuralHash(const TypeScheme &Scheme,
                                     const SymbolTable &Syms,
                                     const Lattice &Lat) {
  Fnv128 H;
  H.update("retypd-scheme-v1");
  H.sep();
  H.update(Syms.name(Scheme.ProcVar.symbol()));
  H.sep();
  H.updateU64(Scheme.Existentials.size());
  for (TypeVariable V : Scheme.Existentials) {
    H.update(Syms.name(V.symbol()));
    H.sep();
  }
  hashConstraintSet(H, Scheme.Constraints, Syms, Lat);
  return H.digest();
}

//===----------------------------------------------------------------------===//
// Legacy text serialization (reference format; tests only)
//===----------------------------------------------------------------------===//

std::string retypd::serializeSchemeText(const TypeScheme &Scheme,
                                        const SymbolTable &Syms,
                                        const Lattice &Lat) {
  std::string S = "proc " + Syms.name(Scheme.ProcVar.symbol()) + "\n";
  S += "existentials";
  for (TypeVariable V : Scheme.Existentials) {
    S += ' ';
    S += Syms.name(V.symbol());
  }
  S += '\n';
  S += Scheme.Constraints.str(Syms, Lat);
  return S;
}

std::optional<TypeScheme> retypd::parseSchemeText(const std::string &Text,
                                                  SymbolTable &Syms,
                                                  const Lattice &Lat) {
  std::istringstream In(Text);
  std::string Line;
  TypeScheme Scheme;
  if (!std::getline(In, Line) || Line.rfind("proc ", 0) != 0)
    return std::nullopt;
  Scheme.ProcVar = TypeVariable::var(Syms.intern(Line.substr(5)));
  if (!std::getline(In, Line) || Line.rfind("existentials", 0) != 0)
    return std::nullopt;
  {
    std::istringstream Ex(Line.substr(12));
    std::string Name;
    while (Ex >> Name)
      Scheme.Existentials.push_back(TypeVariable::var(Syms.intern(Name)));
  }
  std::string Rest((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  ConstraintParser Parser(Syms, Lat);
  auto C = Parser.parse(Rest);
  if (!C)
    return std::nullopt;
  Scheme.Constraints = std::move(*C);
  return Scheme;
}
