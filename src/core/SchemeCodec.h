//===- SchemeCodec.h - Binary type-scheme codec + structural hash -*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary data plane for type schemes. Three related facilities, all
/// operating on the *interned structural form* of a scheme rather than its
/// rendered text:
///
///  1. A fixed-layout binary codec (payload schema v3 of the summary-cache
///     format). Payloads are offset-based records — flat u32/u64 arrays at
///     computable offsets, read in place through alignment-safe accessors
///     (support/Endian.h) — so the mmapped store bytes ARE the runtime
///     representation: no varint parsing, no per-element bounds dance.
///     Structural validation (validatePayload) is a separate single pass
///     that checks every count, offset table, and index range against the
///     payload length; the artifact store runs it once per record at
///     segment-open, after which probes use the *Trusted decoders that
///     read the arrays straight off the mapping.
///
///     Names are referenced by dense index. A payload carries them in one
///     of two modes (byte 1 of the header): INLINE — a payload-local
///     offset table plus blob, self-contained across processes — or POOL —
///     u32 ids into the store's persistent name pool, resolved through a
///     per-store translation table (PoolBindingView) that is batch-built
///     once instead of hashing strings per payload. Bodies reference names
///     only by index, so the store can transcode inline payloads to pool
///     mode (transcodeNamesToPool) without understanding the body.
///
///  2. 128-bit structural hashes (support/Hash128.h) over the canonical
///     view of a constraint set / scheme. These hash *names and packed
///     labels*, never symbol ids, so they are stable across processes —
///     they key the summary cache and drive the session's scheme-change
///     early cutoff without materializing canonical text.
///
///  3. The legacy line-oriented text serialization (serializeSchemeText /
///     parseSchemeText). Kept as the human-readable reference format: the
///     codec property tests prove encode/decode agrees with it
///     semantically. The warm analysis path never touches it.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_SCHEMECODEC_H
#define RETYPD_CORE_SCHEMECODEC_H

#include "core/BackendKind.h"
#include "core/ConstraintSet.h"
#include "core/Sketch.h"
#include "support/Hash128.h"

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace retypd {

/// Version tag of the binary payload layout. The low bits of the first
/// payload byte, and the cache file header's schema version. v3 is the
/// fixed-layout offset format; v2 (LEB128 streams) payloads are refused.
inline constexpr unsigned kSchemePayloadVersion = 3;

/// Bit 4 of the payload tag byte marks scheme and sketch-bundle payloads
/// produced by the BinSub backend (core/BinSub.h). Generation results are
/// backend-independent (they precede the solver) and never carry the bit.
/// The bit rides the payload's leading byte into the store's record kind
/// (Store::append copies byte 0 by convention), so `cache inspect` can
/// attribute stored artifacts to their backend without decoding bodies.
inline constexpr uint8_t kPayloadBackendBit = 0x10;

/// Which backend produced a payload whose leading tag byte is \p Tag.
inline BackendKind payloadBackend(uint8_t Tag) {
  return (Tag & kPayloadBackendBit) ? BackendKind::BinSub
                                    : BackendKind::Retypd;
}

/// Human-readable payload kind ("scheme", "gen", "sketches") for a tag
/// byte, or nullptr if the tag is not a known v3 payload kind. Backend
/// bit is masked before matching.
const char *payloadKindName(uint8_t Tag);

/// Translation tables from a store name-pool id to this process's interned
/// representation. Built once per (store generation, symbol table) by the
/// summary cache; pool-mode payloads resolve every name through these two
/// arrays — zero string hashing on the probe path.
struct PoolBindingView {
  /// Pool id -> SymbolId (every pool name is interned at bind time).
  const uint32_t *SymIds = nullptr;
  /// Pool id -> LatticeElem + 1, or 0 when the name is not a lattice
  /// element (so rank-1 bases resolve without a by-name lattice lookup).
  const uint32_t *LatElems = nullptr;
  size_t Size = 0;
};

/// Structurally validates a payload of any kind (scheme, gen result,
/// sketch bundle) against the v3 layout: header, name section, every
/// count, offset table monotonicity, index ranges, label raws, and that
/// the sections exactly tile the payload length. Pool-mode name ids must
/// be < \p PoolSize. Semantic checks that depend on the session (unknown
/// lattice constant names) are NOT covered — the trusted decoders still
/// reject those. A payload accepted here is safe to hand to the matching
/// *Trusted decoder: no read it performs can leave the payload.
bool validatePayload(std::string_view Payload, uint64_t PoolSize);

/// Encodes \p Scheme into the self-contained (inline-name-mode) binary
/// payload format. The scheme's constraint order is preserved verbatim
/// (canonicalize before encoding; decode then reproduces the canonical
/// set exactly, order included). \p Backend stamps kPayloadBackendBit
/// into the tag byte for non-retypd producers; the body layout is
/// backend-independent.
std::string encodeScheme(const TypeScheme &Scheme, const SymbolTable &Syms,
                         const Lattice &Lat,
                         BackendKind Backend = BackendKind::Retypd);

/// Decodes a payload produced by encodeScheme, interning names into
/// \p Syms. Validates first: returns nullopt on any corruption; never
/// throws, never reads out of bounds. Rejects pool-mode payloads (they
/// only exist inside a store, whose cache probes use the trusted path).
std::optional<TypeScheme> decodeScheme(std::string_view Payload,
                                       SymbolTable &Syms, const Lattice &Lat);

/// Decodes a scheme payload that already passed validatePayload (e.g. at
/// segment-open). Skips structural validation; still returns nullopt on
/// lattice-constant names unknown to \p Lat. \p Pool is required for
/// pool-mode payloads and ignored for inline ones.
std::optional<TypeScheme>
decodeSchemeTrusted(std::string_view Payload, SymbolTable &Syms,
                    const Lattice &Lat,
                    const PoolBindingView *Pool = nullptr);

/// Streams the structural content of \p C — canonical order, names and
/// packed labels only — into \p H. Stable across symbol tables and
/// processes.
void hashConstraintSet(Fnv128 &H, const ConstraintSet &C,
                       const SymbolTable &Syms, const Lattice &Lat);

/// One-shot structural hash of a constraint set (any order: hashes the
/// canonical view, deriving sort keys and checking order).
Hash128 constraintSetHash(const ConstraintSet &C, const SymbolTable &Syms,
                          const Lattice &Lat);

/// Structural hash of a set whose stored order is ALREADY canonical
/// (i.e. canonicalize() just ran or the set round-tripped the codec).
/// Identical value to constraintSetHash, without re-deriving sort keys —
/// the hot path hashes each SCC right after canonicalizing it.
Hash128 canonicalSetHash(const ConstraintSet &C, const SymbolTable &Syms,
                         const Lattice &Lat);

/// Structural hash of a whole scheme (procedure name, existentials in
/// order, constraints in canonical order). Replaces textual scheme
/// comparison in the session's incremental early cutoff.
Hash128 schemeStructuralHash(const TypeScheme &Scheme, const SymbolTable &Syms,
                             const Lattice &Lat);

/// A decoded generation-result payload: one SCC's merged, *already
/// canonicalized* constraint set (order preserved verbatim by the codec),
/// its structural hash (computed at encode time, so replay skips both the
/// canonical sort and the rehash), the interesting variables, and the
/// callsite instance variables the generation walk interned. This is the
/// third payload kind of the summary cache (after schemes and sketch
/// bundles): replaying one skips the whole abstract-interpretation walk —
/// and the merge/canonicalize/hash that follows it — for an SCC whose
/// dependency set is unchanged.
struct DecodedGenResult {
  ConstraintSet C;
  /// canonicalSetHash(C) as computed when the payload was encoded. A
  /// corrupted stored hash cannot make results wrong — it only misdirects
  /// downstream scheme/solution cache probes into recomputing.
  Hash128 SetHash;
  std::vector<TypeVariable> Interesting;
  std::vector<TypeVariable> Callsites;
};

/// The cheap prefix of a generation-result payload: everything a fully
/// warm run needs — the set hash (keys the scheme cache), the interesting
/// and callsite variables, and the constraint count — WITHOUT
/// materializing the ConstraintSet itself. When every downstream probe
/// hits, the constraints are never needed; the session only materializes
/// them (via a full lookupGen) for SCCs whose scheme or solution cache
/// misses.
struct GenResultMeta {
  Hash128 SetHash;
  std::vector<TypeVariable> Interesting;
  std::vector<TypeVariable> Callsites;
  /// Total constraints in the encoded set (subtype + var + addsub) —
  /// drives Report.ConstraintsGenerated and the phase-2 empty-SCC gate.
  uint64_t ConstraintCount = 0;
};

/// Encodes a generation result (inline name mode; same header discipline
/// as scheme payloads, a distinct first byte separates the kinds). \p C
/// must already be canonical and \p SetHash its canonicalSetHash.
/// \p Interesting may arrive in any order — it is sorted by name
/// internally so identical results encode to identical bytes;
/// \p Callsites order (generation order) is preserved.
std::string encodeGenResult(const ConstraintSet &C, const Hash128 &SetHash,
                            const std::vector<TypeVariable> &Interesting,
                            const std::vector<TypeVariable> &Callsites,
                            const SymbolTable &Syms, const Lattice &Lat);

/// Decodes a generation-result payload, interning names into \p Syms.
/// Validates first; returns nullopt on any corruption. Inline mode only.
std::optional<DecodedGenResult> decodeGenResult(std::string_view Payload,
                                                SymbolTable &Syms,
                                                const Lattice &Lat);

/// Trusted-path variant (payload already validated; \p Pool required for
/// pool mode).
std::optional<DecodedGenResult>
decodeGenResultTrusted(std::string_view Payload, SymbolTable &Syms,
                       const Lattice &Lat,
                       const PoolBindingView *Pool = nullptr);

/// Decodes only the meta prefix of a (validated) generation-result
/// payload — no ConstraintSet materialization, no DTV table walk.
std::optional<GenResultMeta>
decodeGenResultMetaTrusted(std::string_view Payload, SymbolTable &Syms,
                           const Lattice &Lat,
                           const PoolBindingView *Pool = nullptr);

/// One (type variable, sketch) binding of a cached solver solution.
using SketchBinding = std::pair<TypeVariable, Sketch>;

/// Encodes a solver solution — the raw sketches for a solve's wanted
/// variables — as a binary bundle (inline name mode; variable and lattice
/// names pooled once; sketch nodes as flat columnar arrays with labels as
/// their packed u64). The first payload byte distinguishes bundles from
/// scheme payloads, so a key mixup decodes to a clean rejection rather
/// than garbage.
std::string
encodeSketchBundle(const std::vector<std::pair<TypeVariable, const Sketch *>>
                       &Entries,
                   const SymbolTable &Syms, const Lattice &Lat,
                   BackendKind Backend = BackendKind::Retypd);

/// Decodes a sketch bundle, interning variable names into \p Syms and
/// resolving lattice marks by name. Validates first; returns nullopt on
/// any corruption or on marks unknown to \p Lat. Inline mode only.
std::optional<std::vector<SketchBinding>>
decodeSketchBundle(std::string_view Payload, SymbolTable &Syms,
                   const Lattice &Lat);

/// Trusted-path variant (payload already validated; \p Pool required for
/// pool mode).
std::optional<std::vector<SketchBinding>>
decodeSketchBundleTrusted(std::string_view Payload, SymbolTable &Syms,
                          const Lattice &Lat,
                          const PoolBindingView *Pool = nullptr);

/// Rewrites a *valid, inline-mode* payload of any kind into pool name
/// mode: the name section becomes u32 pool ids obtained from \p PoolIdFor
/// (one call per distinct name) and the body is copied verbatim. The
/// artifact store calls this under its flush lock so pool id assignment
/// is race-free across processes. Returns nullopt if the payload is not
/// a valid inline-mode payload.
std::optional<std::string> transcodeNamesToPool(
    std::string_view Payload,
    const std::function<uint32_t(std::string_view)> &PoolIdFor);

/// Legacy text serialization ("proc F\nexistentials ...\n<constraints>").
std::string serializeSchemeText(const TypeScheme &Scheme,
                                const SymbolTable &Syms, const Lattice &Lat);

/// Parses the legacy text serialization (uses ConstraintParser). Test and
/// migration reference only — the warm path decodes binary payloads.
std::optional<TypeScheme> parseSchemeText(const std::string &Text,
                                          SymbolTable &Syms,
                                          const Lattice &Lat);

} // namespace retypd

#endif // RETYPD_CORE_SCHEMECODEC_H
