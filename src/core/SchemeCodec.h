//===- SchemeCodec.h - Binary type-scheme codec + structural hash -*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary data plane for type schemes. Three related facilities, all
/// operating on the *interned structural form* of a scheme rather than its
/// rendered text:
///
///  1. A compact binary codec (payload schema v2 of the summary-cache
///     format). A payload carries its own dense name table — names appear
///     once, as raw bytes — and every derived type variable is a (base,
///     label-word) reference into payload-local id space, with labels as
///     their packed u64. Payloads are therefore meaningful across symbol
///     tables and across processes, yet decoding is a single linear pass
///     that interns each distinct name once: no lexing, no
///     ConstraintParser, no per-constraint string churn. decodeScheme()
///     rejects corrupt payloads (truncation, out-of-range indices, bad
///     label kinds, unknown lattice constants, trailing bytes) by
///     returning nullopt.
///
///  2. 128-bit structural hashes (support/Hash128.h) over the canonical
///     view of a constraint set / scheme. These hash *names and packed
///     labels*, never symbol ids, so they are stable across processes —
///     they key the summary cache and drive the session's scheme-change
///     early cutoff without materializing canonical text.
///
///  3. The legacy line-oriented text serialization (serializeSchemeText /
///     parseSchemeText). Kept as the human-readable reference format: the
///     codec property tests prove encode/decode agrees with it
///     semantically. The warm analysis path never touches it.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_SCHEMECODEC_H
#define RETYPD_CORE_SCHEMECODEC_H

#include "core/ConstraintSet.h"
#include "core/Sketch.h"
#include "support/Hash128.h"

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace retypd {

/// Version tag of the binary payload layout. Stored as the first payload
/// byte and surfaced as the cache file header's schema version.
inline constexpr unsigned kSchemePayloadVersion = 2;

/// Encodes \p Scheme into the self-contained binary payload format.
/// The scheme's constraint order is preserved verbatim (canonicalize
/// before encoding; decode then reproduces the canonical set exactly,
/// order included).
std::string encodeScheme(const TypeScheme &Scheme, const SymbolTable &Syms,
                         const Lattice &Lat);

/// Decodes a payload produced by encodeScheme, interning names into
/// \p Syms. Returns nullopt on any corruption; never throws, never reads
/// out of bounds.
std::optional<TypeScheme> decodeScheme(std::string_view Payload,
                                       SymbolTable &Syms, const Lattice &Lat);

/// Streams the structural content of \p C — canonical order, names and
/// packed labels only — into \p H. Stable across symbol tables and
/// processes.
void hashConstraintSet(Fnv128 &H, const ConstraintSet &C,
                       const SymbolTable &Syms, const Lattice &Lat);

/// One-shot structural hash of a constraint set (any order: hashes the
/// canonical view, deriving sort keys and checking order).
Hash128 constraintSetHash(const ConstraintSet &C, const SymbolTable &Syms,
                          const Lattice &Lat);

/// Structural hash of a set whose stored order is ALREADY canonical
/// (i.e. canonicalize() just ran or the set round-tripped the codec).
/// Identical value to constraintSetHash, without re-deriving sort keys —
/// the hot path hashes each SCC right after canonicalizing it.
Hash128 canonicalSetHash(const ConstraintSet &C, const SymbolTable &Syms,
                         const Lattice &Lat);

/// Structural hash of a whole scheme (procedure name, existentials in
/// order, constraints in canonical order). Replaces textual scheme
/// comparison in the session's incremental early cutoff.
Hash128 schemeStructuralHash(const TypeScheme &Scheme, const SymbolTable &Syms,
                             const Lattice &Lat);

/// A decoded generation-result payload: one SCC's merged, *already
/// canonicalized* constraint set (order preserved verbatim by the codec),
/// its structural hash (computed at encode time, so replay skips both the
/// canonical sort and the rehash), the interesting variables, and the
/// callsite instance variables the generation walk interned. This is the
/// third payload kind of the summary cache (after schemes and sketch
/// bundles): replaying one skips the whole abstract-interpretation walk —
/// and the merge/canonicalize/hash that follows it — for an SCC whose
/// dependency set is unchanged.
struct DecodedGenResult {
  ConstraintSet C;
  /// canonicalSetHash(C) as computed when the payload was encoded. A
  /// corrupted stored hash cannot make results wrong — it only misdirects
  /// downstream scheme/solution cache probes into recomputing.
  Hash128 SetHash;
  std::vector<TypeVariable> Interesting;
  std::vector<TypeVariable> Callsites;
};

/// Encodes a generation result as a self-contained binary payload (same
/// name-pool + dense-DTV discipline as scheme payloads; a distinct first
/// byte separates the kinds). \p C must already be canonical and
/// \p SetHash its canonicalSetHash. \p Interesting may arrive in any
/// order — it is sorted by name internally so identical results encode to
/// identical bytes; \p Callsites order (generation order) is preserved.
std::string encodeGenResult(const ConstraintSet &C, const Hash128 &SetHash,
                            const std::vector<TypeVariable> &Interesting,
                            const std::vector<TypeVariable> &Callsites,
                            const SymbolTable &Syms, const Lattice &Lat);

/// Decodes a generation-result payload, interning names into \p Syms.
/// Returns nullopt on any corruption; never throws, never reads out of
/// bounds.
std::optional<DecodedGenResult> decodeGenResult(std::string_view Payload,
                                                SymbolTable &Syms,
                                                const Lattice &Lat);

/// One (type variable, sketch) binding of a cached solver solution.
using SketchBinding = std::pair<TypeVariable, Sketch>;

/// Encodes a solver solution — the raw sketches for a solve's wanted
/// variables — as a self-contained binary bundle (variable and lattice
/// names pooled once; sketch nodes as flat (mark, bounds, flags, edges)
/// records with labels as their packed u64). Like scheme payloads, bundles
/// are meaningful across symbol tables and processes. The first payload
/// byte distinguishes bundles from scheme payloads, so a key mixup decodes
/// to a clean rejection rather than garbage.
std::string
encodeSketchBundle(const std::vector<std::pair<TypeVariable, const Sketch *>>
                       &Entries,
                   const SymbolTable &Syms, const Lattice &Lat);

/// Decodes a sketch bundle, interning variable names into \p Syms and
/// resolving lattice marks by name. Returns nullopt on any corruption or
/// on marks unknown to \p Lat.
std::optional<std::vector<SketchBinding>>
decodeSketchBundle(std::string_view Payload, SymbolTable &Syms,
                   const Lattice &Lat);

/// Legacy text serialization ("proc F\nexistentials ...\n<constraints>").
std::string serializeSchemeText(const TypeScheme &Scheme,
                                const SymbolTable &Syms, const Lattice &Lat);

/// Parses the legacy text serialization (uses ConstraintParser). Test and
/// migration reference only — the warm path decodes binary payloads.
std::optional<TypeScheme> parseSchemeText(const std::string &Text,
                                          SymbolTable &Syms,
                                          const Lattice &Lat);

} // namespace retypd

#endif // RETYPD_CORE_SCHEMECODEC_H
