//===- ShapeGraph.cpp - Steensgaard-style shape inference -----------------===//

#include "core/ShapeGraph.h"

#include <cassert>

using namespace retypd;

uint32_t ShapeGraph::getOrCreateNode(const DerivedTypeVariable &Dtv) {
  auto It = NodeOf.find(Dtv);
  if (It != NodeOf.end())
    return It->second;
  uint32_t Id = UF.makeSet();
  Children.emplace_back();
  NodeOf.emplace(Dtv, Id);
  if (!Dtv.isBaseOnly()) {
    uint32_t Parent = getOrCreateNode(Dtv.parent());
    // Note: parent may have been unified already; record the edge at its
    // representative.
    uint32_t Rep = UF.find(Parent);
    auto [EdgeIt, Inserted] = Children[Rep].emplace(Dtv.lastLabel(), Id);
    if (!Inserted)
      unify(EdgeIt->second, Id);
  }
  return Id;
}

void ShapeGraph::unify(uint32_t A, uint32_t B) {
  std::vector<std::pair<uint32_t, uint32_t>> Work{{A, B}};
  while (!Work.empty()) {
    auto [X, Y] = Work.back();
    Work.pop_back();
    X = UF.find(X);
    Y = UF.find(Y);
    if (X == Y)
      continue;
    uint32_t Winner = UF.unite(X, Y);
    uint32_t Loser = Winner == X ? Y : X;

    // Merge the loser's out-edges into the winner, queueing recursive
    // unifications on label collisions (congruence closure).
    std::map<Label, uint32_t> LoserEdges = std::move(Children[Loser]);
    Children[Loser].clear();
    for (const auto &[L, Child] : LoserEdges) {
      auto [It, Inserted] = Children[Winner].emplace(L, Child);
      if (!Inserted)
        Work.push_back({It->second, Child});
    }

    // S-POINTER twist: within one class, the .load and .store children have
    // the same shape.
    auto LoadIt = Children[Winner].find(Label::load());
    auto StoreIt = Children[Winner].find(Label::store());
    if (LoadIt != Children[Winner].end() &&
        StoreIt != Children[Winner].end() &&
        UF.find(LoadIt->second) != UF.find(StoreIt->second))
      Work.push_back({LoadIt->second, StoreIt->second});
  }
}

ShapeGraph::ShapeGraph(const ConstraintSet &C) {
  // Create nodes for every mentioned DTV (prefix creation is recursive).
  for (const DerivedTypeVariable &Dtv : C.mentionedDtvs())
    getOrCreateNode(Dtv);
  // Quotient by the subtype constraints.
  for (const SubtypeConstraint &SC : C.subtypes())
    unify(NodeOf.at(SC.Lhs), NodeOf.at(SC.Rhs));
  // Re-check the load/store twist on every class (a class may have gained
  // both edges without ever being merged).
  for (const auto &[Dtv, Id] : NodeOf) {
    uint32_t Rep = UF.find(Id);
    auto LoadIt = Children[Rep].find(Label::load());
    auto StoreIt = Children[Rep].find(Label::store());
    if (LoadIt != Children[Rep].end() && StoreIt != Children[Rep].end())
      unify(LoadIt->second, StoreIt->second);
  }
}

uint32_t ShapeGraph::classOf(const DerivedTypeVariable &Dtv) const {
  auto It = NodeOf.find(Dtv);
  if (It != NodeOf.end())
    return UF.find(It->second);
  // The DTV itself may be absent while still being a valid capability path
  // (e.g. x.load.s32@0 where only x.load and a unified alias of the field
  // exist). Walk down from the base through class edges.
  if (Dtv.isBaseOnly())
    return NoClass;
  uint32_t Class = classOf(DerivedTypeVariable(Dtv.base()));
  if (Class == NoClass)
    return NoClass;
  for (Label L : Dtv.labels()) {
    const auto &Edges = Children[UF.find(Class)];
    auto EIt = Edges.find(L);
    if (EIt == Edges.end())
      return NoClass;
    Class = UF.find(EIt->second);
  }
  return Class;
}

const std::map<Label, uint32_t> &ShapeGraph::childrenOf(uint32_t Class) const {
  return Children[UF.find(Class)];
}

bool ShapeGraph::isPointerClass(uint32_t Class) const {
  const auto &Edges = Children[UF.find(Class)];
  return Edges.count(Label::load()) || Edges.count(Label::store());
}
