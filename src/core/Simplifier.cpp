//===- Simplifier.cpp - Constraint-set simplification (§5) ----------------===//

#include "core/Simplifier.h"

#include "core/ShapeGraph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace retypd;

namespace {

/// Phase of the two-phase path discipline: recalls must precede forgets.
enum Phase : unsigned { RecallPhase = 0, ForgetPhase = 1 };

/// Product-state id: 2 * node + phase.
inline uint32_t productState(GraphNodeId N, Phase P) { return 2 * N + P; }

} // namespace

TypeScheme
Simplifier::simplify(const ConstraintSet &C, TypeVariable ProcVar,
                     const std::unordered_set<TypeVariable> &Interesting) {
  auto IsInteresting = [&](TypeVariable V) {
    return V.isConstant() || V == ProcVar || Interesting.count(V) != 0;
  };

  ConstraintGraph G(C);
  G.saturate();
  const size_t NumNodes = G.numNodes();

  // Forward reachability over the phase product automaton. Sources: base
  // nodes of interesting variables, both variance tags, in recall phase.
  std::vector<bool> Fwd(2 * NumNodes, false);
  std::deque<uint32_t> Work;
  for (GraphNodeId N = 0; N < NumNodes; ++N) {
    const GraphNode &Node = G.node(N);
    if (Node.Dtv.isBaseOnly() && IsInteresting(Node.Dtv.base())) {
      Fwd[productState(N, RecallPhase)] = true;
      Work.push_back(productState(N, RecallPhase));
    }
  }
  while (!Work.empty()) {
    uint32_t S = Work.front();
    Work.pop_front();
    GraphNodeId N = S / 2;
    Phase P = static_cast<Phase>(S % 2);
    for (const GraphEdge &E : G.edgesFrom(N)) {
      uint32_t Next = 0;
      switch (E.Kind) {
      case EdgeKind::One:
        Next = productState(E.To, P);
        break;
      case EdgeKind::Recall:
        if (P != RecallPhase)
          continue;
        Next = productState(E.To, RecallPhase);
        break;
      case EdgeKind::Forget:
        Next = productState(E.To, ForgetPhase);
        break;
      }
      if (!Fwd[Next]) {
        Fwd[Next] = true;
        Work.push_back(Next);
      }
    }
  }

  // Backward co-reachability to sinks (interesting base nodes, any phase).
  // Build reverse product adjacency implicitly by scanning edges.
  std::vector<std::vector<uint32_t>> RevAdj(2 * NumNodes);
  for (GraphNodeId N = 0; N < NumNodes; ++N) {
    for (const GraphEdge &E : G.edgesFrom(N)) {
      switch (E.Kind) {
      case EdgeKind::One:
        RevAdj[productState(E.To, RecallPhase)].push_back(
            productState(N, RecallPhase));
        RevAdj[productState(E.To, ForgetPhase)].push_back(
            productState(N, ForgetPhase));
        break;
      case EdgeKind::Recall:
        RevAdj[productState(E.To, RecallPhase)].push_back(
            productState(N, RecallPhase));
        break;
      case EdgeKind::Forget:
        RevAdj[productState(E.To, ForgetPhase)].push_back(
            productState(N, RecallPhase));
        RevAdj[productState(E.To, ForgetPhase)].push_back(
            productState(N, ForgetPhase));
        break;
      }
    }
  }
  std::vector<bool> Bwd(2 * NumNodes, false);
  for (GraphNodeId N = 0; N < NumNodes; ++N) {
    const GraphNode &Node = G.node(N);
    if (Node.Dtv.isBaseOnly() && IsInteresting(Node.Dtv.base())) {
      for (Phase P : {RecallPhase, ForgetPhase}) {
        if (!Bwd[productState(N, P)]) {
          Bwd[productState(N, P)] = true;
          Work.push_back(productState(N, P));
        }
      }
    }
  }
  while (!Work.empty()) {
    uint32_t S = Work.front();
    Work.pop_front();
    for (uint32_t Prev : RevAdj[S]) {
      if (!Bwd[Prev]) {
        Bwd[Prev] = true;
        Work.push_back(Prev);
      }
    }
  }

  // A graph node survives if some product state is both reachable and
  // co-reachable.
  std::vector<bool> Alive(NumNodes, false);
  for (GraphNodeId N = 0; N < NumNodes; ++N)
    for (Phase P : {RecallPhase, ForgetPhase})
      if (Fwd[productState(N, P)] && Bwd[productState(N, P)])
        Alive[N] = true;

  // Existential renaming for surviving uninteresting bases. Fresh names are
  // scoped by the procedure and numbered by a call-local counter so that a
  // scheme's text depends only on its input constraint set — never on how
  // many symbols other (possibly concurrent) simplifications interned
  // first. This is what makes `--jobs N` byte-identical to `--jobs 1` and
  // lets the summary cache replay schemes across runs.
  const std::string FreshPrefix = "τ$" + Syms.name(ProcVar.symbol()) + "$";
  unsigned FreshCounter = 0;
  auto FreshVar = [&] {
    return TypeVariable::var(
        Syms.intern(FreshPrefix + std::to_string(FreshCounter++)));
  };
  std::unordered_map<TypeVariable, TypeVariable> Renamed;
  std::vector<TypeVariable> Existentials;
  auto Rename = [&](const DerivedTypeVariable &Dtv) {
    if (IsInteresting(Dtv.base()))
      return Dtv;
    auto It = Renamed.find(Dtv.base());
    if (It == Renamed.end()) {
      TypeVariable Fresh = FreshVar();
      It = Renamed.emplace(Dtv.base(), Fresh).first;
      Existentials.push_back(Fresh);
    }
    return DerivedTypeVariable(It->second,
                               std::vector<Label>(Dtv.labels().begin(),
                                                  Dtv.labels().end()));
  };

  // Emit one constraint per surviving 1-edge, oriented by the tag.
  ConstraintSet Out;
  for (GraphNodeId N = 0; N < NumNodes; ++N) {
    if (!Alive[N])
      continue;
    const GraphNode &From = G.node(N);
    for (const GraphEdge &E : G.edgesFrom(N)) {
      if (E.Kind != EdgeKind::One || !Alive[E.To])
        continue;
      const GraphNode &To = G.node(E.To);
      DerivedTypeVariable A = Rename(From.Dtv);
      DerivedTypeVariable B = Rename(To.Dtv);
      if (A == B)
        continue;
      if (From.Tag == Variance::Covariant)
        Out.addSubtype(A, B);
      else
        Out.addSubtype(B, A);
    }
  }

  // Keep capability declarations rooted at the procedure variable.
  for (GraphNodeId N = 0; N < NumNodes; ++N)
    if (Alive[N] && G.node(N).Dtv.base() == ProcVar &&
        G.node(N).Tag == Variance::Covariant)
      Out.addVar(G.node(N).Dtv);

  // Carry additive constraints over (renamed); they are cheap and needed by
  // the pointer/integer classification downstream.
  for (const AddSubConstraint &AC : C.addSubs())
    Out.addAddSub(AddSubConstraint{AC.IsSub, Rename(AC.X), Rename(AC.Y),
                                   Rename(AC.Z)});

  // ---------------- Tidy pass ----------------
  std::vector<SubtypeConstraint> Subs(Out.subtypes().begin(),
                                      Out.subtypes().end());
  std::unordered_set<TypeVariable> Existential(Existentials.begin(),
                                               Existentials.end());

  // First-label atomization: when an existential base never occurs bare
  // and all of its occurrences start with .in_i or .out labels, the label
  // groups cannot interact (no constraints relate them through the base,
  // and S-POINTER only couples .load/.store). Splitting τ.in0... / τ.out...
  // onto independent fresh variables lets the relay-inlining below remove
  // callsite instances entirely.
  {
    std::unordered_map<TypeVariable, int> Eligible; // 1 = ok, 0 = no
    auto Inspect = [&](const DerivedTypeVariable &D) {
      if (!Existential.count(D.base()))
        return;
      auto [It, Inserted] = Eligible.emplace(D.base(), 1);
      (void)Inserted;
      if (D.isBaseOnly() || (!D.labels()[0].isIn() && !D.labels()[0].isOut()))
        It->second = 0;
    };
    for (const SubtypeConstraint &SC : Subs) {
      Inspect(SC.Lhs);
      Inspect(SC.Rhs);
    }
    for (const AddSubConstraint &AC : Out.addSubs())
      for (const DerivedTypeVariable *D : {&AC.X, &AC.Y, &AC.Z})
        if (Existential.count(D->base()))
          Eligible[D->base()] = 0;

    std::map<std::pair<TypeVariable, Label>, TypeVariable> Split;
    auto Atomize = [&](const DerivedTypeVariable &D) {
      auto It = Eligible.find(D.base());
      if (It == Eligible.end() || It->second != 1)
        return D;
      auto Key = std::make_pair(D.base(), D.labels()[0]);
      auto SIt = Split.find(Key);
      if (SIt == Split.end()) {
        TypeVariable Fresh = FreshVar();
        SIt = Split.emplace(Key, Fresh).first;
        Existential.insert(Fresh);
        Existentials.push_back(Fresh);
      }
      return DerivedTypeVariable(
          SIt->second,
          std::vector<Label>(D.labels().begin() + 1, D.labels().end()));
    };
    for (SubtypeConstraint &SC : Subs) {
      SC.Lhs = Atomize(SC.Lhs);
      SC.Rhs = Atomize(SC.Rhs);
    }
    for (const auto &[Base, Ok] : Eligible)
      if (Ok == 1)
        Existential.erase(Base);
  }
  // Variables used in additive constraints cannot be inlined away.
  std::unordered_set<TypeVariable> Protected;
  for (const AddSubConstraint &AC : Out.addSubs())
    for (const DerivedTypeVariable *D : {&AC.X, &AC.Y, &AC.Z})
      Protected.insert(D->base());

  for (unsigned Iter = 0; Iter < Opts.MaxTidyIterations; ++Iter) {
    // Occurrence census.
    std::unordered_map<TypeVariable, unsigned> Extended;
    std::unordered_map<TypeVariable, std::vector<size_t>> AsLhs, AsRhs;
    for (size_t I = 0; I < Subs.size(); ++I) {
      const SubtypeConstraint &SC = Subs[I];
      for (const DerivedTypeVariable *D : {&SC.Lhs, &SC.Rhs})
        if (!D->isBaseOnly())
          ++Extended[D->base()];
      if (SC.Lhs.isBaseOnly())
        AsLhs[SC.Lhs.base()].push_back(I);
      if (SC.Rhs.isBaseOnly())
        AsRhs[SC.Rhs.base()].push_back(I);
    }

    TypeVariable Victim;
    for (TypeVariable V : Existentials) {
      if (!Existential.count(V) || Protected.count(V) || Extended.count(V))
        continue;
      size_t In = AsRhs.count(V) ? AsRhs[V].size() : 0;
      size_t Niche = AsLhs.count(V) ? AsLhs[V].size() : 0;
      if (In * Niche <= In + Niche + Opts.BloatSlack) {
        Victim = V;
        break;
      }
    }
    if (!Victim.isValid())
      break;

    std::vector<SubtypeConstraint> Next;
    std::vector<DerivedTypeVariable> Ins, Outs;
    for (const SubtypeConstraint &SC : Subs) {
      bool IsIn = SC.Rhs.isBaseOnly() && SC.Rhs.base() == Victim;
      bool IsOut = SC.Lhs.isBaseOnly() && SC.Lhs.base() == Victim;
      if (IsIn && IsOut)
        continue; // τ <= τ
      if (IsIn)
        Ins.push_back(SC.Lhs);
      else if (IsOut)
        Outs.push_back(SC.Rhs);
      else
        Next.push_back(SC);
    }
    for (const DerivedTypeVariable &A : Ins)
      for (const DerivedTypeVariable &B : Outs)
        if (A != B)
          Next.push_back(SubtypeConstraint{A, B});
    Subs = std::move(Next);
    Existential.erase(Victim);
  }

  ConstraintSet Pruned;
  for (const SubtypeConstraint &SC : Subs)
    Pruned.addSubtype(SC.Lhs, SC.Rhs);
  for (const AddSubConstraint &AC : Out.addSubs())
    Pruned.addAddSub(AC);

  // Merge existentials that share a shape class (the quotient of Theorem
  // 3.1): they denote the same sketch node, so one variable suffices.
  // This is what collapses the two intermediate views of a recursive
  // structure into the single τ of Figure 2.
  {
    ShapeGraph Shapes(Pruned);
    std::unordered_map<uint32_t, TypeVariable> RepOfClass;
    std::unordered_map<TypeVariable, TypeVariable> Merge;
    for (TypeVariable V : Existentials) {
      if (!Existential.count(V))
        continue;
      uint32_t Cls = Shapes.classOf(DerivedTypeVariable(V));
      if (Cls == ShapeGraph::NoClass)
        continue;
      auto [It, Inserted] = RepOfClass.emplace(Cls, V);
      if (!Inserted) {
        Merge[V] = It->second;
        Existential.erase(V);
      }
    }
    if (!Merge.empty()) {
      auto Apply = [&](const DerivedTypeVariable &D) {
        auto It = Merge.find(D.base());
        if (It == Merge.end())
          return D;
        return DerivedTypeVariable(
            It->second,
            std::vector<Label>(D.labels().begin(), D.labels().end()));
      };
      ConstraintSet Merged;
      for (const SubtypeConstraint &SC : Pruned.subtypes()) {
        DerivedTypeVariable L = Apply(SC.Lhs), R2 = Apply(SC.Rhs);
        if (L != R2)
          Merged.addSubtype(std::move(L), std::move(R2));
      }
      for (const AddSubConstraint &AC : Pruned.addSubs())
        Merged.addAddSub(AddSubConstraint{AC.IsSub, Apply(AC.X),
                                          Apply(AC.Y), Apply(AC.Z)});
      Pruned = std::move(Merged);
    }
  }

  ConstraintSet Final = std::move(Pruned);
  for (const DerivedTypeVariable &V : Out.vars())
    Final.addVar(V);

  TypeScheme Scheme;
  Scheme.ProcVar = ProcVar;
  for (TypeVariable V : Existentials)
    if (Existential.count(V))
      Scheme.Existentials.push_back(V);
  Scheme.Constraints = std::move(Final);
  return Scheme;
}
