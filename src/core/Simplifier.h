//===- Simplifier.h - Constraint-set simplification (§5) ------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Infers a procedure's type scheme by eliminating uninteresting type
/// variables from its constraint set (paper §5, Appendix D).
///
/// Pipeline:
///  1. Build the constraint graph and saturate it (Algorithm D.2), so every
///     derivable interesting-to-interesting relation is witnessed by a path
///     whose recalls all precede its forgets.
///  2. Trim the graph against the two-phase (recall-phase then forget-phase)
///     discipline: keep only nodes that lie on some path from an interesting
///     source to an interesting sink — the "elementary proof" restriction of
///     Definition D.1.
///  3. Emit one constraint per surviving 1-edge, rewriting uninteresting
///     base variables to fresh existential variables (the τ of Figure 2),
///     per Algorithm D.3.
///  4. Tidy: inline existential variables that only relay base-only chains
///     (the Fähndrich–Aiken style simplifications the paper refers to).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_SIMPLIFIER_H
#define RETYPD_CORE_SIMPLIFIER_H

#include "core/ConstraintGraph.h"
#include "core/ConstraintSet.h"

#include <unordered_set>

namespace retypd {

/// Options controlling the tidy pass.
struct SimplifyOptions {
  /// Maximum tidy iterations; each pass can eliminate many variables.
  unsigned MaxTidyIterations = 64;
  /// An eliminated variable with I predecessors and O successors is inlined
  /// only when I*O <= I+O+BloatSlack (avoids quadratic blowup).
  unsigned BloatSlack = 2;
};

/// Stateless simplification engine (fresh existential names are drawn from
/// the shared symbol table).
class Simplifier {
public:
  Simplifier(SymbolTable &Syms, const Lattice &Lat,
             SimplifyOptions Opts = SimplifyOptions())
      : Syms(Syms), Lat(Lat), Opts(Opts) {}

  /// Computes a type scheme for \p ProcVar from \p C. \p Interesting lists
  /// the base variables that must be preserved (formals are reached from
  /// ProcVar via .in/.out labels; globals and type constants are always
  /// preserved). ProcVar itself is implicitly interesting.
  TypeScheme simplify(const ConstraintSet &C, TypeVariable ProcVar,
                      const std::unordered_set<TypeVariable> &Interesting);

private:
  SymbolTable &Syms;
  const Lattice &Lat;
  SimplifyOptions Opts;
};

} // namespace retypd

#endif // RETYPD_CORE_SIMPLIFIER_H
