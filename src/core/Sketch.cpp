//===- Sketch.cpp - Regular trees labeled by lattice elements -------------===//

#include "core/Sketch.h"

#include <cassert>
#include <deque>
#include <set>

using namespace retypd;

std::optional<uint32_t> Sketch::stateAt(std::span<const Label> W) const {
  uint32_t S = root();
  for (Label L : W) {
    auto It = Nodes[S].Children.find(L);
    if (It == Nodes[S].Children.end())
      return std::nullopt;
    S = It->second;
  }
  return S;
}

bool Sketch::hasPath(std::span<const Label> W) const {
  return stateAt(W).has_value();
}

LatticeElem Sketch::markAt(std::span<const Label> W) const {
  auto S = stateAt(W);
  assert(S && "markAt on absent path");
  return Nodes[*S].Mark;
}

namespace {

/// Key for product-automaton states; ~0u marks an absent side.
struct PairKey {
  uint32_t A, B;
  Variance V;
  bool operator<(const PairKey &O) const {
    if (A != O.A)
      return A < O.A;
    if (B != O.B)
      return B < O.B;
    return static_cast<int>(V) < static_cast<int>(O.V);
  }
};

constexpr uint32_t Absent = 0xffffffffu;

} // namespace

/// Shared implementation of meet and join as a product construction. For
/// meet the result follows edges present on either side (language union,
/// copying one-sided subtrees); for join only edges present on both sides
/// survive (language intersection).
static Sketch combine(const Sketch &A, const Sketch &B, const Lattice &Lat,
                      bool IsMeet) {
  Sketch Result;
  std::map<PairKey, uint32_t> States;
  std::deque<PairKey> Work;

  auto CombineMark = [&](uint32_t Na, uint32_t Nb, Variance V) {
    if (Na == Absent)
      return B.node(Nb).Mark;
    if (Nb == Absent)
      return A.node(Na).Mark;
    LatticeElem Ma = A.node(Na).Mark;
    LatticeElem Mb = B.node(Nb).Mark;
    bool TakeMeet = IsMeet == (V == Variance::Covariant);
    return TakeMeet ? Lat.meet(Ma, Mb) : Lat.join(Ma, Mb);
  };
  auto CombineFlags = [&](uint32_t Out, uint32_t Na, uint32_t Nb) {
    Sketch::Node &N = Result.node(Out);
    if (Na != Absent) {
      N.PointerLike |= A.node(Na).PointerLike;
      N.IntegerLike |= A.node(Na).IntegerLike;
      N.Lower = A.node(Na).Lower;
      N.Upper = A.node(Na).Upper;
    }
    if (Nb != Absent) {
      N.PointerLike |= B.node(Nb).PointerLike;
      N.IntegerLike |= B.node(Nb).IntegerLike;
      N.Lower = Na != Absent ? Lat.join(N.Lower, B.node(Nb).Lower)
                             : B.node(Nb).Lower;
      N.Upper = Na != Absent ? Lat.meet(N.Upper, B.node(Nb).Upper)
                             : B.node(Nb).Upper;
    }
  };

  PairKey RootKey{A.root(), B.root(), Variance::Covariant};
  States[RootKey] = Result.root();
  Result.node(Result.root()).Mark =
      CombineMark(RootKey.A, RootKey.B, RootKey.V);
  CombineFlags(Result.root(), RootKey.A, RootKey.B);
  Work.push_back(RootKey);

  auto GetState = [&](PairKey K) {
    auto It = States.find(K);
    if (It != States.end())
      return It->second;
    uint32_t Id = Result.addNode(CombineMark(K.A, K.B, K.V));
    CombineFlags(Id, K.A, K.B);
    States.emplace(K, Id);
    Work.push_back(K);
    return Id;
  };

  while (!Work.empty()) {
    PairKey K = Work.front();
    Work.pop_front();
    uint32_t Out = States[K];

    // Gather candidate labels from whichever sides are present.
    std::set<Label> Labels;
    if (K.A != Absent)
      for (const auto &[L, C] : A.node(K.A).Children)
        Labels.insert(L);
    if (K.B != Absent)
      for (const auto &[L, C] : B.node(K.B).Children)
        Labels.insert(L);

    for (Label L : Labels) {
      uint32_t Ca = Absent, Cb = Absent;
      if (K.A != Absent) {
        auto It = A.node(K.A).Children.find(L);
        if (It != A.node(K.A).Children.end())
          Ca = It->second;
      }
      if (K.B != Absent) {
        auto It = B.node(K.B).Children.find(L);
        if (It != B.node(K.B).Children.end())
          Cb = It->second;
      }
      bool Both = Ca != Absent && Cb != Absent;
      if (!IsMeet && !Both)
        continue; // join keeps only common capabilities
      Variance CV = compose(K.V, L.variance());
      Result.addEdge(Out, L, GetState(PairKey{Ca, Cb, CV}));
    }
  }
  return Result;
}

Sketch Sketch::meet(const Sketch &A, const Sketch &B, const Lattice &Lat) {
  return combine(A, B, Lat, /*IsMeet=*/true);
}

Sketch Sketch::join(const Sketch &A, const Sketch &B, const Lattice &Lat) {
  return combine(A, B, Lat, /*IsMeet=*/false);
}

bool Sketch::leq(const Sketch &A, const Sketch &B, const Lattice &Lat) {
  // A ⊑ B iff every capability of B is a capability of A and at every
  // common word w: ν_A(w) <= ν_B(w) covariantly, the reverse contravariantly.
  std::set<PairKey> Seen;
  std::deque<PairKey> Work{PairKey{A.root(), B.root(), Variance::Covariant}};
  while (!Work.empty()) {
    PairKey K = Work.front();
    Work.pop_front();
    if (!Seen.insert(K).second)
      continue;
    LatticeElem Ma = A.node(K.A).Mark;
    LatticeElem Mb = B.node(K.B).Mark;
    if (K.V == Variance::Covariant ? !Lat.leq(Ma, Mb) : !Lat.leq(Mb, Ma))
      return false;
    for (const auto &[L, Cb] : B.node(K.B).Children) {
      auto It = A.node(K.A).Children.find(L);
      if (It == A.node(K.A).Children.end())
        return false; // B has a capability A lacks
      Work.push_back(PairKey{It->second, Cb, compose(K.V, L.variance())});
    }
  }
  return true;
}

bool Sketch::equal(const Sketch &A, const Sketch &B, const Lattice &Lat) {
  return leq(A, B, Lat) && leq(B, A, Lat);
}

namespace {

/// Copies the part of \p Src reachable from \p From into \p Dst, returning
/// the id of the copied root. \p Map memoizes already-copied states.
uint32_t copyInto(const Sketch &Src, uint32_t From, Sketch &Dst,
                  std::map<uint32_t, uint32_t> &Map) {
  auto It = Map.find(From);
  if (It != Map.end())
    return It->second;
  uint32_t Id = Dst.addNode();
  Map[From] = Id;
  Dst.node(Id) = Sketch::Node{Src.node(From).Mark,
                              Src.node(From).Lower,
                              Src.node(From).Upper,
                              Src.node(From).PointerLike,
                              Src.node(From).IntegerLike,
                              Src.node(From).Conflicts,
                              {}};
  for (const auto &[L, C] : Src.node(From).Children)
    Dst.addEdge(Id, L, copyInto(Src, C, Dst, Map));
  return Id;
}

} // namespace

std::optional<Sketch> Sketch::subsketch(Label L) const {
  auto It = Nodes[root()].Children.find(L);
  if (It == Nodes[root()].Children.end())
    return std::nullopt;
  Sketch Out;
  std::map<uint32_t, uint32_t> Map;
  // Seed the root mapping so cycles through the child close correctly.
  Map[It->second] = Out.root();
  Out.node(Out.root()) = Node{node(It->second).Mark,
                              node(It->second).Lower,
                              node(It->second).Upper,
                              node(It->second).PointerLike,
                              node(It->second).IntegerLike,
                              node(It->second).Conflicts,
                              {}};
  for (const auto &[CL, CC] : node(It->second).Children)
    Out.addEdge(Out.root(), CL, copyInto(*this, CC, Out, Map));
  return Out;
}

Sketch Sketch::withChild(Label L, const Sketch &Child) const {
  Sketch Out = *this;
  std::map<uint32_t, uint32_t> Map;
  uint32_t Grafted = copyInto(Child, Child.root(), Out, Map);
  Out.addEdge(Out.root(), L, Grafted);
  return Out;
}

Sketch Sketch::minimized() const {
  // Partition-refinement (Moore-style) over reachable states.
  std::vector<uint32_t> Reach;
  std::map<uint32_t, size_t> Index;
  Reach.push_back(root());
  Index[root()] = 0;
  for (size_t I = 0; I < Reach.size(); ++I)
    for (const auto &[L, C] : Nodes[Reach[I]].Children)
      if (!Index.count(C)) {
        Index[C] = Reach.size();
        Reach.push_back(C);
      }

  size_t N = Reach.size();
  // Initial blocks: group by (mark, flags, child label set).
  std::vector<uint32_t> Block(N);
  {
    std::map<std::tuple<LatticeElem, bool, bool, std::vector<uint64_t>>,
             uint32_t>
        Groups;
    for (size_t I = 0; I < N; ++I) {
      const Node &Nd = Nodes[Reach[I]];
      std::vector<uint64_t> Labels;
      for (const auto &[L, C] : Nd.Children)
        Labels.push_back(L.raw());
      auto Key = std::make_tuple(Nd.Mark, Nd.PointerLike, Nd.IntegerLike,
                                 std::move(Labels));
      auto [It, Inserted] =
          Groups.emplace(Key, static_cast<uint32_t>(Groups.size()));
      (void)Inserted;
      Block[I] = It->second;
    }
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::map<std::pair<uint32_t, std::vector<std::pair<uint64_t, uint32_t>>>,
             uint32_t>
        Groups;
    std::vector<uint32_t> Next(N);
    for (size_t I = 0; I < N; ++I) {
      std::vector<std::pair<uint64_t, uint32_t>> Sig;
      for (const auto &[L, C] : Nodes[Reach[I]].Children)
        Sig.push_back({L.raw(), Block[Index.at(C)]});
      auto Key = std::make_pair(Block[I], std::move(Sig));
      auto [It, Inserted] =
          Groups.emplace(Key, static_cast<uint32_t>(Groups.size()));
      (void)Inserted;
      Next[I] = It->second;
    }
    if (Next != Block) {
      Block = std::move(Next);
      Changed = true;
    }
  }

  // Build the quotient, rooted at the root's block.
  uint32_t NumBlocks = 0;
  for (uint32_t B : Block)
    NumBlocks = std::max(NumBlocks, B + 1);
  Sketch Out;
  // Block of the root must become state 0: remap block ids.
  std::vector<uint32_t> Remap(NumBlocks, 0xffffffffu);
  Remap[Block[0]] = Out.root();
  for (uint32_t B = 0; B < NumBlocks; ++B)
    if (Remap[B] == 0xffffffffu)
      Remap[B] = Out.addNode();
  for (size_t I = 0; I < N; ++I) {
    uint32_t Dst = Remap[Block[I]];
    Out.node(Dst) = Node{Nodes[Reach[I]].Mark,
                         Nodes[Reach[I]].Lower,
                         Nodes[Reach[I]].Upper,
                         Nodes[Reach[I]].PointerLike,
                         Nodes[Reach[I]].IntegerLike,
                         Nodes[Reach[I]].Conflicts,
                         {}};
  }
  for (size_t I = 0; I < N; ++I)
    for (const auto &[L, C] : Nodes[Reach[I]].Children)
      Out.addEdge(Remap[Block[I]], L, Remap[Block[Index.at(C)]]);
  return Out;
}

static void strImpl(const Sketch &S, const Lattice &Lat, uint32_t State,
                    std::string &Prefix, unsigned Depth, std::string &Out) {
  Out += Prefix.empty() ? std::string("<root>") : Prefix;
  Out += ": ";
  Out += Lat.name(S.node(State).Mark);
  if (S.node(State).PointerLike)
    Out += " [ptr]";
  if (S.node(State).IntegerLike)
    Out += " [int]";
  Out += '\n';
  if (Depth == 0)
    return;
  for (const auto &[L, Child] : S.node(State).Children) {
    size_t Mark = Prefix.size();
    Prefix += L.str();
    strImpl(S, Lat, Child, Prefix, Depth - 1, Out);
    Prefix.resize(Mark);
  }
}

std::string Sketch::str(const Lattice &Lat, unsigned MaxDepth) const {
  std::string Out;
  std::string Prefix;
  strImpl(*this, Lat, root(), Prefix, MaxDepth, Out);
  return Out;
}
