//===- Sketch.h - Regular trees labeled by lattice elements ---*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sketches (paper §3.5, Appendix E): possibly infinite Σ-labeled trees with
/// nodes marked by elements of the auxiliary lattice Λ, represented as
/// deterministic finite automata (Definition 3.5). The language of a sketch
/// is the set of capability words of the value it models; the marks carry
/// the scalar/semantic type information.
///
/// The set of sketches forms a lattice (Figure 18):
///   L(X ⊓ Y) = L(X) ∪ L(Y)   marks: ∧ at covariant, ∨ at contravariant
///   L(X ⊔ Y) = L(X) ∩ L(Y)   marks: ∨ at covariant, ∧ at contravariant
/// with X ⊑ Y (written leq) iff X ⊓ Y = X.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_SKETCH_H
#define RETYPD_CORE_SKETCH_H

#include "core/Label.h"
#include "lattice/Lattice.h"
#include "support/SymbolTable.h"

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace retypd {

/// A sketch: a rooted DFA over Σ with Λ-marked states.
class Sketch {
public:
  struct Node {
    LatticeElem Mark = Lattice::Top;
    /// The raw interval [Lower, Upper] of constant bounds, kept alongside
    /// the displayed Mark for the TIE-style interval-size metric (§6.5).
    LatticeElem Lower = Lattice::Bottom;
    LatticeElem Upper = Lattice::Top;
    bool PointerLike = false; ///< classified as pointer by ADD/SUB analysis
    bool IntegerLike = false; ///< classified as integer
    /// When the node's scalar bounds are mutually incompatible (their meet
    /// is ⊥), the maximal antichain of bounds is kept here so the C-type
    /// conversion can emit a union (Example 4.2).
    std::vector<LatticeElem> Conflicts;
    std::map<Label, uint32_t> Children;
  };

  /// The trivial sketch: language {ε}, root marked ⊤.
  Sketch() { Nodes.push_back(Node{}); }

  uint32_t root() const { return 0; }
  const Node &node(uint32_t Id) const { return Nodes[Id]; }
  Node &node(uint32_t Id) { return Nodes[Id]; }
  size_t size() const { return Nodes.size(); }

  /// Appends a fresh node and returns its id.
  uint32_t addNode(LatticeElem Mark = Lattice::Top) {
    Nodes.push_back(Node{});
    Nodes.back().Mark = Mark;
    return static_cast<uint32_t>(Nodes.size() - 1);
  }

  /// Adds (or retargets) an edge.
  void addEdge(uint32_t From, Label L, uint32_t To) {
    Nodes[From].Children[L] = To;
  }

  /// True if the word \p W is in the sketch's language.
  bool hasPath(std::span<const Label> W) const;

  /// The state reached by \p W, if any.
  std::optional<uint32_t> stateAt(std::span<const Label> W) const;

  /// The mark ν(W) at the node reached by \p W (requires hasPath(W)).
  LatticeElem markAt(std::span<const Label> W) const;

  /// Lattice meet: union of languages (more capabilities = lower).
  static Sketch meet(const Sketch &A, const Sketch &B, const Lattice &Lat);

  /// Lattice join: intersection of languages.
  static Sketch join(const Sketch &A, const Sketch &B, const Lattice &Lat);

  /// Partial order: A ⊑ B iff L(A) ⊇ L(B) with compatible marks.
  static bool leq(const Sketch &A, const Sketch &B, const Lattice &Lat);

  /// Structural equality up to bisimulation.
  static bool equal(const Sketch &A, const Sketch &B, const Lattice &Lat);

  /// The sub-sketch rooted at the \p L child of the root (copied and
  /// re-rooted), or nullopt when absent. Used by parameter refinement
  /// (Algorithm F.3) to treat each formal-in/out as a standalone sketch.
  std::optional<Sketch> subsketch(Label L) const;

  /// Returns a copy of this sketch whose \p L child of the root is replaced
  /// by (a grafted copy of) \p Child.
  Sketch withChild(Label L, const Sketch &Child) const;

  /// Returns the bisimulation quotient: the minimal DFA accepting the same
  /// language with the same marks (Definition 3.5 collapses isomorphic
  /// subtrees; this collapses bisimilar states). Also drops unreachable
  /// states left behind by withChild grafting.
  Sketch minimized() const;

  /// Renders a bounded unfolding, one path per line: ".load.s32@0: int".
  std::string str(const Lattice &Lat, unsigned MaxDepth = 4) const;

private:
  std::vector<Node> Nodes;
};

} // namespace retypd

#endif // RETYPD_CORE_SKETCH_H
