//===- Solver.cpp - Constraint solving into sketches ----------------------===//

#include "core/Solver.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace retypd;

const Sketch &SketchSolution::sketchFor(TypeVariable V) const {
  static const Sketch Trivial;
  auto It = Sketches.find(V);
  return It == Sketches.end() ? Trivial : It->second;
}

namespace {

/// Per-shape-class information gathered before sketch extraction.
struct ClassInfo {
  // Join of type constants known to be lower bounds / meet of uppers.
  LatticeElem Lower = Lattice::Bottom;
  LatticeElem Upper = Lattice::Top;
  bool HasLower = false;
  bool HasUpper = false;
  bool PointerLike = false;
  bool IntegerLike = false;
  // All distinct upper-bound constants, for union resolution when their
  // meet collapses to ⊥ (Example 4.2).
  std::vector<LatticeElem> UpperList;
};

} // namespace

bool SketchSolver::hasCapability(const ConstraintSet &C,
                                 const DerivedTypeVariable &Dtv) {
  ShapeGraph Shapes(C);
  return Shapes.classOf(Dtv) != ShapeGraph::NoClass;
}

SketchSolution SketchSolver::solve(const ConstraintSet &C,
                                   std::span<const TypeVariable> Wanted) const {
  ShapeGraph Shapes(C);

  ConstraintGraph G(C);
  G.saturate();

  // ---- Lattice bounds (Appendix D.4) ----
  std::unordered_map<uint32_t, ClassInfo> Info;
  auto ClassOfNode = [&](GraphNodeId N) -> uint32_t {
    return Shapes.classOf(G.node(N).Dtv);
  };
  for (GraphNodeId N = 0; N < G.numNodes(); ++N) {
    const GraphNode &Node = G.node(N);
    if (!Node.Dtv.base().isConstant() || !Node.Dtv.isBaseOnly())
      continue;
    LatticeElem Kappa = Node.Dtv.base().latticeElem();
    if (Node.Tag == Variance::Covariant) {
      // 1-paths (κ,⊕) → (n,⊕) witness κ <= dtv(n): lower bounds.
      for (GraphNodeId M : G.oneReachableFrom(N)) {
        if (M == N)
          continue;
        uint32_t Cls = ClassOfNode(M);
        if (Cls == ShapeGraph::NoClass)
          continue;
        ClassInfo &CI = Info[Cls];
        CI.Lower = CI.HasLower ? Lat.join(CI.Lower, Kappa) : Kappa;
        CI.HasLower = true;
      }
    } else {
      // Mirror paths (κ,⊖) → (n,⊖) witness dtv(n) <= κ: upper bounds.
      for (GraphNodeId M : G.oneReachableFrom(N)) {
        if (M == N)
          continue;
        uint32_t Cls = ClassOfNode(M);
        if (Cls == ShapeGraph::NoClass)
          continue;
        ClassInfo &CI = Info[Cls];
        CI.Upper = CI.HasUpper ? Lat.meet(CI.Upper, Kappa) : Kappa;
        CI.HasUpper = true;
        if (std::find(CI.UpperList.begin(), CI.UpperList.end(), Kappa) ==
            CI.UpperList.end())
          CI.UpperList.push_back(Kappa);
      }
    }
  }

  // ---- Pointer/integer classification (Figure 13) ----
  // Seeds: classes with load/store capabilities are pointers; classes with
  // numeric lattice bounds are integers.
  auto ClassOfDtv = [&](const DerivedTypeVariable &D) {
    return Shapes.classOf(D);
  };
  for (const auto &Entry : Shapes.nodes()) {
    uint32_t Cls = Shapes.canonical(Entry.second);
    if (Shapes.isPointerClass(Cls))
      Info[Cls].PointerLike = true;
  }
  for (auto &[Cls, CI] : Info) {
    if (CI.HasLower && CI.Lower != Lattice::Bottom && Lat.isNumeric(CI.Lower))
      CI.IntegerLike = true;
    if (CI.HasUpper && CI.Upper != Lattice::Top && Lat.isNumeric(CI.Upper))
      CI.IntegerLike = true;
  }
  // Fixpoint over the ADD/SUB rules.
  bool Changed = true;
  auto Mark = [&](uint32_t Cls, bool Ptr, bool Int) {
    if (Cls == ShapeGraph::NoClass)
      return;
    ClassInfo &CI = Info[Cls];
    if (Ptr && !CI.PointerLike) {
      CI.PointerLike = true;
      Changed = true;
    }
    if (Int && !CI.IntegerLike) {
      CI.IntegerLike = true;
      Changed = true;
    }
  };
  auto IsPtr = [&](uint32_t Cls) {
    return Cls != ShapeGraph::NoClass && Info.count(Cls) &&
           Info[Cls].PointerLike;
  };
  auto IsInt = [&](uint32_t Cls) {
    return Cls != ShapeGraph::NoClass && Info.count(Cls) &&
           Info[Cls].IntegerLike;
  };
  while (Changed) {
    Changed = false;
    for (const AddSubConstraint &AC : C.addSubs()) {
      uint32_t X = ClassOfDtv(AC.X), Y = ClassOfDtv(AC.Y),
               Z = ClassOfDtv(AC.Z);
      if (!AC.IsSub) {
        // Z = X + Y (Figure 13, ADD columns).
        if (IsInt(X) && IsInt(Y))
          Mark(Z, false, true);
        if (IsPtr(X)) {
          Mark(Z, true, false);
          Mark(Y, false, true);
        }
        if (IsPtr(Y)) {
          Mark(Z, true, false);
          Mark(X, false, true);
        }
        if (IsInt(Z)) {
          Mark(X, false, true);
          Mark(Y, false, true);
        }
        if (IsPtr(Z) && IsInt(X))
          Mark(Y, true, false);
        if (IsPtr(Z) && IsInt(Y))
          Mark(X, true, false);
      } else {
        // Z = X - Y (Figure 13, SUB columns).
        if (IsInt(X) && IsInt(Y))
          Mark(Z, false, true);
        if (IsPtr(X) && IsInt(Y))
          Mark(Z, true, false);
        if (IsPtr(X) && IsPtr(Y))
          Mark(Z, false, true);
        if (IsPtr(Z)) {
          Mark(X, true, false);
          Mark(Y, false, true);
        }
        if (IsInt(Z) && IsPtr(X))
          Mark(Y, true, false);
      }
    }
  }

  // Post-fixpoint defaults (display-policy downgrades, §4.3): a value that
  // flows through addition/subtraction with no pointer evidence anywhere is
  // an integer; integer-like classes with no scalar upper bound get num32.
  for (const AddSubConstraint &AC : C.addSubs()) {
    uint32_t X = ClassOfDtv(AC.X), Y = ClassOfDtv(AC.Y), Z = ClassOfDtv(AC.Z);
    if (!IsPtr(X) && !IsPtr(Y) && !IsPtr(Z)) {
      Mark(X, false, true);
      Mark(Y, false, true);
      Mark(Z, false, true);
    }
  }
  if (auto Num32 = Lat.lookup("num32")) {
    for (auto &[Cls, CI] : Info) {
      if (CI.IntegerLike && !CI.PointerLike && !CI.HasUpper) {
        CI.Upper = *Num32;
        CI.HasUpper = true;
      }
    }
  }

  // ---- Sketch extraction ----
  SketchSolution Solution;
  for (TypeVariable V : Wanted) {
    uint32_t Root = Shapes.classOf(DerivedTypeVariable(V));
    Sketch S;
    if (Root == ShapeGraph::NoClass) {
      Solution.Sketches.emplace(V, std::move(S));
      continue;
    }
    // States are (class, variance) pairs; BFS from the root.
    std::map<std::pair<uint32_t, Variance>, uint32_t> States;
    std::deque<std::pair<uint32_t, Variance>> Work;
    auto Decorate = [&](uint32_t SketchNode, uint32_t Cls, Variance Var) {
      Sketch::Node &N = S.node(SketchNode);
      auto It = Info.find(Cls);
      if (It == Info.end()) {
        N.Mark = Lattice::Top;
        return;
      }
      const ClassInfo &CI = It->second;
      if (Var == Variance::Covariant)
        N.Mark = CI.HasLower ? CI.Lower : (CI.HasUpper ? CI.Upper
                                                       : Lattice::Top);
      else
        N.Mark = CI.HasUpper ? CI.Upper : (CI.HasLower ? CI.Lower
                                                       : Lattice::Top);
      if (CI.HasLower)
        N.Lower = CI.Lower;
      if (CI.HasUpper)
        N.Upper = CI.Upper;
      N.PointerLike = CI.PointerLike;
      N.IntegerLike = CI.IntegerLike;
      // Conflicting scalar bounds: keep the minimal antichain for union
      // resolution (Example 4.2).
      if (CI.HasUpper && CI.Upper == Lattice::Bottom &&
          CI.UpperList.size() > 1) {
        for (LatticeElem E : CI.UpperList) {
          bool Minimal = true;
          for (LatticeElem F : CI.UpperList)
            if (F != E && Lat.leq(F, E))
              Minimal = false;
          if (Minimal)
            N.Conflicts.push_back(E);
        }
      }
    };

    auto RootKey = std::make_pair(Root, Variance::Covariant);
    States[RootKey] = S.root();
    Decorate(S.root(), Root, Variance::Covariant);
    Work.push_back(RootKey);
    while (!Work.empty()) {
      auto [Cls, Var] = Work.front();
      Work.pop_front();
      uint32_t From = States[{Cls, Var}];
      for (const auto &[L, RawChild] : Shapes.childrenOf(Cls)) {
        uint32_t Child = Shapes.canonical(RawChild);
        Variance CV = compose(Var, L.variance());
        auto Key = std::make_pair(Child, CV);
        auto It = States.find(Key);
        if (It == States.end()) {
          uint32_t Id = S.addNode();
          Decorate(Id, Child, CV);
          It = States.emplace(Key, Id).first;
          Work.push_back(Key);
        }
        S.addEdge(From, L, It->second);
      }
    }
    Solution.Sketches.emplace(V, std::move(S));
  }
  return Solution;
}
