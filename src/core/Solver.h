//===- Solver.h - Constraint solving into sketches ------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SOLVE procedure of Algorithm F.2: given a constraint set, compute a
/// sketch for each requested type variable. The tree structure comes from
/// the Steensgaard-style shape quotient (Algorithm E.1); the Λ marks come
/// from lattice-bound queries against the saturated constraint graph
/// (Appendix D.4): a constant κ lower-bounds a derived type variable iff a
/// pure 1-edge path connects their covariant nodes after saturation, and
/// dually for upper bounds via the contravariant nodes.
///
/// The ADD/SUB classification rules of Figure 13 run as a small fixpoint on
/// the shape classes; the resulting pointer/integer marks are carried on
/// sketch nodes for the C-type conversion.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_SOLVER_H
#define RETYPD_CORE_SOLVER_H

#include "core/ConstraintGraph.h"
#include "core/ShapeGraph.h"
#include "core/Sketch.h"

#include <span>
#include <unordered_map>

namespace retypd {

/// Sketch bindings for a solved constraint set.
struct SketchSolution {
  std::unordered_map<TypeVariable, Sketch> Sketches;

  /// Returns the sketch bound to \p V, or the trivial sketch.
  const Sketch &sketchFor(TypeVariable V) const;
};

/// Solves constraint sets into sketch bindings.
class SketchSolver {
public:
  SketchSolver(const Lattice &Lat) : Lat(Lat) {}

  /// Solves \p C for the variables in \p Wanted.
  SketchSolution solve(const ConstraintSet &C,
                       std::span<const TypeVariable> Wanted) const;

  /// Capability query: does C entail VAR \p Dtv? (Uses the shape quotient.)
  static bool hasCapability(const ConstraintSet &C,
                            const DerivedTypeVariable &Dtv);

private:
  const Lattice &Lat;
};

} // namespace retypd

#endif // RETYPD_CORE_SOLVER_H
