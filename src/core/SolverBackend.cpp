//===- SolverBackend.cpp - Backend registry + retypd backend --------------===//

#include "core/SolverBackend.h"

#include "core/BinSub.h"
#include "support/Trace.h"

using namespace retypd;

const char *retypd::backendName(BackendKind K) {
  switch (K) {
  case BackendKind::Retypd:
    return "retypd";
  case BackendKind::BinSub:
    return "binsub";
  }
  return "retypd";
}

std::optional<BackendKind> retypd::parseBackendKind(std::string_view Name) {
  if (Name == "retypd")
    return BackendKind::Retypd;
  if (Name == "binsub")
    return BackendKind::BinSub;
  return std::nullopt;
}

namespace {

/// The paper's pipeline behind the seam: Simplifier (saturation + proof
/// trimming) for phase 1, SketchSolver (saturated-graph bound queries)
/// for phase 2. Both engines are cheap reference-holders, so each call
/// constructs its own — that is what makes the backend const-callable
/// from concurrent pool workers.
class RetypdBackend : public SolverBackend {
public:
  RetypdBackend(SymbolTable &Syms, const Lattice &Lat, SimplifyOptions Opts)
      : Syms(Syms), Lat(Lat), Opts(Opts) {}

  BackendKind kind() const override { return BackendKind::Retypd; }

  TypeScheme
  simplify(const ConstraintSet &C, TypeVariable ProcVar,
           const std::unordered_set<TypeVariable> &Interesting) const override {
    trace::TraceSpan Span("retypd.simplify", "backend");
    if (Span.active()) {
      Span.Args.Backend = "retypd";
      Span.Args.Constraints = static_cast<int64_t>(C.size());
    }
    Simplifier Simp(Syms, Lat, Opts);
    return Simp.simplify(C, ProcVar, Interesting);
  }

  SketchSolution solve(const ConstraintSet &C,
                       std::span<const TypeVariable> Wanted) const override {
    trace::TraceSpan Span("retypd.solve", "backend");
    if (Span.active()) {
      Span.Args.Backend = "retypd";
      Span.Args.Constraints = static_cast<int64_t>(C.size());
    }
    return SketchSolver(Lat).solve(C, Wanted);
  }

private:
  SymbolTable &Syms;
  const Lattice &Lat;
  SimplifyOptions Opts;
};

} // namespace

std::unique_ptr<SolverBackend>
retypd::makeSolverBackend(BackendKind Kind, SymbolTable &Syms,
                          const Lattice &Lat, const SimplifyOptions &Opts) {
  switch (Kind) {
  case BackendKind::BinSub:
    return std::make_unique<BinSubBackend>(Syms, Lat, Opts);
  case BackendKind::Retypd:
    break;
  }
  return std::make_unique<RetypdBackend>(Syms, Lat, Opts);
}
