//===- SolverBackend.h - Pluggable solver-layer backends ------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver backend seam: everything between per-SCC canonical
/// constraint sets and their results — simplified `TypeScheme`s (phase 1)
/// and `SketchSolution`s (phase 2) — goes through this interface. The
/// frontend's scheduler, caching, refinement, and conversion layers are
/// backend-agnostic; a backend only has to be
///
///  - a pure function of its inputs (the constraint set, the procedure /
///    wanted variables, and the shared symbol table + lattice), and
///  - deterministic: identical inputs must produce identical outputs,
///    including fresh-existential naming, because the pipeline's
///    `--jobs N` byte-identity and the content-addressed summary cache
///    both replay backend results verbatim;
///  - const / thread-safe: the readiness scheduler calls simplify() and
///    solve() from pool workers concurrently. Backends hold only
///    references to shared state whose mutation paths are themselves
///    thread-safe (SymbolTable interning is).
///
/// Two implementations ship today:
///
///  - `RetypdBackend` (core/Simplifier.h + core/Solver.h): the paper's
///    pipeline — transducer saturation (Algorithm D.2), elementary-proof
///    trimming, and saturated-graph lattice-bound queries.
///  - `BinSubBackend` (core/BinSub.h): BinSub-style algebraic subtyping
///    (arXiv:2409.01841) — bisubstitution-based variable elimination with
///    polarity-directed constraint decomposition instead of saturation,
///    and shape-class-local bound propagation instead of path queries.
///
/// Cached artifacts are keyed and tagged by `BackendKind` (see
/// core/SummaryCache.h and the payload tag bit in core/SchemeCodec.h), so
/// artifacts produced by different backends never collide in a shared
/// cache or store.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_SOLVERBACKEND_H
#define RETYPD_CORE_SOLVERBACKEND_H

#include "core/BackendKind.h"
#include "core/Simplifier.h"
#include "core/Solver.h"

#include <memory>

namespace retypd {

/// Abstract solver backend. One instance serves a whole analyze() call;
/// both entry points are const and safe to invoke concurrently.
class SolverBackend {
public:
  virtual ~SolverBackend() = default;

  virtual BackendKind kind() const = 0;
  const char *name() const { return backendName(kind()); }

  /// Phase 1: simplify \p C into a most-general scheme for \p ProcVar,
  /// preserving \p Interesting variables by name. Fresh existentials must
  /// be named deterministically from the inputs alone (the `τ$proc$N`
  /// convention), never from global interning state.
  virtual TypeScheme
  simplify(const ConstraintSet &C, TypeVariable ProcVar,
           const std::unordered_set<TypeVariable> &Interesting) const = 0;

  /// Phase 2: solve \p C into sketches for the \p Wanted variables.
  virtual SketchSolution solve(const ConstraintSet &C,
                               std::span<const TypeVariable> Wanted) const = 0;
};

/// Constructs the backend for \p Kind. The references must outlive the
/// returned backend; \p Opts is copied.
std::unique_ptr<SolverBackend> makeSolverBackend(BackendKind Kind,
                                                 SymbolTable &Syms,
                                                 const Lattice &Lat,
                                                 const SimplifyOptions &Opts);

} // namespace retypd

#endif // RETYPD_CORE_SOLVERBACKEND_H
