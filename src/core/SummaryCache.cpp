//===- SummaryCache.cpp - Content-addressed type-scheme cache -------------===//

#include "core/SummaryCache.h"

#include "support/Stats.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>

#include <unistd.h>

using namespace retypd;

namespace {

/// Streams a name set into \p H order-independently: sorted, each name
/// followed by a separator. Shared by scheme and solve keys so the name
/// hashing discipline can never diverge between them.
void hashSortedNames(Fnv128 &H, const std::vector<std::string> &Names) {
  std::vector<const std::string *> Sorted;
  Sorted.reserve(Names.size());
  for (const std::string &N : Names)
    Sorted.push_back(&N);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const std::string *A, const std::string *B) { return *A < *B; });
  for (const std::string *N : Sorted) {
    H.update(*N);
    H.sep();
  }
}

} // namespace

SummaryKey SummaryCache::keyFor(const Hash128 &SetHash,
                                std::string_view ProcName,
                                const std::vector<std::string> &InterestingNames,
                                const SimplifyOptions &Opts) {
  Fnv128 H;
  H.update("retypd-summary-v3");
  H.sep();
  H.updateU64(SetHash.Hi);
  H.updateU64(SetHash.Lo);
  H.sep();
  H.update(ProcName);
  H.sep();
  hashSortedNames(H, InterestingNames);
  H.sep();
  H.updateU64(Opts.MaxTidyIterations);
  H.updateU64(Opts.BloatSlack);
  return H.digest();
}

SummaryKey SummaryCache::keyFor(const ConstraintSet &C, TypeVariable ProcVar,
                                const std::vector<std::string> &InterestingNames,
                                const SimplifyOptions &Opts,
                                const SymbolTable &Syms, const Lattice &Lat) {
  // The canonical structural hash is the content identity — insertion
  // order and symbol-id allocation cannot leak into it.
  ScopedPhaseTimer Timer("cache.hash");
  return keyFor(constraintSetHash(C, Syms, Lat),
                Syms.name(ProcVar.symbol()), InterestingNames, Opts);
}

SummaryKey SummaryCache::solveKeyFor(const Hash128 &SetHash,
                                     const std::vector<std::string>
                                         &WantedNames) {
  Fnv128 H;
  H.update("retypd-solve-v1");
  H.sep();
  H.updateU64(SetHash.Hi);
  H.updateU64(SetHash.Lo);
  H.sep();
  hashSortedNames(H, WantedNames);
  return H.digest();
}

template <typename DecodeFn>
auto SummaryCache::probeImpl(const SummaryKey &K, const SymbolTable &Syms,
                             DecodeFn Decode) const
    -> decltype(Decode(std::string_view())) {
  using Result = decltype(Decode(std::string_view()));
  using Value = typename Result::value_type;
  Shard &Sh = shard(K);
  const uint64_t Gen = Backing ? Backing->generation() : 0;
  const uint64_t Uid = Syms.uid();
  {
    // Fastest path: the decoded-value memo. Valid only for the same
    // symbol table (decoded values carry its ids) and the same store
    // generation (compaction may rewrite what a key resolves to).
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    auto It = Sh.Memos.find(K);
    if (It != Sh.Memos.end() && It->second.StoreGen == Gen &&
        It->second.SymsUid == Uid)
      if (const Value *V = std::get_if<Value>(&It->second.V)) {
        Hits.fetch_add(1, std::memory_order_relaxed);
        EventCounters::DecodeMemoHits.fetch_add(1,
                                                std::memory_order_relaxed);
        return *V;
      }
  }
  Result Out;
  bool FoundMem = false;
  {
    // In-memory payloads decode in place under the shard's shared lock:
    // readers never block readers, and entries never mutate — only
    // insert_or_assign replaces whole strings, under the exclusive lock.
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    auto It = Sh.Entries.find(K);
    if (It != Sh.Entries.end()) {
      FoundMem = true;
      ScopedPhaseTimer Timer("cache.decode");
      Out = Decode(std::string_view(It->second));
    }
  }
  if (FoundMem && !Out) {
    // Self-healing: drop the corrupt entry so the caller's recomputed
    // insert overwrites it (unless a racing insert already replaced it
    // with bytes that decode — re-check under the exclusive lock). The
    // attached store below may still serve the key.
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    auto It = Sh.Entries.find(K);
    if (It != Sh.Entries.end() && !Decode(std::string_view(It->second)))
      Sh.Entries.erase(It);
  }
  if (!Out && Backing) {
    {
      // Decode straight out of the store's mapped segment — the view is
      // borrowed, no payload bytes are copied. The PayloadRef (and the
      // store's shared lock it pins the mapping with) must drop before
      // the memo takes the shard's exclusive lock below.
      Store::PayloadRef Ref = Backing->lookup(K);
      if (Ref) {
        ScopedPhaseTimer Timer("cache.decode");
        Out = Decode(Ref.view());
      }
    }
    if (Out)
      EventCounters::StoreHits.fetch_add(1, std::memory_order_relaxed);
    // A store payload that fails to decode is a plain miss here; the
    // record itself is folded away by the next compaction.
  }
  if (Out) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    // Past the cap, recycle an arbitrary slot: it is a memo, so losing
    // one only costs a future re-decode.
    if (Sh.Memos.size() >= kMemoCapPerShard && Sh.Memos.count(K) == 0)
      Sh.Memos.erase(Sh.Memos.begin());
    Sh.Memos[K] = DecodedMemo{Gen, Uid, *Out};
    return Out;
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

std::optional<TypeScheme> SummaryCache::lookup(const SummaryKey &K,
                                               SymbolTable &Syms,
                                               const Lattice &Lat) const {
  return probeImpl(K, Syms, [&](std::string_view P) {
    return decodeScheme(P, Syms, Lat);
  });
}

std::optional<std::vector<SketchBinding>>
SummaryCache::lookupSolution(const SummaryKey &K, SymbolTable &Syms,
                             const Lattice &Lat) const {
  return probeImpl(K, Syms, [&](std::string_view P) {
    return decodeSketchBundle(P, Syms, Lat);
  });
}

std::optional<DecodedGenResult> SummaryCache::lookupGen(const SummaryKey &K,
                                                        SymbolTable &Syms,
                                                        const Lattice &Lat)
    const {
  auto Out = probeImpl(K, Syms, [&](std::string_view P) {
    return decodeGenResult(P, Syms, Lat);
  });
  if (Out)
    EventCounters::GenCacheHits.fetch_add(1, std::memory_order_relaxed);
  else
    EventCounters::GenCacheMisses.fetch_add(1, std::memory_order_relaxed);
  return Out;
}

bool SummaryCache::openStore(const std::string &Dir, std::string *Err) {
  StoreOptions O;
  O.SchemaVersion = kSummaryCacheSchemaVersion;
  // The analyze path owns regeneration: a stale store is a cold store,
  // exactly like a stale cache file (which load() simply ignores).
  O.RegenerateStale = true;
  auto S = Store::open(Dir, O, Err);
  if (!S)
    return false;
  attachStore(std::move(S));
  return true;
}

void SummaryCache::attachStore(std::unique_ptr<Store> S) {
  Backing = std::move(S);
  // Memo generations are relative to the attached store; drop wholesale.
  for (Shard &Sh : Shards) {
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    Sh.Memos.clear();
  }
}

std::optional<size_t> SummaryCache::flushToStore(std::string *Err) {
  if (!Backing) {
    if (Err)
      *Err = "no store attached";
    return std::nullopt;
  }
  // Snapshot keys per shard, then stream entries through lookupPayload
  // one at a time: no shard lock is ever held across a store call (the
  // store's lock and the shard locks must never nest in both orders).
  size_t Appended = 0;
  for (unsigned I = 0; I < kNumShards; ++I) {
    std::vector<SummaryKey> Keys;
    {
      std::shared_lock<std::shared_mutex> Lock(Shards[I].M);
      Keys.reserve(Shards[I].Entries.size());
      for (const auto &E : Shards[I].Entries)
        Keys.push_back(E.first);
    }
    for (const SummaryKey &K : Keys) {
      std::optional<std::string> P = lookupPayload(K);
      if (!P || Backing->payloadEquals(K, *P))
        continue; // unchanged (or raced away): nothing to journal
      Backing->append(K, *P,
                      P->empty() ? 0
                                 : static_cast<uint8_t>(
                                       static_cast<unsigned char>((*P)[0])));
      ++Appended;
    }
  }
  ScopedPhaseTimer Timer("store.flush");
  if (!Backing->flush(Err))
    return std::nullopt;
  return Appended;
}

void SummaryCache::insertGen(const SummaryKey &K, const ConstraintSet &C,
                             const Hash128 &SetHash,
                             const std::vector<TypeVariable> &Interesting,
                             const std::vector<TypeVariable> &Callsites,
                             const SymbolTable &Syms, const Lattice &Lat) {
  std::string Payload;
  {
    ScopedPhaseTimer Timer("cache.encode");
    Payload = encodeGenResult(C, SetHash, Interesting, Callsites, Syms, Lat);
  }
  insertPayload(K, std::move(Payload));
}

void SummaryCache::insertSolution(
    const SummaryKey &K,
    const std::vector<std::pair<TypeVariable, const Sketch *>> &Entries,
    const SymbolTable &Syms, const Lattice &Lat) {
  std::string Payload;
  {
    ScopedPhaseTimer Timer("cache.encode");
    Payload = encodeSketchBundle(Entries, Syms, Lat);
  }
  insertPayload(K, std::move(Payload));
}

void SummaryCache::insert(const SummaryKey &K, const TypeScheme &Scheme,
                          const SymbolTable &Syms, const Lattice &Lat) {
  std::string Payload;
  {
    ScopedPhaseTimer Timer("cache.encode");
    Payload = encodeScheme(Scheme, Syms, Lat);
  }
  insertPayload(K, std::move(Payload));
}

std::optional<std::string> SummaryCache::lookupPayload(const SummaryKey &K) const {
  Shard &Sh = shard(K);
  std::shared_lock<std::shared_mutex> Lock(Sh.M);
  auto It = Sh.Entries.find(K);
  if (It == Sh.Entries.end())
    return std::nullopt;
  return It->second;
}

void SummaryCache::insertPayload(const SummaryKey &K, std::string Payload) {
  Shard &Sh = shard(K);
  std::unique_lock<std::shared_mutex> Lock(Sh.M);
  // Replacement matters for self-healing: a corrupt entry that failed to
  // decode gets overwritten by the freshly recomputed scheme. Concurrent
  // duplicate inserts are benign because entries for one key are always
  // identical by construction.
  Sh.Entries.insert_or_assign(K, std::move(Payload));
  // The memoized decoded value (if any) described the replaced bytes.
  Sh.Memos.erase(K);
}

size_t SummaryCache::size() const {
  size_t N = 0;
  for (const Shard &Sh : Shards) {
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    N += Sh.Entries.size();
  }
  return N;
}

void SummaryCache::clear() {
  for (Shard &Sh : Shards) {
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    Sh.Entries.clear();
    Sh.Memos.clear();
  }
}

size_t SummaryCache::payloadBytes() const {
  size_t Bytes = 0;
  for (const Shard &Sh : Shards) {
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    for (const auto &E : Sh.Entries)
      Bytes += E.second.size();
  }
  return Bytes;
}

size_t SummaryCache::pruneToBytes(size_t MaxBytes) {
  // Hold every shard exclusively (fixed order — the same order save() and
  // the copy paths use) so the victim choice sees one consistent snapshot.
  std::array<std::unique_lock<std::shared_mutex>, kNumShards> Locks;
  for (unsigned I = 0; I < kNumShards; ++I)
    Locks[I] = std::unique_lock<std::shared_mutex>(Shards[I].M);
  size_t Total = 0;
  std::vector<const std::pair<const SummaryKey, std::string> *> Sorted;
  for (Shard &Sh : Shards)
    for (const auto &E : Sh.Entries) {
      Total += E.second.size();
      Sorted.push_back(&E);
    }
  if (Total <= MaxBytes)
    return 0;
  // Deterministic victim order: largest payloads first, key order on ties.
  std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
    if (A->second.size() != B->second.size())
      return A->second.size() > B->second.size();
    return std::make_pair(A->first.Hi, A->first.Lo) <
           std::make_pair(B->first.Hi, B->first.Lo);
  });
  size_t Dropped = 0;
  for (const auto *E : Sorted) {
    if (Total <= MaxBytes)
      break;
    Total -= E->second.size();
    const SummaryKey K = E->first; // copy: E points into the erased node
    Shard &Sh = Shards[shardOf(K)];
    Sh.Memos.erase(K);
    Sh.Entries.erase(K);
    ++Dropped;
  }
  return Dropped;
}

namespace {

/// Parses the version header line. Accepts only the current layout:
///   retypd-summary-cache v<FileVersion> schema <SchemaVersion>
bool parseHeader(const std::string &Line, unsigned &FileVersion,
                 unsigned &SchemaVersion) {
  unsigned V = 0, S = 0;
  if (std::sscanf(Line.c_str(), "retypd-summary-cache v%u schema %u", &V,
                  &S) != 2)
    return false;
  FileVersion = V;
  SchemaVersion = S;
  return true;
}

bool fileVersionIsNewer(unsigned FileVersion, unsigned SchemaVersion) {
  return FileVersion > kSummaryCacheFileVersion ||
         (FileVersion == kSummaryCacheFileVersion &&
          SchemaVersion > kSummaryCacheSchemaVersion);
}

std::string versionMismatchError(unsigned FileVersion,
                                 unsigned SchemaVersion) {
  std::string Versions = "(v" + std::to_string(FileVersion) + " schema " +
                         std::to_string(SchemaVersion) + "; this binary: v" +
                         std::to_string(kSummaryCacheFileVersion) +
                         " schema " +
                         std::to_string(kSummaryCacheSchemaVersion) + ")";
  // Direction matters: an OLDER file is stale and safe to regenerate; a
  // NEWER file was written by a newer binary, and "regenerate" would
  // destroy its valid contents.
  if (fileVersionIsNewer(FileVersion, SchemaVersion))
    return "cache file is newer than this binary " + Versions +
           " — upgrade the binary or point it at a different cache file";
  return "stale cache file " + Versions +
         " — re-run analyze to regenerate it";
}

} // namespace

// File format (version kSummaryCacheFileVersion):
//   retypd-summary-cache v3 schema 2
//   entry <hex key> <byte count>\n
//   <binary payload bytes>\n
//   ... repeated ...
// Older headers (v1's unversioned "retypd-summary-cache-v1", v2's textual
// schemes) are rejected wholesale: a stale cache is a cold cache.
bool SummaryCache::load(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  // File size bounds every entry's claimed byte count: the count is
  // untrusted input, and allocating a string from a corrupt multi-GB (or
  // 2^64-1) value would abort the process instead of treating the entry
  // as a malformed tail.
  In.seekg(0, std::ios::end);
  const std::streamoff End = In.tellg();
  In.seekg(0, std::ios::beg);
  std::string Line;
  unsigned FileVersion = 0, SchemaVersion = 0;
  if (!std::getline(In, Line) ||
      !parseHeader(Line, FileVersion, SchemaVersion) ||
      FileVersion != kSummaryCacheFileVersion ||
      SchemaVersion != kSummaryCacheSchemaVersion)
    return false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    unsigned long long Hi = 0, Lo = 0, Bytes = 0;
    if (std::sscanf(Line.c_str(), "entry %16llx%16llx %llu", &Hi, &Lo,
                    &Bytes) != 3)
      return true; // ignore malformed tail
    std::streamoff Pos = In.tellg();
    if (Pos < 0 ||
        Bytes > static_cast<unsigned long long>(End - Pos))
      return true; // claimed payload exceeds the file: malformed tail
    std::string Payload(Bytes, '\0');
    In.read(Payload.data(), static_cast<std::streamsize>(Bytes));
    if (static_cast<unsigned long long>(In.gcount()) != Bytes)
      return true;
    In.get(); // trailing newline
    SummaryKey K{Hi, Lo};
    Shard &Sh = shard(K);
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    Sh.Entries.try_emplace(K, std::move(Payload));
  }
  return true;
}

bool SummaryCache::save(const std::string &Path) const {
  // Unique staging name per save: concurrent saves to one shared cache
  // file — from other processes or other threads of this one — must not
  // interleave writes into the same tmp file (each rename below stays
  // atomic; last writer wins wholesale).
  static std::atomic<uint64_t> SaveSeq{0};
  std::string Tmp = Path + ".tmp." +
                    std::to_string(static_cast<long>(::getpid())) + "." +
                    std::to_string(SaveSeq.fetch_add(1));
  bool Written = false;
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    OutF << "retypd-summary-cache v" << kSummaryCacheFileVersion << " schema "
         << kSummaryCacheSchemaVersion << '\n';
    // One consistent snapshot across shards (shared locks, fixed order).
    std::array<std::shared_lock<std::shared_mutex>, kNumShards> Locks;
    for (unsigned I = 0; I < kNumShards; ++I)
      Locks[I] = std::shared_lock<std::shared_mutex>(Shards[I].M);
    // Deterministic file contents: sort by key across all shards.
    std::vector<const std::pair<const SummaryKey, std::string> *> Sorted;
    for (const Shard &Sh : Shards)
      for (const auto &E : Sh.Entries)
        Sorted.push_back(&E);
    std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
      return std::make_pair(A->first.Hi, A->first.Lo) <
             std::make_pair(B->first.Hi, B->first.Lo);
    });
    for (const auto *E : Sorted) {
      OutF << "entry " << E->first.hex() << ' ' << E->second.size() << '\n';
      OutF.write(E->second.data(),
                 static_cast<std::streamsize>(E->second.size()));
      OutF << '\n';
    }
    Written = static_cast<bool>(OutF);
  }
  // Never abandon the uniquely-named staging file: failed saves would
  // otherwise accumulate one orphan per attempt next to the cache.
  if (!Written || std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

CacheFileInfo SummaryCache::inspectFile(const std::string &Path) {
  CacheFileInfo Info;
  Info.ShardEntryCounts.assign(kNumShards, 0);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Info.Error = "cannot open file";
    return Info;
  }
  std::string Line;
  if (!std::getline(In, Line)) {
    Info.Error = "empty file";
    return Info;
  }
  if (!parseHeader(Line, Info.FileVersion, Info.SchemaVersion)) {
    // The pre-versioning v1 layout ("retypd-summary-cache-v1") is still a
    // cache file — tell the user how to move on, not just that the header
    // is odd.
    if (Line.rfind("retypd-summary-cache", 0) == 0) {
      Info.Stale = true;
      Info.FileVersion = 1;
      Info.SchemaVersion = 1;
      Info.Error = versionMismatchError(1, 1);
    } else {
      Info.Error = "unrecognized header: " + Line;
    }
    return Info;
  }
  if (Info.FileVersion != kSummaryCacheFileVersion ||
      Info.SchemaVersion != kSummaryCacheSchemaVersion) {
    if (fileVersionIsNewer(Info.FileVersion, Info.SchemaVersion))
      Info.Newer = true;
    else
      Info.Stale = true;
    Info.Error = versionMismatchError(Info.FileVersion, Info.SchemaVersion);
    return Info;
  }
  // Bound payload skips by the real file size: seekg past EOF does not
  // fail until the next read, which would count a truncated final entry
  // as present (and disagree with what load() accepts). Measure on the
  // one open stream — a reopen could race with unlink/chmod and return
  // -1, silently neutralizing the bound.
  const std::streamoff HeaderEnd = In.tellg();
  In.seekg(0, std::ios::end);
  const std::streamoff End = In.tellg();
  In.seekg(HeaderEnd, std::ios::beg);
  if (HeaderEnd < 0 || End < 0) {
    Info.Error = "cannot determine file size";
    return Info;
  }
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    unsigned long long Hi = 0, Lo = 0, Bytes = 0;
    if (std::sscanf(Line.c_str(), "entry %16llx%16llx %llu", &Hi, &Lo,
                    &Bytes) != 3)
      break; // malformed tail: count what parsed
    std::streamoff Pos = In.tellg();
    // Compare in the unsigned domain: a corrupt 2^63+ byte count would
    // cast to a negative streamoff and slip past a signed comparison.
    if (Pos < 0 || Bytes > static_cast<unsigned long long>(End - Pos))
      break; // truncated payload: load() rejects it too
    In.seekg(static_cast<std::streamoff>(Bytes + 1), std::ios::cur);
    ++Info.EntryCount;
    ++Info.ShardEntryCounts[shardOf(SummaryKey{Hi, Lo})];
    Info.PayloadBytes += Bytes;
  }
  Info.Ok = true;
  return Info;
}
