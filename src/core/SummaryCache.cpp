//===- SummaryCache.cpp - Content-addressed type-scheme cache -------------===//

#include "core/SummaryCache.h"

#include "core/ConstraintParser.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace retypd;

namespace {

/// 128-bit FNV-1a over a growing byte stream: two independent 64-bit
/// lanes with distinct offset bases. Not cryptographic — the cache only
/// needs collision resistance against accidental clashes, and 2^64+ long
/// odds per lane pair are far beyond corpus sizes.
struct Fnv128 {
  uint64_t Hi = 0xcbf29ce484222325ull;
  uint64_t Lo = 0x84222325cbf29ce4ull;

  void update(std::string_view S) {
    for (unsigned char C : S) {
      Hi = (Hi ^ C) * 0x100000001b3ull;
      Lo = (Lo ^ C) * 0x00000100000001b3ull;
    }
  }
  void sep() { update(std::string_view("\x1f", 1)); }
};

} // namespace

std::string SummaryKey::hex() const {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buf;
}

SummaryKey SummaryCache::keyFor(std::string_view CanonicalText,
                                std::string_view ProcName,
                                const std::vector<std::string> &InterestingNames,
                                const SimplifyOptions &Opts) {
  Fnv128 H;
  H.update("retypd-summary-v1");
  H.sep();
  H.update(CanonicalText);
  H.sep();
  H.update(ProcName);
  H.sep();
  std::vector<std::string> Sorted = InterestingNames;
  std::sort(Sorted.begin(), Sorted.end());
  for (const std::string &N : Sorted) {
    H.update(N);
    H.sep();
  }
  H.sep();
  H.update(std::to_string(Opts.MaxTidyIterations) + "," +
           std::to_string(Opts.BloatSlack));
  return SummaryKey{H.Hi, H.Lo};
}

SummaryKey SummaryCache::keyFor(const ConstraintSet &C, TypeVariable ProcVar,
                                const std::vector<std::string> &InterestingNames,
                                const SimplifyOptions &Opts,
                                const SymbolTable &Syms, const Lattice &Lat) {
  // The sorted rendering is the canonical content.
  return keyFor(C.str(Syms, Lat), Syms.name(ProcVar.symbol()),
                InterestingNames, Opts);
}

std::string SummaryCache::serialize(const TypeScheme &Scheme,
                                    const SymbolTable &Syms,
                                    const Lattice &Lat) {
  std::string S = "proc " + Syms.name(Scheme.ProcVar.symbol()) + "\n";
  S += "existentials";
  for (TypeVariable V : Scheme.Existentials) {
    S += ' ';
    S += Syms.name(V.symbol());
  }
  S += '\n';
  S += Scheme.Constraints.str(Syms, Lat);
  return S;
}

std::optional<TypeScheme> SummaryCache::deserialize(const std::string &Text,
                                                    SymbolTable &Syms,
                                                    const Lattice &Lat) {
  std::istringstream In(Text);
  std::string Line;
  TypeScheme Scheme;
  if (!std::getline(In, Line) || Line.rfind("proc ", 0) != 0)
    return std::nullopt;
  Scheme.ProcVar = TypeVariable::var(Syms.intern(Line.substr(5)));
  if (!std::getline(In, Line) || Line.rfind("existentials", 0) != 0)
    return std::nullopt;
  {
    std::istringstream Ex(Line.substr(12));
    std::string Name;
    while (Ex >> Name)
      Scheme.Existentials.push_back(TypeVariable::var(Syms.intern(Name)));
  }
  std::string Rest((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  ConstraintParser Parser(Syms, Lat);
  auto C = Parser.parse(Rest);
  if (!C)
    return std::nullopt;
  Scheme.Constraints = std::move(*C);
  return Scheme;
}

std::optional<std::string> SummaryCache::lookup(const SummaryKey &K) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(K);
  if (It == Entries.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return It->second;
}

void SummaryCache::insert(const SummaryKey &K, std::string Serialized) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.insert_or_assign(K, std::move(Serialized));
}

void SummaryCache::noteCorrupt(const SummaryKey &K) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.erase(K);
  Hits.fetch_sub(1, std::memory_order_relaxed);
  Misses.fetch_add(1, std::memory_order_relaxed);
}

size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

void SummaryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
}

// File format:
//   retypd-summary-cache-v1
//   entry <hex key> <byte count>\n
//   <bytes>\n
//   ... repeated ...
bool SummaryCache::load(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::string Line;
  if (!std::getline(In, Line) || Line != "retypd-summary-cache-v1")
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    unsigned long long Hi = 0, Lo = 0, Bytes = 0;
    if (std::sscanf(Line.c_str(), "entry %16llx%16llx %llu", &Hi, &Lo,
                    &Bytes) != 3)
      return true; // ignore malformed tail
    std::string Payload(Bytes, '\0');
    In.read(Payload.data(), static_cast<std::streamsize>(Bytes));
    if (static_cast<unsigned long long>(In.gcount()) != Bytes)
      return true;
    In.get(); // trailing newline
    Entries.try_emplace(SummaryKey{Hi, Lo}, std::move(Payload));
  }
  return true;
}

bool SummaryCache::save(const std::string &Path) const {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    OutF << "retypd-summary-cache-v1\n";
    std::lock_guard<std::mutex> Lock(Mutex);
    // Deterministic file contents: sort by key.
    std::vector<const std::pair<const SummaryKey, std::string> *> Sorted;
    Sorted.reserve(Entries.size());
    for (const auto &E : Entries)
      Sorted.push_back(&E);
    std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
      return std::make_pair(A->first.Hi, A->first.Lo) <
             std::make_pair(B->first.Hi, B->first.Lo);
    });
    for (const auto *E : Sorted) {
      OutF << "entry " << E->first.hex() << ' ' << E->second.size() << '\n';
      OutF.write(E->second.data(),
                 static_cast<std::streamsize>(E->second.size()));
      OutF << '\n';
    }
    if (!OutF)
      return false;
  }
  return std::rename(Tmp.c_str(), Path.c_str()) == 0;
}
