//===- SummaryCache.cpp - Content-addressed type-scheme cache -------------===//

#include "core/SummaryCache.h"

#include "core/ConstraintParser.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace retypd;

namespace {

/// 128-bit FNV-1a over a growing byte stream: two independent 64-bit
/// lanes with distinct offset bases. Not cryptographic — the cache only
/// needs collision resistance against accidental clashes, and 2^64+ long
/// odds per lane pair are far beyond corpus sizes.
struct Fnv128 {
  uint64_t Hi = 0xcbf29ce484222325ull;
  uint64_t Lo = 0x84222325cbf29ce4ull;

  void update(std::string_view S) {
    for (unsigned char C : S) {
      Hi = (Hi ^ C) * 0x100000001b3ull;
      Lo = (Lo ^ C) * 0x00000100000001b3ull;
    }
  }
  void sep() { update(std::string_view("\x1f", 1)); }
};

} // namespace

std::string SummaryKey::hex() const {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buf;
}

SummaryKey SummaryCache::keyFor(std::string_view CanonicalText,
                                std::string_view ProcName,
                                const std::vector<std::string> &InterestingNames,
                                const SimplifyOptions &Opts) {
  Fnv128 H;
  H.update("retypd-summary-v1");
  H.sep();
  H.update(CanonicalText);
  H.sep();
  H.update(ProcName);
  H.sep();
  std::vector<std::string> Sorted = InterestingNames;
  std::sort(Sorted.begin(), Sorted.end());
  for (const std::string &N : Sorted) {
    H.update(N);
    H.sep();
  }
  H.sep();
  H.update(std::to_string(Opts.MaxTidyIterations) + "," +
           std::to_string(Opts.BloatSlack));
  return SummaryKey{H.Hi, H.Lo};
}

SummaryKey SummaryCache::keyFor(const ConstraintSet &C, TypeVariable ProcVar,
                                const std::vector<std::string> &InterestingNames,
                                const SimplifyOptions &Opts,
                                const SymbolTable &Syms, const Lattice &Lat) {
  // The sorted rendering is the canonical content.
  return keyFor(C.str(Syms, Lat), Syms.name(ProcVar.symbol()),
                InterestingNames, Opts);
}

std::string SummaryCache::serialize(const TypeScheme &Scheme,
                                    const SymbolTable &Syms,
                                    const Lattice &Lat) {
  std::string S = "proc " + Syms.name(Scheme.ProcVar.symbol()) + "\n";
  S += "existentials";
  for (TypeVariable V : Scheme.Existentials) {
    S += ' ';
    S += Syms.name(V.symbol());
  }
  S += '\n';
  S += Scheme.Constraints.str(Syms, Lat);
  return S;
}

std::optional<TypeScheme> SummaryCache::deserialize(const std::string &Text,
                                                    SymbolTable &Syms,
                                                    const Lattice &Lat) {
  std::istringstream In(Text);
  std::string Line;
  TypeScheme Scheme;
  if (!std::getline(In, Line) || Line.rfind("proc ", 0) != 0)
    return std::nullopt;
  Scheme.ProcVar = TypeVariable::var(Syms.intern(Line.substr(5)));
  if (!std::getline(In, Line) || Line.rfind("existentials", 0) != 0)
    return std::nullopt;
  {
    std::istringstream Ex(Line.substr(12));
    std::string Name;
    while (Ex >> Name)
      Scheme.Existentials.push_back(TypeVariable::var(Syms.intern(Name)));
  }
  std::string Rest((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  ConstraintParser Parser(Syms, Lat);
  auto C = Parser.parse(Rest);
  if (!C)
    return std::nullopt;
  Scheme.Constraints = std::move(*C);
  return Scheme;
}

std::optional<std::string> SummaryCache::lookup(const SummaryKey &K) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(K);
  if (It == Entries.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return It->second;
}

void SummaryCache::insert(const SummaryKey &K, std::string Serialized) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.insert_or_assign(K, std::move(Serialized));
}

void SummaryCache::noteCorrupt(const SummaryKey &K) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.erase(K);
  Hits.fetch_sub(1, std::memory_order_relaxed);
  Misses.fetch_add(1, std::memory_order_relaxed);
}

size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

void SummaryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
}

size_t SummaryCache::payloadBytes() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Bytes = 0;
  for (const auto &E : Entries)
    Bytes += E.second.size();
  return Bytes;
}

size_t SummaryCache::pruneToBytes(size_t MaxBytes) {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Total = 0;
  for (const auto &E : Entries)
    Total += E.second.size();
  if (Total <= MaxBytes)
    return 0;
  // Deterministic victim order: largest payloads first, key order on ties.
  std::vector<const std::pair<const SummaryKey, std::string> *> Sorted;
  Sorted.reserve(Entries.size());
  for (const auto &E : Entries)
    Sorted.push_back(&E);
  std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
    if (A->second.size() != B->second.size())
      return A->second.size() > B->second.size();
    return std::make_pair(A->first.Hi, A->first.Lo) <
           std::make_pair(B->first.Hi, B->first.Lo);
  });
  size_t Dropped = 0;
  for (const auto *E : Sorted) {
    if (Total <= MaxBytes)
      break;
    Total -= E->second.size();
    Entries.erase(E->first);
    ++Dropped;
  }
  return Dropped;
}

namespace {

/// Parses the version header line. Accepts only the current layout:
///   retypd-summary-cache v<FileVersion> schema <SchemaVersion>
bool parseHeader(const std::string &Line, unsigned &FileVersion,
                 unsigned &SchemaVersion) {
  unsigned V = 0, S = 0;
  if (std::sscanf(Line.c_str(), "retypd-summary-cache v%u schema %u", &V,
                  &S) != 2)
    return false;
  FileVersion = V;
  SchemaVersion = S;
  return true;
}

} // namespace

// File format (version kSummaryCacheFileVersion):
//   retypd-summary-cache v2 schema 1
//   entry <hex key> <byte count>\n
//   <bytes>\n
//   ... repeated ...
// Older headers (including the unversioned-schema "retypd-summary-cache-v1"
// of early builds) are rejected wholesale: a stale cache is a cold cache.
bool SummaryCache::load(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  // File size bounds every entry's claimed byte count: the count is
  // untrusted input, and allocating a string from a corrupt multi-GB (or
  // 2^64-1) value would abort the process instead of treating the entry
  // as a malformed tail.
  In.seekg(0, std::ios::end);
  const std::streamoff End = In.tellg();
  In.seekg(0, std::ios::beg);
  std::string Line;
  unsigned FileVersion = 0, SchemaVersion = 0;
  if (!std::getline(In, Line) ||
      !parseHeader(Line, FileVersion, SchemaVersion) ||
      FileVersion != kSummaryCacheFileVersion ||
      SchemaVersion != kSummaryCacheSchemaVersion)
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    unsigned long long Hi = 0, Lo = 0, Bytes = 0;
    if (std::sscanf(Line.c_str(), "entry %16llx%16llx %llu", &Hi, &Lo,
                    &Bytes) != 3)
      return true; // ignore malformed tail
    std::streamoff Pos = In.tellg();
    if (Pos < 0 ||
        Bytes > static_cast<unsigned long long>(End - Pos))
      return true; // claimed payload exceeds the file: malformed tail
    std::string Payload(Bytes, '\0');
    In.read(Payload.data(), static_cast<std::streamsize>(Bytes));
    if (static_cast<unsigned long long>(In.gcount()) != Bytes)
      return true;
    In.get(); // trailing newline
    Entries.try_emplace(SummaryKey{Hi, Lo}, std::move(Payload));
  }
  return true;
}

bool SummaryCache::save(const std::string &Path) const {
  // Unique staging name per save: concurrent saves to one shared cache
  // file — from other processes or other threads of this one — must not
  // interleave writes into the same tmp file (each rename below stays
  // atomic; last writer wins wholesale).
  static std::atomic<uint64_t> SaveSeq{0};
  std::string Tmp = Path + ".tmp." +
                    std::to_string(static_cast<long>(::getpid())) + "." +
                    std::to_string(SaveSeq.fetch_add(1));
  bool Written = false;
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    OutF << "retypd-summary-cache v" << kSummaryCacheFileVersion << " schema "
         << kSummaryCacheSchemaVersion << '\n';
    std::lock_guard<std::mutex> Lock(Mutex);
    // Deterministic file contents: sort by key.
    std::vector<const std::pair<const SummaryKey, std::string> *> Sorted;
    Sorted.reserve(Entries.size());
    for (const auto &E : Entries)
      Sorted.push_back(&E);
    std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
      return std::make_pair(A->first.Hi, A->first.Lo) <
             std::make_pair(B->first.Hi, B->first.Lo);
    });
    for (const auto *E : Sorted) {
      OutF << "entry " << E->first.hex() << ' ' << E->second.size() << '\n';
      OutF.write(E->second.data(),
                 static_cast<std::streamsize>(E->second.size()));
      OutF << '\n';
    }
    Written = static_cast<bool>(OutF);
  }
  // Never abandon the uniquely-named staging file: failed saves would
  // otherwise accumulate one orphan per attempt next to the cache.
  if (!Written || std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

CacheFileInfo SummaryCache::inspectFile(const std::string &Path) {
  CacheFileInfo Info;
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Info.Error = "cannot open file";
    return Info;
  }
  std::string Line;
  if (!std::getline(In, Line)) {
    Info.Error = "empty file";
    return Info;
  }
  if (!parseHeader(Line, Info.FileVersion, Info.SchemaVersion)) {
    Info.Error = "unrecognized header: " + Line;
    return Info;
  }
  if (Info.FileVersion != kSummaryCacheFileVersion ||
      Info.SchemaVersion != kSummaryCacheSchemaVersion) {
    Info.Error = "stale version (current: v" +
                 std::to_string(kSummaryCacheFileVersion) + " schema " +
                 std::to_string(kSummaryCacheSchemaVersion) + ")";
    return Info;
  }
  // Bound payload skips by the real file size: seekg past EOF does not
  // fail until the next read, which would count a truncated final entry
  // as present (and disagree with what load() accepts). Measure on the
  // one open stream — a reopen could race with unlink/chmod and return
  // -1, silently neutralizing the bound.
  const std::streamoff HeaderEnd = In.tellg();
  In.seekg(0, std::ios::end);
  const std::streamoff End = In.tellg();
  In.seekg(HeaderEnd, std::ios::beg);
  if (HeaderEnd < 0 || End < 0) {
    Info.Error = "cannot determine file size";
    return Info;
  }
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    unsigned long long Hi = 0, Lo = 0, Bytes = 0;
    if (std::sscanf(Line.c_str(), "entry %16llx%16llx %llu", &Hi, &Lo,
                    &Bytes) != 3)
      break; // malformed tail: count what parsed
    std::streamoff Pos = In.tellg();
    // Compare in the unsigned domain: a corrupt 2^63+ byte count would
    // cast to a negative streamoff and slip past a signed comparison.
    if (Pos < 0 || Bytes > static_cast<unsigned long long>(End - Pos))
      break; // truncated payload: load() rejects it too
    In.seekg(static_cast<std::streamoff>(Bytes + 1), std::ios::cur);
    ++Info.EntryCount;
    Info.PayloadBytes += Bytes;
  }
  Info.Ok = true;
  return Info;
}
