//===- SummaryCache.cpp - Content-addressed type-scheme cache -------------===//

#include "core/SummaryCache.h"

#include "support/Stats.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>

#include <unistd.h>

using namespace retypd;

namespace {

/// Streams a name set into \p H order-independently: sorted, each name
/// followed by a separator. Shared by scheme and solve keys so the name
/// hashing discipline can never diverge between them.
void hashSortedNames(Fnv128 &H, const std::vector<std::string> &Names) {
  std::vector<const std::string *> Sorted;
  Sorted.reserve(Names.size());
  for (const std::string &N : Names)
    Sorted.push_back(&N);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const std::string *A, const std::string *B) { return *A < *B; });
  for (const std::string *N : Sorted) {
    H.update(*N);
    H.sep();
  }
}

} // namespace

SummaryKey SummaryCache::keyFor(const Hash128 &SetHash,
                                std::string_view ProcName,
                                const std::vector<std::string> &InterestingNames,
                                const SimplifyOptions &Opts) {
  Fnv128 H;
  H.update("retypd-summary-v3");
  H.sep();
  H.updateU64(SetHash.Hi);
  H.updateU64(SetHash.Lo);
  H.sep();
  H.update(ProcName);
  H.sep();
  hashSortedNames(H, InterestingNames);
  H.sep();
  H.updateU64(Opts.MaxTidyIterations);
  H.updateU64(Opts.BloatSlack);
  return H.digest();
}

SummaryKey SummaryCache::keyFor(const ConstraintSet &C, TypeVariable ProcVar,
                                const std::vector<std::string> &InterestingNames,
                                const SimplifyOptions &Opts,
                                const SymbolTable &Syms, const Lattice &Lat) {
  // The canonical structural hash is the content identity — insertion
  // order and symbol-id allocation cannot leak into it.
  ScopedPhaseTimer Timer("cache.hash");
  return keyFor(constraintSetHash(C, Syms, Lat),
                Syms.name(ProcVar.symbol()), InterestingNames, Opts);
}

SummaryKey SummaryCache::solveKeyFor(const Hash128 &SetHash,
                                     const std::vector<std::string>
                                         &WantedNames) {
  Fnv128 H;
  H.update("retypd-solve-v1");
  H.sep();
  H.updateU64(SetHash.Hi);
  H.updateU64(SetHash.Lo);
  H.sep();
  hashSortedNames(H, WantedNames);
  return H.digest();
}

namespace {

/// Shared probe shape for the decoded-value lookups: copy the payload out
/// under a shared lock, decode outside any lock, self-heal on failure.
template <typename DecodeFn>
auto probeAndDecode(const SummaryKey &K, DecodeFn Decode,
                    std::shared_mutex &M,
                    std::unordered_map<SummaryKey, std::string,
                                       SummaryKeyHash> &Entries,
                    std::atomic<uint64_t> &Hits, std::atomic<uint64_t> &Misses)
    -> decltype(Decode(std::string_view())) {
  std::string Payload;
  {
    std::shared_lock<std::shared_mutex> Lock(M);
    auto It = Entries.find(K);
    if (It == Entries.end()) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Payload = It->second; // copy out: decode outside the lock
  }
  {
    ScopedPhaseTimer Timer("cache.decode");
    if (auto Decoded = Decode(Payload)) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return Decoded;
    }
  }
  // Self-healing: a corrupt payload is a miss, and dropping it lets the
  // caller's recomputed insert overwrite it. Only erase if the bytes are
  // still the ones that failed — a racing insert may have fixed it.
  {
    std::unique_lock<std::shared_mutex> Lock(M);
    auto It = Entries.find(K);
    if (It != Entries.end() && It->second == Payload)
      Entries.erase(It);
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

} // namespace

std::optional<TypeScheme> SummaryCache::lookup(const SummaryKey &K,
                                               SymbolTable &Syms,
                                               const Lattice &Lat) const {
  Shard &Sh = shard(K);
  return probeAndDecode(
      K, [&](std::string_view P) { return decodeScheme(P, Syms, Lat); }, Sh.M,
      Sh.Entries, Hits, Misses);
}

std::optional<std::vector<SketchBinding>>
SummaryCache::lookupSolution(const SummaryKey &K, SymbolTable &Syms,
                             const Lattice &Lat) const {
  Shard &Sh = shard(K);
  return probeAndDecode(
      K, [&](std::string_view P) { return decodeSketchBundle(P, Syms, Lat); },
      Sh.M, Sh.Entries, Hits, Misses);
}

std::optional<DecodedGenResult> SummaryCache::lookupGen(const SummaryKey &K,
                                                        SymbolTable &Syms,
                                                        const Lattice &Lat)
    const {
  Shard &Sh = shard(K);
  std::optional<DecodedGenResult> Out;
  bool Found = false;
  {
    // Gen payloads are the largest entry kind (a whole SCC's constraint
    // set), so unlike probeAndDecode this decodes in place under the
    // shared lock instead of copying the payload out first. Readers never
    // block readers, and entries never mutate — only insert_or_assign
    // replaces whole strings under the exclusive lock.
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    auto It = Sh.Entries.find(K);
    if (It != Sh.Entries.end()) {
      Found = true;
      ScopedPhaseTimer Timer("cache.decode");
      Out = decodeGenResult(It->second, Syms, Lat);
    }
  }
  if (Found && !Out) {
    // Self-healing: drop the corrupt entry so the caller's recomputed
    // insert overwrites it (unless a racing insert already replaced it
    // with bytes that decode — re-check under the exclusive lock).
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    auto It = Sh.Entries.find(K);
    if (It != Sh.Entries.end() && !decodeGenResult(It->second, Syms, Lat))
      Sh.Entries.erase(It);
  }
  if (Out) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    EventCounters::GenCacheHits.fetch_add(1, std::memory_order_relaxed);
  } else {
    Misses.fetch_add(1, std::memory_order_relaxed);
    EventCounters::GenCacheMisses.fetch_add(1, std::memory_order_relaxed);
  }
  return Out;
}

void SummaryCache::insertGen(const SummaryKey &K, const ConstraintSet &C,
                             const Hash128 &SetHash,
                             const std::vector<TypeVariable> &Interesting,
                             const std::vector<TypeVariable> &Callsites,
                             const SymbolTable &Syms, const Lattice &Lat) {
  std::string Payload;
  {
    ScopedPhaseTimer Timer("cache.encode");
    Payload = encodeGenResult(C, SetHash, Interesting, Callsites, Syms, Lat);
  }
  insertPayload(K, std::move(Payload));
}

void SummaryCache::insertSolution(
    const SummaryKey &K,
    const std::vector<std::pair<TypeVariable, const Sketch *>> &Entries,
    const SymbolTable &Syms, const Lattice &Lat) {
  std::string Payload;
  {
    ScopedPhaseTimer Timer("cache.encode");
    Payload = encodeSketchBundle(Entries, Syms, Lat);
  }
  insertPayload(K, std::move(Payload));
}

void SummaryCache::insert(const SummaryKey &K, const TypeScheme &Scheme,
                          const SymbolTable &Syms, const Lattice &Lat) {
  std::string Payload;
  {
    ScopedPhaseTimer Timer("cache.encode");
    Payload = encodeScheme(Scheme, Syms, Lat);
  }
  insertPayload(K, std::move(Payload));
}

std::optional<std::string> SummaryCache::lookupPayload(const SummaryKey &K) const {
  Shard &Sh = shard(K);
  std::shared_lock<std::shared_mutex> Lock(Sh.M);
  auto It = Sh.Entries.find(K);
  if (It == Sh.Entries.end())
    return std::nullopt;
  return It->second;
}

void SummaryCache::insertPayload(const SummaryKey &K, std::string Payload) {
  Shard &Sh = shard(K);
  std::unique_lock<std::shared_mutex> Lock(Sh.M);
  // Replacement matters for self-healing: a corrupt entry that failed to
  // decode gets overwritten by the freshly recomputed scheme. Concurrent
  // duplicate inserts are benign because entries for one key are always
  // identical by construction.
  Sh.Entries.insert_or_assign(K, std::move(Payload));
}

size_t SummaryCache::size() const {
  size_t N = 0;
  for (const Shard &Sh : Shards) {
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    N += Sh.Entries.size();
  }
  return N;
}

void SummaryCache::clear() {
  for (Shard &Sh : Shards) {
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    Sh.Entries.clear();
  }
}

size_t SummaryCache::payloadBytes() const {
  size_t Bytes = 0;
  for (const Shard &Sh : Shards) {
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    for (const auto &E : Sh.Entries)
      Bytes += E.second.size();
  }
  return Bytes;
}

size_t SummaryCache::pruneToBytes(size_t MaxBytes) {
  // Hold every shard exclusively (fixed order — the same order save() and
  // the copy paths use) so the victim choice sees one consistent snapshot.
  std::array<std::unique_lock<std::shared_mutex>, kNumShards> Locks;
  for (unsigned I = 0; I < kNumShards; ++I)
    Locks[I] = std::unique_lock<std::shared_mutex>(Shards[I].M);
  size_t Total = 0;
  std::vector<const std::pair<const SummaryKey, std::string> *> Sorted;
  for (Shard &Sh : Shards)
    for (const auto &E : Sh.Entries) {
      Total += E.second.size();
      Sorted.push_back(&E);
    }
  if (Total <= MaxBytes)
    return 0;
  // Deterministic victim order: largest payloads first, key order on ties.
  std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
    if (A->second.size() != B->second.size())
      return A->second.size() > B->second.size();
    return std::make_pair(A->first.Hi, A->first.Lo) <
           std::make_pair(B->first.Hi, B->first.Lo);
  });
  size_t Dropped = 0;
  for (const auto *E : Sorted) {
    if (Total <= MaxBytes)
      break;
    Total -= E->second.size();
    Shards[shardOf(E->first)].Entries.erase(E->first);
    ++Dropped;
  }
  return Dropped;
}

namespace {

/// Parses the version header line. Accepts only the current layout:
///   retypd-summary-cache v<FileVersion> schema <SchemaVersion>
bool parseHeader(const std::string &Line, unsigned &FileVersion,
                 unsigned &SchemaVersion) {
  unsigned V = 0, S = 0;
  if (std::sscanf(Line.c_str(), "retypd-summary-cache v%u schema %u", &V,
                  &S) != 2)
    return false;
  FileVersion = V;
  SchemaVersion = S;
  return true;
}

bool fileVersionIsNewer(unsigned FileVersion, unsigned SchemaVersion) {
  return FileVersion > kSummaryCacheFileVersion ||
         (FileVersion == kSummaryCacheFileVersion &&
          SchemaVersion > kSummaryCacheSchemaVersion);
}

std::string versionMismatchError(unsigned FileVersion,
                                 unsigned SchemaVersion) {
  std::string Versions = "(v" + std::to_string(FileVersion) + " schema " +
                         std::to_string(SchemaVersion) + "; this binary: v" +
                         std::to_string(kSummaryCacheFileVersion) +
                         " schema " +
                         std::to_string(kSummaryCacheSchemaVersion) + ")";
  // Direction matters: an OLDER file is stale and safe to regenerate; a
  // NEWER file was written by a newer binary, and "regenerate" would
  // destroy its valid contents.
  if (fileVersionIsNewer(FileVersion, SchemaVersion))
    return "cache file is newer than this binary " + Versions +
           " — upgrade the binary or point it at a different cache file";
  return "stale cache file " + Versions +
         " — re-run analyze to regenerate it";
}

} // namespace

// File format (version kSummaryCacheFileVersion):
//   retypd-summary-cache v3 schema 2
//   entry <hex key> <byte count>\n
//   <binary payload bytes>\n
//   ... repeated ...
// Older headers (v1's unversioned "retypd-summary-cache-v1", v2's textual
// schemes) are rejected wholesale: a stale cache is a cold cache.
bool SummaryCache::load(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  // File size bounds every entry's claimed byte count: the count is
  // untrusted input, and allocating a string from a corrupt multi-GB (or
  // 2^64-1) value would abort the process instead of treating the entry
  // as a malformed tail.
  In.seekg(0, std::ios::end);
  const std::streamoff End = In.tellg();
  In.seekg(0, std::ios::beg);
  std::string Line;
  unsigned FileVersion = 0, SchemaVersion = 0;
  if (!std::getline(In, Line) ||
      !parseHeader(Line, FileVersion, SchemaVersion) ||
      FileVersion != kSummaryCacheFileVersion ||
      SchemaVersion != kSummaryCacheSchemaVersion)
    return false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    unsigned long long Hi = 0, Lo = 0, Bytes = 0;
    if (std::sscanf(Line.c_str(), "entry %16llx%16llx %llu", &Hi, &Lo,
                    &Bytes) != 3)
      return true; // ignore malformed tail
    std::streamoff Pos = In.tellg();
    if (Pos < 0 ||
        Bytes > static_cast<unsigned long long>(End - Pos))
      return true; // claimed payload exceeds the file: malformed tail
    std::string Payload(Bytes, '\0');
    In.read(Payload.data(), static_cast<std::streamsize>(Bytes));
    if (static_cast<unsigned long long>(In.gcount()) != Bytes)
      return true;
    In.get(); // trailing newline
    SummaryKey K{Hi, Lo};
    Shard &Sh = shard(K);
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    Sh.Entries.try_emplace(K, std::move(Payload));
  }
  return true;
}

bool SummaryCache::save(const std::string &Path) const {
  // Unique staging name per save: concurrent saves to one shared cache
  // file — from other processes or other threads of this one — must not
  // interleave writes into the same tmp file (each rename below stays
  // atomic; last writer wins wholesale).
  static std::atomic<uint64_t> SaveSeq{0};
  std::string Tmp = Path + ".tmp." +
                    std::to_string(static_cast<long>(::getpid())) + "." +
                    std::to_string(SaveSeq.fetch_add(1));
  bool Written = false;
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    OutF << "retypd-summary-cache v" << kSummaryCacheFileVersion << " schema "
         << kSummaryCacheSchemaVersion << '\n';
    // One consistent snapshot across shards (shared locks, fixed order).
    std::array<std::shared_lock<std::shared_mutex>, kNumShards> Locks;
    for (unsigned I = 0; I < kNumShards; ++I)
      Locks[I] = std::shared_lock<std::shared_mutex>(Shards[I].M);
    // Deterministic file contents: sort by key across all shards.
    std::vector<const std::pair<const SummaryKey, std::string> *> Sorted;
    for (const Shard &Sh : Shards)
      for (const auto &E : Sh.Entries)
        Sorted.push_back(&E);
    std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
      return std::make_pair(A->first.Hi, A->first.Lo) <
             std::make_pair(B->first.Hi, B->first.Lo);
    });
    for (const auto *E : Sorted) {
      OutF << "entry " << E->first.hex() << ' ' << E->second.size() << '\n';
      OutF.write(E->second.data(),
                 static_cast<std::streamsize>(E->second.size()));
      OutF << '\n';
    }
    Written = static_cast<bool>(OutF);
  }
  // Never abandon the uniquely-named staging file: failed saves would
  // otherwise accumulate one orphan per attempt next to the cache.
  if (!Written || std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

CacheFileInfo SummaryCache::inspectFile(const std::string &Path) {
  CacheFileInfo Info;
  Info.ShardEntryCounts.assign(kNumShards, 0);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Info.Error = "cannot open file";
    return Info;
  }
  std::string Line;
  if (!std::getline(In, Line)) {
    Info.Error = "empty file";
    return Info;
  }
  if (!parseHeader(Line, Info.FileVersion, Info.SchemaVersion)) {
    // The pre-versioning v1 layout ("retypd-summary-cache-v1") is still a
    // cache file — tell the user how to move on, not just that the header
    // is odd.
    if (Line.rfind("retypd-summary-cache", 0) == 0) {
      Info.Stale = true;
      Info.FileVersion = 1;
      Info.SchemaVersion = 1;
      Info.Error = versionMismatchError(1, 1);
    } else {
      Info.Error = "unrecognized header: " + Line;
    }
    return Info;
  }
  if (Info.FileVersion != kSummaryCacheFileVersion ||
      Info.SchemaVersion != kSummaryCacheSchemaVersion) {
    if (fileVersionIsNewer(Info.FileVersion, Info.SchemaVersion))
      Info.Newer = true;
    else
      Info.Stale = true;
    Info.Error = versionMismatchError(Info.FileVersion, Info.SchemaVersion);
    return Info;
  }
  // Bound payload skips by the real file size: seekg past EOF does not
  // fail until the next read, which would count a truncated final entry
  // as present (and disagree with what load() accepts). Measure on the
  // one open stream — a reopen could race with unlink/chmod and return
  // -1, silently neutralizing the bound.
  const std::streamoff HeaderEnd = In.tellg();
  In.seekg(0, std::ios::end);
  const std::streamoff End = In.tellg();
  In.seekg(HeaderEnd, std::ios::beg);
  if (HeaderEnd < 0 || End < 0) {
    Info.Error = "cannot determine file size";
    return Info;
  }
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    unsigned long long Hi = 0, Lo = 0, Bytes = 0;
    if (std::sscanf(Line.c_str(), "entry %16llx%16llx %llu", &Hi, &Lo,
                    &Bytes) != 3)
      break; // malformed tail: count what parsed
    std::streamoff Pos = In.tellg();
    // Compare in the unsigned domain: a corrupt 2^63+ byte count would
    // cast to a negative streamoff and slip past a signed comparison.
    if (Pos < 0 || Bytes > static_cast<unsigned long long>(End - Pos))
      break; // truncated payload: load() rejects it too
    In.seekg(static_cast<std::streamoff>(Bytes + 1), std::ios::cur);
    ++Info.EntryCount;
    ++Info.ShardEntryCounts[shardOf(SummaryKey{Hi, Lo})];
    Info.PayloadBytes += Bytes;
  }
  Info.Ok = true;
  return Info;
}
