//===- SummaryCache.cpp - Content-addressed type-scheme cache -------------===//

#include "core/SummaryCache.h"

#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>

#include <unistd.h>

using namespace retypd;

namespace {

/// Streams a name set into \p H order-independently: sorted, each name
/// followed by a separator. Shared by scheme and solve keys so the name
/// hashing discipline can never diverge between them.
void hashSortedNames(Fnv128 &H, const std::vector<std::string> &Names) {
  std::vector<const std::string *> Sorted;
  Sorted.reserve(Names.size());
  for (const std::string &N : Names)
    Sorted.push_back(&N);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const std::string *A, const std::string *B) { return *A < *B; });
  for (const std::string *N : Sorted) {
    H.update(*N);
    H.sep();
  }
}

} // namespace

SummaryKey SummaryCache::keyFor(const Hash128 &SetHash,
                                std::string_view ProcName,
                                const std::vector<std::string> &InterestingNames,
                                const SimplifyOptions &Opts,
                                BackendKind Backend) {
  Fnv128 H;
  H.update("retypd-summary-v3");
  H.sep();
  H.updateU64(SetHash.Hi);
  H.updateU64(SetHash.Lo);
  H.sep();
  H.update(ProcName);
  H.sep();
  hashSortedNames(H, InterestingNames);
  H.sep();
  H.updateU64(Opts.MaxTidyIterations);
  H.updateU64(Opts.BloatSlack);
  // The default backend hashes the exact historical byte stream, so
  // every pre-seam store/cache file stays warm; other backends extend
  // the stream and land in a disjoint key space.
  if (Backend != BackendKind::Retypd) {
    H.sep();
    H.update(backendName(Backend));
  }
  return H.digest();
}

SummaryKey SummaryCache::keyFor(const ConstraintSet &C, TypeVariable ProcVar,
                                const std::vector<std::string> &InterestingNames,
                                const SimplifyOptions &Opts,
                                const SymbolTable &Syms, const Lattice &Lat,
                                BackendKind Backend) {
  // The canonical structural hash is the content identity — insertion
  // order and symbol-id allocation cannot leak into it.
  ScopedPhaseTimer Timer("cache.hash");
  return keyFor(constraintSetHash(C, Syms, Lat),
                Syms.name(ProcVar.symbol()), InterestingNames, Opts, Backend);
}

SummaryKey SummaryCache::solveKeyFor(const Hash128 &SetHash,
                                     const std::vector<std::string>
                                         &WantedNames,
                                     BackendKind Backend) {
  Fnv128 H;
  H.update("retypd-solve-v1");
  H.sep();
  H.updateU64(SetHash.Hi);
  H.updateU64(SetHash.Lo);
  H.sep();
  hashSortedNames(H, WantedNames);
  if (Backend != BackendKind::Retypd) {
    H.sep();
    H.update(backendName(Backend));
  }
  return H.digest();
}

std::shared_ptr<const SummaryCache::PoolBinding>
SummaryCache::poolBindingFor(SymbolTable &Syms, const Lattice &Lat) const {
  // Snapshot the guards first; the pool can grow between these reads and
  // the build below, but never shrink within an epoch — a too-small
  // binding only means the probe retries after refreshing.
  const uint64_t Epoch = Backing->poolEpoch();
  const uint64_t Size = Backing->poolSize();
  const uint64_t Uid = Syms.uid();
  {
    std::lock_guard<std::mutex> L(BindingM);
    if (Binding && Binding->Epoch == Epoch && Binding->SymsUid == Uid &&
        Binding->Lat == &Lat && Binding->SymIds.size() >= Size)
      return Binding;
  }
  // Build (or extend) OUTSIDE the store's read path: forEachPoolNameFrom
  // takes the store's shared lock, so no PayloadRef may be alive here.
  auto B = std::make_shared<PoolBinding>();
  B->Epoch = Epoch;
  B->SymsUid = Uid;
  B->Lat = &Lat;
  uint64_t From = 0;
  {
    std::lock_guard<std::mutex> L(BindingM);
    if (Binding && Binding->Epoch == Epoch && Binding->SymsUid == Uid &&
        Binding->Lat == &Lat) {
      // Same epoch: the pool only grew, so the old table is a valid
      // prefix — copy it and intern just the tail.
      B->SymIds = Binding->SymIds;
      B->LatElems = Binding->LatElems;
      From = B->SymIds.size();
    }
  }
  uint64_t Added = 0;
  {
    ScopedPhaseTimer Timer("cache.poolbind");
    Backing->forEachPoolNameFrom(From, [&](uint64_t, std::string_view N) {
      B->SymIds.push_back(Syms.intern(N));
      std::optional<LatticeElem> E = Lat.lookup(N);
      B->LatElems.push_back(E ? static_cast<uint32_t>(*E) + 1 : 0);
      ++Added;
    });
  }
  if (Added) {
    EventCounters::PoolBinds.fetch_add(Added, std::memory_order_relaxed);
    trace::instant("pool.bind", "store", static_cast<int64_t>(Added));
  }
  std::lock_guard<std::mutex> L(BindingM);
  // Keep whichever binding is further along (a racing builder may have
  // published a longer table while we interned).
  if (!Binding || Binding->Epoch != Epoch || Binding->SymsUid != Uid ||
      Binding->Lat != &Lat || Binding->SymIds.size() < B->SymIds.size())
    Binding = B;
  return Binding;
}

template <typename DecodeFn, typename TrustedFn>
auto SummaryCache::probeImpl(const SummaryKey &K, SymbolTable &Syms,
                             const Lattice &Lat, DecodeFn Decode,
                             TrustedFn DecodeTrusted, bool Count) const
    -> decltype(Decode(std::string_view())) {
  using Result = decltype(Decode(std::string_view()));
  Shard &Sh = shard(K);
  Result Out;
  bool FoundMem = false;
  {
    // In-memory payloads decode in place under the shard's shared lock:
    // readers never block readers, and entries never mutate — only
    // insert_or_assign replaces whole strings, under the exclusive lock.
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    auto It = Sh.Entries.find(K);
    if (It != Sh.Entries.end()) {
      FoundMem = true;
      ScopedPhaseTimer Timer("cache.decode");
      Out = Decode(std::string_view(It->second));
    }
  }
  if (FoundMem && !Out) {
    // Self-healing: drop the corrupt entry so the caller's recomputed
    // insert overwrites it (unless a racing insert already replaced it
    // with bytes that decode — re-check under the exclusive lock). The
    // attached store below may still serve the key.
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    auto It = Sh.Entries.find(K);
    if (It != Sh.Entries.end() && !Decode(std::string_view(It->second)))
      Sh.Entries.erase(It);
  }
  if (!Out && Backing) {
    // The translation table is grabbed BEFORE the payload view: its
    // build takes the store's shared lock, which must never nest inside
    // a held PayloadRef.
    std::shared_ptr<const PoolBinding> B = poolBindingFor(Syms, Lat);
    for (int Attempt = 0; Attempt < 2 && !Out; ++Attempt) {
      bool PoolMode = false;
      {
        // Decode straight out of the store's mapped segment — the view
        // is borrowed, no payload bytes are copied. Records were
        // structurally validated at segment scan, so this is the
        // codec's trusted fast path; without a validating store (test
        // seam) the payload is validated here instead.
        Store::PayloadRef Ref = Backing->lookup(K);
        if (!Ref)
          break;
        std::string_view V = Ref.view();
        PoolMode =
            V.size() >= 2 && static_cast<unsigned char>(V[1]) == 1;
        if (!Backing->validatesPayloads() &&
            !validatePayload(V, B->SymIds.size()))
          break;
        PoolBindingView PV;
        PV.SymIds = B->SymIds.data();
        PV.LatElems = B->LatElems.data();
        PV.Size = B->SymIds.size();
        ScopedPhaseTimer Timer("cache.decode");
        Out = DecodeTrusted(V, &PV);
      }
      if (Out) {
        EventCounters::StoreHits.fetch_add(1, std::memory_order_relaxed);
        if (PoolMode)
          EventCounters::PoolBindHits.fetch_add(1,
                                                std::memory_order_relaxed);
      } else if (PoolMode && Attempt == 0) {
        // The payload may reference pool ids added after our binding
        // snapshot (another process flushed between the binding build
        // and the lookup). Refresh once; a second failure is a genuine
        // reject.
        B = poolBindingFor(Syms, Lat);
      } else {
        // A store payload that fails to decode is a plain miss here;
        // the record itself is folded away by the next compaction.
        break;
      }
    }
  }
  if (Out) {
    if (Count)
      Hits.fetch_add(1, std::memory_order_relaxed);
    return Out;
  }
  if (Count)
    Misses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

std::optional<TypeScheme> SummaryCache::lookup(const SummaryKey &K,
                                               SymbolTable &Syms,
                                               const Lattice &Lat) const {
  return probeImpl(
      K, Syms, Lat,
      [&](std::string_view P) { return decodeScheme(P, Syms, Lat); },
      [&](std::string_view P, const PoolBindingView *Pool) {
        return decodeSchemeTrusted(P, Syms, Lat, Pool);
      });
}

std::optional<std::vector<SketchBinding>>
SummaryCache::lookupSolution(const SummaryKey &K, SymbolTable &Syms,
                             const Lattice &Lat) const {
  return probeImpl(
      K, Syms, Lat,
      [&](std::string_view P) { return decodeSketchBundle(P, Syms, Lat); },
      [&](std::string_view P, const PoolBindingView *Pool) {
        return decodeSketchBundleTrusted(P, Syms, Lat, Pool);
      });
}

std::optional<DecodedGenResult> SummaryCache::lookupGen(const SummaryKey &K,
                                                        SymbolTable &Syms,
                                                        const Lattice &Lat)
    const {
  auto Out = probeImpl(
      K, Syms, Lat,
      [&](std::string_view P) { return decodeGenResult(P, Syms, Lat); },
      [&](std::string_view P, const PoolBindingView *Pool) {
        return decodeGenResultTrusted(P, Syms, Lat, Pool);
      });
  if (Out)
    EventCounters::GenCacheHits.fetch_add(1, std::memory_order_relaxed);
  else
    EventCounters::GenCacheMisses.fetch_add(1, std::memory_order_relaxed);
  return Out;
}

std::optional<GenResultMeta>
SummaryCache::lookupGenMeta(const SummaryKey &K, SymbolTable &Syms,
                            const Lattice &Lat) const {
  auto Out = probeImpl(
      K, Syms, Lat,
      [&](std::string_view P) -> std::optional<GenResultMeta> {
        // In-memory entries skipped store-side validation; check here.
        if (!validatePayload(P, 0))
          return std::nullopt;
        return decodeGenResultMetaTrusted(P, Syms, Lat);
      },
      [&](std::string_view P, const PoolBindingView *Pool) {
        return decodeGenResultMetaTrusted(P, Syms, Lat, Pool);
      });
  if (Out)
    EventCounters::GenCacheHits.fetch_add(1, std::memory_order_relaxed);
  else
    EventCounters::GenCacheMisses.fetch_add(1, std::memory_order_relaxed);
  return Out;
}

std::optional<DecodedGenResult>
SummaryCache::materializeGen(const SummaryKey &K, SymbolTable &Syms,
                             const Lattice &Lat) const {
  return probeImpl(
      K, Syms, Lat,
      [&](std::string_view P) { return decodeGenResult(P, Syms, Lat); },
      [&](std::string_view P, const PoolBindingView *Pool) {
        return decodeGenResultTrusted(P, Syms, Lat, Pool);
      },
      /*Count=*/false);
}

bool SummaryCache::openStore(const std::string &Dir, std::string *Err) {
  StoreOptions O;
  O.SchemaVersion = kSummaryCacheSchemaVersion;
  // The analyze path owns regeneration: a stale store is a cold store,
  // exactly like a stale cache file (which load() simply ignores).
  O.RegenerateStale = true;
  // Structural validation runs once per record at segment scan; every
  // probe afterwards decodes through the codec's trusted fast path.
  O.Validator = [](std::string_view Payload, uint64_t PoolSize) {
    return validatePayload(Payload, PoolSize);
  };
  auto S = Store::open(Dir, O, Err);
  if (!S)
    return false;
  attachStore(std::move(S));
  return true;
}

void SummaryCache::attachStore(std::unique_ptr<Store> S) {
  Backing = std::move(S);
  // Pool epochs are relative to the attached store; drop the table.
  std::lock_guard<std::mutex> L(BindingM);
  Binding.reset();
}

std::optional<size_t> SummaryCache::flushToStore(std::string *Err) {
  if (!Backing) {
    if (Err)
      *Err = "no store attached";
    return std::nullopt;
  }
  // Snapshot (key, payload) per shard FIRST: no shard lock is ever held
  // across a store call (the store's lock and the shard locks must never
  // nest in both orders). Sorted by key so pool id assignment — and with
  // it the store's byte content — is deterministic for a given entry
  // set, independent of insertion timing.
  std::vector<std::pair<SummaryKey, std::string>> Snap;
  for (unsigned I = 0; I < kNumShards; ++I) {
    std::shared_lock<std::shared_mutex> Lock(Shards[I].M);
    for (const auto &E : Shards[I].Entries)
      Snap.emplace_back(E.first, E.second);
  }
  std::sort(Snap.begin(), Snap.end(), [](const auto &A, const auto &B) {
    return A.first < B.first;
  });
  size_t Appended = 0;
  ScopedPhaseTimer Timer("store.flush");
  bool Ok = Backing->flushWith(
      [&](Store::Txn &T) {
        Appended = 0;
        for (const auto &E : Snap) {
          // Transcode names to pool ids under the flush lock: id
          // assignment is race-free across processes, and the store
          // writes the pool additions durably before these records.
          std::optional<std::string> Pooled = transcodeNamesToPool(
              E.second,
              [&](std::string_view N) { return T.poolIdFor(N); });
          const std::string &P = Pooled ? *Pooled : E.second;
          if (T.payloadEquals(E.first, P))
            continue; // unchanged: nothing to journal
          T.append(E.first, P,
                   P.empty() ? 0
                             : static_cast<uint8_t>(
                                   static_cast<unsigned char>(P[0])));
          ++Appended;
        }
        return true;
      },
      Err);
  if (!Ok)
    return std::nullopt;
  return Appended;
}

void SummaryCache::insertGen(const SummaryKey &K, const ConstraintSet &C,
                             const Hash128 &SetHash,
                             const std::vector<TypeVariable> &Interesting,
                             const std::vector<TypeVariable> &Callsites,
                             const SymbolTable &Syms, const Lattice &Lat) {
  std::string Payload;
  {
    ScopedPhaseTimer Timer("cache.encode");
    Payload = encodeGenResult(C, SetHash, Interesting, Callsites, Syms, Lat);
  }
  insertPayload(K, std::move(Payload));
}

void SummaryCache::insertSolution(
    const SummaryKey &K,
    const std::vector<std::pair<TypeVariable, const Sketch *>> &Entries,
    const SymbolTable &Syms, const Lattice &Lat, BackendKind Backend) {
  std::string Payload;
  {
    ScopedPhaseTimer Timer("cache.encode");
    Payload = encodeSketchBundle(Entries, Syms, Lat, Backend);
  }
  insertPayload(K, std::move(Payload));
}

void SummaryCache::insert(const SummaryKey &K, const TypeScheme &Scheme,
                          const SymbolTable &Syms, const Lattice &Lat,
                          BackendKind Backend) {
  std::string Payload;
  {
    ScopedPhaseTimer Timer("cache.encode");
    Payload = encodeScheme(Scheme, Syms, Lat, Backend);
  }
  insertPayload(K, std::move(Payload));
}

std::optional<std::string> SummaryCache::lookupPayload(const SummaryKey &K) const {
  Shard &Sh = shard(K);
  std::shared_lock<std::shared_mutex> Lock(Sh.M);
  auto It = Sh.Entries.find(K);
  if (It == Sh.Entries.end())
    return std::nullopt;
  return It->second;
}

void SummaryCache::insertPayload(const SummaryKey &K, std::string Payload) {
  Shard &Sh = shard(K);
  std::unique_lock<std::shared_mutex> Lock(Sh.M);
  // Replacement matters for self-healing: a corrupt entry that failed to
  // decode gets overwritten by the freshly recomputed scheme. Concurrent
  // duplicate inserts are benign because entries for one key are always
  // identical by construction.
  Sh.Entries.insert_or_assign(K, std::move(Payload));
}

size_t SummaryCache::size() const {
  size_t N = 0;
  for (const Shard &Sh : Shards) {
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    N += Sh.Entries.size();
  }
  return N;
}

void SummaryCache::clear() {
  for (Shard &Sh : Shards) {
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    Sh.Entries.clear();
  }
}

size_t SummaryCache::payloadBytes() const {
  size_t Bytes = 0;
  for (const Shard &Sh : Shards) {
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    for (const auto &E : Sh.Entries)
      Bytes += E.second.size();
  }
  return Bytes;
}

size_t SummaryCache::pruneToBytes(size_t MaxBytes) {
  // Hold every shard exclusively (fixed order — the same order save() and
  // the copy paths use) so the victim choice sees one consistent snapshot.
  std::array<std::unique_lock<std::shared_mutex>, kNumShards> Locks;
  for (unsigned I = 0; I < kNumShards; ++I)
    Locks[I] = std::unique_lock<std::shared_mutex>(Shards[I].M);
  size_t Total = 0;
  std::vector<const std::pair<const SummaryKey, std::string> *> Sorted;
  for (Shard &Sh : Shards)
    for (const auto &E : Sh.Entries) {
      Total += E.second.size();
      Sorted.push_back(&E);
    }
  if (Total <= MaxBytes)
    return 0;
  // Deterministic victim order: largest payloads first, key order on ties.
  std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
    if (A->second.size() != B->second.size())
      return A->second.size() > B->second.size();
    return std::make_pair(A->first.Hi, A->first.Lo) <
           std::make_pair(B->first.Hi, B->first.Lo);
  });
  size_t Dropped = 0;
  for (const auto *E : Sorted) {
    if (Total <= MaxBytes)
      break;
    Total -= E->second.size();
    const SummaryKey K = E->first; // copy: E points into the erased node
    Shards[shardOf(K)].Entries.erase(K);
    ++Dropped;
  }
  return Dropped;
}

namespace {

/// Parses the version header line. Accepts only the current layout:
///   retypd-summary-cache v<FileVersion> schema <SchemaVersion>
bool parseHeader(const std::string &Line, unsigned &FileVersion,
                 unsigned &SchemaVersion) {
  unsigned V = 0, S = 0;
  if (std::sscanf(Line.c_str(), "retypd-summary-cache v%u schema %u", &V,
                  &S) != 2)
    return false;
  FileVersion = V;
  SchemaVersion = S;
  return true;
}

bool fileVersionIsNewer(unsigned FileVersion, unsigned SchemaVersion) {
  return FileVersion > kSummaryCacheFileVersion ||
         (FileVersion == kSummaryCacheFileVersion &&
          SchemaVersion > kSummaryCacheSchemaVersion);
}

std::string versionMismatchError(unsigned FileVersion,
                                 unsigned SchemaVersion) {
  std::string Versions = "(v" + std::to_string(FileVersion) + " schema " +
                         std::to_string(SchemaVersion) + "; this binary: v" +
                         std::to_string(kSummaryCacheFileVersion) +
                         " schema " +
                         std::to_string(kSummaryCacheSchemaVersion) + ")";
  // Direction matters: an OLDER file is stale and safe to regenerate; a
  // NEWER file was written by a newer binary, and "regenerate" would
  // destroy its valid contents.
  if (fileVersionIsNewer(FileVersion, SchemaVersion))
    return "cache file is newer than this binary " + Versions +
           " — upgrade the binary or point it at a different cache file";
  return "stale cache file " + Versions +
         " — re-run analyze to regenerate it";
}

} // namespace

// File format (version kSummaryCacheFileVersion):
//   retypd-summary-cache v3 schema 2
//   entry <hex key> <byte count>\n
//   <binary payload bytes>\n
//   ... repeated ...
// Older headers (v1's unversioned "retypd-summary-cache-v1", v2's textual
// schemes) are rejected wholesale: a stale cache is a cold cache.
bool SummaryCache::load(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  // File size bounds every entry's claimed byte count: the count is
  // untrusted input, and allocating a string from a corrupt multi-GB (or
  // 2^64-1) value would abort the process instead of treating the entry
  // as a malformed tail.
  In.seekg(0, std::ios::end);
  const std::streamoff End = In.tellg();
  In.seekg(0, std::ios::beg);
  std::string Line;
  unsigned FileVersion = 0, SchemaVersion = 0;
  if (!std::getline(In, Line) ||
      !parseHeader(Line, FileVersion, SchemaVersion) ||
      FileVersion != kSummaryCacheFileVersion ||
      SchemaVersion != kSummaryCacheSchemaVersion)
    return false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    unsigned long long Hi = 0, Lo = 0, Bytes = 0;
    if (std::sscanf(Line.c_str(), "entry %16llx%16llx %llu", &Hi, &Lo,
                    &Bytes) != 3)
      return true; // ignore malformed tail
    std::streamoff Pos = In.tellg();
    if (Pos < 0 ||
        Bytes > static_cast<unsigned long long>(End - Pos))
      return true; // claimed payload exceeds the file: malformed tail
    std::string Payload(Bytes, '\0');
    In.read(Payload.data(), static_cast<std::streamsize>(Bytes));
    if (static_cast<unsigned long long>(In.gcount()) != Bytes)
      return true;
    In.get(); // trailing newline
    SummaryKey K{Hi, Lo};
    Shard &Sh = shard(K);
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    Sh.Entries.try_emplace(K, std::move(Payload));
  }
  return true;
}

bool SummaryCache::save(const std::string &Path) const {
  // Unique staging name per save: concurrent saves to one shared cache
  // file — from other processes or other threads of this one — must not
  // interleave writes into the same tmp file (each rename below stays
  // atomic; last writer wins wholesale).
  static std::atomic<uint64_t> SaveSeq{0};
  std::string Tmp = Path + ".tmp." +
                    std::to_string(static_cast<long>(::getpid())) + "." +
                    std::to_string(SaveSeq.fetch_add(1));
  bool Written = false;
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    OutF << "retypd-summary-cache v" << kSummaryCacheFileVersion << " schema "
         << kSummaryCacheSchemaVersion << '\n';
    // One consistent snapshot across shards (shared locks, fixed order).
    std::array<std::shared_lock<std::shared_mutex>, kNumShards> Locks;
    for (unsigned I = 0; I < kNumShards; ++I)
      Locks[I] = std::shared_lock<std::shared_mutex>(Shards[I].M);
    // Deterministic file contents: sort by key across all shards.
    std::vector<const std::pair<const SummaryKey, std::string> *> Sorted;
    for (const Shard &Sh : Shards)
      for (const auto &E : Sh.Entries)
        Sorted.push_back(&E);
    std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
      return std::make_pair(A->first.Hi, A->first.Lo) <
             std::make_pair(B->first.Hi, B->first.Lo);
    });
    for (const auto *E : Sorted) {
      OutF << "entry " << E->first.hex() << ' ' << E->second.size() << '\n';
      OutF.write(E->second.data(),
                 static_cast<std::streamsize>(E->second.size()));
      OutF << '\n';
    }
    Written = static_cast<bool>(OutF);
  }
  // Never abandon the uniquely-named staging file: failed saves would
  // otherwise accumulate one orphan per attempt next to the cache.
  if (!Written || std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

CacheFileInfo SummaryCache::inspectFile(const std::string &Path) {
  CacheFileInfo Info;
  Info.ShardEntryCounts.assign(kNumShards, 0);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Info.Error = "cannot open file";
    return Info;
  }
  std::string Line;
  if (!std::getline(In, Line)) {
    Info.Error = "empty file";
    return Info;
  }
  if (!parseHeader(Line, Info.FileVersion, Info.SchemaVersion)) {
    // The pre-versioning v1 layout ("retypd-summary-cache-v1") is still a
    // cache file — tell the user how to move on, not just that the header
    // is odd.
    if (Line.rfind("retypd-summary-cache", 0) == 0) {
      Info.Stale = true;
      Info.FileVersion = 1;
      Info.SchemaVersion = 1;
      Info.Error = versionMismatchError(1, 1);
    } else {
      Info.Error = "unrecognized header: " + Line;
    }
    return Info;
  }
  if (Info.FileVersion != kSummaryCacheFileVersion ||
      Info.SchemaVersion != kSummaryCacheSchemaVersion) {
    if (fileVersionIsNewer(Info.FileVersion, Info.SchemaVersion))
      Info.Newer = true;
    else
      Info.Stale = true;
    Info.Error = versionMismatchError(Info.FileVersion, Info.SchemaVersion);
    return Info;
  }
  // Bound payload skips by the real file size: seekg past EOF does not
  // fail until the next read, which would count a truncated final entry
  // as present (and disagree with what load() accepts). Measure on the
  // one open stream — a reopen could race with unlink/chmod and return
  // -1, silently neutralizing the bound.
  const std::streamoff HeaderEnd = In.tellg();
  In.seekg(0, std::ios::end);
  const std::streamoff End = In.tellg();
  In.seekg(HeaderEnd, std::ios::beg);
  if (HeaderEnd < 0 || End < 0) {
    Info.Error = "cannot determine file size";
    return Info;
  }
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    unsigned long long Hi = 0, Lo = 0, Bytes = 0;
    if (std::sscanf(Line.c_str(), "entry %16llx%16llx %llu", &Hi, &Lo,
                    &Bytes) != 3)
      break; // malformed tail: count what parsed
    std::streamoff Pos = In.tellg();
    // Compare in the unsigned domain: a corrupt 2^63+ byte count would
    // cast to a negative streamoff and slip past a signed comparison.
    if (Pos < 0 || Bytes > static_cast<unsigned long long>(End - Pos))
      break; // truncated payload: load() rejects it too
    In.seekg(static_cast<std::streamoff>(Bytes + 1), std::ios::cur);
    ++Info.EntryCount;
    ++Info.ShardEntryCounts[shardOf(SummaryKey{Hi, Lo})];
    Info.PayloadBytes += Bytes;
  }
  Info.Ok = true;
  return Info;
}
