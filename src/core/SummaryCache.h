//===- SummaryCache.h - Content-addressed type-scheme cache ---*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache of simplified type schemes. Simplification
/// (graph construction + saturation + trimming) dominates pipeline cost
/// and is a pure function of
///
///   (canonical constraint text, procedure name, interesting-variable
///    names, simplification options),
///
/// so its result can be keyed by a 128-bit hash of that tuple. Repeated
/// runs over the same binary, identical SCCs across binaries of one
/// cluster (Figure 10's shared statically-linked utility code), and shared
/// library SCCs all collapse into cache hits that skip saturation
/// entirely.
///
/// Entries store the scheme *serialized as text*, not as interned ids:
/// symbol ids are meaningless across symbol tables and across processes,
/// while the text round-trips losslessly through ConstraintParser (schemes
/// are canonicalized before storage, and a parse of canonical text
/// reproduces exactly the canonical set, order included). That makes the
/// cache safe to persist with save() and reload with load() — the
/// `--summary-cache PATH` flag of retypd-cli.
///
/// Thread safe: worker threads of the parallel pipeline probe and insert
/// concurrently under one mutex (entries are small strings; contention is
/// negligible next to saturation).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_SUMMARYCACHE_H
#define RETYPD_CORE_SUMMARYCACHE_H

#include "core/ConstraintSet.h"
#include "core/Simplifier.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace retypd {

/// Cache-file format versioning. `kSummaryCacheFileVersion` covers the
/// container layout (header + entry framing); `kSummaryCacheSchemaVersion`
/// covers the serialized-scheme payload format. Bump either and every
/// older cache file is invalidated *cleanly at load time* — one header
/// check instead of per-entry parse failures silently degrading hit rates.
inline constexpr unsigned kSummaryCacheFileVersion = 2;
inline constexpr unsigned kSummaryCacheSchemaVersion = 1;

/// What SummaryCache::inspectFile learned about a cache file on disk.
struct CacheFileInfo {
  bool Ok = false;          ///< header valid and version/schema current
  std::string Error;        ///< why not, when !Ok
  unsigned FileVersion = 0; ///< parsed container version (0 = unreadable)
  unsigned SchemaVersion = 0;
  size_t EntryCount = 0;    ///< entries seen (header-compatible files only)
  size_t PayloadBytes = 0;  ///< serialized scheme bytes across entries
};

/// 128-bit content hash identifying one simplification problem.
struct SummaryKey {
  uint64_t Hi = 0, Lo = 0;

  friend bool operator==(const SummaryKey &A, const SummaryKey &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }

  std::string hex() const;
};

struct SummaryKeyHash {
  size_t operator()(const SummaryKey &K) const noexcept {
    return static_cast<size_t>(K.Hi ^ (K.Lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Content-addressed, optionally persistent scheme cache.
class SummaryCache {
public:
  /// Computes the content key for simplifying \p C into a scheme for
  /// \p ProcVar with \p Interesting preserved. Hashing renders the set
  /// canonically, so two structurally identical problems key identically
  /// regardless of symbol ids or constraint insertion order.
  static SummaryKey keyFor(const ConstraintSet &C, TypeVariable ProcVar,
                           const std::vector<std::string> &InterestingNames,
                           const SimplifyOptions &Opts,
                           const SymbolTable &Syms, const Lattice &Lat);

  /// Same, over a pre-rendered canonical constraint text (C.str). The
  /// pipeline renders each SCC's combined set once and keys every member
  /// against it — rendering is the expensive part of key computation.
  static SummaryKey keyFor(std::string_view CanonicalText,
                           std::string_view ProcName,
                           const std::vector<std::string> &InterestingNames,
                           const SimplifyOptions &Opts);

  /// Serializes a (canonicalized) scheme to the textual entry format.
  static std::string serialize(const TypeScheme &Scheme,
                               const SymbolTable &Syms, const Lattice &Lat);

  /// Parses an entry back into a scheme against \p Syms. Returns nullopt
  /// on malformed input.
  static std::optional<TypeScheme> deserialize(const std::string &Text,
                                               SymbolTable &Syms,
                                               const Lattice &Lat);

  /// Returns the serialized scheme for \p K, if cached.
  std::optional<std::string> lookup(const SummaryKey &K) const;

  /// Inserts or replaces. Replacement matters for self-healing: a corrupt
  /// entry that failed to deserialize gets overwritten by the freshly
  /// recomputed scheme. Concurrent duplicate inserts are benign because
  /// entries for one key are always identical by construction.
  void insert(const SummaryKey &K, std::string Serialized);

  /// Records that the entry for \p K failed to deserialize: drops it and
  /// reclassifies the lookup that returned it as a miss, so hit counters
  /// never overstate cache effectiveness.
  void noteCorrupt(const SummaryKey &K);

  size_t size() const;
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

  /// Drops every entry (tests use this to model invalidation).
  void clear();

  /// Total serialized-scheme bytes across all entries.
  size_t payloadBytes() const;

  /// Drops entries, largest first (key order on ties), until the payload
  /// total fits \p MaxBytes. Returns the number of entries dropped.
  size_t pruneToBytes(size_t MaxBytes);

  /// Loads entries from a cache file; merges into the current contents.
  /// Returns false (leaving the cache unchanged) on unreadable files and
  /// on files whose header version or schema version is stale — a stale
  /// cache is simply a cold cache; malformed trailing entries are ignored.
  bool load(const std::string &Path);

  /// Writes every entry to \p Path (atomically via rename), with the
  /// current version header.
  bool save(const std::string &Path) const;

  /// Reads a cache file's header (and, when current, tallies its entries)
  /// without touching any in-memory cache.
  static CacheFileInfo inspectFile(const std::string &Path);

private:
  mutable std::mutex Mutex;
  std::unordered_map<SummaryKey, std::string, SummaryKeyHash> Entries;
  mutable std::atomic<uint64_t> Hits{0}, Misses{0};
};

} // namespace retypd

#endif // RETYPD_CORE_SUMMARYCACHE_H
