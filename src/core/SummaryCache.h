//===- SummaryCache.h - Content-addressed type-scheme cache ---*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache of simplified type schemes. Simplification
/// (graph construction + saturation + trimming) dominates pipeline cost
/// and is a pure function of
///
///   (constraint-set structure, procedure name, interesting-variable
///    names, simplification options),
///
/// so its result can be keyed by a 128-bit structural hash of that tuple
/// (core/SchemeCodec.h): the hash streams names and packed labels in
/// canonical order, never rendering the set to text. Repeated runs over
/// the same binary, identical SCCs across binaries of one cluster
/// (Figure 10's shared statically-linked utility code), and shared
/// library SCCs all collapse into cache hits that skip saturation
/// entirely.
///
/// Entries store the scheme in the *binary payload format* of
/// core/SchemeCodec.h, not as interned ids and not as text: symbol ids are
/// meaningless across symbol tables and across processes, while a payload
/// carries its own name table and decodes with a single linear pass that
/// interns each name once — no ConstraintParser on the warm path.
/// lookup() hands back a decoded TypeScheme value. Payloads round-trip
/// losslessly (schemes are canonicalized before storage and decode
/// reproduces the canonical set exactly, order included), so the cache is
/// safe to persist with save() and reload with load() — the
/// `--summary-cache PATH` flag of retypd-cli.
///
/// Thread safe and SHARDED: entries are distributed over 16 shards by key
/// hash, each guarded by its own shared_mutex. Worker threads of the
/// parallel pipeline probe under shared (read) locks — the warm path takes
/// no exclusive lock at all — and inserts touch only the owning shard.
///
/// Durability comes in two shapes. The legacy load()/save() round-trips
/// the whole cache through one v3 file (now the import/export path), while
/// openStore()/flushToStore() attach a multi-process artifact store
/// (store/Store.h): probes that miss the in-memory map decode zero-copy
/// out of the store's memory-mapped journal segments, and appends are
/// incremental under an advisory file lock. The store is opened with a
/// structural validator, so every record is checked ONCE at segment scan
/// and probes run the codec's trusted decoders straight off the mapping.
/// Store payloads carry names as ids into the store's name pool; the
/// cache batch-interns the pool once per (store pool epoch, symbol
/// table) into a translation table (PoolBindingView), so a warm probe
/// performs zero per-payload string hashing
/// (EventCounters::PoolBinds/PoolBindHits).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_SUMMARYCACHE_H
#define RETYPD_CORE_SUMMARYCACHE_H

#include "core/ConstraintSet.h"
#include "core/SchemeCodec.h"
#include "core/Simplifier.h"
#include "store/Store.h"
#include "support/Hash128.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace retypd {

/// Cache-file format versioning. `kSummaryCacheFileVersion` covers the
/// container layout (header + entry framing); `kSummaryCacheSchemaVersion`
/// covers the serialized-scheme payload format and tracks
/// kSchemePayloadVersion. Bump either and every older cache file is
/// invalidated *cleanly at load time* — one header check instead of
/// per-entry decode failures silently degrading hit rates. Version
/// history: v1 text entries (unversioned header), v2 text entries
/// (versioned header), v3 binary payloads + structural-hash keys.
inline constexpr unsigned kSummaryCacheFileVersion = 3;
inline constexpr unsigned kSummaryCacheSchemaVersion = kSchemePayloadVersion;

/// What SummaryCache::inspectFile learned about a cache file on disk.
struct CacheFileInfo {
  bool Ok = false;          ///< header valid and version/schema current
  std::string Error;        ///< why not, when !Ok
  bool Stale = false;       ///< header parsed; file format OLDER than binary
                            ///< (safe to regenerate)
  bool Newer = false;       ///< header parsed; file written by a NEWER
                            ///< binary (do NOT regenerate)
  unsigned FileVersion = 0; ///< parsed container version (0 = unreadable)
  unsigned SchemaVersion = 0;
  size_t EntryCount = 0;    ///< entries seen (header-compatible files only)
  size_t PayloadBytes = 0;  ///< serialized scheme bytes across entries
  /// Entries per in-memory shard (keys map to the same shard in every
  /// process — the shard index derives from the key itself).
  std::vector<size_t> ShardEntryCounts;
};

/// 128-bit content hash identifying one cached problem (a simplification
/// or a solve). Exactly a Hash128 value — aliased rather than wrapped so
/// key plumbing and structural hashing share one type.
using SummaryKey = Hash128;
using SummaryKeyHash = Hash128Hasher;

/// Content-addressed, optionally persistent scheme cache.
class SummaryCache {
public:
  /// Number of independently locked shards.
  static constexpr unsigned kNumShards = 16;

  /// Which shard a key lives in (stable across processes: derived from the
  /// key's content hash only).
  static unsigned shardOf(const SummaryKey &K) {
    return static_cast<unsigned>(K.Lo & (kNumShards - 1));
  }

  /// Computes the content key for simplifying \p C into a scheme for
  /// \p ProcVar with \p Interesting preserved. Hashing walks the set's
  /// canonical structural view, so two structurally identical problems key
  /// identically regardless of symbol ids or constraint insertion order —
  /// and no canonical text is ever materialized. \p Backend participates
  /// in the key (the default retypd backend hashes the exact historical
  /// byte stream, so existing stores stay warm), so artifacts produced by
  /// different solver backends never collide.
  static SummaryKey keyFor(const ConstraintSet &C, TypeVariable ProcVar,
                           const std::vector<std::string> &InterestingNames,
                           const SimplifyOptions &Opts,
                           const SymbolTable &Syms, const Lattice &Lat,
                           BackendKind Backend = BackendKind::Retypd);

  /// Same, over a precomputed structural hash of the (already canonical)
  /// constraint set. The pipeline hashes each SCC's combined set once and
  /// keys every member against it.
  static SummaryKey keyFor(const Hash128 &SetHash, std::string_view ProcName,
                           const std::vector<std::string> &InterestingNames,
                           const SimplifyOptions &Opts,
                           BackendKind Backend = BackendKind::Retypd);

  /// Computes the content key for SOLVING an (already canonical) constraint
  /// set for the given wanted-variable names (Algorithm F.2's per-SCC raw
  /// solution — a pure function of exactly these inputs). Domain-separated
  /// from scheme keys, so the two entry kinds can share one cache file.
  /// Backend-separated like keyFor.
  static SummaryKey solveKeyFor(const Hash128 &SetHash,
                                const std::vector<std::string> &WantedNames,
                                BackendKind Backend = BackendKind::Retypd);

  /// Returns the decoded scheme for \p K, if cached. Decoding interns the
  /// payload's names into \p Syms; a payload that fails to decode is NOT
  /// reported here — callers never see it — the entry is dropped and the
  /// probe counted as a miss (self-healing, hit counters stay honest).
  std::optional<TypeScheme> lookup(const SummaryKey &K, SymbolTable &Syms,
                                   const Lattice &Lat) const;

  /// Encodes and inserts (or replaces) the scheme for \p K. \p Backend
  /// stamps the payload tag (and must match the backend folded into the
  /// key).
  void insert(const SummaryKey &K, const TypeScheme &Scheme,
              const SymbolTable &Syms, const Lattice &Lat,
              BackendKind Backend = BackendKind::Retypd);

  /// Returns the decoded sketch bindings for a solve key, if cached. Same
  /// self-healing/miss-accounting contract as lookup().
  std::optional<std::vector<SketchBinding>>
  lookupSolution(const SummaryKey &K, SymbolTable &Syms,
                 const Lattice &Lat) const;

  /// Returns the decoded generation result for a gen key (the content key
  /// the session combines from ConstraintGenerator::genKey values —
  /// already domain-separated from scheme and solve keys), if cached. Same
  /// self-healing contract as lookup(); additionally bumps
  /// EventCounters::GenCacheHits/Misses so benchmarks can report
  /// generation reuse separately.
  std::optional<DecodedGenResult> lookupGen(const SummaryKey &K,
                                            SymbolTable &Syms,
                                            const Lattice &Lat) const;

  /// Decodes only the meta prefix of a cached generation result — set
  /// hash, interesting/callsite variables, constraint count — WITHOUT
  /// materializing the constraint set. The fully warm path probes this;
  /// it only falls back to lookupGen for SCCs whose downstream scheme or
  /// solution probe misses. Bumps the same GenCacheHits/Misses counters
  /// as lookupGen (one SCC probes exactly one of the two).
  std::optional<GenResultMeta> lookupGenMeta(const SummaryKey &K,
                                             SymbolTable &Syms,
                                             const Lattice &Lat) const;

  /// Materializes the full generation result for a key whose META probe
  /// already hit — the residual decode the warm path defers until a
  /// downstream scheme or solution probe actually misses. Counter-SILENT
  /// (no GenCacheHits/Misses, no Hits/Misses): the logical probe was
  /// already counted by lookupGenMeta, and this is its second half, not a
  /// new probe. Can still return nullopt — the entry may have been
  /// evicted or pruned since the meta probe — in which case the caller
  /// regenerates.
  std::optional<DecodedGenResult> materializeGen(const SummaryKey &K,
                                                 SymbolTable &Syms,
                                                 const Lattice &Lat) const;

  /// Encodes and inserts (or replaces) a generation result for \p K.
  /// \p C must already be canonical and \p SetHash its canonicalSetHash
  /// (both replay verbatim on lookup).
  void insertGen(const SummaryKey &K, const ConstraintSet &C,
                 const Hash128 &SetHash,
                 const std::vector<TypeVariable> &Interesting,
                 const std::vector<TypeVariable> &Callsites,
                 const SymbolTable &Syms, const Lattice &Lat);

  /// Encodes and inserts (or replaces) a solver solution for \p K.
  void insertSolution(
      const SummaryKey &K,
      const std::vector<std::pair<TypeVariable, const Sketch *>> &Entries,
      const SymbolTable &Syms, const Lattice &Lat,
      BackendKind Backend = BackendKind::Retypd);

  // --- Durable artifact store (store/Store.h) ---------------------------
  /// Opens (creating if needed; reinitializing if stale — a stale store
  /// is a cold store) the artifact store in \p Dir and attaches it
  /// behind this cache: probes that miss the in-memory map fall through
  /// to the store and decode ZERO-COPY straight out of its memory-mapped
  /// segments (EventCounters::StoreHits / StorePayloadCopies), and
  /// flushToStore() appends this cache's new entries under the store's
  /// advisory file lock. Returns false with \p Err on foreign, newer, or
  /// unwritable directories.
  bool openStore(const std::string &Dir, std::string *Err = nullptr);

  /// Attaches an externally opened store (test seam for custom
  /// StoreOptions). Drops the pool translation table: its epochs are
  /// store-relative.
  void attachStore(std::unique_ptr<Store> S);

  /// The attached store, or nullptr.
  Store *store() { return Backing.get(); }
  const Store *store() const { return Backing.get(); }

  /// Appends every in-memory entry whose bytes are not already the
  /// store's live value for its key (last writer wins per key), then
  /// durably flushes the journal. Entries are transcoded to pool name
  /// mode under the store's flush lock (pool id assignment is race-free
  /// across processes), and the pool additions become durable before any
  /// record referencing them. Returns the number of records appended —
  /// 0 is a successful no-op — or nullopt on I/O failure.
  std::optional<size_t> flushToStore(std::string *Err = nullptr);

  /// Raw-payload probe of the IN-MEMORY map only, no decoding and no
  /// store fall-through. Test/inspection seam.
  std::optional<std::string> lookupPayload(const SummaryKey &K) const;

  /// Inserts a raw payload without validation. Test seam for corruption
  /// coverage; insert() is the production path.
  void insertPayload(const SummaryKey &K, std::string Payload);

  size_t size() const;
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

  /// Drops every entry (tests use this to model invalidation).
  void clear();

  /// Total serialized-scheme bytes across all entries.
  size_t payloadBytes() const;

  /// Drops entries, largest first (key order on ties), until the payload
  /// total fits \p MaxBytes. Returns the number of entries dropped.
  size_t pruneToBytes(size_t MaxBytes);

  /// Loads entries from a cache file; merges into the current contents.
  /// Returns false (leaving the cache unchanged) on unreadable files and
  /// on files whose header version or schema version is stale — a stale
  /// cache is simply a cold cache; malformed trailing entries are ignored.
  bool load(const std::string &Path);

  /// Writes every entry to \p Path (atomically via rename), with the
  /// current version header.
  bool save(const std::string &Path) const;

  /// Reads a cache file's header (and, when current, tallies its entries)
  /// without touching any in-memory cache. Stale-but-recognized versions
  /// set Stale and an Error telling the user to re-run analyze.
  static CacheFileInfo inspectFile(const std::string &Path);

private:
  struct Shard {
    mutable std::shared_mutex M;
    std::unordered_map<SummaryKey, std::string, SummaryKeyHash> Entries;
  };

  Shard &shard(const SummaryKey &K) const { return Shards[shardOf(K)]; }

  /// The pool -> interned translation table: PoolBindingView arrays plus
  /// the guards that scope their validity. Immutable once published
  /// (extending builds a successor and swaps the shared_ptr), so probes
  /// decode through a grabbed snapshot with no lock held.
  struct PoolBinding {
    uint64_t Epoch = 0;        ///< Store::poolEpoch at build
    uint64_t SymsUid = 0;      ///< decoded ids belong to this table
    const Lattice *Lat = nullptr;
    std::vector<uint32_t> SymIds;
    std::vector<uint32_t> LatElems; ///< elem + 1; 0 = not a lattice name
  };

  /// Returns a binding current for (store pool, \p Syms, \p Lat),
  /// batch-interning any pool names added since the last build
  /// (EventCounters::PoolBinds per name). Never called while a store
  /// PayloadRef is alive — the build takes the store's shared lock.
  std::shared_ptr<const PoolBinding> poolBindingFor(SymbolTable &Syms,
                                                    const Lattice &Lat) const;

  /// The shared probe shape: the in-memory map (decoding in place under
  /// the shard's shared lock, validating decoders), then the attached
  /// store (trusted decoders zero-copy out of the mapped segment, with
  /// the pool translation table resolving pool-mode names).
  /// \p Count=false skips the Hits/Misses bump (materializeGen's second
  /// half of an already-counted probe).
  template <typename DecodeFn, typename TrustedFn>
  auto probeImpl(const SummaryKey &K, SymbolTable &Syms, const Lattice &Lat,
                 DecodeFn Decode, TrustedFn DecodeTrusted,
                 bool Count = true) const
      -> decltype(Decode(std::string_view()));

  mutable std::array<Shard, kNumShards> Shards;
  mutable std::atomic<uint64_t> Hits{0}, Misses{0};
  std::unique_ptr<Store> Backing;
  mutable std::mutex BindingM; ///< guards the Binding pointer swap
  mutable std::shared_ptr<const PoolBinding> Binding;
};

} // namespace retypd

#endif // RETYPD_CORE_SUMMARYCACHE_H
