//===- SummaryCache.h - Content-addressed type-scheme cache ---*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache of simplified type schemes. Simplification
/// (graph construction + saturation + trimming) dominates pipeline cost
/// and is a pure function of
///
///   (canonical constraint text, procedure name, interesting-variable
///    names, simplification options),
///
/// so its result can be keyed by a 128-bit hash of that tuple. Repeated
/// runs over the same binary, identical SCCs across binaries of one
/// cluster (Figure 10's shared statically-linked utility code), and shared
/// library SCCs all collapse into cache hits that skip saturation
/// entirely.
///
/// Entries store the scheme *serialized as text*, not as interned ids:
/// symbol ids are meaningless across symbol tables and across processes,
/// while the text round-trips losslessly through ConstraintParser (schemes
/// are canonicalized before storage, and a parse of canonical text
/// reproduces exactly the canonical set, order included). That makes the
/// cache safe to persist with save() and reload with load() — the
/// `--summary-cache PATH` flag of retypd-cli.
///
/// Thread safe: worker threads of the parallel pipeline probe and insert
/// concurrently under one mutex (entries are small strings; contention is
/// negligible next to saturation).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_SUMMARYCACHE_H
#define RETYPD_CORE_SUMMARYCACHE_H

#include "core/ConstraintSet.h"
#include "core/Simplifier.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace retypd {

/// 128-bit content hash identifying one simplification problem.
struct SummaryKey {
  uint64_t Hi = 0, Lo = 0;

  friend bool operator==(const SummaryKey &A, const SummaryKey &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }

  std::string hex() const;
};

struct SummaryKeyHash {
  size_t operator()(const SummaryKey &K) const noexcept {
    return static_cast<size_t>(K.Hi ^ (K.Lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Content-addressed, optionally persistent scheme cache.
class SummaryCache {
public:
  /// Computes the content key for simplifying \p C into a scheme for
  /// \p ProcVar with \p Interesting preserved. Hashing renders the set
  /// canonically, so two structurally identical problems key identically
  /// regardless of symbol ids or constraint insertion order.
  static SummaryKey keyFor(const ConstraintSet &C, TypeVariable ProcVar,
                           const std::vector<std::string> &InterestingNames,
                           const SimplifyOptions &Opts,
                           const SymbolTable &Syms, const Lattice &Lat);

  /// Same, over a pre-rendered canonical constraint text (C.str). The
  /// pipeline renders each SCC's combined set once and keys every member
  /// against it — rendering is the expensive part of key computation.
  static SummaryKey keyFor(std::string_view CanonicalText,
                           std::string_view ProcName,
                           const std::vector<std::string> &InterestingNames,
                           const SimplifyOptions &Opts);

  /// Serializes a (canonicalized) scheme to the textual entry format.
  static std::string serialize(const TypeScheme &Scheme,
                               const SymbolTable &Syms, const Lattice &Lat);

  /// Parses an entry back into a scheme against \p Syms. Returns nullopt
  /// on malformed input.
  static std::optional<TypeScheme> deserialize(const std::string &Text,
                                               SymbolTable &Syms,
                                               const Lattice &Lat);

  /// Returns the serialized scheme for \p K, if cached.
  std::optional<std::string> lookup(const SummaryKey &K) const;

  /// Inserts or replaces. Replacement matters for self-healing: a corrupt
  /// entry that failed to deserialize gets overwritten by the freshly
  /// recomputed scheme. Concurrent duplicate inserts are benign because
  /// entries for one key are always identical by construction.
  void insert(const SummaryKey &K, std::string Serialized);

  /// Records that the entry for \p K failed to deserialize: drops it and
  /// reclassifies the lookup that returned it as a miss, so hit counters
  /// never overstate cache effectiveness.
  void noteCorrupt(const SummaryKey &K);

  size_t size() const;
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

  /// Drops every entry (tests use this to model invalidation).
  void clear();

  /// Loads entries from a cache file; merges into the current contents.
  /// Returns false (leaving the cache unchanged) on unreadable files;
  /// malformed trailing entries are ignored.
  bool load(const std::string &Path);

  /// Writes every entry to \p Path (atomically via rename).
  bool save(const std::string &Path) const;

private:
  mutable std::mutex Mutex;
  std::unordered_map<SummaryKey, std::string, SummaryKeyHash> Entries;
  mutable std::atomic<uint64_t> Hits{0}, Misses{0};
};

} // namespace retypd

#endif // RETYPD_CORE_SUMMARYCACHE_H
