//===- TypeVariable.h - Base type variables and constants -----*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A base type variable is either an interned symbol (program-derived
/// variable such as `eax@0x8048420` or `close_last`) or a *type constant*:
/// a symbolic reference to an element of the lattice Λ (paper §3.1, "within
/// V we assume there is a distinguished set of type constants").
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_TYPEVARIABLE_H
#define RETYPD_CORE_TYPEVARIABLE_H

#include "lattice/Lattice.h"
#include "support/SymbolTable.h"

#include <cassert>
#include <cstdint>
#include <functional>

namespace retypd {

/// A base type variable: either an interned name or a lattice constant.
class TypeVariable {
public:
  TypeVariable() : Raw(Invalid) {}

  static TypeVariable var(SymbolId Id) {
    assert(Id < ConstantBit && "symbol id too large");
    return TypeVariable(Id);
  }

  static TypeVariable constant(LatticeElem E) {
    assert(E < ConstantBit && "lattice element too large");
    return TypeVariable(E | ConstantBit);
  }

  bool isValid() const { return Raw != Invalid; }
  bool isConstant() const { return isValid() && (Raw & ConstantBit) != 0; }
  bool isVar() const { return isValid() && (Raw & ConstantBit) == 0; }

  SymbolId symbol() const {
    assert(isVar() && "not a program variable");
    return Raw;
  }

  LatticeElem latticeElem() const {
    assert(isConstant() && "not a type constant");
    return Raw & ~ConstantBit;
  }

  friend bool operator==(TypeVariable A, TypeVariable B) {
    return A.Raw == B.Raw;
  }
  friend bool operator!=(TypeVariable A, TypeVariable B) {
    return A.Raw != B.Raw;
  }
  friend bool operator<(TypeVariable A, TypeVariable B) {
    return A.Raw < B.Raw;
  }

  uint32_t raw() const { return Raw; }

  /// Rebuilds a variable from raw() — for interner round-trips only.
  static TypeVariable fromRaw(uint32_t R) { return TypeVariable(R); }

private:
  explicit TypeVariable(uint32_t R) : Raw(R) {}

  static constexpr uint32_t ConstantBit = 0x80000000u;
  static constexpr uint32_t Invalid = 0x7fffffffu;

  uint32_t Raw;
};

} // namespace retypd

template <> struct std::hash<retypd::TypeVariable> {
  size_t operator()(retypd::TypeVariable V) const noexcept {
    return std::hash<uint32_t>()(V.raw());
  }
};

#endif // RETYPD_CORE_TYPEVARIABLE_H
