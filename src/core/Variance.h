//===- Variance.h - The sign monoid {⊕,⊖} ---------------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-element sign monoid of paper Definition 3.2. Words of field
/// labels compose their variances; `Covariant` is the identity.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_VARIANCE_H
#define RETYPD_CORE_VARIANCE_H

#include <cstdint>

namespace retypd {

/// Variance of a field label or label word (Definition 3.2).
enum class Variance : uint8_t {
  Covariant = 0,  // ⊕
  Contravariant = 1 // ⊖
};

/// Sign-monoid composition: ⊕·⊕ = ⊖·⊖ = ⊕ and ⊕·⊖ = ⊖·⊕ = ⊖.
constexpr Variance compose(Variance A, Variance B) {
  return static_cast<Variance>(static_cast<uint8_t>(A) ^
                               static_cast<uint8_t>(B));
}

/// The inverse image: variance such that compose(A, flip(A)) == Covariant.
/// In a two-element group every element is its own inverse, so this is the
/// identity function; it exists for readability at call sites.
constexpr Variance inverse(Variance A) { return A; }

constexpr const char *varianceName(Variance V) {
  return V == Variance::Covariant ? "co" : "contra";
}

} // namespace retypd

#endif // RETYPD_CORE_VARIANCE_H
