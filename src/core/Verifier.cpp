//===- Verifier.cpp - Retypd formation-rule verification ---------------------===//

#include "core/Verifier.h"

#include "support/Stats.h"

using namespace retypd;

std::optional<VerifyLevel> retypd::parseVerifyLevel(std::string_view S) {
  if (S == "off")
    return VerifyLevel::Off;
  if (S == "phase")
    return VerifyLevel::Phase;
  if (S == "full")
    return VerifyLevel::Full;
  return std::nullopt;
}

const char *retypd::verifyLevelName(VerifyLevel L) {
  switch (L) {
  case VerifyLevel::Off:
    return "off";
  case VerifyLevel::Phase:
    return "phase";
  case VerifyLevel::Full:
    return "full";
  }
  return "off";
}

std::string VerifyDiags::str() const {
  std::string Out;
  for (const std::string &E : Errors) {
    Out += E;
    Out += '\n';
  }
  return Out;
}

namespace {

void fail(VerifyDiags &D, std::string_view Ctx, std::string Msg) {
  D.Errors.push_back(std::string(Ctx) + ": " + std::move(Msg));
}

constexpr uint64_t kMaxLabelKind = static_cast<uint64_t>(Label::Kind::Field);

/// Checks one base type variable (shared by DTV bases, scheme heads, and
/// existential lists).
void checkBase(TypeVariable V, const SymbolTable &Syms, const Lattice &Lat,
               std::string_view Ctx, std::string_view Role, VerifyDiags &D) {
  if (!V.isValid()) {
    fail(D, Ctx, std::string(Role) + " is the invalid type variable");
    return;
  }
  if (V.isConstant()) {
    if (V.latticeElem() >= Lat.size())
      fail(D, Ctx,
           std::string(Role) + " names lattice element #" +
               std::to_string(V.latticeElem()) + " but the lattice has " +
               std::to_string(Lat.size()) + " elements");
    return;
  }
  if (V.symbol() >= Syms.size())
    fail(D, Ctx,
         std::string(Role) + " references symbol #" +
             std::to_string(V.symbol()) + " but the table holds " +
             std::to_string(Syms.size()) + " symbols");
}

} // namespace

void retypd::verifyDtv(const DerivedTypeVariable &V, const SymbolTable &Syms,
                       const Lattice &Lat, std::string_view Ctx,
                       VerifyDiags &D) {
  checkBase(V.base(), Syms, Lat, Ctx, "base variable", D);

  // Label legality: each label's packed kind must be one of the five Σ
  // kinds, and the unused operand bits of its encoding must be clean —
  // a decoder handing back garbage bits would still compare/hash as a
  // distinct label and silently split capabilities.
  Variance Fold = Variance::Covariant;
  size_t Pos = 0;
  for (Label L : V.labels()) {
    uint64_t Raw = L.raw();
    uint64_t KindBits = Raw >> 48;
    if (KindBits > kMaxLabelKind) {
      fail(D, Ctx,
           "label #" + std::to_string(Pos) + " has kind bits " +
               std::to_string(KindBits) + " outside Σ");
      ++Pos;
      continue;
    }
    switch (L.kind()) {
    case Label::Kind::In:
    case Label::Kind::Out:
      if ((Raw >> 32) & 0xffff)
        fail(D, Ctx,
             "label #" + std::to_string(Pos) +
                 " (in/out) has nonzero width bits");
      break;
    case Label::Kind::Load:
    case Label::Kind::Store:
      if (Raw & 0xffffffffffffull)
        fail(D, Ctx,
             "label #" + std::to_string(Pos) +
                 " (load/store) has nonzero operand bits");
      break;
    case Label::Kind::Field:
      break;
    }
    Fold = compose(Fold, L.variance());
    ++Pos;
  }

  // Variance bookkeeping: the incremental fold along the path must agree
  // with the word-level product (Definition 3.2).
  if (Fold != V.variance())
    fail(D, Ctx,
         std::string("variance bookkeeping mismatch: path fold is ") +
             varianceName(Fold) + " but wordVariance says " +
             varianceName(V.variance()));
}

void retypd::verifyConstraintSet(const ConstraintSet &C,
                                 const SymbolTable &Syms, const Lattice &Lat,
                                 std::string_view Ctx, VerifyDiags &D) {
  EventCounters::VerifierChecks.fetch_add(1, std::memory_order_relaxed);
  std::string Sub;
  size_t I = 0;
  for (const SubtypeConstraint &S : C.subtypes()) {
    Sub = std::string(Ctx) + ", subtype #" + std::to_string(I++);
    verifyDtv(S.Lhs, Syms, Lat, Sub, D);
    verifyDtv(S.Rhs, Syms, Lat, Sub, D);
  }
  I = 0;
  for (const DerivedTypeVariable &V : C.vars()) {
    Sub = std::string(Ctx) + ", var #" + std::to_string(I++);
    verifyDtv(V, Syms, Lat, Sub, D);
  }
  I = 0;
  for (const AddSubConstraint &A : C.addSubs()) {
    Sub = std::string(Ctx) + ", addsub #" + std::to_string(I++);
    verifyDtv(A.X, Syms, Lat, Sub, D);
    verifyDtv(A.Y, Syms, Lat, Sub, D);
    verifyDtv(A.Z, Syms, Lat, Sub, D);
  }
}

void retypd::verifyCanonicalOrder(const ConstraintSet &C,
                                  const SymbolTable &Syms, const Lattice &Lat,
                                  std::string_view Ctx, VerifyDiags &D) {
  EventCounters::VerifierChecks.fetch_add(1, std::memory_order_relaxed);
  ConstraintSet::CanonicalView View = C.canonicalView(Syms, Lat);
  for (size_t I = 0; I < View.Subs.size(); ++I)
    if (View.Subs[I] != &C.subtypes()[I]) {
      fail(D, Ctx,
           "subtype constraints not in canonical order (first divergence at "
           "#" +
               std::to_string(I) + ")");
      break;
    }
  for (size_t I = 0; I < View.Vars.size(); ++I)
    if (View.Vars[I] != &C.vars()[I]) {
      fail(D, Ctx,
           "var declarations not in canonical order (first divergence at #" +
               std::to_string(I) + ")");
      break;
    }
  for (size_t I = 0; I < View.AddSubs.size(); ++I)
    if (View.AddSubs[I] != &C.addSubs()[I]) {
      fail(D, Ctx,
           "additive constraints not in canonical order (first divergence at "
           "#" +
               std::to_string(I) + ")");
      break;
    }
}

void retypd::verifyScheme(const TypeScheme &S, const SymbolTable &Syms,
                          const Lattice &Lat,
                          const std::unordered_set<TypeVariable> *AllowedFree,
                          std::string_view Ctx, VerifyDiags &D) {
  EventCounters::VerifierChecks.fetch_add(1, std::memory_order_relaxed);
  checkBase(S.ProcVar, Syms, Lat, Ctx, "procedure variable", D);
  if (S.ProcVar.isConstant())
    fail(D, Ctx, "procedure variable is a type constant");
  for (TypeVariable E : S.Existentials) {
    checkBase(E, Syms, Lat, Ctx, "existential", D);
    if (E.isConstant())
      fail(D, Ctx, "existential quantifies a type constant");
  }

  verifyConstraintSet(S.Constraints, Syms, Lat, Ctx, D);

  if (!AllowedFree)
    return;

  // Closure (Definition 3.4): every base variable the constraints mention
  // must be bound by the scheme (ProcVar or an existential), be a type
  // constant, or be explicitly allowed free (SCC mates whose schemes are
  // committed alongside this one).
  std::unordered_set<TypeVariable> Bound;
  Bound.insert(S.ProcVar);
  Bound.insert(S.Existentials.begin(), S.Existentials.end());
  std::unordered_set<TypeVariable> Reported;
  auto CheckFree = [&](const DerivedTypeVariable &V) {
    TypeVariable B = V.base();
    if (!B.isVar() || Bound.count(B) || AllowedFree->count(B) ||
        !Reported.insert(B).second)
      return;
    std::string Name =
        B.symbol() < Syms.size() ? Syms.name(B.symbol()) : "<invalid>";
    fail(D, Ctx, "free type variable '" + Name + "' escapes the scheme");
  };
  for (const SubtypeConstraint &C : S.Constraints.subtypes()) {
    CheckFree(C.Lhs);
    CheckFree(C.Rhs);
  }
  for (const DerivedTypeVariable &V : S.Constraints.vars())
    CheckFree(V);
  for (const AddSubConstraint &A : S.Constraints.addSubs()) {
    CheckFree(A.X);
    CheckFree(A.Y);
    CheckFree(A.Z);
  }
}

void retypd::verifySketch(const Sketch &Sk, const Lattice &Lat,
                          std::string_view Ctx, VerifyDiags &D) {
  EventCounters::VerifierChecks.fetch_add(1, std::memory_order_relaxed);
  if (Sk.size() == 0) {
    fail(D, Ctx, "sketch has no nodes (missing root)");
    return;
  }

  // Walk only what the root reaches: unreachable nodes are legal residue
  // of withChild grafting and carry no meaning.
  std::vector<bool> Visited(Sk.size(), false);
  std::vector<uint32_t> Work{Sk.root()};
  Visited[Sk.root()] = true;
  auto CheckMark = [&](uint32_t N, const char *What, LatticeElem E) {
    if (E >= Lat.size())
      fail(D, Ctx,
           "node #" + std::to_string(N) + " " + What + " #" +
               std::to_string(E) + " is not a lattice element (lattice has " +
               std::to_string(Lat.size()) + ")");
  };
  while (!Work.empty()) {
    uint32_t N = Work.back();
    Work.pop_back();
    const Sketch::Node &Node = Sk.node(N);
    CheckMark(N, "mark", Node.Mark);
    CheckMark(N, "lower bound", Node.Lower);
    CheckMark(N, "upper bound", Node.Upper);
    for (LatticeElem E : Node.Conflicts)
      CheckMark(N, "conflict entry", E);
    for (const auto &[L, To] : Node.Children) {
      if ((L.raw() >> 48) > kMaxLabelKind)
        fail(D, Ctx,
             "node #" + std::to_string(N) + " has an edge labeled outside Σ");
      if (To >= Sk.size()) {
        fail(D, Ctx,
             "node #" + std::to_string(N) + " edge targets node #" +
                 std::to_string(To) + " but the sketch has " +
                 std::to_string(Sk.size()) + " nodes");
        continue;
      }
      if (!Visited[To]) {
        Visited[To] = true;
        Work.push_back(To);
      }
    }
  }
}
