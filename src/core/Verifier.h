//===- Verifier.h - Retypd formation-rule verification --------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint/sketch verifier: checks the retypd formation rules
/// (paper §3, Definitions 3.1–3.5) on the objects flowing across the
/// pipeline's phase boundaries — derived type variables (label legality,
/// variance bookkeeping, base-variable membership), constraint sets
/// (including the canonical-order invariant the binary data plane relies
/// on), type schemes (closure: no free type variable escapes), and
/// sketches (well-formed Λ-marked DFAs).
///
/// The verifier is a pure read-only layer selected by \c VerifyLevel:
///
///   Off    nothing runs — the hot path is measurably untouched
///          (EventCounters::VerifierChecks stays 0).
///   Phase  freshly computed artifacts are verified at the wave-order
///          commit points of the pipeline.
///   Full   additionally, artifacts decoded from the summary cache and
///          the durable store are verified at the same seams, so a
///          trusted-decoder or stale-replay bug is caught at the phase
///          boundary instead of surfacing as a wrong report.
///
/// Every top-level verified object bumps EventCounters::VerifierChecks.
/// Diagnostics are rendered strings with a caller-supplied context prefix
/// ("phase1 scheme 'close_last'"), collected — never thrown — so one run
/// reports every violation.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CORE_VERIFIER_H
#define RETYPD_CORE_VERIFIER_H

#include "core/ConstraintSet.h"
#include "core/Sketch.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace retypd {

/// How much verification the pipeline runs (--verify=off|phase|full).
enum class VerifyLevel : uint8_t { Off = 0, Phase = 1, Full = 2 };

/// Parses "off" / "phase" / "full"; nullopt on anything else.
std::optional<VerifyLevel> parseVerifyLevel(std::string_view S);

const char *verifyLevelName(VerifyLevel L);

/// Accumulated formation-rule violations. Each entry is a fully rendered
/// one-line diagnostic ("<context>: <rule violation>").
struct VerifyDiags {
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty(); }
  /// All errors joined one per line (trailing newline included).
  std::string str() const;
};

/// Checks one derived type variable: valid base (interned symbol within
/// \p Syms, or a constant naming an element of \p Lat), label words made
/// only of the five Σ kinds with clean encodings, and variance
/// bookkeeping (the incremental sign-monoid fold along the word must
/// agree with wordVariance).
void verifyDtv(const DerivedTypeVariable &V, const SymbolTable &Syms,
               const Lattice &Lat, std::string_view Ctx, VerifyDiags &D);

/// Checks every constraint in \p C (both sides of subtype constraints,
/// var declarations, and additive constraints). Counts as one verifier
/// check.
void verifyConstraintSet(const ConstraintSet &C, const SymbolTable &Syms,
                         const Lattice &Lat, std::string_view Ctx,
                         VerifyDiags &D);

/// Checks the canonical-order invariant: \p C's storage order must equal
/// its canonical structural order (what canonicalView computes). Summary
/// payloads encode sets in this order, and the structural hashes assume
/// it; a decoded or about-to-be-encoded set that violates it would break
/// content addressing. Counts as one verifier check.
void verifyCanonicalOrder(const ConstraintSet &C, const SymbolTable &Syms,
                          const Lattice &Lat, std::string_view Ctx,
                          VerifyDiags &D);

/// Checks a type scheme: its constraint set (as verifyConstraintSet), a
/// valid quantified head, and closure — every base type variable
/// mentioned in the constraints must be the scheme's ProcVar, one of its
/// Existentials, a type constant, or a member of \p AllowedFree (the
/// procedure variables legitimately shared across an SCC). Pass nullptr
/// to skip the closure check when the caller cannot name the allowed
/// free set. Counts as one verifier check.
void verifyScheme(const TypeScheme &S, const SymbolTable &Syms,
                  const Lattice &Lat,
                  const std::unordered_set<TypeVariable> *AllowedFree,
                  std::string_view Ctx, VerifyDiags &D);

/// Checks a sketch: a nonempty node array, every edge reachable from the
/// root targeting a node that exists, edge labels drawn from Σ, and all
/// marks (Mark / Lower / Upper / Conflicts) naming elements of \p Lat.
/// Nodes unreachable from the root are legal (withChild grafting leaves
/// them behind); their contents are not inspected. Counts as one
/// verifier check.
void verifySketch(const Sketch &Sk, const Lattice &Lat, std::string_view Ctx,
                  VerifyDiags &D);

} // namespace retypd

#endif // RETYPD_CORE_VERIFIER_H
