//===- CType.cpp - A small C type model ------------------------------------===//

#include "ctypes/CType.h"

#include <cassert>
#include <set>

using namespace retypd;

CTypeId CTypePool::voidType() {
  CType T;
  T.K = CType::Kind::Void;
  T.Bits = 0;
  return make(std::move(T));
}

CTypeId CTypePool::intType(uint16_t Bits, bool Signed) {
  CType T;
  T.K = Signed ? CType::Kind::Int : CType::Kind::UInt;
  T.Bits = Bits;
  return make(std::move(T));
}

CTypeId CTypePool::floatType(uint16_t Bits) {
  CType T;
  T.K = CType::Kind::Float;
  T.Bits = Bits;
  return make(std::move(T));
}

CTypeId CTypePool::pointerTo(CTypeId Pointee, bool PointeeConst) {
  CType T;
  T.K = CType::Kind::Pointer;
  T.Pointee = Pointee;
  T.PointeeConst = PointeeConst;
  return make(std::move(T));
}

CTypeId CTypePool::typedefType(const std::string &Name, uint16_t Bits) {
  CType T;
  T.K = CType::Kind::Typedef;
  T.Name = Name;
  T.Bits = Bits;
  return make(std::move(T));
}

CTypeId CTypePool::unknownType(uint16_t Bits) {
  CType T;
  T.K = CType::Kind::Unknown;
  T.Bits = Bits;
  return make(std::move(T));
}

std::string CTypePool::typeName(CTypeId Id) const {
  const CType &T = get(Id);
  switch (T.K) {
  case CType::Kind::Void:
    return "void";
  case CType::Kind::Int: {
    std::string Base;
    switch (T.Bits) {
    case 8:
      Base = "int8_t";
      break;
    case 16:
      Base = "int16_t";
      break;
    case 64:
      Base = "int64_t";
      break;
    default:
      Base = "int";
      break;
    }
    if (T.Name == "char")
      Base = "char";
    else if (!T.Name.empty())
      Base += " /*" + T.Name + "*/";
    return Base;
  }
  case CType::Kind::UInt:
    switch (T.Bits) {
    case 8:
      return "uint8_t";
    case 16:
      return "uint16_t";
    case 64:
      return "uint64_t";
    default:
      return "unsigned int";
    }
  case CType::Kind::Float:
    return T.Bits == 64 ? "double" : "float";
  case CType::Kind::Pointer: {
    std::string Inner = typeName(T.Pointee);
    if (!T.PointeeConst)
      return Inner + " *";
    // `const` on a pointer pointee: "const int *", but when the pointee is
    // itself a pointer the qualifier binds to it: "int * const *".
    if (!Inner.empty() && Inner.back() == '*')
      return Inner + "const *";
    return "const " + Inner + " *";
  }
  case CType::Kind::Struct:
    return T.Name;
  case CType::Kind::Union: {
    std::string S = "union { ";
    for (size_t I = 0; I < T.Members.size(); ++I) {
      std::string MemberName = "m";
      MemberName += std::to_string(I);
      S += declare(T.Members[I], MemberName);
      S += "; ";
    }
    S += "}";
    return S;
  }
  case CType::Kind::Function: {
    // Only used nested behind a pointer; prototype() is the toplevel form.
    std::string S = typeName(T.Return) + " (*)(";
    for (size_t I = 0; I < T.Params.size(); ++I) {
      if (I)
        S += ", ";
      S += typeName(T.Params[I]);
    }
    S += ")";
    return S;
  }
  case CType::Kind::Typedef:
    return T.Name;
  case CType::Kind::Unknown:
    switch (T.Bits) {
    case 8:
      return "uint8_t";
    case 16:
      return "uint16_t";
    case 64:
      return "uint64_t";
    default:
      return "uint32_t";
    }
  }
  return "<?>";
}

std::string CTypePool::declare(CTypeId Id, const std::string &VarName) const {
  const CType &T = get(Id);
  if (T.K == CType::Kind::Function) {
    std::string S = typeName(T.Return) + " (" + VarName + ")(";
    for (size_t I = 0; I < T.Params.size(); ++I) {
      if (I)
        S += ", ";
      S += typeName(T.Params[I]);
    }
    S += ")";
    return S;
  }
  std::string N = typeName(Id);
  if (!N.empty() && N.back() == '*')
    return N + VarName;
  return N + " " + VarName;
}

std::string
CTypePool::structDefinitions(const std::vector<CTypeId> &Roots) const {
  // Collect reachable structs in dependency (post-) order.
  std::vector<CTypeId> Order;
  std::set<CTypeId> Visited;
  auto Visit = [&](auto &&Self, CTypeId Id) -> void {
    if (Id == NoCType || !Visited.insert(Id).second)
      return;
    const CType &T = get(Id);
    Self(Self, T.Pointee);
    Self(Self, T.Return);
    for (const CType::Field &F : T.Fields)
      Self(Self, F.Type);
    for (CTypeId M : T.Members)
      Self(Self, M);
    for (CTypeId P : T.Params)
      Self(Self, P);
    if (T.K == CType::Kind::Struct)
      Order.push_back(Id);
  };
  for (CTypeId R : Roots)
    Visit(Visit, R);

  std::string S;
  // Forward declarations first (recursive structs need them).
  for (CTypeId Id : Order)
    S += "typedef struct " + get(Id).Name + " " + get(Id).Name + ";\n";
  for (CTypeId Id : Order) {
    const CType &T = get(Id);
    S += "struct " + T.Name + " {\n";
    for (const CType::Field &F : T.Fields) {
      S += "  " + declare(F.Type, "field_" + std::to_string(F.Offset));
      S += ";\n";
    }
    S += "};\n";
  }
  return S;
}

std::string CTypePool::prototype(CTypeId Fn, const std::string &Name) const {
  const CType &T = get(Fn);
  assert(T.K == CType::Kind::Function && "prototype of non-function");
  std::string S = (T.Return == NoCType ? std::string("void")
                                       : typeName(T.Return));
  S += " " + Name + "(";
  if (T.Params.empty())
    S += "void";
  for (size_t I = 0; I < T.Params.size(); ++I) {
    if (I)
      S += ", ";
    // const annotations on pointer parameters are rendered on the pointee
    // (they come from the §6.4 policy).
    S += typeName(T.Params[I]);
  }
  S += ")";
  return S;
}
