//===- CType.h - A small C type model --------------------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact model of the C types emitted by the final resolution phase
/// (paper §4.3). Types live in a CTypePool and reference each other by id,
/// which makes recursive structs (linked lists, trees) straightforward:
/// a struct's field can reference the struct itself.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CTYPES_CTYPE_H
#define RETYPD_CTYPES_CTYPE_H

#include <cstdint>
#include <string>
#include <vector>

namespace retypd {

/// Id of a type within a CTypePool.
using CTypeId = uint32_t;
constexpr CTypeId NoCType = 0xffffffffu;

/// One C type node.
struct CType {
  enum class Kind : uint8_t {
    Void,
    Int,     ///< signed integer of Bits width
    UInt,    ///< unsigned integer of Bits width
    Float,   ///< floating point of Bits width
    Pointer, ///< Pointee, possibly PointeeConst
    Struct,  ///< named record with Fields
    Union,   ///< unnamed union of Members
    Function,///< Params -> Return
    Typedef, ///< a named opaque type (HANDLE, FILE, ...) of Bits width
    Unknown  ///< no information (rendered as a sized int or void*)
  };

  struct Field {
    int32_t Offset = 0; ///< byte offset within the struct
    CTypeId Type = NoCType;
  };

  Kind K = Kind::Unknown;
  uint16_t Bits = 32;      ///< scalar width; pointer width for Pointer
  bool PointeeConst = false;
  CTypeId Pointee = NoCType;
  std::string Name;        ///< struct tag / typedef name / semantic comment
  std::vector<Field> Fields;        ///< Struct fields
  std::vector<CTypeId> Members;     ///< Union members
  std::vector<CTypeId> Params;      ///< Function parameters
  std::vector<bool> ParamConst;     ///< per-parameter const annotation
  CTypeId Return = NoCType;         ///< Function return type
};

/// Owns all CType nodes of one conversion.
class CTypePool {
public:
  CTypeId make(CType T) {
    Types.push_back(std::move(T));
    return static_cast<CTypeId>(Types.size() - 1);
  }

  const CType &get(CTypeId Id) const { return Types[Id]; }
  CType &get(CTypeId Id) { return Types[Id]; }
  size_t size() const { return Types.size(); }

  // Convenience constructors.
  CTypeId voidType();
  CTypeId intType(uint16_t Bits, bool Signed);
  CTypeId floatType(uint16_t Bits);
  CTypeId pointerTo(CTypeId Pointee, bool PointeeConst = false);
  CTypeId typedefType(const std::string &Name, uint16_t Bits);
  CTypeId unknownType(uint16_t Bits = 32);

  /// Renders the type as a C declarator for \p VarName ("int x",
  /// "const Struct_0 *p", "int (*f)(char*)").
  std::string declare(CTypeId Id, const std::string &VarName) const;

  /// Renders all struct definitions referenced (transitively) by \p Roots
  /// as C typedefs, in dependency order.
  std::string structDefinitions(const std::vector<CTypeId> &Roots) const;

  /// Renders a function type as a C prototype.
  std::string prototype(CTypeId Fn, const std::string &Name) const;

private:
  std::string typeName(CTypeId Id) const;

  std::vector<CType> Types;
};

} // namespace retypd

#endif // RETYPD_CTYPES_CTYPE_H
