//===- Conversion.cpp - Sketch → C type policies (§4.3) --------------------===//

#include "ctypes/Conversion.h"

#include <algorithm>
#include <cassert>

using namespace retypd;

/// Maps a lattice mark to a scalar C type. Tags and typedef-like names keep
/// their name as an annotation.
CTypeId CTypeConverter::scalarFromMark(const Sketch::Node &N, uint16_t Bits) {
  LatticeElem Mark = N.Mark;

  // Incompatible bounds: union of the alternatives (Example 4.2).
  if (Opts.EmitUnions && !N.Conflicts.empty()) {
    CType U;
    U.K = CType::Kind::Union;
    for (LatticeElem E : N.Conflicts) {
      Sketch::Node Alt;
      Alt.Mark = E;
      U.Members.push_back(scalarFromMark(Alt, Bits));
    }
    return Pool.make(std::move(U));
  }

  const std::string &Name = Mark == Lattice::Top || Mark == Lattice::Bottom
                                ? std::string()
                                : Lat.name(Mark);
  auto Named = [&](CType::Kind K, uint16_t B) {
    CType T;
    T.K = K;
    T.Bits = B;
    return Pool.make(std::move(T));
  };

  if (Name.empty()) {
    if (N.IntegerLike)
      return Named(CType::Kind::Int, Bits);
    return Pool.unknownType(Bits);
  }

  // Tags annotate their underlying scalar (rendered as `int /*#Tag*/`).
  if (Lat.isTag(Mark)) {
    CType T;
    T.K = CType::Kind::Int;
    T.Bits = Bits;
    T.Name = Name;
    return Pool.make(std::move(T));
  }

  if (Name == "int" || Name == "num32")
    return Named(CType::Kind::Int, 32);
  if (Name == "uint")
    return Named(CType::Kind::UInt, 32);
  if (Name == "int8" || Name == "num8")
    return Named(CType::Kind::Int, 8);
  if (Name == "uint8")
    return Named(CType::Kind::UInt, 8);
  if (Name == "char") {
    CType T;
    T.K = CType::Kind::Int;
    T.Bits = 8;
    T.Name = "char";
    return Pool.make(std::move(T));
  }
  if (Name == "int16" || Name == "num16")
    return Named(CType::Kind::Int, 16);
  if (Name == "uint16")
    return Named(CType::Kind::UInt, 16);
  if (Name == "int64" || Name == "num64")
    return Named(CType::Kind::Int, 64);
  if (Name == "uint64")
    return Named(CType::Kind::UInt, 64);
  if (Name == "bool")
    return Named(CType::Kind::Int, 8);
  if (Name == "float")
    return Pool.floatType(32);
  if (Name == "double" || Name == "float-family")
    return Pool.floatType(64);
  if (Name == "str") {
    CType Ch;
    Ch.K = CType::Kind::Int;
    Ch.Bits = 8;
    Ch.Name = "char";
    return Pool.pointerTo(Pool.make(std::move(Ch)));
  }
  // Everything else (HANDLE, FILE, size_t, LPARAM, ...) is an opaque
  // typedef of the appropriate width.
  return Pool.typedefType(Name, Bits);
}

CTypeId CTypeConverter::pointeeFor(const Sketch &S, uint32_t PointeeState,
                                   uint32_t SecondaryState) {
  auto It = StructCache.find(PointeeState);
  if (It != StructCache.end())
    return It->second;

  // Re-entry through a cycle of single-field cells: materialize a named
  // struct shell now; the outer invocation fills its fields.
  if (!InProgress.insert(PointeeState).second) {
    CType Shell;
    Shell.K = CType::Kind::Struct;
    Shell.Name = "Struct_" + std::to_string(NextStructId++);
    CTypeId Id = Pool.make(std::move(Shell));
    StructCache[PointeeState] = Id;
    return Id;
  }

  // Collect σN@k fields from the primary (load) view, supplemented by the
  // secondary (store) view: after parameter refinement the two views may
  // have different field sets (the shape quotient only unifies them within
  // one constraint solve).
  std::vector<std::pair<int32_t, std::pair<uint16_t, uint32_t>>> Fields;
  auto AddFields = [&](uint32_t State) {
    if (State == 0xffffffffu)
      return;
    for (const auto &[L, Child] : S.node(State).Children) {
      if (!L.isField())
        continue;
      bool Present = false;
      for (const auto &F : Fields)
        if (F.first == L.offset())
          Present = true;
      if (!Present)
        Fields.push_back({L.offset(), {L.bits(), Child}});
    }
  };
  AddFields(PointeeState);
  AddFields(SecondaryState);
  std::sort(Fields.begin(), Fields.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  // A single field at offset 0 denotes a plain pointee, not a struct —
  // unless the field's own subtree points back here (a recursive cell needs
  // a named struct to be expressible in C).
  if (Fields.empty()) {
    CTypeId R = convertState(S, PointeeState, 32);
    InProgress.erase(PointeeState);
    return R;
  }
  if (Fields.size() == 1 && Fields[0].first == 0 &&
      Fields[0].second.second != PointeeState) {
    CTypeId Inner =
        convertState(S, Fields[0].second.second, Fields[0].second.first);
    InProgress.erase(PointeeState);
    // A shell may have appeared while recursing (recursive chain): fill it.
    auto Cycled = StructCache.find(PointeeState);
    if (Cycled != StructCache.end()) {
      Pool.get(Cycled->second).Fields = {CType::Field{0, Inner}};
      return Cycled->second;
    }
    return Inner;
  }

  // General case: a named struct; memoize before filling so recursive
  // references (lists, trees) resolve to the struct itself.
  CTypeId Id;
  auto Cycled = StructCache.find(PointeeState);
  if (Cycled != StructCache.end()) {
    Id = Cycled->second;
  } else {
    CType Shell;
    Shell.K = CType::Kind::Struct;
    Shell.Name = "Struct_" + std::to_string(NextStructId++);
    Id = Pool.make(std::move(Shell));
    StructCache[PointeeState] = Id;
  }

  std::vector<CType::Field> Built;
  for (const auto &[Offset, BitsChild] : Fields) {
    CType::Field F;
    F.Offset = Offset;
    F.Type = convertState(S, BitsChild.second, BitsChild.first);
    Built.push_back(F);
  }
  Pool.get(Id).Fields = std::move(Built);
  InProgress.erase(PointeeState);
  return Id;
}

CTypeId CTypeConverter::convertState(const Sketch &S, uint32_t State,
                                     uint16_t Bits) {
  // Depth backstop for pathological sketches (e.g. function types cycling
  // through their own parameters).
  if (Depth > 64)
    return Pool.unknownType(Bits);
  struct DepthGuard {
    unsigned &D;
    ~DepthGuard() { --D; }
  } Guard{++Depth};

  const Sketch::Node &N = S.node(State);

  // Function pointer: in/out capabilities below a load.
  bool HasInOut = false;
  for (const auto &[L, C] : N.Children)
    if (L.isIn() || L.isOut())
      HasInOut = true;

  auto LoadIt = N.Children.find(Label::load());
  auto StoreIt = N.Children.find(Label::store());
  bool IsPointer = LoadIt != N.Children.end() || StoreIt != N.Children.end();

  if (HasInOut && !IsPointer) {
    // A code value: render as a function type (used behind pointers).
    CType Fn;
    Fn.K = CType::Kind::Function;
    Fn.Return = Pool.voidType();
    for (unsigned I = 0; I < Opts.MaxParams; ++I) {
      auto PIt = N.Children.find(Label::in(I));
      if (PIt == N.Children.end())
        break;
      Fn.Params.push_back(convertState(S, PIt->second, 32));
      Fn.ParamConst.push_back(false);
    }
    auto OIt = N.Children.find(Label::out());
    if (OIt != N.Children.end())
      Fn.Return = convertState(S, OIt->second, 32);
    return Pool.make(std::move(Fn));
  }

  if (IsPointer) {
    uint32_t PointeeState =
        LoadIt != N.Children.end() ? LoadIt->second : StoreIt->second;
    uint32_t SecondaryState =
        LoadIt != N.Children.end() && StoreIt != N.Children.end()
            ? StoreIt->second
            : 0xffffffffu;
    CTypeId Pointee = pointeeFor(S, PointeeState, SecondaryState);

    // Mixed pointer/integer evidence: a union of both views (§2.6).
    if (Opts.EmitUnions && N.IntegerLike) {
      CType U;
      U.K = CType::Kind::Union;
      U.Members.push_back(Pool.intType(Bits, /*Signed=*/true));
      U.Members.push_back(Pool.pointerTo(Pointee));
      return Pool.make(std::move(U));
    }
    // const pointee when the value is only ever loaded through (§6.4).
    bool Const = Opts.InferConst && LoadIt != N.Children.end() &&
                 StoreIt == N.Children.end();
    return Pool.pointerTo(Pointee, Const);
  }

  return scalarFromMark(N, Bits);
}

CTypeId CTypeConverter::convertValue(const Sketch &S) {
  StructCache.clear();
  InProgress.clear();
  return convertState(S, S.root(), Opts.PointerBits);
}

CTypeId CTypeConverter::convertFunction(const Sketch &S) {
  StructCache.clear();
  InProgress.clear();
  const Sketch::Node &Root = S.node(S.root());

  CType Fn;
  Fn.K = CType::Kind::Function;
  for (unsigned I = 0; I < Opts.MaxParams; ++I) {
    auto It = Root.Children.find(Label::in(I));
    if (It == Root.Children.end())
      break;
    CTypeId P = convertState(S, It->second, 32);
    Fn.Params.push_back(P);
    Fn.ParamConst.push_back(Pool.get(P).K == CType::Kind::Pointer &&
                            Pool.get(P).PointeeConst);
  }
  auto OIt = Root.Children.find(Label::out());
  Fn.Return = OIt != Root.Children.end() ? convertState(S, OIt->second, 32)
                                         : Pool.voidType();
  return Pool.make(std::move(Fn));
}
