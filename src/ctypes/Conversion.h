//===- Conversion.h - Sketch → C type policies (§4.3) ---------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heuristic final phase that downgrades sketches to human-readable C
/// types (paper §4.3). The policies implemented here are:
///
///  - Pointer recovery: a node with .load/.store capabilities becomes a
///    pointer; its pointee is a struct built from the σN@k fields, a scalar
///    when only σN@0 exists, or an opaque unit.
///  - Recursive structs: sketch states are memoized to struct definitions,
///    so list/tree sketches roll back into `struct S { struct S *next; }`
///    automatically (the reroll policy of Example G.3 falls out of the
///    automaton representation).
///  - const inference (§6.4, Example 4.1): a pointer parameter at location
///    L is const when the solved sketch has F.inL.load but not F.inL.store.
///  - Union resolution (Example 4.2): incompatible scalar bounds or mixed
///    pointer/integer evidence produce a union of the alternatives.
///  - Scalar naming: lattice marks map to C scalar names; semantic tags
///    (#FileDescriptor) and API typedefs (HANDLE) are preserved as
///    annotations, as in Figure 2.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_CTYPES_CONVERSION_H
#define RETYPD_CTYPES_CONVERSION_H

#include "core/Sketch.h"
#include "ctypes/CType.h"

#include <map>
#include <set>

namespace retypd {

/// Tunable policy switches for the conversion phase.
struct ConversionOptions {
  bool InferConst = true;  ///< apply the §6.4 const policy
  bool EmitUnions = true;  ///< apply the Example 4.2 union policy
  uint16_t PointerBits = 32;
  unsigned MaxParams = 16; ///< ignore absurd in-indices from bad IR
};

/// Converts solved sketches into C types within one CTypePool.
class CTypeConverter {
public:
  CTypeConverter(CTypePool &Pool, const Lattice &Lat,
                 ConversionOptions Opts = ConversionOptions())
      : Pool(Pool), Lat(Lat), Opts(Opts) {}

  /// Converts a procedure sketch (root has .in_i / .out children) into a
  /// Function CType.
  CTypeId convertFunction(const Sketch &S);

  /// Converts a value sketch into the C type of the value itself.
  CTypeId convertValue(const Sketch &S);

  /// Number of struct definitions synthesized so far.
  unsigned structCount() const { return NextStructId; }

private:
  CTypeId convertState(const Sketch &S, uint32_t State, uint16_t Bits);
  CTypeId scalarFromMark(const Sketch::Node &N, uint16_t Bits);
  CTypeId pointeeFor(const Sketch &S, uint32_t PointeeState,
                     uint32_t SecondaryState = 0xffffffffu);

  CTypePool &Pool;
  const Lattice &Lat;
  ConversionOptions Opts;
  // Sketch state -> struct type (per convertFunction/convertValue call
  // sequence; states from different sketches never collide because the
  // cache is cleared per conversion).
  std::map<uint32_t, CTypeId> StructCache;
  // States currently being converted; a re-entry means a recursive type
  // and forces materialization of a named struct.
  std::set<uint32_t> InProgress;
  unsigned Depth = 0;
  unsigned NextStructId = 0;
};

} // namespace retypd

#endif // RETYPD_CTYPES_CONVERSION_H
