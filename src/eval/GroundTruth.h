//===- GroundTruth.h - Source-level truth for evaluation ------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declared source types for synthetic programs: the stand-in for the
/// DWARF/PDB side channel of the paper's evaluation (§6.2). Ground truth is
/// exact by construction — the synthesizer records the types it compiled.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_EVAL_GROUNDTRUTH_H
#define RETYPD_EVAL_GROUNDTRUTH_H

#include "ctypes/CType.h"

#include <map>
#include <string>
#include <vector>

namespace retypd {

/// Declared types for one function.
struct FuncTruth {
  struct Param {
    CTypeId Type = NoCType;
    bool IsConstPtr = false; ///< `const T*` in the source
  };
  std::vector<Param> Params;
  CTypeId Ret = NoCType;
  bool HasRet = false;
};

/// Declared types for a whole synthetic program.
struct GroundTruth {
  CTypePool Pool;
  std::map<std::string, FuncTruth> Funcs; // keyed by function name
};

} // namespace retypd

#endif // RETYPD_EVAL_GROUNDTRUTH_H
