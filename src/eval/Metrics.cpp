//===- Metrics.cpp - TIE-style evaluation metrics ---------------------------===//

#include "eval/Metrics.h"

#include <algorithm>
#include <cmath>

using namespace retypd;

void MetricSummary::merge(const MetricSummary &O) {
  SumDistance += O.SumDistance;
  SumInterval += O.SumInterval;
  Conservative += O.Conservative;
  Slots += O.Slots;
  SumPtrAccuracy += O.SumPtrAccuracy;
  PtrSlots += O.PtrSlots;
  ConstTruth += O.ConstTruth;
  ConstFound += O.ConstFound;
}

unsigned Evaluator::pointerLevels(const CTypePool &P, CTypeId T,
                                  unsigned Depth) {
  unsigned Levels = 0;
  while (Depth-- > 0 && T != NoCType) {
    const CType &Ty = P.get(T);
    if (Ty.K == CType::Kind::Pointer) {
      ++Levels;
      T = Ty.Pointee;
    } else if (Ty.K == CType::Kind::Struct && !Ty.Fields.empty() &&
               Ty.Fields[0].Offset == 0) {
      // Follow the leading field (physical subtyping view).
      T = Ty.Fields[0].Type;
    } else {
      break;
    }
  }
  return Levels;
}

double Evaluator::typeDistance(const CTypePool &PA, CTypeId A,
                               const CTypePool &PB, CTypeId B,
                               unsigned Depth) const {
  if (Depth == 0)
    return 0;
  if (A == NoCType || B == NoCType)
    return A == B ? 0 : 2;
  const CType &TA = PA.get(A);
  const CType &TB = PB.get(B);
  using K = CType::Kind;

  // Unions: best-matching member plus a small penalty.
  if (TA.K == K::Union || TB.K == K::Union) {
    const CType &U = TA.K == K::Union ? TA : TB;
    const CTypePool &UP = TA.K == K::Union ? PA : PB;
    CTypeId Other = TA.K == K::Union ? B : A;
    const CTypePool &OP = TA.K == K::Union ? PB : PA;
    double Best = 4;
    for (CTypeId Mem : U.Members)
      Best = std::min(Best,
                      typeDistance(UP, Mem, OP, Other, Depth - 1));
    return std::min(4.0, Best + 0.5);
  }

  if (TA.K == K::Unknown || TB.K == K::Unknown)
    return 2;

  if (TA.K == K::Pointer && TB.K == K::Pointer)
    return 0.5 * typeDistance(PA, TA.Pointee, PB, TB.Pointee, Depth - 1);

  if (TA.K == K::Struct && TB.K == K::Struct) {
    // Field-wise average over the union of offsets; a missing field costs
    // the maximum.
    double Sum = 0;
    unsigned N = 0;
    auto FieldAt = [](const CType &T, int32_t Off) -> CTypeId {
      for (const CType::Field &F : T.Fields)
        if (F.Offset == Off)
          return F.Type;
      return NoCType;
    };
    std::vector<int32_t> Offsets;
    for (const CType::Field &F : TA.Fields)
      Offsets.push_back(F.Offset);
    for (const CType::Field &F : TB.Fields)
      if (std::find(Offsets.begin(), Offsets.end(), F.Offset) ==
          Offsets.end())
        Offsets.push_back(F.Offset);
    for (int32_t Off : Offsets) {
      CTypeId FA = FieldAt(TA, Off);
      CTypeId FB = FieldAt(TB, Off);
      Sum += (FA == NoCType || FB == NoCType)
                 ? 4
                 : typeDistance(PA, FA, PB, FB, Depth - 1);
      ++N;
    }
    return N ? 0.5 * (Sum / N) : 0;
  }

  // A struct against the type of its first member (pointer-to-struct vs
  // pointer-to-first-member, §2.4): compare through the leading field.
  if (TA.K == K::Struct && !TA.Fields.empty() && TA.Fields[0].Offset == 0)
    return std::min(4.0, 1 + typeDistance(PA, TA.Fields[0].Type, PB, B,
                                          Depth - 1));
  if (TB.K == K::Struct && !TB.Fields.empty() && TB.Fields[0].Offset == 0)
    return std::min(4.0, 1 + typeDistance(PA, A, PB, TB.Fields[0].Type,
                                          Depth - 1));

  bool PtrA = TA.K == K::Pointer, PtrB = TB.K == K::Pointer;
  if (PtrA != PtrB)
    return 4;

  if (TA.K == K::Function && TB.K == K::Function) {
    double Sum = typeDistance(PA, TA.Return, PB, TB.Return, Depth - 1);
    unsigned N = 1;
    for (size_t I = 0; I < std::max(TA.Params.size(), TB.Params.size());
         ++I) {
      if (I >= TA.Params.size() || I >= TB.Params.size()) {
        Sum += 4;
      } else {
        Sum += typeDistance(PA, TA.Params[I], PB, TB.Params[I], Depth - 1);
      }
      ++N;
    }
    return Sum / N;
  }

  // Scalars.
  auto ScalarClass = [](const CType &T) {
    switch (T.K) {
    case K::Int:
      return 0;
    case K::UInt:
      return 1;
    case K::Float:
      return 2;
    case K::Typedef:
      return 3;
    case K::Void:
      return 4;
    default:
      return 5;
    }
  };
  if (TA.K == TB.K) {
    if (TA.K == K::Typedef)
      return TA.Name == TB.Name ? 0 : 1;
    if (TA.Bits == TB.Bits) {
      // Same kind and width; annotations (tags) may differ slightly.
      return TA.Name == TB.Name ? 0 : 0.5;
    }
    return 1; // width mismatch within one kind
  }
  int CA = ScalarClass(TA), CB = ScalarClass(TB);
  if ((CA == 0 && CB == 1) || (CA == 1 && CB == 0))
    return TA.Bits == TB.Bits ? 1 : 1.5; // signedness mismatch
  if (CA == 3 || CB == 3)
    return 1.5; // typedef vs plain scalar
  return 3;
}

double Evaluator::intervalSize(LatticeElem Lower, LatticeElem Upper) const {
  if (Lower == Lattice::Bottom && Upper == Lattice::Top)
    return 4;
  if (Lower == Upper)
    return 0;
  if (!Lat.leq(Lower, Upper))
    return 4; // inconsistent interval
  // Fraction of the lattice spanned by the interval (a proxy for the
  // stratified-lattice distance of TIE), scaled to [0, 4].
  unsigned Between = 0;
  for (LatticeElem E = 0; E < Lat.size(); ++E)
    if (E != Lower && E != Upper && Lat.leq(Lower, E) && Lat.leq(E, Upper))
      ++Between;
  double Span = 4.0 * Between / std::max<double>(1.0, Lat.size() - 2.0);
  return std::min(4.0, 0.5 + Span);
}

LatticeElem Evaluator::elemFor(const CTypePool &P, CTypeId T) const {
  if (T == NoCType)
    return Lattice::Top;
  const CType &Ty = P.get(T);
  auto Find = [&](const char *N) {
    auto E = Lat.lookup(N);
    return E ? *E : Lattice::Top;
  };
  switch (Ty.K) {
  case CType::Kind::Int:
    if (!Ty.Name.empty() && Ty.Name[0] == '#') {
      auto E = Lat.lookup(Ty.Name);
      if (E)
        return *E;
    }
    return Ty.Bits == 32 ? Find("int")
                         : Ty.Bits == 8 ? Find("int8")
                                        : Ty.Bits == 16 ? Find("int16")
                                                        : Find("int64");
  case CType::Kind::UInt:
    return Ty.Bits == 32 ? Find("uint") : Find("num32");
  case CType::Kind::Float:
    return Ty.Bits == 32 ? Find("float") : Find("double");
  case CType::Kind::Typedef: {
    auto E = Lat.lookup(Ty.Name);
    return E ? *E : Lattice::Top;
  }
  default:
    return Lattice::Top;
  }
}

void Evaluator::scoreSlot(MetricSummary &S, const CTypePool &InfPool,
                          CTypeId Inf, LatticeElem Lower, LatticeElem Upper,
                          bool InfPointer, bool InfConst,
                          const CTypePool &TruthPool, CTypeId Truth,
                          bool TruthConst) const {
  ++S.Slots;
  S.SumDistance += typeDistance(InfPool, Inf, TruthPool, Truth);

  bool TruthPtr = Truth != NoCType &&
                  TruthPool.get(Truth).K == CType::Kind::Pointer;
  bool InfIsPtr =
      InfPointer ||
      (Inf != NoCType && InfPool.get(Inf).K == CType::Kind::Pointer);

  // Interval size: pointers with recovered structure count as tight.
  if (TruthPtr || InfIsPtr)
    S.SumInterval += InfIsPtr == TruthPtr ? intervalSize(Lower, Upper) * 0.25
                                          : 4;
  else
    S.SumInterval += intervalSize(Lower, Upper);

  // Conservativeness: the interval (or pointer claim) must overapproximate
  // the truth.
  bool Cons;
  if (TruthPtr) {
    // Claiming a scalar interval for a pointer is unsound unless the
    // interval is uninformative.
    Cons = InfIsPtr ||
           (Lower == Lattice::Bottom && Upper == Lattice::Top);
  } else {
    LatticeElem T = elemFor(TruthPool, Truth);
    Cons = !InfIsPtr && Lat.leq(Lower, T) && Lat.leq(T, Upper);
    if (InfIsPtr)
      Cons = false;
  }
  if (Cons)
    ++S.Conservative;

  // Multi-level pointer accuracy.
  unsigned TruthLevels = pointerLevels(TruthPool, Truth);
  if (TruthLevels > 0) {
    ++S.PtrSlots;
    unsigned InfLevels = pointerLevels(InfPool, Inf);
    S.SumPtrAccuracy +=
        double(std::min(InfLevels, TruthLevels)) / TruthLevels;
  }

  // const recall.
  if (TruthConst) {
    ++S.ConstTruth;
    if (InfConst)
      ++S.ConstFound;
  }
}

MetricSummary Evaluator::scoreRetypd(const Module &M, const TypeReport &R,
                                     const GroundTruth &Truth) const {
  MetricSummary S;
  for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
    auto TIt = Truth.Funcs.find(M.Funcs[F].Name);
    const FunctionTypes *FT = R.typesOf(F);
    if (TIt == Truth.Funcs.end() || !FT || FT->CType == NoCType)
      continue;
    const FuncTruth &FTruth = TIt->second;
    const CType &Fn = R.Pool.get(FT->CType);

    for (size_t K = 0; K < FTruth.Params.size(); ++K) {
      CTypeId Inf = K < Fn.Params.size() ? Fn.Params[K] : NoCType;
      bool InfConst = K < Fn.ParamConst.size() && Fn.ParamConst[K];
      LatticeElem Lower = Lattice::Bottom, Upper = Lattice::Top;
      bool Ptr = false;
      auto InState =
          FT->FuncSketch.stateAt(std::vector<Label>{Label::in(unsigned(K))});
      if (InState) {
        const Sketch::Node &N = FT->FuncSketch.node(*InState);
        Lower = N.Lower;
        Upper = N.Upper;
        Ptr = N.PointerLike || N.Children.count(Label::load()) ||
              N.Children.count(Label::store());
      }
      scoreSlot(S, R.Pool, Inf, Lower, Upper, Ptr, InfConst, Truth.Pool,
                FTruth.Params[K].Type, FTruth.Params[K].IsConstPtr);
    }
    if (FTruth.HasRet) {
      LatticeElem Lower = Lattice::Bottom, Upper = Lattice::Top;
      bool Ptr = false;
      auto OutState =
          FT->FuncSketch.stateAt(std::vector<Label>{Label::out()});
      if (OutState) {
        const Sketch::Node &N = FT->FuncSketch.node(*OutState);
        Lower = N.Lower;
        Upper = N.Upper;
        Ptr = N.PointerLike || N.Children.count(Label::load()) ||
              N.Children.count(Label::store());
      }
      scoreSlot(S, R.Pool, Fn.Return, Lower, Upper, Ptr, false, Truth.Pool,
                FTruth.Ret, false);
    }
  }
  return S;
}

MetricSummary Evaluator::scoreBaseline(const Module &M,
                                       const BaselineResult &R,
                                       const GroundTruth &Truth) const {
  MetricSummary S;
  for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
    auto TIt = Truth.Funcs.find(M.Funcs[F].Name);
    auto RIt = R.Funcs.find(F);
    if (TIt == Truth.Funcs.end() || RIt == R.Funcs.end())
      continue;
    const FuncTruth &FTruth = TIt->second;
    const BaselineFunc &BF = RIt->second;

    for (size_t K = 0; K < FTruth.Params.size(); ++K) {
      BaselineSlot Slot =
          K < BF.Params.size() ? BF.Params[K] : BaselineSlot{};
      scoreSlot(S, R.Pool, Slot.Type, Slot.Lower, Slot.Upper, Slot.Pointer,
                Slot.IsConst, Truth.Pool, FTruth.Params[K].Type,
                FTruth.Params[K].IsConstPtr);
    }
    if (FTruth.HasRet)
      scoreSlot(S, R.Pool, BF.Ret.Type, BF.Ret.Lower, BF.Ret.Upper,
                BF.Ret.Pointer, false, Truth.Pool, FTruth.Ret, false);
  }
  return S;
}
