//===- Metrics.h - TIE-style evaluation metrics ---------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics of the paper's evaluation (§6.5, defined by Lee et al. and
/// reused by SecondWrite and the paper):
///
///  - distance: lattice distance (0..4) between the displayed type and the
///    declared type, with a recursive formula for pointers and structs;
///  - interval size: distance between the inferred upper and lower bounds
///    (0 = tight, 4 = no information);
///  - conservativeness: does [lower, upper] overapproximate the truth;
///  - multi-level pointer accuracy: fraction of declared pointer levels
///    recovered;
///  - const recall: recovered / declared `const` pointer parameters (§6.4).
///
/// One Evaluator instance scores one engine run against one ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_EVAL_METRICS_H
#define RETYPD_EVAL_METRICS_H

#include "baseline/Baselines.h"
#include "eval/GroundTruth.h"
#include "frontend/Pipeline.h"

#include <string>

namespace retypd {

/// Aggregated metric values over a set of typed slots.
struct MetricSummary {
  double SumDistance = 0;
  double SumInterval = 0;
  unsigned Conservative = 0;
  unsigned Slots = 0;
  double SumPtrAccuracy = 0;
  unsigned PtrSlots = 0;
  unsigned ConstTruth = 0;
  unsigned ConstFound = 0;

  double meanDistance() const { return Slots ? SumDistance / Slots : 0; }
  double meanInterval() const { return Slots ? SumInterval / Slots : 0; }
  double conservativeness() const {
    return Slots ? double(Conservative) / Slots : 1;
  }
  double pointerAccuracy() const {
    return PtrSlots ? SumPtrAccuracy / PtrSlots : 1;
  }
  double constRecall() const {
    return ConstTruth ? double(ConstFound) / ConstTruth : 1;
  }

  void merge(const MetricSummary &O);
};

/// Scores engines against ground truth.
class Evaluator {
public:
  Evaluator(const Lattice &Lat) : Lat(Lat) {}

  /// Recursive TIE-style type distance in [0, 4].
  double typeDistance(const CTypePool &PA, CTypeId A, const CTypePool &PB,
                      CTypeId B, unsigned Depth = 4) const;

  /// Lattice-interval size in [0, 4].
  double intervalSize(LatticeElem Lower, LatticeElem Upper) const;

  /// Scores a Retypd TypeReport for the functions present in \p Truth.
  MetricSummary scoreRetypd(const Module &M, const TypeReport &R,
                            const GroundTruth &Truth) const;

  /// Scores a baseline result.
  MetricSummary scoreBaseline(const Module &M, const BaselineResult &R,
                              const GroundTruth &Truth) const;

private:
  /// Per-slot scoring shared by both adapters.
  void scoreSlot(MetricSummary &S, const CTypePool &InfPool, CTypeId Inf,
                 LatticeElem Lower, LatticeElem Upper, bool InfPointer,
                 bool InfConst, const CTypePool &TruthPool, CTypeId Truth,
                 bool TruthConst) const;

  /// Scalar lattice element approximating a C type (for conservativeness).
  LatticeElem elemFor(const CTypePool &P, CTypeId T) const;

  /// Number of pointer levels of a type (int** = 2).
  static unsigned pointerLevels(const CTypePool &P, CTypeId T,
                                unsigned Depth = 8);

  const Lattice &Lat;
};

} // namespace retypd

#endif // RETYPD_EVAL_METRICS_H
