//===- AnalysisOptions.h - Options shared by Session and Pipeline -*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis knobs common to the resident engine (`SessionOptions`,
/// frontend/Session.h) and the one-shot batch facade (`PipelineOptions`,
/// frontend/Pipeline.h). Both embed this struct by inheritance, so a new
/// shared option is added exactly once — the two option sets used to
/// mirror each other field by field, and knobs kept drifting apart.
/// `Pipeline::run` forwards the whole base with one slice-assign.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_FRONTEND_ANALYSISOPTIONS_H
#define RETYPD_FRONTEND_ANALYSISOPTIONS_H

#include "core/BackendKind.h"
#include "core/Simplifier.h"
#include "core/Verifier.h"
#include "ctypes/Conversion.h"

#include <string>

namespace retypd {

/// Analysis configuration shared by SessionOptions and PipelineOptions.
struct AnalysisOptions {
  /// Apply Algorithm F.3 (specialize formals to their observed uses).
  bool RefineParameters = true;
  /// Total executors for the readiness-scheduled parallel stages. 1 = run
  /// inline on the calling thread (same code path, so results are
  /// identical); 0 = one per hardware thread.
  unsigned Jobs = 1;
  /// Tiny-SCC batching threshold for the readiness scheduler: ready SCCs
  /// whose constraint count is below this are grouped into one pool work
  /// unit instead of dispatched individually, amortizing submit/wakeup
  /// overhead in the many-tiny-SCCs common case. 0 disables batching
  /// (every SCC is its own work unit). Results are byte-identical at any
  /// setting — batching only changes work-unit granularity.
  unsigned TinySccConstraints = 64;
  /// Directory of a durable multi-process artifact store (store/Store.h)
  /// to open behind the run's summary cache. Empty = none. Open/flush
  /// failures are reported via TypeReport::StoreError /
  /// AnalysisSession::storeError(); the run completes either way.
  std::string StoreDir;
  /// Formation-rule verification level (core/Verifier.h). Off adds zero
  /// work to the pipeline (EventCounters::VerifierChecks stays 0). Phase
  /// verifies freshly committed artifacts at the sequence-ordered commit
  /// points; Full additionally verifies artifacts replayed from the
  /// summary cache and the durable store. Findings are collected in
  /// TypeReport::VerifyErrors — the run always completes.
  VerifyLevel Verify = VerifyLevel::Off;
  /// Which solver backend (core/SolverBackend.h) runs phase 1 and
  /// phase 2: the paper's saturation pipeline, or BinSub-style algebraic
  /// subtyping. Cache and store artifacts are keyed by this, so switching
  /// backends never replays the other backend's results.
  BackendKind Backend = BackendKind::Retypd;
  ConversionOptions Conversion;
  SimplifyOptions Simplify;
};

} // namespace retypd

#endif // RETYPD_FRONTEND_ANALYSISOPTIONS_H
