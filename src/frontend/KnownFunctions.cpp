//===- KnownFunctions.cpp - Pre-computed library schemes -------------------===//

#include "frontend/KnownFunctions.h"

#include <cassert>

using namespace retypd;

namespace {

/// Small helper to assemble a scheme for one external.
class SchemeBuilder {
public:
  SchemeBuilder(SymbolTable &Syms, const Lattice &Lat,
                const std::string &Name)
      : Lat(Lat) {
    S.ProcVar = TypeVariable::var(Syms.intern(Name));
  }

  DerivedTypeVariable in(unsigned K, const std::vector<Label> &More = {}) {
    std::vector<Label> W{Label::in(K)};
    W.insert(W.end(), More.begin(), More.end());
    return DerivedTypeVariable(S.ProcVar, std::move(W));
  }
  DerivedTypeVariable out(const std::vector<Label> &More = {}) {
    std::vector<Label> W{Label::out()};
    W.insert(W.end(), More.begin(), More.end());
    return DerivedTypeVariable(S.ProcVar, std::move(W));
  }
  /// Marks parameter K as a string: bounded by `str` and readable.
  void strParam(unsigned K) {
    sub(in(K), this->k("str"));
    var(in(K, {Label::load(), Label::field(8, 0)}));
    sub(in(K, {Label::load(), Label::field(8, 0)}), this->k("char"));
  }

  DerivedTypeVariable k(const char *Name) {
    auto E = Lat.lookup(Name);
    assert(E && "unknown lattice constant in known-function table");
    return DerivedTypeVariable(TypeVariable::constant(*E));
  }

  void sub(DerivedTypeVariable A, DerivedTypeVariable B) {
    S.Constraints.addSubtype(std::move(A), std::move(B));
  }
  void var(DerivedTypeVariable V) { S.Constraints.addVar(std::move(V)); }

  TypeScheme take() { return std::move(S); }

private:
  const Lattice &Lat;
  TypeScheme S;
};

} // namespace

void retypd::registerKnownFunctions(
    Module &M, SymbolTable &Syms, const Lattice &Lat,
    std::unordered_map<uint32_t, TypeScheme> &Schemes) {
  for (uint32_t FId = 0; FId < M.Funcs.size(); ++FId) {
    Function &F = M.Funcs[FId];
    if (!F.IsExternal)
      continue;
    SchemeBuilder B(Syms, Lat, F.Name);
    const std::string &N = F.Name;

    if (N == "malloc" || N == "calloc") {
      // ∀τ. size_t → τ* — the return stays free, so every callsite gets an
      // independent pointee type (§2.2).
      F.NumStackParams = N == "calloc" ? 2 : 1;
      F.ReturnsValue = true;
      B.sub(B.in(0), B.k("size_t"));
      if (N == "calloc")
        B.sub(B.in(1), B.k("size_t"));
    } else if (N == "free") {
      // ∀τ. τ* → void: the parameter is an (unconstrained) pointer.
      F.NumStackParams = 1;
      F.ReturnsValue = false;
      B.var(B.in(0, {Label::load(), Label::field(8, 0)}));
    } else if (N == "memcpy") {
      // ∀α,β. (β <= α) ⇒ α* × β* × size_t → α* (§2.2).
      F.NumStackParams = 3;
      F.ReturnsValue = true;
      B.sub(B.in(1, {Label::load(), Label::field(8, 0)}),
            B.in(0, {Label::store(), Label::field(8, 0)}));
      B.sub(B.in(2), B.k("size_t"));
      B.sub(B.in(0), B.out());
    } else if (N == "memset") {
      F.NumStackParams = 3;
      F.ReturnsValue = true;
      B.var(B.in(0, {Label::store(), Label::field(8, 0)}));
      B.sub(B.in(1), B.k("int"));
      B.sub(B.in(2), B.k("size_t"));
      B.sub(B.in(0), B.out());
    } else if (N == "strlen") {
      F.NumStackParams = 1;
      F.ReturnsValue = true;
      B.strParam(0);
      B.sub(B.k("size_t"), B.out());
    } else if (N == "atoi") {
      F.NumStackParams = 1;
      F.ReturnsValue = true;
      B.strParam(0);
      B.sub(B.k("int"), B.out());
    } else if (N == "getenv") {
      F.NumStackParams = 1;
      F.ReturnsValue = true;
      B.strParam(0);
      B.sub(B.k("str"), B.out());
    } else if (N == "open") {
      F.NumStackParams = 2;
      F.ReturnsValue = true;
      B.strParam(0);
      B.sub(B.in(1), B.k("int"));
      B.sub(B.k("#FileDescriptor"), B.out());
    } else if (N == "close") {
      F.NumStackParams = 1;
      F.ReturnsValue = true;
      B.sub(B.in(0), B.k("#FileDescriptor"));
      B.sub(B.in(0), B.k("int"));
      B.sub(B.k("#SuccessZ"), B.out());
    } else if (N == "read" || N == "write") {
      F.NumStackParams = 3;
      F.ReturnsValue = true;
      B.sub(B.in(0), B.k("#FileDescriptor"));
      if (N == "read")
        B.var(B.in(1, {Label::store(), Label::field(8, 0)}));
      else
        B.var(B.in(1, {Label::load(), Label::field(8, 0)}));
      B.sub(B.in(2), B.k("size_t"));
      B.sub(B.k("int"), B.out());
    } else if (N == "socket") {
      F.NumStackParams = 3;
      F.ReturnsValue = true;
      for (unsigned K = 0; K < 3; ++K)
        B.sub(B.in(K), B.k("int"));
      B.sub(B.k("#SocketDescriptor"), B.out());
    } else if (N == "signal") {
      F.NumStackParams = 2;
      F.ReturnsValue = true;
      B.sub(B.in(0), B.k("#signal-number"));
      B.sub(B.in(0), B.k("int"));
    } else if (N == "fopen") {
      F.NumStackParams = 2;
      F.ReturnsValue = true;
      B.strParam(0);
      B.strParam(1);
      B.sub(B.k("FILE"), B.out({Label::load(), Label::field(32, 0)}));
    } else if (N == "fclose") {
      F.NumStackParams = 1;
      F.ReturnsValue = true;
      B.sub(B.in(0, {Label::load(), Label::field(32, 0)}), B.k("FILE"));
      B.sub(B.k("#SuccessZ"), B.out());
    } else {
      continue; // unknown external: interface must be set by the caller
    }
    Schemes.emplace(FId, B.take());
  }
}
