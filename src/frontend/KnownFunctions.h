//===- KnownFunctions.h - Pre-computed library schemes --------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pre-computed type schemes for externally linked functions (paper §4.2:
/// "pre-computed type schemes for externally linked functions may be
/// inserted at this stage"). Polymorphic signatures fall out naturally:
/// malloc's scheme constrains only its size parameter, so each callsite's
/// instantiation gets an independent return type — ∀τ. size_t → τ*.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_FRONTEND_KNOWNFUNCTIONS_H
#define RETYPD_FRONTEND_KNOWNFUNCTIONS_H

#include "core/ConstraintSet.h"
#include "mir/MIR.h"

#include <unordered_map>

namespace retypd {

/// For every external function of \p M with a known name, fills in its
/// interface (parameter count, return flag) and inserts its type scheme
/// into \p Schemes (keyed by function id).
///
/// Known functions: malloc, calloc, free, memcpy, memset, strlen, atoi,
/// getenv, open, close, read, write, socket, signal, fopen, fclose.
void registerKnownFunctions(Module &M, SymbolTable &Syms, const Lattice &Lat,
                            std::unordered_map<uint32_t, TypeScheme> &Schemes);

} // namespace retypd

#endif // RETYPD_FRONTEND_KNOWNFUNCTIONS_H
