//===- Pipeline.cpp - The end-to-end Retypd pipeline ------------------------===//

#include "frontend/Pipeline.h"

#include "absint/ConstraintGen.h"
#include "analysis/CallGraph.h"
#include "analysis/InterfaceRecovery.h"
#include "frontend/KnownFunctions.h"

#include <algorithm>

using namespace retypd;

TypeReport Pipeline::run(Module &M) {
  TypeReport Report;
  Report.Syms = std::make_shared<SymbolTable>();
  SymbolTable &Syms = *Report.Syms;

  // ---- Phase 0: IR-level interface recovery + library summaries ----
  recoverInterfaces(M);
  std::unordered_map<uint32_t, TypeScheme> Schemes;
  registerKnownFunctions(M, Syms, Lat, Schemes);

  CallGraph CG(M);
  ConstraintGenerator Gen(Syms, Lat, M);
  Simplifier Simp(Syms, Lat, Opts.Simplify);

  // Cached per-SCC combined constraint sets for the solving phase.
  std::vector<ConstraintSet> SccConstraints(CG.sccs().size());
  std::vector<std::unordered_set<TypeVariable>> SccInteresting(
      CG.sccs().size());

  // ---- Phase 1: bottom-up scheme inference (Algorithm F.1) ----
  for (uint32_t S : CG.bottomUp()) {
    const std::vector<uint32_t> &Members = CG.sccs()[S];
    std::set<uint32_t> Mates(Members.begin(), Members.end());

    ConstraintSet Combined;
    std::unordered_set<TypeVariable> Interesting;
    for (uint32_t F : Members) {
      if (M.Funcs[F].IsExternal)
        continue;
      GenResult R = Gen.generate(F, Schemes, Mates);
      Combined.merge(R.C);
      Interesting.insert(R.Interesting.begin(), R.Interesting.end());
    }
    Report.ConstraintsGenerated += Combined.size();

    for (uint32_t F : Members) {
      if (M.Funcs[F].IsExternal)
        continue;
      // The member's scheme keeps its SCC-mates and globals interesting.
      std::unordered_set<TypeVariable> Keep = Interesting;
      for (uint32_t Mate : Members)
        if (Mate != F)
          Keep.insert(Gen.procVar(Mate));
      TypeScheme Scheme = Simp.simplify(Combined, Gen.procVar(F), Keep);
      Schemes[F] = Scheme;
      FunctionTypes &FT = Report.Funcs[F];
      FT.Scheme = std::move(Scheme);
      FT.NumParams =
          M.Funcs[F].NumStackParams +
          static_cast<unsigned>(M.Funcs[F].RegParams.size());
    }
    SccConstraints[S] = std::move(Combined);
    SccInteresting[S] = std::move(Interesting);
  }

  // ---- Phase 2: top-down sketch solving (Algorithm F.2) ----
  SketchSolver Solver(Lat);
  // Join of actual-in/out sketches observed at callsites, per callee
  // (Algorithm F.3 accumulators).
  std::map<uint32_t, std::vector<Sketch>> ActualSketches;

  for (uint32_t S : CG.topDown()) {
    const std::vector<uint32_t> &Members = CG.sccs()[S];
    const ConstraintSet &C = SccConstraints[S];
    if (C.empty())
      continue;

    // Solve for the member procedure variables and for every callsite
    // variable (needed for parameter refinement of callees).
    std::vector<TypeVariable> Wanted;
    std::vector<std::pair<uint32_t, TypeVariable>> CallsiteVars;
    for (uint32_t F : Members) {
      if (M.Funcs[F].IsExternal)
        continue;
      Wanted.push_back(Gen.procVar(F));
      for (uint32_t Idx = 0; Idx < M.Funcs[F].Body.size(); ++Idx) {
        const Instr &I = M.Funcs[F].Body[Idx];
        if (I.Op != Opcode::Call || I.Target >= M.Funcs.size())
          continue;
        if (std::find(Members.begin(), Members.end(), I.Target) !=
            Members.end())
          continue;
        SymbolId Sym;
        std::string Name = M.Funcs[F].Name + "!" +
                           M.Funcs[I.Target].Name + "@" +
                           std::to_string(Idx);
        if (!Syms.lookup(Name, Sym))
          continue;
        TypeVariable V = TypeVariable::var(Sym);
        Wanted.push_back(V);
        CallsiteVars.push_back({I.Target, V});
      }
    }

    SketchSolution Sol = Solver.solve(C, Wanted);

    for (uint32_t F : Members) {
      if (M.Funcs[F].IsExternal)
        continue;
      Sketch Sk = Sol.sketchFor(Gen.procVar(F));

      // ---- Algorithm F.3: refine formals by observed actuals ----
      if (Opts.RefineParameters) {
        auto It = ActualSketches.find(F);
        if (It != ActualSketches.end() && !It->second.empty()) {
          const FunctionTypes &FT = Report.Funcs[F];
          for (unsigned K = 0; K < FT.NumParams; ++K) {
            std::optional<Sketch> Acc;
            for (const Sketch &CallSk : It->second) {
              auto ActualIn = CallSk.subsketch(Label::in(K));
              if (!ActualIn)
                continue;
              Acc = Acc ? Sketch::join(*Acc, *ActualIn, Lat)
                        : std::move(*ActualIn);
            }
            if (!Acc)
              continue;
            auto FormalIn = Sk.subsketch(Label::in(K));
            Sketch Refined = FormalIn ? Sketch::meet(*FormalIn, *Acc, Lat)
                                      : std::move(*Acc);
            Sk = Sk.withChild(Label::in(K), Refined);
          }
          // Outputs: the capabilities every caller exercises on the
          // returned value specialize the (possibly fully polymorphic)
          // return — how a malloc wrapper's ∀τ.τ* becomes a visible
          // pointer (Example 4.3).
          if (M.Funcs[F].ReturnsValue) {
            std::optional<Sketch> AccOut;
            for (const Sketch &CallSk : It->second) {
              auto ActualOut = CallSk.subsketch(Label::out());
              if (!ActualOut)
                continue;
              AccOut = AccOut ? Sketch::join(*AccOut, *ActualOut, Lat)
                              : std::move(*ActualOut);
            }
            if (AccOut) {
              auto FormalOut = Sk.subsketch(Label::out());
              Sketch Refined = FormalOut
                                   ? Sketch::meet(*FormalOut, *AccOut, Lat)
                                   : std::move(*AccOut);
              Sk = Sk.withChild(Label::out(), Refined);
            }
          }
        }
      }

      Report.Funcs[F].FuncSketch = std::move(Sk);
    }

    // Record callsite sketches for later (deeper) SCCs.
    for (const auto &[Callee, Var] : CallsiteVars)
      ActualSketches[Callee].push_back(Sol.sketchFor(Var));
  }

  // ---- Phase 3: C type conversion (§4.3) ----
  CTypeConverter Conv(Report.Pool, Lat, Opts.Conversion);
  for (auto &[F, FT] : Report.Funcs)
    FT.CType = Conv.convertFunction(FT.FuncSketch);

  return Report;
}
