//===- Pipeline.cpp - One-shot batch facade over AnalysisSession ----------===//

#include "frontend/Pipeline.h"

using namespace retypd;

TypeReport Pipeline::run(Module &M) {
  SessionOptions SOpts;
  // Every shared knob rides the AnalysisOptions base in one assignment —
  // new shared options need no facade plumbing.
  static_cast<AnalysisOptions &>(SOpts) = Opts;
  // Match the historical batch behavior exactly: no memoization at all
  // unless the caller supplied a cache (keeps cache hit/miss counters and
  // GoldenTest's warm-run assertions meaningful).
  SOpts.UseSummaryCache = Opts.Cache != nullptr;
  SOpts.ExternalCache = Opts.Cache;
  // One-shot: skip the incremental bookkeeping (body/scheme snapshots)
  // that only a second analyze() on the same session could use.
  SOpts.KeepHistory = false;

  AnalysisSession Session(Lat, SOpts);
  Session.loadModule(std::move(M));
  Session.analyze();
  // Hand the interface-recovered module back to the caller (run() has
  // always mutated M in place).
  M = Session.takeModule();
  return Session.takeReport();
}
