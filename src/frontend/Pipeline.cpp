//===- Pipeline.cpp - The end-to-end Retypd pipeline ------------------------===//
//
// The solving engine runs as a wavefront over the call-graph SCC
// condensation. Work that mutates shared state (constraint generation,
// scheme/sketch commits) stays on the calling thread in a fixed SCC order;
// the expensive pure work (simplification with saturation, sketch solving)
// fans out onto a work-stealing pool and joins at a per-wave barrier.
// `Jobs == 1` executes the identical code path inline, which together with
// procedure-scoped existential names makes the output byte-identical for
// every jobs setting — the property GoldenTest locks down.
//
//===----------------------------------------------------------------------===//

#include "frontend/Pipeline.h"

#include "absint/ConstraintGen.h"
#include "analysis/CallGraph.h"
#include "analysis/InterfaceRecovery.h"
#include "frontend/KnownFunctions.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace retypd;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// Per-SCC unit of phase-1 work: generated on the main thread, simplified
/// on the pool, committed on the main thread.
struct SccSummaryWork {
  uint32_t Scc = 0;
  std::vector<uint32_t> Members; ///< non-external, module order
  ConstraintSet Combined;
  std::unordered_set<TypeVariable> Interesting;
  /// One scheme per member, filled by the worker.
  std::vector<TypeScheme> Schemes;
};

/// Per-SCC unit of phase-2 work.
struct SccSolveWork {
  uint32_t Scc = 0;
  std::vector<uint32_t> Members;
  std::vector<TypeVariable> Wanted;
  std::vector<std::pair<uint32_t, TypeVariable>> CallsiteVars;
  SketchSolution Sol;
};

} // namespace

TypeReport Pipeline::run(Module &M) {
  TypeReport Report;
  Report.Syms = std::make_shared<SymbolTable>();
  SymbolTable &Syms = *Report.Syms;

  unsigned Jobs = Opts.Jobs;
  if (Jobs == 0)
    Jobs = std::max(1u, std::thread::hardware_concurrency());
  Report.Stats.JobsUsed = Jobs;
  ThreadPool Pool(Jobs > 1 ? Jobs - 1 : 0);

  // ---- Phase 0: IR-level interface recovery + library summaries ----
  recoverInterfaces(M);
  std::unordered_map<uint32_t, TypeScheme> Schemes;
  registerKnownFunctions(M, Syms, Lat, Schemes);

  CallGraph CG(M);
  ConstraintGenerator Gen(Syms, Lat, M);
  Simplifier Simp(Syms, Lat, Opts.Simplify);

  Report.Stats.SccCount = CG.sccs().size();
  Report.Stats.WaveCount = CG.bottomUpWaves().size();
  for (const auto &W : CG.bottomUpWaves())
    Report.Stats.WidestWave = std::max(Report.Stats.WidestWave, W.size());

  // Cached per-SCC combined constraint sets for the solving phase.
  std::vector<ConstraintSet> SccConstraints(CG.sccs().size());

  const uint64_t Hits0 = Opts.Cache ? Opts.Cache->hits() : 0;
  const uint64_t Misses0 = Opts.Cache ? Opts.Cache->misses() : 0;

  // ---- Phase 1: bottom-up scheme inference (Algorithm F.1) ----
  // Waves of independent SCCs: generate sequentially, simplify in
  // parallel, commit sequentially.
  for (const std::vector<uint32_t> &Wave : CG.bottomUpWaves()) {
    std::vector<SccSummaryWork> Work;
    Work.reserve(Wave.size());

    {
      Clock::time_point T0 = Clock::now();
      ScopedPhaseTimer Timer("pipeline.generate");
      for (uint32_t S : Wave) {
        const std::vector<uint32_t> &Members = CG.sccs()[S];
        std::set<uint32_t> Mates(Members.begin(), Members.end());

        SccSummaryWork W;
        W.Scc = S;
        for (uint32_t F : Members) {
          if (M.Funcs[F].IsExternal)
            continue;
          W.Members.push_back(F);
          GenResult R = Gen.generate(F, Schemes, Mates);
          W.Combined.merge(R.C);
          W.Interesting.insert(R.Interesting.begin(), R.Interesting.end());
        }
        Report.ConstraintsGenerated += W.Combined.size();
        if (!W.Members.empty())
          Work.push_back(std::move(W));
      }
      Report.Stats.GenerateSecs += secondsSince(T0);
    }

    {
      Clock::time_point T0 = Clock::now();
      ScopedPhaseTimer Timer("pipeline.simplify");
      for (SccSummaryWork &W : Work) {
        Pool.submit([&] {
          const std::vector<uint32_t> &Members = CG.sccs()[W.Scc];
          // One canonical rendering per SCC keys every member's cache
          // probe (rendering dominates key computation).
          std::string CanonText;
          if (Opts.Cache)
            CanonText = W.Combined.str(Syms, Lat);
          W.Schemes.resize(W.Members.size());
          for (size_t I = 0; I < W.Members.size(); ++I) {
            uint32_t F = W.Members[I];
            // The member's scheme keeps its SCC-mates and globals
            // interesting.
            std::unordered_set<TypeVariable> Keep = W.Interesting;
            for (uint32_t Mate : Members)
              if (Mate != F)
                Keep.insert(Gen.procVar(Mate));
            W.Schemes[I] = summarize(W.Combined, CanonText, Gen.procVar(F),
                                     Keep, Simp, Syms);
          }
        });
      }
      Pool.waitAll();
      Report.Stats.SimplifySecs += secondsSince(T0);
    }

    // Commit in wave order (deterministic regardless of task scheduling).
    for (SccSummaryWork &W : Work) {
      for (size_t I = 0; I < W.Members.size(); ++I) {
        uint32_t F = W.Members[I];
        Schemes[F] = W.Schemes[I];
        FunctionTypes &FT = Report.Funcs[F];
        FT.Scheme = std::move(W.Schemes[I]);
        FT.NumParams =
            M.Funcs[F].NumStackParams +
            static_cast<unsigned>(M.Funcs[F].RegParams.size());
      }
      SccConstraints[W.Scc] = std::move(W.Combined);
    }
  }

  if (Opts.Cache) {
    Report.Stats.CacheHits = Opts.Cache->hits() - Hits0;
    Report.Stats.CacheMisses = Opts.Cache->misses() - Misses0;
  }

  // ---- Phase 2: top-down sketch solving (Algorithm F.2) ----
  SketchSolver Solver(Lat);
  // Join of actual-in/out sketches observed at callsites, per callee
  // (Algorithm F.3 accumulators).
  std::map<uint32_t, std::vector<Sketch>> ActualSketches;

  // Callers always sit in a strictly earlier top-down wave than their
  // callees, so by the time a wave is solved every ActualSketches entry its
  // members need has been committed.
  for (const std::vector<uint32_t> &Wave : CG.topDownWaves()) {
    std::vector<SccSolveWork> Work;
    Work.reserve(Wave.size());

    for (uint32_t S : Wave) {
      const std::vector<uint32_t> &Members = CG.sccs()[S];
      const ConstraintSet &C = SccConstraints[S];
      if (C.empty())
        continue;

      SccSolveWork W;
      W.Scc = S;
      // Solve for the member procedure variables and for every callsite
      // variable (needed for parameter refinement of callees).
      for (uint32_t F : Members) {
        if (M.Funcs[F].IsExternal)
          continue;
        W.Members.push_back(F);
        W.Wanted.push_back(Gen.procVar(F));
        for (uint32_t Idx = 0; Idx < M.Funcs[F].Body.size(); ++Idx) {
          const Instr &I = M.Funcs[F].Body[Idx];
          if (I.Op != Opcode::Call || I.Target >= M.Funcs.size())
            continue;
          if (std::find(Members.begin(), Members.end(), I.Target) !=
              Members.end())
            continue;
          SymbolId Sym;
          std::string Name = M.Funcs[F].Name + "!" +
                             M.Funcs[I.Target].Name + "@" +
                             std::to_string(Idx);
          if (!Syms.lookup(Name, Sym))
            continue;
          TypeVariable V = TypeVariable::var(Sym);
          W.Wanted.push_back(V);
          W.CallsiteVars.push_back({I.Target, V});
        }
      }
      if (!W.Members.empty())
        Work.push_back(std::move(W));
    }

    {
      Clock::time_point T0 = Clock::now();
      ScopedPhaseTimer Timer("pipeline.solve");
      for (SccSolveWork &W : Work)
        Pool.submit(
            [&] { W.Sol = Solver.solve(SccConstraints[W.Scc], W.Wanted); });
      Pool.waitAll();
      Report.Stats.SolveSecs += secondsSince(T0);
    }

    // Commit: refinement + sketch assignment, in wave order.
    for (SccSolveWork &W : Work) {
      for (uint32_t F : W.Members) {
        Sketch Sk = W.Sol.sketchFor(Gen.procVar(F));

        // ---- Algorithm F.3: refine formals by observed actuals ----
        if (Opts.RefineParameters) {
          auto It = ActualSketches.find(F);
          if (It != ActualSketches.end() && !It->second.empty()) {
            const FunctionTypes &FT = Report.Funcs[F];
            for (unsigned K = 0; K < FT.NumParams; ++K) {
              std::optional<Sketch> Acc;
              for (const Sketch &CallSk : It->second) {
                auto ActualIn = CallSk.subsketch(Label::in(K));
                if (!ActualIn)
                  continue;
                Acc = Acc ? Sketch::join(*Acc, *ActualIn, Lat)
                          : std::move(*ActualIn);
              }
              if (!Acc)
                continue;
              auto FormalIn = Sk.subsketch(Label::in(K));
              Sketch Refined = FormalIn ? Sketch::meet(*FormalIn, *Acc, Lat)
                                        : std::move(*Acc);
              Sk = Sk.withChild(Label::in(K), Refined);
            }
            // Outputs: the capabilities every caller exercises on the
            // returned value specialize the (possibly fully polymorphic)
            // return — how a malloc wrapper's ∀τ.τ* becomes a visible
            // pointer (Example 4.3).
            if (M.Funcs[F].ReturnsValue) {
              std::optional<Sketch> AccOut;
              for (const Sketch &CallSk : It->second) {
                auto ActualOut = CallSk.subsketch(Label::out());
                if (!ActualOut)
                  continue;
                AccOut = AccOut ? Sketch::join(*AccOut, *ActualOut, Lat)
                                : std::move(*ActualOut);
              }
              if (AccOut) {
                auto FormalOut = Sk.subsketch(Label::out());
                Sketch Refined = FormalOut
                                     ? Sketch::meet(*FormalOut, *AccOut, Lat)
                                     : std::move(*AccOut);
                Sk = Sk.withChild(Label::out(), Refined);
              }
            }
          }
        }

        Report.Funcs[F].FuncSketch = std::move(Sk);
      }

      // Record callsite sketches for later (deeper) SCCs.
      for (const auto &[Callee, Var] : W.CallsiteVars)
        ActualSketches[Callee].push_back(W.Sol.sketchFor(Var));
    }
  }

  // ---- Phase 3: C type conversion (§4.3) ----
  {
    Clock::time_point T0 = Clock::now();
    ScopedPhaseTimer Timer("pipeline.convert");
    CTypeConverter Conv(Report.Pool, Lat, Opts.Conversion);
    for (auto &[F, FT] : Report.Funcs)
      FT.CType = Conv.convertFunction(FT.FuncSketch);
    Report.Stats.ConvertSecs += secondsSince(T0);
  }

  return Report;
}

TypeScheme
Pipeline::summarize(const ConstraintSet &Combined,
                    const std::string &CanonText, TypeVariable ProcVar,
                    const std::unordered_set<TypeVariable> &Keep,
                    Simplifier &Simp, SymbolTable &Syms) {
  SummaryKey Key;
  if (Opts.Cache) {
    std::vector<std::string> Names;
    Names.reserve(Keep.size());
    for (TypeVariable V : Keep)
      if (V.isVar())
        Names.push_back(Syms.name(V.symbol()));
    Key = SummaryCache::keyFor(CanonText, Syms.name(ProcVar.symbol()),
                               Names, Opts.Simplify);
    if (auto Hit = Opts.Cache->lookup(Key)) {
      if (auto Scheme = SummaryCache::deserialize(*Hit, Syms, Lat))
        return std::move(*Scheme);
      // A corrupt entry is a miss, and the recomputed scheme below
      // overwrites it.
      Opts.Cache->noteCorrupt(Key);
    }
  }

  TypeScheme Scheme = Simp.simplify(Combined, ProcVar, Keep);
  // Canonical constraint order: identical whether the scheme was computed
  // here or replayed from the cache (the cache stores canonical text).
  Scheme.Constraints = Scheme.Constraints.canonicalized(Syms, Lat);

  if (Opts.Cache)
    Opts.Cache->insert(Key, SummaryCache::serialize(Scheme, Syms, Lat));
  return Scheme;
}
