//===- Pipeline.h - One-shot batch facade over AnalysisSession -*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic batch entry point: machine-code module in, C types out.
/// Since the API redesign this is a thin facade over `AnalysisSession`
/// (frontend/Session.h), which owns the readiness-scheduled parallel
/// engine and additionally supports incremental re-analysis and
/// structured queries.
/// `Pipeline` remains the right tool for one-shot callers (benchmarks,
/// evaluation sweeps, tests) that want a `TypeReport` by value and no
/// resident state.
///
/// \code
///   Module M = ...;
///   Pipeline P(makeDefaultLattice());
///   TypeReport R = P.run(M);
///   R.prototypeOf(funcId, M); // "int close_last(const Struct_0 *)"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_FRONTEND_PIPELINE_H
#define RETYPD_FRONTEND_PIPELINE_H

#include "frontend/Session.h"

namespace retypd {

/// Pipeline configuration: the shared AnalysisOptions knobs
/// (frontend/AnalysisOptions.h) plus the one batch-only field. Note for
/// AnalysisOptions::StoreDir here: ignored when \p Cache is set — attach
/// a store to that cache directly.
struct PipelineOptions : AnalysisOptions {
  /// Optional content-addressed scheme cache (not owned). Shared across
  /// runs and across modules; thread safe.
  SummaryCache *Cache = nullptr;
};

/// Runs Retypd over modules, one shot at a time.
class Pipeline {
public:
  explicit Pipeline(const Lattice &Lat,
                    PipelineOptions Opts = PipelineOptions())
      : Lat(Lat), Opts(Opts) {}

  /// Runs inference. \p M is mutated: interfaces are recovered in place.
  TypeReport run(Module &M);

private:
  const Lattice &Lat;
  PipelineOptions Opts;
};

} // namespace retypd

#endif // RETYPD_FRONTEND_PIPELINE_H
