//===- Pipeline.h - The end-to-end Retypd pipeline ------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: machine-code module in, C types out.
///
///   1. interface recovery + known-function schemes (§4.1, §4.2);
///   2. bottom-up over call-graph SCCs: constraint generation (Appendix A)
///      and type-scheme simplification (§5, Algorithm F.1);
///   3. top-down: sketch solving (Algorithm F.2) with calling-context
///      parameter refinement (Algorithm F.3 / Example 4.3);
///   4. conversion to C types (§4.3).
///
/// \code
///   Module M = ...;
///   Pipeline P(makeDefaultLattice());
///   TypeReport R = P.run(M);
///   R.prototypeOf(funcId); // "int close_last(const Struct_0 *)"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_FRONTEND_PIPELINE_H
#define RETYPD_FRONTEND_PIPELINE_H

#include "core/Simplifier.h"
#include "core/Sketch.h"
#include "core/Solver.h"
#include "ctypes/Conversion.h"
#include "mir/MIR.h"

#include <map>
#include <memory>

namespace retypd {

/// Pipeline configuration.
struct PipelineOptions {
  /// Apply Algorithm F.3 (specialize formals to their observed uses).
  bool RefineParameters = true;
  ConversionOptions Conversion;
  SimplifyOptions Simplify;
};

/// Inference results for one function.
struct FunctionTypes {
  TypeScheme Scheme;   ///< simplified, most-general type scheme
  Sketch FuncSketch;   ///< solved (and possibly refined) sketch
  CTypeId CType = NoCType; ///< function type in TypeReport::Pool
  unsigned NumParams = 0;
};

/// Whole-module results.
struct TypeReport {
  std::shared_ptr<SymbolTable> Syms;
  CTypePool Pool;
  std::map<uint32_t, FunctionTypes> Funcs;

  // Simple counters for the scaling studies.
  size_t ConstraintsGenerated = 0;
  size_t SaturationEdges = 0;

  const FunctionTypes *typesOf(uint32_t FuncId) const {
    auto It = Funcs.find(FuncId);
    return It == Funcs.end() ? nullptr : &It->second;
  }

  std::string prototypeOf(uint32_t FuncId, const Module &M) const {
    const FunctionTypes *T = typesOf(FuncId);
    if (!T || T->CType == NoCType)
      return "<no type>";
    return Pool.prototype(T->CType, M.Funcs[FuncId].Name);
  }
};

/// Runs Retypd over modules.
class Pipeline {
public:
  explicit Pipeline(const Lattice &Lat,
                    PipelineOptions Opts = PipelineOptions())
      : Lat(Lat), Opts(Opts) {}

  /// Runs inference. \p M is mutated: interfaces are recovered in place.
  TypeReport run(Module &M);

private:
  const Lattice &Lat;
  PipelineOptions Opts;
};

} // namespace retypd

#endif // RETYPD_FRONTEND_PIPELINE_H
