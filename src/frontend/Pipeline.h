//===- Pipeline.h - One-shot batch facade over AnalysisSession -*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic batch entry point: machine-code module in, C types out.
/// Since the API redesign this is a thin facade over `AnalysisSession`
/// (frontend/Session.h), which owns the readiness-scheduled parallel
/// engine and additionally supports incremental re-analysis and
/// structured queries.
/// `Pipeline` remains the right tool for one-shot callers (benchmarks,
/// evaluation sweeps, tests) that want a `TypeReport` by value and no
/// resident state.
///
/// \code
///   Module M = ...;
///   Pipeline P(makeDefaultLattice());
///   TypeReport R = P.run(M);
///   R.prototypeOf(funcId, M); // "int close_last(const Struct_0 *)"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_FRONTEND_PIPELINE_H
#define RETYPD_FRONTEND_PIPELINE_H

#include "frontend/Session.h"

namespace retypd {

/// Pipeline configuration (the batch-facing subset of SessionOptions).
struct PipelineOptions {
  /// Apply Algorithm F.3 (specialize formals to their observed uses).
  bool RefineParameters = true;
  /// Total executors for the readiness-scheduled parallel stages. 1 = run
  /// inline on the calling thread (same code path, so results are
  /// identical); 0 = one per hardware thread.
  unsigned Jobs = 1;
  /// Tiny-SCC batching threshold (see SessionOptions::TinySccConstraints).
  /// 0 disables batching; results are byte-identical at any setting.
  unsigned TinySccConstraints = 64;
  /// Optional content-addressed scheme cache (not owned). Shared across
  /// runs and across modules; thread safe.
  SummaryCache *Cache = nullptr;
  /// Directory of a durable artifact store to open behind the run's
  /// cache (see SessionOptions::StoreDir). Ignored when \p Cache is set —
  /// attach a store to that cache directly. Open/flush failures are
  /// reported in TypeReport::StoreError (the run completes either way).
  std::string StoreDir;
  /// Formation-rule verification level (see SessionOptions::Verify).
  /// Findings land in TypeReport::VerifyErrors; the run always completes.
  VerifyLevel Verify = VerifyLevel::Off;
  ConversionOptions Conversion;
  SimplifyOptions Simplify;
};

/// Runs Retypd over modules, one shot at a time.
class Pipeline {
public:
  explicit Pipeline(const Lattice &Lat,
                    PipelineOptions Opts = PipelineOptions())
      : Lat(Lat), Opts(Opts) {}

  /// Runs inference. \p M is mutated: interfaces are recovered in place.
  TypeReport run(Module &M);

private:
  const Lattice &Lat;
  PipelineOptions Opts;
};

} // namespace retypd

#endif // RETYPD_FRONTEND_PIPELINE_H
