//===- Pipeline.h - The end-to-end Retypd pipeline ------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: machine-code module in, C types out.
///
///   1. interface recovery + known-function schemes (§4.1, §4.2);
///   2. bottom-up over call-graph SCCs: constraint generation (Appendix A)
///      and type-scheme simplification (§5, Algorithm F.1);
///   3. top-down: sketch solving (Algorithm F.2) with calling-context
///      parameter refinement (Algorithm F.3 / Example 4.3);
///   4. conversion to C types (§4.3).
///
/// Phases 2 and 3 run as wavefronts over the call-graph SCC condensation:
/// every SCC of one wave depends only on strictly earlier waves, so a
/// wave's simplifications (and sketch solves) are dispatched onto a
/// work-stealing thread pool and joined at a barrier, with results
/// committed in a fixed order. Constraint generation and all commits stay
/// on the calling thread in deterministic SCC order, and fresh existential
/// names are procedure-scoped, so the report is byte-identical for every
/// `Jobs` setting. An optional content-addressed SummaryCache skips
/// simplification for SCCs whose constraint sets were already summarized
/// (earlier runs, shared code).
///
/// \code
///   Module M = ...;
///   Pipeline P(makeDefaultLattice());
///   TypeReport R = P.run(M);
///   R.prototypeOf(funcId); // "int close_last(const Struct_0 *)"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_FRONTEND_PIPELINE_H
#define RETYPD_FRONTEND_PIPELINE_H

#include "core/Simplifier.h"
#include "core/Sketch.h"
#include "core/Solver.h"
#include "core/SummaryCache.h"
#include "ctypes/Conversion.h"
#include "mir/MIR.h"

#include <map>
#include <memory>

namespace retypd {

/// Pipeline configuration.
struct PipelineOptions {
  /// Apply Algorithm F.3 (specialize formals to their observed uses).
  bool RefineParameters = true;
  /// Total executors for the per-wave parallel stages. 1 = run inline on
  /// the calling thread (same code path, so results are identical); 0 =
  /// one per hardware thread.
  unsigned Jobs = 1;
  /// Optional content-addressed scheme cache (not owned). Shared across
  /// runs and across modules; thread safe.
  SummaryCache *Cache = nullptr;
  ConversionOptions Conversion;
  SimplifyOptions Simplify;
};

/// Wall-clock and cache counters for one run() call.
struct PipelineStats {
  double GenerateSecs = 0;  ///< constraint generation (sequential)
  double SimplifySecs = 0;  ///< scheme simplification (parallel wall time)
  double SolveSecs = 0;     ///< sketch solving (parallel wall time)
  double ConvertSecs = 0;   ///< C-type conversion (sequential)
  size_t SccCount = 0;
  size_t WaveCount = 0;
  size_t WidestWave = 0;
  unsigned JobsUsed = 1;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
};

/// Inference results for one function.
struct FunctionTypes {
  TypeScheme Scheme;   ///< simplified, most-general type scheme
  Sketch FuncSketch;   ///< solved (and possibly refined) sketch
  CTypeId CType = NoCType; ///< function type in TypeReport::Pool
  unsigned NumParams = 0;
};

/// Whole-module results.
struct TypeReport {
  std::shared_ptr<SymbolTable> Syms;
  CTypePool Pool;
  std::map<uint32_t, FunctionTypes> Funcs;

  // Simple counters for the scaling studies.
  size_t ConstraintsGenerated = 0;
  size_t SaturationEdges = 0;

  /// Per-phase timing and cache effectiveness for this run.
  PipelineStats Stats;

  const FunctionTypes *typesOf(uint32_t FuncId) const {
    auto It = Funcs.find(FuncId);
    return It == Funcs.end() ? nullptr : &It->second;
  }

  std::string prototypeOf(uint32_t FuncId, const Module &M) const {
    const FunctionTypes *T = typesOf(FuncId);
    if (!T || T->CType == NoCType)
      return "<no type>";
    return Pool.prototype(T->CType, M.Funcs[FuncId].Name);
  }
};

/// Runs Retypd over modules.
class Pipeline {
public:
  explicit Pipeline(const Lattice &Lat,
                    PipelineOptions Opts = PipelineOptions())
      : Lat(Lat), Opts(Opts) {}

  /// Runs inference. \p M is mutated: interfaces are recovered in place.
  TypeReport run(Module &M);

private:
  /// Simplifies one member's scheme, going through the summary cache when
  /// one is configured (\p CanonText is the SCC set's canonical rendering,
  /// empty when no cache is attached). Runs on pool workers; only touches
  /// thread-safe shared state (SymbolTable, SummaryCache).
  TypeScheme summarize(const ConstraintSet &Combined,
                       const std::string &CanonText, TypeVariable ProcVar,
                       const std::unordered_set<TypeVariable> &Keep,
                       Simplifier &Simp, SymbolTable &Syms);

  const Lattice &Lat;
  PipelineOptions Opts;
};

} // namespace retypd

#endif // RETYPD_FRONTEND_PIPELINE_H
