//===- ReportJson.cpp - Structured JSON rendering of TypeReports ----------===//

#include "frontend/ReportJson.h"

#include <cinttypes>
#include <cstdio>

using namespace retypd;

std::string retypd::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C); // UTF-8 passes through verbatim
      }
    }
  }
  return Out;
}

namespace {

std::string quoted(const std::string &S) {
  std::string Out = "\"";
  Out += jsonEscape(S);
  Out += '"';
  return Out;
}

std::string numField(const char *Name, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "\"%s\": %.6f", Name, V);
  return Buf;
}

} // namespace

std::string retypd::statsJson(const PipelineStats &S,
                              const std::string &ProfileJson) {
  std::string J = "{";
  J += "\"backend\": " + quoted(S.Backend) + ", ";
  J += numField("generate_secs", S.GenerateSecs) + ", ";
  J += numField("simplify_secs", S.SimplifySecs) + ", ";
  J += numField("solve_secs", S.SolveSecs) + ", ";
  J += numField("convert_secs", S.ConvertSecs) + ", ";
  J += "\"sccs\": " + std::to_string(S.SccCount) + ", ";
  J += "\"waves\": " + std::to_string(S.WaveCount) + ", ";
  J += "\"widest_wave\": " + std::to_string(S.WidestWave) + ", ";
  J += "\"jobs\": " + std::to_string(S.JobsUsed) + ", ";
  J += "\"cache_hits\": " + std::to_string(S.CacheHits) + ", ";
  J += "\"cache_misses\": " + std::to_string(S.CacheMisses) + ", ";
  J += "\"gen_cache_hits\": " + std::to_string(S.GenCacheHits) + ", ";
  J += "\"gen_cache_misses\": " + std::to_string(S.GenCacheMisses) + ", ";
  J += "\"store_hits\": " + std::to_string(S.StoreHits) + ", ";
  J += "\"store_appends\": " + std::to_string(S.StoreAppends) + ", ";
  J += "\"pool_bind_hits\": " + std::to_string(S.PoolBindHits) + ", ";
  J += std::string("\"incremental\": ") + (S.IncrementalRun ? "true" : "false") + ", ";
  J += "\"functions_dirty\": " + std::to_string(S.FunctionsDirty) + ", ";
  J += "\"sccs_simplified\": " + std::to_string(S.SccsSimplified) + ", ";
  J += "\"sccs_reused\": " + std::to_string(S.SccsReused) + ", ";
  J += "\"schemes_computed\": " + std::to_string(S.SchemesComputed) + ", ";
  J += "\"schemes_reused\": " + std::to_string(S.SchemesReused) + ", ";
  J += "\"sccs_solved\": " + std::to_string(S.SccsSolved) + ", ";
  J += "\"sccs_refined_only\": " + std::to_string(S.SccsRefinedOnly) + ", ";
  J += "\"sccs_solve_reused\": " + std::to_string(S.SccsSolveReused) + ", ";
  J += "\"sccs_scheduled\": " + std::to_string(S.SccsScheduled) + ", ";
  J += "\"batches_formed\": " + std::to_string(S.BatchesFormed) + ", ";
  J += "\"max_ready_queue\": " + std::to_string(S.MaxReadyQueue) + ", ";
  J += "\"commit_stalls\": " + std::to_string(S.CommitStalls);
  if (!ProfileJson.empty())
    J += ", \"profile\": " + ProfileJson;
  J += "}";
  return J;
}

std::string retypd::renderReportJson(const TypeReport &R, const Module &M,
                                     const Lattice &Lat,
                                     const ReportJsonOptions &Opts) {
  std::string J = "{\n";
  J += "  \"schema\": \"retypd-report-v1\",\n";

  size_t Externals = 0;
  for (const Function &F : M.Funcs)
    Externals += F.IsExternal;
  J += "  \"module\": {\"functions\": " + std::to_string(M.Funcs.size()) +
       ", \"externals\": " + std::to_string(Externals) +
       ", \"instructions\": " + std::to_string(M.instructionCount()) +
       ", \"globals\": " + std::to_string(M.Globals.size()) + "},\n";

  std::vector<CTypeId> Roots;
  for (const auto &[F, T] : R.Funcs)
    if (T.CType != NoCType)
      Roots.push_back(T.CType);
  J += "  \"struct_definitions\": " + quoted(R.Pool.structDefinitions(Roots)) +
       ",\n";

  J += "  \"functions\": [\n";
  for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
    const Function &Fn = M.Funcs[F];
    SessionQuery<std::string> Proto = R.prototype(F, M);
    J += "    {\"id\": " + std::to_string(F) + ", \"name\": " +
         quoted(Fn.Name) + ", \"external\": " +
         (Fn.IsExternal ? "true" : "false") + ", \"status\": " +
         quoted(typeQueryStatusName(Proto.Status));
    const FunctionTypes *T = R.typesOf(F);
    if (Proto)
      J += ", \"prototype\": " + quoted(*Proto);
    if (T)
      J += ", \"params\": " + std::to_string(T->NumParams);
    if (Opts.Schemes && T)
      J += ", \"scheme\": " + quoted(T->Scheme.str(*R.Syms, Lat));
    if (Opts.Sketches && T)
      J += ", \"sketch\": " + quoted(T->FuncSketch.str(Lat, Opts.SketchDepth));
    J += "}";
    J += F + 1 < M.Funcs.size() ? ",\n" : "\n";
  }
  J += "  ]";

  if (Opts.Stats) {
    J += ",\n  \"stats\": ";
    J += statsJson(R.Stats, Opts.ProfileJson);
  }
  J += "\n}\n";
  return J;
}
