//===- ReportJson.h - Structured JSON rendering of TypeReports -*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes `TypeReport` / `PipelineStats` to JSON, the machine-facing
/// counterpart of frontend/ReportPrinter.h. Embedders drive the engine
/// through `AnalysisSession` and ship this JSON across process boundaries;
/// `retypd-cli --format=json` prints it.
///
/// Schema (`"schema": "retypd-report-v1"`):
///
/// \code{.json}
/// {
///   "schema": "retypd-report-v1",
///   "module": { "functions": N, "externals": N, "instructions": N,
///               "globals": N },
///   "struct_definitions": "struct Struct_0 { ... };\n",
///   "functions": [
///     { "id": 1, "name": "close_last", "external": false,
///       "status": "ok",            // or "no-type-inferred"
///       "prototype": "int close_last(const Struct_0 *)",  // when ok
///       "params": 1,
///       "scheme": "...",           // with Schemes
///       "sketch": "..." }          // with Sketches
///   ],
///   "stats": { ... }               // with Stats (see statsJson)
/// }
/// \endcode
///
/// Functions appear in id (module) order, externals included, so the
/// array index is *not* the function id — use the "id" field.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_FRONTEND_REPORTJSON_H
#define RETYPD_FRONTEND_REPORTJSON_H

#include "frontend/Session.h"

#include <string>

namespace retypd {

/// What renderReportJson includes beyond prototypes and struct definitions.
struct ReportJsonOptions {
  bool Schemes = false;  ///< per-function simplified type schemes
  bool Sketches = false; ///< per-function solved sketches
  bool Stats = false;    ///< the run's PipelineStats (timings differ run to
                         ///< run, so identity-sensitive consumers leave
                         ///< this off)
  unsigned SketchDepth = 4;
  /// Pre-rendered per-SCC profile rows (trace::profileJson) appended as
  /// the "profile" member of the stats object. Empty = omitted. Implies
  /// nothing unless Stats is also set.
  std::string ProfileJson;
};

/// Renders the full report as a single JSON object (trailing newline
/// included). Deterministic for deterministic reports, except for the
/// "stats" member when enabled.
std::string renderReportJson(const TypeReport &R, const Module &M,
                             const Lattice &Lat,
                             const ReportJsonOptions &Opts = ReportJsonOptions());

/// Renders one PipelineStats as a JSON object (no trailing newline); the
/// "stats" member of renderReportJson, also reused by the benchmarks.
/// \p ProfileJson, when non-empty, is appended verbatim as a "profile"
/// member (a pre-rendered trace::profileJson array).
std::string statsJson(const PipelineStats &S,
                      const std::string &ProfileJson = std::string());

/// Escapes a string for inclusion in JSON (quotes not included).
std::string jsonEscape(const std::string &S);

} // namespace retypd

#endif // RETYPD_FRONTEND_REPORTJSON_H
