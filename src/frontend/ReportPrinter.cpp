//===- ReportPrinter.cpp - Textual rendering of TypeReports ---------------===//

#include "frontend/ReportPrinter.h"

#include <vector>

using namespace retypd;

std::string retypd::renderReport(const TypeReport &R, const Module &M,
                                 const Lattice &Lat,
                                 const ReportPrintOptions &Opts) {
  std::string S;

  std::vector<CTypeId> Roots;
  for (const auto &[F, T] : R.Funcs)
    if (T.CType != NoCType)
      Roots.push_back(T.CType);
  std::string Defs = R.Pool.structDefinitions(Roots);
  if (!Defs.empty()) {
    S += Defs;
    S += '\n';
  }

  for (const auto &[F, T] : R.Funcs) {
    if (M.Funcs[F].IsExternal)
      continue;
    S += R.prototypeOf(F, M);
    S += ";\n";
    if (Opts.Schemes) {
      S += "/* scheme:\n";
      S += T.Scheme.str(*R.Syms, Lat);
      S += "\n*/\n";
    }
    if (Opts.Sketches) {
      S += "/* sketch:\n";
      S += T.FuncSketch.str(Lat, 4);
      S += "*/\n";
    }
  }
  return S;
}
