//===- ReportPrinter.h - Textual rendering of TypeReports -----*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a TypeReport as the canonical C-header-style text that
/// retypd-cli prints and the golden-corpus tests diff against. Keeping one
/// renderer guarantees that "byte-identical reports across --jobs
/// settings" means the same bytes everywhere.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_FRONTEND_REPORTPRINTER_H
#define RETYPD_FRONTEND_REPORTPRINTER_H

#include "frontend/Session.h"

#include <string>

namespace retypd {

/// What renderReport includes beyond struct definitions + prototypes.
struct ReportPrintOptions {
  bool Schemes = false;  ///< per-function simplified type schemes
  bool Sketches = false; ///< per-function solved sketches
};

/// Renders struct definitions followed by one prototype per non-external
/// function (module order), optionally with schemes/sketches.
std::string renderReport(const TypeReport &R, const Module &M,
                         const Lattice &Lat,
                         const ReportPrintOptions &Opts = ReportPrintOptions());

} // namespace retypd

#endif // RETYPD_FRONTEND_REPORTPRINTER_H
