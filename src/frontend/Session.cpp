//===- Session.cpp - Long-lived incremental analysis engine ---------------===//
//
// The resident engine. One analyze() call runs both inference phases under
// a dependency-counted readiness scheduler (no wave barriers): every SCC
// owns a commit slot at its fixed position in the bottom-up (phase 1) or
// top-down (phase 2) sequence, becomes ready the moment its last
// dependency SCC commits, and is then prepped by the main thread —
// generation is not thread-safe, so it stays there — and dispatched to the
// thread pool for simplification/solving, with ready tiny SCCs batched
// into shared work units to amortize dispatch. Workers publish results
// into their own slots; the main thread commits slots strictly in sequence
// order, which replays the exact sequential schedule and keeps reports
// byte-identical for every --jobs value. The previous run's per-SCC
// artifacts are consulted at prep:
//
//   phase 1: an SCC whose members' body hashes and whose callees' scheme
//     hashes are unchanged replays its schemes; a recomputed SCC whose
//     structural scheme hash comes out identical does not dirty its
//     callers. (Identity is 128-bit content hashing — support/Hash128.h —
//     not text comparison.)
//   phase 2: an SCC re-solves only if its constraints were regenerated;
//     it re-refines (replaying the raw solution) if only the incoming
//     callsite sketches changed; otherwise its final sketches replay.
//   phase 3: C-type conversion always re-runs (it is cheap and keeps
//     struct numbering identical to a from-scratch analysis).
//
// Byte-identity with a from-scratch run follows inductively over the
// commit sequence: generation is procedure-pure (fresh names are
// procedure/callsite-scoped), simplification and solving are deterministic
// functions of the constraint sequence, and every reused artifact was
// produced by an identical-input computation in an earlier run.
//
//===----------------------------------------------------------------------===//

#include "frontend/Session.h"

#include "absint/ConstraintGen.h"
#include "analysis/CallGraph.h"
#include "analysis/InterfaceRecovery.h"
#include "frontend/KnownFunctions.h"
#include "mir/AsmParser.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

using namespace retypd;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// Marker snapshot hash for externals without a known-function scheme.
/// Distinguishable from every real scheme hash (FNV-1a of a non-empty
/// stream never lands on a tiny constant).
constexpr Hash128 kNoSchemeHash{0x6e6f2d736368656dull, 0x1ull};

/// Renders the identity-relevant content of a function: everything that
/// feeds constraint generation (interface recovery included — it is a pure
/// function of the body). Call targets render by *name*, so the text is
/// stable across function-id shifts from insertions/removals elsewhere.
std::string renderBodyText(const Module &M, const Function &F) {
  std::string S = F.Name;
  S += F.IsExternal ? "\x1f""extern\n" : "\x1f""fn\n";
  for (const Instr &I : F.Body) {
    S += instrStr(M, F, I);
    S += '\n';
  }
  return S;
}

std::string renderGlobalsSig(const Module &M) {
  std::string S;
  for (const GlobalVar &G : M.Globals) {
    S += G.Name;
    S += ':';
    S += std::to_string(G.Size);
    S += '\x1f';
  }
  return S;
}

std::string joinKey(const std::vector<std::string> &Names) {
  std::string S;
  for (const std::string &N : Names) {
    S += N;
    S += '\x1f';
  }
  return S;
}

} // namespace

const char *retypd::typeQueryStatusName(TypeQueryStatus S) {
  switch (S) {
  case TypeQueryStatus::Ok:
    return "ok";
  case TypeQueryStatus::NoModule:
    return "no-module";
  case TypeQueryStatus::NotAnalyzed:
    return "not-analyzed";
  case TypeQueryStatus::UnknownFunction:
    return "unknown-function";
  case TypeQueryStatus::NoTypeInferred:
    return "no-type-inferred";
  }
  return "?";
}

SessionQuery<std::string> TypeReport::prototype(uint32_t FuncId,
                                                const Module &M) const {
  if (FuncId >= M.Funcs.size())
    return SessionQuery<std::string>::fail(TypeQueryStatus::UnknownFunction);
  const FunctionTypes *T = typesOf(FuncId);
  if (!T || T->CType == NoCType)
    return SessionQuery<std::string>::fail(TypeQueryStatus::NoTypeInferred);
  return SessionQuery<std::string>::ok(
      Pool.prototype(T->CType, M.Funcs[FuncId].Name));
}

std::string TypeReport::prototypeOf(uint32_t FuncId, const Module &M) const {
  SessionQuery<std::string> Q = prototype(FuncId, M);
  return Q ? *Q : std::string("<no type>");
}

//===----------------------------------------------------------------------===//
// Session state
//===----------------------------------------------------------------------===//

/// Everything the previous run knew about one SCC, keyed by its ordered
/// member names. Schemes/sketches replay verbatim when the inputs that
/// produced them are provably unchanged.
struct AnalysisSession::SccArtifact {
  std::vector<std::string> MemberNames; ///< non-external, condensation order
  /// Merged member constraints. May be EMPTY on a fully warm run even
  /// though ConstraintCount > 0: the meta probe defers constraint
  /// materialization until something actually needs the set (a scheme or
  /// solution probe miss), which then replays it through GenKey.
  ConstraintSet Combined;
  Hash128 SetHash;            ///< structural hash of Combined
                              ///< ({0,0} = not computed: no cache)
  SummaryKey GenKey{};        ///< generation-payload content key
                              ///< ({0,0} = none: no cache at generation)
  size_t ConstraintCount = 0; ///< constraints at generation (authoritative
                              ///< even while Combined is unmaterialized)
  std::vector<TypeScheme> MemberSchemes;
  std::vector<Hash128> MemberSchemeHashes;
  bool HasSolution = false; ///< raw/final sketches below are valid
  std::vector<Sketch> RawSketches;   ///< pre-refinement, per member
  std::vector<Sketch> FinalSketches; ///< post-refinement, per member
  /// Callsite sketches this SCC contributed to its callees' refinement,
  /// in commit order (callee name, actual sketch).
  std::vector<std::pair<std::string, Sketch>> CallsiteRecords;
};

/// Per-function facts from the previous run, keyed by name. Both identity
/// fields are 128-bit content hashes — comparing them replaces the textual
/// equality checks of the string data plane (and shrinks snapshots from
/// whole rendered bodies/schemes to 16 bytes each).
struct AnalysisSession::FuncSnapshot {
  Hash128 BodyHash;
  Hash128 SchemeHash;
  size_t IncomingRecords = 0; ///< callsite sketches received in phase 2
};

AnalysisSession::AnalysisSession(Lattice L, SessionOptions O)
    : Lat(std::move(L)), Opts(std::move(O)),
      Syms(std::make_shared<SymbolTable>()) {
  if (!Opts.StoreDir.empty()) {
    // A store only makes sense behind an active cache. An external cache
    // is not owned here, so its store must be attached by its owner.
    Opts.UseSummaryCache = true;
    if (!Opts.ExternalCache && !OwnedCache.openStore(Opts.StoreDir,
                                                     &StoreError) &&
        StoreError.empty())
      StoreError = "cannot open artifact store " + Opts.StoreDir;
  }
}

AnalysisSession::~AnalysisSession() = default;

SummaryCache *AnalysisSession::activeCache() {
  if (Opts.ExternalCache)
    return Opts.ExternalCache;
  return Opts.UseSummaryCache ? &OwnedCache : nullptr;
}

void AnalysisSession::loadModule(Module NewM) {
  M = std::move(NewM);
  HasModule = true;
  Analyzed = false;
  Artifacts.clear();
  Snapshots.clear();
  DirtyNames.clear();
  GlobalsSig.clear();
}

bool AnalysisSession::loadModuleText(const std::string &AsmText,
                                     std::string *Err) {
  AsmParser Parser;
  auto Parsed = Parser.parse(AsmText);
  if (!Parsed) {
    if (Err)
      *Err = Parser.error();
    return false;
  }
  loadModule(std::move(*Parsed));
  return true;
}

void AnalysisSession::updateModule(Module NewM) {
  M = std::move(NewM);
  HasModule = true;
  Analyzed = false;
  // Dirtiness is recomputed inside analyze() by diffing rendered bodies
  // against the per-name snapshots; nothing else to do here.
}

bool AnalysisSession::updateModuleText(const std::string &AsmText,
                                       std::string *Err) {
  AsmParser Parser;
  auto Parsed = Parser.parse(AsmText);
  if (!Parsed) {
    if (Err)
      *Err = Parser.error();
    return false;
  }
  updateModule(std::move(*Parsed));
  return true;
}

void AnalysisSession::markDirtyName(const std::string &Name) {
  DirtyNames.insert(Name);
}

bool AnalysisSession::replaceFunction(uint32_t FuncId, Function NewBody) {
  if (!HasModule || FuncId >= M.Funcs.size())
    return false;
  const std::string OldName = M.Funcs[FuncId].Name;
  if (NewBody.Name.empty())
    NewBody.Name = OldName;
  // Renaming onto another function's name would clobber its FuncByName
  // entry and make it unreachable by name — refuse instead.
  if (NewBody.Name != OldName && M.FuncByName.count(NewBody.Name))
    return false;
  markDirtyName(OldName);
  markDirtyName(NewBody.Name);
  if (NewBody.Name != OldName) {
    M.FuncByName.erase(OldName);
    M.FuncByName[NewBody.Name] = FuncId;
  }
  M.Funcs[FuncId] = std::move(NewBody);
  Analyzed = false;
  return true;
}

bool AnalysisSession::replaceFunction(const std::string &Name,
                                      Function NewBody) {
  auto Id = HasModule ? M.findFunction(Name) : std::nullopt;
  return Id && replaceFunction(*Id, std::move(NewBody));
}

uint32_t AnalysisSession::addFunction(Function F) {
  markDirtyName(F.Name);
  HasModule = true; // a module can be grown from nothing, one function at
                    // a time
  Analyzed = false;
  return M.addFunction(std::move(F));
}

bool AnalysisSession::invalidate(uint32_t FuncId) {
  if (!HasModule || FuncId >= M.Funcs.size())
    return false;
  markDirtyName(M.Funcs[FuncId].Name);
  return true;
}

bool AnalysisSession::invalidate(const std::string &Name) {
  auto Id = HasModule ? M.findFunction(Name) : std::nullopt;
  return Id && invalidate(*Id);
}

void AnalysisSession::invalidateAll() {
  Artifacts.clear();
  Snapshots.clear();
  DirtyNames.clear();
  GlobalsSig.clear();
}

TypeReport AnalysisSession::takeReport() {
  TypeReport R = std::move(Report);
  Report = TypeReport();
  Report.Syms = Syms;
  Analyzed = false;
  return R;
}

Module AnalysisSession::takeModule() {
  Module Out = std::move(M);
  M = Module();
  HasModule = false;
  Analyzed = false;
  return Out;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

std::optional<uint32_t>
AnalysisSession::functionId(const std::string &Name) const {
  if (!HasModule)
    return std::nullopt;
  return M.findFunction(Name);
}

SessionQuery<std::string> AnalysisSession::queryGate(uint32_t FuncId) const {
  if (!HasModule)
    return SessionQuery<std::string>::fail(TypeQueryStatus::NoModule);
  if (!Analyzed)
    return SessionQuery<std::string>::fail(TypeQueryStatus::NotAnalyzed);
  if (FuncId >= M.Funcs.size())
    return SessionQuery<std::string>::fail(TypeQueryStatus::UnknownFunction);
  return SessionQuery<std::string>::ok(std::string());
}

SessionQuery<std::string> AnalysisSession::prototypeOf(uint32_t FuncId) const {
  if (SessionQuery<std::string> Gate = queryGate(FuncId); !Gate)
    return Gate;
  return Report.prototype(FuncId, M);
}

SessionQuery<std::string>
AnalysisSession::prototypeOf(const std::string &Name) const {
  auto Id = functionId(Name);
  if (!Id && HasModule)
    return SessionQuery<std::string>::fail(TypeQueryStatus::UnknownFunction);
  return prototypeOf(Id.value_or(~0u));
}

SessionQuery<std::string> AnalysisSession::schemeOf(uint32_t FuncId) const {
  if (SessionQuery<std::string> Gate = queryGate(FuncId); !Gate)
    return Gate;
  const FunctionTypes *T = Report.typesOf(FuncId);
  if (!T)
    return SessionQuery<std::string>::fail(TypeQueryStatus::NoTypeInferred);
  return SessionQuery<std::string>::ok(T->Scheme.str(*Syms, Lat));
}

SessionQuery<std::string>
AnalysisSession::schemeOf(const std::string &Name) const {
  auto Id = functionId(Name);
  if (!Id && HasModule)
    return SessionQuery<std::string>::fail(TypeQueryStatus::UnknownFunction);
  return schemeOf(Id.value_or(~0u));
}

SessionQuery<std::string> AnalysisSession::sketchOf(uint32_t FuncId,
                                                    unsigned MaxDepth) const {
  if (SessionQuery<std::string> Gate = queryGate(FuncId); !Gate)
    return Gate;
  const FunctionTypes *T = Report.typesOf(FuncId);
  if (!T)
    return SessionQuery<std::string>::fail(TypeQueryStatus::NoTypeInferred);
  return SessionQuery<std::string>::ok(T->FuncSketch.str(Lat, MaxDepth));
}

SessionQuery<std::string>
AnalysisSession::sketchOf(const std::string &Name, unsigned MaxDepth) const {
  auto Id = functionId(Name);
  if (!Id && HasModule)
    return SessionQuery<std::string>::fail(TypeQueryStatus::UnknownFunction);
  return sketchOf(Id.value_or(~0u), MaxDepth);
}

//===----------------------------------------------------------------------===//
// Simplification (shared with the summary cache)
//===----------------------------------------------------------------------===//

std::optional<TypeScheme> AnalysisSession::summarize(
    const std::function<const ConstraintSet *()> &Constraints,
    const Hash128 &SetHash, TypeVariable ProcVar,
    const std::unordered_set<TypeVariable> &Keep, const SolverBackend &Backend,
    SummaryCache *Cache, bool *FromCache) {
  SymbolTable &S = *Syms;
  if (FromCache)
    *FromCache = false;
  SummaryKey Key;
  if (Cache) {
    std::vector<std::string> Names;
    Names.reserve(Keep.size());
    for (TypeVariable V : Keep)
      if (V.isVar())
        Names.push_back(S.name(V.symbol()));
    Key = SummaryCache::keyFor(SetHash, S.name(ProcVar.symbol()), Names,
                               Opts.Simplify, Backend.kind());
    // A hit hands back the decoded scheme — the warm path never parses
    // text and never touches the constraint set. Corrupt entries
    // self-heal inside lookup() (dropped + counted as a miss) so the
    // recomputed insert below overwrites them.
    if (auto Hit = Cache->lookup(Key, S, Lat)) {
      if (FromCache)
        *FromCache = true;
      return std::move(*Hit);
    }
  }

  const ConstraintSet *C = Constraints();
  if (!C)
    return std::nullopt;
  TypeScheme Scheme = Backend.simplify(*C, ProcVar, Keep);
  // Canonical constraint order: identical whether the scheme was computed
  // here or replayed from the cache (the codec preserves order verbatim).
  Scheme.Constraints.canonicalize(S, Lat);

  if (Cache)
    Cache->insert(Key, Scheme, S, Lat, Backend.kind());
  return Scheme;
}

//===----------------------------------------------------------------------===//
// Parameter refinement (Algorithm F.3)
//===----------------------------------------------------------------------===//

Sketch AnalysisSession::refineSketch(Sketch Sk, uint32_t FuncId,
                                     const std::vector<Sketch> &Actuals,
                                     uint64_t *JoinOps) const {
  if (!Opts.RefineParameters || Actuals.empty())
    return Sk;
  const FunctionTypes *FT = Report.typesOf(FuncId);
  if (!FT)
    return Sk;
  auto CountOp = [&] {
    if (JoinOps)
      ++*JoinOps;
  };
  for (unsigned K = 0; K < FT->NumParams; ++K) {
    std::optional<Sketch> Acc;
    for (const Sketch &CallSk : Actuals) {
      auto ActualIn = CallSk.subsketch(Label::in(K));
      if (!ActualIn)
        continue;
      if (Acc) {
        CountOp();
        Acc = Sketch::join(*Acc, *ActualIn, Lat);
      } else {
        Acc = std::move(*ActualIn);
      }
    }
    if (!Acc)
      continue;
    auto FormalIn = Sk.subsketch(Label::in(K));
    Sketch Refined;
    if (FormalIn) {
      CountOp();
      Refined = Sketch::meet(*FormalIn, *Acc, Lat);
    } else {
      Refined = std::move(*Acc);
    }
    Sk = Sk.withChild(Label::in(K), Refined);
  }
  // Outputs: the capabilities every caller exercises on the returned value
  // specialize the (possibly fully polymorphic) return — how a malloc
  // wrapper's ∀τ.τ* becomes a visible pointer (Example 4.3).
  if (M.Funcs[FuncId].ReturnsValue) {
    std::optional<Sketch> AccOut;
    for (const Sketch &CallSk : Actuals) {
      auto ActualOut = CallSk.subsketch(Label::out());
      if (!ActualOut)
        continue;
      if (AccOut) {
        CountOp();
        AccOut = Sketch::join(*AccOut, *ActualOut, Lat);
      } else {
        AccOut = std::move(*ActualOut);
      }
    }
    if (AccOut) {
      auto FormalOut = Sk.subsketch(Label::out());
      Sketch Refined;
      if (FormalOut) {
        CountOp();
        Refined = Sketch::meet(*FormalOut, *AccOut, Lat);
      } else {
        Refined = std::move(*AccOut);
      }
      Sk = Sk.withChild(Label::out(), Refined);
    }
  }
  return Sk;
}

//===----------------------------------------------------------------------===//
// analyze()
//===----------------------------------------------------------------------===//

namespace {

/// Phase-1 commit slot for an SCC that must be (re)computed. The main
/// thread preps it when its last callee commits (gen-cache META probe
/// inline — no constraints materialized — and generation of misses);
/// simplification runs on the pool inside a work unit and lazily
/// materializes the constraint set only when a member's scheme probe
/// misses; the slot is then published and committed on the main thread in
/// bottom-up sequence order.
struct P1Item {
  uint32_t Scc = 0;
  std::string Key;
  std::vector<uint32_t> Members;         ///< non-external, module order
  std::vector<std::string> MemberNames;  ///< parallel to Members
  ConstraintSet Combined;
  bool HasCombined = false;              ///< Combined is materialized
  size_t ConstraintCount = 0;            ///< |Combined| (from meta or gen)
  Hash128 SetHash;                       ///< structural hash (cache runs only)
  SummaryKey GenKey{};                   ///< gen content key (cache runs)
  bool HasGenKey = false;
  std::optional<GenResultMeta> Meta;     ///< meta-probe result
  std::unordered_set<TypeVariable> Interesting;
  std::vector<TypeScheme> Schemes;       ///< filled by the worker
  /// The worker needed the constraints but materializeGen came back empty
  /// (entry evicted/pruned between the meta probe and the residual
  /// decode); the main thread regenerates and re-simplifies inline at
  /// this slot's commit.
  bool SimplifyFailed = false;
  double SimplifySecs = 0; ///< worker-side time, summed into stats at commit
};

enum class P2Mode { Solve, RefineOnly, Reuse };

/// Phase-2 commit slot per SCC. Solve-mode slots are dispatched to the
/// pool; RefineOnly/Reuse slots publish at prep and do all their work at
/// the sequence-ordered commit (callsite-sketch pushes are join-order-
/// sensitive, so they can only ever happen in commit order).
struct P2Item {
  uint32_t Scc = 0;
  P2Mode Mode = P2Mode::Solve;
  std::vector<uint32_t> Members;
  std::vector<TypeVariable> Wanted;
  std::vector<std::pair<uint32_t, TypeVariable>> CallsiteVars;
  SketchSolution Sol;
  SummaryKey SolveKey;   ///< content key of the raw solution (cache runs)
  bool ProbeCache = false;   ///< SolveKey is valid; probe before solving
  bool SolFromCache = false; ///< Sol replayed from the summary cache
  /// The solve worker needed the SCC's (lazily replayed) constraints but
  /// the gen entry vanished; the main thread regenerates + solves inline.
  bool NeedGen = false;
  double SolveSecs = 0; ///< worker-side time, summed into stats at commit
};

/// Slot lifecycle shared by both phase drivers. Trivial slots (external-
/// only SCCs, phase-2 SCCs with nothing to solve) and replay slots publish
/// at prep; compute slots publish from the pool work unit that ran them.
enum SlotStatus : uint8_t {
  SlotTrivial = 0, ///< nothing to do beyond readiness bookkeeping
  SlotReplay,      ///< artifact replay; effects at prep or commit, no pool
  SlotCompute,     ///< dispatched to the pool as (part of) a work unit
};

} // namespace

const TypeReport &AnalysisSession::analyze() {
  Report = TypeReport();
  Report.Syms = Syms;
  // Analyzed flips true only once the run completes: a worker exception
  // propagating out of a wave must leave queries answering NotAnalyzed,
  // not serving a half-built report.
  Analyzed = false;
  if (!HasModule) {
    Analyzed = true;
    return Report;
  }

  SymbolTable &S = *Syms;
  unsigned Jobs = Opts.Jobs;
  if (Jobs == 0)
    Jobs = std::max(1u, std::thread::hardware_concurrency());
  Report.Stats.JobsUsed = Jobs;
  // The main thread is an executor too (the drainer runs work units
  // between commits), so Jobs executors means Jobs - 1 pool workers,
  // and total executors are capped at the machine width: runnable
  // threads beyond the core count add preemption, never progress (on a
  // single hardware thread --jobs N drains inline, workerless). Output
  // bytes never depend on worker count — commit order is fixed by
  // sequence numbers — so the cap is invisible outside timing.
  const unsigned HwWidth = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool Pool(std::min(Jobs, HwWidth) - 1);

  // Formation-rule verification (core/Verifier.h). All hooks sit at the
  // main-thread, wave-order commit points below, so the diagnostics come
  // out in the same deterministic order at any Jobs value and the
  // verifier never races the workers. With Verify == Off not a single
  // check runs.
  const VerifyLevel VL = Opts.Verify;
  VerifyDiags VDiags;

  // ---- Phase 0: IR-level interface recovery + library summaries ----
  std::unordered_map<uint32_t, TypeScheme> Schemes;
  {
    ScopedPhaseTimer Timer("pipeline.phase0");
    trace::TraceSpan Span("phase0", "phase");
    recoverInterfaces(M);
    registerKnownFunctions(M, S, Lat, Schemes);
  }

  CallGraph CG(M);
  ConstraintGenerator Gen(S, Lat, M);
  // The solver seam: phase 1 (simplify) and phase 2 (solve) below only
  // ever dispatch through this backend. Its entry points are const and
  // thread-safe, so pool workers share the one instance.
  const std::unique_ptr<SolverBackend> Backend =
      makeSolverBackend(Opts.Backend, S, Lat, Opts.Simplify);
  Report.Stats.Backend = Backend->name();
  SummaryCache *Cache = activeCache();

  // Generation-cache key plumbing: the environment signature is shared by
  // every function's key, and callee scheme hashes are memoized per run —
  // waves are bottom-up, so a callee's scheme is final before any caller's
  // key needs its hash.
  const Hash128 GenEnvSig =
      Cache ? ConstraintGenerator::envSig(M, Lat) : Hash128{};
  std::unordered_map<uint32_t, Hash128> SchemeHashMemo;

  const size_t NumSccs = CG.sccs().size();
  Report.Stats.SccCount = NumSccs;
  Report.Stats.WaveCount = CG.bottomUpWaves().size();
  for (const auto &W : CG.bottomUpWaves())
    Report.Stats.WidestWave = std::max(Report.Stats.WidestWave, W.size());

  const uint64_t Hits0 = Cache ? Cache->hits() : 0;
  const uint64_t Misses0 = Cache ? Cache->misses() : 0;
  // SummaryCache hits/misses are instance counters (snapshotted above);
  // everything process-global goes through one CounterSnapshot.
  const CounterSnapshot Counters0 = CounterSnapshot::take();

  // ---- Edit detection -------------------------------------------------
  const bool HadHistory = !Snapshots.empty();
  const bool KeepHist = Opts.KeepHistory;
  Report.Stats.IncrementalRun = HadHistory;
  std::string GSig = KeepHist ? renderGlobalsSig(M) : std::string();
  bool AllDirty = !HadHistory || GSig != GlobalsSig;

  // Incremental artifacts are keyed by function name; duplicate names make
  // that keying unsound, so fall back to a full run (and key by SCC id so
  // nothing collides).
  bool DupNames = false;
  {
    std::unordered_set<std::string> Seen;
    for (const Function &F : M.Funcs)
      if (!Seen.insert(F.Name).second)
        DupNames = true;
  }
  AllDirty = AllDirty || DupNames;

  std::vector<Hash128> BodyHashes(M.Funcs.size());
  std::vector<char> Edited(M.Funcs.size(), 0);
  for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
    if (KeepHist)
      BodyHashes[F] = hashBytes(renderBodyText(M, M.Funcs[F]));
    auto SnapIt = Snapshots.find(M.Funcs[F].Name);
    Edited[F] = AllDirty || DirtyNames.count(M.Funcs[F].Name) != 0 ||
                SnapIt == Snapshots.end() ||
                SnapIt->second.BodyHash != BodyHashes[F];
    if (Edited[F])
      ++Report.Stats.FunctionsDirty;
  }

  // Scheme-change tracking by name, filled bottom-up; externals get their
  // (fixed) known-function scheme hash up front, which also catches
  // internal<->external flips.
  std::unordered_map<std::string, char> SchemeChanged;
  std::unordered_map<std::string, Hash128> NewSchemeHashes;
  if (KeepHist)
    for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
      if (!M.Funcs[F].IsExternal)
        continue;
      auto KnownIt = Schemes.find(F);
      Hash128 H = KnownIt != Schemes.end()
                      ? schemeStructuralHash(KnownIt->second, S, Lat)
                      : kNoSchemeHash;
      auto SnapIt = Snapshots.find(M.Funcs[F].Name);
      SchemeChanged[M.Funcs[F].Name] =
          AllDirty || SnapIt == Snapshots.end() ||
          SnapIt->second.SchemeHash != H;
      NewSchemeHashes[M.Funcs[F].Name] = H;
    }

  std::unordered_map<std::string, SccArtifact> NewArtifacts;
  std::vector<SccArtifact *> ArtOfScc(NumSccs, nullptr);
  std::vector<char> P1Computed(NumSccs, 0);

  auto sccKey = [&](uint32_t Scc, const std::vector<std::string> &Names) {
    std::string Key = joinKey(Names);
    if (DupNames) {
      Key += '#';
      Key += std::to_string(Scc);
    }
    return Key;
  };

  // ---- Phase 1: bottom-up scheme inference (Algorithm F.1) ----
  //
  // Readiness-scheduled, no wave barriers. Every SCC owns a commit slot
  // at its fixed position in the bottom-up sequence (the wave
  // concatenation — a topological order identical for every --jobs
  // value). The main thread is prep + generator + drainer: an SCC is
  // prepped the moment its last callee SCC commits (reuse check, gen-
  // cache meta probe, inline generation — the constraint generator is
  // not thread-safe), simplification is dispatched to the pool with
  // ready tiny SCCs batched into shared work units, and published slots
  // are committed strictly in sequence order. Readiness is driven by
  // commits, so everything a prep reads (Schemes, SchemeChanged, the
  // artifact maps) is final when it runs; and because the commit order
  // replays the exact sequential schedule, report bytes cannot depend on
  // scheduling. Workers only simplify: each writes its own slot,
  // publishes it, and never touches shared session state.
  {
    trace::TraceSpan PhaseSpan("phase1", "phase");
    const std::vector<uint32_t> &Seq = CG.bottomUpOrder();
    std::vector<uint32_t> SeqOf(NumSccs, 0);
    for (uint32_t I = 0; I < Seq.size(); ++I)
      SeqOf[Seq[I]] = I;

    std::vector<uint8_t> Status(NumSccs, SlotTrivial);
    std::vector<P1Item> Slots(NumSccs);

    // Uncommitted-callee counts. Only the drainer (main thread) mutates
    // them: workers publish slots, they never touch readiness state.
    std::vector<uint32_t> DepCount(NumSccs, 0);
    for (uint32_t Scc = 0; Scc < NumSccs; ++Scc)
      DepCount[Scc] = static_cast<uint32_t>(CG.sccCallees(Scc).size());

    std::vector<std::atomic<uint8_t>> Done(NumSccs);
    for (auto &D : Done)
      D.store(0, std::memory_order_relaxed);
    std::atomic<size_t> NextCommit{0};
    std::atomic<uint64_t> Stalls{0};
    std::atomic<bool> HasErr{false};
    std::mutex SchedMu;
    std::condition_variable SchedCv;
    std::exception_ptr SchedErr; // guarded by SchedMu

    // FIFO ready queue (main-thread only): SCCs whose callees have all
    // committed, in deterministic commit-discovery order.
    std::vector<uint32_t> ReadyQ;
    size_t ReadyHead = 0;
    auto pushReady = [&](uint32_t Scc) {
      ReadyQ.push_back(Scc);
      Report.Stats.MaxReadyQueue = std::max<uint64_t>(
          Report.Stats.MaxReadyQueue, ReadyQ.size() - ReadyHead);
    };
    for (uint32_t Scc : Seq)
      if (DepCount[Scc] == 0)
        pushReady(Scc);

    // Simplifies every member of one slot (worker side); returns false
    // when the slot needed its (lazily replayed) constraint set but the
    // cache entry vanished between the meta probe and the residual decode.
    auto simplifyItem = [&](P1Item &Item) -> bool {
      const std::vector<uint32_t> &AllMembers = CG.sccs()[Item.Scc];
      Item.Schemes.resize(Item.Members.size());
      trace::TraceSpan Span("simplify", "scc");
      size_t SchemeCacheHits = 0;
      if (Span.active()) {
        Span.Args.Scc = Item.Scc;
        Span.Args.Fn = Item.MemberNames.front();
        Span.Args.Backend = Backend->name();
        Span.Args.Constraints = static_cast<int64_t>(Item.ConstraintCount);
      }
      // The residual decode, run at most once per SCC and only when a
      // member's scheme probe misses: the fully warm path hands every
      // member a cache hit and never touches the constraint set.
      auto Constraints = [&]() -> const ConstraintSet * {
        if (!Item.HasCombined) {
          auto Replay = Cache->materializeGen(Item.GenKey, S, Lat);
          if (!Replay)
            return nullptr;
          Item.Combined = std::move(Replay->C); // already canonical
          Item.HasCombined = true;
        }
        return &Item.Combined;
      };
      for (size_t I = 0; I < Item.Members.size(); ++I) {
        uint32_t F = Item.Members[I];
        // The member's scheme keeps its SCC-mates and globals
        // interesting. One structural hash per SCC (computed during
        // generation) keys every member's cache probe.
        std::unordered_set<TypeVariable> Keep = Item.Interesting;
        for (uint32_t Mate : AllMembers)
          if (Mate != F)
            Keep.insert(Gen.procVar(Mate));
        bool FromCache = false;
        auto Scheme = summarize(Constraints, Item.SetHash, Gen.procVar(F),
                                Keep, *Backend, Cache,
                                Span.active() ? &FromCache : nullptr);
        if (!Scheme)
          return false;
        if (FromCache)
          ++SchemeCacheHits;
        Item.Schemes[I] = std::move(*Scheme);
      }
      if (Span.active())
        Span.Args.Cache = SchemeCacheHits == Item.Members.size() ? "hit"
                          : SchemeCacheHits == 0                 ? "miss"
                                                                 : "partial";
      return true;
    };

    // One pool work unit: simplify a group of slots, publish each as it
    // finishes (a publish of the slot the drainer is blocked on wakes it
    // via SchedCv; out-of-order publishes count as commit stalls).
    auto submitUnit = [&](std::vector<uint32_t> Unit) {
      ++Report.Stats.BatchesFormed;
      Pool.submit([&, Unit = std::move(Unit)] {
        ScopedPhaseTimer Timer("pipeline.simplify");
        for (uint32_t Scc : Unit) {
          P1Item &Item = Slots[Scc];
          Clock::time_point T0 = Clock::now();
          try {
            Item.SimplifyFailed = !simplifyItem(Item);
          } catch (...) {
            // Record the first error and keep publishing: the drainer
            // stops before committing further slots (one it already
            // reached falls back to the deterministic inline recompute).
            Item.SimplifyFailed = true;
            std::lock_guard<std::mutex> Lock(SchedMu);
            if (!SchedErr)
              SchedErr = std::current_exception();
            HasErr.store(true, std::memory_order_relaxed);
          }
          Item.SimplifySecs = secondsSince(T0);
          if (SeqOf[Scc] != NextCommit.load(std::memory_order_relaxed)) {
            Stalls.fetch_add(1, std::memory_order_relaxed);
            trace::instant("commit-stall", "sched", 1, Scc);
          }
          Done[Scc].store(1, std::memory_order_release);
        }
        // Lock-then-notify so a publish cannot slip between the drainer's
        // predicate check and its wait.
        { std::lock_guard<std::mutex> Lock(SchedMu); }
        SchedCv.notify_one();
      });
    };

    std::vector<uint32_t> TinyBatch;
    const unsigned TinyMax = Opts.TinySccConstraints;
    constexpr size_t kMaxBatchSccs = 64;
    auto flushTiny = [&] {
      if (!TinyBatch.empty())
        submitUnit(std::exchange(TinyBatch, {}));
    };
    auto dispatch = [&](uint32_t Scc) {
      ++Report.Stats.SccsScheduled;
      if (TinyMax != 0 && Slots[Scc].ConstraintCount < TinyMax) {
        TinyBatch.push_back(Scc);
        if (TinyBatch.size() >= kMaxBatchSccs)
          flushTiny();
      } else {
        submitUnit({Scc});
      }
    };

    // Prep one ready SCC (main thread): decide trivial/replay/compute,
    // apply replay effects, generate compute slots, dispatch to the pool.
    auto prep = [&](uint32_t Scc) {
      P1Item &Item = Slots[Scc];
      Item.Scc = Scc;
      const std::vector<uint32_t> &AllMembers = CG.sccs()[Scc];
      for (uint32_t F : AllMembers) {
        if (M.Funcs[F].IsExternal)
          continue;
        Item.Members.push_back(F);
        Item.MemberNames.push_back(M.Funcs[F].Name);
      }
      if (Item.Members.empty()) {
        Done[Scc].store(1, std::memory_order_release);
        return; // stays SlotTrivial
      }
      std::string Key = sccKey(Scc, Item.MemberNames);

      // ---- Reuse check: unchanged members, unchanged callee schemes.
      // Sound to evaluate here because every callee committed before this
      // SCC became ready — their SchemeChanged entries are final.
      SccArtifact *Reused = nullptr;
      if (!AllDirty) {
        auto ArtIt = Artifacts.find(Key);
        bool Ok = ArtIt != Artifacts.end() &&
                  ArtIt->second.MemberNames == Item.MemberNames;
        for (size_t I = 0; Ok && I < Item.Members.size(); ++I) {
          if (Edited[Item.Members[I]]) {
            Ok = false;
            break;
          }
          for (uint32_t Callee : CG.callees(Item.Members[I])) {
            if (CG.sccOf(Callee) == Scc)
              continue;
            auto ChIt = SchemeChanged.find(M.Funcs[Callee].Name);
            if (ChIt == SchemeChanged.end() || ChIt->second) {
              Ok = false;
              break;
            }
          }
        }
        if (Ok) {
          auto Ins = NewArtifacts.insert(Artifacts.extract(ArtIt));
          Reused = &Ins.position->second;
        }
      }

      if (Reused) {
        // Apply the replay effects now: they are keyed, single-writer
        // map/report writes, so their order across SCCs is immaterial.
        // Full-mode verification of the replayed schemes waits for the
        // commit slot, keeping diagnostics in sequence order.
        for (size_t I = 0; I < Item.Members.size(); ++I) {
          uint32_t F = Item.Members[I];
          Schemes[F] = Reused->MemberSchemes[I];
          FunctionTypes &FT = Report.Funcs[F];
          FT.Scheme = Reused->MemberSchemes[I];
          FT.NumParams =
              M.Funcs[F].NumStackParams +
              static_cast<unsigned>(M.Funcs[F].RegParams.size());
          SchemeChanged[Item.MemberNames[I]] = 0;
          NewSchemeHashes[Item.MemberNames[I]] =
              Reused->MemberSchemeHashes[I];
        }
        Report.ConstraintsGenerated += Reused->ConstraintCount;
        ArtOfScc[Scc] = Reused;
        ++Report.Stats.SccsReused;
        Report.Stats.SchemesReused += Item.Members.size();
        Status[Scc] = SlotReplay;
        Done[Scc].store(1, std::memory_order_release);
        return;
      }

      // ---- Compute path: key + meta-probe + generate inline, then hand
      // simplification to the pool. The meta probe overlaps with compute
      // naturally here — other SCCs are simplifying on the workers while
      // the main thread preps.
      Status[Scc] = SlotCompute;
      P1Computed[Scc] = 1;
      ++Report.Stats.SccsSimplified;
      Item.Key = std::move(Key);
      Clock::time_point T0 = Clock::now();
      {
        ScopedPhaseTimer Timer("pipeline.generate");
        trace::TraceSpan GenSpan("generate", "scc");
        if (GenSpan.active()) {
          GenSpan.Args.Scc = Scc;
          GenSpan.Args.Fn = Item.MemberNames.front();
          GenSpan.Args.Backend = Backend->name();
        }
        std::set<uint32_t> Mates(AllMembers.begin(), AllMembers.end());
        auto schemeHashFor = [&](uint32_t Callee) -> const Hash128 * {
          auto SchemeIt = Schemes.find(Callee);
          if (SchemeIt == Schemes.end())
            return nullptr;
          auto [MemoIt, Inserted] = SchemeHashMemo.try_emplace(Callee);
          if (Inserted)
            MemoIt->second = schemeStructuralHash(SchemeIt->second, S, Lat);
          return &MemoIt->second;
        };

        // Generation is content-addressed: the SCC's gen key combines the
        // per-member dependency keys (own body, callee interfaces +
        // scheme hashes, SCC membership, globals table, lattice — see
        // ConstraintGenerator::genKey), and the cached payload is the
        // merged, canonicalized combined set with its structural hash. A
        // hit therefore replays exactly what the walk+merge+canonicalize+
        // hash below would produce — byte for byte — including the
        // callsite variables the phase-2 solve-prep probe expects to find
        // interned (the meta decoder interns them).
        if (Cache) {
          {
            ScopedPhaseTimer KeyTimer("gencache.key");
            Fnv128 KeyHash;
            KeyHash.update("retypd-genscc-v1");
            KeyHash.sep();
            KeyHash.updateU64(Item.Members.size());
            for (uint32_t F : Item.Members) {
              Hash128 K = Gen.genKey(F, Mates, GenEnvSig, schemeHashFor);
              KeyHash.updateU64(K.Hi);
              KeyHash.updateU64(K.Lo);
            }
            Item.GenKey = KeyHash.digest();
            Item.HasGenKey = true;
          }
          // META prefix only — set hash, interesting/callsite variables,
          // constraint count — straight off the mapped store bytes. No
          // constraint set is materialized; the residual decode happens
          // inside a simplify/solve worker if (and only if) a downstream
          // probe misses.
          Item.Meta = Cache->lookupGenMeta(Item.GenKey, S, Lat);
        }
        if (Item.Meta) {
          // Replayed: adopt the meta; the constraints stay encoded until
          // a scheme or solution probe actually needs them.
          Item.SetHash = Item.Meta->SetHash;
          Item.Interesting.insert(Item.Meta->Interesting.begin(),
                                  Item.Meta->Interesting.end());
          Item.ConstraintCount =
              static_cast<size_t>(Item.Meta->ConstraintCount);
          ++Report.Stats.GenCacheHits;
        } else {
          if (Item.HasGenKey)
            ++Report.Stats.GenCacheMisses;
          std::vector<TypeVariable> Callsites;
          for (uint32_t F : Item.Members) {
            GenResult R = Gen.generate(F, Schemes, Mates);
            if (Item.Members.size() == 1)
              Item.Combined = std::move(R.C); // single member: no merge
            else
              Item.Combined.merge(R.C);
            Item.Interesting.insert(R.Interesting.begin(),
                                    R.Interesting.end());
            if (Cache)
              Callsites.insert(Callsites.end(), R.Callsites.begin(),
                               R.Callsites.end());
          }
          // Canonicalize the combined set before any solving: simplifier τ
          // numbering and solver traversals follow constraint order, and
          // the Tarjan member order that produced it can flip when *other*
          // parts of the call graph change. The structural sort makes
          // every downstream result (and the summary-cache key hashed from
          // the same canonical order) a pure function of the constraint
          // *set*, which both the cache and incremental reuse depend on —
          // with no canonical text ever materialized.
          Item.Combined.canonicalize(S, Lat);
          Item.HasCombined = true;
          Item.ConstraintCount = Item.Combined.size();
          if (Cache) {
            {
              ScopedPhaseTimer HashTimer("cache.hash");
              Item.SetHash = canonicalSetHash(Item.Combined, S, Lat);
            }
            std::vector<TypeVariable> Interesting(Item.Interesting.begin(),
                                                  Item.Interesting.end());
            Cache->insertGen(Item.GenKey, Item.Combined, Item.SetHash,
                             Interesting, Callsites, S, Lat);
          }
        }
        if (GenSpan.active()) {
          GenSpan.Args.Constraints =
              static_cast<int64_t>(Item.ConstraintCount);
          if (Item.HasGenKey)
            GenSpan.Args.Cache = Item.Meta ? "hit" : "miss";
        }
        Report.ConstraintsGenerated += Item.ConstraintCount;
      }
      Report.Stats.GenerateSecs += secondsSince(T0);
      dispatch(Scc);
    };

    // Commit one slot (main thread, strictly in sequence order) and
    // release its dependents.
    auto commit = [&](uint32_t Scc) {
      P1Item &Item = Slots[Scc];
      switch (Status[Scc]) {
      case SlotTrivial:
        break;
      case SlotReplay: {
        // Full verification covers replayed artifacts too: a stale or
        // corrupted incremental replay surfaces here instead of as a
        // wrong report. The allowed-free set of a replayed scheme is
        // not recorded, so the closure check is skipped (nullptr).
        if (VL == VerifyLevel::Full) {
          SccArtifact *Reused = ArtOfScc[Scc];
          for (size_t I = 0; I < Item.Members.size(); ++I)
            verifyScheme(Reused->MemberSchemes[I], S, Lat, nullptr,
                         "phase1 reused scheme '" + Item.MemberNames[I] +
                             "'",
                         VDiags);
        }
        break;
      }
      case SlotCompute: {
        // Fallback for vanished gen entries (evicted or pruned since the
        // meta probe): regenerate the set — deterministic, so identical
        // to what the replay would have produced — and redo the slot
        // inline.
        if (Item.SimplifyFailed) {
          Clock::time_point T0 = Clock::now();
          const std::vector<uint32_t> &AllMembers = CG.sccs()[Scc];
          std::set<uint32_t> Mates(AllMembers.begin(), AllMembers.end());
          Item.Combined = ConstraintSet();
          for (uint32_t F : Item.Members) {
            GenResult R = Gen.generate(F, Schemes, Mates);
            if (Item.Members.size() == 1)
              Item.Combined = std::move(R.C);
            else
              Item.Combined.merge(R.C);
          }
          Item.Combined.canonicalize(S, Lat);
          Item.HasCombined = true;
          Item.SimplifyFailed = !simplifyItem(Item);
          Item.SimplifySecs += secondsSince(T0);
        }
        Report.Stats.SimplifySecs += Item.SimplifySecs;
        // Verify what this SCC is about to commit: the combined
        // constraint set when it was materialized this run (fresh
        // generation, or — in Full mode the interesting case — a residual
        // decode straight off the cache/store bytes), including the
        // canonical-order invariant the content keys and the binary codec
        // rely on.
        if (VL != VerifyLevel::Off && Item.HasCombined) {
          std::string Ctx =
              "phase1 scc '" + Item.MemberNames.front() + "' constraints";
          verifyConstraintSet(Item.Combined, S, Lat, Ctx, VDiags);
          verifyCanonicalOrder(Item.Combined, S, Lat, Ctx, VDiags);
        }
        SccArtifact Art;
        Art.MemberNames = Item.MemberNames;
        Art.ConstraintCount = Item.ConstraintCount;
        Art.SetHash = Item.SetHash;
        Art.GenKey = Item.GenKey;
        Art.Combined = std::move(Item.Combined); // may be unmaterialized
        if (KeepHist)
          Art.MemberSchemes = Item.Schemes; // keep a replayable copy
        // Carry the previous run's callsite records forward (same member
        // set): they are the baseline the phase-2 Solve commit compares
        // against, which lets an edit that re-solves to identical actuals
        // stop dirtying its callees. The stale raw/final sketches ride
        // along but are unreachable — P1Computed forces Solve mode, which
        // overwrites them before any replay path could read them.
        if (auto OldIt = Artifacts.find(Item.Key);
            OldIt != Artifacts.end() && OldIt->second.HasSolution) {
          Art.CallsiteRecords = std::move(OldIt->second.CallsiteRecords);
          Art.HasSolution = true;
        }
        for (size_t I = 0; I < Item.Members.size(); ++I) {
          uint32_t F = Item.Members[I];
          const std::string &Name = Item.MemberNames[I];
          if (KeepHist) {
            Hash128 H = schemeStructuralHash(Item.Schemes[I], S, Lat);
            auto SnapIt = Snapshots.find(Name);
            SchemeChanged[Name] = AllDirty || SnapIt == Snapshots.end() ||
                                  SnapIt->second.SchemeHash != H;
            Art.MemberSchemeHashes.push_back(H);
            NewSchemeHashes[Name] = H;
          }
          // Scheme closure: besides its own bound variables the scheme
          // may mention exactly what simplification was told to keep —
          // the SCC's interesting variables plus its mates' procedure
          // variables. Anything else escaping is a formation violation
          // (whether the scheme was computed here or decoded from the
          // cache; both commit through this path).
          if (VL != VerifyLevel::Off) {
            std::unordered_set<TypeVariable> Allowed = Item.Interesting;
            for (uint32_t Mate : CG.sccs()[Scc])
              if (Mate != F)
                Allowed.insert(Gen.procVar(Mate));
            verifyScheme(Item.Schemes[I], S, Lat, &Allowed,
                         "phase1 scheme '" + Name + "'", VDiags);
          }
          Schemes[F] = Item.Schemes[I];
          FunctionTypes &FT = Report.Funcs[F];
          FT.Scheme = std::move(Item.Schemes[I]);
          FT.NumParams = M.Funcs[F].NumStackParams +
                         static_cast<unsigned>(M.Funcs[F].RegParams.size());
          ++Report.Stats.SchemesComputed;
        }
        auto [NewIt, Inserted] =
            NewArtifacts.emplace(std::move(Item.Key), std::move(Art));
        (void)Inserted;
        ArtOfScc[Scc] = &NewIt->second;
        // Drop per-slot scratch early: slots live to the end of the
        // phase, their artifacts live on.
        Item.Interesting = {};
        Item.Schemes = {};
        Item.Meta.reset();
        break;
      }
      }
      trace::instant("commit", "sched", -1, Scc);
      for (uint32_t Caller : CG.sccCallers(Scc))
        if (--DepCount[Caller] == 0)
          pushReady(Caller);
    };

    // The drainer loop. Priorities: commit whatever is committable (it
    // releases dependents), then prep newly-ready SCCs (it feeds the
    // pool), then flush a pending tiny batch, then help the pool; only
    // when the queues are empty and the next slot is still in flight on a
    // worker does the main thread sleep.
    size_t Next = 0;
    const size_t N = Seq.size();
    while (Next < N) {
      if (HasErr.load(std::memory_order_relaxed))
        break;
      uint32_t Scc = Seq[Next];
      if (Done[Scc].load(std::memory_order_acquire)) {
        commit(Scc);
        ++Next;
        NextCommit.store(Next, std::memory_order_relaxed);
        continue;
      }
      if (ReadyHead < ReadyQ.size()) {
        prep(ReadyQ[ReadyHead++]);
        continue;
      }
      if (!TinyBatch.empty()) {
        flushTiny();
        continue;
      }
      if (Pool.tryRunOne())
        continue;
      std::unique_lock<std::mutex> Lock(SchedMu);
      SchedCv.wait(Lock, [&] {
        return Done[Scc].load(std::memory_order_acquire) ||
               HasErr.load(std::memory_order_relaxed);
      });
    }
    // Teardown join, not a scheduling barrier: on the normal path every
    // slot has committed, so this only waits out a work unit's final
    // bookkeeping; on the error path it drains in-flight units before
    // their slots leave scope.
    Pool.waitAll();
    Report.Stats.CommitStalls += Stalls.load(std::memory_order_relaxed);
    {
      std::exception_ptr E;
      {
        std::lock_guard<std::mutex> Lock(SchedMu);
        E = SchedErr;
      }
      if (E)
        std::rethrow_exception(E);
    }
  }

  // ---- Phase 2: top-down sketch solving (Algorithm F.2) ----
  // Join of actual-in/out sketches observed at callsites, per callee
  // (Algorithm F.3 accumulators).
  std::map<uint32_t, std::vector<Sketch>> ActualSketches;
  // Per-function: some caller contributed records that differ from the
  // previous run (forces the callee's SCC to at least re-refine).
  std::vector<char> IncomingChangedFlag(M.Funcs.size(), 0);
  std::unordered_map<std::string, size_t> NewIncomingCount;

  // Top-down readiness scheduler, mirroring phase 1 with the roles of
  // callers and callees swapped: an SCC becomes ready the moment its last
  // *caller* SCC commits, so everything its prep reads — ActualSketches
  // tallies, IncomingChangedFlag bits, snapshots — is final. Commit slots
  // follow the top-down sequence (the reverse wave concatenation): sketch
  // joins are order-sensitive, so the refinement accumulators must
  // receive callsite sketches in exactly the historical push order, and
  // the sequence-ordered commit is what pins that for every --jobs value.
  {
    trace::TraceSpan PhaseSpan("phase2", "phase");
    const std::vector<uint32_t> &Seq = CG.topDownOrder();
    std::vector<uint32_t> SeqOf(NumSccs, 0);
    for (uint32_t I = 0; I < Seq.size(); ++I)
      SeqOf[Seq[I]] = I;

    std::vector<uint8_t> Status(NumSccs, SlotTrivial);
    std::vector<P2Item> Slots(NumSccs);

    // Uncommitted-caller counts. Main-thread only, like phase 1.
    std::vector<uint32_t> DepCount(NumSccs, 0);
    for (uint32_t Scc = 0; Scc < NumSccs; ++Scc)
      DepCount[Scc] = static_cast<uint32_t>(CG.sccCallers(Scc).size());

    std::vector<std::atomic<uint8_t>> Done(NumSccs);
    for (auto &D : Done)
      D.store(0, std::memory_order_relaxed);
    std::atomic<size_t> NextCommit{0};
    std::atomic<uint64_t> Stalls{0};
    std::atomic<bool> HasErr{false};
    std::mutex SchedMu;
    std::condition_variable SchedCv;
    std::exception_ptr SchedErr; // guarded by SchedMu

    std::vector<uint32_t> ReadyQ;
    size_t ReadyHead = 0;
    auto pushReady = [&](uint32_t Scc) {
      ReadyQ.push_back(Scc);
      Report.Stats.MaxReadyQueue = std::max<uint64_t>(
          Report.Stats.MaxReadyQueue, ReadyQ.size() - ReadyHead);
    };
    for (uint32_t Scc : Seq)
      if (DepCount[Scc] == 0)
        pushReady(Scc);

    // Solves one slot (worker side). Warm probe and cold solve both run
    // here, so bundle decodes parallelize exactly like solves do.
    auto solveItem = [&](P2Item &Item) {
      trace::TraceSpan Span("solve", "scc");
      if (Span.active()) {
        Span.Args.Scc = Item.Scc;
        Span.Args.Fn = M.Funcs[Item.Members.front()].Name;
        Span.Args.Backend = Backend->name();
        Span.Args.Constraints =
            static_cast<int64_t>(ArtOfScc[Item.Scc]->ConstraintCount);
      }
      if (Item.ProbeCache) {
        if (auto Bindings =
                Cache->lookupSolution(Item.SolveKey, *Syms, Lat)) {
          for (auto &[V, Sk] : *Bindings)
            Item.Sol.Sketches.emplace(V, std::move(Sk));
          Item.SolFromCache = true;
          if (Span.active())
            Span.Args.Cache = "hit";
          return;
        }
        if (Span.active())
          Span.Args.Cache = "miss";
      }
      SccArtifact *Art = ArtOfScc[Item.Scc];
      // Residual decode: the solution probe missed, so the solver really
      // needs the constraint set this SCC's meta probe left
      // unmaterialized. (Slots don't share SCCs, so writing the artifact
      // here is race-free.)
      if (Art->Combined.empty() && Cache && Art->GenKey != Hash128{})
        if (auto Replay = Cache->materializeGen(Art->GenKey, *Syms, Lat))
          Art->Combined = std::move(Replay->C);
      if (Art->Combined.empty()) {
        Item.NeedGen = true; // gen entry vanished; commit solves inline
        return;
      }
      Item.Sol = Backend->solve(Art->Combined, Item.Wanted);
    };

    auto submitUnit = [&](std::vector<uint32_t> Unit) {
      ++Report.Stats.BatchesFormed;
      Pool.submit([&, Unit = std::move(Unit)] {
        ScopedPhaseTimer Timer("pipeline.solve");
        for (uint32_t Scc : Unit) {
          P2Item &Item = Slots[Scc];
          Clock::time_point T0 = Clock::now();
          try {
            solveItem(Item);
          } catch (...) {
            // NeedGen routes a slot the drainer already reached through
            // the deterministic inline regenerate+solve, which surfaces
            // the real error on the main thread; otherwise the drainer
            // stops on HasErr and rethrows below.
            Item.NeedGen = true;
            std::lock_guard<std::mutex> Lock(SchedMu);
            if (!SchedErr)
              SchedErr = std::current_exception();
            HasErr.store(true, std::memory_order_relaxed);
          }
          Item.SolveSecs = secondsSince(T0);
          if (SeqOf[Scc] != NextCommit.load(std::memory_order_relaxed)) {
            Stalls.fetch_add(1, std::memory_order_relaxed);
            trace::instant("commit-stall", "sched", 1, Scc);
          }
          Done[Scc].store(1, std::memory_order_release);
        }
        { std::lock_guard<std::mutex> Lock(SchedMu); }
        SchedCv.notify_one();
      });
    };

    std::vector<uint32_t> TinyBatch;
    const unsigned TinyMax = Opts.TinySccConstraints;
    constexpr size_t kMaxBatchSccs = 64;
    auto flushTiny = [&] {
      if (!TinyBatch.empty())
        submitUnit(std::exchange(TinyBatch, {}));
    };
    auto dispatch = [&](uint32_t Scc) {
      ++Report.Stats.SccsScheduled;
      if (TinyMax != 0 && ArtOfScc[Scc]->ConstraintCount < TinyMax) {
        TinyBatch.push_back(Scc);
        if (TinyBatch.size() >= kMaxBatchSccs)
          flushTiny();
      } else {
        submitUnit({Scc});
      }
    };

    // Prep one ready SCC: decide trivial/replay/solve. RefineOnly and
    // Reuse slots publish immediately and do ALL their work at the commit
    // slot — their replayed callsite pushes feed the order-sensitive
    // accumulators, so nothing may run early. Solve slots build their
    // wanted set and solve key here and dispatch to the pool; co-batched
    // solves cannot contend because every callsite variable is scoped to
    // its caller function (`fn!callee@idx`) and SCCs partition functions.
    auto prep = [&](uint32_t Scc) {
      SccArtifact *Art = ArtOfScc[Scc];
      // ConstraintCount, not Combined.empty(): a fully warm SCC keeps its
      // constraint set unmaterialized, but it still must be solved.
      if (!Art || Art->ConstraintCount == 0) {
        Done[Scc].store(1, std::memory_order_release);
        return; // stays SlotTrivial
      }
      ScopedPhaseTimer PrepTimer("pipeline.solveprep");
      P2Item &Item = Slots[Scc];
      Item.Scc = Scc;
      for (uint32_t F : CG.sccs()[Scc])
        if (!M.Funcs[F].IsExternal)
          Item.Members.push_back(F);

      // Did this SCC's refinement inputs change since the last run?
      // Final by readiness: every caller committed its records already.
      bool IncomingChanged = false;
      for (uint32_t F : Item.Members) {
        auto ActIt = ActualSketches.find(F);
        size_t Tally = ActIt == ActualSketches.end() ? 0 : ActIt->second.size();
        NewIncomingCount[M.Funcs[F].Name] = Tally;
        auto SnapIt = Snapshots.find(M.Funcs[F].Name);
        size_t Prev = SnapIt == Snapshots.end()
                          ? std::numeric_limits<size_t>::max()
                          : SnapIt->second.IncomingRecords;
        if (IncomingChangedFlag[F] || Tally != Prev)
          IncomingChanged = true;
      }

      if (P1Computed[Scc] || !Art->HasSolution)
        Item.Mode = P2Mode::Solve;
      else if (IncomingChanged)
        Item.Mode = P2Mode::RefineOnly;
      else
        Item.Mode = P2Mode::Reuse;

      if (Item.Mode != P2Mode::Solve) {
        Status[Scc] = SlotReplay;
        Done[Scc].store(1, std::memory_order_release);
        return;
      }

      Status[Scc] = SlotCompute;
      // Solve for the member procedure variables and for every callsite
      // variable (needed for parameter refinement of callees).
      for (uint32_t F : Item.Members) {
        Item.Wanted.push_back(Gen.procVar(F));
        const std::vector<uint32_t> &AllMembers = CG.sccs()[Scc];
        for (uint32_t Idx = 0; Idx < M.Funcs[F].Body.size(); ++Idx) {
          const Instr &I = M.Funcs[F].Body[Idx];
          if (I.Op != Opcode::Call || I.Target >= M.Funcs.size())
            continue;
          if (std::find(AllMembers.begin(), AllMembers.end(), I.Target) !=
              AllMembers.end())
            continue;
          SymbolId Sym;
          std::string Name = M.Funcs[F].Name + "!" +
                             M.Funcs[I.Target].Name + "@" +
                             std::to_string(Idx);
          if (!S.lookup(Name, Sym))
            continue;
          TypeVariable V = TypeVariable::var(Sym);
          Item.Wanted.push_back(V);
          Item.CallsiteVars.push_back({I.Target, V});
        }
      }
      // The raw solution is a pure function of (canonical constraint
      // set, wanted names) — content-address it like schemes, so warm
      // runs replay sketches through the codec instead of re-solving.
      // Only the key is computed here; the probe (payload copy + bundle
      // decode) runs inside the pool work unit, alongside the solves.
      if (Cache && !Item.Wanted.empty()) {
        // Phase 1 already hashed this SCC's canonical set; artifacts
        // replayed from a cacheless earlier run ({0,0}) hash on demand.
        Hash128 SetHash = Art->SetHash;
        if (SetHash == Hash128{}) {
          ScopedPhaseTimer HashTimer("cache.hash");
          SetHash = canonicalSetHash(Art->Combined, S, Lat);
          Art->SetHash = SetHash;
        }
        std::vector<std::string> Names;
        Names.reserve(Item.Wanted.size());
        for (TypeVariable V : Item.Wanted)
          Names.push_back(S.name(V.symbol()));
        Item.SolveKey =
            SummaryCache::solveKeyFor(SetHash, Names, Backend->kind());
        Item.ProbeCache = true;
      }
      dispatch(Scc);
    };

    // Commit one slot (strictly in top-down sequence order) and release
    // its callees. All refinement, sketch assignment, and callsite-record
    // pushes happen here, so the accumulators see contributions in
    // exactly the historical order.
    auto commit = [&](uint32_t Scc) {
      P2Item &Item = Slots[Scc];
      if (Status[Scc] == SlotTrivial) {
        for (uint32_t T : CG.sccCallees(Scc))
          if (--DepCount[T] == 0)
            pushReady(T);
        return;
      }
      SccArtifact *Art = ArtOfScc[Scc];
      switch (Item.Mode) {
      case P2Mode::Solve: {
        ++Report.Stats.SccsSolved;
        // Fallback for vanished gen entries: regenerate deterministically
        // and solve inline (rare — requires eviction between the meta
        // probe and the slot's solve).
        if (Item.NeedGen) {
          Clock::time_point T0 = Clock::now();
          const std::vector<uint32_t> &AllMembers = CG.sccs()[Scc];
          std::set<uint32_t> Mates(AllMembers.begin(), AllMembers.end());
          ConstraintSet C;
          for (uint32_t F : Item.Members) {
            GenResult R = Gen.generate(F, Schemes, Mates);
            if (Item.Members.size() == 1)
              C = std::move(R.C);
            else
              C.merge(R.C);
          }
          C.canonicalize(S, Lat);
          Art->Combined = std::move(C);
          Item.Sol = Backend->solve(Art->Combined, Item.Wanted);
          Item.NeedGen = false;
          Item.SolveSecs += secondsSince(T0);
        }
        Report.Stats.SolveSecs += Item.SolveSecs;
        // Full verification inspects every sketch decoded from the
        // summary cache/store before anything derives from it. Iterating
        // Wanted (not the solution map) keeps the diagnostic order
        // deterministic.
        if (VL == VerifyLevel::Full && Item.SolFromCache)
          for (TypeVariable V : Item.Wanted) {
            std::string VName = V.isVar() && V.symbol() < S.size()
                                    ? S.name(V.symbol())
                                    : "<invalid>";
            verifySketch(Item.Sol.sketchFor(V), Lat,
                         "phase2 cached solution for '" + VName + "'",
                         VDiags);
          }
        if (Cache && !Item.SolFromCache && !Item.Wanted.empty()) {
          std::vector<std::pair<TypeVariable, const Sketch *>> Entries;
          Entries.reserve(Item.Wanted.size());
          for (TypeVariable V : Item.Wanted)
            Entries.push_back({V, &Item.Sol.sketchFor(V)});
          Cache->insertSolution(Item.SolveKey, Entries, S, Lat,
                                Backend->kind());
        }
        // Records carry the callee *name* for cross-run replay (name keys
        // survive id shifts), but this run's pushes below use the known
        // callee *id* from CallsiteVars — name lookup would misdirect
        // refinement when the module holds duplicate function names.
        std::vector<std::pair<std::string, Sketch>> NewRecords;
        NewRecords.reserve(Item.CallsiteVars.size());
        for (const auto &[Callee, Var] : Item.CallsiteVars)
          NewRecords.push_back(
              {M.Funcs[Callee].Name, Item.Sol.sketchFor(Var)});

        // Flag callees whose records from this SCC differ from the
        // previous run (per-callee comparison keeps the dirtiness cone
        // tight: an edit that re-solves to the same actuals stops here).
        // Group both record lists by callee once, not per callsite.
        const bool HadRecords = Art->HasSolution;
        std::unordered_map<std::string, std::vector<const Sketch *>> OldBy,
            NewBy;
        if (HadRecords)
          for (const auto &[N2, Sk] : Art->CallsiteRecords)
            OldBy[N2].push_back(&Sk);
        for (const auto &[N2, Sk] : NewRecords)
          NewBy[N2].push_back(&Sk);
        std::unordered_set<uint32_t> FlaggedCallees;
        for (const auto &[Callee, Var] : Item.CallsiteVars) {
          (void)Var;
          if (!FlaggedCallees.insert(Callee).second)
            continue; // one comparison per distinct callee
          auto SameRecords = [&] {
            if (!HadRecords)
              return false;
            const auto &Old = OldBy[M.Funcs[Callee].Name];
            const auto &New = NewBy[M.Funcs[Callee].Name];
            if (Old.size() != New.size())
              return false;
            for (size_t I = 0; I < Old.size(); ++I)
              if (!Sketch::equal(*Old[I], *New[I], Lat))
                return false;
            return true;
          };
          if (!SameRecords())
            IncomingChangedFlag[Callee] = 1;
        }

        Art->RawSketches.clear();
        Art->FinalSketches.clear();
        {
          trace::TraceSpan RefineSpan("refine", "scc");
          uint64_t Joins = 0;
          if (RefineSpan.active()) {
            RefineSpan.Args.Scc = Scc;
            RefineSpan.Args.Fn = M.Funcs[Item.Members.front()].Name;
            RefineSpan.Args.Backend = Backend->name();
          }
          for (uint32_t F : Item.Members) {
            Sketch Raw = Item.Sol.sketchFor(Gen.procVar(F));
            if (KeepHist)
              Art->RawSketches.push_back(Raw);
            auto ActIt = ActualSketches.find(F);
            static const std::vector<Sketch> None;
            Sketch Final = refineSketch(
                std::move(Raw), F,
                ActIt == ActualSketches.end() ? None : ActIt->second,
                RefineSpan.active() ? &Joins : nullptr);
            if (VL != VerifyLevel::Off)
              verifySketch(Final, Lat,
                           "phase2 sketch '" + M.Funcs[F].Name + "'",
                           VDiags);
            if (KeepHist)
              Art->FinalSketches.push_back(Final);
            Report.Funcs[F].FuncSketch = std::move(Final);
          }
          if (RefineSpan.active())
            RefineSpan.Args.JoinOps = static_cast<int64_t>(Joins);
        }
        for (size_t I = 0; I < Item.CallsiteVars.size(); ++I)
          ActualSketches[Item.CallsiteVars[I].first].push_back(
              NewRecords[I].second);
        if (KeepHist) {
          Art->CallsiteRecords = std::move(NewRecords);
          Art->HasSolution = true;
        }
        // Drop per-slot scratch early: slots live to the end of the
        // phase, the report and artifacts carry everything that matters.
        Item.Sol = SketchSolution();
        Item.Wanted = {};
        break;
      }
      case P2Mode::RefineOnly: {
        ++Report.Stats.SccsRefinedOnly;
        trace::TraceSpan RefineSpan("refine", "scc");
        uint64_t Joins = 0;
        if (RefineSpan.active()) {
          RefineSpan.Args.Scc = Scc;
          RefineSpan.Args.Fn = M.Funcs[Item.Members.front()].Name;
          RefineSpan.Args.Backend = Backend->name();
          RefineSpan.Args.Cache = "refine-only";
        }
        for (size_t I = 0; I < Item.Members.size(); ++I) {
          uint32_t F = Item.Members[I];
          auto ActIt = ActualSketches.find(F);
          static const std::vector<Sketch> None;
          Sketch Final = refineSketch(
              Art->RawSketches[I], F,
              ActIt == ActualSketches.end() ? None : ActIt->second,
              RefineSpan.active() ? &Joins : nullptr);
          if (VL != VerifyLevel::Off)
            verifySketch(Final, Lat,
                         "phase2 sketch '" + M.Funcs[F].Name + "'", VDiags);
          Art->FinalSketches[I] = Final;
          Report.Funcs[F].FuncSketch = std::move(Final);
        }
        if (RefineSpan.active())
          RefineSpan.Args.JoinOps = static_cast<int64_t>(Joins);
        // Replay pushes resolve callee names against the current module;
        // safe because artifact replay never happens under duplicate names
        // (DupNames forces AllDirty, so every SCC takes the Solve path).
        for (const auto &[CalleeName, Sk] : Art->CallsiteRecords)
          if (auto CalleeId = M.findFunction(CalleeName))
            ActualSketches[*CalleeId].push_back(Sk);
        break;
      }
      case P2Mode::Reuse: {
        ++Report.Stats.SccsSolveReused;
        for (size_t I = 0; I < Item.Members.size(); ++I) {
          // Replayed final sketches are only re-inspected under Full —
          // like reused schemes, they were verified when first computed.
          if (VL == VerifyLevel::Full)
            verifySketch(Art->FinalSketches[I], Lat,
                         "phase2 reused sketch '" +
                             M.Funcs[Item.Members[I]].Name + "'",
                         VDiags);
          Report.Funcs[Item.Members[I]].FuncSketch = Art->FinalSketches[I];
        }
        for (const auto &[CalleeName, Sk] : Art->CallsiteRecords)
          if (auto CalleeId = M.findFunction(CalleeName))
            ActualSketches[*CalleeId].push_back(Sk);
        break;
      }
      }
      trace::instant("commit", "sched", -1, Scc);
      for (uint32_t T : CG.sccCallees(Scc))
        if (--DepCount[T] == 0)
          pushReady(T);
    };

    // The drainer loop — same priorities as phase 1: commit, prep, flush
    // tiny batch, help the pool, sleep only when the next slot is in
    // flight on a worker.
    size_t Next = 0;
    const size_t N = Seq.size();
    while (Next < N) {
      if (HasErr.load(std::memory_order_relaxed))
        break;
      uint32_t Scc = Seq[Next];
      if (Done[Scc].load(std::memory_order_acquire)) {
        commit(Scc);
        ++Next;
        NextCommit.store(Next, std::memory_order_relaxed);
        continue;
      }
      if (ReadyHead < ReadyQ.size()) {
        prep(ReadyQ[ReadyHead++]);
        continue;
      }
      if (!TinyBatch.empty()) {
        flushTiny();
        continue;
      }
      if (Pool.tryRunOne())
        continue;
      std::unique_lock<std::mutex> Lock(SchedMu);
      SchedCv.wait(Lock, [&] {
        return Done[Scc].load(std::memory_order_acquire) ||
               HasErr.load(std::memory_order_relaxed);
      });
    }
    // Teardown join, not a scheduling barrier (see phase 1).
    Pool.waitAll();
    Report.Stats.CommitStalls += Stalls.load(std::memory_order_relaxed);
    {
      std::exception_ptr E;
      {
        std::lock_guard<std::mutex> Lock(SchedMu);
        E = SchedErr;
      }
      if (E)
        std::rethrow_exception(E);
    }
  }

  // Cache effectiveness across both phases (scheme AND solution probes).
  if (Cache) {
    Report.Stats.CacheHits = Cache->hits() - Hits0;
    Report.Stats.CacheMisses = Cache->misses() - Misses0;
  }

  // ---- Phase 3: C type conversion (§4.3) ----
  {
    Clock::time_point T0 = Clock::now();
    ScopedPhaseTimer Timer("pipeline.convert");
    trace::TraceSpan Span("convert", "phase");
    CTypeConverter Conv(Report.Pool, Lat, Opts.Conversion);
    for (auto &[F, FT] : Report.Funcs)
      FT.CType = Conv.convertFunction(FT.FuncSketch);
    Report.Stats.ConvertSecs += secondsSince(T0);
  }

  // ---- Record this run's snapshots for the next incremental analyze ----
  if (KeepHist) {
    std::unordered_map<std::string, FuncSnapshot> NewSnaps;
    NewSnaps.reserve(M.Funcs.size());
    for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
      const std::string &Name = M.Funcs[F].Name;
      FuncSnapshot Snap;
      Snap.BodyHash = BodyHashes[F];
      auto HashIt = NewSchemeHashes.find(Name);
      Snap.SchemeHash =
          HashIt != NewSchemeHashes.end() ? HashIt->second : kNoSchemeHash;
      auto CntIt = NewIncomingCount.find(Name);
      Snap.IncomingRecords =
          CntIt != NewIncomingCount.end() ? CntIt->second : 0;
      NewSnaps.emplace(Name, std::move(Snap));
    }
    Snapshots = std::move(NewSnaps);
    Artifacts = std::move(NewArtifacts);
    GlobalsSig = std::move(GSig);
  } else {
    Snapshots.clear();
    Artifacts.clear();
    GlobalsSig.clear();
  }
  DirtyNames.clear();

  // ---- Journal this run's new artifacts to the durable store ----------
  // The report is already complete and correct at this point; a failed
  // flush only costs durability, so it is surfaced via storeError()
  // rather than aborting the run. A later successful flush clears the
  // error: it re-appends everything the store is missing, so the failed
  // attempt leaves no lasting gap.
  if (Cache && Cache->store()) {
    trace::TraceSpan Span("store.flush", "store");
    std::string FlushErr;
    if (Cache->flushToStore(&FlushErr))
      StoreError.clear();
    else
      StoreError = FlushErr;
  }
  Report.StoreError = StoreError;
  const CounterSnapshot CounterDelta = Counters0.delta();
  Report.Stats.StoreHits = CounterDelta.StoreHits;
  Report.Stats.StoreAppends = CounterDelta.StoreAppends;
  Report.Stats.PoolBindHits = CounterDelta.PoolBindHits;
  Report.VerifyErrors = std::move(VDiags.Errors);

  Analyzed = true;
  return Report;
}
