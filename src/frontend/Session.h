//===- Session.h - Long-lived incremental analysis engine ----*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `AnalysisSession` is the resident form of the type-inference engine: it
/// owns the lattice, the symbol table, the summary cache, and the last
/// run's per-SCC artifacts, and it re-analyzes *incrementally* after
/// edits. This is the API shape real consumers of the algorithm use — a
/// decompiler keeps one session per binary and re-queries it as functions
/// are patched and re-loaded — and it is exactly what the paper's
/// bottom-up/top-down scheme architecture (Appendix F) makes sound:
///
///  - Phase 1 (scheme inference) walks call-graph SCCs bottom-up. A
///    procedure's simplified scheme is a pure function of its body and its
///    callees' schemes, so an SCC whose members and callee schemes are
///    unchanged can replay its previous schemes verbatim. When a dirty SCC
///    re-simplifies to a *structurally identical* scheme — compared by the
///    128-bit structural hash of core/SchemeCodec.h, no text involved —
///    the dirtiness stops there and its callers stay clean (early cutoff).
///  - Phase 2 (sketch solving) walks SCCs top-down. An SCC's raw solution
///    depends only on its own constraint set; its *final* sketches
///    additionally depend on the actual-in/out sketches its callers
///    observed (Algorithm F.3). The session therefore distinguishes
///    re-solving (constraints changed) from re-refining (only the incoming
///    callsite sketches changed) from full reuse.
///  - Phase 3 (C-type conversion) is cheap and re-runs from scratch, which
///    keeps struct numbering identical to a from-scratch analysis.
///
/// The contract, enforced by tests: `analyze()` after any edit sequence
/// produces a report **byte-identical** to a from-scratch run over the
/// current module, while `PipelineStats` records strictly fewer SCC
/// simplifications whenever anything was reusable.
///
/// \code
///   AnalysisSession S(makeDefaultLattice());
///   S.loadModule(std::move(M));
///   S.analyze();
///   S.prototypeOf("close_last");        // structured result, not "<no type>"
///   S.replaceFunction("helper", NewBody);
///   S.analyze();                        // only the dirty SCC cone re-runs
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_FRONTEND_SESSION_H
#define RETYPD_FRONTEND_SESSION_H

#include "core/Sketch.h"
#include "core/SolverBackend.h"
#include "core/SummaryCache.h"
#include "frontend/AnalysisOptions.h"
#include "support/Hash128.h"
#include "mir/MIR.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace retypd {

/// Wall-clock, cache, and incrementality counters for one analyze() call.
struct PipelineStats {
  /// Solver backend that produced this run ("retypd" or "binsub") —
  /// recorded in the stats JSON so archived reports are attributable.
  std::string Backend = "retypd";
  double GenerateSecs = 0;  ///< constraint generation (main thread)
  double SimplifySecs = 0;  ///< scheme simplification, summed over work
                            ///< units (CPU time: exceeds wall when parallel)
  double SolveSecs = 0;     ///< sketch solving, summed over work units
                            ///< (CPU time: exceeds wall when parallel)
  double ConvertSecs = 0;   ///< C-type conversion (sequential)
  size_t SccCount = 0;
  size_t WaveCount = 0;  ///< condensation depth (diagnostic; no barriers)
  size_t WidestWave = 0; ///< widest antichain the scheduler can exploit
  unsigned JobsUsed = 1;

  // --- Readiness-scheduler counters (see README "Execution model") ---
  /// SCCs dispatched to the pool as (part of) a work unit, both phases.
  /// Always equals SccsSimplified + SccsSolved: reused/trivial SCCs are
  /// never scheduled, which is what keeps incremental runs cheap.
  uint64_t SccsScheduled = 0;
  /// Work units submitted to the pool (a batch of tiny SCCs counts once).
  uint64_t BatchesFormed = 0;
  /// High-water mark of the ready queue (SCCs whose dependencies had all
  /// committed but which the main thread had not yet prepped).
  uint64_t MaxReadyQueue = 0;
  /// Slots published out of commit order — results that sat finished
  /// while the drainer waited on an earlier sequence number.
  uint64_t CommitStalls = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Generation-result cache probes this run (a subset of
  /// CacheHits/CacheMisses: gen entries live in the same summary cache).
  uint64_t GenCacheHits = 0;
  uint64_t GenCacheMisses = 0;
  /// Artifact-store traffic this run (zero without an attached store):
  /// probes served zero-copy from the mapped store, records journaled by
  /// the end-of-run flush, and store decodes whose names resolved through
  /// the pool translation table — no per-payload string hashing.
  uint64_t StoreHits = 0;
  uint64_t StoreAppends = 0;
  uint64_t PoolBindHits = 0;

  // --- Incremental re-analysis counters (all zero on a first run) ---
  /// Whether this run could draw on a previous run's artifacts.
  bool IncrementalRun = false;
  /// Functions whose bodies were edited/invalidated since the last run.
  size_t FunctionsDirty = 0;
  /// SCCs that ran constraint generation + simplification this run.
  size_t SccsSimplified = 0;
  /// SCCs whose schemes were replayed from the previous run.
  size_t SccsReused = 0;
  /// Member schemes computed via the simplifier/summary cache this run.
  size_t SchemesComputed = 0;
  /// Member schemes replayed from the previous run.
  size_t SchemesReused = 0;
  /// SCCs sketch-solved this run.
  size_t SccsSolved = 0;
  /// SCCs that only re-ran parameter refinement (raw solution replayed).
  size_t SccsRefinedOnly = 0;
  /// SCCs whose final sketches were replayed outright.
  size_t SccsSolveReused = 0;
};

/// Inference results for one function.
struct FunctionTypes {
  TypeScheme Scheme;   ///< simplified, most-general type scheme
  Sketch FuncSketch;   ///< solved (and possibly refined) sketch
  CTypeId CType = NoCType; ///< function type in TypeReport::Pool
  unsigned NumParams = 0;
};

/// Why a type query produced no value.
enum class TypeQueryStatus : uint8_t {
  Ok = 0,          ///< a value was produced
  NoModule,        ///< the session has no module loaded
  NotAnalyzed,     ///< analyze() has not run since the module was loaded
  UnknownFunction, ///< no function with that id/name exists in the module
  NoTypeInferred,  ///< the function exists but inference produced no type
};

const char *typeQueryStatusName(TypeQueryStatus S);

/// A structured query result: either a value, or the reason there is none.
template <typename T> struct SessionQuery {
  std::optional<T> Value;
  TypeQueryStatus Status = TypeQueryStatus::Ok;

  explicit operator bool() const { return Value.has_value(); }
  const T &operator*() const { return *Value; }
  const T *operator->() const { return &*Value; }

  static SessionQuery ok(T V) { return {std::move(V), TypeQueryStatus::Ok}; }
  static SessionQuery fail(TypeQueryStatus S) { return {std::nullopt, S}; }
};

/// Whole-module results of one analyze() call.
struct TypeReport {
  std::shared_ptr<SymbolTable> Syms;
  CTypePool Pool;
  std::map<uint32_t, FunctionTypes> Funcs;

  // Simple counters for the scaling studies.
  size_t ConstraintsGenerated = 0;
  size_t SaturationEdges = 0;

  /// Per-phase timing, cache effectiveness, and incrementality for this run.
  PipelineStats Stats;

  /// Why the configured artifact store could not be opened or flushed
  /// ("" when it worked, or when none was configured). This is how
  /// one-shot Pipeline callers — who never see the session — observe
  /// store failures; the analysis results themselves are complete and
  /// correct either way.
  std::string StoreError;

  /// Formation-rule violations the verifier found this run (empty when
  /// clean, or when SessionOptions::Verify is Off). Fully rendered
  /// one-line diagnostics, in deterministic commit-slot order — the same
  /// order at any --jobs value.
  std::vector<std::string> VerifyErrors;

  const FunctionTypes *typesOf(uint32_t FuncId) const {
    auto It = Funcs.find(FuncId);
    return It == Funcs.end() ? nullptr : &It->second;
  }

  /// Structured prototype query: distinguishes "no such function" from
  /// "inference produced no type for it".
  SessionQuery<std::string> prototype(uint32_t FuncId, const Module &M) const;

  /// Legacy convenience: renders "<no type>" for both failure modes. Kept
  /// because the canonical report text prints exactly that placeholder.
  std::string prototypeOf(uint32_t FuncId, const Module &M) const;
};

/// Session configuration. The knobs shared with the one-shot Pipeline
/// facade live in the AnalysisOptions base (frontend/AnalysisOptions.h);
/// only the session-lifetime fields are declared here. Note for
/// SessionOptions::StoreDir: when an ExternalCache is configured the
/// store is NOT opened here — attach one to that cache directly.
struct SessionOptions : AnalysisOptions {
  /// Memoize simplifications in the session-owned summary cache. Distinct
  /// from incremental SCC reuse: the cache also hits on content-identical
  /// SCCs across modules and (when persisted) across processes. StoreDir
  /// implies this.
  bool UseSummaryCache = true;
  /// Share an external cache instead of the session-owned one (not owned;
  /// overrides UseSummaryCache when set).
  SummaryCache *ExternalCache = nullptr;
  /// Record per-function snapshots and per-SCC artifacts so the *next*
  /// analyze() can be incremental. One-shot callers (the Pipeline facade)
  /// turn this off to skip the bookkeeping entirely.
  bool KeepHistory = true;
};

/// A long-lived, incrementally re-analyzable instance of the engine.
class AnalysisSession {
public:
  explicit AnalysisSession(Lattice Lat, SessionOptions Opts = SessionOptions());
  ~AnalysisSession();
  AnalysisSession(const AnalysisSession &) = delete;
  AnalysisSession &operator=(const AnalysisSession &) = delete;

  // --- Module lifecycle -------------------------------------------------
  /// Replaces the module and discards all incremental history: the next
  /// analyze() is a from-scratch run.
  void loadModule(Module NewM);

  /// Parses \p AsmText and loadModule()s it. On parse failure returns
  /// false, stores the message in \p Err (when non-null), and leaves the
  /// session unchanged.
  bool loadModuleText(const std::string &AsmText, std::string *Err = nullptr);

  /// Replaces the module but *keeps* incremental history: the next
  /// analyze() re-runs only functions whose rendered bodies differ from
  /// the previous run (matched by name), plus their dependents. This is
  /// how a re-loaded, edited binary is fed to a resident session.
  void updateModule(Module NewM);

  /// Parses \p AsmText and updateModule()s it (same failure contract as
  /// loadModuleText).
  bool updateModuleText(const std::string &AsmText, std::string *Err = nullptr);

  /// Swaps in a new body for one function and marks it dirty. Returns
  /// false if no such function exists. \p NewBody.Name may be empty to
  /// keep the current name.
  bool replaceFunction(uint32_t FuncId, Function NewBody);
  bool replaceFunction(const std::string &Name, Function NewBody);

  /// Appends a new function (dirty by construction); returns its id.
  uint32_t addFunction(Function F);

  /// Marks a function dirty without changing it (forces its SCC cone to
  /// re-run on the next analyze()).
  bool invalidate(uint32_t FuncId);
  bool invalidate(const std::string &Name);

  /// Drops all incremental history; the next analyze() is from-scratch.
  void invalidateAll();

  bool hasModule() const { return HasModule; }
  const Module &module() const { return M; }

  // --- Analysis ---------------------------------------------------------
  /// Runs inference over the current module, reusing every artifact of the
  /// previous run that the edit set provably did not affect. The returned
  /// report is byte-identical to a from-scratch run.
  const TypeReport &analyze();

  /// Moves the last report out of the session (queries return NotAnalyzed
  /// afterwards; incremental history is unaffected).
  TypeReport takeReport();

  /// Moves the module out of the session, ending its module lifetime (the
  /// one-shot Pipeline facade uses this to hand the interface-recovered
  /// module back without a deep copy).
  Module takeModule();

  bool analyzed() const { return Analyzed; }
  /// The last report, or nullptr before the first analyze().
  const TypeReport *report() const { return Analyzed ? &Report : nullptr; }

  // --- Structured queries (no Module reference needed) ------------------
  std::optional<uint32_t> functionId(const std::string &Name) const;
  SessionQuery<std::string> prototypeOf(uint32_t FuncId) const;
  SessionQuery<std::string> prototypeOf(const std::string &Name) const;
  SessionQuery<std::string> schemeOf(uint32_t FuncId) const;
  SessionQuery<std::string> schemeOf(const std::string &Name) const;
  SessionQuery<std::string> sketchOf(uint32_t FuncId,
                                     unsigned MaxDepth = 4) const;
  SessionQuery<std::string> sketchOf(const std::string &Name,
                                     unsigned MaxDepth = 4) const;

  // --- Owned state ------------------------------------------------------
  const Lattice &lattice() const { return Lat; }
  const SymbolTable &symbols() const { return *Syms; }
  /// The cache analyze() actually consults — the external cache when one
  /// was configured, the session-owned one otherwise. Persist it with
  /// save()/load().
  SummaryCache &summaryCache() {
    return Opts.ExternalCache ? *Opts.ExternalCache : OwnedCache;
  }
  const SessionOptions &options() const { return Opts; }
  /// Why SessionOptions::StoreDir could not be opened ("" when it was —
  /// or when no store was requested).
  const std::string &storeError() const { return StoreError; }

private:
  struct SccArtifact;
  struct FuncSnapshot;

  SummaryCache *activeCache();
  /// Probes the scheme cache, then simplifies on a miss. \p Constraints is
  /// invoked only on that miss — the fully warm path never materializes a
  /// constraint set — and may return nullptr when a lazily-replayed set
  /// can no longer be materialized (cache entry evicted since the meta
  /// probe), in which case summarize returns nullopt and the caller
  /// regenerates.
  /// \p FromCache, when non-null, reports whether the scheme came from the
  /// cache (the tracer uses it to attribute per-SCC hit/miss kind).
  std::optional<TypeScheme>
  summarize(const std::function<const ConstraintSet *()> &Constraints,
            const Hash128 &SetHash, TypeVariable ProcVar,
            const std::unordered_set<TypeVariable> &Keep,
            const SolverBackend &Backend, SummaryCache *Cache,
            bool *FromCache = nullptr);
  /// \p JoinOps, when non-null, accumulates the number of sketch
  /// join/meet operations performed (the open-item-4 diagnostic).
  Sketch refineSketch(Sketch Sk, uint32_t FuncId,
                      const std::vector<Sketch> &Actuals,
                      uint64_t *JoinOps = nullptr) const;
  SessionQuery<std::string> queryGate(uint32_t FuncId) const;
  void markDirtyName(const std::string &Name);

  Lattice Lat;
  SessionOptions Opts;
  std::shared_ptr<SymbolTable> Syms;
  SummaryCache OwnedCache;
  std::string StoreError;

  Module M;
  bool HasModule = false;
  bool Analyzed = false;
  TypeReport Report;

  /// Last run's per-SCC artifacts, keyed by the SCC's ordered non-external
  /// member names ('\\x1f'-joined). Name keys survive function-id shifts
  /// from insertions/removals elsewhere in the module.
  std::unordered_map<std::string, SccArtifact> Artifacts;
  /// Last run's per-function snapshots, keyed by function name.
  std::unordered_map<std::string, FuncSnapshot> Snapshots;
  /// Names explicitly invalidated since the last run.
  std::unordered_set<std::string> DirtyNames;
  /// Rendered signature of the global-variable table at the last run; any
  /// change conservatively invalidates everything.
  std::string GlobalsSig;
};

} // namespace retypd

#endif // RETYPD_FRONTEND_SESSION_H
