//===- DefaultLattice.cpp - The stock lattice of type constants ----------===//
//
// The default Λ mirrors the flavor of the paper's large auxiliary lattice
// (§3.5): standard C scalar names, common typedefs from POSIX and Windows
// APIs (modelling the ad-hoc typedef hierarchies of §2.8), and semantic tags
// such as #FileDescriptor and #SuccessZ from Figure 2.
//
// The user-facing order is a tree under `top` (plus the implicit bottom), so
// the structure is a lattice by construction; LatticeBuilder::build still
// validates it.
//
//===----------------------------------------------------------------------===//

#include "lattice/Lattice.h"

#include <cassert>

using namespace retypd;

Lattice retypd::makeDefaultLattice() {
  LatticeBuilder B;
  const LatticeElem Top = Lattice::Top;

  // Generic machine words. LPARAM/WPARAM-style typedefs are *supertypes* of
  // the scalars they may carry (§2.8): they sit between `top` and the
  // 32-bit numeric family.
  LatticeElem Word32 = B.add("LPARAM", Top); // generic 32-bit value
  LatticeElem Num32 = B.add("num32", Word32, /*Numeric=*/true);
  LatticeElem Int32 = B.add("int", Num32);
  LatticeElem UInt32 = B.add("uint", Num32);
  B.add("WPARAM", Word32);

  // Semantic tags from the paper sit under the scalar they refine.
  B.add("#FileDescriptor", Int32);
  B.add("#SuccessZ", Int32);
  B.add("#SocketDescriptor", Int32);
  B.add("#signal-number", Int32);
  B.add("bool", Int32);

  LatticeElem SizeT = B.add("size_t", UInt32);
  B.add("#ByteCount", SizeT);
  B.add("uintptr_t", UInt32);
  B.add("DWORD", UInt32);

  // Narrow and wide integers.
  LatticeElem Num8 = B.add("num8", Top, /*Numeric=*/true);
  B.add("int8", Num8);
  LatticeElem UInt8 = B.add("uint8", Num8);
  B.add("char", UInt8);
  LatticeElem Num16 = B.add("num16", Top, /*Numeric=*/true);
  B.add("int16", Num16);
  B.add("uint16", Num16);
  LatticeElem Num64 = B.add("num64", Top, /*Numeric=*/true);
  B.add("int64", Num64);
  B.add("uint64", Num64);

  // Floating point.
  LatticeElem Float = B.add("float-family", Top);
  B.add("float", Float);
  B.add("double", Float);

  // Opaque handle typedefs (Windows-style ad-hoc hierarchy, §2.8):
  // HGDI is a generic GDI handle with more specific handles below it.
  LatticeElem Handle = B.add("HANDLE", Top);
  LatticeElem HGdi = B.add("HGDI", Handle);
  B.add("HBRUSH", HGdi);
  B.add("HPEN", HGdi);
  B.add("HWND", Handle);

  // String-ish and file-ish opaque purposes used by known-function schemes.
  B.add("str", Top);
  B.add("FILE", Top);
  B.add("code", Top);

  Lattice L;
  std::string Err;
  bool Ok = B.build(L, Err);
  assert(Ok && "default lattice must validate");
  (void)Ok;
  return L;
}
