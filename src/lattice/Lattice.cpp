//===- Lattice.cpp - The auxiliary lattice Λ of type constants -----------===//

#include "lattice/Lattice.h"

#include <algorithm>
#include <cassert>

using namespace retypd;

std::optional<LatticeElem> Lattice::lookup(std::string_view Name) const {
  auto It = ByName.find(std::string(Name));
  if (It == ByName.end())
    return std::nullopt;
  return It->second;
}

const std::string &Lattice::name(LatticeElem E) const {
  assert(E < Names.size() && "lattice element out of range");
  return Names[E];
}

bool Lattice::leq(LatticeElem A, LatticeElem B) const {
  assert(A < Names.size() && B < Names.size());
  return upContains(A, B);
}

LatticeElem Lattice::join(LatticeElem A, LatticeElem B) const {
  if (leq(A, B))
    return B;
  if (leq(B, A))
    return A;
  // The least element of upset(A) ∩ upset(B). Uniqueness was validated at
  // build time, so the minimal common upper bound is unique.
  LatticeElem Best = Top;
  for (LatticeElem C = 0; C < Names.size(); ++C)
    if (upContains(A, C) && upContains(B, C) && leq(C, Best))
      Best = C;
  return Best;
}

LatticeElem Lattice::meet(LatticeElem A, LatticeElem B) const {
  if (leq(A, B))
    return A;
  if (leq(B, A))
    return B;
  LatticeElem Best = Bottom;
  for (LatticeElem C = 0; C < Names.size(); ++C)
    if (upContains(C, A) && upContains(C, B) && leq(Best, C))
      Best = C;
  return Best;
}

LatticeBuilder::LatticeBuilder() {
  Names.emplace_back("top");
  Parents.emplace_back();
  Numeric.push_back(false);
  Names.emplace_back("bottom");
  Parents.emplace_back(); // Bottom's order is implicit: below everything.
  Numeric.push_back(false);
}

LatticeElem LatticeBuilder::add(std::string_view Name, LatticeElem Parent,
                                bool IsNumeric) {
  return addMultiParent(Name, {Parent}, IsNumeric);
}

LatticeElem
LatticeBuilder::addMultiParent(std::string_view Name,
                               const std::vector<LatticeElem> &Ps,
                               bool IsNumeric) {
  assert(!Ps.empty() && "element needs at least one parent");
  for (LatticeElem P : Ps) {
    assert(P < Names.size() && "parent must be added first");
    assert(P != Lattice::Bottom && "nothing may sit below bottom");
    (void)P;
  }
  LatticeElem Id = static_cast<LatticeElem>(Names.size());
  Names.emplace_back(Name);
  Parents.push_back(Ps);
  // Numeric-ness is inherited from any numeric parent.
  bool Flag = IsNumeric;
  for (LatticeElem P : Ps)
    Flag = Flag || Numeric[P];
  Numeric.push_back(Flag);
  return Id;
}

bool LatticeBuilder::build(Lattice &Out, std::string &Err) const {
  size_t N = Names.size();
  size_t Words = (N + 63) / 64;

  // Detect duplicate names.
  {
    std::unordered_map<std::string, LatticeElem> Seen;
    for (LatticeElem E = 0; E < N; ++E) {
      auto [It, Inserted] = Seen.emplace(Names[E], E);
      (void)It;
      if (!Inserted) {
        Err = "duplicate lattice element name: " + Names[E];
        return false;
      }
    }
  }

  // Compute up-sets by transitive closure over parent edges. Elements were
  // appended parents-first, so a reverse sweep reaches a fixpoint... except
  // that ids are increasing, so a single forward pass (parents have smaller
  // ids) suffices.
  std::vector<std::vector<uint64_t>> Up(N, std::vector<uint64_t>(Words, 0));
  auto Set = [&](std::vector<uint64_t> &BS, LatticeElem B) {
    BS[B >> 6] |= uint64_t(1) << (B & 63);
  };
  auto Get = [&](const std::vector<uint64_t> &BS, LatticeElem B) {
    return (BS[B >> 6] >> (B & 63)) & 1;
  };

  Set(Up[Lattice::Top], Lattice::Top);
  for (LatticeElem E = 2; E < N; ++E) {
    Set(Up[E], E);
    for (LatticeElem P : Parents[E]) {
      assert(P < E && "parents must precede children");
      for (size_t W = 0; W < Words; ++W)
        Up[E][W] |= Up[P][W];
    }
  }
  // Bottom is below everything: its up-set is all elements.
  for (size_t W = 0; W < Words; ++W)
    Up[Lattice::Bottom][W] = ~uint64_t(0);
  if (N % 64 != 0)
    Up[Lattice::Bottom][Words - 1] = (uint64_t(1) << (N % 64)) - 1;

  auto Leq = [&](LatticeElem A, LatticeElem B) { return Get(Up[A], B) != 0; };

  // Validate unique lub/glb for every pair. With a tree-plus-bottom this is
  // automatic, but multi-parent elements can break it.
  for (LatticeElem A = 0; A < N; ++A) {
    for (LatticeElem B = A + 1; B < N; ++B) {
      if (Leq(A, B) || Leq(B, A))
        continue;
      // Minimal common upper bounds.
      unsigned MinUpper = 0;
      for (LatticeElem C = 0; C < N; ++C) {
        if (!(Leq(A, C) && Leq(B, C)))
          continue;
        bool Minimal = true;
        for (LatticeElem D = 0; D < N && Minimal; ++D)
          if (D != C && Leq(A, D) && Leq(B, D) && Leq(D, C))
            Minimal = false;
        if (Minimal)
          ++MinUpper;
      }
      if (MinUpper != 1) {
        Err = "no unique join for '" + Names[A] + "' and '" + Names[B] + "'";
        return false;
      }
      unsigned MaxLower = 0;
      for (LatticeElem C = 0; C < N; ++C) {
        if (!(Leq(C, A) && Leq(C, B)))
          continue;
        bool Maximal = true;
        for (LatticeElem D = 0; D < N && Maximal; ++D)
          if (D != C && Leq(D, A) && Leq(D, B) && Leq(C, D))
            Maximal = false;
        if (Maximal)
          ++MaxLower;
      }
      if (MaxLower != 1) {
        Err = "no unique meet for '" + Names[A] + "' and '" + Names[B] + "'";
        return false;
      }
    }
  }

  // Height: longest chain, computed as longest path over the <= DAG.
  std::vector<unsigned> Depth(N, 1);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (LatticeElem A = 0; A < N; ++A)
      for (LatticeElem B = 0; B < N; ++B)
        if (A != B && Leq(A, B) && Depth[B] < Depth[A] + 1) {
          Depth[B] = Depth[A] + 1;
          Changed = true;
        }
  }

  Out.Names = Names;
  Out.UpSets = std::move(Up);
  Out.ByName.clear();
  for (LatticeElem E = 0; E < N; ++E)
    Out.ByName.emplace(Names[E], E);
  Out.NumericFlags = Numeric;
  Out.Height = *std::max_element(Depth.begin(), Depth.end());
  return true;
}
