//===- Lattice.h - The auxiliary lattice Λ of type constants --*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The customizable lattice Λ of atomic type constants (paper §2.8, §3.5,
/// Appendix E). Elements are symbolic names — C scalar type names, API
/// typedefs such as HANDLE, and user-defined semantic tags such as
/// #FileDescriptor. Sketch nodes are decorated with Λ elements, and the
/// constraint solver reduces satisfiability to scalar comparisons in Λ.
///
/// The lattice is built once through LatticeBuilder and immutable afterward;
/// meet/join/leq queries are O(number of elements) bitset scans.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_LATTICE_LATTICE_H
#define RETYPD_LATTICE_LATTICE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace retypd {

/// Dense id of a lattice element. Id 0 is always Top and id 1 always Bottom.
using LatticeElem = uint32_t;

/// An immutable finite lattice of type constants.
///
/// Invariants established by LatticeBuilder::build():
///  - element 0 is Top, element 1 is Bottom;
///  - every element is <= Top and >= Bottom;
///  - every pair of elements has a unique least upper bound and a unique
///    greatest lower bound (checked at build time).
class Lattice {
public:
  static constexpr LatticeElem Top = 0;
  static constexpr LatticeElem Bottom = 1;

  /// Returns the element named \p Name, if any.
  std::optional<LatticeElem> lookup(std::string_view Name) const;

  /// Returns the name of \p E.
  const std::string &name(LatticeElem E) const;

  /// Partial order query: is \p A <= \p B?
  bool leq(LatticeElem A, LatticeElem B) const;

  /// Least upper bound.
  LatticeElem join(LatticeElem A, LatticeElem B) const;

  /// Greatest lower bound.
  LatticeElem meet(LatticeElem A, LatticeElem B) const;

  /// True for user-defined semantic tags (names starting with '#').
  bool isTag(LatticeElem E) const { return name(E)[0] == '#'; }

  /// True for elements marked numeric at build time (or below one that is).
  /// Drives the ADD/SUB pointer-vs-integer propagation of Appendix A.6.
  bool isNumeric(LatticeElem E) const { return NumericFlags[E]; }

  size_t size() const { return Names.size(); }

  /// Height of the lattice (longest chain), useful for fixpoint bounds.
  unsigned height() const { return Height; }

private:
  friend class LatticeBuilder;

  // Leq[A] is a bitset (as vector<uint64_t>) of all B with A <= B.
  std::vector<std::string> Names;
  std::vector<std::vector<uint64_t>> UpSets;
  std::unordered_map<std::string, LatticeElem> ByName;
  std::vector<bool> NumericFlags;
  unsigned Height = 1;

  bool upContains(LatticeElem A, LatticeElem B) const {
    return (UpSets[A][B >> 6] >> (B & 63)) & 1;
  }
};

/// Incrementally describes a lattice, then validates and freezes it.
///
/// Usage:
/// \code
///   LatticeBuilder B;
///   LatticeElem Num = B.add("num32", Lattice::Top);
///   LatticeElem Int = B.add("int32", Num);
///   B.add("#FileDescriptor", Int);
///   Lattice L;
///   std::string Err;
///   bool Ok = B.build(L, Err);
/// \endcode
class LatticeBuilder {
public:
  LatticeBuilder();

  /// Adds an element under a single parent. Because the user-facing order is
  /// a tree rooted at Top (plus the implicit Bottom below everything), the
  /// result is guaranteed to be a lattice. \p Numeric marks the element (and
  /// implicitly everything later added below it) as integer-like.
  LatticeElem add(std::string_view Name, LatticeElem Parent,
                  bool Numeric = false);

  /// Adds an element with several parents. The build() call verifies that
  /// unique meets and joins still exist.
  LatticeElem addMultiParent(std::string_view Name,
                             const std::vector<LatticeElem> &Parents,
                             bool Numeric = false);

  /// Validates lattice laws and freezes the result into \p Out. On failure
  /// returns false and describes the offending pair in \p Err.
  bool build(Lattice &Out, std::string &Err) const;

  /// Number of elements added so far (including Top and Bottom).
  size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::vector<std::vector<LatticeElem>> Parents;
  std::vector<bool> Numeric;
};

/// Builds the default lattice used throughout the reproduction: C scalar
/// types, common POSIX/Windows typedefs, and the semantic tags appearing in
/// the paper (#FileDescriptor, #SuccessZ, ...). See DefaultLattice.cpp for
/// the full inventory.
Lattice makeDefaultLattice();

} // namespace retypd

#endif // RETYPD_LATTICE_LATTICE_H
