//===- BinaryImage.cpp - Flat binary encode / decode / disassemble ---------===//

#include "loader/BinaryImage.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <set>

using namespace retypd;

namespace {

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  B.push_back(V & 0xff);
  B.push_back((V >> 8) & 0xff);
  B.push_back((V >> 16) & 0xff);
  B.push_back((V >> 24) & 0xff);
}

uint32_t getU32(const std::vector<uint8_t> &B, size_t Off) {
  return uint32_t(B[Off]) | uint32_t(B[Off + 1]) << 8 |
         uint32_t(B[Off + 2]) << 16 | uint32_t(B[Off + 3]) << 24;
}

constexpr uint8_t GlobalBaseMarker = 0xfe;

} // namespace

EncodedImage retypd::encodeModule(const Module &M) {
  EncodedImage Out;

  // Assign addresses: imports first (synthetic thunk addresses), then code
  // laid out contiguously, then data.
  std::vector<uint32_t> FuncAddr(M.Funcs.size(), 0);
  uint32_t NextImport = ImageLayout::ImportBase;
  uint32_t NextCode = ImageLayout::CodeBase;
  for (size_t F = 0; F < M.Funcs.size(); ++F) {
    if (M.Funcs[F].IsExternal) {
      FuncAddr[F] = NextImport;
      NextImport += ImageLayout::InstrBytes;
    } else {
      FuncAddr[F] = NextCode;
      NextCode += static_cast<uint32_t>(M.Funcs[F].Body.size()) *
                  ImageLayout::InstrBytes;
    }
    Out.FunctionAddrs[M.Funcs[F].Name] = FuncAddr[F];
  }
  std::vector<uint32_t> GlobalAddr(M.Globals.size(), 0);
  uint32_t NextData = ImageLayout::DataBase;
  for (size_t G = 0; G < M.Globals.size(); ++G) {
    GlobalAddr[G] = NextData;
    NextData += std::max<uint32_t>(4, M.Globals[G].Size);
    Out.GlobalAddrs[M.Globals[G].Name] = GlobalAddr[G];
  }

  // Header: magic, entry address, import count, code bytes, data bytes.
  std::vector<uint8_t> &B = Out.Bytes;
  putU32(B, ImageLayout::Magic);
  putU32(B, FuncAddr[M.EntryFunc]);
  uint32_t NumImports = 0;
  for (const Function &F : M.Funcs)
    NumImports += F.IsExternal;
  putU32(B, NumImports);
  putU32(B, NextCode - ImageLayout::CodeBase);
  putU32(B, NextData - ImageLayout::DataBase);

  // Import table: address + name (real binaries keep import names).
  for (size_t F = 0; F < M.Funcs.size(); ++F) {
    if (!M.Funcs[F].IsExternal)
      continue;
    putU32(B, FuncAddr[F]);
    putU32(B, static_cast<uint32_t>(M.Funcs[F].Name.size()));
    for (char C : M.Funcs[F].Name)
      B.push_back(static_cast<uint8_t>(C));
  }

  // Code.
  for (size_t F = 0; F < M.Funcs.size(); ++F) {
    const Function &Fn = M.Funcs[F];
    if (Fn.IsExternal)
      continue;
    for (const Instr &I : Fn.Body) {
      B.push_back(static_cast<uint8_t>(I.Op));
      B.push_back(static_cast<uint8_t>(I.Dst));
      B.push_back(static_cast<uint8_t>(I.Src));
      B.push_back(static_cast<uint8_t>(I.CC));
      // Memory base: register id, or GlobalBaseMarker for data refs.
      if (I.Mem.isGlobal()) {
        B.push_back(GlobalBaseMarker);
      } else {
        B.push_back(static_cast<uint8_t>(I.Mem.Base));
      }
      B.push_back(I.Mem.Size);
      B.push_back(0);
      B.push_back(0);
      putU32(B, static_cast<uint32_t>(I.Imm));

      // Target word: branch -> absolute code address; call -> callee
      // address; global memory/addr -> data address (+Disp folded in by
      // the decoder); reg memory -> displacement.
      uint32_t T = 0;
      switch (I.Op) {
      case Opcode::Jmp:
      case Opcode::Jcc:
        T = FuncAddr[F] + I.Target * ImageLayout::InstrBytes;
        break;
      case Opcode::Call:
        T = FuncAddr[I.Target];
        break;
      case Opcode::MovGlobal:
        T = GlobalAddr[I.Target];
        break;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::StoreImm:
      case Opcode::Lea:
        T = I.Mem.isGlobal()
                ? GlobalAddr[I.Mem.GlobalSym] + static_cast<uint32_t>(I.Mem.Disp)
                : static_cast<uint32_t>(I.Mem.Disp);
        break;
      default:
        break;
      }
      putU32(B, T);
    }
  }
  return Out;
}

std::optional<Module>
retypd::decodeImage(const std::vector<uint8_t> &Bytes, DecodeReport &Report) {
  if (Bytes.size() < 20 || getU32(Bytes, 0) != ImageLayout::Magic) {
    Report.Error = "bad magic or truncated header";
    return std::nullopt;
  }
  uint32_t EntryAddr = getU32(Bytes, 4);
  uint32_t NumImports = getU32(Bytes, 8);
  uint32_t CodeBytes = getU32(Bytes, 12);
  uint32_t DataBytes = getU32(Bytes, 16);

  Module M;

  // Import table.
  size_t Off = 20;
  std::map<uint32_t, uint32_t> FuncIdByAddr; // address -> module func id
  for (uint32_t I = 0; I < NumImports; ++I) {
    if (Off + 8 > Bytes.size()) {
      Report.Error = "truncated import table";
      return std::nullopt;
    }
    uint32_t Addr = getU32(Bytes, Off);
    uint32_t Len = getU32(Bytes, Off + 4);
    Off += 8;
    if (Off + Len > Bytes.size() || Len > 4096) {
      Report.Error = "truncated import name";
      return std::nullopt;
    }
    Function F;
    F.Name.assign(reinterpret_cast<const char *>(&Bytes[Off]), Len);
    F.IsExternal = true;
    Off += Len;
    FuncIdByAddr[Addr] = M.addFunction(std::move(F));
    ++Report.ImportsResolved;
  }

  size_t CodeOff = Off;
  if (CodeOff + CodeBytes > Bytes.size()) {
    Report.Error = "truncated code section";
    return std::nullopt;
  }
  uint32_t NumInstrs = CodeBytes / ImageLayout::InstrBytes;

  // Synthesize data symbols: one per 4-byte data cell would be noise; the
  // disassembler instead synthesizes one symbol per *referenced* address,
  // which mirrors how real IR recovery delineates globals on demand.
  std::map<uint32_t, uint32_t> GlobalIdByAddr;
  auto GlobalFor = [&](uint32_t Addr) -> uint32_t {
    auto It = GlobalIdByAddr.find(Addr);
    if (It != GlobalIdByAddr.end())
      return It->second;
    GlobalVar G;
    G.Name = "g_" + std::to_string(Addr - ImageLayout::DataBase);
    G.Size = 4;
    uint32_t Id = M.addGlobal(std::move(G));
    GlobalIdByAddr[Addr] = Id;
    return Id;
  };

  auto DecodeAt = [&](uint32_t InstrIdx, Instr &I) -> bool {
    size_t P = CodeOff + size_t(InstrIdx) * ImageLayout::InstrBytes;
    uint8_t Op = Bytes[P];
    if (Op > static_cast<uint8_t>(Opcode::Nop))
      return false;
    I.Op = static_cast<Opcode>(Op);
    uint8_t D = Bytes[P + 1], S = Bytes[P + 2], CC = Bytes[P + 3];
    uint8_t MemBase = Bytes[P + 4], MemSize = Bytes[P + 5];
    if (D > static_cast<uint8_t>(Reg::None) ||
        S > static_cast<uint8_t>(Reg::None))
      return false;
    if (CC > static_cast<uint8_t>(Cond::Gt))
      return false;
    I.Dst = static_cast<Reg>(D);
    I.Src = static_cast<Reg>(S);
    I.CC = static_cast<Cond>(CC);
    I.Imm = static_cast<int32_t>(getU32(Bytes, P + 8));
    I.Target = getU32(Bytes, P + 12);
    I.Mem = MemRef{};
    bool UsesMem = I.Op == Opcode::Load || I.Op == Opcode::Store ||
                   I.Op == Opcode::StoreImm || I.Op == Opcode::Lea;
    if (UsesMem) {
      if (MemSize != 1 && MemSize != 2 && MemSize != 4 && MemSize != 8)
        return false;
      I.Mem.Size = MemSize;
      if (MemBase == GlobalBaseMarker) {
        if (I.Target < ImageLayout::DataBase ||
            I.Target >= ImageLayout::DataBase + DataBytes)
          return false;
        I.Mem.Base = Reg::None;
        I.Mem.GlobalSym = GlobalFor(I.Target);
        I.Mem.Disp = 0;
      } else {
        if (MemBase >= NumRegs)
          return false;
        I.Mem.Base = static_cast<Reg>(MemBase);
        I.Mem.Disp = static_cast<int32_t>(I.Target);
      }
    }
    return true;
  };

  // Recursive descent: discover function entries from the image entry and
  // call targets; within a function, follow branches.
  std::deque<uint32_t> FuncWork{EntryAddr};
  std::set<uint32_t> FuncSeen{EntryAddr};

  auto AddrToIdx = [&](uint32_t Addr) -> std::optional<uint32_t> {
    if (Addr < ImageLayout::CodeBase)
      return std::nullopt;
    uint32_t Rel = Addr - ImageLayout::CodeBase;
    if (Rel % ImageLayout::InstrBytes != 0)
      return std::nullopt;
    uint32_t Idx = Rel / ImageLayout::InstrBytes;
    if (Idx >= NumInstrs)
      return std::nullopt;
    return Idx;
  };

  struct PendingCall {
    uint32_t FuncId;
    uint32_t InstrIdx;
    uint32_t TargetAddr;
  };
  std::vector<PendingCall> Calls;

  while (!FuncWork.empty()) {
    uint32_t Entry = FuncWork.front();
    FuncWork.pop_front();
    auto EntryIdx = AddrToIdx(Entry);
    if (!EntryIdx) {
      ++Report.BadInstructions;
      continue;
    }

    // Explore intra-procedural flow; collect the reachable index range.
    std::set<uint32_t> Visited;
    std::deque<uint32_t> Work{*EntryIdx};
    bool Bad = false;
    while (!Work.empty()) {
      uint32_t Idx = Work.front();
      Work.pop_front();
      if (!Visited.insert(Idx).second)
        continue;
      Instr I;
      if (Idx >= NumInstrs || !DecodeAt(Idx, I)) {
        ++Report.BadInstructions;
        Bad = true;
        Visited.erase(Idx);
        continue;
      }
      switch (I.Op) {
      case Opcode::Jmp:
      case Opcode::Jcc: {
        auto T = AddrToIdx(I.Target);
        if (T)
          Work.push_back(*T);
        else
          ++Report.BadInstructions;
        if (I.Op == Opcode::Jcc)
          Work.push_back(Idx + 1);
        break;
      }
      case Opcode::Ret:
      case Opcode::Halt:
        break;
      default:
        Work.push_back(Idx + 1);
        break;
      }
    }
    (void)Bad;
    if (Visited.empty())
      continue;

    // Function extent: contiguous [min, max] of visited instructions
    // (unvisited gaps become nops — alignment padding in real binaries).
    uint32_t Lo = *Visited.begin();
    uint32_t Hi = *Visited.rbegin();
    Function Fn;
    Fn.Name = "sub_" +
              std::to_string(ImageLayout::CodeBase +
                             Lo * ImageLayout::InstrBytes);
    uint32_t FnId = M.addFunction(std::move(Fn));
    Function &F = M.Funcs[FnId];
    FuncIdByAddr[ImageLayout::CodeBase + Lo * ImageLayout::InstrBytes] =
        FnId;
    for (uint32_t Idx = Lo; Idx <= Hi; ++Idx) {
      Instr I;
      if (!Visited.count(Idx) || !DecodeAt(Idx, I)) {
        I = Instr{};
        I.Op = Opcode::Nop;
      }
      // Rewrite branch targets to local indices.
      if (I.isBranch()) {
        auto T = AddrToIdx(I.Target);
        I.Target = T && *T >= Lo && *T <= Hi ? *T - Lo : 0;
      } else if (I.Op == Opcode::Call) {
        Calls.push_back({FnId, static_cast<uint32_t>(F.Body.size()),
                         I.Target});
        // Imports are already registered; only code addresses need
        // traversal.
        if (!FuncIdByAddr.count(I.Target) &&
            FuncSeen.insert(I.Target).second)
          FuncWork.push_back(I.Target);
      } else if (I.Op == Opcode::MovGlobal) {
        if (I.Target >= ImageLayout::DataBase &&
            I.Target < ImageLayout::DataBase + DataBytes) {
          I.Target = GlobalFor(I.Target);
        } else {
          ++Report.BadInstructions;
          I.Op = Opcode::Nop;
        }
      }
      F.Body.push_back(I);
    }
    ++Report.FunctionsDiscovered;
  }

  // Resolve call targets to function ids. Calls into the middle of a
  // discovered function (or to garbage) are left dangling as Nop.
  for (const PendingCall &C : Calls) {
    auto It = FuncIdByAddr.find(C.TargetAddr);
    if (It != FuncIdByAddr.end()) {
      M.Funcs[C.FuncId].Body[C.InstrIdx].Target = It->second;
    } else {
      M.Funcs[C.FuncId].Body[C.InstrIdx] = Instr{}; // nop out
      ++Report.BadInstructions;
    }
  }

  // Entry: the function discovered first from EntryAddr.
  auto EntryIt = FuncIdByAddr.find(EntryAddr);
  M.EntryFunc = EntryIt != FuncIdByAddr.end() ? EntryIt->second : 0;
  return M;
}
