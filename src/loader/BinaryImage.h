//===- BinaryImage.h - Flat binary encode / decode / disassemble -*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat "stripped binary" format for the machine IR, and the
/// recursive-descent disassembler that recovers a Module from raw bytes.
/// This stands in for the proprietary disassembly front end (paper §4.1):
///
///  - the encoder lays functions out contiguously and erases all names and
///    boundaries (only imported functions keep names, as in a real import
///    table);
///  - the decoder re-discovers function entries by following call targets
///    from the image entry point, rebuilds intra-procedural control flow,
///    and synthesizes `sub_<addr>` names;
///  - ill-formed images produce decode errors rather than crashes, and a
///    "junk byte" mode in tests models the §2.5 disassembly failures.
///
/// Instruction encoding (16 bytes, fixed width):
///   [0] opcode  [1] dst reg  [2] src reg  [3] cond  [4] mem size
///   [5..7] pad  [8..11] imm/disp (LE)     [12..15] target/address (LE)
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_LOADER_BINARYIMAGE_H
#define RETYPD_LOADER_BINARYIMAGE_H

#include "mir/MIR.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace retypd {

/// Fixed layout constants of the image format.
struct ImageLayout {
  static constexpr uint32_t Magic = 0x31595452u; // "RTY1"
  static constexpr uint32_t CodeBase = 0x1000u;
  static constexpr uint32_t DataBase = 0x10000000u;
  static constexpr uint32_t ImportBase = 0xF0000000u;
  static constexpr uint32_t InstrBytes = 16;
};

/// The result of encoding: raw bytes plus the (out-of-band) symbol map that
/// evaluation harnesses use to relate recovered functions to ground truth.
/// A real pipeline would get this from debug info; the type inference itself
/// never sees it.
struct EncodedImage {
  std::vector<uint8_t> Bytes;
  std::unordered_map<std::string, uint32_t> FunctionAddrs;
  std::unordered_map<std::string, uint32_t> GlobalAddrs;
};

/// Serializes a module into a flat image. Function names and boundaries are
/// erased; imports keep names.
EncodedImage encodeModule(const Module &M);

/// Statistics and diagnostics from decoding.
struct DecodeReport {
  unsigned FunctionsDiscovered = 0;
  unsigned ImportsResolved = 0;
  unsigned BadInstructions = 0;
  std::string Error; ///< non-empty on fatal failure
};

/// Rebuilds a module from an image by recursive descent from the entry
/// point. Returns nullopt on a fatal format error; partial decode problems
/// (unknown opcodes reached by traversal) are reported but non-fatal, the
/// offending function is truncated at the bad instruction.
std::optional<Module> decodeImage(const std::vector<uint8_t> &Bytes,
                                  DecodeReport &Report);

} // namespace retypd

#endif // RETYPD_LOADER_BINARYIMAGE_H
