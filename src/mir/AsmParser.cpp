//===- AsmParser.cpp - Textual assembly front end ---------------------------===//

#include "mir/AsmParser.h"

#include <cctype>
#include <charconv>
#include <map>
#include <vector>

using namespace retypd;

namespace {

struct PendingBranch {
  size_t InstrIdx;
  std::string Label;
  unsigned LineNo;
};

std::string_view trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

bool parseImm(std::string_view S, int32_t &Out) {
  S = trim(S);
  if (S.empty())
    return false;
  int64_t V = 0;
  bool Neg = false;
  size_t I = 0;
  if (S[0] == '-' || S[0] == '+') {
    Neg = S[0] == '-';
    I = 1;
  }
  if (I >= S.size())
    return false;
  if (S.size() > I + 2 && S[I] == '0' && (S[I + 1] == 'x' || S[I + 1] == 'X')) {
    auto [P, Ec] = std::from_chars(S.data() + I + 2, S.data() + S.size(), V, 16);
    if (Ec != std::errc() || P != S.data() + S.size())
      return false;
  } else {
    auto [P, Ec] = std::from_chars(S.data() + I, S.data() + S.size(), V);
    if (Ec != std::errc() || P != S.data() + S.size())
      return false;
  }
  Out = static_cast<int32_t>(Neg ? -V : V);
  return true;
}

/// Splits "a, b" at the top-level comma (no nesting in this syntax).
bool splitOperands(std::string_view S, std::string_view &A,
                   std::string_view &B) {
  size_t Comma = S.find(',');
  if (Comma == std::string_view::npos)
    return false;
  A = trim(S.substr(0, Comma));
  B = trim(S.substr(Comma + 1));
  return !A.empty() && !B.empty();
}

} // namespace

std::optional<Module> AsmParser::parse(std::string_view Text) {
  Module M;
  LineTable.clear();
  // Index of the function being parsed (-1 outside); an index is used
  // instead of a pointer because Funcs may reallocate on addFunction.
  int CurIdx = -1;
  auto Cur = [&]() -> Function & { return M.Funcs[CurIdx]; };
  std::map<std::string, uint32_t> Labels; // within current function
  std::vector<PendingBranch> Pending;
  std::vector<std::pair<size_t, std::pair<std::string, unsigned>>>
      PendingCalls; // (func idx . instr idx) -> callee name
  std::vector<std::pair<size_t, size_t>> CallSites;

  auto Fail = [&](unsigned LineNo, const std::string &Msg) {
    Err = "line " + std::to_string(LineNo) + ": " + Msg;
    return std::nullopt;
  };

  auto ResolveFunction = [&]() -> bool {
    // Resolve labels of the function just finished.
    if (CurIdx < 0)
      return true;
    for (const PendingBranch &P : Pending) {
      auto It = Labels.find(P.Label);
      if (It == Labels.end()) {
        Err = "line " + std::to_string(P.LineNo) + ": unknown label '" +
              P.Label + "'";
        return false;
      }
      Cur().Body[P.InstrIdx].Target = It->second;
    }
    Pending.clear();
    Labels.clear();
    return true;
  };

  /// Parses a memory operand "[reg+disp]" or "[@glob+disp]".
  auto ParseMem = [&](std::string_view S, MemRef &Mem,
                      unsigned LineNo) -> bool {
    S = trim(S);
    if (S.size() < 3 || S.front() != '[' || S.back() != ']') {
      Err = "line " + std::to_string(LineNo) + ": expected [mem] operand";
      return false;
    }
    S = trim(S.substr(1, S.size() - 2));
    // Find +/- separating base and displacement (not at position 0).
    size_t Split = std::string_view::npos;
    for (size_t I = 1; I < S.size(); ++I)
      if (S[I] == '+' || S[I] == '-') {
        Split = I;
        break;
      }
    std::string_view BaseStr =
        Split == std::string_view::npos ? S : trim(S.substr(0, Split));
    std::string_view DispStr =
        Split == std::string_view::npos ? std::string_view()
                                        : trim(S.substr(Split));
    Mem.Disp = 0;
    if (!DispStr.empty() && !parseImm(DispStr, Mem.Disp)) {
      Err = "line " + std::to_string(LineNo) + ": bad displacement";
      return false;
    }
    if (!BaseStr.empty() && BaseStr[0] == '@') {
      std::string Name(BaseStr.substr(1));
      auto It = M.GlobalByName.find(Name);
      if (It == M.GlobalByName.end()) {
        Err = "line " + std::to_string(LineNo) + ": unknown global '" +
              Name + "'";
        return false;
      }
      Mem.Base = Reg::None;
      Mem.GlobalSym = It->second;
      return true;
    }
    auto R = regByName(std::string(BaseStr));
    if (!R) {
      Err = "line " + std::to_string(LineNo) + ": bad base register '" +
            std::string(BaseStr) + "'";
      return false;
    }
    Mem.Base = *R;
    Mem.GlobalSym = 0xffffffffu;
    return true;
  };

  unsigned LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    std::string_view Line = End == std::string_view::npos
                                ? Text.substr(Pos)
                                : Text.substr(Pos, End - Pos);
    ++LineNo;
    Pos = End == std::string_view::npos ? Text.size() + 1 : End + 1;

    // Comments.
    size_t Semi = Line.find(';');
    if (Semi != std::string_view::npos)
      Line = Line.substr(0, Semi);
    size_t Sl = Line.find("//");
    if (Sl != std::string_view::npos)
      Line = Line.substr(0, Sl);
    Line = trim(Line);
    if (Line.empty())
      continue;

    // Module-level directives.
    if (Line.starts_with("global ")) {
      std::string_view A, B;
      if (!splitOperands(Line.substr(7), A, B))
        return Fail(LineNo, "expected: global name, size");
      int32_t Size = 0;
      if (!parseImm(B, Size) || Size <= 0)
        return Fail(LineNo, "bad global size");
      GlobalVar G;
      G.Name = std::string(A);
      G.Size = static_cast<uint32_t>(Size);
      M.addGlobal(std::move(G));
      continue;
    }
    if (Line.starts_with("extern ")) {
      Function F;
      F.Name = std::string(trim(Line.substr(7)));
      F.IsExternal = true;
      M.addFunction(std::move(F));
      continue;
    }
    if (Line.starts_with("fn ")) {
      if (!ResolveFunction())
        return std::nullopt;
      std::string_view Name = trim(Line.substr(3));
      if (Name.empty() || Name.back() != ':')
        return Fail(LineNo, "expected: fn name:");
      Name = trim(Name.substr(0, Name.size() - 1));
      Function F;
      F.Name = std::string(Name);
      CurIdx = static_cast<int>(M.addFunction(std::move(F)));
      continue;
    }

    // Label?
    if (Line.back() == ':') {
      if (CurIdx < 0)
        return Fail(LineNo, "label outside a function");
      Labels[std::string(trim(Line.substr(0, Line.size() - 1)))] =
          static_cast<uint32_t>(Cur().Body.size());
      continue;
    }

    if (CurIdx < 0)
      return Fail(LineNo, "instruction outside a function");

    // Mnemonic.
    size_t Space = Line.find_first_of(" \t");
    std::string Mn(Line.substr(0, Space));
    std::string_view Rest =
        Space == std::string_view::npos ? std::string_view()
                                        : trim(Line.substr(Space));

    Instr I;
    auto Emit = [&]() {
      if (LineTable.size() < M.Funcs.size())
        LineTable.resize(M.Funcs.size());
      LineTable[CurIdx].push_back(LineNo);
      Cur().Body.push_back(I);
    };

    auto RegOp = [&](std::string_view S, Reg &Out) -> bool {
      auto R = regByName(std::string(trim(S)));
      if (!R) {
        Err = "line " + std::to_string(LineNo) + ": bad register '" +
              std::string(trim(S)) + "'";
        return false;
      }
      Out = *R;
      return true;
    };

    // reg, (reg|imm) instruction family.
    auto BinOp = [&](Opcode RegForm, Opcode ImmForm) -> bool {
      std::string_view A, B;
      if (!splitOperands(Rest, A, B)) {
        Err = "line " + std::to_string(LineNo) + ": expected two operands";
        return false;
      }
      if (!RegOp(A, I.Dst))
        return false;
      if (auto R = regByName(std::string(B))) {
        I.Op = RegForm;
        I.Src = *R;
        return true;
      }
      if (ImmForm == Opcode::Nop) {
        Err = "line " + std::to_string(LineNo) +
              ": immediate form not allowed";
        return false;
      }
      if (!parseImm(B, I.Imm)) {
        Err = "line " + std::to_string(LineNo) + ": bad operand '" +
              std::string(B) + "'";
        return false;
      }
      I.Op = ImmForm;
      return true;
    };

    auto Branch = [&](Opcode Op, Cond CC) {
      I.Op = Op;
      I.CC = CC;
      Pending.push_back(
          {Cur().Body.size(), std::string(trim(Rest)), LineNo});
      Emit();
    };

    if (Mn == "mov") {
      std::string_view A, B;
      if (!splitOperands(Rest, A, B))
        return Fail(LineNo, "expected: mov dst, src");
      if (!RegOp(A, I.Dst))
        return std::nullopt;
      if (!B.empty() && B[0] == '@') {
        auto It = M.GlobalByName.find(std::string(B.substr(1)));
        if (It == M.GlobalByName.end())
          return Fail(LineNo, "unknown global");
        I.Op = Opcode::MovGlobal;
        I.Target = It->second;
      } else if (auto R = regByName(std::string(B))) {
        I.Op = Opcode::Mov;
        I.Src = *R;
      } else if (parseImm(B, I.Imm)) {
        I.Op = Opcode::MovImm;
      } else {
        return Fail(LineNo, "bad mov source");
      }
      Emit();
    } else if (Mn == "load" || Mn == "load1" || Mn == "load2" ||
               Mn == "load8") {
      std::string_view A, B;
      if (!splitOperands(Rest, A, B))
        return Fail(LineNo, "expected: load dst, [mem]");
      if (!RegOp(A, I.Dst))
        return std::nullopt;
      if (!ParseMem(B, I.Mem, LineNo))
        return std::nullopt;
      I.Mem.Size = Mn == "load1" ? 1 : Mn == "load2" ? 2
                   : Mn == "load8" ? 8 : 4;
      I.Op = Opcode::Load;
      Emit();
    } else if (Mn == "store" || Mn == "store1" || Mn == "store2" ||
               Mn == "store8") {
      std::string_view A, B;
      if (!splitOperands(Rest, A, B))
        return Fail(LineNo, "expected: store [mem], src");
      if (!ParseMem(A, I.Mem, LineNo))
        return std::nullopt;
      I.Mem.Size = Mn == "store1" ? 1 : Mn == "store2" ? 2
                   : Mn == "store8" ? 8 : 4;
      if (auto R = regByName(std::string(B))) {
        I.Op = Opcode::Store;
        I.Src = *R;
      } else if (parseImm(B, I.Imm)) {
        I.Op = Opcode::StoreImm;
      } else {
        return Fail(LineNo, "bad store source");
      }
      Emit();
    } else if (Mn == "lea") {
      std::string_view A, B;
      if (!splitOperands(Rest, A, B))
        return Fail(LineNo, "expected: lea dst, [mem]");
      if (!RegOp(A, I.Dst))
        return std::nullopt;
      if (!ParseMem(B, I.Mem, LineNo))
        return std::nullopt;
      I.Op = Opcode::Lea;
      Emit();
    } else if (Mn == "add") {
      if (!BinOp(Opcode::Add, Opcode::AddImm))
        return std::nullopt;
      Emit();
    } else if (Mn == "sub") {
      if (!BinOp(Opcode::Sub, Opcode::SubImm))
        return std::nullopt;
      Emit();
    } else if (Mn == "and") {
      if (!BinOp(Opcode::And, Opcode::AndImm))
        return std::nullopt;
      Emit();
    } else if (Mn == "or") {
      if (!BinOp(Opcode::Or, Opcode::OrImm))
        return std::nullopt;
      Emit();
    } else if (Mn == "xor") {
      if (!BinOp(Opcode::Xor, Opcode::Nop))
        return std::nullopt;
      Emit();
    } else if (Mn == "cmp") {
      if (!BinOp(Opcode::Cmp, Opcode::CmpImm))
        return std::nullopt;
      Emit();
    } else if (Mn == "test") {
      if (!BinOp(Opcode::Test, Opcode::Nop))
        return std::nullopt;
      Emit();
    } else if (Mn == "push") {
      if (auto R = regByName(std::string(trim(Rest)))) {
        I.Op = Opcode::Push;
        I.Src = *R;
      } else if (parseImm(Rest, I.Imm)) {
        I.Op = Opcode::PushImm;
      } else {
        return Fail(LineNo, "bad push operand");
      }
      Emit();
    } else if (Mn == "pop") {
      if (!RegOp(Rest, I.Dst))
        return std::nullopt;
      I.Op = Opcode::Pop;
      Emit();
    } else if (Mn == "jmp") {
      Branch(Opcode::Jmp, Cond::Z);
    } else if (Mn == "jz" || Mn == "jnz" || Mn == "jlt" || Mn == "jge" ||
               Mn == "jle" || Mn == "jgt") {
      Cond CC = Mn == "jz"    ? Cond::Z
                : Mn == "jnz" ? Cond::Nz
                : Mn == "jlt" ? Cond::Lt
                : Mn == "jge" ? Cond::Ge
                : Mn == "jle" ? Cond::Le
                              : Cond::Gt;
      Branch(Opcode::Jcc, CC);
    } else if (Mn == "call") {
      I.Op = Opcode::Call;
      PendingCalls.push_back({static_cast<size_t>(CurIdx),
                              {std::string(trim(Rest)), LineNo}});
      CallSites.push_back({static_cast<size_t>(CurIdx), Cur().Body.size()});
      Emit();
    } else if (Mn == "calli") {
      if (!RegOp(Rest, I.Src))
        return std::nullopt;
      I.Op = Opcode::CallInd;
      Emit();
    } else if (Mn == "ret") {
      I.Op = Opcode::Ret;
      Emit();
    } else if (Mn == "halt") {
      I.Op = Opcode::Halt;
      Emit();
    } else if (Mn == "nop") {
      I.Op = Opcode::Nop;
      Emit();
    } else {
      return Fail(LineNo, "unknown mnemonic '" + Mn + "'");
    }
  }

  if (!ResolveFunction())
    return std::nullopt;

  // Resolve call targets (callees may be defined after their callers).
  for (size_t K = 0; K < PendingCalls.size(); ++K) {
    const auto &[FIdx, NameLine] = PendingCalls[K];
    auto Callee = M.findFunction(NameLine.first);
    if (!Callee) {
      Err = "line " + std::to_string(NameLine.second) +
            ": unknown function '" + NameLine.first + "'";
      return std::nullopt;
    }
    M.Funcs[CallSites[K].first].Body[CallSites[K].second].Target = *Callee;
  }
  if (LineTable.size() < M.Funcs.size())
    LineTable.resize(M.Funcs.size());
  return M;
}
