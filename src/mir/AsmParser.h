//===- AsmParser.h - Textual assembly front end ---------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual assembly used by tests and examples into a Module.
///
/// Syntax (one statement per line; ';' and '//' start comments):
///
///   global buf, 16          data-section symbol
///   extern malloc           imported function
///   fn close_last:          begin procedure
///   loop:                   label
///     load edx, [esp+4]     4-byte load ([reg+disp] or [@global+disp])
///     load1 al?, ...        sized variants: load1 / load2 / load8
///     store [edx+4], eax
///     mov eax, 5 | mov eax, ebx | mov eax, @buf
///     add/sub/and/or/xor reg, (reg|imm)
///     cmp/test reg, (reg|imm)
///     push eax | push 0 | pop eax
///     jmp loop | jz/jnz/jlt/jge/jle/jgt loop
///     call malloc | calli eax
///     ret | halt | nop
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_MIR_ASMPARSER_H
#define RETYPD_MIR_ASMPARSER_H

#include "mir/MIR.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace retypd {

/// Parses assembly text into a Module.
class AsmParser {
public:
  /// Parses \p Text; returns the module or nullopt (see error()).
  std::optional<Module> parse(std::string_view Text);

  const std::string &error() const { return Err; }

  /// 1-based source line of every parsed instruction: lineTable()[F][K] is
  /// the line that produced Funcs[F].Body[K]. Sized to the module's
  /// function count after a successful parse (externals get empty rows).
  /// The module verifier uses this to render file:line diagnostics.
  const std::vector<std::vector<uint32_t>> &lineTable() const {
    return LineTable;
  }

private:
  std::string Err;
  std::vector<std::vector<uint32_t>> LineTable;
};

} // namespace retypd

#endif // RETYPD_MIR_ASMPARSER_H
