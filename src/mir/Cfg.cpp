//===- Cfg.cpp - Control-flow graph recovery --------------------------------===//

#include "mir/Cfg.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace retypd;

Cfg::Cfg(const Function &F) {
  size_t N = F.Body.size();
  if (N == 0) {
    Blocks.push_back(BasicBlock{0, 0, {}, {}});
    Rpo.push_back(0);
    return;
  }

  // Leaders: entry, branch targets, and instructions after terminators or
  // conditional branches.
  std::set<uint32_t> Leaders{0};
  for (size_t I = 0; I < N; ++I) {
    const Instr &Ins = F.Body[I];
    if (Ins.isBranch())
      Leaders.insert(Ins.Target);
    if (Ins.isBranch() || Ins.Op == Opcode::Ret || Ins.Op == Opcode::Halt)
      if (I + 1 < N)
        Leaders.insert(static_cast<uint32_t>(I + 1));
  }

  BlockOfInstr.assign(N, 0);
  std::vector<uint32_t> Sorted(Leaders.begin(), Leaders.end());
  for (size_t B = 0; B < Sorted.size(); ++B) {
    BasicBlock BB;
    BB.Begin = Sorted[B];
    BB.End = B + 1 < Sorted.size() ? Sorted[B + 1]
                                   : static_cast<uint32_t>(N);
    for (uint32_t I = BB.Begin; I < BB.End; ++I)
      BlockOfInstr[I] = static_cast<uint32_t>(B);
    Blocks.push_back(std::move(BB));
  }

  // Edges.
  for (size_t B = 0; B < Blocks.size(); ++B) {
    BasicBlock &BB = Blocks[B];
    if (BB.Begin == BB.End)
      continue;
    const Instr &Last = F.Body[BB.End - 1];
    auto AddEdge = [&](uint32_t TargetInstr) {
      uint32_t T = BlockOfInstr[TargetInstr];
      BB.Succs.push_back(T);
      Blocks[T].Preds.push_back(static_cast<uint32_t>(B));
    };
    switch (Last.Op) {
    case Opcode::Jmp:
      AddEdge(Last.Target);
      break;
    case Opcode::Jcc:
      AddEdge(Last.Target);
      if (BB.End < N)
        AddEdge(BB.End);
      break;
    case Opcode::Ret:
    case Opcode::Halt:
      break;
    default:
      if (BB.End < N)
        AddEdge(BB.End);
      break;
    }
  }

  // Reverse post order by DFS from block 0.
  std::vector<uint8_t> State(Blocks.size(), 0);
  std::vector<uint32_t> Post;
  std::vector<std::pair<uint32_t, size_t>> Stack{{0, 0}};
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < Blocks[B].Succs.size()) {
      uint32_t S = Blocks[B].Succs[NextSucc++];
      if (!State[S]) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      Post.push_back(B);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
}
