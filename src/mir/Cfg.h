//===- Cfg.h - Control-flow graph recovery ---------------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic-block construction over the flat instruction vector of a Function,
/// plus the traversal orders the dataflow analyses need.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_MIR_CFG_H
#define RETYPD_MIR_CFG_H

#include "mir/MIR.h"

#include <vector>

namespace retypd {

/// A basic block: instruction indices [Begin, End).
struct BasicBlock {
  uint32_t Begin = 0;
  uint32_t End = 0;
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;
};

/// The CFG of one function.
class Cfg {
public:
  explicit Cfg(const Function &F);

  const std::vector<BasicBlock> &blocks() const { return Blocks; }
  size_t size() const { return Blocks.size(); }

  /// Block containing instruction \p InstrIdx.
  uint32_t blockOf(uint32_t InstrIdx) const { return BlockOfInstr[InstrIdx]; }

  /// Reverse post order from the entry block (good for forward dataflow).
  const std::vector<uint32_t> &rpo() const { return Rpo; }

private:
  std::vector<BasicBlock> Blocks;
  std::vector<uint32_t> BlockOfInstr;
  std::vector<uint32_t> Rpo;
};

} // namespace retypd

#endif // RETYPD_MIR_CFG_H
