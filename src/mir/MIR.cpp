//===- MIR.cpp - Machine IR for the disassembly substrate ------------------===//

#include "mir/MIR.h"

#include <array>
#include <cassert>

using namespace retypd;

static const std::array<const char *, 9> RegNames = {
    "eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp", "<none>"};

const char *retypd::regName(Reg R) {
  return RegNames[static_cast<uint8_t>(R)];
}

std::optional<Reg> retypd::regByName(const std::string &Name) {
  for (unsigned I = 0; I < NumRegs; ++I)
    if (Name == RegNames[I])
      return static_cast<Reg>(I);
  return std::nullopt;
}

const char *retypd::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
  case Opcode::MovImm:
  case Opcode::MovGlobal:
    return "mov";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
  case Opcode::StoreImm:
    return "store";
  case Opcode::Lea:
    return "lea";
  case Opcode::Add:
  case Opcode::AddImm:
    return "add";
  case Opcode::Sub:
  case Opcode::SubImm:
    return "sub";
  case Opcode::And:
  case Opcode::AndImm:
    return "and";
  case Opcode::Or:
  case Opcode::OrImm:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Cmp:
  case Opcode::CmpImm:
    return "cmp";
  case Opcode::Test:
    return "test";
  case Opcode::Push:
  case Opcode::PushImm:
    return "push";
  case Opcode::Pop:
    return "pop";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Jcc:
    return "jcc";
  case Opcode::Call:
  case Opcode::CallInd:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::Halt:
    return "halt";
  case Opcode::Nop:
    return "nop";
  }
  return "<?>";
}

static std::string memStr(const Module &M, const MemRef &Mem) {
  std::string S = "[";
  if (Mem.isGlobal()) {
    S += '@';
    S += M.Globals[Mem.GlobalSym].Name;
    if (Mem.Disp > 0)
      S += '+';
    if (Mem.Disp != 0)
      S += std::to_string(Mem.Disp);
  } else {
    S += regName(Mem.Base);
    if (Mem.Disp > 0)
      S += '+';
    if (Mem.Disp != 0)
      S += std::to_string(Mem.Disp);
  }
  S += "]";
  return S;
}

static const char *condSuffix(Cond C) {
  switch (C) {
  case Cond::Z:
    return "z";
  case Cond::Nz:
    return "nz";
  case Cond::Lt:
    return "lt";
  case Cond::Ge:
    return "ge";
  case Cond::Le:
    return "le";
  case Cond::Gt:
    return "gt";
  }
  return "?";
}

static std::string sizeSuffix(uint8_t Size) {
  return Size == 4 ? "" : std::to_string(unsigned(Size));
}

std::string retypd::instrStr(const Module &M, const Function &F,
                             const Instr &I) {
  switch (I.Op) {
  case Opcode::Mov:
    return std::string("mov ") + regName(I.Dst) + ", " + regName(I.Src);
  case Opcode::MovImm:
    return std::string("mov ") + regName(I.Dst) + ", " +
           std::to_string(I.Imm);
  case Opcode::MovGlobal:
    return std::string("mov ") + regName(I.Dst) + ", @" +
           M.Globals[I.Target].Name;
  case Opcode::Load:
    return "load" + sizeSuffix(I.Mem.Size) + " " + regName(I.Dst) + ", " +
           memStr(M, I.Mem);
  case Opcode::Store:
    return "store" + sizeSuffix(I.Mem.Size) + " " + memStr(M, I.Mem) +
           ", " + regName(I.Src);
  case Opcode::StoreImm:
    return "store" + sizeSuffix(I.Mem.Size) + " " + memStr(M, I.Mem) +
           ", " + std::to_string(I.Imm);
  case Opcode::Lea:
    return std::string("lea ") + regName(I.Dst) + ", " + memStr(M, I.Mem);
  case Opcode::Add:
    return std::string("add ") + regName(I.Dst) + ", " + regName(I.Src);
  case Opcode::AddImm:
    return std::string("add ") + regName(I.Dst) + ", " +
           std::to_string(I.Imm);
  case Opcode::Sub:
    return std::string("sub ") + regName(I.Dst) + ", " + regName(I.Src);
  case Opcode::SubImm:
    return std::string("sub ") + regName(I.Dst) + ", " +
           std::to_string(I.Imm);
  case Opcode::And:
    return std::string("and ") + regName(I.Dst) + ", " + regName(I.Src);
  case Opcode::AndImm:
    return std::string("and ") + regName(I.Dst) + ", " +
           std::to_string(I.Imm);
  case Opcode::Or:
    return std::string("or ") + regName(I.Dst) + ", " + regName(I.Src);
  case Opcode::OrImm:
    return std::string("or ") + regName(I.Dst) + ", " +
           std::to_string(I.Imm);
  case Opcode::Xor:
    return std::string("xor ") + regName(I.Dst) + ", " + regName(I.Src);
  case Opcode::Cmp:
    return std::string("cmp ") + regName(I.Dst) + ", " + regName(I.Src);
  case Opcode::CmpImm:
    return std::string("cmp ") + regName(I.Dst) + ", " +
           std::to_string(I.Imm);
  case Opcode::Test:
    return std::string("test ") + regName(I.Dst) + ", " + regName(I.Src);
  case Opcode::Push:
    return std::string("push ") + regName(I.Src);
  case Opcode::PushImm:
    return std::string("push ") + std::to_string(I.Imm);
  case Opcode::Pop:
    return std::string("pop ") + regName(I.Dst);
  case Opcode::Jmp:
    return "jmp L" + std::to_string(I.Target);
  case Opcode::Jcc:
    return std::string("j") + condSuffix(I.CC) + " L" +
           std::to_string(I.Target);
  case Opcode::Call:
    return "call " + (I.Target < M.Funcs.size() ? M.Funcs[I.Target].Name
                                                : std::string("<bad>"));
  case Opcode::CallInd:
    return std::string("calli ") + regName(I.Src);
  case Opcode::Ret:
    return "ret";
  case Opcode::Halt:
    return "halt";
  case Opcode::Nop:
    return "nop";
  }
  (void)F;
  return "<?>";
}

std::string retypd::moduleStr(const Module &M) {
  std::string S;
  for (const GlobalVar &G : M.Globals)
    S += "global " + G.Name + ", " + std::to_string(G.Size) + "\n";
  for (const Function &F : M.Funcs) {
    if (F.IsExternal) {
      S += "extern " + F.Name + "\n";
      continue;
    }
    S += "fn " + F.Name + ":\n";
    // Collect jump targets so labels can be printed.
    std::vector<bool> IsTarget(F.Body.size() + 1, false);
    for (const Instr &I : F.Body)
      if (I.isBranch())
        IsTarget[I.Target] = true;
    for (size_t Idx = 0; Idx < F.Body.size(); ++Idx) {
      if (IsTarget[Idx]) {
        S += 'L';
        S += std::to_string(Idx);
        S += ":\n";
      }
      S += "  ";
      S += instrStr(M, F, F.Body[Idx]);
      S += '\n';
    }
  }
  return S;
}
