//===- MIR.h - Machine IR for the disassembly substrate -------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 32-bit x86-flavoured machine IR. This is the substrate standing in for
/// the IR that CodeSurfer recovers from real binaries (paper §4.1): untyped
/// registers, an explicit stack manipulated by push/pop/call/ret, and sized
/// loads and stores. Type information is entirely absent, exactly as in a
/// stripped binary.
///
/// The IR deliberately keeps the properties that make machine-code type
/// inference hard (§2): stack slots can be reused for unrelated variables,
/// calling conventions may pass arguments in registers without declaration,
/// the same register can carry values of several source types, and pointers
/// are indistinguishable from integers.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_MIR_MIR_H
#define RETYPD_MIR_MIR_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace retypd {

/// General-purpose registers (32-bit).
enum class Reg : uint8_t {
  Eax = 0,
  Ebx,
  Ecx,
  Edx,
  Esi,
  Edi,
  Ebp,
  Esp,
  None
};

constexpr unsigned NumRegs = 8;

const char *regName(Reg R);
std::optional<Reg> regByName(const std::string &Name);

/// A memory operand [Base + Disp], accessing Size bytes. Base==None with
/// GlobalSym set denotes an absolute data-section reference.
struct MemRef {
  Reg Base = Reg::None;
  int32_t Disp = 0;
  uint8_t Size = 4; ///< bytes: 1, 2, 4, or 8
  uint32_t GlobalSym = 0xffffffffu;

  bool isGlobal() const { return GlobalSym != 0xffffffffu; }
};

/// Instruction opcodes. The set is small but sufficient to express every
/// idiom from paper §2 (see synth/Idioms.cpp).
enum class Opcode : uint8_t {
  Mov,     ///< mov dst, src
  MovImm,  ///< mov dst, imm
  MovGlobal, ///< mov dst, @global  (address-of data symbol)
  Load,    ///< load dst, [mem]
  Store,   ///< store [mem], src
  StoreImm,///< store [mem], imm
  Lea,     ///< lea dst, [base+disp]
  Add,     ///< add dst, src
  AddImm,  ///< add dst, imm
  Sub,     ///< sub dst, src
  SubImm,  ///< sub dst, imm
  And,     ///< and dst, src
  AndImm,
  Or,      ///< or dst, src
  OrImm,
  Xor,     ///< xor dst, src (xor r,r is the well-known zeroing idiom)
  Cmp,     ///< compare, sets flags only
  CmpImm,
  Test,    ///< bitwise test, sets flags only
  Push,    ///< push reg
  PushImm, ///< push imm
  Pop,     ///< pop reg
  Jmp,     ///< unconditional jump to Target (instruction index)
  Jcc,     ///< conditional jump
  Call,    ///< direct call; Target is a function id within the module
  CallInd, ///< indirect call through a register
  Ret,     ///< return (eax carries the result by convention)
  Halt,    ///< stop (program exit)
  Nop
};

const char *opcodeName(Opcode Op);

/// Condition codes for Jcc.
enum class Cond : uint8_t { Z = 0, Nz, Lt, Ge, Le, Gt };

/// One machine instruction.
struct Instr {
  Opcode Op = Opcode::Nop;
  Reg Dst = Reg::None;
  Reg Src = Reg::None;
  Cond CC = Cond::Z;
  int32_t Imm = 0;
  MemRef Mem;
  /// Jump: instruction index within the function. Call: function id.
  uint32_t Target = 0;

  bool isTerminator() const {
    return Op == Opcode::Jmp || Op == Opcode::Ret || Op == Opcode::Halt;
  }
  bool isBranch() const { return Op == Opcode::Jmp || Op == Opcode::Jcc; }
  bool isCall() const {
    return Op == Opcode::Call || Op == Opcode::CallInd;
  }
};

/// A procedure: a flat instruction vector plus interface metadata that the
/// analyses (not the producer) are responsible for filling in.
struct Function {
  std::string Name;
  std::vector<Instr> Body;
  bool IsExternal = false;

  // --- Filled by interface recovery (analysis/InterfaceRecovery) ---
  /// Number of 4-byte stack parameters.
  unsigned NumStackParams = 0;
  /// Registers used as undeclared register parameters (possibly spurious,
  /// modelling §2.5 false positives).
  std::vector<Reg> RegParams;
  /// Whether eax carries a return value.
  bool ReturnsValue = false;
};

/// A data-section symbol.
struct GlobalVar {
  std::string Name;
  uint32_t Size = 4;
};

/// A whole program.
struct Module {
  std::vector<Function> Funcs;
  std::vector<GlobalVar> Globals;
  uint32_t EntryFunc = 0;

  std::unordered_map<std::string, uint32_t> FuncByName;
  std::unordered_map<std::string, uint32_t> GlobalByName;

  uint32_t addFunction(Function F) {
    uint32_t Id = static_cast<uint32_t>(Funcs.size());
    FuncByName[F.Name] = Id;
    Funcs.push_back(std::move(F));
    return Id;
  }

  uint32_t addGlobal(GlobalVar G) {
    uint32_t Id = static_cast<uint32_t>(Globals.size());
    GlobalByName[G.Name] = Id;
    Globals.push_back(std::move(G));
    return Id;
  }

  std::optional<uint32_t> findFunction(const std::string &Name) const {
    auto It = FuncByName.find(Name);
    if (It == FuncByName.end())
      return std::nullopt;
    return It->second;
  }

  /// Total instruction count (the N of Figures 11 and 12).
  size_t instructionCount() const {
    size_t N = 0;
    for (const Function &F : Funcs)
      N += F.Body.size();
    return N;
  }
};

/// Renders one instruction in the textual assembly syntax.
std::string instrStr(const Module &M, const Function &F, const Instr &I);

/// Renders a whole module in parseable assembly.
std::string moduleStr(const Module &M);

} // namespace retypd

#endif // RETYPD_MIR_MIR_H
