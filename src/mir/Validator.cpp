//===- Validator.cpp - Module well-formedness checks -------------------------===//

#include "mir/Validator.h"

#include "mir/Cfg.h"

using namespace retypd;

std::vector<ValidationIssue> retypd::validateModule(const Module &M) {
  std::vector<ValidationIssue> Issues;
  auto Error = [&](uint32_t F, uint32_t I, std::string Msg) {
    Issues.push_back({ValidationIssue::Severity::Error, F, I,
                      std::move(Msg)});
  };
  auto Warn = [&](uint32_t F, uint32_t I, std::string Msg) {
    Issues.push_back({ValidationIssue::Severity::Warning, F, I,
                      std::move(Msg)});
  };

  if (M.EntryFunc >= M.Funcs.size() && !M.Funcs.empty())
    Error(0, 0, "entry function id out of range");

  for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
    const Function &Fn = M.Funcs[F];
    if (Fn.IsExternal) {
      if (!Fn.Body.empty())
        Error(F, 0, "external function has a body");
      continue;
    }
    if (Fn.Body.empty()) {
      Warn(F, 0, "empty function body");
      continue;
    }

    bool RangesOk = true;
    for (uint32_t I = 0; I < Fn.Body.size(); ++I) {
      const Instr &Ins = Fn.Body[I];
      if (Ins.isBranch() && Ins.Target >= Fn.Body.size()) {
        Error(F, I, "branch target out of range");
        RangesOk = false;
      }
      if (Ins.Op == Opcode::Call && Ins.Target >= M.Funcs.size())
        Error(F, I, "call target out of range");
      if (Ins.Op == Opcode::MovGlobal && Ins.Target >= M.Globals.size())
        Error(F, I, "global reference out of range");
      bool UsesMem = Ins.Op == Opcode::Load || Ins.Op == Opcode::Store ||
                     Ins.Op == Opcode::StoreImm || Ins.Op == Opcode::Lea;
      if (UsesMem) {
        if (Ins.Mem.isGlobal() && Ins.Mem.GlobalSym >= M.Globals.size())
          Error(F, I, "memory global symbol out of range");
        if (Ins.Mem.Size != 1 && Ins.Mem.Size != 2 && Ins.Mem.Size != 4 &&
            Ins.Mem.Size != 8)
          Error(F, I, "bad memory access size");
      }
    }

    // Every path must end at a terminator: the final instruction of a
    // function must not fall off the end.
    const Instr &Last = Fn.Body.back();
    if (!Last.isTerminator() && Last.Op != Opcode::Jcc)
      Warn(F, static_cast<uint32_t>(Fn.Body.size() - 1),
           "function may fall off its end");
    if (Last.Op == Opcode::Jcc)
      Error(F, static_cast<uint32_t>(Fn.Body.size() - 1),
            "conditional branch falls off the function end");

    // Unreachable code is suspicious in generated IR (real disassembly
    // produces it routinely, hence a warning). The CFG can only be built
    // once branch ranges are known good.
    if (!RangesOk)
      continue;
    Cfg G(Fn);
    std::vector<bool> Reached(G.size(), false);
    for (uint32_t B : G.rpo())
      Reached[B] = true;
    for (uint32_t B = 0; B < G.size(); ++B)
      if (!Reached[B] && G.blocks()[B].Begin < G.blocks()[B].End)
        Warn(F, G.blocks()[B].Begin, "unreachable block");
  }
  return Issues;
}

bool retypd::isStructurallyValid(const Module &M) {
  for (const ValidationIssue &I : validateModule(M))
    if (I.Sev == ValidationIssue::Severity::Error)
      return false;
  return true;
}
