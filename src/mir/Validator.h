//===- Validator.h - Module well-formedness checks ------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural validation for modules, whether hand-written, generated, or
/// disassembled: branch targets in range, call/global references valid,
/// terminated function bodies, and balanced stack discipline on every
/// return path. Downstream passes assume these invariants; the validator
/// makes violations loud instead of latent.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_MIR_VALIDATOR_H
#define RETYPD_MIR_VALIDATOR_H

#include "mir/MIR.h"

#include <string>
#include <vector>

namespace retypd {

/// One validation finding.
struct ValidationIssue {
  enum class Severity : uint8_t { Error, Warning } Sev;
  uint32_t Func = 0;
  uint32_t Instr = 0;
  std::string Message;
};

/// Checks \p M; returns all findings (empty = clean). Errors indicate
/// structurally broken IR; warnings indicate suspicious-but-analyzable
/// shapes (e.g. an unbalanced stack at ret, which real optimized code can
/// exhibit).
std::vector<ValidationIssue> validateModule(const Module &M);

/// True when validateModule reports no errors (warnings allowed).
bool isStructurallyValid(const Module &M);

} // namespace retypd

#endif // RETYPD_MIR_VALIDATOR_H
