//===- Verifier.cpp - Structural module verification -------------------------===//

#include "mir/Verifier.h"

#include <unordered_map>
#include <unordered_set>

using namespace retypd;

namespace {

constexpr uint8_t kRegNone = static_cast<uint8_t>(Reg::None);
constexpr uint8_t kMaxOpcode = static_cast<uint8_t>(Opcode::Nop);
constexpr uint8_t kMaxCond = static_cast<uint8_t>(Cond::Gt);

bool regEncodable(Reg R) { return static_cast<uint8_t>(R) <= kRegNone; }
bool regPresent(Reg R) { return static_cast<uint8_t>(R) < NumRegs; }

/// Per-opcode operand requirements: which register operands must hold a
/// real register, and whether the instruction reads a memory operand.
struct OpShape {
  bool NeedDst = false;
  bool NeedSrc = false;
  bool NeedMem = false;
};

OpShape shapeOf(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return {true, true, false};
  case Opcode::MovImm:
  case Opcode::MovGlobal:
    return {true, false, false};
  case Opcode::Load:
  case Opcode::Lea:
    return {true, false, true};
  case Opcode::Store:
    return {false, true, true};
  case Opcode::StoreImm:
    return {false, false, true};
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Cmp:
  case Opcode::Test:
    return {true, true, false};
  case Opcode::AddImm:
  case Opcode::SubImm:
  case Opcode::AndImm:
  case Opcode::OrImm:
  case Opcode::CmpImm:
    return {true, false, false};
  case Opcode::Push:
  case Opcode::CallInd:
    return {false, true, false};
  case Opcode::Pop:
    return {true, false, false};
  case Opcode::PushImm:
  case Opcode::Jmp:
  case Opcode::Jcc:
  case Opcode::Call:
  case Opcode::Ret:
  case Opcode::Halt:
  case Opcode::Nop:
    return {};
  }
  return {};
}

} // namespace

ModuleVerifyResult retypd::verifyModule(const Module &M) {
  ModuleVerifyResult R;
  auto Err = [&](uint32_t F, uint32_t I, std::string Msg) {
    R.Errors.push_back({F, I, std::move(Msg)});
  };

  // Module-level: duplicate names and name-map consistency. Duplicates
  // make FuncByName/GlobalByName silently drop entries, so the analyses'
  // by-name lookups would resolve to the wrong definition.
  {
    std::unordered_set<std::string> Seen;
    for (uint32_t F = 0; F < M.Funcs.size(); ++F)
      if (!Seen.insert(M.Funcs[F].Name).second)
        Err(F, ModuleDiag::NoPos,
            "duplicate function name '" + M.Funcs[F].Name + "'");
    Seen.clear();
    for (uint32_t G = 0; G < M.Globals.size(); ++G)
      if (!Seen.insert(M.Globals[G].Name).second)
        Err(ModuleDiag::NoPos, ModuleDiag::NoPos,
            "duplicate global name '" + M.Globals[G].Name + "'");
  }
  for (const auto &[Name, Id] : M.FuncByName)
    if (Id >= M.Funcs.size() || M.Funcs[Id].Name != Name)
      Err(ModuleDiag::NoPos, ModuleDiag::NoPos,
          "function name map entry '" + Name + "' does not match its function");
  for (const auto &[Name, Id] : M.GlobalByName)
    if (Id >= M.Globals.size() || M.Globals[Id].Name != Name)
      Err(ModuleDiag::NoPos, ModuleDiag::NoPos,
          "global name map entry '" + Name + "' does not match its global");
  for (uint32_t F = 0; F < M.Funcs.size(); ++F)
    if (!M.FuncByName.count(M.Funcs[F].Name))
      Err(F, ModuleDiag::NoPos,
          "function '" + M.Funcs[F].Name + "' missing from the name map");

  if (!M.Funcs.empty() && M.EntryFunc >= M.Funcs.size())
    Err(ModuleDiag::NoPos, ModuleDiag::NoPos,
        "entry function id " + std::to_string(M.EntryFunc) +
            " out of range (module has " + std::to_string(M.Funcs.size()) +
            " functions)");

  for (uint32_t F = 0; F < M.Funcs.size(); ++F) {
    const Function &Fn = M.Funcs[F];
    if (Fn.IsExternal) {
      if (!Fn.Body.empty())
        Err(F, 0, "external function '" + Fn.Name + "' has a body");
      continue;
    }
    for (Reg P : Fn.RegParams)
      if (!regPresent(P))
        Err(F, ModuleDiag::NoPos,
            "register parameter of '" + Fn.Name + "' is not a register");

    for (uint32_t I = 0; I < Fn.Body.size(); ++I) {
      const Instr &Ins = Fn.Body[I];
      if (static_cast<uint8_t>(Ins.Op) > kMaxOpcode) {
        Err(F, I,
            "unknown opcode " + std::to_string(static_cast<unsigned>(Ins.Op)));
        continue; // shape table has nothing to say about it
      }
      const char *Name = opcodeName(Ins.Op);

      // Register-class sanity first: any encodable slot must hold a value
      // the Reg enum covers, required slots must hold a real register.
      if (!regEncodable(Ins.Dst) || !regEncodable(Ins.Src) ||
          !regEncodable(Ins.Mem.Base)) {
        Err(F, I, std::string(Name) + ": register operand out of range");
        continue;
      }
      OpShape S = shapeOf(Ins.Op);
      if (S.NeedDst && !regPresent(Ins.Dst))
        Err(F, I, std::string(Name) + ": missing destination register");
      if (S.NeedSrc && !regPresent(Ins.Src))
        Err(F, I, std::string(Name) + ": missing source register");
      if (S.NeedMem) {
        if (Ins.Mem.Size != 1 && Ins.Mem.Size != 2 && Ins.Mem.Size != 4 &&
            Ins.Mem.Size != 8)
          Err(F, I,
              std::string(Name) + ": bad memory access size " +
                  std::to_string(static_cast<unsigned>(Ins.Mem.Size)));
        if (Ins.Mem.isGlobal()) {
          if (Ins.Mem.GlobalSym >= M.Globals.size())
            Err(F, I,
                std::string(Name) + ": memory operand references global #" +
                    std::to_string(Ins.Mem.GlobalSym) + " of " +
                    std::to_string(M.Globals.size()));
        } else if (!regPresent(Ins.Mem.Base)) {
          Err(F, I,
              std::string(Name) +
                  ": memory operand has neither base register nor global");
        }
      }

      switch (Ins.Op) {
      case Opcode::Jmp:
      case Opcode::Jcc:
        if (Ins.Target >= Fn.Body.size())
          Err(F, I,
              std::string(Name) + ": branch target #" +
                  std::to_string(Ins.Target) + " out of range (function has " +
                  std::to_string(Fn.Body.size()) + " instructions)");
        if (Ins.Op == Opcode::Jcc &&
            static_cast<uint8_t>(Ins.CC) > kMaxCond)
          Err(F, I, "jcc: unknown condition code");
        break;
      case Opcode::Call:
        if (Ins.Target >= M.Funcs.size())
          Err(F, I,
              "call: unknown call target #" + std::to_string(Ins.Target) +
                  " (module has " + std::to_string(M.Funcs.size()) +
                  " functions)");
        break;
      case Opcode::MovGlobal:
        if (Ins.Target >= M.Globals.size())
          Err(F, I,
              "mov: unknown global #" + std::to_string(Ins.Target) +
                  " (module has " + std::to_string(M.Globals.size()) +
                  " globals)");
        break;
      default:
        break;
      }
    }

    // A conditional branch as the last instruction falls through past the
    // end of the body on its false edge.
    if (!Fn.Body.empty() && Fn.Body.back().Op == Opcode::Jcc)
      Err(F, static_cast<uint32_t>(Fn.Body.size() - 1),
          "conditional branch falls off the end of '" + Fn.Name + "'");
  }
  return R;
}

std::string retypd::renderModuleDiags(
    const Module &M, const ModuleVerifyResult &R, std::string_view File,
    const std::vector<std::vector<uint32_t>> *Lines) {
  std::string Prefix = File.empty() ? "<module>" : std::string(File);
  std::string Out;
  for (const ModuleDiag &D : R.Errors) {
    if (Lines && D.Func < Lines->size() && D.Instr < (*Lines)[D.Func].size()) {
      Out += Prefix + ":" + std::to_string((*Lines)[D.Func][D.Instr]) +
             ": error: " + D.Message + "\n";
      continue;
    }
    Out += Prefix + ": ";
    if (D.Func != ModuleDiag::NoPos && D.Func < M.Funcs.size()) {
      Out += "function '" + M.Funcs[D.Func].Name + "'";
      if (D.Instr != ModuleDiag::NoPos)
        Out += " instr #" + std::to_string(D.Instr);
      Out += ": ";
    }
    Out += "error: " + D.Message + "\n";
  }
  return Out;
}
