//===- Verifier.h - Structural module verification ------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module verifier: exhaustive structural checks on loaded MIR before
/// any analysis runs — operand arity per opcode, register-class sanity,
/// branch/call/global targets in range, duplicate names, and name-map
/// consistency. Where mir/Validator.h reports the range errors downstream
/// passes would trip over plus analyzability *warnings*, the verifier is
/// the strict error-only front gate: everything it reports means the
/// module must not reach ConstraintGen, and every finding carries a
/// precise location that renders as `file:line: error: ...` when the
/// producer supplies a line table (AsmParser::lineTable) and as
/// `function 'f' instr #k` otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_MIR_VERIFIER_H
#define RETYPD_MIR_VERIFIER_H

#include "mir/MIR.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace retypd {

/// One verifier finding, anchored to a function and (usually) an
/// instruction within it.
struct ModuleDiag {
  static constexpr uint32_t NoPos = 0xffffffffu;
  uint32_t Func = NoPos;  ///< function index, NoPos for module-level
  uint32_t Instr = NoPos; ///< instruction index, NoPos for function-level
  std::string Message;
};

/// Result of verifyModule: every rule violation found (NOT just the
/// first), in deterministic module order.
struct ModuleVerifyResult {
  std::vector<ModuleDiag> Errors;
  bool ok() const { return Errors.empty(); }
};

/// Checks every structural rule on \p M. Unlike validateModule, all
/// findings are errors and the walk never stops at the first one.
ModuleVerifyResult verifyModule(const Module &M);

/// Renders \p R one finding per line. With \p Lines (the producer's
/// per-function instruction -> 1-based source line table, see
/// AsmParser::lineTable) findings render as "<file>:<line>: error: msg";
/// without it as "<file>: function 'f' instr #k: error: msg". \p File is
/// the input name used as the diagnostic prefix ("<module>" when empty).
std::string renderModuleDiags(
    const Module &M, const ModuleVerifyResult &R, std::string_view File = {},
    const std::vector<std::vector<uint32_t>> *Lines = nullptr);

} // namespace retypd

#endif // RETYPD_MIR_VERIFIER_H
