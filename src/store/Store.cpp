//===- Store.cpp - Durable multi-process artifact store -------------------===//

#include "store/Store.h"

#include "support/Crc32c.h"
#include "support/Endian.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <unordered_set>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace retypd;
namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Record framing
//===----------------------------------------------------------------------===//

namespace {

/// Dispatches on the two strerror_r flavors: XSI returns int and fills
/// Buf; GNU returns the message pointer (which may ignore Buf).
template <class Ret> const char *strerrorResult(Ret, const char *Buf) {
  return Buf;
}
const char *strerrorResult(char *Msg, const char *Buf) {
  return Msg ? Msg : Buf;
}

/// Thread-safe errno rendering: multiple store writers can fail
/// concurrently, and strerror shares a static buffer.
std::string errnoString(int E) {
  char Buf[128] = "unknown error";
  return strerrorResult(strerror_r(E, Buf, sizeof(Buf)), Buf);
}

/// kind(1) + key(16) + crc(4) + at least one length byte.
constexpr size_t kMinRecordBytes = 1 + 16 + 4 + 1;
/// Sanity cap on a record body; a corrupt length beyond this is treated
/// as a torn tail rather than a multi-GB skip.
constexpr size_t kMaxBodyBytes = size_t(1) << 30;
/// Sanity cap on a pool name; same torn-tail treatment.
constexpr size_t kMaxPoolNameBytes = size_t(1) << 20;

void putLeb(std::string &Out, uint64_t V) {
  do {
    unsigned char B = V & 0x7f;
    V >>= 7;
    if (V)
      B |= 0x80;
    Out.push_back(static_cast<char>(B));
  } while (V);
}

/// Serializes one record. The CRC covers kind, key, the LEB length
/// bytes, and the body — the whole record except the CRC field itself —
/// so no part of the framing is trusted on read. Returns the offset of
/// the body within \p Out.
size_t serializeRecord(std::string &Out, const Hash128 &K,
                       std::string_view Body, uint8_t Kind) {
  std::string Leb;
  putLeb(Leb, Body.size());
  Crc32c C;
  C.updateByte(Kind);
  std::string KeyBytes;
  appendLE64(KeyBytes, K.Hi);
  appendLE64(KeyBytes, K.Lo);
  C.update(KeyBytes);
  C.update(Leb);
  C.update(Body);
  Out.push_back(static_cast<char>(Kind));
  Out += KeyBytes;
  appendLE32(Out, C.value());
  Out += Leb;
  size_t BodyOff = Out.size();
  Out.append(Body.data(), Body.size());
  return BodyOff;
}

struct RawRecord {
  size_t Start = 0;    ///< record start offset in the segment
  size_t TotalLen = 0; ///< whole-record length (frame + body)
  Hash128 Key;
  size_t BodyOff = 0;
  uint32_t BodyLen = 0;
  uint8_t Kind = 0;
  bool Corrupt = false; ///< frame complete but CRC mismatched
};

/// Scans [From, Bytes.size()) for records. A frame-complete record with
/// a bad CRC is reported Corrupt and skipped — its neighbors still scan.
/// Returns the "valid end": the offset of the first torn/incomplete
/// record, or the end of the scanned range. Everything past the valid
/// end is an unreadable tail.
size_t scanRecords(std::string_view Bytes, size_t From,
                   std::vector<RawRecord> &Out) {
  size_t Pos = From;
  const unsigned char *Base =
      reinterpret_cast<const unsigned char *>(Bytes.data());
  while (Pos + kMinRecordBytes <= Bytes.size()) {
    RawRecord R;
    R.Start = Pos;
    R.Kind = Base[Pos];
    R.Key.Hi = loadLE64(Base + Pos + 1);
    R.Key.Lo = loadLE64(Base + Pos + 9);
    uint32_t Crc = loadLE32(Base + Pos + 17);
    size_t LebPos = Pos + 21;
    uint64_t Len = 0;
    unsigned Shift = 0;
    size_t LebEnd = LebPos;
    bool LebOk = false;
    while (LebEnd < Bytes.size() && Shift < 64) {
      unsigned char B = Base[LebEnd++];
      Len |= static_cast<uint64_t>(B & 0x7f) << Shift;
      Shift += 7;
      if (!(B & 0x80)) {
        LebOk = true;
        break;
      }
    }
    if (!LebOk || Len > kMaxBodyBytes || Len > Bytes.size() - LebEnd)
      break; // torn tail: the frame itself is incomplete
    R.BodyOff = LebEnd;
    R.BodyLen = static_cast<uint32_t>(Len);
    R.TotalLen = (LebEnd - Pos) + Len;
    Crc32c C;
    C.update(Base + Pos, 17);                 // kind + key
    C.update(Base + LebPos, LebEnd - LebPos); // length bytes
    C.update(Base + LebEnd, Len);             // body
    R.Corrupt = C.value() != Crc;
    Out.push_back(R);
    Pos += R.TotalLen;
  }
  return Pos;
}

/// Scans [From, Bytes.size()) of a pool file for name records
/// (crc32c:u32le len:u32le bytes[len]; CRC covers len + bytes). A name's
/// pool id is its ordinal, so a bad record invalidates every id after
/// it — the scan stops at the first torn OR corrupt record, and records
/// past that point are unreachable (payloads referencing their ids fail
/// validation because the pool size excludes them). Returns the valid
/// end.
size_t scanPoolRecords(std::string_view Bytes, size_t From,
                       std::vector<std::string_view> &Out) {
  size_t Pos = From;
  const char *Base = Bytes.data();
  while (Pos + 8 <= Bytes.size()) {
    uint32_t Crc = loadLE32(Base + Pos);
    uint64_t Len = loadLE32(Base + Pos + 4);
    if (Len > kMaxPoolNameBytes || Len > Bytes.size() - Pos - 8)
      break;
    Crc32c C;
    C.update(Base + Pos + 4, 4 + Len);
    if (C.value() != Crc)
      break;
    Out.push_back(Bytes.substr(Pos + 8, Len));
    Pos += 8 + Len;
  }
  return Pos;
}

/// Serializes one pool name record.
void serializePoolRecord(std::string &Out, std::string_view Name) {
  std::string Framed;
  appendLE32(Framed, static_cast<uint32_t>(Name.size()));
  Framed.append(Name.data(), Name.size());
  Crc32c C;
  C.update(Framed);
  appendLE32(Out, C.value());
  Out += Framed;
}

//===----------------------------------------------------------------------===//
// MANIFEST and segment headers
//===----------------------------------------------------------------------===//

struct ManifestData {
  unsigned FormatVersion = 0;
  unsigned SchemaVersion = 0;
  uint64_t Generation = 0;
  std::string PoolName; ///< name-pool file ("" when none exists yet)
  std::vector<std::string> SegmentNames;
};

enum class ManifestStatus { Ok, Missing, Unrecognized, Stale, Newer };

bool versionIsNewer(unsigned Format, unsigned Schema, unsigned WantSchema) {
  return Format > kStoreFormatVersion ||
         (Format == kStoreFormatVersion && WantSchema != 0 &&
          Schema > WantSchema);
}

std::string versionMismatchError(unsigned Format, unsigned Schema,
                                 unsigned WantSchema) {
  std::string Versions = "(v" + std::to_string(Format) + " schema " +
                         std::to_string(Schema) + "; this binary: v" +
                         std::to_string(kStoreFormatVersion) + " schema " +
                         std::to_string(WantSchema) + ")";
  if (versionIsNewer(Format, Schema, WantSchema))
    return "artifact store is newer than this binary " + Versions +
           " — upgrade the binary or point it at a different store";
  return "stale artifact store " + Versions +
         " — re-run analyze to regenerate it";
}

/// Reads and classifies a MANIFEST. \p WantSchema 0 skips the schema
/// comparison (format version is still checked).
ManifestStatus readManifest(const std::string &Path, unsigned WantSchema,
                            ManifestData &Out, std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Err)
      *Err = "cannot open MANIFEST";
    return ManifestStatus::Missing;
  }
  std::string Line;
  if (!std::getline(In, Line) ||
      std::sscanf(Line.c_str(), "retypd-store v%u schema %u",
                  &Out.FormatVersion, &Out.SchemaVersion) != 2) {
    if (Line.rfind("retypd-store", 0) == 0) {
      // A recognizable but unparseable header is an older layout.
      Out.FormatVersion = 0;
      Out.SchemaVersion = 0;
      if (Err)
        *Err = versionMismatchError(0, 0, WantSchema);
      return ManifestStatus::Stale;
    }
    if (Err)
      *Err = "unrecognized MANIFEST header: " + Line;
    return ManifestStatus::Unrecognized;
  }
  if (Out.FormatVersion != kStoreFormatVersion ||
      (WantSchema != 0 && Out.SchemaVersion != WantSchema)) {
    if (Err)
      *Err = versionMismatchError(Out.FormatVersion, Out.SchemaVersion,
                                  WantSchema);
    return versionIsNewer(Out.FormatVersion, Out.SchemaVersion, WantSchema)
               ? ManifestStatus::Newer
               : ManifestStatus::Stale;
  }
  bool HaveGen = false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    unsigned long long G = 0;
    char NameBuf[256];
    if (std::sscanf(Line.c_str(), "generation %llu", &G) == 1) {
      Out.Generation = G;
      HaveGen = true;
    } else if (std::sscanf(Line.c_str(), "segment %255s", NameBuf) == 1) {
      std::string Name = NameBuf;
      // Segment names never leave the store directory.
      if (Name.find('/') != std::string::npos) {
        if (Err)
          *Err = "malformed MANIFEST: bad segment name '" + Name + "'";
        return ManifestStatus::Unrecognized;
      }
      Out.SegmentNames.push_back(std::move(Name));
    } else if (std::sscanf(Line.c_str(), "pool %255s", NameBuf) == 1) {
      std::string Name = NameBuf;
      if (Name.find('/') != std::string::npos || !Out.PoolName.empty()) {
        if (Err)
          *Err = "malformed MANIFEST: bad pool line '" + Line + "'";
        return ManifestStatus::Unrecognized;
      }
      Out.PoolName = std::move(Name);
    } else {
      if (Err)
        *Err = "malformed MANIFEST line: " + Line;
      return ManifestStatus::Unrecognized;
    }
  }
  // Zero segment lines is a valid empty store: the state between writing
  // the MANIFEST and the first flush, and what external tooling may leave
  // behind. Only a missing generation makes the file malformed.
  if (!HaveGen) {
    if (Err)
      *Err = "malformed MANIFEST: missing generation";
    return ManifestStatus::Unrecognized;
  }
  return ManifestStatus::Ok;
}

std::string renderManifest(const ManifestData &MD) {
  std::string Out = "retypd-store v" + std::to_string(MD.FormatVersion) +
                    " schema " + std::to_string(MD.SchemaVersion) + "\n" +
                    "generation " + std::to_string(MD.Generation) + "\n";
  if (!MD.PoolName.empty())
    Out += "pool " + MD.PoolName + "\n";
  for (const std::string &N : MD.SegmentNames)
    Out += "segment " + N + "\n";
  return Out;
}

std::string segmentHeader(unsigned SchemaVersion) {
  return "retypd-segment v" + std::to_string(kStoreFormatVersion) +
         " schema " + std::to_string(SchemaVersion) + "\n";
}

/// Parses a segment's header line. Returns the header length in bytes,
/// or 0 when the bytes do not start a segment of the wanted schema.
size_t parseSegmentHeader(std::string_view Bytes, unsigned WantSchema) {
  size_t Nl = Bytes.substr(0, 64).find('\n');
  if (Nl == std::string_view::npos)
    return 0;
  std::string Line(Bytes.substr(0, Nl));
  unsigned V = 0, S = 0;
  if (std::sscanf(Line.c_str(), "retypd-segment v%u schema %u", &V, &S) != 2)
    return 0;
  if (V != kStoreFormatVersion || (WantSchema != 0 && S != WantSchema))
    return 0;
  return Nl + 1;
}

std::string poolHeader(unsigned SchemaVersion) {
  return "retypd-pool v" + std::to_string(kStoreFormatVersion) + " schema " +
         std::to_string(SchemaVersion) + "\n";
}

/// Parses a pool file's header line; same contract as parseSegmentHeader.
size_t parsePoolHeader(std::string_view Bytes, unsigned WantSchema) {
  size_t Nl = Bytes.substr(0, 64).find('\n');
  if (Nl == std::string_view::npos)
    return 0;
  std::string Line(Bytes.substr(0, Nl));
  unsigned V = 0, S = 0;
  if (std::sscanf(Line.c_str(), "retypd-pool v%u schema %u", &V, &S) != 2)
    return 0;
  if (V != kStoreFormatVersion || (WantSchema != 0 && S != WantSchema))
    return 0;
  return Nl + 1;
}

//===----------------------------------------------------------------------===//
// POSIX helpers
//===----------------------------------------------------------------------===//

/// Advisory exclusive lock on <dir>/LOCK. Appenders and compaction hold
/// it while mutating the directory; readers never touch it.
class FileLock {
public:
  bool acquire(const std::string &Dir, std::string *Err) {
    std::string Path = Dir + "/LOCK";
    Fd = ::open(Path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (Fd < 0) {
      if (Err)
        *Err = "cannot open " + Path + ": " + errnoString(errno);
      return false;
    }
    if (::flock(Fd, LOCK_EX) != 0) {
      if (Err)
        *Err = "cannot lock " + Path + ": " + errnoString(errno);
      ::close(Fd);
      Fd = -1;
      return false;
    }
    return true;
  }
  ~FileLock() {
    if (Fd >= 0) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
    }
  }

private:
  int Fd = -1;
};

bool writeFileDurable(const std::string &Path, std::string_view Bytes,
                      bool Fsync, std::string *Err) {
  int Fd = ::open(Path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
                  0644);
  if (Fd < 0) {
    if (Err)
      *Err = "cannot create " + Path + ": " + errnoString(errno);
    return false;
  }
  size_t Done = 0;
  while (Done < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Done, Bytes.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = "cannot write " + Path + ": " + errnoString(errno);
      ::close(Fd);
      ::unlink(Path.c_str());
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  bool Ok = !Fsync || ::fsync(Fd) == 0;
  ::close(Fd);
  if (!Ok) {
    if (Err)
      *Err = "cannot fsync " + Path;
    ::unlink(Path.c_str());
  }
  return Ok;
}

void fsyncDir(const std::string &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (Fd >= 0) {
    ::fsync(Fd); // best effort: rename durability
    ::close(Fd);
  }
}

/// Atomically publishes a MANIFEST via a uniquely named temp + rename.
bool writeManifest(const std::string &Dir, const ManifestData &MD,
                   bool Fsync, std::string *Err) {
  static std::atomic<uint64_t> Seq{0};
  std::string Tmp = Dir + "/MANIFEST.tmp." +
                    std::to_string(static_cast<long>(::getpid())) + "." +
                    std::to_string(Seq.fetch_add(1));
  if (!writeFileDurable(Tmp, renderManifest(MD), Fsync, Err))
    return false;
  std::string Final = Dir + "/MANIFEST";
  if (std::rename(Tmp.c_str(), Final.c_str()) != 0) {
    if (Err)
      *Err = "cannot publish MANIFEST: " + errnoString(errno);
    std::remove(Tmp.c_str());
    return false;
  }
  if (Fsync)
    fsyncDir(Dir);
  return true;
}

std::string segmentName(uint64_t Gen, uint64_t Seq) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "seg-%06llx-%06llx.rseg",
                static_cast<unsigned long long>(Gen),
                static_cast<unsigned long long>(Seq));
  return Buf;
}

std::string poolFileName(uint64_t Gen) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "pool-%06llx.rpool",
                static_cast<unsigned long long>(Gen));
  return Buf;
}

bool parseSegmentName(const std::string &Name, uint64_t &Gen,
                      uint64_t &Seq) {
  unsigned long long G = 0, S = 0;
  char Tail[8] = {0};
  if (std::sscanf(Name.c_str(), "seg-%6llx-%6llx.rse%1s", &G, &S, Tail) != 3 ||
      Tail[0] != 'g')
    return false;
  Gen = G;
  Seq = S;
  return true;
}

bool preadAll(int Fd, char *Buf, size_t Len, off_t Off) {
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::pread(Fd, Buf + Done, Len - Done,
                        Off + static_cast<off_t>(Done));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    Done += static_cast<size_t>(N);
  }
  return true;
}

std::string slurpFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::string S((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Segment state
//===----------------------------------------------------------------------===//

struct Store::Segment {
  std::string Name;
  int Fd = -1;
  bool Writable = false;
  bool Mmapped = false;
  const char *MapAddr = nullptr;
  size_t MapLen = 0;
  std::string FallbackBuf; ///< whole-file copy when mmap is unavailable
  size_t HeaderBytes = 0;
  size_t FileBytes = 0; ///< size at last scan
  size_t ValidEnd = 0;  ///< just past the last frame-complete record
  size_t Records = 0;   ///< frame-complete records scanned (live + dead)

  std::string_view bytes() const {
    if (Mmapped)
      return {MapAddr, FileBytes};
    return FallbackBuf;
  }

  void unmap() {
    if (Mmapped && MapAddr)
      ::munmap(const_cast<char *>(MapAddr), MapLen);
    Mmapped = false;
    MapAddr = nullptr;
    MapLen = 0;
  }

  void close() {
    unmap();
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
    FallbackBuf.clear();
  }
};

Store::Store(std::string D, StoreOptions O) : Dir(std::move(D)), Opts(O) {}

Store::~Store() {
  std::unique_lock<std::shared_mutex> L(M);
  for (Segment &S : Segments)
    S.close();
}

//===----------------------------------------------------------------------===//
// Open / view loading
//===----------------------------------------------------------------------===//

bool Store::remapSegment(Segment &S, std::string *Err) {
  struct stat St;
  if (::fstat(S.Fd, &St) != 0) {
    if (Err)
      *Err = "cannot stat segment " + S.Name;
    return false;
  }
  size_t NewSize = static_cast<size_t>(St.st_size);
  S.unmap();
  S.FileBytes = NewSize;
  if (NewSize == 0)
    return true;
  void *Addr = ::mmap(nullptr, NewSize, PROT_READ, MAP_SHARED, S.Fd, 0);
  if (Addr != MAP_FAILED) {
    S.MapAddr = static_cast<const char *>(Addr);
    S.MapLen = NewSize;
    S.Mmapped = true;
    S.FallbackBuf.clear();
    return true;
  }
  // Filesystems without mmap support fall back to a one-time read copy;
  // lookups served from it are counted on StorePayloadCopies so the
  // zero-copy invariant tests can see the difference.
  S.FallbackBuf.resize(NewSize);
  if (!preadAll(S.Fd, S.FallbackBuf.data(), NewSize, 0)) {
    if (Err)
      *Err = "cannot read segment " + S.Name;
    return false;
  }
  return true;
}

bool Store::loadPoolLocked(const std::string &Name, std::string *Err) {
  if (Name.empty()) {
    if (!PoolNames.empty())
      ++PoolEpoch;
    PoolNames.clear();
    PoolIds.clear();
    PoolName.clear();
    PoolValidEnd = 0;
    PoolSynced = 0;
    return true;
  }
  if (Name == PoolName) {
    // Same file: it is append-only, so if it has not grown there is
    // nothing to do, and if it has, only the tail needs scanning.
    std::error_code EC;
    uintmax_t Sz = fs::file_size(Dir + "/" + Name, EC);
    if (!EC && Sz == PoolValidEnd)
      return true;
  }
  std::string Bytes = slurpFile(Dir + "/" + Name);
  bool TailOnly = Name == PoolName && Bytes.size() >= PoolValidEnd;
  size_t From = PoolValidEnd;
  if (!TailOnly) {
    From = parsePoolHeader(Bytes, Opts.SchemaVersion);
    if (From == 0) {
      if (Err)
        *Err = "pool " + Name + " has a bad header";
      return false;
    }
  }
  std::vector<std::string_view> Scanned;
  size_t ValidEnd = scanPoolRecords(Bytes, From, Scanned);
  if (TailOnly) {
    for (std::string_view N : Scanned) {
      std::string Owned(N);
      PoolIds.emplace(Owned, static_cast<uint32_t>(PoolNames.size()));
      PoolNames.push_back(std::move(Owned));
    }
  } else {
    // Wholesale (re)load. Translation tables built against the old
    // contents stay valid only if the new contents extend them — a
    // compaction carries the pool verbatim, so the common case keeps
    // the epoch.
    bool Extends = Scanned.size() >= PoolNames.size();
    for (size_t I = 0; Extends && I < PoolNames.size(); ++I)
      Extends = Scanned[I] == PoolNames[I];
    if (!Extends)
      ++PoolEpoch;
    PoolNames.clear();
    PoolIds.clear();
    PoolNames.reserve(Scanned.size());
    for (std::string_view N : Scanned) {
      std::string Owned(N);
      PoolIds.emplace(Owned, static_cast<uint32_t>(PoolNames.size()));
      PoolNames.push_back(std::move(Owned));
    }
  }
  PoolName = Name;
  PoolValidEnd = ValidEnd;
  PoolSynced = PoolNames.size();
  return true;
}

bool Store::loadViewLocked(std::string *Err) {
  for (Segment &S : Segments)
    S.close();
  Segments.clear();
  Index.clear();

  ManifestData MD;
  std::string E;
  ManifestStatus St =
      readManifest(Dir + "/MANIFEST", Opts.SchemaVersion, MD, &E);
  if (St != ManifestStatus::Ok) {
    if (Err)
      *Err = E;
    return false;
  }
  Generation = MD.Generation;
  // The pool loads BEFORE segments: scan-time payload validation checks
  // pool-mode name ids against the pool size.
  if (!loadPoolLocked(MD.PoolName, Err))
    return false;
  Segments.reserve(MD.SegmentNames.size());
  for (const std::string &Name : MD.SegmentNames) {
    Segments.emplace_back();
    Segment &S = Segments.back();
    S.Name = Name;
    std::string Path = Dir + "/" + Name;
    S.Fd = ::open(Path.c_str(), O_RDWR | O_CLOEXEC);
    S.Writable = S.Fd >= 0;
    if (S.Fd < 0)
      S.Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
    if (S.Fd < 0) {
      if (Err)
        *Err = "missing segment " + Name;
      return false;
    }
    if (!S.Writable)
      ReadOnly = true;
    if (!remapSegment(S, Err))
      return false;
    std::string_view B = S.bytes();
    S.HeaderBytes = parseSegmentHeader(B, Opts.SchemaVersion);
    if (S.HeaderBytes == 0) {
      if (Err)
        *Err = "segment " + Name + " has a bad header";
      return false;
    }
    S.ValidEnd = S.HeaderBytes;
    S.Records = 0;
    if (!scanSegmentTail(Segments.size() - 1, Err))
      return false;
  }
  return true;
}

bool Store::scanSegmentTail(size_t SegIdx, std::string *Err) {
  Segment &S = Segments[SegIdx];
  std::vector<RawRecord> Recs;
  S.ValidEnd = scanRecords(S.bytes(), S.ValidEnd, Recs);
  S.Records += Recs.size();
  for (const RawRecord &R : Recs) {
    if (R.Corrupt)
      continue; // contained: neighbors still index
    if (Opts.Validator) {
      // Structural validation happens HERE, once per record per process
      // lifetime — lookups then decode through the codec's trusted fast
      // path. A record that fails is treated exactly like a CRC
      // mismatch: skipped, neighbors unaffected.
      EventCounters::SegmentValidates.fetch_add(1, std::memory_order_relaxed);
      if (!Opts.Validator(S.bytes().substr(R.BodyOff, R.BodyLen),
                          PoolNames.size()))
        continue;
    }
    Index[R.Key] = Loc{static_cast<uint32_t>(SegIdx), R.BodyOff, R.BodyLen};
  }
  return true;
}

bool Store::initializeLocked(std::string *Err) {
  ManifestData MD;
  MD.FormatVersion = kStoreFormatVersion;
  MD.SchemaVersion = Opts.SchemaVersion;
  MD.Generation = 1;
  MD.SegmentNames.push_back(segmentName(1, 0));
  if (!writeFileDurable(Dir + "/" + MD.SegmentNames[0],
                        segmentHeader(Opts.SchemaVersion), Opts.Fsync, Err))
    return false;
  return writeManifest(Dir, MD, Opts.Fsync, Err);
}

std::unique_ptr<Store> Store::open(const std::string &Dir,
                                   const StoreOptions &Opts,
                                   std::string *Err) {
  std::unique_ptr<Store> S(new Store(Dir, Opts));
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    if (Err)
      *Err = "cannot create " + Dir + ": " + EC.message();
    return nullptr;
  }
  ManifestData MD;
  std::string E;
  ManifestStatus St = readManifest(Dir + "/MANIFEST", Opts.SchemaVersion,
                                   MD, &E);
  if (St == ManifestStatus::Missing ||
      (St == ManifestStatus::Stale && Opts.RegenerateStale)) {
    FileLock L;
    if (!L.acquire(Dir, Err))
      return nullptr;
    // Another process may have initialized or regenerated while we
    // waited for the lock.
    St = readManifest(Dir + "/MANIFEST", Opts.SchemaVersion, MD, &E);
    if (St == ManifestStatus::Stale && Opts.RegenerateStale) {
      // A stale store is a cold store: drop its segments and pool
      // wholesale.
      for (const auto &Entry : fs::directory_iterator(Dir, EC)) {
        std::string Name = Entry.path().filename().string();
        if (Entry.path().extension() == ".rseg" ||
            Entry.path().extension() == ".rpool" ||
            Name.rfind("MANIFEST", 0) == 0)
          fs::remove(Entry.path(), EC);
      }
      St = ManifestStatus::Missing;
    }
    if (St == ManifestStatus::Missing) {
      if (!S->initializeLocked(Err))
        return nullptr;
      St = readManifest(Dir + "/MANIFEST", Opts.SchemaVersion, MD, &E);
    }
  }
  if (St != ManifestStatus::Ok) {
    if (Err)
      *Err = E;
    return nullptr;
  }
  std::unique_lock<std::shared_mutex> L(S->M);
  if (!S->loadViewLocked(Err))
    return nullptr;
  L.unlock();
  return S;
}

//===----------------------------------------------------------------------===//
// Reads
//===----------------------------------------------------------------------===//

Store::PayloadRef Store::lookup(const Hash128 &K) const {
  PayloadRef R;
  std::shared_lock<std::shared_mutex> L(M);
  auto It = Index.find(K);
  if (It == Index.end())
    return R;
  const Segment &S = Segments[It->second.Seg];
  if (!S.Mmapped)
    EventCounters::StorePayloadCopies.fetch_add(1, std::memory_order_relaxed);
  R.View = S.bytes().substr(It->second.BodyOff, It->second.BodyLen);
  R.Found = true;
  R.Lock = std::move(L);
  return R;
}

bool Store::payloadEqualsLocked(const Hash128 &K,
                                std::string_view Bytes) const {
  auto It = Index.find(K);
  if (It == Index.end())
    return false;
  const Segment &S = Segments[It->second.Seg];
  return S.bytes().substr(It->second.BodyOff, It->second.BodyLen) == Bytes;
}

bool Store::payloadEquals(const Hash128 &K, std::string_view Bytes) const {
  std::shared_lock<std::shared_mutex> L(M);
  return payloadEqualsLocked(K, Bytes);
}

uint64_t Store::generation() const {
  std::shared_lock<std::shared_mutex> L(M);
  return Generation;
}

uint64_t Store::poolSize() const {
  std::shared_lock<std::shared_mutex> L(M);
  return PoolNames.size();
}

uint64_t Store::poolEpoch() const {
  std::shared_lock<std::shared_mutex> L(M);
  return PoolEpoch;
}

void Store::forEachPoolNameFrom(
    uint64_t From,
    const std::function<void(uint64_t, std::string_view)> &Fn) const {
  std::shared_lock<std::shared_mutex> L(M);
  for (uint64_t I = From; I < PoolNames.size(); ++I)
    Fn(I, PoolNames[I]);
}

size_t Store::keyCount() const {
  std::shared_lock<std::shared_mutex> L(M);
  return Index.size();
}

size_t Store::liveBytes() const {
  // Whole-record bytes, matching inspect()'s live-bytes attribution:
  // frame (kind + key + crc + LEB length bytes) plus body.
  std::shared_lock<std::shared_mutex> L(M);
  size_t N = 0;
  for (const auto &E : Index) {
    size_t Leb = 1;
    for (uint64_t V = E.second.BodyLen; V >>= 7;)
      ++Leb;
    N += 1 + 16 + 4 + Leb + E.second.BodyLen;
  }
  return N;
}

std::vector<std::pair<Hash128, size_t>> Store::liveEntries() const {
  std::shared_lock<std::shared_mutex> L(M);
  std::vector<std::pair<Hash128, size_t>> Out;
  Out.reserve(Index.size());
  for (const auto &E : Index)
    Out.emplace_back(E.first, E.second.BodyLen);
  return Out;
}

//===----------------------------------------------------------------------===//
// Appends
//===----------------------------------------------------------------------===//

void Store::appendLocked(const Hash128 &K, std::string_view Payload,
                         uint8_t Kind) {
  PendingRec R;
  R.Key = K;
  R.BodyOff = serializeRecord(PendingBytes, K, Payload, Kind);
  R.BodyLen = static_cast<uint32_t>(Payload.size());
  Pending.push_back(R);
}

void Store::append(const Hash128 &K, std::string_view Payload, uint8_t Kind) {
  std::unique_lock<std::shared_mutex> L(M);
  appendLocked(K, Payload, Kind);
}

size_t Store::pendingRecords() const {
  std::shared_lock<std::shared_mutex> L(M);
  return Pending.size();
}

uint32_t Store::poolIdForLocked(std::string_view Name) {
  std::string Key(Name);
  auto It = PoolIds.find(Key);
  if (It != PoolIds.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(PoolNames.size());
  PoolIds.emplace(Key, Id);
  PoolNames.push_back(std::move(Key));
  return Id;
}

uint32_t Store::Txn::poolIdFor(std::string_view Name) {
  return S.poolIdForLocked(Name);
}

bool Store::Txn::payloadEquals(const Hash128 &K,
                               std::string_view Bytes) const {
  return S.payloadEqualsLocked(K, Bytes);
}

void Store::Txn::append(const Hash128 &K, std::string_view Payload,
                        uint8_t Kind) {
  S.appendLocked(K, Payload, Kind);
}

bool Store::syncLocked(std::string *Err) {
  ManifestData MD;
  std::string E;
  if (readManifest(Dir + "/MANIFEST", Opts.SchemaVersion, MD, &E) !=
      ManifestStatus::Ok) {
    if (Err)
      *Err = E;
    return false;
  }
  bool SameView = MD.Generation == Generation &&
                  MD.SegmentNames.size() == Segments.size();
  if (SameView)
    for (size_t I = 0; I < Segments.size(); ++I)
      SameView = SameView && MD.SegmentNames[I] == Segments[I].Name;
  if (!SameView)
    // Another process rolled a segment or compacted: rebuild wholesale.
    return loadViewLocked(Err);
  // Pool first (another process may have created or extended it), so a
  // grown segment tail validates against the matching pool size.
  if (MD.PoolName != PoolName || !PoolName.empty())
    if (!loadPoolLocked(MD.PoolName, Err))
      return false;
  // An empty store has no tail to rescan.
  if (Segments.empty())
    return true;
  // Only the active segment can have grown (appends are tail-only).
  Segment &A = Segments.back();
  struct stat St;
  if (::fstat(A.Fd, &St) != 0) {
    if (Err)
      *Err = "cannot stat segment " + A.Name;
    return false;
  }
  if (static_cast<size_t>(St.st_size) != A.FileBytes) {
    if (!remapSegment(A, Err))
      return false;
    if (!scanSegmentTail(Segments.size() - 1, Err))
      return false;
  }
  return true;
}

bool Store::refresh(std::string *Err) {
  std::unique_lock<std::shared_mutex> L(M);
  return syncLocked(Err);
}

bool Store::flush(std::string *Err) {
  std::unique_lock<std::shared_mutex> L(M);
  if (Pending.empty())
    return true;
  return flushLocked(nullptr, Err);
}

bool Store::flushWith(const std::function<bool(Txn &)> &Fill,
                      std::string *Err) {
  std::unique_lock<std::shared_mutex> L(M);
  return flushLocked(&Fill, Err);
}

bool Store::writePoolAdditionsLocked(size_t FromId, std::string *Err) {
  if (PoolNames.size() <= FromId)
    return true;
  std::string Bytes;
  for (size_t I = FromId; I < PoolNames.size(); ++I)
    serializePoolRecord(Bytes, PoolNames[I]);
  if (PoolName.empty()) {
    // First pool for this store: write the file under its final name,
    // then publish it with a MANIFEST that carries the pool line. Until
    // that rename lands, no reader sees the pool — and no record
    // referencing its ids exists yet, because segment records are only
    // written after this returns.
    std::string Name = poolFileName(Generation);
    std::string Content = poolHeader(Opts.SchemaVersion) + Bytes;
    if (!writeFileDurable(Dir + "/" + Name, Content, Opts.Fsync, Err))
      return false;
    ManifestData MD;
    MD.FormatVersion = kStoreFormatVersion;
    MD.SchemaVersion = Opts.SchemaVersion;
    MD.Generation = Generation;
    MD.PoolName = Name;
    for (const Segment &S : Segments)
      MD.SegmentNames.push_back(S.Name);
    if (!writeManifest(Dir, MD, Opts.Fsync, Err))
      return false;
    PoolName = Name;
    PoolValidEnd = Content.size();
    PoolSynced = PoolNames.size();
    return true;
  }
  int Fd = ::open((Dir + "/" + PoolName).c_str(), O_RDWR | O_CLOEXEC);
  if (Fd < 0) {
    if (Err)
      *Err = "cannot open pool " + PoolName + ": " + errnoString(errno);
    return false;
  }
  // Heal a torn pool tail before appending: under the exclusive lock,
  // bytes past the valid end are debris from a crashed writer.
  bool Ok = ::ftruncate(Fd, static_cast<off_t>(PoolValidEnd)) == 0;
  size_t Done = 0;
  while (Ok && Done < Bytes.size()) {
    ssize_t N = ::pwrite(Fd, Bytes.data() + Done, Bytes.size() - Done,
                         static_cast<off_t>(PoolValidEnd + Done));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Ok = false;
      break;
    }
    Done += static_cast<size_t>(N);
  }
  // The pool additions are durable BEFORE any segment record that
  // references them: a crash after this point leaves unused names, never
  // dangling ids.
  Ok = Ok && (!Opts.Fsync || ::fdatasync(Fd) == 0);
  ::close(Fd);
  if (!Ok) {
    if (Err)
      *Err = "cannot append to pool " + PoolName;
    return false;
  }
  PoolValidEnd += Bytes.size();
  PoolSynced = PoolNames.size();
  return true;
}

bool Store::flushLocked(const std::function<bool(Txn &)> *Fill,
                        std::string *Err) {
  if (ReadOnly) {
    if (Err)
      *Err = "store is read-only";
    return false;
  }
  FileLock FL;
  if (!FL.acquire(Dir, Err))
    return false;
  if (!syncLocked(Err))
    return false;

  size_t PoolStart = PoolNames.size();
  size_t PendStart = Pending.size();
  size_t PendBytesStart = PendingBytes.size();
  auto RollbackPool = [&] {
    for (size_t I = PoolStart; I < PoolNames.size(); ++I)
      PoolIds.erase(PoolNames[I]);
    PoolNames.resize(PoolStart);
  };
  auto RollbackPending = [&] {
    Pending.resize(PendStart);
    PendingBytes.resize(PendBytesStart);
  };

  if (Fill) {
    Txn T(*this);
    if (!(*Fill)(T)) {
      RollbackPool();
      RollbackPending();
      if (Err && Err->empty())
        *Err = "flush callback failed";
      return false;
    }
  }
  if (Pending.empty() && PoolNames.size() == PoolStart)
    return true;

  // Pool additions land first. If this fails, nothing referencing the
  // new ids was written, so both the names and the staged records roll
  // back cleanly. Once it succeeds the names are durable and stay —
  // later failures roll back only the staged records (a retried flush
  // re-resolves the same names to the same ids).
  if (!writePoolAdditionsLocked(PoolStart, Err)) {
    RollbackPool();
    RollbackPending();
    return false;
  }
  if (Pending.empty())
    return true;
  if (!writePendingLocked(Err)) {
    RollbackPending();
    return false;
  }
  return true;
}

bool Store::writePendingLocked(std::string *Err) {
  // Heal a torn tail: under the exclusive lock nobody else is mid-append,
  // so bytes past the valid end are debris from a crashed writer.
  if (!Segments.empty()) {
    Segment &A = Segments.back();
    if (A.FileBytes > A.ValidEnd) {
      if (::ftruncate(A.Fd, static_cast<off_t>(A.ValidEnd)) != 0) {
        if (Err)
          *Err = "cannot truncate torn tail of " + A.Name;
        return false;
      }
      if (!remapSegment(A, Err))
        return false;
      A.ValidEnd = A.FileBytes;
    }
  }

  // Roll to a fresh segment once the active one is oversized — or when
  // the view has none at all (a MANIFEST-only empty store). The MANIFEST
  // gains a segment line (same generation) before any record lands in
  // the new file, so readers always discover it.
  if (Segments.empty() || Segments.back().ValidEnd >= Opts.MaxSegmentBytes) {
    uint64_t Seq = 0;
    if (!Segments.empty()) {
      uint64_t Gen = 0, PrevSeq = 0;
      parseSegmentName(Segments.back().Name, Gen, PrevSeq);
      Seq = PrevSeq + 1;
    }
    std::string Name = segmentName(Generation, Seq);
    if (!writeFileDurable(Dir + "/" + Name, segmentHeader(Opts.SchemaVersion),
                          Opts.Fsync, Err))
      return false;
    ManifestData MD;
    MD.FormatVersion = kStoreFormatVersion;
    MD.SchemaVersion = Opts.SchemaVersion;
    MD.Generation = Generation;
    MD.PoolName = PoolName;
    for (const Segment &S : Segments)
      MD.SegmentNames.push_back(S.Name);
    MD.SegmentNames.push_back(Name);
    if (!writeManifest(Dir, MD, Opts.Fsync, Err))
      return false;
    Segments.emplace_back();
    Segment &S = Segments.back();
    S.Name = Name;
    S.Fd = ::open((Dir + "/" + Name).c_str(), O_RDWR | O_CLOEXEC);
    S.Writable = S.Fd >= 0;
    if (S.Fd < 0 || !remapSegment(S, Err)) {
      if (Err && S.Fd < 0)
        *Err = "cannot reopen rolled segment " + Name;
      return false;
    }
    S.HeaderBytes = parseSegmentHeader(S.bytes(), Opts.SchemaVersion);
    S.ValidEnd = S.HeaderBytes;
  }

  Segment &A = Segments.back();
  size_t Base = A.ValidEnd;
  size_t Done = 0;
  while (Done < PendingBytes.size()) {
    ssize_t N = ::pwrite(A.Fd, PendingBytes.data() + Done,
                         PendingBytes.size() - Done,
                         static_cast<off_t>(Base + Done));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = "cannot append to " + A.Name + ": " + errnoString(errno);
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  if (Opts.Fsync && ::fdatasync(A.Fd) != 0) {
    if (Err)
      *Err = "cannot fdatasync " + A.Name;
    return false;
  }
  if (!remapSegment(A, Err))
    return false;
  A.ValidEnd = Base + PendingBytes.size();
  A.Records += Pending.size();
  uint32_t SegIdx = static_cast<uint32_t>(Segments.size() - 1);
  for (const PendingRec &R : Pending)
    Index[R.Key] = Loc{SegIdx, Base + R.BodyOff, R.BodyLen};
  EventCounters::StoreAppends.fetch_add(Pending.size(),
                                        std::memory_order_relaxed);
  trace::instant("store.append", "store",
                 static_cast<int64_t>(Pending.size()));
  Pending.clear();
  PendingBytes.clear();
  PendingBytes.shrink_to_fit();
  return true;
}

//===----------------------------------------------------------------------===//
// Compaction
//===----------------------------------------------------------------------===//

std::optional<StoreCompactResult> Store::compact(std::string *Err) {
  return compactImpl(nullptr, Err);
}

std::optional<StoreCompactResult>
Store::compact(const std::function<bool(const Hash128 &, size_t)> &Keep,
               std::string *Err) {
  return compactImpl(&Keep, Err);
}

std::optional<StoreCompactResult>
Store::compactImpl(const std::function<bool(const Hash128 &, size_t)> *Keep,
                   std::string *Err) {
  std::unique_lock<std::shared_mutex> L(M);
  if (ReadOnly) {
    if (Err)
      *Err = "store is read-only";
    return std::nullopt;
  }
  FileLock FL;
  if (!FL.acquire(Dir, Err))
    return std::nullopt;
  if (!syncLocked(Err))
    return std::nullopt;

  // Fold pending appends in as live entries rather than losing or
  // double-writing them: they simply join the survivor set.
  std::vector<std::pair<Hash128, std::string_view>> Live;
  Live.reserve(Index.size() + Pending.size());
  for (const auto &E : Index) {
    const Segment &S = Segments[E.second.Seg];
    Live.emplace_back(E.first, S.bytes().substr(E.second.BodyOff,
                                                E.second.BodyLen));
  }
  for (const PendingRec &R : Pending) {
    std::string_view Body =
        std::string_view(PendingBytes).substr(R.BodyOff, R.BodyLen);
    bool Replaced = false;
    for (auto &E : Live)
      if (E.first == R.Key) {
        E.second = Body; // pending beats stored: it is the latest writer
        Replaced = true;
      }
    if (!Replaced)
      Live.emplace_back(R.Key, Body);
  }

  size_t TotalRecords = Pending.size();
  for (const Segment &S : Segments)
    TotalRecords += S.Records;

  StoreCompactResult Out;
  std::vector<std::pair<Hash128, std::string_view>> Kept;
  Kept.reserve(Live.size());
  for (auto &E : Live) {
    if (Keep && !(*Keep)(E.first, E.second.size()))
      continue;
    Kept.push_back(E);
  }
  // Deterministic segment contents: key order, like the legacy save().
  std::sort(Kept.begin(), Kept.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  uint64_t NewGen = Generation + 1;
  std::string NewName = segmentName(NewGen, 0);
  std::string NewPoolName =
      PoolNames.empty() ? std::string() : poolFileName(NewGen);

  // Old directory footprint: the manifest's segments and pool plus any
  // orphan segments/pools a killed compaction left behind. A gen+1
  // orphan shares the NEW segment's (or pool's) name (this compaction IS
  // that one's retry) — it gets overwritten below, so it is neither an
  // orphan to delete nor old bytes to count.
  size_t OldBytes = 0;
  for (const Segment &S : Segments)
    OldBytes += S.FileBytes;
  OldBytes += PoolValidEnd;
  std::error_code EC;
  std::vector<std::string> Orphans;
  for (const auto &Entry : fs::directory_iterator(Dir, EC)) {
    std::string Name = Entry.path().filename().string();
    bool InManifest = Name == NewName || Name == NewPoolName ||
                      (!PoolName.empty() && Name == PoolName);
    for (const Segment &S : Segments)
      InManifest = InManifest || S.Name == Name;
    if (!InManifest && (Entry.path().extension() == ".rseg" ||
                        Entry.path().extension() == ".rpool" ||
                        Name.rfind("MANIFEST.tmp", 0) == 0)) {
      Orphans.push_back(Name);
      OldBytes += static_cast<size_t>(fs::file_size(Entry.path(), EC));
    }
  }

  // The pool is carried into the new generation verbatim (same names,
  // same ids — records keep their pool references bit-for-bit). Written
  // under its final name BEFORE the MANIFEST flips, same crash
  // discipline as the segment: a crash leaves an orphan the old
  // generation never reads.
  std::string NewPoolBytes;
  if (!NewPoolName.empty()) {
    NewPoolBytes = poolHeader(Opts.SchemaVersion);
    for (const std::string &N : PoolNames)
      serializePoolRecord(NewPoolBytes, N);
    if (!writeFileDurable(Dir + "/" + NewPoolName, NewPoolBytes, Opts.Fsync,
                          Err))
      return std::nullopt;
  }
  std::string NewBytes = segmentHeader(Opts.SchemaVersion);
  for (const auto &E : Kept) {
    serializeRecord(NewBytes, E.first, E.second,
                    E.second.empty()
                        ? 0
                        : static_cast<uint8_t>(
                              static_cast<unsigned char>(E.second[0])));
    Out.LiveBytes += E.second.size();
  }
  Out.LiveRecords = Kept.size();
  Out.DroppedRecords = TotalRecords - Kept.size();
  // The new segment is written under its final name BEFORE the MANIFEST
  // flips: a crash here leaves an orphan the old generation never reads.
  if (!writeFileDurable(Dir + "/" + NewName, NewBytes, Opts.Fsync, Err))
    return std::nullopt;
  ManifestData MD;
  MD.FormatVersion = kStoreFormatVersion;
  MD.SchemaVersion = Opts.SchemaVersion;
  MD.Generation = NewGen;
  MD.PoolName = NewPoolName;
  MD.SegmentNames.push_back(NewName);
  if (!writeManifest(Dir, MD, Opts.Fsync, Err))
    return std::nullopt;

  // Point of no return: the new generation is durable. Retire the old
  // segments, the old pool, and any orphans (readers that mmapped them
  // keep their mappings — unlink does not invalidate established maps).
  for (Segment &S : Segments) {
    std::string Name = S.Name;
    S.close();
    fs::remove(Dir + "/" + Name, EC);
  }
  if (!PoolName.empty() && PoolName != NewPoolName)
    fs::remove(Dir + "/" + PoolName, EC);
  for (const std::string &Name : Orphans)
    fs::remove(Dir + "/" + Name, EC);
  size_t NewTotal = NewBytes.size() + NewPoolBytes.size();
  Out.ReclaimedBytes = OldBytes > NewTotal ? OldBytes - NewTotal : 0;
  Out.Generation = NewGen;

  Pending.clear();
  PendingBytes.clear();
  Segments.clear();
  Index.clear();
  if (!loadViewLocked(Err))
    return std::nullopt;
  EventCounters::StoreCompactions.fetch_add(1, std::memory_order_relaxed);
  trace::instant("store.compact", "store", 1);
  return Out;
}

//===----------------------------------------------------------------------===//
// Inspection
//===----------------------------------------------------------------------===//

bool Store::looksLikeStoreDir(const std::string &Path) {
  std::error_code EC;
  return fs::is_directory(Path, EC);
}

bool Store::isUninitializedDir(const std::string &Path) {
  std::error_code EC;
  if (!fs::exists(Path, EC))
    return true;
  if (!fs::is_directory(Path, EC))
    return false;
  for (const auto &Entry : fs::directory_iterator(Path, EC)) {
    std::string Name = Entry.path().filename().string();
    if (Name == "LOCK")
      continue; // a concurrent open's lock file does not make it a store
    return false;
  }
  return true;
}

StoreInfo Store::inspect(const std::string &Dir, unsigned SchemaVersion) {
  StoreInfo Info;
  std::error_code EC;
  if (!fs::is_directory(Dir, EC)) {
    Info.Error = "not a directory";
    return Info;
  }
  ManifestData MD;
  std::string E;
  ManifestStatus St = readManifest(Dir + "/MANIFEST", SchemaVersion, MD, &E);
  Info.FormatVersion = MD.FormatVersion;
  Info.SchemaVersion = MD.SchemaVersion;
  if (St == ManifestStatus::Missing) {
    Info.Error = "no MANIFEST — not an artifact store";
    return Info;
  }
  if (St == ManifestStatus::Stale || St == ManifestStatus::Newer) {
    Info.Stale = St == ManifestStatus::Stale;
    Info.Newer = St == ManifestStatus::Newer;
    Info.Error = E;
    return Info;
  }
  if (St != ManifestStatus::Ok) {
    Info.Error = E;
    return Info;
  }
  Info.Generation = MD.Generation;
  if (!MD.PoolName.empty()) {
    std::string PoolBytes = slurpFile(Dir + "/" + MD.PoolName);
    Info.PoolBytes = PoolBytes.size();
    size_t H = parsePoolHeader(PoolBytes, MD.SchemaVersion);
    if (H != 0) {
      std::vector<std::string_view> Names;
      scanPoolRecords(PoolBytes, H, Names);
      Info.PoolNames = Names.size();
    }
  }

  // Scan every segment, then attribute live/dead per segment: the live
  // record for a key is the LAST frame-valid one in manifest+file order.
  struct SegScan {
    std::string Bytes;
    std::vector<RawRecord> Recs;
    size_t ValidEnd = 0;
    size_t HeaderBytes = 0;
  };
  std::vector<SegScan> Scans(MD.SegmentNames.size());
  std::unordered_map<Hash128, std::pair<size_t, size_t>, Hash128Hasher>
      LiveAt; // key -> (segment, record index)
  for (size_t SI = 0; SI < MD.SegmentNames.size(); ++SI) {
    SegScan &SS = Scans[SI];
    SS.Bytes = slurpFile(Dir + "/" + MD.SegmentNames[SI]);
    SS.HeaderBytes = parseSegmentHeader(SS.Bytes, MD.SchemaVersion);
    if (SS.HeaderBytes == 0) {
      Info.Error = "segment " + MD.SegmentNames[SI] + " has a bad header";
      return Info;
    }
    SS.ValidEnd = scanRecords(SS.Bytes, SS.HeaderBytes, SS.Recs);
    for (size_t RI = 0; RI < SS.Recs.size(); ++RI)
      if (!SS.Recs[RI].Corrupt)
        LiveAt[SS.Recs[RI].Key] = {SI, RI};
  }
  for (size_t SI = 0; SI < Scans.size(); ++SI) {
    const SegScan &SS = Scans[SI];
    StoreSegmentInfo Seg;
    Seg.Name = MD.SegmentNames[SI];
    Seg.FileBytes = SS.Bytes.size();
    Seg.Records = SS.Recs.size();
    Seg.DeadBytes = SS.Bytes.size() - SS.ValidEnd; // torn tail, if any
    for (size_t RI = 0; RI < SS.Recs.size(); ++RI) {
      const RawRecord &R = SS.Recs[RI];
      bool IsLive = false;
      if (!R.Corrupt) {
        auto It = LiveAt.find(R.Key);
        IsLive = It != LiveAt.end() && It->second.first == SI &&
                 It->second.second == RI;
      }
      Seg.CorruptRecords += R.Corrupt;
      if (IsLive) {
        ++Seg.LiveRecords;
        Seg.LiveBytes += R.TotalLen;
        ++Info.LiveKindCounts[R.Kind];
      } else {
        Seg.DeadBytes += R.TotalLen;
      }
    }
    Info.LiveBytes += Seg.LiveBytes;
    Info.DeadBytes += Seg.DeadBytes;
    Info.Segments.push_back(std::move(Seg));
  }
  Info.KeyCount = LiveAt.size();
  Info.Ok = true;
  return Info;
}

//===----------------------------------------------------------------------===//
// fsck
//===----------------------------------------------------------------------===//

StoreFsckReport Store::fsck(
    const std::string &Dir, unsigned SchemaVersion,
    const std::function<bool(std::string_view, uint64_t)> &ValidatePayload) {
  StoreFsckReport Rep;
  std::error_code EC;
  if (!fs::is_directory(Dir, EC)) {
    Rep.Error = "not a directory";
    return Rep;
  }
  ManifestData MD;
  std::string E;
  ManifestStatus St = readManifest(Dir + "/MANIFEST", SchemaVersion, MD, &E);
  if (St == ManifestStatus::Missing) {
    Rep.Error = "no MANIFEST — not an artifact store";
    return Rep;
  }
  if (St == ManifestStatus::Stale || St == ManifestStatus::Newer) {
    Rep.Stale = St == ManifestStatus::Stale;
    Rep.Newer = St == ManifestStatus::Newer;
    Rep.Error = E;
    return Rep;
  }
  if (St != ManifestStatus::Ok) {
    // A readable but malformed MANIFEST: the scan cannot run, but the
    // finding is still localized (the MANIFEST itself).
    Rep.Error = E;
    Rep.Violations.push_back({"MANIFEST", 0, false, {}, E});
    return Rep;
  }
  Rep.Generation = MD.Generation;

  auto Violate = [&](const std::string &File, uint64_t Off, std::string Msg) {
    Rep.Violations.push_back({File, Off, false, {}, std::move(Msg)});
  };
  auto ViolateKey = [&](const std::string &File, uint64_t Off,
                        const Hash128 &K, std::string Msg) {
    Rep.Violations.push_back({File, Off, true, K, std::move(Msg)});
  };

  // ---- Cross-references: every store-shaped file accounted for --------
  {
    std::unordered_set<std::string> Referenced(MD.SegmentNames.begin(),
                                               MD.SegmentNames.end());
    if (!MD.PoolName.empty())
      Referenced.insert(MD.PoolName);
    for (const auto &Entry : fs::directory_iterator(Dir, EC)) {
      std::string Name = Entry.path().filename().string();
      bool StoreShaped = Name.size() > 5 &&
                         (Name.rfind(".rseg") == Name.size() - 5 ||
                          Name.rfind(".rpool") == Name.size() - 6);
      if (StoreShaped && !Referenced.count(Name))
        Violate(Name, 0,
                "not referenced by MANIFEST (orphan of an interrupted "
                "compaction)");
    }
  }

  // ---- The name pool --------------------------------------------------
  // A name's pool id is its ordinal, so the first corrupt record
  // invalidates every id at or after it; the walk distinguishes that
  // from a torn tail and reports the exact offset either way.
  uint64_t PoolSize = 0;
  if (!MD.PoolName.empty()) {
    if (!fs::exists(Dir + "/" + MD.PoolName, EC)) {
      Violate(MD.PoolName, 0, "pool file named by MANIFEST is missing");
    } else {
      std::string PB = slurpFile(Dir + "/" + MD.PoolName);
      size_t H = parsePoolHeader(PB, MD.SchemaVersion);
      if (H == 0) {
        Violate(MD.PoolName, 0, "bad pool header");
      } else {
        size_t Pos = H;
        bool Bad = false;
        while (Pos + 8 <= PB.size()) {
          uint32_t Crc = loadLE32(PB.data() + Pos);
          uint64_t Len = loadLE32(PB.data() + Pos + 4);
          if (Len > kMaxPoolNameBytes || Len > PB.size() - Pos - 8) {
            Violate(MD.PoolName, Pos,
                    "torn pool record for name #" + std::to_string(PoolSize));
            Bad = true;
            break;
          }
          Crc32c C;
          C.update(PB.data() + Pos + 4, 4 + Len);
          if (C.value() != Crc) {
            Violate(MD.PoolName, Pos,
                    "pool name record #" + std::to_string(PoolSize) +
                        " CRC mismatch (this id and every later one is "
                        "unresolvable)");
            Bad = true;
            break;
          }
          ++PoolSize;
          Pos += 8 + Len;
        }
        if (!Bad && Pos != PB.size())
          Violate(MD.PoolName, Pos,
                  "torn pool tail (" + std::to_string(PB.size() - Pos) +
                      " trailing bytes)");
      }
    }
  }
  Rep.PoolNames = PoolSize;

  // ---- Segments: frame CRC, kind convention, payload validation -------
  struct SegScan {
    std::string Bytes;
    std::vector<RawRecord> Recs;
    size_t ValidEnd = 0;
  };
  std::vector<SegScan> Scans(MD.SegmentNames.size());
  std::unordered_map<Hash128, std::pair<size_t, size_t>, Hash128Hasher>
      LiveAt; // key -> (segment, record index), last frame-valid wins
  for (size_t SI = 0; SI < MD.SegmentNames.size(); ++SI) {
    const std::string &Name = MD.SegmentNames[SI];
    SegScan &SS = Scans[SI];
    if (!fs::exists(Dir + "/" + Name, EC)) {
      Violate(Name, 0, "segment named by MANIFEST is missing");
      continue;
    }
    SS.Bytes = slurpFile(Dir + "/" + Name);
    size_t Header = parseSegmentHeader(SS.Bytes, MD.SchemaVersion);
    if (Header == 0) {
      Violate(Name, 0, "bad segment header");
      continue;
    }
    ++Rep.SegmentsScanned;
    SS.ValidEnd = scanRecords(SS.Bytes, Header, SS.Recs);
    Rep.RecordsScanned += SS.Recs.size();
    if (SS.ValidEnd != SS.Bytes.size())
      Violate(Name, SS.ValidEnd,
              "torn record tail (" +
                  std::to_string(SS.Bytes.size() - SS.ValidEnd) +
                  " trailing bytes unreadable)");
    for (size_t RI = 0; RI < SS.Recs.size(); ++RI) {
      const RawRecord &R = SS.Recs[RI];
      if (R.Corrupt) {
        ViolateKey(Name, R.Start, R.Key, "record CRC32C mismatch");
        continue;
      }
      LiveAt[R.Key] = {SI, RI};
      std::string_view Body(SS.Bytes.data() + R.BodyOff, R.BodyLen);
      // Kind-byte convention (appends stamp the payload's leading tag
      // byte); only meaningful for payloads the caller can interpret.
      if (ValidatePayload && R.BodyLen > 0 &&
          R.Kind != static_cast<uint8_t>(static_cast<unsigned char>(Body[0])))
        ViolateKey(Name, R.Start, R.Key,
                   "kind byte " + std::to_string(unsigned(R.Kind)) +
                       " disagrees with payload tag " +
                       std::to_string(unsigned(static_cast<unsigned char>(
                           Body[0]))));
      if (ValidatePayload && !ValidatePayload(Body, PoolSize))
        ViolateKey(Name, R.Start, R.Key,
                   "payload fails structural validation against a pool of " +
                       std::to_string(PoolSize) + " names");
    }
  }
  for (const auto &[K, Loc] : LiveAt) {
    (void)K;
    (void)Loc;
    ++Rep.LiveRecords;
  }

  // ---- LWW liveness reconciled with inspect() -------------------------
  // inspect() attributes live/dead bytes with its own pass over the same
  // files; the two accountings must agree exactly.
  StoreInfo Info = Store::inspect(Dir, SchemaVersion);
  if (!Info.Ok) {
    Violate("MANIFEST", 0, "inspect() failed on a scannable store: " +
                               Info.Error);
  } else {
    if (Info.KeyCount != LiveAt.size())
      Violate("MANIFEST", 0,
              "liveness accounting mismatch: fsck sees " +
                  std::to_string(LiveAt.size()) + " live keys, inspect " +
                  std::to_string(Info.KeyCount));
    if (Info.PoolNames != PoolSize)
      Violate(MD.PoolName.empty() ? "MANIFEST" : MD.PoolName, 0,
              "pool accounting mismatch: fsck sees " +
                  std::to_string(PoolSize) + " names, inspect " +
                  std::to_string(Info.PoolNames));
    for (size_t SI = 0;
         SI < Scans.size() && SI < Info.Segments.size(); ++SI) {
      size_t Live = 0, LiveBytes = 0;
      for (size_t RI = 0; RI < Scans[SI].Recs.size(); ++RI) {
        const RawRecord &R = Scans[SI].Recs[RI];
        if (R.Corrupt)
          continue;
        auto It = LiveAt.find(R.Key);
        if (It != LiveAt.end() && It->second.first == SI &&
            It->second.second == RI) {
          ++Live;
          LiveBytes += R.TotalLen;
        }
      }
      if (Live != Info.Segments[SI].LiveRecords ||
          LiveBytes != Info.Segments[SI].LiveBytes)
        Violate(MD.SegmentNames[SI], 0,
                "per-segment liveness mismatch: fsck sees " +
                    std::to_string(Live) + " live records / " +
                    std::to_string(LiveBytes) + " bytes, inspect " +
                    std::to_string(Info.Segments[SI].LiveRecords) + " / " +
                    std::to_string(Info.Segments[SI].LiveBytes));
    }
  }

  Rep.Ok = true;
  return Rep;
}
