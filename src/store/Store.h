//===- Store.h - Durable multi-process artifact store ---------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An on-disk, multi-process artifact store for content-addressed binary
/// payloads — the durable backing of core/SummaryCache. Where the legacy
/// `--summary-cache FILE` format rewrites one file wholesale on every
/// save, the store is a directory of append-only *journaled segments*
/// plus a generation-numbered MANIFEST, designed so that
///
///  - **appends are incremental**: a run adds only its new payloads, as
///    framed records at the tail of the active segment;
///  - **reads are zero-copy**: segments are memory-mapped, and lookups
///    hand back `string_view`s straight into the mapping — the binary
///    codec (core/SchemeCodec.h) decodes from the mapped bytes without
///    ever copying the payload;
///  - **many processes share one store**: appenders serialize on an
///    advisory file lock (`LOCK`, flock) while readers never take any
///    lock at all. Concurrent appends of one key are resolved
///    last-writer-wins; per-record CRC32C framing means a reader racing
///    an append sees either a whole record or a detectably torn tail;
///  - **corruption is contained per record**: a CRC mismatch skips that
///    record only, a torn/truncated tail is dropped on open and healed
///    (truncated away) by the next locked append, and a crash between
///    compaction's segment write and its MANIFEST rename leaves the
///    previous generation fully intact;
///  - **space is reclaimed explicitly**: `compact()` folds the live
///    record per key into a fresh segment under a new MANIFEST
///    generation and deletes the superseded segments (plus any orphans a
///    killed compaction left behind).
///
/// On-disk layout (`<dir>/`):
///
///   MANIFEST                        retypd-store v1 schema <S>
///                                   generation <G>
///                                   segment <name>        (one per line;
///                                   ...                    last = active)
///   LOCK                            empty flock target for appenders
///   seg-<gen%06x>-<seq%06x>.rseg    segments: one header line
///                                   ("retypd-segment v1 schema <S>"),
///                                   then records back to back:
///
///   record := kind:u8  key:u64le*2  crc32c:u32le  len:LEB128  body[len]
///
/// The CRC covers kind, key, the LEB length bytes, and the body, so any
/// torn or flipped byte in a record is detected without trusting the
/// record's own framing. `schema` tracks the payload codec version
/// (kSchemePayloadVersion via the owning cache): a store written by an
/// older codec is stale wholesale — same philosophy as the cache file
/// header — and is either refused with an actionable message or, when
/// the caller opts in (the analyze path), reinitialized empty.
///
/// Thread safety: one `Store` object may be shared by the pipeline's
/// worker threads. Lookups take a shared lock (the returned `PayloadRef`
/// keeps it until destroyed, pinning the mapping); append buffering,
/// flush, refresh, and compaction take the exclusive lock.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_STORE_STORE_H
#define RETYPD_STORE_STORE_H

#include "support/Hash128.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace retypd {

/// Container-format version of the store directory layout (MANIFEST +
/// segment framing). Distinct from the payload schema version, which the
/// owning cache supplies via StoreOptions.
inline constexpr unsigned kStoreFormatVersion = 1;

struct StoreOptions {
  /// Payload schema stamped into MANIFEST and segment headers. A store
  /// whose schema differs is stale (older) or unusable (newer) wholesale.
  unsigned SchemaVersion = 1;
  /// Appends roll to a fresh segment once the active one exceeds this.
  size_t MaxSegmentBytes = 8u << 20;
  /// fdatasync segment appends and fsync compaction artifacts. Tests
  /// turn this off; the durability claims assume it on.
  bool Fsync = true;
  /// When the directory holds a STALE store (older format or schema),
  /// wipe and reinitialize it instead of failing. The analyze path opts
  /// in — "a stale cache is a cold cache" — while inspect/prune keep it
  /// off so they can report instead of destroy. Newer-than-this-binary
  /// stores are never touched.
  bool RegenerateStale = false;
};

/// Per-segment accounting from Store::inspect.
struct StoreSegmentInfo {
  std::string Name;
  size_t FileBytes = 0;
  size_t Records = 0;        ///< frame-complete records (live + dead)
  size_t LiveRecords = 0;    ///< latest record per key
  size_t LiveBytes = 0;      ///< whole-record bytes of live records
  size_t DeadBytes = 0;      ///< superseded + corrupt + torn-tail bytes
  size_t CorruptRecords = 0; ///< frame-complete but CRC-mismatched
};

/// What Store::inspect learned about a store directory.
struct StoreInfo {
  bool Ok = false;
  std::string Error; ///< why not, when !Ok
  bool Stale = false; ///< recognized store, OLDER format/schema
  bool Newer = false; ///< recognized store written by a NEWER binary
  unsigned FormatVersion = 0;
  unsigned SchemaVersion = 0;
  uint64_t Generation = 0;
  size_t KeyCount = 0; ///< distinct live keys across segments
  size_t LiveBytes = 0;
  size_t DeadBytes = 0;
  std::vector<StoreSegmentInfo> Segments;
};

/// Outcome of one Store::compact call.
struct StoreCompactResult {
  uint64_t Generation = 0;   ///< the new MANIFEST generation
  size_t LiveRecords = 0;    ///< records carried into the new segment
  size_t LiveBytes = 0;      ///< payload bytes carried over
  size_t DroppedRecords = 0; ///< superseded/corrupt/filtered records folded
  size_t ReclaimedBytes = 0; ///< directory bytes freed (>= reported dead)
};

/// A durable, multi-process, append-only artifact store.
class Store {
public:
  /// Opens (creating or, with RegenerateStale, reinitializing) the store
  /// in \p Dir. Returns nullptr with \p Err set on unreadable, foreign,
  /// or newer-versioned directories.
  static std::unique_ptr<Store> open(const std::string &Dir,
                                     const StoreOptions &Opts,
                                     std::string *Err = nullptr);
  ~Store();
  Store(const Store &) = delete;
  Store &operator=(const Store &) = delete;

  /// A zero-copy view of one stored payload. Holds the store's shared
  /// lock for its lifetime, pinning the segment mapping the view points
  /// into — decode from it, then drop it before taking other locks.
  class PayloadRef {
  public:
    PayloadRef() = default;
    explicit operator bool() const { return Found; }
    std::string_view view() const { return View; }

  private:
    friend class Store;
    std::shared_lock<std::shared_mutex> Lock;
    std::string_view View;
    bool Found = false;
  };

  /// Looks up the live payload for \p K (last writer wins). The view
  /// points into the mapped segment — no payload bytes are copied; when
  /// a segment could not be memory-mapped the fallback read is counted
  /// on EventCounters::StorePayloadCopies.
  PayloadRef lookup(const Hash128 &K) const;

  /// True when the live payload for \p K equals \p Bytes exactly. The
  /// flush path uses this to skip re-appending unchanged entries.
  bool payloadEquals(const Hash128 &K, std::string_view Bytes) const;

  /// Buffers one record for the next flush(). \p Kind is informational
  /// (by convention the payload's leading tag byte).
  void append(const Hash128 &K, std::string_view Payload, uint8_t Kind = 0);

  size_t pendingRecords() const;

  /// Takes the advisory file lock, absorbs any records other processes
  /// appended since our last sync, heals a torn tail, rolls the segment
  /// if oversized, writes the pending records, and updates the in-memory
  /// index. Counted on EventCounters::StoreAppends per record written.
  bool flush(std::string *Err = nullptr);

  /// Re-reads MANIFEST and the active segment tail to pick up work other
  /// processes published. Lock-free on disk (readers never block).
  bool refresh(std::string *Err = nullptr);

  /// Folds the live record per key into a fresh segment under generation
  /// + 1, then deletes superseded segments and any orphans of a killed
  /// earlier compaction. Flushes pending appends first. The overload
  /// with \p Keep additionally drops live keys the predicate rejects
  /// (the prune path). Counted on EventCounters::StoreCompactions.
  std::optional<StoreCompactResult> compact(std::string *Err = nullptr);
  std::optional<StoreCompactResult>
  compact(const std::function<bool(const Hash128 &, size_t PayloadBytes)>
              &Keep,
          std::string *Err = nullptr);

  uint64_t generation() const;
  size_t keyCount() const;
  /// Whole-record bytes of live records (the mapped working set).
  size_t liveBytes() const;
  /// (key, payload bytes) of every live record, unordered — the prune
  /// path sizes its victims with this before compacting with a filter.
  std::vector<std::pair<Hash128, size_t>> liveEntries() const;
  const std::string &dir() const { return Dir; }

  /// Reads a store directory's MANIFEST and segments without opening (or
  /// creating, or healing) anything. Stale/newer stores set the matching
  /// flag and an actionable Error.
  static StoreInfo inspect(const std::string &Dir,
                           unsigned SchemaVersion = 0);

  /// True when \p Path is a directory that looks like (any version of) a
  /// store — used by the CLI to route `cache` verbs.
  static bool looksLikeStoreDir(const std::string &Path);

private:
  struct Segment;
  struct Loc {
    uint32_t Seg = 0;
    uint64_t BodyOff = 0;
    uint32_t BodyLen = 0;
  };

  Store(std::string Dir, StoreOptions Opts);
  bool initializeLocked(std::string *Err);
  bool loadViewLocked(std::string *Err);
  bool syncLocked(std::string *Err);
  bool scanSegmentTail(size_t SegIdx, std::string *Err);
  bool remapSegment(Segment &S, std::string *Err);
  std::optional<StoreCompactResult>
  compactImpl(const std::function<bool(const Hash128 &, size_t)> *Keep,
              std::string *Err);

  std::string Dir;
  StoreOptions Opts;

  mutable std::shared_mutex M;
  uint64_t Generation = 0;
  std::vector<Segment> Segments;
  std::unordered_map<Hash128, Loc, Hash128Hasher> Index;
  bool ReadOnly = false;

  std::string PendingBytes; ///< serialized records awaiting flush
  struct PendingRec {
    Hash128 Key;
    size_t BodyOff = 0; ///< into PendingBytes
    uint32_t BodyLen = 0;
  };
  std::vector<PendingRec> Pending;
};

} // namespace retypd

#endif // RETYPD_STORE_STORE_H
