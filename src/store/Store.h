//===- Store.h - Durable multi-process artifact store ---------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An on-disk, multi-process artifact store for content-addressed binary
/// payloads — the durable backing of core/SummaryCache. Where the legacy
/// `--summary-cache FILE` format rewrites one file wholesale on every
/// save, the store is a directory of append-only *journaled segments*
/// plus a generation-numbered MANIFEST, designed so that
///
///  - **appends are incremental**: a run adds only its new payloads, as
///    framed records at the tail of the active segment;
///  - **reads are zero-copy**: segments are memory-mapped, and lookups
///    hand back `string_view`s straight into the mapping — the binary
///    codec (core/SchemeCodec.h) decodes from the mapped bytes without
///    ever copying the payload;
///  - **many processes share one store**: appenders serialize on an
///    advisory file lock (`LOCK`, flock) while readers never take any
///    lock at all. Concurrent appends of one key are resolved
///    last-writer-wins; per-record CRC32C framing means a reader racing
///    an append sees either a whole record or a detectably torn tail;
///  - **corruption is contained per record**: a CRC mismatch skips that
///    record only, a torn/truncated tail is dropped on open and healed
///    (truncated away) by the next locked append, and a crash between
///    compaction's segment write and its MANIFEST rename leaves the
///    previous generation fully intact;
///  - **space is reclaimed explicitly**: `compact()` folds the live
///    record per key into a fresh segment under a new MANIFEST
///    generation and deletes the superseded segments (plus any orphans a
///    killed compaction left behind).
///
/// On-disk layout (`<dir>/`):
///
///   MANIFEST                        retypd-store v1 schema <S>
///                                   generation <G>
///                                   pool <name>           (at most one)
///                                   segment <name>        (one per line;
///                                   ...                    last = active)
///   LOCK                            empty flock target for appenders
///   seg-<gen%06x>-<seq%06x>.rseg    segments: one header line
///                                   ("retypd-segment v1 schema <S>"),
///                                   then records back to back:
///
///   record := kind:u8  key:u64le*2  crc32c:u32le  len:LEB128  body[len]
///
///   pool-<gen%06x>.rpool            the name pool: one header line
///                                   ("retypd-pool v1 schema <S>"), then
///                                   append-only name records back to
///                                   back; a name's pool id is its
///                                   ordinal in the file:
///
///   name := crc32c:u32le  len:u32le  bytes[len]
///
/// The CRC covers kind, key, the LEB length bytes, and the body, so any
/// torn or flipped byte in a record is detected without trusting the
/// record's own framing. `schema` tracks the payload codec version
/// (kSchemePayloadVersion via the owning cache): a store written by an
/// older codec is stale wholesale — same philosophy as the cache file
/// header — and is either refused with an actionable message or, when
/// the caller opts in (the analyze path), reinitialized empty.
///
/// The name pool makes payload name resolution a batch operation: pool-
/// mode payloads reference names as u32 ids into the pool, and a reader
/// interns each pool name exactly once per store generation (building an
/// id -> SymbolId translation table) instead of hashing strings out of
/// every payload. Pool ids are assigned under the flush lock and the
/// pool records are fdatasync'd BEFORE any segment record that uses them
/// lands, so a published payload can never reference a name id the pool
/// does not durably hold. Compaction carries the pool verbatim into a
/// generation-stamped successor file before the MANIFEST flips, same
/// crash discipline as segments.
///
/// Thread safety: one `Store` object may be shared by the pipeline's
/// worker threads. Lookups take a shared lock (the returned `PayloadRef`
/// keeps it until destroyed, pinning the mapping); append buffering,
/// flush, refresh, and compaction take the exclusive lock.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_STORE_STORE_H
#define RETYPD_STORE_STORE_H

#include "support/Hash128.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace retypd {

/// Container-format version of the store directory layout (MANIFEST +
/// segment framing). Distinct from the payload schema version, which the
/// owning cache supplies via StoreOptions.
inline constexpr unsigned kStoreFormatVersion = 1;

struct StoreOptions {
  /// Payload schema stamped into MANIFEST and segment headers. A store
  /// whose schema differs is stale (older) or unusable (newer) wholesale.
  unsigned SchemaVersion = 1;
  /// Appends roll to a fresh segment once the active one exceeds this.
  size_t MaxSegmentBytes = 8u << 20;
  /// fdatasync segment appends and fsync compaction artifacts. Tests
  /// turn this off; the durability claims assume it on.
  bool Fsync = true;
  /// When the directory holds a STALE store (older format or schema),
  /// wipe and reinitialize it instead of failing. The analyze path opts
  /// in — "a stale cache is a cold cache" — while inspect/prune keep it
  /// off so they can report instead of destroy. Newer-than-this-binary
  /// stores are never touched.
  bool RegenerateStale = false;
  /// Structural payload validator, run ONCE per frame-valid record at
  /// segment scan (open/sync) with the payload bytes and the pool size
  /// visible at that point. Records it rejects are not indexed — exactly
  /// like a CRC mismatch, contained per record. With a validator
  /// installed, lookups may decode through the codec's trusted fast path
  /// (no per-probe validation); EventCounters::SegmentValidates counts
  /// the scan-time runs.
  std::function<bool(std::string_view Payload, uint64_t PoolSize)> Validator;
};

/// Per-segment accounting from Store::inspect.
struct StoreSegmentInfo {
  std::string Name;
  size_t FileBytes = 0;
  size_t Records = 0;        ///< frame-complete records (live + dead)
  size_t LiveRecords = 0;    ///< latest record per key
  size_t LiveBytes = 0;      ///< whole-record bytes of live records
  size_t DeadBytes = 0;      ///< superseded + corrupt + torn-tail bytes
  size_t CorruptRecords = 0; ///< frame-complete but CRC-mismatched
};

/// What Store::inspect learned about a store directory.
struct StoreInfo {
  bool Ok = false;
  std::string Error; ///< why not, when !Ok
  bool Stale = false; ///< recognized store, OLDER format/schema
  bool Newer = false; ///< recognized store written by a NEWER binary
  unsigned FormatVersion = 0;
  unsigned SchemaVersion = 0;
  uint64_t Generation = 0;
  size_t KeyCount = 0; ///< distinct live keys across segments
  size_t LiveBytes = 0;
  size_t DeadBytes = 0;
  size_t PoolNames = 0; ///< valid name records in the pool file
  size_t PoolBytes = 0; ///< pool file size on disk
  /// Live records per record kind byte. The kind is the payload's leading
  /// tag byte by convention, which encodes both the payload kind and the
  /// producing solver backend (core/SchemeCodec.h: payloadKindName /
  /// payloadBackend), so `cache inspect` can attribute stored artifacts
  /// per backend without decoding a single body.
  std::map<uint8_t, size_t> LiveKindCounts;
  std::vector<StoreSegmentInfo> Segments;
};

/// One violation found by Store::fsck, localized to the exact file and
/// byte offset of the containing record (or header / torn tail), plus
/// the record's key when its frame was readable.
struct StoreFsckViolation {
  std::string File;    ///< file name within the store directory
  uint64_t Offset = 0; ///< byte offset of the violating record/site
  bool HasKey = false; ///< Key holds the containing record's key
  Hash128 Key{};
  std::string Message;
};

/// What Store::fsck found. `Ok` means the directory was readable as a
/// store of the wanted schema and the full scan ran; `clean()` means Ok
/// with zero violations. A store that cannot even be scanned (missing,
/// foreign, stale, or newer) reports !Ok with Error set.
struct StoreFsckReport {
  bool Ok = false;
  std::string Error;  ///< why the scan could not run, when !Ok
  bool Stale = false; ///< recognized store, OLDER format/schema
  bool Newer = false; ///< recognized store written by a NEWER binary
  uint64_t Generation = 0;
  size_t SegmentsScanned = 0;
  size_t RecordsScanned = 0; ///< frame-complete records across segments
  size_t LiveRecords = 0;    ///< LWW-live among the frame-valid records
  size_t PoolNames = 0;      ///< valid name records in the pool file
  std::vector<StoreFsckViolation> Violations;

  bool clean() const { return Ok && Violations.empty(); }
};

/// Outcome of one Store::compact call.
struct StoreCompactResult {
  uint64_t Generation = 0;   ///< the new MANIFEST generation
  size_t LiveRecords = 0;    ///< records carried into the new segment
  size_t LiveBytes = 0;      ///< payload bytes carried over
  size_t DroppedRecords = 0; ///< superseded/corrupt/filtered records folded
  size_t ReclaimedBytes = 0; ///< directory bytes freed (>= reported dead)
};

/// A durable, multi-process, append-only artifact store.
class Store {
public:
  /// Opens (creating or, with RegenerateStale, reinitializing) the store
  /// in \p Dir. Returns nullptr with \p Err set on unreadable, foreign,
  /// or newer-versioned directories.
  static std::unique_ptr<Store> open(const std::string &Dir,
                                     const StoreOptions &Opts,
                                     std::string *Err = nullptr);
  ~Store();
  Store(const Store &) = delete;
  Store &operator=(const Store &) = delete;

  /// A zero-copy view of one stored payload. Holds the store's shared
  /// lock for its lifetime, pinning the segment mapping the view points
  /// into — decode from it, then drop it before taking other locks.
  class PayloadRef {
  public:
    PayloadRef() = default;
    explicit operator bool() const { return Found; }
    std::string_view view() const { return View; }

  private:
    friend class Store;
    std::shared_lock<std::shared_mutex> Lock;
    std::string_view View;
    bool Found = false;
  };

  /// Looks up the live payload for \p K (last writer wins). The view
  /// points into the mapped segment — no payload bytes are copied; when
  /// a segment could not be memory-mapped the fallback read is counted
  /// on EventCounters::StorePayloadCopies.
  PayloadRef lookup(const Hash128 &K) const;

  /// True when the live payload for \p K equals \p Bytes exactly. The
  /// flush path uses this to skip re-appending unchanged entries.
  bool payloadEquals(const Hash128 &K, std::string_view Bytes) const;

  /// Buffers one record for the next flush(). \p Kind is informational
  /// (by convention the payload's leading tag byte).
  void append(const Hash128 &K, std::string_view Payload, uint8_t Kind = 0);

  size_t pendingRecords() const;

  /// Takes the advisory file lock, absorbs any records other processes
  /// appended since our last sync, heals a torn tail, rolls the segment
  /// if oversized, writes the pending records, and updates the in-memory
  /// index. Counted on EventCounters::StoreAppends per record written.
  bool flush(std::string *Err = nullptr);

  /// The write half of a flushWith() call: a scope in which the caller
  /// builds records against the LOCKED, freshly synced store — so pool
  /// id assignment and duplicate checks are race-free across processes.
  class Txn {
  public:
    /// The pool id for \p Name, assigning the next ordinal on first use.
    /// Ids handed out here become durable before any record appended
    /// through this transaction.
    uint32_t poolIdFor(std::string_view Name);
    /// True when the live payload for \p K equals \p Bytes exactly —
    /// checked against the synced view, so a record another process just
    /// published is seen.
    bool payloadEquals(const Hash128 &K, std::string_view Bytes) const;
    /// Buffers one record for this flush.
    void append(const Hash128 &K, std::string_view Payload, uint8_t Kind = 0);

  private:
    friend class Store;
    explicit Txn(Store &S) : S(S) {}
    Store &S;
  };

  /// Locked flush with a build callback: takes the advisory file lock,
  /// syncs, then runs \p Fill(Txn) to stage records (and pool names),
  /// then writes pool additions — fdatasync'd FIRST — followed by the
  /// segment records. If \p Fill returns false or any write fails, pool
  /// ids assigned by this transaction and records it staged are rolled
  /// back. Records append()ed before the call are flushed too.
  bool flushWith(const std::function<bool(Txn &)> &Fill,
                 std::string *Err = nullptr);

  /// Number of names in the (synced) pool. Ids < poolSize() are valid.
  uint64_t poolSize() const;

  /// Streams pool names with id >= \p From, in id order, under the
  /// store's shared lock. The summary cache batch-extends its pool ->
  /// SymbolTable translation table with this. Do not call with a
  /// PayloadRef alive (both take the same shared mutex).
  void forEachPoolNameFrom(
      uint64_t From,
      const std::function<void(uint64_t Id, std::string_view Name)> &Fn) const;

  /// Bumped whenever a reload replaces pool contents with something that
  /// is NOT a pure extension of what we had (compaction by another
  /// process, wholesale reload). Translation tables built against an
  /// older epoch must be discarded; tables from the same epoch are valid
  /// prefixes and only need extending.
  uint64_t poolEpoch() const;

  /// True when a Validator is installed (every indexed record passed it).
  bool validatesPayloads() const { return static_cast<bool>(Opts.Validator); }

  /// Re-reads MANIFEST and the active segment tail to pick up work other
  /// processes published. Lock-free on disk (readers never block).
  bool refresh(std::string *Err = nullptr);

  /// Folds the live record per key into a fresh segment under generation
  /// + 1, then deletes superseded segments and any orphans of a killed
  /// earlier compaction. Flushes pending appends first. The overload
  /// with \p Keep additionally drops live keys the predicate rejects
  /// (the prune path). Counted on EventCounters::StoreCompactions.
  std::optional<StoreCompactResult> compact(std::string *Err = nullptr);
  std::optional<StoreCompactResult>
  compact(const std::function<bool(const Hash128 &, size_t PayloadBytes)>
              &Keep,
          std::string *Err = nullptr);

  uint64_t generation() const;
  size_t keyCount() const;
  /// Whole-record bytes of live records (the mapped working set).
  size_t liveBytes() const;
  /// (key, payload bytes) of every live record, unordered — the prune
  /// path sizes its victims with this before compacting with a filter.
  std::vector<std::pair<Hash128, size_t>> liveEntries() const;
  const std::string &dir() const { return Dir; }

  /// Reads a store directory's MANIFEST and segments without opening (or
  /// creating, or healing) anything. Stale/newer stores set the matching
  /// flag and an actionable Error.
  static StoreInfo inspect(const std::string &Dir,
                           unsigned SchemaVersion = 0);

  /// Offline fsck over a store directory — the auditor behind
  /// `retypd-cli cache verify`. Opens nothing, heals nothing, writes
  /// nothing; every finding is localized to file + offset (+ record key
  /// where the frame was readable):
  ///
  ///  - MANIFEST cross-references: every named segment/pool file exists
  ///    and carries a well-formed header of the manifest's schema;
  ///    unreferenced `*.rseg`/`*.rpool` files are reported as orphans.
  ///  - Per record: CRC32C over the whole frame, the kind-byte/payload
  ///    tag convention, and (when \p ValidatePayload is supplied — pass
  ///    the owning cache's structural validator) payload validation
  ///    against the pool size, which covers pool-id referential
  ///    integrity. Torn tails are reported at their exact offset.
  ///  - The pool file: per-name CRC walk distinguishing a corrupt record
  ///    (every later pool id is invalidated) from a torn tail.
  ///  - LWW liveness: fsck's own last-writer-wins accounting is
  ///    reconciled against inspect() — key count, per-segment live
  ///    records, live/dead bytes must agree.
  static StoreFsckReport
  fsck(const std::string &Dir, unsigned SchemaVersion = 0,
       const std::function<bool(std::string_view Payload, uint64_t PoolSize)>
           &ValidatePayload = {});

  /// True when \p Path is a directory that looks like (any version of) a
  /// store — used by the CLI to route `cache` verbs.
  static bool looksLikeStoreDir(const std::string &Path);

  /// True when \p Path is absent or an empty directory (a leftover LOCK
  /// file is tolerated) — the state a `--store` path is in before the
  /// first analyze. The CLI reports such directories as a clean empty
  /// store instead of an error, and must NOT initialize them: a read
  /// verb against a mistyped path should leave no files behind.
  static bool isUninitializedDir(const std::string &Path);

private:
  struct Segment;
  struct Loc {
    uint32_t Seg = 0;
    uint64_t BodyOff = 0;
    uint32_t BodyLen = 0;
  };

  Store(std::string Dir, StoreOptions Opts);
  bool initializeLocked(std::string *Err);
  bool loadViewLocked(std::string *Err);
  bool syncLocked(std::string *Err);
  bool scanSegmentTail(size_t SegIdx, std::string *Err);
  bool remapSegment(Segment &S, std::string *Err);
  bool loadPoolLocked(const std::string &Name, std::string *Err);
  bool flushLocked(const std::function<bool(Txn &)> *Fill, std::string *Err);
  bool writePoolAdditionsLocked(size_t FromId, std::string *Err);
  bool writePendingLocked(std::string *Err);
  bool payloadEqualsLocked(const Hash128 &K, std::string_view Bytes) const;
  uint32_t poolIdForLocked(std::string_view Name);
  void appendLocked(const Hash128 &K, std::string_view Payload, uint8_t Kind);
  std::optional<StoreCompactResult>
  compactImpl(const std::function<bool(const Hash128 &, size_t)> *Keep,
              std::string *Err);

  std::string Dir;
  StoreOptions Opts;

  mutable std::shared_mutex M;
  uint64_t Generation = 0;
  std::vector<Segment> Segments;
  std::unordered_map<Hash128, Loc, Hash128Hasher> Index;
  bool ReadOnly = false;

  /// The name pool, mirrored from the pool file. PoolNames[id] holds the
  /// bytes; PoolIds is the reverse map (owning keys — PoolNames entries
  /// can move when the vector grows, so views into them are not stable).
  std::vector<std::string> PoolNames;
  std::unordered_map<std::string, uint32_t> PoolIds;
  std::string PoolName;     ///< pool file name from MANIFEST ("" = none)
  size_t PoolValidEnd = 0;  ///< byte offset scanned so far in pool file
  uint64_t PoolEpoch = 0;   ///< bumped on non-extension reloads
  size_t PoolSynced = 0;    ///< names that exist durably in the file

  std::string PendingBytes; ///< serialized records awaiting flush
  struct PendingRec {
    Hash128 Key;
    size_t BodyOff = 0; ///< into PendingBytes
    uint32_t BodyLen = 0;
  };
  std::vector<PendingRec> Pending;
};

} // namespace retypd

#endif // RETYPD_STORE_STORE_H
