//===- Crc32c.h - CRC32C (Castagnoli) checksum ----------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software CRC32C (the Castagnoli polynomial 0x1EDC6F41, reflected
/// 0x82F63B78) over byte ranges. The artifact store (store/Store.h) stamps
/// every journal record with it so torn writes and bit flips are detected
/// per record instead of corrupting a whole segment. Table-driven, one
/// byte at a time: record bodies are small (hundreds of bytes to a few
/// KiB) and the open-time scan is I/O bound, so a slicing/SSE4.2 variant
/// would not move any benchmark here.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_CRC32C_H
#define RETYPD_SUPPORT_CRC32C_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace retypd {

namespace detail {

/// The 256-entry lookup table for the reflected Castagnoli polynomial,
/// computed once per process.
inline const std::array<uint32_t, 256> &crc32cTable() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? (0x82f63b78u ^ (C >> 1)) : (C >> 1);
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

} // namespace detail

/// Streaming CRC32C: feed byte ranges, read the final value. The store
/// streams a record's kind byte, key, and body through one instance so
/// the checksum covers the whole record, not just its payload.
class Crc32c {
public:
  void update(const void *Data, size_t Bytes) {
    const auto &T = detail::crc32cTable();
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    uint32_t C = State;
    for (size_t I = 0; I < Bytes; ++I)
      C = T[(C ^ P[I]) & 0xff] ^ (C >> 8);
    State = C;
  }
  void update(std::string_view S) { update(S.data(), S.size()); }
  void updateByte(unsigned char B) { update(&B, 1); }

  /// The finalized (inverted) checksum of everything fed so far.
  uint32_t value() const { return State ^ 0xffffffffu; }

private:
  uint32_t State = 0xffffffffu;
};

/// One-shot convenience over a single byte range.
inline uint32_t crc32c(std::string_view S) {
  Crc32c C;
  C.update(S);
  return C.value();
}

} // namespace retypd

#endif // RETYPD_SUPPORT_CRC32C_H
