//===- Endian.h - Alignment-safe little-endian accessors ------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// memcpy-based little-endian loads and stores. The binary data plane reads
/// fixed-layout records directly out of memory-mapped store segments, where
/// a u32/u64 field can sit at ANY byte offset — a `reinterpret_cast` load
/// there is undefined behavior (misaligned access) even on architectures
/// that happen to tolerate it. memcpy through these helpers compiles to the
/// same single load instruction on every target we care about, and is what
/// the UBSan (alignment) CI job certifies.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_ENDIAN_H
#define RETYPD_SUPPORT_ENDIAN_H

#include <cstdint>
#include <cstring>
#include <string>

namespace retypd {

inline uint16_t loadLE16(const void *P) {
  unsigned char B[2];
  std::memcpy(B, P, 2);
  return static_cast<uint16_t>(B[0]) | static_cast<uint16_t>(B[1]) << 8;
}

inline uint32_t loadLE32(const void *P) {
  unsigned char B[4];
  std::memcpy(B, P, 4);
  return static_cast<uint32_t>(B[0]) | static_cast<uint32_t>(B[1]) << 8 |
         static_cast<uint32_t>(B[2]) << 16 | static_cast<uint32_t>(B[3]) << 24;
}

inline uint64_t loadLE64(const void *P) {
  unsigned char B[8];
  std::memcpy(B, P, 8);
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = V << 8 | B[I];
  return V;
}

inline void storeLE16(void *P, uint16_t V) {
  unsigned char B[2] = {static_cast<unsigned char>(V),
                        static_cast<unsigned char>(V >> 8)};
  std::memcpy(P, B, 2);
}

inline void storeLE32(void *P, uint32_t V) {
  unsigned char B[4] = {static_cast<unsigned char>(V),
                        static_cast<unsigned char>(V >> 8),
                        static_cast<unsigned char>(V >> 16),
                        static_cast<unsigned char>(V >> 24)};
  std::memcpy(P, B, 4);
}

inline void storeLE64(void *P, uint64_t V) {
  unsigned char B[8];
  for (int I = 0; I < 8; ++I)
    B[I] = static_cast<unsigned char>(V >> (8 * I));
  std::memcpy(P, B, 8);
}

/// Appends a little-endian u32 to a byte string.
inline void appendLE32(std::string &Out, uint32_t V) {
  char B[4];
  storeLE32(B, V);
  Out.append(B, 4);
}

/// Appends a little-endian u64 to a byte string.
inline void appendLE64(std::string &Out, uint64_t V) {
  char B[8];
  storeLE64(B, V);
  Out.append(B, 8);
}

} // namespace retypd

#endif // RETYPD_SUPPORT_ENDIAN_H
