//===- Hash128.h - 128-bit streaming content hash -------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 128-bit FNV-1a streaming hash: two independent 64-bit lanes with
/// distinct offset bases. Not cryptographic — consumers (the summary
/// cache's content keys, the session's scheme-change cutoff) only need
/// collision resistance against accidental clashes, and 2^64+ long odds
/// per lane pair are far beyond corpus sizes.
///
/// The hash is a pure function of the byte stream fed to it, so values are
/// stable across processes and across symbol tables — hash *names*, never
/// symbol ids.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_HASH128_H
#define RETYPD_SUPPORT_HASH128_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace retypd {

/// A 128-bit content hash value.
struct Hash128 {
  uint64_t Hi = 0, Lo = 0;

  friend bool operator==(const Hash128 &A, const Hash128 &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }
  friend bool operator!=(const Hash128 &A, const Hash128 &B) {
    return !(A == B);
  }
  friend bool operator<(const Hash128 &A, const Hash128 &B) {
    if (A.Hi != B.Hi)
      return A.Hi < B.Hi;
    return A.Lo < B.Lo;
  }

  std::string hex() const {
    char Buf[33];
    std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                  static_cast<unsigned long long>(Hi),
                  static_cast<unsigned long long>(Lo));
    return Buf;
  }
};

struct Hash128Hasher {
  size_t operator()(const Hash128 &H) const noexcept {
    return static_cast<size_t>(H.Hi ^ (H.Lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Streaming 128-bit FNV-1a.
class Fnv128 {
public:
  void update(std::string_view S) {
    for (unsigned char C : S)
      step(C);
  }
  void update(const void *Data, size_t Bytes) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Bytes; ++I)
      step(P[I]);
  }
  /// Hashes a little-endian encoding of \p V (stable across hosts).
  void updateU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      step(static_cast<unsigned char>(V >> (8 * I)));
  }
  void updateByte(unsigned char C) { step(C); }
  /// A domain separator between variable-length fields.
  void sep() { step(0x1f); }

  Hash128 digest() const { return {Hi, Lo}; }

private:
  void step(unsigned char C) {
    // Genuinely different odd multipliers per lane (the Hi lane is the
    // standard 64-bit FNV prime; the Lo lane uses the odd golden-ratio
    // constant), so the lanes are independent and the pair's collision
    // resistance approaches the full 128 bits.
    Hi = (Hi ^ C) * 0x100000001b3ull;
    Lo = (Lo ^ C) * 0x9e3779b97f4a7c15ull;
  }

  uint64_t Hi = 0xcbf29ce484222325ull;
  uint64_t Lo = 0x84222325cbf29ce4ull;
};

/// One-shot convenience: the hash of a single byte string.
inline Hash128 hashBytes(std::string_view S) {
  Fnv128 H;
  H.update(S);
  return H.digest();
}

} // namespace retypd

#endif // RETYPD_SUPPORT_HASH128_H
