//===- Interner.h - Arena-backed uniquing of DTV components ---*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arena-backed interners for the saturation hot loop. A DerivedTypeVariable
/// is a base variable plus a heap-allocated word of labels; comparing or
/// hashing one is O(word length). The constraint graph visits the same
/// handful of DTVs millions of times during saturation, so it uniques each
/// (base, word) pair once and thereafter compares dense 32-bit ids.
///
/// The interners are deliberately NOT thread safe: each ConstraintGraph owns
/// its own instances and graphs are never shared across pipeline tasks.
/// Interned ids are dense and assigned in first-seen order, so any
/// computation driven by them is deterministic given the input order.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_INTERNER_H
#define RETYPD_SUPPORT_INTERNER_H

#include "core/DerivedTypeVariable.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace retypd {

/// Chunked bump allocator. Never frees individual objects; everything dies
/// with the arena. Suitable for trivially-destructible payloads only.
class BumpArena {
public:
  explicit BumpArena(size_t ChunkBytes = 64 * 1024)
      : DefaultChunkBytes(ChunkBytes) {}

  /// Allocates \p Bytes with \p Align alignment.
  void *allocate(size_t Bytes, size_t Align) {
    size_t Offset = (Used + Align - 1) & ~(Align - 1);
    if (Chunks.empty() || Offset + Bytes > CurrentChunkBytes) {
      CurrentChunkBytes = std::max(DefaultChunkBytes, Bytes + Align);
      Chunks.push_back(std::make_unique<char[]>(CurrentChunkBytes));
      uintptr_t P = reinterpret_cast<uintptr_t>(Chunks.back().get());
      Offset = ((P + Align - 1) & ~(Align - 1)) - P;
    }
    void *Ptr = Chunks.back().get() + Offset;
    Used = Offset + Bytes;
    return Ptr;
  }

  /// Copies \p Items into the arena and returns a stable span.
  template <typename T> std::span<const T> copy(std::span<const T> Items) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    if (Items.empty())
      return {};
    T *Mem = static_cast<T *>(allocate(Items.size() * sizeof(T), alignof(T)));
    std::copy(Items.begin(), Items.end(), Mem);
    return {Mem, Items.size()};
  }

private:
  size_t DefaultChunkBytes;
  size_t CurrentChunkBytes = 0;
  size_t Used = 0;
  std::vector<std::unique_ptr<char[]>> Chunks;
};

/// Dense id of an interned label word.
using WordId = uint32_t;

/// Uniques label words (the w of αw). Id 0 is always the empty word.
class WordInterner {
public:
  static constexpr WordId NoWord = 0xffffffffu;

  WordInterner() { Words.push_back({}); }

  WordId intern(std::span<const Label> W) {
    if (W.empty())
      return 0;
    auto &Bucket = Buckets[hashWord(W)];
    for (WordId Id : Bucket)
      if (equals(Words[Id], W))
        return Id;
    WordId Id = static_cast<WordId>(Words.size());
    Words.push_back(Arena.copy(W));
    Bucket.push_back(Id);
    return Id;
  }

  /// Lookup without interning; NoWord when the word was never seen.
  WordId find(std::span<const Label> W) const {
    if (W.empty())
      return 0;
    auto It = Buckets.find(hashWord(W));
    if (It == Buckets.end())
      return NoWord;
    for (WordId Id : It->second)
      if (equals(Words[Id], W))
        return Id;
    return NoWord;
  }

  std::span<const Label> word(WordId Id) const { return Words[Id]; }
  size_t size() const { return Words.size(); }

private:
  static size_t hashWord(std::span<const Label> W) {
    size_t H = 0xcbf29ce484222325ull;
    for (Label L : W)
      H = (H ^ std::hash<Label>()(L)) * 0x100000001b3ull;
    return H;
  }
  static bool equals(std::span<const Label> A, std::span<const Label> B) {
    return A.size() == B.size() && std::equal(A.begin(), A.end(), B.begin());
  }

  BumpArena Arena;
  std::vector<std::span<const Label>> Words;
  std::unordered_map<size_t, std::vector<WordId>> Buckets;
};

/// Dense id of an interned derived type variable.
using DtvId = uint32_t;

/// Uniques whole derived type variables as (base, word-id) pairs. After
/// interning, equality and hashing of DTVs are single integer compares.
class DtvInterner {
public:
  static constexpr DtvId NoDtv = 0xffffffffu;

  DtvId intern(const DerivedTypeVariable &Dtv) {
    uint64_t Key = makeKey(Dtv.base(), Words.intern(Dtv.labels()));
    auto [It, Inserted] = Ids.try_emplace(Key, 0);
    if (Inserted) {
      It->second = static_cast<DtvId>(Keys.size());
      Keys.push_back(Key);
    }
    return It->second;
  }

  /// Lookup without interning; NoDtv when the DTV was never seen.
  DtvId find(const DerivedTypeVariable &Dtv) const {
    WordId W = Words.find(Dtv.labels());
    if (W == WordInterner::NoWord)
      return NoDtv;
    auto It = Ids.find(makeKey(Dtv.base(), W));
    return It == Ids.end() ? NoDtv : It->second;
  }

  TypeVariable base(DtvId Id) const {
    return TypeVariable::fromRaw(static_cast<uint32_t>(Keys[Id] >> 32));
  }
  std::span<const Label> labels(DtvId Id) const {
    return Words.word(static_cast<WordId>(Keys[Id]));
  }
  DerivedTypeVariable dtv(DtvId Id) const {
    auto W = labels(Id);
    return DerivedTypeVariable(base(Id),
                               std::vector<Label>(W.begin(), W.end()));
  }

  size_t size() const { return Keys.size(); }

private:
  static uint64_t makeKey(TypeVariable Base, WordId W) {
    return (static_cast<uint64_t>(Base.raw()) << 32) | W;
  }

  WordInterner Words;
  std::vector<uint64_t> Keys;
  std::unordered_map<uint64_t, DtvId> Ids;
};

} // namespace retypd

#endif // RETYPD_SUPPORT_INTERNER_H
