//===- Stats.cpp - Lightweight statistics & memory counters --------------===//

#include "support/Stats.h"

#include <map>
#include <mutex>

using namespace retypd;

std::atomic<uint64_t> MemStats::LiveBytes{0};
std::atomic<uint64_t> MemStats::PeakBytes{0};
std::atomic<uint64_t> MemStats::TotalAllocs{0};

void MemStats::resetPeak() {
  PeakBytes.store(LiveBytes.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

void MemStats::noteAlloc(size_t Size) {
  TotalAllocs.fetch_add(1, std::memory_order_relaxed);
  uint64_t Live = LiveBytes.fetch_add(Size, std::memory_order_relaxed) + Size;
  uint64_t Peak = PeakBytes.load(std::memory_order_relaxed);
  while (Live > Peak &&
         !PeakBytes.compare_exchange_weak(Peak, Live,
                                          std::memory_order_relaxed)) {
  }
}

void MemStats::noteFree(size_t Size) {
  LiveBytes.fetch_sub(Size, std::memory_order_relaxed);
}

std::atomic<uint64_t> EventCounters::ConstraintParseCalls{0};
std::atomic<uint64_t> EventCounters::SchemeDecodes{0};
std::atomic<uint64_t> EventCounters::SchemeEncodes{0};
std::atomic<uint64_t> EventCounters::GenCacheHits{0};
std::atomic<uint64_t> EventCounters::GenCacheMisses{0};
std::atomic<uint64_t> EventCounters::StoreHits{0};
std::atomic<uint64_t> EventCounters::StoreAppends{0};
std::atomic<uint64_t> EventCounters::StoreCompactions{0};
std::atomic<uint64_t> EventCounters::StorePayloadCopies{0};
std::atomic<uint64_t> EventCounters::SegmentValidates{0};
std::atomic<uint64_t> EventCounters::PoolBinds{0};
std::atomic<uint64_t> EventCounters::PoolBindHits{0};
std::atomic<uint64_t> EventCounters::VerifierChecks{0};
std::atomic<uint64_t> EventCounters::TraceEvents{0};

void EventCounters::reset() {
  ConstraintParseCalls.store(0, std::memory_order_relaxed);
  SchemeDecodes.store(0, std::memory_order_relaxed);
  SchemeEncodes.store(0, std::memory_order_relaxed);
  GenCacheHits.store(0, std::memory_order_relaxed);
  GenCacheMisses.store(0, std::memory_order_relaxed);
  StoreHits.store(0, std::memory_order_relaxed);
  StoreAppends.store(0, std::memory_order_relaxed);
  StoreCompactions.store(0, std::memory_order_relaxed);
  StorePayloadCopies.store(0, std::memory_order_relaxed);
  SegmentValidates.store(0, std::memory_order_relaxed);
  PoolBinds.store(0, std::memory_order_relaxed);
  PoolBindHits.store(0, std::memory_order_relaxed);
  VerifierChecks.store(0, std::memory_order_relaxed);
  TraceEvents.store(0, std::memory_order_relaxed);
}

CounterSnapshot CounterSnapshot::take() {
  CounterSnapshot S;
  S.ConstraintParseCalls =
      EventCounters::ConstraintParseCalls.load(std::memory_order_relaxed);
  S.SchemeDecodes =
      EventCounters::SchemeDecodes.load(std::memory_order_relaxed);
  S.SchemeEncodes =
      EventCounters::SchemeEncodes.load(std::memory_order_relaxed);
  S.GenCacheHits = EventCounters::GenCacheHits.load(std::memory_order_relaxed);
  S.GenCacheMisses =
      EventCounters::GenCacheMisses.load(std::memory_order_relaxed);
  S.StoreHits = EventCounters::StoreHits.load(std::memory_order_relaxed);
  S.StoreAppends = EventCounters::StoreAppends.load(std::memory_order_relaxed);
  S.StoreCompactions =
      EventCounters::StoreCompactions.load(std::memory_order_relaxed);
  S.StorePayloadCopies =
      EventCounters::StorePayloadCopies.load(std::memory_order_relaxed);
  S.SegmentValidates =
      EventCounters::SegmentValidates.load(std::memory_order_relaxed);
  S.PoolBinds = EventCounters::PoolBinds.load(std::memory_order_relaxed);
  S.PoolBindHits = EventCounters::PoolBindHits.load(std::memory_order_relaxed);
  S.VerifierChecks =
      EventCounters::VerifierChecks.load(std::memory_order_relaxed);
  S.TraceEvents = EventCounters::TraceEvents.load(std::memory_order_relaxed);
  return S;
}

CounterSnapshot CounterSnapshot::delta() const {
  CounterSnapshot Now = take();
  CounterSnapshot D;
  D.ConstraintParseCalls = Now.ConstraintParseCalls - ConstraintParseCalls;
  D.SchemeDecodes = Now.SchemeDecodes - SchemeDecodes;
  D.SchemeEncodes = Now.SchemeEncodes - SchemeEncodes;
  D.GenCacheHits = Now.GenCacheHits - GenCacheHits;
  D.GenCacheMisses = Now.GenCacheMisses - GenCacheMisses;
  D.StoreHits = Now.StoreHits - StoreHits;
  D.StoreAppends = Now.StoreAppends - StoreAppends;
  D.StoreCompactions = Now.StoreCompactions - StoreCompactions;
  D.StorePayloadCopies = Now.StorePayloadCopies - StorePayloadCopies;
  D.SegmentValidates = Now.SegmentValidates - SegmentValidates;
  D.PoolBinds = Now.PoolBinds - PoolBinds;
  D.PoolBindHits = Now.PoolBindHits - PoolBindHits;
  D.VerifierChecks = Now.VerifierChecks - VerifierChecks;
  D.TraceEvents = Now.TraceEvents - TraceEvents;
  return D;
}

namespace {

struct PhaseRegistry {
  std::mutex Mutex;
  std::map<std::string, double> Seconds;

  static PhaseRegistry &get() {
    static PhaseRegistry R;
    return R;
  }
};

} // namespace

void PhaseTimes::add(const char *Phase, double Seconds) {
  PhaseRegistry &R = PhaseRegistry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Seconds[Phase] += Seconds;
}

std::vector<std::pair<std::string, double>> PhaseTimes::snapshot() {
  PhaseRegistry &R = PhaseRegistry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  return {R.Seconds.begin(), R.Seconds.end()};
}

void PhaseTimes::reset() {
  PhaseRegistry &R = PhaseRegistry::get();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Seconds.clear();
}
