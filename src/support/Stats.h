//===- Stats.h - Lightweight statistics & memory counters -----*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide counters used by the scaling benchmarks (Figures 11 and 12).
/// The memory counters are driven by operator new/delete hooks that are only
/// linked into benchmark binaries (bench/MemHooks.cpp); in ordinary builds
/// the counters stay at zero.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_STATS_H
#define RETYPD_SUPPORT_STATS_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace retypd {

/// Global allocation counters. Updated by the benchmark-only operator
/// new/delete hooks; read by the Figure 12 harness.
struct MemStats {
  static std::atomic<uint64_t> LiveBytes;
  static std::atomic<uint64_t> PeakBytes;
  static std::atomic<uint64_t> TotalAllocs;

  /// Resets the peak to the current live size. Call before a measured phase.
  static void resetPeak();

  /// Records an allocation of \p Size bytes.
  static void noteAlloc(size_t Size);

  /// Records a deallocation of \p Size bytes.
  static void noteFree(size_t Size);
};

} // namespace retypd

#endif // RETYPD_SUPPORT_STATS_H
