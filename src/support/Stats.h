//===- Stats.h - Lightweight statistics & memory counters -----*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide counters used by the scaling benchmarks (Figures 11 and 12).
/// The memory counters are driven by operator new/delete hooks that are only
/// linked into benchmark binaries (bench/MemHooks.cpp); in ordinary builds
/// the counters stay at zero.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_STATS_H
#define RETYPD_SUPPORT_STATS_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace retypd {

/// Global allocation counters. Updated by the benchmark-only operator
/// new/delete hooks; read by the Figure 12 harness.
struct MemStats {
  static std::atomic<uint64_t> LiveBytes;
  static std::atomic<uint64_t> PeakBytes;
  static std::atomic<uint64_t> TotalAllocs;

  /// Resets the peak to the current live size. Call before a measured phase.
  static void resetPeak();

  /// Records an allocation of \p Size bytes.
  static void noteAlloc(size_t Size);

  /// Records a deallocation of \p Size bytes.
  static void noteFree(size_t Size);
};

/// Process-wide event counters for data-plane invariants and benchmarks.
/// The headline one is ConstraintParseCalls: warm-cache analysis runs must
/// perform ZERO ConstraintParser invocations (schemes replay through the
/// binary codec of core/SchemeCodec.h), and tests assert it by
/// snapshotting this counter around the warm run.
struct EventCounters {
  static std::atomic<uint64_t> ConstraintParseCalls;
  static std::atomic<uint64_t> SchemeDecodes; ///< binary payload decodes
  static std::atomic<uint64_t> SchemeEncodes; ///< binary payload encodes
  /// Generation-result cache probes (SummaryCache::lookupGen). A fully
  /// warm run must show zero misses and nonzero hits — bench_warmpath and
  /// the gen-cache tests assert it.
  static std::atomic<uint64_t> GenCacheHits;
  static std::atomic<uint64_t> GenCacheMisses;

  /// Artifact-store (store/Store.h) counters. StoreHits are cache probes
  /// served from the on-disk store; StoreAppends/StoreCompactions are the
  /// write side. StorePayloadCopies counts store lookups that could NOT
  /// be served zero-copy out of a memory-mapped segment (the pread
  /// fallback for filesystems without mmap) — it must stay ZERO on the
  /// mmap read path, and bench_store plus the store tests assert it.
  static std::atomic<uint64_t> StoreHits;
  static std::atomic<uint64_t> StoreAppends;
  static std::atomic<uint64_t> StoreCompactions;
  static std::atomic<uint64_t> StorePayloadCopies;
  /// Store records validated structurally at segment-open (scan time).
  /// With open-time validation in place, per-lookup decodes run the
  /// trusted fast path — so this counter plus SchemeDecodes together
  /// prove validation happened exactly once per record, not per probe.
  static std::atomic<uint64_t> SegmentValidates;
  /// Name-pool binding counters. PoolBinds counts pool names translated
  /// to SymbolTable ids (batch interning at first use per store
  /// generation); PoolBindHits counts store probes whose payload resolved
  /// every name through the translation table — i.e. with zero string
  /// hashing. A warm run must show nonzero PoolBindHits.
  static std::atomic<uint64_t> PoolBinds;
  static std::atomic<uint64_t> PoolBindHits;
  /// Top-level objects checked by the formation-rule verifier
  /// (core/Verifier.h). With --verify=off this must stay ZERO — the
  /// verifier adds no work to the hot path — and bench_warmpath asserts
  /// it.
  static std::atomic<uint64_t> VerifierChecks;
  /// Events recorded by the structured tracer (support/Trace.h). With
  /// tracing off this must stay ZERO — same zero-cost-off contract as
  /// VerifierChecks — and bench_warmpath asserts it.
  static std::atomic<uint64_t> TraceEvents;

  /// Zeroes every counter. Call between measured runs.
  static void reset();
};

/// Point-in-time copy of every EventCounters value. Replaces the ad-hoc
/// `uint64_t StoreHits0 = EventCounters::StoreHits.load(...)` before/after
/// pairs: take() one snapshot before a measured region, then delta() against
/// the live counters afterwards.
struct CounterSnapshot {
  uint64_t ConstraintParseCalls = 0;
  uint64_t SchemeDecodes = 0;
  uint64_t SchemeEncodes = 0;
  uint64_t GenCacheHits = 0;
  uint64_t GenCacheMisses = 0;
  uint64_t StoreHits = 0;
  uint64_t StoreAppends = 0;
  uint64_t StoreCompactions = 0;
  uint64_t StorePayloadCopies = 0;
  uint64_t SegmentValidates = 0;
  uint64_t PoolBinds = 0;
  uint64_t PoolBindHits = 0;
  uint64_t VerifierChecks = 0;
  uint64_t TraceEvents = 0;

  /// Copies the current EventCounters values (relaxed loads).
  static CounterSnapshot take();

  /// Member-wise (current counters) - (this snapshot). Call on the
  /// snapshot taken BEFORE the measured region.
  CounterSnapshot delta() const;
};

/// Process-wide named wall-clock accumulators for pipeline stages. Worker
/// threads add to the same counter concurrently, so a stage's total can
/// exceed the elapsed wall time — that surplus IS the parallelism, and the
/// scaling benchmarks report it as such.
class PhaseTimes {
public:
  /// Accumulates \p Seconds onto the named phase counter (creating it on
  /// first use). Thread safe.
  static void add(const char *Phase, double Seconds);

  /// Snapshot of (phase, accumulated seconds). CONTRACT: the result is
  /// sorted ascending by phase name (the registry is an ordered map), so
  /// consumers must NOT re-sort it — tests/support/StatsTest.cpp pins
  /// this.
  static std::vector<std::pair<std::string, double>> snapshot();

  /// Zeroes every counter. Call between measured runs.
  static void reset();
};

/// RAII helper: accumulates its lifetime onto a PhaseTimes counter.
class ScopedPhaseTimer {
public:
  explicit ScopedPhaseTimer(const char *Phase)
      : Phase(Phase), Start(std::chrono::steady_clock::now()) {}
  ~ScopedPhaseTimer() {
    PhaseTimes::add(
        Phase, std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count());
  }
  ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
  ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

private:
  const char *Phase;
  std::chrono::steady_clock::time_point Start;
};

} // namespace retypd

#endif // RETYPD_SUPPORT_STATS_H
