//===- SymbolTable.h - String interning -----------------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings to dense 32-bit ids. Type variables, register names, and
/// procedure names are all represented as interned symbols so the solver can
/// use them as array indices and cheap hash keys.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_SYMBOLTABLE_H
#define RETYPD_SUPPORT_SYMBOLTABLE_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace retypd {

/// A dense id for an interned string. Ids are only meaningful relative to the
/// SymbolTable that produced them.
using SymbolId = uint32_t;

/// Bidirectional map between strings and dense SymbolIds.
///
/// Thread safe: the parallel solving pipeline interns fresh existential
/// names from worker threads while other workers render constraint sets.
/// Names live in a deque so the reference returned by name() stays valid
/// across later interns.
class SymbolTable {
public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable &Other) {
    std::lock_guard<std::mutex> Lock(Other.Mutex);
    Names = Other.Names;
    Ids = Other.Ids;
  }
  SymbolTable &operator=(const SymbolTable &) = delete;

  /// Returns the id for \p S, interning it on first use.
  SymbolId intern(std::string_view S) {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Ids.find(std::string(S));
    if (It != Ids.end())
      return It->second;
    SymbolId Id = static_cast<SymbolId>(Names.size());
    Names.emplace_back(S);
    Ids.emplace(Names.back(), Id);
    return Id;
  }

  /// Returns the string for a previously interned id. The reference is
  /// stable: concurrent interning never moves existing entries.
  const std::string &name(SymbolId Id) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(Id < Names.size() && "symbol id out of range");
    return Names[Id];
  }

  /// Returns the id for \p S if it was interned before, without interning.
  bool lookup(std::string_view S, SymbolId &Out) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Ids.find(std::string(S));
    if (It == Ids.end())
      return false;
    Out = It->second;
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Names.size();
  }

private:
  std::deque<std::string> Names;
  std::unordered_map<std::string, SymbolId> Ids;
  mutable std::mutex Mutex;
};

} // namespace retypd

#endif // RETYPD_SUPPORT_SYMBOLTABLE_H
