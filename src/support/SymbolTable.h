//===- SymbolTable.h - String interning -----------------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings to dense 32-bit ids. Type variables, register names, and
/// procedure names are all represented as interned symbols so the solver can
/// use them as array indices and cheap hash keys.
///
/// Concurrency design (the warm path reads names far more often than it
/// interns new ones):
///
///  - name(id) is LOCK-FREE: names live in fixed-size chunks that are
///    published once with an atomic release store and never move or mutate
///    afterwards, so readers need one acquire load and no mutex. This is
///    the hot lookup path of cache decoding, structural hashing, and
///    canonical sorting on every worker thread.
///  - The string->id index is SHARDED: 16 shards keyed by a hash of the
///    string, each guarded by its own shared_mutex. intern() takes a shared
///    lock for the (overwhelmingly common) already-interned probe and
///    upgrades to an exclusive lock only to insert; lookup() only ever takes
///    a shared lock. Workers interning fresh existential names in different
///    shards do not contend at all.
///
/// Ids are allocated from one atomic counter, so they stay dense across
/// shards. A slot's string is fully constructed before its id escapes
/// (either via the intern() return value or via a shard map protected by
/// that shard's mutex), which is what makes the unlocked name() read safe.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_SYMBOLTABLE_H
#define RETYPD_SUPPORT_SYMBOLTABLE_H

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace retypd {

/// A dense id for an interned string. Ids are only meaningful relative to the
/// SymbolTable that produced them.
using SymbolId = uint32_t;

/// Bidirectional map between strings and dense SymbolIds.
///
/// Thread safe: the parallel solving pipeline interns fresh existential
/// names from worker threads while other workers resolve names for
/// structural hashing and cache decoding. The reference returned by name()
/// is stable: chunks are append-only and never reallocate.
class SymbolTable {
public:
  SymbolTable() : Chunks(new std::atomic<Chunk *>[kMaxChunks]) {
    for (size_t I = 0; I < kMaxChunks; ++I)
      Chunks[I].store(nullptr, std::memory_order_relaxed);
  }

  SymbolTable(const SymbolTable &Other) : SymbolTable() {
    // Snapshot under all of Other's shard locks (fixed order): no intern
    // can be mid-flight between id allocation and slot publication while
    // every shard is held, so Count is consistent with the slots.
    std::array<std::shared_lock<std::shared_mutex>, kNumShards> Locks;
    for (unsigned I = 0; I < kNumShards; ++I)
      Locks[I] = std::shared_lock(Other.Shards[I].M);
    uint32_t N = Other.Count.load(std::memory_order_acquire);
    for (uint32_t Id = 0; Id < N; ++Id) {
      SymbolId Mine = intern(Other.name(Id));
      (void)Mine;
      assert(Mine == Id && "copy must preserve dense id order");
    }
  }
  SymbolTable &operator=(const SymbolTable &) = delete;

  ~SymbolTable() {
    for (size_t I = 0; I < kMaxChunks; ++I)
      delete Chunks[I].load(std::memory_order_relaxed);
  }

  /// Returns the id for \p S, interning it on first use.
  SymbolId intern(std::string_view S) {
    Shard &Sh = shardFor(S);
    {
      std::shared_lock<std::shared_mutex> Lock(Sh.M);
      auto It = Sh.Ids.find(S);
      if (It != Sh.Ids.end())
        return It->second;
    }
    std::unique_lock<std::shared_mutex> Lock(Sh.M);
    auto It = Sh.Ids.find(S);
    if (It != Sh.Ids.end())
      return It->second;
    SymbolId Id = Count.fetch_add(1, std::memory_order_acq_rel);
    if (Id >= kMaxChunks * kChunkSize) {
      // Enforced in release builds too: indexing past the chunk-pointer
      // array would be silent heap corruption, and intern() has no
      // failure channel. 33.5M distinct symbols means something upstream
      // is generating names pathologically — fail loudly.
      std::fprintf(stderr,
                   "retypd: symbol table exhausted (%zu symbols)\n",
                   static_cast<size_t>(kMaxChunks * kChunkSize));
      std::abort();
    }
    std::string &Slot = ensureChunk(Id >> kChunkShift)
                            ->Slots[Id & (kChunkSize - 1)];
    Slot.assign(S.data(), S.size());
    // The map key views the slot's stable storage — no second copy.
    Sh.Ids.emplace(std::string_view(Slot), Id);
    return Id;
  }

  /// Returns the string for a previously interned id. Lock-free; the
  /// reference is stable because chunks never move or mutate once their
  /// slots are filled.
  const std::string &name(SymbolId Id) const {
    assert(Id < Count.load(std::memory_order_acquire) &&
           "symbol id out of range");
    Chunk *C = Chunks[Id >> kChunkShift].load(std::memory_order_acquire);
    return C->Slots[Id & (kChunkSize - 1)];
  }

  /// Returns the id for \p S if it was interned before, without interning.
  bool lookup(std::string_view S, SymbolId &Out) const {
    const Shard &Sh = shardFor(S);
    std::shared_lock<std::shared_mutex> Lock(Sh.M);
    auto It = Sh.Ids.find(S);
    if (It == Sh.Ids.end())
      return false;
    Out = It->second;
    return true;
  }

  size_t size() const { return Count.load(std::memory_order_acquire); }

  /// A process-unique instance identity. Decoded cache values carry
  /// symbol ids that are only meaningful relative to the table that
  /// produced them, and pointer equality is not enough to check that (a
  /// destroyed table's address can be reused) — consumers that memoize
  /// decoded values key them by this uid instead.
  uint64_t uid() const { return Uid; }

private:
  static uint64_t nextUid() {
    static std::atomic<uint64_t> Counter{1};
    return Counter.fetch_add(1, std::memory_order_relaxed);
  }

  const uint64_t Uid = nextUid();

  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkSize = size_t(1) << kChunkShift; // 4096
  static constexpr size_t kMaxChunks = 1 << 13; // 33.5M symbols
  static constexpr unsigned kNumShards = 16;

  struct Chunk {
    std::string Slots[kChunkSize];
  };

  struct Shard {
    mutable std::shared_mutex M;
    // Keys view the chunk slots' storage, which is stable for the table's
    // lifetime.
    std::unordered_map<std::string_view, SymbolId> Ids;
  };

  Shard &shardFor(std::string_view S) const {
    // FNV-1a; only the shard index derives from it, the per-shard maps
    // hash independently.
    uint64_t H = 0xcbf29ce484222325ull;
    for (unsigned char C : S)
      H = (H ^ C) * 0x100000001b3ull;
    return Shards[H & (kNumShards - 1)];
  }

  Chunk *ensureChunk(size_t CI) {
    Chunk *C = Chunks[CI].load(std::memory_order_acquire);
    if (C)
      return C;
    Chunk *Fresh = new Chunk();
    if (Chunks[CI].compare_exchange_strong(C, Fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
      return Fresh;
    delete Fresh; // another shard's insert won the race for this chunk
    return C;
  }

  std::unique_ptr<std::atomic<Chunk *>[]> Chunks;
  std::atomic<uint32_t> Count{0};
  mutable std::array<Shard, kNumShards> Shards;
};

} // namespace retypd

#endif // RETYPD_SUPPORT_SYMBOLTABLE_H
