//===- ThreadPool.h - Small work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the parallel solving pipeline.
/// Each worker owns a deque: it pushes and pops at the back (LIFO, cache
/// friendly) and victims are stolen from the front (FIFO, coarse tasks
/// first). The submitting thread participates in execution inside
/// \c waitAll(), so a pool of N threads gives N+1 executors and
/// `ThreadPool(0)` degenerates to plain inline execution — the `--jobs 1`
/// mode runs the exact same code path as `--jobs N`, which is what makes
/// the determinism guarantee cheap to state.
///
/// Tasks may submit further tasks. Exceptions escaping a task are captured
/// and rethrown from waitAll() (first one wins).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_THREADPOOL_H
#define RETYPD_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace retypd {

/// Work-stealing pool of \c numWorkers() background threads.
class ThreadPool {
public:
  /// \p Threads background workers. 0 means "run everything inline in
  /// waitAll()"; the pool is still fully functional.
  explicit ThreadPool(unsigned Threads) {
    Queues.resize(Threads == 0 ? 1 : Threads);
    for (unsigned I = 0; I < Threads; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Stop = true;
    }
    Ready.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Fn. Tasks are distributed round-robin over the worker
  /// deques; idle workers steal from the front of other deques.
  void submit(std::function<void()> Fn) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      unsigned Q = NextQueue++ % Queues.size();
      Queues[Q].push_back(std::move(Fn));
      ++Pending;
    }
    Ready.notify_one();
    Idle.notify_all(); // a blocked waitAll() can steal this task
  }

  /// Runs tasks on the calling thread until every submitted task (including
  /// tasks submitted by tasks) has finished. Rethrows the first captured
  /// task exception.
  void waitAll() {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (true) {
      if (std::function<void()> Fn = takeLocked()) {
        runTask(Lock, std::move(Fn));
        continue;
      }
      if (Pending == 0 && Running == 0)
        break;
      Idle.wait(Lock, [this] {
        return (Pending == 0 && Running == 0) || anyQueued();
      });
    }
    if (FirstError) {
      std::exception_ptr E = FirstError;
      FirstError = nullptr;
      std::rethrow_exception(E);
    }
  }

private:
  bool anyQueued() const {
    for (const auto &Q : Queues)
      if (!Q.empty())
        return true;
    return false;
  }

  /// Pops a task: own deque back first, then steal from the fronts.
  /// Requires the lock to be held. \p Self is the preferred deque.
  std::function<void()> takeLocked(unsigned Self = 0) {
    if (!Queues[Self].empty()) {
      std::function<void()> Fn = std::move(Queues[Self].back());
      Queues[Self].pop_back();
      return Fn;
    }
    for (size_t I = 0; I < Queues.size(); ++I) {
      auto &Q = Queues[(Self + 1 + I) % Queues.size()];
      if (!Q.empty()) {
        std::function<void()> Fn = std::move(Q.front());
        Q.pop_front();
        return Fn;
      }
    }
    return nullptr;
  }

  void runTask(std::unique_lock<std::mutex> &Lock,
               std::function<void()> Fn) {
    --Pending;
    ++Running;
    Lock.unlock();
    try {
      Fn();
    } catch (...) {
      Lock.lock();
      if (!FirstError)
        FirstError = std::current_exception();
      finishTaskLocked();
      return;
    }
    Lock.lock();
    finishTaskLocked();
  }

  void finishTaskLocked() {
    if (--Running == 0 && Pending == 0)
      Idle.notify_all();
  }

  void workerLoop(unsigned Self) {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (true) {
      if (std::function<void()> Fn = takeLocked(Self)) {
        runTask(Lock, std::move(Fn));
        // A finished task may have enqueued more work for others.
        if (anyQueued())
          Ready.notify_one();
        continue;
      }
      if (Stop)
        return;
      Ready.wait(Lock, [this] { return Stop || anyQueued(); });
    }
  }

  std::vector<std::thread> Workers;
  std::vector<std::deque<std::function<void()>>> Queues;
  std::mutex Mutex;
  std::condition_variable Ready; ///< new work for workers
  std::condition_variable Idle;  ///< everything drained, wake waitAll
  unsigned NextQueue = 0;
  size_t Pending = 0; ///< queued, not yet started
  size_t Running = 0; ///< currently executing
  bool Stop = false;
  std::exception_ptr FirstError;
};

} // namespace retypd

#endif // RETYPD_SUPPORT_THREADPOOL_H
