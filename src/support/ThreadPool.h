//===- ThreadPool.h - Small work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the parallel solving pipeline.
/// Each worker owns a deque: it pushes and pops at the back (LIFO, cache
/// friendly) and victims are stolen from the front (FIFO, coarse tasks
/// first). The submitting thread participates in execution inside
/// \c waitAll() — or one task at a time via \c tryRunOne(), which is how
/// the readiness scheduler's drainer helps out between commits — so a pool
/// of N threads gives N+1 executors and `ThreadPool(0)` degenerates to
/// plain inline execution: the `--jobs 1` mode runs the exact same code
/// path as `--jobs N`, which is what makes the determinism guarantee cheap
/// to state.
///
/// Wakeups are targeted: submitting one task wakes at most one idle
/// worker (a woken worker keeps draining until the queues are empty, so
/// per-task notifications are unnecessary), and external waiters are only
/// poked when no worker is idle to take the task. `workerWakeups()` counts
/// worker wakeups so tests can pin the no-thundering-herd property.
///
/// Tasks may submit further tasks. Exceptions escaping a task are captured
/// and rethrown from waitAll() (first one wins).
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_THREADPOOL_H
#define RETYPD_SUPPORT_THREADPOOL_H

#include "support/Trace.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace retypd {

/// Work-stealing pool of \c numWorkers() background threads.
class ThreadPool {
public:
  /// \p Threads background workers. 0 means "run everything inline in
  /// waitAll()/tryRunOne()"; the pool is still fully functional.
  explicit ThreadPool(unsigned Threads) {
    Queues.resize(Threads == 0 ? 1 : Threads);
    for (unsigned I = 0; I < Threads; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Stop = true;
    }
    Ready.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Fn. Tasks are distributed round-robin over the worker
  /// deques; idle workers steal from the front of other deques. Wakes at
  /// most one idle worker — a running worker re-checks the queues before
  /// sleeping, so one wakeup per submission is enough — and falls back to
  /// waking external waiters (a blocked waitAll) only when every worker is
  /// already busy.
  void submit(std::function<void()> Fn) {
    bool WakeWorker;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      unsigned Q = NextQueue++ % Queues.size();
      Queues[Q].push_back(std::move(Fn));
      ++Pending;
      WakeWorker = IdleWorkers > 0;
    }
    if (WakeWorker)
      Ready.notify_one();
    else
      Idle.notify_all(); // a blocked waitAll() can steal this task
  }

  /// Runs tasks on the calling thread until every submitted task (including
  /// tasks submitted by tasks) has finished. Rethrows the first captured
  /// task exception.
  void waitAll() {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (true) {
      if (std::function<void()> Fn = takeLocked()) {
        runTask(Lock, std::move(Fn));
        continue;
      }
      if (Pending == 0 && Running == 0)
        break;
      Idle.wait(Lock, [this] {
        return (Pending == 0 && Running == 0) || anyQueued();
      });
    }
    if (FirstError) {
      std::exception_ptr E = FirstError;
      FirstError = nullptr;
      std::rethrow_exception(E);
    }
  }

  /// Runs exactly one queued task on the calling thread, if any is queued.
  /// Returns false when the queues are empty (tasks may still be running
  /// on workers). Task exceptions are captured exactly like worker-side
  /// ones — rethrown from the next waitAll().
  bool tryRunOne() {
    std::unique_lock<std::mutex> Lock(Mutex);
    std::function<void()> Fn = takeLocked();
    if (!Fn)
      return false;
    runTask(Lock, std::move(Fn));
    return true;
  }

  /// Workers currently blocked waiting for work (locked read; exact).
  unsigned idleWorkers() {
    std::unique_lock<std::mutex> Lock(Mutex);
    return IdleWorkers;
  }

  /// Total times any worker woke from its idle wait. With targeted
  /// wakeups this stays O(submissions), not O(submissions x workers).
  uint64_t workerWakeups() const {
    return WorkerWakeups.load(std::memory_order_relaxed);
  }

private:
  bool anyQueued() const {
    for (const auto &Q : Queues)
      if (!Q.empty())
        return true;
    return false;
  }

  /// Pops a task: own deque back first, then steal from the fronts.
  /// Requires the lock to be held. \p Self is the preferred deque.
  std::function<void()> takeLocked(unsigned Self = 0) {
    if (!Queues[Self].empty()) {
      std::function<void()> Fn = std::move(Queues[Self].back());
      Queues[Self].pop_back();
      return Fn;
    }
    for (size_t I = 0; I < Queues.size(); ++I) {
      auto &Q = Queues[(Self + 1 + I) % Queues.size()];
      if (!Q.empty()) {
        std::function<void()> Fn = std::move(Q.front());
        Q.pop_front();
        return Fn;
      }
    }
    return nullptr;
  }

  void runTask(std::unique_lock<std::mutex> &Lock,
               std::function<void()> Fn) {
    --Pending;
    ++Running;
    Lock.unlock();
    try {
      Fn();
    } catch (...) {
      Lock.lock();
      if (!FirstError)
        FirstError = std::current_exception();
      finishTaskLocked();
      return;
    }
    Lock.lock();
    finishTaskLocked();
  }

  void finishTaskLocked() {
    if (--Running == 0 && Pending == 0)
      Idle.notify_all();
  }

  void workerLoop(unsigned Self) {
    // Name the trace lane once per thread; an SSO string set, negligible
    // whether or not a recording is active.
    trace::setCurrentThreadName(
        ("worker-" + std::to_string(Self + 1)).c_str());
    std::unique_lock<std::mutex> Lock(Mutex);
    while (true) {
      if (std::function<void()> Fn = takeLocked(Self)) {
        runTask(Lock, std::move(Fn));
        // A finished task may have enqueued more work for others.
        if (anyQueued() && IdleWorkers > 0)
          Ready.notify_one();
        continue;
      }
      if (Stop)
        return;
      // Manual wait loop: IdleWorkers must be exact while the lock is
      // held (submit() reads it to decide whether to notify at all), and
      // every return from wait() is counted so ThreadPoolTest can assert
      // wakeups stay proportional to submissions.
      ++IdleWorkers;
      while (!Stop && !anyQueued()) {
        Ready.wait(Lock);
        WorkerWakeups.fetch_add(1, std::memory_order_relaxed);
      }
      --IdleWorkers;
    }
  }

  std::vector<std::thread> Workers;
  std::vector<std::deque<std::function<void()>>> Queues;
  std::mutex Mutex;
  std::condition_variable Ready; ///< new work for workers
  std::condition_variable Idle;  ///< everything drained, wake waitAll
  unsigned NextQueue = 0;
  size_t Pending = 0; ///< queued, not yet started
  size_t Running = 0; ///< currently executing
  unsigned IdleWorkers = 0; ///< workers blocked in Ready.wait
  bool Stop = false;
  std::atomic<uint64_t> WorkerWakeups{0};
  std::exception_ptr FirstError;
};

} // namespace retypd

#endif // RETYPD_SUPPORT_THREADPOOL_H
