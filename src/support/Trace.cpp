//===- Trace.cpp - Structured tracing + per-SCC attribution ---------------===//

#include "support/Trace.h"

#include "support/Stats.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

using namespace retypd;
using namespace retypd::trace;

namespace {

constexpr size_t kChunkEvents = 1024;

/// One thread's event storage: a list of fixed-capacity chunks so appends
/// never invalidate earlier events and never pay a large realloc. Only the
/// owning thread appends; collect() reads after stop().
struct ThreadBuffer {
  uint32_t Tid = 0;
  std::string Name;
  std::vector<std::unique_ptr<std::vector<Event>>> Chunks;

  void append(Event &&E) {
    if (Chunks.empty() || Chunks.back()->size() == kChunkEvents) {
      Chunks.emplace_back(std::make_unique<std::vector<Event>>());
      Chunks.back()->reserve(kChunkEvents);
    }
    Chunks.back()->push_back(std::move(E));
  }
};

struct Registry {
  std::mutex Mu;
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  uint32_t NextTid = 1;
};

Registry &registry() {
  static Registry R;
  return R;
}

std::atomic<uint64_t> Generation{0};
std::atomic<uint64_t> SeqCounter{0};
std::chrono::steady_clock::time_point TraceStart;

thread_local ThreadBuffer *TlsBuf = nullptr;
thread_local uint64_t TlsGen = ~uint64_t{0};
thread_local std::string TlsThreadName;

ThreadBuffer &myBuffer() {
  uint64_t Gen = Generation.load(std::memory_order_acquire);
  if (TlsBuf == nullptr || TlsGen != Gen) {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    auto Buf = std::make_unique<ThreadBuffer>();
    Buf->Tid = R.NextTid++;
    Buf->Name = TlsThreadName.empty()
                    ? "thread-" + std::to_string(Buf->Tid)
                    : TlsThreadName;
    TlsBuf = Buf.get();
    TlsGen = Gen;
    R.Buffers.push_back(std::move(Buf));
  }
  return *TlsBuf;
}

void jsonEscape(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void appendArgsJson(std::string &Out, const SpanArgs &A) {
  bool First = true;
  auto Sep = [&] {
    if (!First)
      Out += ',';
    First = false;
  };
  Out += "\"args\":{";
  if (A.Scc >= 0) {
    Sep();
    Out += "\"scc\":" + std::to_string(A.Scc);
  }
  if (!A.Fn.empty()) {
    Sep();
    Out += "\"fn\":\"";
    jsonEscape(Out, A.Fn);
    Out += '"';
  }
  if (!A.Backend.empty()) {
    Sep();
    Out += "\"backend\":\"";
    jsonEscape(Out, A.Backend);
    Out += '"';
  }
  if (A.Constraints >= 0) {
    Sep();
    Out += "\"constraints\":" + std::to_string(A.Constraints);
  }
  if (A.Cache != nullptr) {
    Sep();
    Out += "\"cache\":\"";
    jsonEscape(Out, A.Cache);
    Out += '"';
  }
  if (A.JoinOps >= 0) {
    Sep();
    Out += "\"join_ops\":" + std::to_string(A.JoinOps);
  }
  if (A.Count >= 0) {
    Sep();
    Out += "\"count\":" + std::to_string(A.Count);
  }
  Out += '}';
}

std::string formatUs(double Us) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Us);
  return Buf;
}

} // namespace

namespace retypd {
namespace trace {
namespace detail {

std::atomic<bool> Enabled{false};

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - TraceStart)
      .count();
}

void record(const char *Name, const char *Cat, char Ph, double TsUs,
            double DurUs, SpanArgs &&Args) {
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.Ph = Ph;
  E.Seq = SeqCounter.fetch_add(1, std::memory_order_relaxed);
  E.TsUs = TsUs;
  E.DurUs = DurUs;
  E.Args = std::move(Args);
  myBuffer().append(std::move(E));
  EventCounters::TraceEvents.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

void start() {
  Registry &R = registry();
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    R.Buffers.clear();
    R.NextTid = 1;
  }
  Generation.fetch_add(1, std::memory_order_release);
  SeqCounter.store(0, std::memory_order_relaxed);
  TraceStart = std::chrono::steady_clock::now();
  detail::Enabled.store(true, std::memory_order_relaxed);
  setCurrentThreadName("main");
}

void stop() { detail::Enabled.store(false, std::memory_order_relaxed); }

void setCurrentThreadName(const char *Name) {
  TlsThreadName = Name;
  if (!enabled())
    return;
  ThreadBuffer &Buf = myBuffer();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Buf.Name = Name;
}

size_t bufferCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return R.Buffers.size();
}

std::vector<Event> collect() {
  std::vector<Event> Out;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (const auto &Buf : R.Buffers)
    for (const auto &Chunk : Buf->Chunks)
      for (const Event &E : *Chunk) {
        Out.push_back(E);
        Out.back().Tid = Buf->Tid;
        Out.back().ThreadName = Buf->Name;
      }
  std::sort(Out.begin(), Out.end(), [](const Event &A, const Event &B) {
    if (A.TsUs != B.TsUs)
      return A.TsUs < B.TsUs;
    return A.Seq < B.Seq;
  });
  return Out;
}

std::string writeChromeJson(const std::vector<Event> &Events) {
  std::string Out;
  Out.reserve(Events.size() * 160 + 64);
  Out += "{\"traceEvents\":[\n";
  bool First = true;
  auto Sep = [&] {
    if (!First)
      Out += ",\n";
    First = false;
  };
  // Thread-name metadata events, one per lane.
  std::unordered_map<uint32_t, std::string> Lanes;
  for (const Event &E : Events)
    Lanes.emplace(E.Tid, E.ThreadName);
  std::vector<std::pair<uint32_t, std::string>> Sorted(Lanes.begin(),
                                                       Lanes.end());
  std::sort(Sorted.begin(), Sorted.end());
  for (const auto &[Tid, Name] : Sorted) {
    Sep();
    Out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" +
           std::to_string(Tid) + ",\"args\":{\"name\":\"";
    jsonEscape(Out, Name);
    Out += "\"}}";
  }
  for (const Event &E : Events) {
    Sep();
    Out += "{\"name\":\"";
    jsonEscape(Out, E.Name);
    Out += "\",\"cat\":\"";
    jsonEscape(Out, E.Cat);
    Out += "\",\"ph\":\"";
    Out += E.Ph;
    Out += "\",\"pid\":1,\"tid\":" + std::to_string(E.Tid) +
           ",\"ts\":" + formatUs(E.TsUs);
    if (E.Ph == 'X')
      Out += ",\"dur\":" + formatUs(E.DurUs);
    if (E.Ph == 'i')
      Out += ",\"s\":\"t\"";
    Out += ',';
    appendArgsJson(Out, E.Args);
    Out += '}';
  }
  Out += "\n]}\n";
  return Out;
}

void instant(const char *Name, const char *Cat, int64_t Count, int64_t Scc) {
  if (!enabled())
    return;
  SpanArgs Args;
  Args.Count = Count;
  Args.Scc = Scc;
  detail::record(Name, Cat, 'i', detail::nowUs(), 0.0, std::move(Args));
}

//===----------------------------------------------------------------------===//
// Profile aggregation
//===----------------------------------------------------------------------===//

std::vector<ProfileRow> buildProfile(const std::vector<Event> &Events) {
  std::unordered_map<int64_t, ProfileRow> Rows;
  for (const Event &E : Events) {
    if (E.Ph != 'X' || std::string_view(E.Cat) != "scc" || E.Args.Scc < 0)
      continue;
    ProfileRow &Row = Rows[E.Args.Scc];
    Row.Scc = E.Args.Scc;
    if (Row.Fn.empty() && !E.Args.Fn.empty())
      Row.Fn = E.Args.Fn;
    if (!E.Args.Backend.empty())
      Row.Backend = E.Args.Backend;
    if (E.Args.Constraints > Row.Constraints)
      Row.Constraints = E.Args.Constraints;
    if (E.Args.JoinOps > 0)
      Row.JoinOps += E.Args.JoinOps;
    double Secs = E.DurUs / 1e6;
    std::string_view Name(E.Name);
    if (Name == "generate") {
      Row.GenerateSecs += Secs;
      if (E.Args.Cache != nullptr)
        Row.GenCache = E.Args.Cache;
    } else if (Name == "simplify") {
      Row.SimplifySecs += Secs;
      if (E.Args.Cache != nullptr)
        Row.SchemeCache = E.Args.Cache;
    } else if (Name == "solve") {
      Row.SolveSecs += Secs;
    } else if (Name == "refine") {
      Row.RefineSecs += Secs;
    }
    Row.TotalSecs += Secs;
  }
  std::vector<ProfileRow> Out;
  Out.reserve(Rows.size());
  for (auto &[_, Row] : Rows)
    Out.push_back(std::move(Row));
  std::sort(Out.begin(), Out.end(), [](const ProfileRow &A,
                                       const ProfileRow &B) {
    if (A.TotalSecs != B.TotalSecs)
      return A.TotalSecs > B.TotalSecs;
    return A.Scc < B.Scc;
  });
  return Out;
}

std::string renderProfileTable(const std::vector<ProfileRow> &Rows, size_t N,
                               double WallSecs) {
  size_t Show = (N == 0 || N > Rows.size()) ? Rows.size() : N;
  double Attributed = 0.0;
  for (const ProfileRow &Row : Rows)
    Attributed += Row.TotalSecs;
  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "profile: top %zu of %zu SCCs by attributed time\n", Show,
                Rows.size());
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "%5s  %-24s %-7s %9s %9s %9s %9s %9s %7s %7s %-7s %-7s\n",
                "scc", "function", "backend", "total(s)", "gen(s)", "simp(s)",
                "solve(s)", "ref(s)", "constr", "joins", "gcache", "scache");
  Out += Buf;
  for (size_t I = 0; I < Show; ++I) {
    const ProfileRow &Row = Rows[I];
    std::string Fn = Row.Fn.size() > 24 ? Row.Fn.substr(0, 21) + "..." : Row.Fn;
    std::snprintf(Buf, sizeof(Buf),
                  "%5lld  %-24s %-7s %9.6f %9.6f %9.6f %9.6f %9.6f %7lld "
                  "%7lld %-7s %-7s\n",
                  static_cast<long long>(Row.Scc), Fn.c_str(),
                  Row.Backend.c_str(), Row.TotalSecs, Row.GenerateSecs,
                  Row.SimplifySecs, Row.SolveSecs, Row.RefineSecs,
                  static_cast<long long>(Row.Constraints),
                  static_cast<long long>(Row.JoinOps),
                  Row.GenCache.empty() ? "-" : Row.GenCache.c_str(),
                  Row.SchemeCache.empty() ? "-" : Row.SchemeCache.c_str());
    Out += Buf;
  }
  if (WallSecs > 0.0) {
    std::snprintf(Buf, sizeof(Buf),
                  "attributed %.6fs across %zu SCCs (%.1f%% of %.6fs wall)\n",
                  Attributed, Rows.size(), 100.0 * Attributed / WallSecs,
                  WallSecs);
    Out += Buf;
  }
  return Out;
}

std::string profileJson(const std::vector<ProfileRow> &Rows, size_t N) {
  size_t Show = (N == 0 || N > Rows.size()) ? Rows.size() : N;
  std::string Out = "[";
  for (size_t I = 0; I < Show; ++I) {
    const ProfileRow &Row = Rows[I];
    if (I != 0)
      Out += ',';
    char Buf[160];
    Out += "\n    {\"scc\": " + std::to_string(Row.Scc) + ", \"fn\": \"";
    jsonEscape(Out, Row.Fn);
    Out += "\", \"backend\": \"";
    jsonEscape(Out, Row.Backend);
    Out += "\"";
    std::snprintf(Buf, sizeof(Buf),
                  ", \"total_secs\": %.6f, \"generate_secs\": %.6f, "
                  "\"simplify_secs\": %.6f, \"solve_secs\": %.6f, "
                  "\"refine_secs\": %.6f",
                  Row.TotalSecs, Row.GenerateSecs, Row.SimplifySecs,
                  Row.SolveSecs, Row.RefineSecs);
    Out += Buf;
    Out += ", \"constraints\": " + std::to_string(Row.Constraints) +
           ", \"join_ops\": " + std::to_string(Row.JoinOps);
    Out += ", \"gen_cache\": \"";
    jsonEscape(Out, Row.GenCache);
    Out += "\", \"scheme_cache\": \"";
    jsonEscape(Out, Row.SchemeCache);
    Out += "\"}";
  }
  Out += Show ? "\n  ]" : "]";
  return Out;
}

} // namespace trace
} // namespace retypd
