//===- Trace.h - Structured tracing + per-SCC attribution -------*- C++ -*-===//
//
// Per-thread, lock-free span/instant recorder. Threads append trace events
// into thread-local chunked buffers (no contention on the hot path); the
// buffers are registered once per thread under a mutex and drained at run
// end by trace::collect(). Events carry structured args (SCC id,
// representative function, backend, constraint count, cache hit kind,
// sketch-join count) so a single recording serves both the Chrome
// trace-event JSON export (--trace) and the per-SCC attribution profile
// (--profile).
//
// Zero-cost when off: TraceSpan's constructor does a single relaxed atomic
// load and nothing else; no buffers are allocated, no strings are built,
// and EventCounters::TraceEvents stays 0 (gated by bench_warmpath).
//
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_TRACE_H
#define RETYPD_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace retypd {
namespace trace {

/// Structured arguments attached to a span or instant. Negative integers and
/// empty strings mean "unset" and are omitted from the JSON output.
struct SpanArgs {
  int64_t Scc = -1;          ///< SCC id (commit-slot sequence number).
  std::string Fn;            ///< Representative function name of the SCC.
  std::string Backend;       ///< Solver backend name ("retypd"/"binsub").
  int64_t Constraints = -1;  ///< Constraint count fed to the backend.
  const char *Cache = nullptr; ///< Cache outcome: "hit", "miss", ...
  int64_t JoinOps = -1;      ///< Sketch join/meet operations performed.
  int64_t Count = -1;        ///< Generic count for instant events.
};

/// One recorded event. Ph follows the Chrome trace-event phase codes:
/// 'X' = complete span (TsUs + DurUs), 'i' = instant.
struct Event {
  const char *Name = nullptr; ///< Static string literal.
  const char *Cat = nullptr;  ///< Static category literal ("phase", "scc").
  char Ph = 'X';
  uint32_t Tid = 0;           ///< Stable per-thread lane id (1 = main).
  std::string ThreadName;     ///< Lane label ("main", "worker-1", ...).
  uint64_t Seq = 0;           ///< Global sequence stamp (total order tiebreak).
  double TsUs = 0.0;          ///< Microseconds since trace::start().
  double DurUs = 0.0;         ///< Span duration in microseconds ('X' only).
  SpanArgs Args;
};

namespace detail {
extern std::atomic<bool> Enabled;
void record(const char *Name, const char *Cat, char Ph, double TsUs,
            double DurUs, SpanArgs &&Args);
double nowUs();
} // namespace detail

/// True while a recording is in progress. Single relaxed load.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Begin recording. Clears any previous recording, stamps the time origin,
/// and names the calling thread "main". Not thread-safe against concurrent
/// record() calls — call it before spinning up workers.
void start();

/// Stop recording. Buffers are retained for collect().
void stop();

/// Label the calling thread's lane (e.g. "worker-1"). Cheap when disabled.
void setCurrentThreadName(const char *Name);

/// Flatten all thread buffers into one list sorted by (TsUs, Seq).
/// Non-destructive; callable after stop().
std::vector<Event> collect();

/// Number of thread buffers ever registered for the current recording.
/// Stays 0 when tracing was never started (the zero-cost-off contract).
size_t bufferCount();

/// Serialize events as Chrome trace-event JSON (the {"traceEvents": [...]}
/// object form), loadable in Perfetto / chrome://tracing.
std::string writeChromeJson(const std::vector<Event> &Events);

/// Record an instant event. Internally guarded by enabled().
void instant(const char *Name, const char *Cat, int64_t Count = -1,
             int64_t Scc = -1);

/// RAII complete-span recorder. Name/Cat must be static string literals.
/// When tracing is disabled the constructor performs one relaxed atomic
/// load and the destructor one branch; Args is left untouched (its strings
/// stay default-constructed, no heap traffic). Guard any argument setup
/// that builds dynamic strings with `if (Span.active())`.
class TraceSpan {
public:
  TraceSpan(const char *Name, const char *Cat)
      : Name(Name), Cat(Cat), Active(enabled()),
        StartUs(Active ? detail::nowUs() : 0.0) {}

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  ~TraceSpan() {
    if (Active)
      detail::record(Name, Cat, 'X', StartUs, detail::nowUs() - StartUs,
                     std::move(Args));
  }

  bool active() const { return Active; }

  SpanArgs Args;

private:
  const char *Name;
  const char *Cat;
  bool Active;
  double StartUs;
};

//===----------------------------------------------------------------------===//
// Profile aggregation (--profile)
//===----------------------------------------------------------------------===//

/// Per-SCC attribution row aggregated from "scc"-category spans.
struct ProfileRow {
  int64_t Scc = -1;
  std::string Fn;
  std::string Backend;
  double GenerateSecs = 0.0;
  double SimplifySecs = 0.0;
  double SolveSecs = 0.0;
  double RefineSecs = 0.0;
  int64_t Constraints = 0;
  int64_t JoinOps = 0;
  std::string GenCache;    ///< generate-stage cache outcome.
  std::string SchemeCache; ///< simplify-stage scheme-cache outcome.
  double TotalSecs = 0.0;
};

/// Aggregate collected events into per-SCC rows, sorted hottest-first.
std::vector<ProfileRow> buildProfile(const std::vector<Event> &Events);

/// Render a human-readable top-N table (with a coverage line relating
/// attributed SCC time to WallSecs). N == 0 means "all rows".
std::string renderProfileTable(const std::vector<ProfileRow> &Rows, size_t N,
                               double WallSecs);

/// Render the top-N rows as a JSON array for the statsJson "profile" key.
std::string profileJson(const std::vector<ProfileRow> &Rows, size_t N);

} // namespace trace
} // namespace retypd

#endif // RETYPD_SUPPORT_TRACE_H
