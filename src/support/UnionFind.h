//===- UnionFind.h - Disjoint set forest ----------------------*- C++ -*-===//
//
// Part of the Retypd reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A union-find (disjoint set) structure with path compression and union by
/// rank. Used by the Steensgaard-style shape inference (Algorithm E.1) and by
/// the unification baseline.
///
//===----------------------------------------------------------------------===//

#ifndef RETYPD_SUPPORT_UNIONFIND_H
#define RETYPD_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

namespace retypd {

/// Disjoint set forest over dense uint32_t keys.
class UnionFind {
public:
  UnionFind() = default;
  explicit UnionFind(size_t N) { grow(N); }

  /// Ensures keys [0, N) exist.
  void grow(size_t N) {
    size_t Old = Parent.size();
    if (N <= Old)
      return;
    Parent.resize(N);
    Rank.resize(N, 0);
    std::iota(Parent.begin() + Old, Parent.end(),
              static_cast<uint32_t>(Old));
  }

  /// Adds a fresh singleton set and returns its key.
  uint32_t makeSet() {
    uint32_t Key = static_cast<uint32_t>(Parent.size());
    Parent.push_back(Key);
    Rank.push_back(0);
    return Key;
  }

  /// Returns the representative of \p X's set.
  uint32_t find(uint32_t X) const {
    assert(X < Parent.size() && "key out of range");
    uint32_t Root = X;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    // Path compression.
    while (Parent[X] != Root) {
      uint32_t Next = Parent[X];
      Parent[X] = Root;
      X = Next;
    }
    return Root;
  }

  /// Merges the sets of \p A and \p B; returns the surviving representative.
  uint32_t unite(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return A;
    if (Rank[A] < Rank[B])
      std::swap(A, B);
    Parent[B] = A;
    if (Rank[A] == Rank[B])
      ++Rank[A];
    return A;
  }

  bool same(uint32_t A, uint32_t B) const { return find(A) == find(B); }

  size_t size() const { return Parent.size(); }

private:
  mutable std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
};

} // namespace retypd

#endif // RETYPD_SUPPORT_UNIONFIND_H
