//===- Synth.cpp - Synthetic binary generator --------------------------------===//

#include "synth/Synth.h"

#include "mir/AsmParser.h"

#include <cassert>
#include <set>
#include <sstream>

using namespace retypd;

namespace {

/// Builds one program: accumulates assembly text, ground truth, and a list
/// of entry calls for main.
class ProgramBuilder {
public:
  ProgramBuilder(uint64_t Seed) : Rng(static_cast<unsigned>(Seed)) {
    Truth = std::make_shared<GroundTruth>();
  }

  unsigned roll(unsigned N) { return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng); }

  std::string fresh(const std::string &Base) {
    return Base + "_" + std::to_string(Counter++);
  }

  void needExtern(const std::string &Name) {
    if (Externs.insert(Name).second)
      Header += "extern " + Name + "\n";
  }

  void emit(const std::string &Text) {
    Body += Text;
    // Incremental instruction count: lines indented by two spaces.
    for (size_t I = 0; I + 2 < Text.size(); ++I)
      if (Text[I] == '\n' && Text[I + 1] == ' ' && Text[I + 2] == ' ')
        ++InstrCount;
  }

  /// Records truth for a function.
  FuncTruth &truthFor(const std::string &Fn) { return Truth->Funcs[Fn]; }

  CTypePool &pool() { return Truth->Pool; }

  // -- Common truth types (created lazily, shared) --
  CTypeId intT() {
    if (IntT == NoCType)
      IntT = pool().intType(32, true);
    return IntT;
  }
  CTypeId uintT() {
    if (UIntT == NoCType)
      UIntT = pool().intType(32, false);
    return UIntT;
  }
  CTypeId charPtrT() {
    if (CharPtrT == NoCType) {
      CType Ch;
      Ch.K = CType::Kind::Int;
      Ch.Bits = 8;
      Ch.Name = "char";
      CharPtrT = pool().pointerTo(pool().make(std::move(Ch)));
    }
    return CharPtrT;
  }
  CTypeId fdT() {
    if (FdT == NoCType) {
      CType T;
      T.K = CType::Kind::Int;
      T.Bits = 32;
      T.Name = "#FileDescriptor";
      FdT = pool().make(std::move(T));
    }
    return FdT;
  }
  CTypeId sizeT() {
    if (SizeT == NoCType)
      SizeT = pool().typedefType("size_t", 32);
    return SizeT;
  }

  /// A fresh struct type with \p NumFields int fields (field 0 may be a
  /// self pointer when \p Recursive).
  CTypeId structT(unsigned NumFields, bool Recursive) {
    CType St;
    St.K = CType::Kind::Struct;
    St.Name = fresh("TS");
    CTypeId Id = pool().make(std::move(St));
    std::vector<CType::Field> Fields;
    for (unsigned K = 0; K < NumFields; ++K) {
      CTypeId FT = K == 0 && Recursive ? pool().pointerTo(Id) : intT();
      Fields.push_back(CType::Field{static_cast<int32_t>(4 * K), FT});
    }
    pool().get(Id).Fields = std::move(Fields);
    return Id;
  }

  /// Registers a call for main: `push <args>; call fn; add esp, 4*n`.
  void callFromMain(const std::string &Fn, unsigned NumArgs) {
    MainCalls.push_back({Fn, NumArgs});
  }

  SynthProgram finish(const std::string &Name) {
    // Split the dispatcher into chunks of 50 calls so no function becomes
    // disproportionately large (real programs have no 10k-instruction
    // straight-line main either).
    std::string MainText;
    std::vector<std::string> Chunks;
    for (size_t Base = 0; Base < MainCalls.size(); Base += 50) {
      std::string Chunk = "run" + std::to_string(Base / 50) + "_x";
      Chunks.push_back(Chunk);
      MainText += "fn " + Chunk + ":\n";
      for (size_t I = Base; I < std::min(MainCalls.size(), Base + 50);
           ++I) {
        const auto &[Fn, NArgs] = MainCalls[I];
        for (unsigned K = 0; K < NArgs; ++K)
          MainText += "  push 0\n";
        MainText += "  call " + Fn + "\n";
        if (NArgs)
          MainText += "  add esp, " + std::to_string(4 * NArgs) + "\n";
      }
      MainText += "  ret\n";
    }
    MainText += "fn main:\n";
    for (const std::string &Chunk : Chunks)
      MainText += "  call " + Chunk + "\n";
    MainText += "  halt\n";

    SynthProgram P;
    P.Name = Name;
    P.AsmText = Header + Body + MainText;
    AsmParser Parser;
    auto M = Parser.parse(P.AsmText);
    assert(M && "generated assembly must parse");
    P.M = std::move(*M);
    P.M.EntryFunc = *P.M.findFunction("main");
    P.Truth = Truth;
    return P;
  }

  size_t bodyInstructions() const { return InstrCount; }

  std::mt19937 Rng;

private:
  std::string Header, Body;
  std::set<std::string> Externs;
  std::vector<std::pair<std::string, unsigned>> MainCalls;
  std::shared_ptr<GroundTruth> Truth;
  size_t InstrCount = 0;
  unsigned Counter = 0;
  CTypeId IntT = NoCType, UIntT = NoCType, CharPtrT = NoCType,
          FdT = NoCType, SizeT = NoCType;
};

//===----------------------------------------------------------------------===//
// Idiom templates (§2 catalog)
//===----------------------------------------------------------------------===//

/// §2.3/Figure 2: traverse a linked list, close the final handle.
void emitListClose(ProgramBuilder &B) {
  B.needExtern("close");
  std::string Fn = B.fresh("list_close");
  B.emit("fn " + Fn + ":\n"
         "  load edx, [esp+4]\n"
         "  jmp " + Fn + "_check\n" +
         Fn + "_adv:\n"
         "  mov edx, eax\n" +
         Fn + "_check:\n"
         "  load eax, [edx+0]\n"
         "  test eax, eax\n"
         "  jnz " + Fn + "_adv\n"
         "  load eax, [edx+4]\n"
         "  push eax\n"
         "  call close\n"
         "  add esp, 4\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  CType LL;
  LL.K = CType::Kind::Struct;
  LL.Name = Fn + "_LL";
  CTypeId LLId = B.pool().make(std::move(LL));
  B.pool().get(LLId).Fields = {
      CType::Field{0, B.pool().pointerTo(LLId)},
      CType::Field{4, B.fdT()}};
  T.Params.push_back({B.pool().pointerTo(LLId), /*IsConstPtr=*/true});
  T.HasRet = true;
  T.Ret = B.intT();
  B.callFromMain(Fn, 1);
}

/// §2.2/G.2: a getter — sums the fields of a struct parameter (real code
/// eventually touches every field of a live struct).
void emitGetter(ProgramBuilder &B) {
  unsigned NumFields = 2 + B.roll(3);
  std::string Fn = B.fresh("get");
  std::string Text = "fn " + Fn + ":\n"
                     "  load edx, [esp+4]\n"
                     "  load eax, [edx+0]\n";
  for (unsigned K = 1; K < NumFields; ++K) {
    Text += "  load ebx, [edx+" + std::to_string(4 * K) + "]\n";
    Text += "  add eax, ebx\n";
  }
  Text += "  ret\n";
  B.emit(Text);
  FuncTruth &T = B.truthFor(Fn);
  CTypeId St = B.structT(NumFields, false);
  T.Params.push_back({B.pool().pointerTo(St), true});
  T.HasRet = true;
  T.Ret = B.intT();
  B.callFromMain(Fn, 1);
}

/// Mutating setter: initializes every field; the parameter must NOT be
/// const (§6.4 negative case).
void emitSetter(ProgramBuilder &B) {
  unsigned NumFields = 2 + B.roll(3);
  std::string Fn = B.fresh("set");
  std::string Text = "fn " + Fn + ":\n"
                     "  load edx, [esp+4]\n"
                     "  load eax, [esp+8]\n";
  for (unsigned K = 0; K < NumFields; ++K)
    Text += "  store [edx+" + std::to_string(4 * K) + "], eax\n";
  Text += "  ret\n";
  B.emit(Text);
  FuncTruth &T = B.truthFor(Fn);
  CTypeId St = B.structT(NumFields, false);
  T.Params.push_back({B.pool().pointerTo(St), false});
  T.Params.push_back({B.intT(), false});
  B.callFromMain(Fn, 2);
}

/// §2.2: a malloc wrapper — must stay polymorphic.
std::string emitAllocWrapper(ProgramBuilder &B) {
  B.needExtern("malloc");
  std::string Fn = B.fresh("xalloc");
  B.emit("fn " + Fn + ":\n"
         "  load eax, [esp+4]\n"
         "  push eax\n"
         "  call malloc\n"
         "  add esp, 4\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  T.Params.push_back({B.sizeT(), false});
  T.HasRet = true;
  T.Ret = B.pool().pointerTo(B.pool().unknownType());
  return Fn;
}

/// Two uses of one allocator with different pointee types (§2.2): a
/// unification engine conflates them.
void emitPolymorphicUse(ProgramBuilder &B) {
  std::string Alloc = emitAllocWrapper(B);
  std::string Fn = B.fresh("mkpair");
  B.emit("fn " + Fn + ":\n"
         "  push 4\n"
         "  call " + Alloc + "\n"
         "  add esp, 4\n"
         "  mov esi, eax\n"
         "  load eax, [esp+4]\n"
         "  store [esi], eax\n"       // int cell
         "  push 4\n"
         "  call " + Alloc + "\n"
         "  add esp, 4\n"
         "  store [eax], esi\n"       // pointer cell
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  T.Params.push_back({B.intT(), false});
  T.HasRet = true;
  T.Ret = B.pool().pointerTo(B.pool().pointerTo(B.intT()));
  B.callFromMain(Fn, 1);
}

/// memcpy user: void copy(char* dst, const char* src, size_t n).
void emitMemcpyUser(ProgramBuilder &B) {
  B.needExtern("memcpy");
  std::string Fn = B.fresh("copybuf");
  B.emit("fn " + Fn + ":\n"
         "  load eax, [esp+12]\n"
         "  push eax\n"
         "  load eax, [esp+12]\n" // src (esp moved by 4)
         "  push eax\n"
         "  load eax, [esp+12]\n" // dst (esp moved by 8)
         "  push eax\n"
         "  call memcpy\n"
         "  add esp, 12\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  T.Params.push_back({B.charPtrT(), false});
  T.Params.push_back({B.charPtrT(), true});
  T.Params.push_back({B.sizeT(), false});
  B.callFromMain(Fn, 3);
}

/// File-descriptor pipeline: semantic tags flow through (§3.5).
void emitFdPipeline(ProgramBuilder &B) {
  B.needExtern("open");
  B.needExtern("read");
  B.needExtern("close");
  std::string Fn = B.fresh("slurp");
  B.emit("fn " + Fn + ":\n"
         "  push 0\n"
         "  load eax, [esp+8]\n"
         "  push eax\n"
         "  call open\n"
         "  add esp, 8\n"
         "  mov esi, eax\n"        // fd
         "  push 16\n"
         "  load eax, [esp+12]\n"  // buf
         "  push eax\n"
         "  push esi\n"
         "  call read\n"
         "  add esp, 12\n"
         "  push esi\n"
         "  call close\n"
         "  add esp, 4\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  T.Params.push_back({B.charPtrT(), true});
  T.Params.push_back({B.charPtrT(), false});
  T.HasRet = true;
  T.Ret = B.intT();
  B.callFromMain(Fn, 2);
}

/// §2.1: one stack slot, two unrelated variables.
void emitStackReuse(ProgramBuilder &B) {
  std::string Fn = B.fresh("slotreuse");
  B.emit("fn " + Fn + ":\n"
         "  sub esp, 4\n"
         "  load eax, [esp+12]\n"  // int param (entry slot 8)
         "  store [esp], eax\n"    // slot holds the int
         "  load ebx, [esp]\n"
         "  load eax, [esp+8]\n"   // pointer param (entry slot 4)
         "  store [esp], eax\n"    // slot reused for the pointer
         "  load edx, [esp]\n"
         "  load eax, [edx+0]\n"   // deref proves pointerness
         "  add eax, ebx\n"
         "  add esp, 4\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  T.Params.push_back({B.pool().pointerTo(B.intT()), true});
  T.Params.push_back({B.intT(), false});
  T.HasRet = true;
  T.Ret = B.intT();
  B.callFromMain(Fn, 2);
}

/// §2.1: f(0, NULL) — the zero must not unify int with pointer.
void emitSemiSyntactic(ProgramBuilder &B) {
  std::string Callee = B.fresh("takes2");
  B.emit("fn " + Callee + ":\n"
         "  load eax, [esp+4]\n"   // int
         "  load edx, [esp+8]\n"   // char*
         "  test edx, edx\n"
         "  jz " + Callee + "_out\n"
         "  load1 ebx, [edx+0]\n"
         "  add eax, ebx\n" +
         Callee + "_out:\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Callee);
  T.Params.push_back({B.intT(), false});
  T.Params.push_back({B.charPtrT(), true});
  T.HasRet = true;
  T.Ret = B.intT();

  std::string Fn = B.fresh("callzero");
  B.emit("fn " + Fn + ":\n"
         "  xor eax, eax\n"
         "  push eax\n"
         "  push eax\n"
         "  call " + Callee + "\n"
         "  add esp, 8\n"
         "  ret\n");
  FuncTruth &T2 = B.truthFor(Fn);
  T2.HasRet = true;
  T2.Ret = B.intT();
  B.callFromMain(Fn, 0);
}

/// Figure 1: early return of a callee's value along the error path.
void emitEarlyReturn(ProgramBuilder &B) {
  std::string GetS = B.fresh("get_s");
  B.needExtern("malloc");
  B.emit("fn " + GetS + ":\n"
         "  push 8\n"
         "  call malloc\n"
         "  add esp, 4\n"
         "  ret\n");
  FuncTruth &TS = B.truthFor(GetS);
  TS.HasRet = true;
  TS.Ret = B.pool().pointerTo(B.structT(2, false));

  std::string Fn = B.fresh("get_t");
  B.emit("fn " + Fn + ":\n"
         "  call " + GetS + "\n"
         "  test eax, eax\n"
         "  jz " + Fn + "_out\n"
         "  load eax, [eax+4]\n" +
         Fn + "_out:\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  T.HasRet = true;
  T.Ret = B.intT();
  B.callFromMain(Fn, 0);
}

/// §2.5: push-ecx stack-slot reservation looks like a register param.
void emitFalseRegParam(ProgramBuilder &B) {
  std::string Reserve = B.fresh("reserve");
  B.emit("fn " + Reserve + ":\n"
         "  push ecx\n"
         "  mov eax, 0\n"
         "  store [esp], eax\n"
         "  add esp, 4\n"
         "  ret\n");
  B.truthFor(Reserve); // no params in truth: ecx is spurious

  std::string C1 = B.fresh("res_c1");
  B.emit("fn " + C1 + ":\n"
         "  load ecx, [esp+4]\n"
         "  call " + Reserve + "\n"
         "  mov eax, ecx\n"
         "  ret\n");
  FuncTruth &T1 = B.truthFor(C1);
  T1.Params.push_back({B.intT(), false});
  T1.HasRet = true;
  T1.Ret = B.intT();
  B.callFromMain(C1, 1);

  std::string C2 = B.fresh("res_c2");
  B.needExtern("malloc");
  B.emit("fn " + C2 + ":\n"
         "  push 4\n"
         "  call malloc\n"
         "  add esp, 4\n"
         "  mov ecx, eax\n"
         "  call " + Reserve + "\n"
         "  load eax, [ecx+0]\n"
         "  ret\n");
  FuncTruth &T2 = B.truthFor(C2);
  T2.HasRet = true;
  T2.Ret = B.intT();
  B.callFromMain(C2, 0);
}

/// §2.6: hash a value by treating it as untyped bits.
void emitXorHash(ProgramBuilder &B) {
  std::string Fn = B.fresh("hash");
  B.emit("fn " + Fn + ":\n"
         "  load edx, [esp+4]\n"
         "  mov eax, 0\n"
         "  mov ecx, 4\n" +
         Fn + "_loop:\n"
         "  load ebx, [edx+0]\n"
         "  xor eax, ebx\n"
         "  add edx, 4\n"
         "  sub ecx, 1\n"
         "  cmp ecx, 0\n"
         "  jnz " + Fn + "_loop\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  T.Params.push_back({B.pool().pointerTo(B.uintT()), true});
  T.HasRet = true;
  T.Ret = B.uintT();
  B.callFromMain(Fn, 1);
}

/// Globals: an int counter and a pointer table (module-level variables).
void emitGlobals(ProgramBuilder &B) {
  std::string G = B.fresh("counter");
  std::string Fn = B.fresh("bump");
  B.emit("global " + G + ", 4\n"
         "fn " + Fn + ":\n"
         "  load eax, [@" + G + "]\n"
         "  add eax, 1\n"
         "  store [@" + G + "], eax\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  T.HasRet = true;
  T.Ret = B.intT();
  B.callFromMain(Fn, 0);
}

/// §2.4: pass a pointer into the middle of a struct.
void emitOffsetPointer(ProgramBuilder &B) {
  std::string Inner = B.fresh("useint");
  B.emit("fn " + Inner + ":\n"
         "  load edx, [esp+4]\n"
         "  load eax, [edx+0]\n"
         "  ret\n");
  FuncTruth &TI = B.truthFor(Inner);
  TI.Params.push_back({B.pool().pointerTo(B.intT()), true});
  TI.HasRet = true;
  TI.Ret = B.intT();

  std::string Fn = B.fresh("usefield");
  B.emit("fn " + Fn + ":\n"
         "  load edx, [esp+4]\n"
         "  lea eax, [edx+8]\n"
         "  push eax\n"
         "  call " + Inner + "\n"
         "  add esp, 4\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  T.Params.push_back({B.pool().pointerTo(B.structT(3, false)), true});
  T.HasRet = true;
  T.Ret = B.intT();
  B.callFromMain(Fn, 1);
}

/// Plain integer arithmetic (filler with easy truth).
void emitArith(ProgramBuilder &B) {
  std::string Fn = B.fresh("mix");
  unsigned Ops = 3 + B.roll(6);
  std::string Text = "fn " + Fn + ":\n"
                     "  load eax, [esp+4]\n"
                     "  load ebx, [esp+8]\n";
  for (unsigned K = 0; K < Ops; ++K) {
    switch (B.roll(3)) {
    case 0:
      Text += "  add eax, ebx\n";
      break;
    case 1:
      Text += "  sub eax, ebx\n";
      break;
    default:
      Text += "  add eax, " + std::to_string(1 + B.roll(9)) + "\n";
      break;
    }
  }
  Text += "  ret\n";
  B.emit(Text);
  FuncTruth &T = B.truthFor(Fn);
  T.Params.push_back({B.intT(), false});
  T.Params.push_back({B.intT(), false});
  T.HasRet = true;
  T.Ret = B.intT();
  B.callFromMain(Fn, 2);
}

/// strlen user with a string parameter.
void emitStrUser(ProgramBuilder &B) {
  B.needExtern("strlen");
  std::string Fn = B.fresh("len2");
  B.emit("fn " + Fn + ":\n"
         "  load eax, [esp+4]\n"
         "  push eax\n"
         "  call strlen\n"
         "  add esp, 4\n"
         "  add eax, 1\n"
         "  ret\n");
  FuncTruth &T = B.truthFor(Fn);
  T.Params.push_back({B.charPtrT(), true});
  T.HasRet = true;
  T.Ret = B.sizeT();
  B.callFromMain(Fn, 1);
}

} // namespace

SynthProgram SynthGenerator::generate(const std::string &Name,
                                      const SynthOptions &Opts) {
  ProgramBuilder B(Opts.Seed);

  using Emitter = void (*)(ProgramBuilder &);
  std::vector<Emitter> Templates{
      emitListClose,   emitGetter,       emitSetter,
      emitPolymorphicUse, emitMemcpyUser, emitFdPipeline,
      emitStackReuse,  emitSemiSyntactic, emitEarlyReturn,
      emitGlobals,     emitOffsetPointer, emitArith,
      emitStrUser};
  if (Opts.IncludeTypeUnsafe)
    Templates.push_back(emitXorHash);
  if (Opts.IncludeFalseRegParams)
    Templates.push_back(emitFalseRegParam);

  // One pass over all templates for coverage, then random fill to size.
  for (Emitter E : Templates)
    E(B);
  while (B.bodyInstructions() < Opts.TargetInstructions)
    Templates[B.roll(static_cast<unsigned>(Templates.size()))](B);

  return B.finish(Name);
}

std::vector<SynthProgram>
SynthGenerator::generateCluster(const std::string &ClusterName,
                                unsigned Count, unsigned AvgInstructions,
                                uint64_t Seed) {
  std::vector<SynthProgram> Programs;
  for (unsigned P = 0; P < Count; ++P) {
    // The shared utility base: same seed across the cluster, covering
    // roughly 60% of each program (coreutils-style correlation, §6.2).
    SynthOptions Common;
    Common.Seed = Seed;
    Common.TargetInstructions = AvgInstructions * 3 / 5;
    // The program-specific remainder.
    SynthOptions Unique;
    Unique.Seed = Seed * 7919 + P + 1;
    Unique.TargetInstructions = AvgInstructions;

    // Build both parts into one program by seeding the generator twice:
    // reuse generate() for the common part, then extend with unique
    // instances by regenerating at the full target with a different seed
    // stream appended deterministically.
    ProgramBuilder B(Common.Seed);
    using Emitter = void (*)(ProgramBuilder &);
    std::vector<Emitter> Templates{
        emitListClose,   emitGetter,       emitSetter,
        emitPolymorphicUse, emitMemcpyUser, emitFdPipeline,
        emitStackReuse,  emitSemiSyntactic, emitEarlyReturn,
        emitGlobals,     emitOffsetPointer, emitArith,
        emitStrUser,     emitXorHash,      emitFalseRegParam};
    for (Emitter E : Templates)
      E(B);
    while (B.bodyInstructions() < Common.TargetInstructions)
      Templates[B.roll(static_cast<unsigned>(Templates.size()))](B);
    // Re-seed for the program-unique tail.
    B.Rng.seed(static_cast<unsigned>(Unique.Seed));
    while (B.bodyInstructions() < Unique.TargetInstructions)
      Templates[B.roll(static_cast<unsigned>(Templates.size()))](B);

    Programs.push_back(
        B.finish(ClusterName + "_" + std::to_string(P)));
  }
  return Programs;
}
